file(REMOVE_RECURSE
  "CMakeFiles/single_user_navigation.dir/single_user_navigation.cpp.o"
  "CMakeFiles/single_user_navigation.dir/single_user_navigation.cpp.o.d"
  "single_user_navigation"
  "single_user_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_user_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
