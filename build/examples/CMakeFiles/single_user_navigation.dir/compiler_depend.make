# Empty compiler generated dependencies file for single_user_navigation.
# This may be replaced when dependencies are built.
