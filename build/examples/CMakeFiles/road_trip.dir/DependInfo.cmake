
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/road_trip.cpp" "examples/CMakeFiles/road_trip.dir/road_trip.cpp.o" "gcc" "examples/CMakeFiles/road_trip.dir/road_trip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppgnn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
