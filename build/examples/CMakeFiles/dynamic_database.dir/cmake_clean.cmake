file(REMOVE_RECURSE
  "CMakeFiles/dynamic_database.dir/dynamic_database.cpp.o"
  "CMakeFiles/dynamic_database.dir/dynamic_database.cpp.o.d"
  "dynamic_database"
  "dynamic_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
