# Empty compiler generated dependencies file for dynamic_database.
# This may be replaced when dependencies are built.
