file(REMOVE_RECURSE
  "CMakeFiles/ppmld.dir/ppmld.cpp.o"
  "CMakeFiles/ppmld.dir/ppmld.cpp.o.d"
  "ppmld"
  "ppmld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppmld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
