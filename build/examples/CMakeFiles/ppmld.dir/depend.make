# Empty dependencies file for ppmld.
# This may be replaced when dependencies are built.
