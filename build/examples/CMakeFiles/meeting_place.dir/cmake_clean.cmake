file(REMOVE_RECURSE
  "CMakeFiles/meeting_place.dir/meeting_place.cpp.o"
  "CMakeFiles/meeting_place.dir/meeting_place.cpp.o.d"
  "meeting_place"
  "meeting_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
