# Empty dependencies file for meeting_place.
# This may be replaced when dependencies are built.
