file(REMOVE_RECURSE
  "CMakeFiles/collusion_attack_demo.dir/collusion_attack_demo.cpp.o"
  "CMakeFiles/collusion_attack_demo.dir/collusion_attack_demo.cpp.o.d"
  "collusion_attack_demo"
  "collusion_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
