# Empty compiler generated dependencies file for collusion_attack_demo.
# This may be replaced when dependencies are built.
