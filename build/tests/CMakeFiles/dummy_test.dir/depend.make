# Empty dependencies file for dummy_test.
# This may be replaced when dependencies are built.
