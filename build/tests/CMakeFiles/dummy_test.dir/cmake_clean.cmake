file(REMOVE_RECURSE
  "CMakeFiles/dummy_test.dir/dummy_test.cc.o"
  "CMakeFiles/dummy_test.dir/dummy_test.cc.o.d"
  "dummy_test"
  "dummy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dummy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
