# Empty compiler generated dependencies file for bigint_gmp_diff_test.
# This may be replaced when dependencies are built.
