file(REMOVE_RECURSE
  "CMakeFiles/bigint_gmp_diff_test.dir/bigint_gmp_diff_test.cc.o"
  "CMakeFiles/bigint_gmp_diff_test.dir/bigint_gmp_diff_test.cc.o.d"
  "bigint_gmp_diff_test"
  "bigint_gmp_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_gmp_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
