file(REMOVE_RECURSE
  "CMakeFiles/poi_codec_test.dir/poi_codec_test.cc.o"
  "CMakeFiles/poi_codec_test.dir/poi_codec_test.cc.o.d"
  "poi_codec_test"
  "poi_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poi_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
