file(REMOVE_RECURSE
  "CMakeFiles/mld_test.dir/mld_test.cc.o"
  "CMakeFiles/mld_test.dir/mld_test.cc.o.d"
  "mld_test"
  "mld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
