# Empty dependencies file for mld_test.
# This may be replaced when dependencies are built.
