file(REMOVE_RECURSE
  "CMakeFiles/key_io_test.dir/key_io_test.cc.o"
  "CMakeFiles/key_io_test.dir/key_io_test.cc.o.d"
  "key_io_test"
  "key_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
