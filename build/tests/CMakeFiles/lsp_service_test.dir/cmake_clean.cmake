file(REMOVE_RECURSE
  "CMakeFiles/lsp_service_test.dir/lsp_service_test.cc.o"
  "CMakeFiles/lsp_service_test.dir/lsp_service_test.cc.o.d"
  "lsp_service_test"
  "lsp_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsp_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
