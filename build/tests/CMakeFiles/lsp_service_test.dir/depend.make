# Empty dependencies file for lsp_service_test.
# This may be replaced when dependencies are built.
