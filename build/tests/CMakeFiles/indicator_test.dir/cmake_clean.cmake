file(REMOVE_RECURSE
  "CMakeFiles/indicator_test.dir/indicator_test.cc.o"
  "CMakeFiles/indicator_test.dir/indicator_test.cc.o.d"
  "indicator_test"
  "indicator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indicator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
