# Empty compiler generated dependencies file for indicator_test.
# This may be replaced when dependencies are built.
