# Empty compiler generated dependencies file for ppgnn_cli.
# This may be replaced when dependencies are built.
