file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_cli.dir/ppgnn_cli.cc.o"
  "CMakeFiles/ppgnn_cli.dir/ppgnn_cli.cc.o.d"
  "ppgnn_cli"
  "ppgnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
