# Empty dependencies file for ppgnn_baselines.
# This may be replaced when dependencies are built.
