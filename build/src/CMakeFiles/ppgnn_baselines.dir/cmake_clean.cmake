file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_baselines.dir/baselines/apnn.cc.o"
  "CMakeFiles/ppgnn_baselines.dir/baselines/apnn.cc.o.d"
  "CMakeFiles/ppgnn_baselines.dir/baselines/geoind.cc.o"
  "CMakeFiles/ppgnn_baselines.dir/baselines/geoind.cc.o.d"
  "CMakeFiles/ppgnn_baselines.dir/baselines/glp.cc.o"
  "CMakeFiles/ppgnn_baselines.dir/baselines/glp.cc.o.d"
  "CMakeFiles/ppgnn_baselines.dir/baselines/ippf.cc.o"
  "CMakeFiles/ppgnn_baselines.dir/baselines/ippf.cc.o.d"
  "libppgnn_baselines.a"
  "libppgnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
