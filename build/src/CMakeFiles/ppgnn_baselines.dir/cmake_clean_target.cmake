file(REMOVE_RECURSE
  "libppgnn_baselines.a"
)
