file(REMOVE_RECURSE
  "libppgnn_crypto.a"
)
