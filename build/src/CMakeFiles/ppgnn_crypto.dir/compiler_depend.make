# Empty compiler generated dependencies file for ppgnn_crypto.
# This may be replaced when dependencies are built.
