file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_crypto.dir/crypto/key_io.cc.o"
  "CMakeFiles/ppgnn_crypto.dir/crypto/key_io.cc.o.d"
  "CMakeFiles/ppgnn_crypto.dir/crypto/paillier.cc.o"
  "CMakeFiles/ppgnn_crypto.dir/crypto/paillier.cc.o.d"
  "CMakeFiles/ppgnn_crypto.dir/crypto/poi_codec.cc.o"
  "CMakeFiles/ppgnn_crypto.dir/crypto/poi_codec.cc.o.d"
  "libppgnn_crypto.a"
  "libppgnn_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
