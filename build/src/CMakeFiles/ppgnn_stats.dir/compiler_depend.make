# Empty compiler generated dependencies file for ppgnn_stats.
# This may be replaced when dependencies are built.
