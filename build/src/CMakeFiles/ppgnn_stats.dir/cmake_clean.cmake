file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_stats.dir/stats/hypothesis.cc.o"
  "CMakeFiles/ppgnn_stats.dir/stats/hypothesis.cc.o.d"
  "CMakeFiles/ppgnn_stats.dir/stats/normal.cc.o"
  "CMakeFiles/ppgnn_stats.dir/stats/normal.cc.o.d"
  "libppgnn_stats.a"
  "libppgnn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
