file(REMOVE_RECURSE
  "libppgnn_stats.a"
)
