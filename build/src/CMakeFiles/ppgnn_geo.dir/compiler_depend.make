# Empty compiler generated dependencies file for ppgnn_geo.
# This may be replaced when dependencies are built.
