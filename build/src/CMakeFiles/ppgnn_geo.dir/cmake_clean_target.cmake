file(REMOVE_RECURSE
  "libppgnn_geo.a"
)
