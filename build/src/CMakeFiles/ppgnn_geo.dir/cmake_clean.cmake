file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_geo.dir/geo/aggregate.cc.o"
  "CMakeFiles/ppgnn_geo.dir/geo/aggregate.cc.o.d"
  "CMakeFiles/ppgnn_geo.dir/geo/distance_oracle.cc.o"
  "CMakeFiles/ppgnn_geo.dir/geo/distance_oracle.cc.o.d"
  "libppgnn_geo.a"
  "libppgnn_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
