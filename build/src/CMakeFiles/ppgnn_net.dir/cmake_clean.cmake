file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_net.dir/net/cost.cc.o"
  "CMakeFiles/ppgnn_net.dir/net/cost.cc.o.d"
  "libppgnn_net.a"
  "libppgnn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
