file(REMOVE_RECURSE
  "libppgnn_net.a"
)
