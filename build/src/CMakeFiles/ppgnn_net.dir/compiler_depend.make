# Empty compiler generated dependencies file for ppgnn_net.
# This may be replaced when dependencies are built.
