# Empty compiler generated dependencies file for ppgnn_bigint.
# This may be replaced when dependencies are built.
