file(REMOVE_RECURSE
  "libppgnn_bigint.a"
)
