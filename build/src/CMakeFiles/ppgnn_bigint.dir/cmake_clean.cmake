file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_bigint.dir/bigint/bigint.cc.o"
  "CMakeFiles/ppgnn_bigint.dir/bigint/bigint.cc.o.d"
  "CMakeFiles/ppgnn_bigint.dir/bigint/modular.cc.o"
  "CMakeFiles/ppgnn_bigint.dir/bigint/modular.cc.o.d"
  "CMakeFiles/ppgnn_bigint.dir/bigint/montgomery.cc.o"
  "CMakeFiles/ppgnn_bigint.dir/bigint/montgomery.cc.o.d"
  "CMakeFiles/ppgnn_bigint.dir/bigint/prime.cc.o"
  "CMakeFiles/ppgnn_bigint.dir/bigint/prime.cc.o.d"
  "libppgnn_bigint.a"
  "libppgnn_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
