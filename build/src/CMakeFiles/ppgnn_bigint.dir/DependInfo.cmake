
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/bigint.cc.o" "gcc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/bigint.cc.o.d"
  "/root/repo/src/bigint/modular.cc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/modular.cc.o" "gcc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/modular.cc.o.d"
  "/root/repo/src/bigint/montgomery.cc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/montgomery.cc.o" "gcc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/montgomery.cc.o.d"
  "/root/repo/src/bigint/prime.cc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/prime.cc.o" "gcc" "src/CMakeFiles/ppgnn_bigint.dir/bigint/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
