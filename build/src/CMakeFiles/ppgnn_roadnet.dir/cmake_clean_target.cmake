file(REMOVE_RECURSE
  "libppgnn_roadnet.a"
)
