
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/dijkstra.cc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/dijkstra.cc.o" "gcc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/dijkstra.cc.o.d"
  "/root/repo/src/roadnet/graph.cc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/graph.cc.o" "gcc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/graph.cc.o.d"
  "/root/repo/src/roadnet/road_gnn.cc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/road_gnn.cc.o" "gcc" "src/CMakeFiles/ppgnn_roadnet.dir/roadnet/road_gnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppgnn_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
