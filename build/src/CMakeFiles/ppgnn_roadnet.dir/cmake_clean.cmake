file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/dijkstra.cc.o"
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/dijkstra.cc.o.d"
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/graph.cc.o"
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/graph.cc.o.d"
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/road_gnn.cc.o"
  "CMakeFiles/ppgnn_roadnet.dir/roadnet/road_gnn.cc.o.d"
  "libppgnn_roadnet.a"
  "libppgnn_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
