# Empty compiler generated dependencies file for ppgnn_roadnet.
# This may be replaced when dependencies are built.
