file(REMOVE_RECURSE
  "libppgnn_common.a"
)
