# Empty dependencies file for ppgnn_common.
# This may be replaced when dependencies are built.
