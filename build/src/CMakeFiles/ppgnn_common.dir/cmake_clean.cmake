file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_common.dir/common/bytes.cc.o"
  "CMakeFiles/ppgnn_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/ppgnn_common.dir/common/random.cc.o"
  "CMakeFiles/ppgnn_common.dir/common/random.cc.o.d"
  "CMakeFiles/ppgnn_common.dir/common/status.cc.o"
  "CMakeFiles/ppgnn_common.dir/common/status.cc.o.d"
  "libppgnn_common.a"
  "libppgnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
