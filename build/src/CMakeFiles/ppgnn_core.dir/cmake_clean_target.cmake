file(REMOVE_RECURSE
  "libppgnn_core.a"
)
