
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack.cc" "src/CMakeFiles/ppgnn_core.dir/core/attack.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/attack.cc.o.d"
  "/root/repo/src/core/candidate.cc" "src/CMakeFiles/ppgnn_core.dir/core/candidate.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/candidate.cc.o.d"
  "/root/repo/src/core/dummy.cc" "src/CMakeFiles/ppgnn_core.dir/core/dummy.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/dummy.cc.o.d"
  "/root/repo/src/core/indicator.cc" "src/CMakeFiles/ppgnn_core.dir/core/indicator.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/indicator.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/CMakeFiles/ppgnn_core.dir/core/partition.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/partition.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/CMakeFiles/ppgnn_core.dir/core/protocol.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/protocol.cc.o.d"
  "/root/repo/src/core/sanitize.cc" "src/CMakeFiles/ppgnn_core.dir/core/sanitize.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/sanitize.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/ppgnn_core.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/selection.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/CMakeFiles/ppgnn_core.dir/core/wire.cc.o" "gcc" "src/CMakeFiles/ppgnn_core.dir/core/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppgnn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
