file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_core.dir/core/attack.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/attack.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/candidate.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/candidate.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/dummy.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/dummy.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/indicator.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/indicator.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/partition.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/partition.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/protocol.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/protocol.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/sanitize.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/sanitize.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/selection.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/selection.cc.o.d"
  "CMakeFiles/ppgnn_core.dir/core/wire.cc.o"
  "CMakeFiles/ppgnn_core.dir/core/wire.cc.o.d"
  "libppgnn_core.a"
  "libppgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
