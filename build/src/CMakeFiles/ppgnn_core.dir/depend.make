# Empty dependencies file for ppgnn_core.
# This may be replaced when dependencies are built.
