file(REMOVE_RECURSE
  "CMakeFiles/ppgnn_spatial.dir/spatial/dataset.cc.o"
  "CMakeFiles/ppgnn_spatial.dir/spatial/dataset.cc.o.d"
  "CMakeFiles/ppgnn_spatial.dir/spatial/gnn.cc.o"
  "CMakeFiles/ppgnn_spatial.dir/spatial/gnn.cc.o.d"
  "CMakeFiles/ppgnn_spatial.dir/spatial/knn.cc.o"
  "CMakeFiles/ppgnn_spatial.dir/spatial/knn.cc.o.d"
  "CMakeFiles/ppgnn_spatial.dir/spatial/mld.cc.o"
  "CMakeFiles/ppgnn_spatial.dir/spatial/mld.cc.o.d"
  "CMakeFiles/ppgnn_spatial.dir/spatial/rtree.cc.o"
  "CMakeFiles/ppgnn_spatial.dir/spatial/rtree.cc.o.d"
  "libppgnn_spatial.a"
  "libppgnn_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppgnn_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
