# Empty dependencies file for ppgnn_spatial.
# This may be replaced when dependencies are built.
