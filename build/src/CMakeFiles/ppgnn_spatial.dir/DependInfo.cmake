
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/dataset.cc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/dataset.cc.o" "gcc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/dataset.cc.o.d"
  "/root/repo/src/spatial/gnn.cc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/gnn.cc.o" "gcc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/gnn.cc.o.d"
  "/root/repo/src/spatial/knn.cc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/knn.cc.o" "gcc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/knn.cc.o.d"
  "/root/repo/src/spatial/mld.cc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/mld.cc.o" "gcc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/mld.cc.o.d"
  "/root/repo/src/spatial/rtree.cc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/rtree.cc.o" "gcc" "src/CMakeFiles/ppgnn_spatial.dir/spatial/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppgnn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
