file(REMOVE_RECURSE
  "libppgnn_spatial.a"
)
