# Empty compiler generated dependencies file for bench_fig7_pois_returned.
# This may be replaced when dependencies are built.
