file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pois_returned.dir/bench_fig7_pois_returned.cc.o"
  "CMakeFiles/bench_fig7_pois_returned.dir/bench_fig7_pois_returned.cc.o.d"
  "bench_fig7_pois_returned"
  "bench_fig7_pois_returned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pois_returned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
