file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_group.dir/bench_fig6_group.cc.o"
  "CMakeFiles/bench_fig6_group.dir/bench_fig6_group.cc.o.d"
  "bench_fig6_group"
  "bench_fig6_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
