// Micro-benchmarks (google-benchmark) for the substrates: bignum
// arithmetic, Paillier operations at both ciphertext levels, R-tree
// construction, MBM kGNN queries, and the sanitation hypothesis test.
// These quantify the constants behind Table 2's cost model (C_e, C_q,
// C_s).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "ppgnn.h"

namespace ppgnn {
namespace {

// ---- bigint ----

void BM_BigIntMul(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  BigInt a = BigInt::Random(bits, rng);
  BigInt b = BigInt::Random(bits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(2);
  const int bits = static_cast<int>(state.range(0));
  BigInt a = BigInt::Random(2 * bits, rng);
  BigInt b = BigInt::Random(bits, rng) + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(BigInt::DivMod(a, b)));
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExp(benchmark::State& state) {
  // Odd modulus: exercises the Montgomery fast path.
  Rng rng(3);
  const int bits = static_cast<int>(state.range(0));
  BigInt base = BigInt::Random(bits, rng);
  BigInt exp = BigInt::Random(bits, rng);
  BigInt mod = BigInt::Random(bits, rng) + BigInt(3);
  if (!mod.IsOdd()) mod = mod + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(ModExp(base, exp, mod)));
  }
}
BENCHMARK(BM_ModExp)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExpLadderNoMontgomery(benchmark::State& state) {
  // The pre-Montgomery path, forced via an even modulus of the same size.
  Rng rng(3);
  const int bits = static_cast<int>(state.range(0));
  BigInt base = BigInt::Random(bits, rng);
  BigInt exp = BigInt::Random(bits, rng);
  BigInt mod = BigInt::Random(bits, rng) + BigInt(3);
  if (mod.IsOdd()) mod = mod + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(ModExp(base, exp, mod)));
  }
}
BENCHMARK(BM_ModExpLadderNoMontgomery)->Arg(512)->Arg(1024)->Arg(2048);

void BM_GeneratePrime(benchmark::State& state) {
  Rng rng(4);
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(GeneratePrime(bits, rng)));
  }
}
BENCHMARK(BM_GeneratePrime)->Arg(128)->Arg(256)->Arg(512);

// ---- Paillier (C_e of Table 2) ----

struct PaillierFixtureState {
  Rng rng{5};
  KeyPair keys;
  PaillierFixtureState(int key_bits)
      : keys(bench::ValueOrDie(GenerateKeyPair(key_bits, rng))) {}
};

void BM_PaillierEncryptL1(benchmark::State& state) {
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  BigInt m(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, 1)));
  }
}
BENCHMARK(BM_PaillierEncryptL1)->Arg(512)->Arg(1024);

void BM_PaillierEncryptL2(benchmark::State& state) {
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  BigInt m(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, 2)));
  }
}
BENCHMARK(BM_PaillierEncryptL2)->Arg(512)->Arg(1024);

void BM_PaillierEncryptL1Pooled(benchmark::State& state) {
  // Online cost with pre-computed blinding factors (offline/online
  // split). The pool is refilled in bulk outside the timed region;
  // bounded iterations keep the unmeasured offline phase cheap.
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  BigInt m(123456789);
  constexpr size_t kBatch = 512;
  for (auto _ : state) {
    if (enc.PooledBlindingCount(1) == 0) {
      state.PauseTiming();
      (void)enc.RefillBlindingPool(1, kBatch, fx.rng);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, 1)));
  }
}
BENCHMARK(BM_PaillierEncryptL1Pooled)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1000);

// ---- Encrypt-side hot path (fixed-base / offline-online engine) ----
//
// Four variants of the same Encrypt call, isolating each acceleration
// layer: the seed's fresh square-and-multiply blinding, the shared
// fixed-base comb, CRT-split evaluation for secret-key holders, and the
// pooled online path. All variants produce bit-identical ciphertexts
// for the same RNG stream (paillier_test.cc enforces this), so the
// comparison is pure cost. Args are {key_bits, level}; EXPERIMENTS.md
// records the resulting curves and CostModel's encrypt constants are
// fitted to them.

PaillierFixtureState& SharedPaillierFixture(int key_bits) {
  // Key generation at 2048 bits is seconds of work; share one fixture
  // per key size across the BM_Encrypt_* family instead of regenerating
  // it for every benchmark registration.
  static auto* cache = new std::map<int, std::unique_ptr<PaillierFixtureState>>;
  auto& slot = (*cache)[key_bits];
  if (slot == nullptr) slot = std::make_unique<PaillierFixtureState>(key_bits);
  return *slot;
}

EncryptorOptions NaiveEncryptorOptions() {
  EncryptorOptions options;
  options.use_fixed_base = false;
  options.use_crt = false;
  return options;
}

void BM_Encrypt_Naive(benchmark::State& state) {
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub, NaiveEncryptorOptions());
  const int level = static_cast<int>(state.range(1));
  BigInt m(123456789);
  // One untimed encrypt warms the level/blinding caches (h derivation,
  // fixed-base tables) so the loop measures steady-state cost.
  (void)bench::ValueOrDie(enc.Encrypt(m, fx.rng, level));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, level)));
  }
}
BENCHMARK(BM_Encrypt_Naive)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2});

void BM_Encrypt_FixedBase(benchmark::State& state) {
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  const int level = static_cast<int>(state.range(1));
  BigInt m(123456789);
  // One untimed encrypt warms the level/blinding caches (h derivation,
  // fixed-base tables) so the loop measures steady-state cost.
  (void)bench::ValueOrDie(enc.Encrypt(m, fx.rng, level));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, level)));
  }
}
BENCHMARK(BM_Encrypt_FixedBase)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2});

void BM_Encrypt_Crt(benchmark::State& state) {
  // Secret-key holder: blinding evaluated mod p^{s+1} and q^{s+1} with
  // half-width fixed-base engines, recombined by CRT.
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys);
  const int level = static_cast<int>(state.range(1));
  BigInt m(123456789);
  // One untimed encrypt warms the level/blinding caches (h derivation,
  // fixed-base tables) so the loop measures steady-state cost.
  (void)bench::ValueOrDie(enc.Encrypt(m, fx.rng, level));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, level)));
  }
}
BENCHMARK(BM_Encrypt_Crt)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2});

void BM_Encrypt_Pooled(benchmark::State& state) {
  // Pure online cost: blinding factors come from the pool, refilled
  // outside the timed region.
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  const int level = static_cast<int>(state.range(1));
  BigInt m(123456789);
  constexpr size_t kBatch = 512;
  for (auto _ : state) {
    if (enc.PooledBlindingCount(level) == 0) {
      state.PauseTiming();
      (void)enc.RefillBlindingPool(level, kBatch, fx.rng);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.Encrypt(m, fx.rng, level)));
  }
}
BENCHMARK(BM_Encrypt_Pooled)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Iterations(1000);

void BM_RefillBlindingPool_FixedBase(benchmark::State& state) {
  // Offline producer cost per blinding factor (what the
  // BlindingRefiller thread pays), via the shared fixed-base engine.
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  const int level = static_cast<int>(state.range(1));
  constexpr size_t kBatch = 64;
  (void)enc.RefillBlindingPool(level, 1, fx.rng);  // untimed cache warmup
  for (auto _ : state) {
    (void)enc.RefillBlindingPool(level, kBatch, fx.rng);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_RefillBlindingPool_FixedBase)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2});

void BM_RefillBlindingPool_Crt(benchmark::State& state) {
  PaillierFixtureState& fx = SharedPaillierFixture(
      static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys);
  const int level = static_cast<int>(state.range(1));
  constexpr size_t kBatch = 64;
  (void)enc.RefillBlindingPool(level, 1, fx.rng);  // untimed cache warmup
  for (auto _ : state) {
    (void)enc.RefillBlindingPool(level, kBatch, fx.rng);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_RefillBlindingPool_Crt)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({2048, 1})
    ->Args({2048, 2});

void BM_PaillierDecryptL1NoCrt(benchmark::State& state) {
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  Decryptor dec(fx.keys.pub, fx.keys.sec, /*use_crt=*/false);
  Ciphertext ct = bench::ValueOrDie(enc.Encrypt(BigInt(42), fx.rng, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(dec.Decrypt(ct)));
  }
}
BENCHMARK(BM_PaillierDecryptL1NoCrt)->Arg(512)->Arg(1024);

void BM_PaillierDecryptL1(benchmark::State& state) {
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  Decryptor dec(fx.keys.pub, fx.keys.sec);
  Ciphertext ct = bench::ValueOrDie(enc.Encrypt(BigInt(42), fx.rng, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(dec.Decrypt(ct)));
  }
}
BENCHMARK(BM_PaillierDecryptL1)->Arg(512)->Arg(1024);

void BM_PaillierScalarMul(benchmark::State& state) {
  PaillierFixtureState fx(static_cast<int>(state.range(0)));
  Encryptor enc(fx.keys.pub);
  Ciphertext ct = bench::ValueOrDie(enc.Encrypt(BigInt(42), fx.rng, 1));
  BigInt scalar = BigInt::Random(60, fx.rng);  // packed-POI-sized scalar
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.ScalarMul(scalar, ct)));
  }
}
BENCHMARK(BM_PaillierScalarMul)->Arg(512)->Arg(1024);

void BM_MontgomeryContextCreate(benchmark::State& state) {
  // The per-context setup cost (R^2 mod n derivation) that the Encryptor
  // level caches amortize away from the hot path.
  Rng rng(6);
  const int bits = static_cast<int>(state.range(0));
  BigInt mod = BigInt::Random(bits, rng);
  if (!mod.IsOdd()) mod = mod + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(MontgomeryContext::Create(mod)));
  }
}
BENCHMARK(BM_MontgomeryContextCreate)->Arg(1024)->Arg(2048)->Arg(3072);

// Shared fixture for the DotProduct engine-vs-naive pair: delta'
// ciphertexts at level 1, key-bit-sized packed scalars.
void DotProductBenchInputs(PaillierFixtureState& fx, const Encryptor& enc,
                           uint64_t delta_prime, std::vector<Ciphertext>* v,
                           std::vector<BigInt>* x) {
  v->resize(delta_prime);
  x->resize(delta_prime);
  for (uint64_t i = 0; i < delta_prime; ++i) {
    (*v)[i] = bench::ValueOrDie(enc.Encrypt(BigInt::Random(60, fx.rng), fx.rng, 1));
    (*x)[i] = BigInt::Random(fx.keys.pub.key_bits - 10, fx.rng);
  }
}

void BM_DotProduct_Naive(benchmark::State& state) {
  PaillierFixtureState fx(1024);
  Encryptor enc(fx.keys.pub);
  std::vector<Ciphertext> v;
  std::vector<BigInt> x;
  DotProductBenchInputs(fx, enc, static_cast<uint64_t>(state.range(0)), &v, &x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(enc.DotProductNaive(x, v)));
  }
}
BENCHMARK(BM_DotProduct_Naive)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_DotProduct_MultiExp(benchmark::State& state) {
  PaillierFixtureState fx(1024);
  Encryptor enc(fx.keys.pub);
  std::vector<Ciphertext> v;
  std::vector<BigInt> x;
  DotProductBenchInputs(fx, enc, static_cast<uint64_t>(state.range(0)), &v, &x);
  auto engine = bench::ValueOrDie(enc.MakeDotEngine(v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(engine.Dot(x)));
  }
}
BENCHMARK(BM_DotProduct_MultiExp)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_PrivateSelection(benchmark::State& state) {
  PaillierFixtureState fx(512);
  Encryptor enc(fx.keys.pub);
  const uint64_t delta_prime = static_cast<uint64_t>(state.range(0));
  auto indicator = bench::ValueOrDie(EncryptIndicator(enc, 1, delta_prime, fx.rng));
  AnswerMatrix matrix;
  for (uint64_t c = 0; c < delta_prime; ++c) {
    matrix.columns.push_back({BigInt::Random(500, fx.rng)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::ValueOrDie(PrivateSelect(enc, matrix, indicator)));
  }
}
BENCHMARK(BM_PrivateSelection)->Arg(25)->Arg(100)->Arg(200);

// ---- spatial (C_q of Table 2) ----

void BM_RTreeBuild(benchmark::State& state) {
  auto pois = GenerateSequoiaLike(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RTree::Build(pois));
  }
}
BENCHMARK(BM_RTreeBuild)->Arg(10000)->Arg(62556);

void BM_MbmGnnQuery(benchmark::State& state) {
  static RTree tree = RTree::Build(GenerateSequoiaLike(kSequoiaSize, 7));
  MbmGnnSolver solver(&tree);
  Rng rng(8);
  const int n = static_cast<int>(state.range(0));
  std::vector<Point> group(n);
  for (Point& p : group) p = {rng.NextDouble(), rng.NextDouble()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Query(group, 8, AggregateKind::kSum));
  }
}
BENCHMARK(BM_MbmGnnQuery)->Arg(1)->Arg(8)->Arg(32);

void BM_SpmGnnQuery(benchmark::State& state) {
  static RTree tree = RTree::Build(GenerateSequoiaLike(kSequoiaSize, 7));
  SpmGnnSolver solver(&tree);
  Rng rng(8);
  const int n = static_cast<int>(state.range(0));
  std::vector<Point> group(n);
  for (Point& p : group) p = {rng.NextDouble(), rng.NextDouble()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Query(group, 8, AggregateKind::kSum));
  }
}
BENCHMARK(BM_SpmGnnQuery)->Arg(1)->Arg(8)->Arg(32);

// ---- sanitation (C_s of Table 2) ----

void BM_SanitizeCandidate(benchmark::State& state) {
  static RTree tree = RTree::Build(GenerateSequoiaLike(kSequoiaSize, 9));
  MbmGnnSolver solver(&tree);
  const double theta0 = static_cast<double>(state.range(0)) / 1000.0;
  auto sanitizer = bench::ValueOrDie(AnswerSanitizer::Create(theta0, TestConfig{}));
  Rng rng(10);
  std::vector<Point> group(8);
  for (Point& p : group) p = {rng.NextDouble(), rng.NextDouble()};
  auto answer = solver.Query(group, 8, AggregateKind::kSum);
  for (auto _ : state) {
    Rng mc(11);
    benchmark::DoNotOptimize(
        sanitizer.Sanitize(answer, group, AggregateKind::kSum, mc));
  }
}
BENCHMARK(BM_SanitizeCandidate)->Arg(10)->Arg(50)->Arg(100);  // theta0 * 1000

}  // namespace
}  // namespace ppgnn

BENCHMARK_MAIN();
