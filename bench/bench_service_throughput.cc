// Service-layer throughput: QPS and latency quantiles of the LspService
// front-end as the worker pool grows, under a fixed closed-loop client
// population. Demonstrates that inter-query parallelism (whole queries
// on concurrent workers) scales on top of the single-query path, and
// reports the admission/latency counters the service exposes.
//
// Knobs (in addition to bench_util.h's):
//   PPGNN_BENCH_CLIENTS   closed-loop client threads (default 8)
//   PPGNN_BENCH_REQUESTS  requests per client per data point (default 4)
//
// Overload mode (`bench_service_throughput --overload`): measures the
// admission-control story instead of the worker-pool story. A closed
// loop first measures sustainable capacity, then open-loop phases offer
// 0.5x / 1x / 2x / 4x that rate with per-request deadlines and report
// goodput (answers inside the deadline), sheds, queue expiries, and the
// two acceptance invariants from EXPERIMENTS.md: goodput at 2x >= 80% of
// goodput at 1x, and zero queries abandoned after starting crypto.
// Extra knobs:
//   PPGNN_BENCH_WORKERS            service workers in overload mode (4)
//   PPGNN_BENCH_DEADLINE_MS        per-request deadline (500)
//   PPGNN_BENCH_OVERLOAD_SECONDS   seconds per offered-load phase (3)
//
// Cluster mode (`bench_service_throughput --cluster`): the scatter-gather
// story. For S in {1, 2, 4, 8} shards it measures closed-loop capacity,
// then offers 1x / 2x / 4x that rate open-loop and reports goodput and
// the degraded-merge counter. Two kill phases follow at 1x offered load:
//   * kill-link (R=1): one whole shard link hard down via shard.link.3.
//     Acceptance: zero failed queries and degraded_shards > 0 — the PR 7
//     degraded-merge behaviour.
//   * kill-primary (S=4, R=PPGNN_BENCH_REPLICAS, default 2): only replica
//     0 of shard 3 dies, via shard.replica.3.0. Acceptance: zero failed
//     queries AND zero degraded merges — health-driven failover keeps
//     every answer exact.
// Extra knob: PPGNN_BENCH_REPLICAS  replication factor for the
// kill-primary phase (default 2). Shares the overload knobs above.
//
// TCP smoke (`bench_service_throughput --transport=tcp`): the loopback
// transport acceptance gate. An S=4, R=2 coordinator dials a
// LoopbackShardFleet and serves the same queries as an all-in-process
// cluster, healthy and then under a seeded ChaosProxy storm (replica 0
// of every shard behind RST/truncation/split-write schedules). The
// process exits nonzero on ANY answer that differs from the in-process
// frame, on any error frame, or if the storm injected no faults; it
// also reports the loopback-vs-in-process latency overhead that feeds
// the EXPERIMENTS.md table. Extra knobs:
//   PPGNN_BENCH_TCP_QUERIES  queries per phase (default 24)
//   PPGNN_CHAOS_SEED         storm schedule seed (default 0x57011),
//                            shared with chaos_test's seed matrix

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace ppgnn;
using bench::BenchConfig;
using bench::EnvInt;
using bench::ValueOrDie;

struct ServicePoint {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t served = 0;
  uint64_t errors = 0;
};

ServicePoint DrivePoint(const LspDatabase& lsp, const KeyPair& keys,
                        const ProtocolParams& params, int workers,
                        int clients, int requests_per_client, uint64_t seed,
                        std::shared_ptr<CostModel> model = nullptr) {
  // Pre-build every request outside the timed region: the coordinator's
  // encryption work would otherwise dominate the closed loop and hide
  // the worker-pool effect this bench exists to measure.
  std::vector<std::vector<ServiceRequest>> prebuilt(
      static_cast<size_t>(clients));
  {
    Rng rng(seed + 31337);
    for (int c = 0; c < clients; ++c) {
      for (int i = 0; i < requests_per_client; ++i) {
        auto group = bench::RandomGroup(params.n, rng);
        auto request =
            BuildServiceRequest(Variant::kPpgnn, params, group, keys, rng);
        if (!request.ok()) {
          std::fprintf(stderr, "build: %s\n",
                       request.status().ToString().c_str());
          return ServicePoint{};
        }
        prebuilt[static_cast<size_t>(c)].push_back(
            std::move(request).value());
      }
    }
  }

  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity =
      static_cast<size_t>(clients) * static_cast<size_t>(requests_per_client);
  config.sanitize = params.sanitize;
  if (model != nullptr) config.cost_model = std::move(model);
  LspService service(lsp, config);

  // In the timed loop clients only frame-decode replies (is it an answer
  // or an error?); full decrypt-and-verify happens once per client after
  // the clock stops.
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<uint8_t>> last_frame(
      static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (ServiceRequest& request : prebuilt[static_cast<size_t>(c)]) {
        std::vector<uint8_t> frame = service.Call(std::move(request));
        auto decoded = ResponseFrame::Decode(frame);
        if (!decoded.ok() || decoded->is_error) {
          errors.fetch_add(1);
        } else {
          last_frame[static_cast<size_t>(c)] = std::move(frame);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  Decryptor dec(keys.pub, keys.sec);
  for (const auto& frame : last_frame) {
    if (frame.empty()) continue;
    auto reply = ParseServedReply(frame, keys, dec, /*layered=*/false);
    if (!reply.ok() || !reply->ok || reply->pois.empty()) {
      errors.fetch_add(1);
    }
  }

  ServiceStats stats = service.Stats();
  ServicePoint point;
  point.served = stats.served;
  point.errors = errors.load();
  point.qps = elapsed > 0 ? static_cast<double>(stats.served) / elapsed : 0;
  point.p50_ms = stats.latency.p50_seconds * 1e3;
  point.p99_ms = stats.latency.p99_seconds * 1e3;
  return point;
}

// --- overload mode ---

struct OverloadPoint {
  double offered_qps = 0;
  double goodput_qps = 0;
  uint64_t offered = 0;
  uint64_t answers = 0;
  uint64_t overloaded = 0;  // shed or queue-full, structured kOverloaded
  uint64_t expired = 0;     // structured kDeadlineExceeded
  uint64_t other = 0;
  ServiceStats stats;
};

/// Offers `rate_qps` for `seconds`, open-loop (a paced dispatcher thread
/// that never waits for replies), each request carrying `deadline_ms`.
/// The shared cost model accumulates calibration across phases, exactly
/// as a long-running server's would.
OverloadPoint DriveOverloadPhase(const LspDatabase& lsp, const KeyPair& keys,
                                 const ProtocolParams& params, int workers,
                                 double rate_qps, double seconds,
                                 uint64_t deadline_ms,
                                 std::shared_ptr<CostModel> model,
                                 uint64_t seed) {
  // A small pool of prebuilt requests, cycled by copy: building one
  // request costs more crypto than serving it, so building offered-many
  // would dominate the bench.
  std::vector<ServiceRequest> pool;
  {
    Rng rng(seed + 77);
    for (int i = 0; i < 32; ++i) {
      auto group = bench::RandomGroup(params.n, rng);
      pool.push_back(ValueOrDie(
          BuildServiceRequest(Variant::kPpgnn, params, group, keys, rng)));
    }
  }

  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = 64;
  config.sanitize = params.sanitize;
  config.cost_model = std::move(model);
  LspService service(lsp, config);

  const uint64_t offered =
      static_cast<uint64_t>(rate_qps * seconds) > 0
          ? static_cast<uint64_t>(rate_qps * seconds)
          : 1;
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / rate_qps));

  std::mutex mu;
  std::condition_variable cv;
  uint64_t replied = 0;
  OverloadPoint point;
  point.offered = offered;

  const auto start = std::chrono::steady_clock::now();
  auto next_send = start;
  for (uint64_t i = 0; i < offered; ++i) {
    std::this_thread::sleep_until(next_send);
    next_send += interval;
    ServiceRequest request = pool[i % pool.size()];
    request.deadline_seconds = static_cast<double>(deadline_ms) / 1e3;
    (void)service.Submit(std::move(request), [&](std::vector<uint8_t> frame) {
      auto decoded = ResponseFrame::Decode(frame);
      std::lock_guard<std::mutex> lock(mu);
      if (!decoded.ok()) {
        ++point.other;
      } else if (!decoded->is_error) {
        ++point.answers;
      } else if (decoded->error.code == WireError::kOverloaded) {
        ++point.overloaded;
      } else if (decoded->error.code == WireError::kDeadlineExceeded) {
        ++point.expired;
      } else {
        ++point.other;
      }
      ++replied;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return replied == offered; });
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  point.offered_qps = elapsed > 0 ? static_cast<double>(offered) / elapsed : 0;
  point.goodput_qps =
      elapsed > 0 ? static_cast<double>(point.answers) / elapsed : 0;
  point.stats = service.Stats();
  return point;
}

int RunOverloadMode() {
  BenchConfig config;
  config.key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 256);
  config.db_size = static_cast<size_t>(EnvInt("PPGNN_BENCH_DB", 10000));
  const int workers = EnvInt("PPGNN_BENCH_WORKERS", 4);
  const uint64_t deadline_ms =
      static_cast<uint64_t>(EnvInt("PPGNN_BENCH_DEADLINE_MS", 500));
  const double phase_seconds =
      static_cast<double>(EnvInt("PPGNN_BENCH_OVERLOAD_SECONDS", 3));

  std::printf("==== LspService overload sweep ====\n");
  std::printf(
      "(|D|=%zu, key_bits=%d, workers=%d, deadline=%llums, %.0fs per "
      "phase)\n",
      config.db_size, config.key_bits, workers,
      static_cast<unsigned long long>(deadline_ms), phase_seconds);

  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  Rng key_rng(config.seed + 1);
  KeyPair keys = ValueOrDie(GenerateKeyPair(config.key_bits, key_rng));

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = config.key_bits;
  params.sanitize = false;

  // Capacity: a closed loop with as many clients as workers measures the
  // sustainable service rate (and warms the shared cost model).
  auto model = std::make_shared<CostModel>();
  double capacity_qps;
  {
    ServicePoint closed = DrivePoint(lsp, keys, params, workers, workers, 8,
                                     config.seed, model);
    capacity_qps = closed.qps;
    std::printf("capacity: %.2f qps (closed loop, p99=%.2fms)\n",
                capacity_qps, closed.p99_ms);
    if (capacity_qps <= 0) {
      std::fprintf(stderr, "capacity measurement failed\n");
      return 1;
    }
  }

  double goodput_1x = 0, goodput_2x = 0;
  uint64_t abandoned_total = 0;
  std::printf(
      "%-6s %-12s %-12s %-8s %-10s %-8s %-8s %-6s %-6s\n", "load",
      "offered_qps", "goodput_qps", "answers", "overloaded", "expired",
      "shed", "aband", "limit");
  for (double factor : {0.5, 1.0, 2.0, 4.0}) {
    OverloadPoint point = DriveOverloadPhase(
        lsp, keys, params, workers, factor * capacity_qps, phase_seconds,
        deadline_ms, model, config.seed + static_cast<uint64_t>(factor * 10));
    if (factor == 1.0) goodput_1x = point.goodput_qps;
    if (factor == 2.0) goodput_2x = point.goodput_qps;
    abandoned_total += point.stats.abandoned_executing;
    std::printf(
        "%-6.1f %-12.2f %-12.2f %-8llu %-10llu %-8llu %-8llu %-6llu %-6d\n",
        factor, point.offered_qps, point.goodput_qps,
        static_cast<unsigned long long>(point.answers),
        static_cast<unsigned long long>(point.overloaded),
        static_cast<unsigned long long>(point.expired),
        static_cast<unsigned long long>(point.stats.shed),
        static_cast<unsigned long long>(point.stats.abandoned_executing),
        point.stats.concurrency_limit);
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "service_overload,%.1f,%.3f,%.3f,%llu,%llu,%llu\n",
                     factor, point.offered_qps, point.goodput_qps,
                     static_cast<unsigned long long>(point.answers),
                     static_cast<unsigned long long>(point.overloaded),
                     static_cast<unsigned long long>(
                         point.stats.abandoned_executing));
        std::fclose(f);
      }
    }
  }

  const double retention = goodput_1x > 0 ? goodput_2x / goodput_1x : 0;
  std::printf("cost model: %llu observations\n",
              static_cast<unsigned long long>(model->observations()));
  std::printf("goodput retention at 2x: %.1f%% (acceptance: >= 80%%) %s\n",
              retention * 100.0, retention >= 0.8 ? "PASS" : "FAIL");
  std::printf("abandoned mid-crypto: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(abandoned_total),
              abandoned_total == 0 ? "PASS" : "FAIL");
  // Only the hard invariant fails the process: goodput retention is
  // timing-sensitive on loaded CI machines, the no-abandon guarantee is
  // not supposed to be.
  return abandoned_total == 0 ? 0 : 1;
}

// --- cluster mode ---

struct ClusterPhase {
  double offered_qps = 0;
  double goodput_qps = 0;
  uint64_t offered = 0;
  uint64_t answers = 0;
  uint64_t overloaded = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;  // kInternal / undecodable — real failures
  uint64_t degraded = 0;  // degraded_shards delta over the phase
};

/// Offers `rate_qps` open-loop against the cluster front for `seconds`.
ClusterPhase DriveClusterPhase(ShardedLspService& cluster,
                               const std::vector<ServiceRequest>& pool,
                               double rate_qps, double seconds,
                               uint64_t deadline_ms) {
  const uint64_t offered =
      static_cast<uint64_t>(rate_qps * seconds) > 0
          ? static_cast<uint64_t>(rate_qps * seconds)
          : 1;
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / rate_qps));

  std::mutex mu;
  std::condition_variable cv;
  uint64_t replied = 0;
  ClusterPhase phase;
  phase.offered = offered;
  const uint64_t degraded_before = cluster.Stats().degraded_shards;

  const auto start = std::chrono::steady_clock::now();
  auto next_send = start;
  for (uint64_t i = 0; i < offered; ++i) {
    std::this_thread::sleep_until(next_send);
    next_send += interval;
    ServiceRequest request = pool[i % pool.size()];
    request.deadline_seconds = static_cast<double>(deadline_ms) / 1e3;
    (void)cluster.Submit(std::move(request), [&](std::vector<uint8_t> frame) {
      auto decoded = ResponseFrame::Decode(frame);
      std::lock_guard<std::mutex> lock(mu);
      if (!decoded.ok()) {
        ++phase.failed;
      } else if (!decoded->is_error) {
        ++phase.answers;
      } else if (decoded->error.code == WireError::kOverloaded) {
        ++phase.overloaded;
      } else if (decoded->error.code == WireError::kDeadlineExceeded) {
        ++phase.expired;
      } else {
        ++phase.failed;
      }
      ++replied;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return replied == offered; });
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  phase.offered_qps = elapsed > 0 ? static_cast<double>(offered) / elapsed : 0;
  phase.goodput_qps =
      elapsed > 0 ? static_cast<double>(phase.answers) / elapsed : 0;
  phase.degraded = cluster.Stats().degraded_shards - degraded_before;
  return phase;
}

/// Closed-loop sustainable rate of the cluster front (also a warm-up).
double ClusterCapacity(ShardedLspService& cluster,
                       const std::vector<ServiceRequest>& pool, int clients,
                       int requests_per_client) {
  std::atomic<uint64_t> served{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        ServiceRequest request =
            pool[static_cast<size_t>(c * requests_per_client + i) %
                 pool.size()];
        std::vector<uint8_t> frame = cluster.Call(std::move(request));
        auto decoded = ResponseFrame::Decode(frame);
        if (decoded.ok() && !decoded->is_error) served.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return elapsed > 0 ? static_cast<double>(served.load()) / elapsed : 0;
}

int RunClusterMode() {
  BenchConfig config;
  config.key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 256);
  config.db_size = static_cast<size_t>(EnvInt("PPGNN_BENCH_DB", 10000));
  const int workers = EnvInt("PPGNN_BENCH_WORKERS", 4);
  const uint64_t deadline_ms =
      static_cast<uint64_t>(EnvInt("PPGNN_BENCH_DEADLINE_MS", 500));
  const double phase_seconds =
      static_cast<double>(EnvInt("PPGNN_BENCH_OVERLOAD_SECONDS", 3));

  std::printf("==== Sharded cluster goodput sweep ====\n");
  std::printf(
      "(|D|=%zu, key_bits=%d, %d front workers, deadline=%llums, %.0fs "
      "per phase)\n",
      config.db_size, config.key_bits, workers,
      static_cast<unsigned long long>(deadline_ms), phase_seconds);

  std::vector<Poi> pois = GenerateSequoiaLike(config.db_size, config.seed);
  Rng key_rng(config.seed + 1);
  KeyPair keys = ValueOrDie(GenerateKeyPair(config.key_bits, key_rng));

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = config.key_bits;
  params.sanitize = false;

  std::vector<ServiceRequest> pool;
  {
    Rng rng(config.seed + 77);
    for (int i = 0; i < 32; ++i) {
      auto group = bench::RandomGroup(params.n, rng);
      pool.push_back(ValueOrDie(
          BuildServiceRequest(Variant::kPpgnn, params, group, keys, rng)));
    }
  }

  auto make_cluster = [&](int shards, int replicas) {
    ShardClusterConfig cluster_config;
    cluster_config.shards = shards;
    cluster_config.replicas = replicas;
    cluster_config.front.workers = workers;
    cluster_config.front.queue_capacity = 64;
    cluster_config.front.sanitize = false;
    cluster_config.shard.workers = workers;
    cluster_config.link_policy.seed = config.seed ^ 0x5a4dull;
    // Long-running phases want the half-open prober so a downed replica
    // can rejoin; deterministic tests drive ProbeOnce by hand instead.
    cluster_config.background_prober = replicas > 1;
    return std::make_unique<ShardedLspService>(pois,
                                               std::move(cluster_config));
  };

  std::printf("%-7s %-6s %-12s %-12s %-8s %-10s %-8s %-7s %-9s\n", "shards",
              "load", "offered_qps", "goodput_qps", "answers", "overloaded",
              "expired", "failed", "degraded");
  uint64_t failed_total = 0;
  for (int shards : {1, 2, 4, 8}) {
    auto cluster = make_cluster(shards, /*replicas=*/1);
    const double capacity =
        ClusterCapacity(*cluster, pool, workers, 8);
    if (capacity <= 0) {
      std::fprintf(stderr, "capacity measurement failed at S=%d\n", shards);
      return 1;
    }
    for (double factor : {1.0, 2.0, 4.0}) {
      ClusterPhase phase = DriveClusterPhase(
          *cluster, pool, factor * capacity, phase_seconds, deadline_ms);
      failed_total += phase.failed;
      std::printf(
          "%-7d %-6.1f %-12.2f %-12.2f %-8llu %-10llu %-8llu %-7llu "
          "%-9llu\n",
          shards, factor, phase.offered_qps, phase.goodput_qps,
          static_cast<unsigned long long>(phase.answers),
          static_cast<unsigned long long>(phase.overloaded),
          static_cast<unsigned long long>(phase.expired),
          static_cast<unsigned long long>(phase.failed),
          static_cast<unsigned long long>(phase.degraded));
      if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
        if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
          std::fprintf(f, "cluster_goodput,%d,%.1f,%.3f,%.3f,%llu,%llu\n",
                       shards, factor, phase.offered_qps, phase.goodput_qps,
                       static_cast<unsigned long long>(phase.answers),
                       static_cast<unsigned long long>(phase.degraded));
          std::fclose(f);
        }
      }
    }
    cluster->Shutdown();
  }

  // Killed-shard phase: S=4, one link hard down, 1x offered load. The
  // invariant is resilience, not throughput: zero failed queries and a
  // nonzero degraded-merge count.
  uint64_t killed_failed = 0, killed_degraded = 0;
  {
    auto cluster = make_cluster(4, /*replicas=*/1);
    const double capacity = ClusterCapacity(*cluster, pool, workers, 8);
    Status armed = FailpointSetFromSpec("shard.link.3=error");
    if (!armed.ok()) {
      std::fprintf(stderr, "arming shard.link.3: %s\n",
                   armed.ToString().c_str());
      return 1;
    }
    ClusterPhase phase = DriveClusterPhase(*cluster, pool, capacity,
                                           phase_seconds, deadline_ms);
    FailpointClearAll();
    killed_failed = phase.failed;
    killed_degraded = phase.degraded;
    std::printf(
        "%-7s %-6.1f %-12.2f %-12.2f %-8llu %-10llu %-8llu %-7llu "
        "%-9llu\n",
        "4-kill", 1.0, phase.offered_qps, phase.goodput_qps,
        static_cast<unsigned long long>(phase.answers),
        static_cast<unsigned long long>(phase.overloaded),
        static_cast<unsigned long long>(phase.expired),
        static_cast<unsigned long long>(phase.failed),
        static_cast<unsigned long long>(phase.degraded));
    cluster->Shutdown();
  }

  // Kill-primary phase: same dead node, but the shard is replicated —
  // replica 0 of shard 3 errors on every leg while replica 1+ hold the
  // identical slice. The ladder must absorb the loss completely: zero
  // failed queries *and* zero degraded merges.
  const int replicas = EnvInt("PPGNN_BENCH_REPLICAS", 2);
  uint64_t primary_failed = 0, primary_degraded = 0;
  uint64_t primary_failovers = 0, primary_hedge_wins = 0;
  {
    auto cluster = make_cluster(4, replicas);
    const double capacity = ClusterCapacity(*cluster, pool, workers, 8);
    Status armed = FailpointSetFromSpec("shard.replica.3.0=error");
    if (!armed.ok()) {
      std::fprintf(stderr, "arming shard.replica.3.0: %s\n",
                   armed.ToString().c_str());
      return 1;
    }
    ClusterPhase phase = DriveClusterPhase(*cluster, pool, capacity,
                                           phase_seconds, deadline_ms);
    FailpointClearAll();
    primary_failed = phase.failed;
    primary_degraded = phase.degraded;
    ServiceStats stats = cluster->Stats();
    primary_failovers = stats.replica_failovers;
    primary_hedge_wins = stats.replica_hedge_wins;
    std::printf(
        "%-7s %-6.1f %-12.2f %-12.2f %-8llu %-10llu %-8llu %-7llu "
        "%-9llu\n",
        "4xR-kill", 1.0, phase.offered_qps, phase.goodput_qps,
        static_cast<unsigned long long>(phase.answers),
        static_cast<unsigned long long>(phase.overloaded),
        static_cast<unsigned long long>(phase.expired),
        static_cast<unsigned long long>(phase.failed),
        static_cast<unsigned long long>(phase.degraded));
    std::printf(
        "kill-primary ladder (R=%d): failovers=%llu hedge_wins=%llu "
        "exact_despite_failures=%llu transitions=%llu\n",
        replicas, static_cast<unsigned long long>(stats.replica_failovers),
        static_cast<unsigned long long>(stats.replica_hedge_wins),
        static_cast<unsigned long long>(stats.exact_despite_failures),
        static_cast<unsigned long long>(stats.health_transitions));
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "cluster_kill_primary,%d,%llu,%llu,%llu,%llu\n",
                     replicas,
                     static_cast<unsigned long long>(phase.answers),
                     static_cast<unsigned long long>(phase.failed),
                     static_cast<unsigned long long>(phase.degraded),
                     static_cast<unsigned long long>(stats.replica_failovers));
        std::fclose(f);
      }
    }
    cluster->Shutdown();
  }

  std::printf("killed-shard failures: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(killed_failed),
              killed_failed == 0 ? "PASS" : "FAIL");
  std::printf("killed-shard degraded merges: %llu (acceptance: > 0) %s\n",
              static_cast<unsigned long long>(killed_degraded),
              killed_degraded > 0 ? "PASS" : "FAIL");
  std::printf("kill-primary failures: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(primary_failed),
              primary_failed == 0 ? "PASS" : "FAIL");
  std::printf("kill-primary degraded merges: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(primary_degraded),
              primary_degraded == 0 ? "PASS" : "FAIL");
  std::printf("kill-primary ladder engaged: %llu (acceptance: > 0) %s\n",
              static_cast<unsigned long long>(primary_failovers +
                                              primary_hedge_wins),
              primary_failovers + primary_hedge_wins > 0 ? "PASS" : "FAIL");
  std::printf("healthy-phase failures: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(failed_total),
              failed_total == 0 ? "PASS" : "FAIL");
  return (killed_failed == 0 && killed_degraded > 0 && primary_failed == 0 &&
          primary_degraded == 0 && primary_failovers + primary_hedge_wins > 0 &&
          failed_total == 0)
             ? 0
             : 1;
}

// --- TCP transport smoke ---

struct TcpPhase {
  uint64_t queries = 0;
  uint64_t diffs = 0;    // TCP frame != in-process frame — the hard gate
  uint64_t errors = 0;   // error frames (either side)
  double mean_inproc_ms = 0;
  double mean_tcp_ms = 0;
};

/// Serves the pool round-robin through both clusters, comparing frames
/// byte for byte and timing each side.
TcpPhase DriveTcpPhase(ShardedLspService& tcp_cluster,
                       ShardedLspService& reference,
                       const std::vector<ServiceRequest>& pool,
                       uint64_t queries) {
  TcpPhase phase;
  phase.queries = queries;
  double inproc_seconds = 0, tcp_seconds = 0;
  for (uint64_t i = 0; i < queries; ++i) {
    ServiceRequest for_reference = pool[i % pool.size()];
    ServiceRequest for_tcp = pool[i % pool.size()];

    auto t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> expected =
        reference.Call(std::move(for_reference));
    auto t1 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> got = tcp_cluster.Call(std::move(for_tcp));
    auto t2 = std::chrono::steady_clock::now();
    inproc_seconds += std::chrono::duration<double>(t1 - t0).count();
    tcp_seconds += std::chrono::duration<double>(t2 - t1).count();

    auto expected_frame = ResponseFrame::Decode(expected);
    auto got_frame = ResponseFrame::Decode(got);
    if (!expected_frame.ok() || expected_frame->is_error || !got_frame.ok() ||
        got_frame->is_error) {
      ++phase.errors;
    }
    if (got != expected) ++phase.diffs;
  }
  phase.mean_inproc_ms = 1e3 * inproc_seconds / static_cast<double>(queries);
  phase.mean_tcp_ms = 1e3 * tcp_seconds / static_cast<double>(queries);
  return phase;
}

int RunTcpMode() {
  BenchConfig config;
  config.key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 256);
  config.db_size = static_cast<size_t>(EnvInt("PPGNN_BENCH_DB", 10000));
  const int workers = EnvInt("PPGNN_BENCH_WORKERS", 4);
  const uint64_t queries =
      static_cast<uint64_t>(EnvInt("PPGNN_BENCH_TCP_QUERIES", 24));
  const uint64_t chaos_seed =
      static_cast<uint64_t>(EnvInt("PPGNN_CHAOS_SEED", 0x57011));

  std::printf("==== Loopback TCP transport smoke (S=4, R=2) ====\n");
  std::printf("(|D|=%zu, key_bits=%d, %d workers, %llu queries per phase, "
              "chaos seed %llu)\n",
              config.db_size, config.key_bits, workers,
              static_cast<unsigned long long>(queries),
              static_cast<unsigned long long>(chaos_seed));

  std::vector<Poi> pois = GenerateSequoiaLike(config.db_size, config.seed);
  Rng key_rng(config.seed + 1);
  KeyPair keys = ValueOrDie(GenerateKeyPair(config.key_bits, key_rng));

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = config.key_bits;
  params.sanitize = false;

  std::vector<ServiceRequest> pool;
  {
    Rng rng(config.seed + 77);
    for (int i = 0; i < 16; ++i) {
      auto group = bench::RandomGroup(params.n, rng);
      pool.push_back(ValueOrDie(
          BuildServiceRequest(Variant::kPpgnn, params, group, keys, rng)));
    }
  }

  auto cluster_config = [&] {
    ShardClusterConfig cc;
    cc.shards = 4;
    cc.replicas = 2;
    cc.front.workers = workers;
    cc.front.queue_capacity = 64;
    cc.front.sanitize = false;
    cc.shard.workers = workers;
    cc.link_policy.seed = config.seed ^ 0x5a4dull;
    return cc;
  };

  std::printf("%-8s %-8s %-6s %-7s %-14s %-10s %-9s\n", "phase", "queries",
              "diffs", "errors", "inproc_ms", "tcp_ms", "overhead");
  uint64_t total_diffs = 0, total_errors = 0, storm_faults = 0;

  // Healthy phase: clean loopback sockets.
  {
    LoopbackFleetConfig fleet_config;
    fleet_config.shards = 4;
    fleet_config.replicas = 2;
    fleet_config.shard_service.workers = workers;
    LoopbackShardFleet fleet(pois, fleet_config);
    Status started = fleet.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "fleet: %s\n", started.ToString().c_str());
      return 1;
    }
    ShardClusterConfig tcp_config = cluster_config();
    tcp_config.link_factory = fleet.LinkFactory();
    ShardedLspService tcp_cluster(pois, std::move(tcp_config));
    ShardedLspService reference(pois, cluster_config());

    TcpPhase phase = DriveTcpPhase(tcp_cluster, reference, pool, queries);
    total_diffs += phase.diffs;
    total_errors += phase.errors;
    std::printf("%-8s %-8llu %-6llu %-7llu %-14.2f %-10.2f %.2fx\n",
                "healthy", static_cast<unsigned long long>(phase.queries),
                static_cast<unsigned long long>(phase.diffs),
                static_cast<unsigned long long>(phase.errors),
                phase.mean_inproc_ms, phase.mean_tcp_ms,
                phase.mean_inproc_ms > 0
                    ? phase.mean_tcp_ms / phase.mean_inproc_ms
                    : 0.0);
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "tcp_smoke,healthy,%llu,%llu,%.3f,%.3f\n",
                     static_cast<unsigned long long>(phase.diffs),
                     static_cast<unsigned long long>(phase.errors),
                     phase.mean_inproc_ms, phase.mean_tcp_ms);
        std::fclose(f);
      }
    }
    tcp_cluster.Shutdown();
    reference.Shutdown();
    fleet.Shutdown(5.0);
  }

  // Storm phase: replica 0 of every shard behind a seeded ChaosProxy.
  {
    LoopbackFleetConfig fleet_config;
    fleet_config.shards = 4;
    fleet_config.replicas = 2;
    fleet_config.shard_service.workers = workers;
    fleet_config.proxied = [](int, int replica) { return replica == 0; };
    fleet_config.chaos_rules = {
        ValueOrDie(ParseChaosRule("rst after=150 every=2")),
        ValueOrDie(ParseChaosRule("drop after=60 every=3 skip=1")),
        ValueOrDie(ParseChaosRule("split=7 every=1")),
    };
    fleet_config.chaos_seed = chaos_seed;
    fleet_config.link.io_timeout_seconds = 2.0;
    LoopbackShardFleet fleet(pois, fleet_config);
    Status started = fleet.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "fleet: %s\n", started.ToString().c_str());
      return 1;
    }
    ShardClusterConfig tcp_config = cluster_config();
    tcp_config.link_factory = fleet.LinkFactory();
    ShardedLspService tcp_cluster(pois, std::move(tcp_config));
    ShardedLspService reference(pois, cluster_config());

    TcpPhase phase = DriveTcpPhase(tcp_cluster, reference, pool, queries);
    total_diffs += phase.diffs;
    total_errors += phase.errors;
    for (int s = 0; s < fleet.shards(); ++s) {
      const ChaosProxyStats stats = fleet.proxy(s, 0)->Stats();
      storm_faults += stats.rsts + stats.drops + stats.splits;
    }
    std::printf("%-8s %-8llu %-6llu %-7llu %-14.2f %-10.2f %.2fx\n", "storm",
                static_cast<unsigned long long>(phase.queries),
                static_cast<unsigned long long>(phase.diffs),
                static_cast<unsigned long long>(phase.errors),
                phase.mean_inproc_ms, phase.mean_tcp_ms,
                phase.mean_inproc_ms > 0
                    ? phase.mean_tcp_ms / phase.mean_inproc_ms
                    : 0.0);
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "tcp_smoke,storm,%llu,%llu,%.3f,%.3f\n",
                     static_cast<unsigned long long>(phase.diffs),
                     static_cast<unsigned long long>(phase.errors),
                     phase.mean_inproc_ms, phase.mean_tcp_ms);
        std::fclose(f);
      }
    }
    tcp_cluster.Shutdown();
    reference.Shutdown();
    fleet.Shutdown(5.0);
  }

  std::printf("byte diffs: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(total_diffs),
              total_diffs == 0 ? "PASS" : "FAIL");
  std::printf("error frames: %llu (acceptance: 0) %s\n",
              static_cast<unsigned long long>(total_errors),
              total_errors == 0 ? "PASS" : "FAIL");
  std::printf("storm faults injected: %llu (acceptance: > 0) %s\n",
              static_cast<unsigned long long>(storm_faults),
              storm_faults > 0 ? "PASS" : "FAIL");
  return (total_diffs == 0 && total_errors == 0 && storm_faults > 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overload") == 0) return RunOverloadMode();
    if (std::strcmp(argv[i], "--cluster") == 0) return RunClusterMode();
    if (std::strcmp(argv[i], "--transport=tcp") == 0) return RunTcpMode();
    std::fprintf(stderr,
                 "unknown flag: %s (try --overload, --cluster, or "
                 "--transport=tcp)\n",
                 argv[i]);
    return 2;
  }
  BenchConfig config;
  // Service benches stress inter-query concurrency, not raw crypto: a
  // smaller default database and modulus keep per-query work modest so
  // the pool effect dominates the runtime.
  config.key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 256);
  config.db_size =
      static_cast<size_t>(EnvInt("PPGNN_BENCH_DB", 10000));
  const int clients = EnvInt("PPGNN_BENCH_CLIENTS", 8);
  const int requests = EnvInt("PPGNN_BENCH_REQUESTS", 4);

  std::printf("==== LspService throughput vs worker count ====\n");
  std::printf(
      "(|D|=%zu, key_bits=%d, %d closed-loop clients x %d requests, "
      "sanitation off, %u hardware threads)\n",
      config.db_size, config.key_bits, clients, requests,
      std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "NOTE: single-core machine — worker-count speedups cannot "
        "materialize here.\n");
  }

  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  Rng key_rng(config.seed + 1);
  auto keys = GenerateKeyPair(config.key_bits, key_rng);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = config.key_bits;
  params.sanitize = false;

  double base_qps = 0;
  for (int workers : {1, 2, 4, 8}) {
    ServicePoint point = DrivePoint(lsp, keys.value(), params, workers,
                                    clients, requests, config.seed);
    if (workers == 1) base_qps = point.qps;
    std::printf(
        "workers=%-3d qps=%-9.2f p50_ms=%-9.2f p99_ms=%-9.2f served=%-5llu "
        "errors=%-3llu speedup=%.2fx\n",
        workers, point.qps, point.p50_ms, point.p99_ms,
        static_cast<unsigned long long>(point.served),
        static_cast<unsigned long long>(point.errors),
        base_qps > 0 ? point.qps / base_qps : 0.0);
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "service_qps,workers,%d,%.3f,%.3f,%.3f,%llu\n",
                     workers, point.qps, point.p50_ms, point.p99_ms,
                     static_cast<unsigned long long>(point.served));
        std::fclose(f);
      }
    }
  }
  return 0;
}
