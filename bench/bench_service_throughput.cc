// Service-layer throughput: QPS and latency quantiles of the LspService
// front-end as the worker pool grows, under a fixed closed-loop client
// population. Demonstrates that inter-query parallelism (whole queries
// on concurrent workers) scales on top of the single-query path, and
// reports the admission/latency counters the service exposes.
//
// Knobs (in addition to bench_util.h's):
//   PPGNN_BENCH_CLIENTS   closed-loop client threads (default 8)
//   PPGNN_BENCH_REQUESTS  requests per client per data point (default 4)

#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace ppgnn;
using bench::BenchConfig;
using bench::EnvInt;

struct ServicePoint {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t served = 0;
  uint64_t errors = 0;
};

ServicePoint DrivePoint(const LspDatabase& lsp, const KeyPair& keys,
                        const ProtocolParams& params, int workers,
                        int clients, int requests_per_client,
                        uint64_t seed) {
  // Pre-build every request outside the timed region: the coordinator's
  // encryption work would otherwise dominate the closed loop and hide
  // the worker-pool effect this bench exists to measure.
  std::vector<std::vector<ServiceRequest>> prebuilt(
      static_cast<size_t>(clients));
  {
    Rng rng(seed + 31337);
    for (int c = 0; c < clients; ++c) {
      for (int i = 0; i < requests_per_client; ++i) {
        auto group = bench::RandomGroup(params.n, rng);
        auto request =
            BuildServiceRequest(Variant::kPpgnn, params, group, keys, rng);
        if (!request.ok()) {
          std::fprintf(stderr, "build: %s\n",
                       request.status().ToString().c_str());
          return ServicePoint{};
        }
        prebuilt[static_cast<size_t>(c)].push_back(
            std::move(request).value());
      }
    }
  }

  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity =
      static_cast<size_t>(clients) * static_cast<size_t>(requests_per_client);
  config.sanitize = params.sanitize;
  LspService service(lsp, config);

  // In the timed loop clients only frame-decode replies (is it an answer
  // or an error?); full decrypt-and-verify happens once per client after
  // the clock stops.
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<uint8_t>> last_frame(
      static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (ServiceRequest& request : prebuilt[static_cast<size_t>(c)]) {
        std::vector<uint8_t> frame = service.Call(std::move(request));
        auto decoded = ResponseFrame::Decode(frame);
        if (!decoded.ok() || decoded->is_error) {
          errors.fetch_add(1);
        } else {
          last_frame[static_cast<size_t>(c)] = std::move(frame);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.Shutdown();

  Decryptor dec(keys.pub, keys.sec);
  for (const auto& frame : last_frame) {
    if (frame.empty()) continue;
    auto reply = ParseServedReply(frame, keys, dec, /*layered=*/false);
    if (!reply.ok() || !reply->ok || reply->pois.empty()) {
      errors.fetch_add(1);
    }
  }

  ServiceStats stats = service.Stats();
  ServicePoint point;
  point.served = stats.served;
  point.errors = errors.load();
  point.qps = elapsed > 0 ? static_cast<double>(stats.served) / elapsed : 0;
  point.p50_ms = stats.latency.p50_seconds * 1e3;
  point.p99_ms = stats.latency.p99_seconds * 1e3;
  return point;
}

}  // namespace

int main() {
  BenchConfig config;
  // Service benches stress inter-query concurrency, not raw crypto: a
  // smaller default database and modulus keep per-query work modest so
  // the pool effect dominates the runtime.
  config.key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 256);
  config.db_size =
      static_cast<size_t>(EnvInt("PPGNN_BENCH_DB", 10000));
  const int clients = EnvInt("PPGNN_BENCH_CLIENTS", 8);
  const int requests = EnvInt("PPGNN_BENCH_REQUESTS", 4);

  std::printf("==== LspService throughput vs worker count ====\n");
  std::printf(
      "(|D|=%zu, key_bits=%d, %d closed-loop clients x %d requests, "
      "sanitation off, %u hardware threads)\n",
      config.db_size, config.key_bits, clients, requests,
      std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "NOTE: single-core machine — worker-count speedups cannot "
        "materialize here.\n");
  }

  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  Rng key_rng(config.seed + 1);
  auto keys = GenerateKeyPair(config.key_bits, key_rng);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = config.key_bits;
  params.sanitize = false;

  double base_qps = 0;
  for (int workers : {1, 2, 4, 8}) {
    ServicePoint point = DrivePoint(lsp, keys.value(), params, workers,
                                    clients, requests, config.seed);
    if (workers == 1) base_qps = point.qps;
    std::printf(
        "workers=%-3d qps=%-9.2f p50_ms=%-9.2f p99_ms=%-9.2f served=%-5llu "
        "errors=%-3llu speedup=%.2fx\n",
        workers, point.qps, point.p50_ms, point.p99_ms,
        static_cast<unsigned long long>(point.served),
        static_cast<unsigned long long>(point.errors),
        base_qps > 0 ? point.qps / base_qps : 0.0);
    if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
      if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
        std::fprintf(f, "service_qps,workers,%d,%.3f,%.3f,%.3f,%llu\n",
                     workers, point.qps, point.p50_ms, point.p99_ms,
                     static_cast<unsigned long long>(point.served));
        std::fclose(f);
      }
    }
  }
  return 0;
}
