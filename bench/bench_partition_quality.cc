// Validates the Section 8.3 remark: "We experimentally tested for every
// (n, d, delta) where n in [2,32], d in [5,50], delta in [50,200] and the
// average difference between delta' and delta is approximately 1."
//
// Sweeps the full grid with the exact partition solver and reports the
// average and maximum delta' - delta, plus solver latency.

#include <algorithm>

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  BenchConfig config;
  PrintHeader("Partition solver quality over the paper's (n, d, delta) grid",
              config);

  double total_gap = 0;
  uint64_t max_gap = 0;
  int feasible = 0, infeasible = 0;
  int max_n = 0, max_d = 0, max_delta = 0;
  double t0 = ThreadCpuSeconds();
  for (int n = 2; n <= 32; ++n) {
    for (int d = 5; d <= 50; ++d) {
      for (int delta = 50; delta <= 200; delta += 10) {
        auto plan = SolvePartition(n, d, delta);
        if (!plan.ok()) {
          ++infeasible;  // delta > d^n corner (tiny d, small n)
          continue;
        }
        uint64_t gap = plan->delta_prime - static_cast<uint64_t>(delta);
        total_gap += static_cast<double>(gap);
        if (gap > max_gap) {
          max_gap = gap;
          max_n = n;
          max_d = d;
          max_delta = delta;
        }
        ++feasible;
      }
    }
  }
  double elapsed = ThreadCpuSeconds() - t0;

  std::printf("grid points: %d feasible, %d infeasible (delta > d^n)\n",
              feasible, infeasible);
  std::printf("avg delta' - delta = %.3f   (paper reports ~1)\n",
              total_gap / std::max(feasible, 1));
  std::printf("max delta' - delta = %llu at (n=%d, d=%d, delta=%d)\n",
              static_cast<unsigned long long>(max_gap), max_n, max_d,
              max_delta);
  std::printf("total solver time: %.2f s (%.3f ms per instance, amortized "
              "to ~0 by the cache in practice)\n",
              elapsed, elapsed * 1e3 / std::max(feasible + infeasible, 1));
  return 0;
}
