// Ablation benches for the design choices called out in DESIGN.md:
//
//   A1  Sequential early-exit Z-test vs drawing all N_H samples — the
//       optimization that makes answer sanitation affordable.
//   A2  Dummy-generation policy vs a Bayesian prior-equipped LSP
//       adversary — how much Privacy I really depends on dummy quality.
//   A3  Parallel LSP candidate processing — wall-clock speedup at equal
//       total work (the reported LSP *cost* is invariant by design).
//   A4  Euclidean vs road-network black box — LSP cost and answer
//       divergence when the metric changes under the same protocol.
//   A5  Dataset density vs sanitized answer length — explains the Fig 7
//       level difference vs the paper.

#include <chrono>
#include <thread>

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AblationSanitationEarlyExit(const LspDatabase& lsp,
                                 const BenchConfig& config) {
  std::printf("\n-- A1: sequential early exit in the sanitation Z-test --\n");
  Rng rng(config.seed);
  for (double theta0 : {0.01, 0.05, 0.1}) {
    auto sanitizer = ValueOrDie(AnswerSanitizer::Create(theta0, TestConfig{}));
    SanitizeStats stats;
    int queries = 20;
    for (int q = 0; q < queries; ++q) {
      auto group = RandomGroup(8, rng);
      auto answer = lsp.solver().Query(group, 8, AggregateKind::kSum);
      Rng mc(1000 + q);
      sanitizer.Sanitize(answer, group, AggregateKind::kSum, mc, &stats);
    }
    uint64_t full_cost = stats.tests_run * sanitizer.sample_size();
    std::printf(
        "theta0=%-5.2f N_H=%-7llu tests=%-5llu samples drawn=%-10llu "
        "(full sampling would draw %llu: early exit saves %.1f%%)\n",
        theta0, static_cast<unsigned long long>(sanitizer.sample_size()),
        static_cast<unsigned long long>(stats.tests_run),
        static_cast<unsigned long long>(stats.samples_drawn),
        static_cast<unsigned long long>(full_cost),
        100.0 * (1.0 - static_cast<double>(stats.samples_drawn) /
                           static_cast<double>(full_cost)));
  }
}

void AblationDummyPolicies(const LspDatabase& lsp, const BenchConfig& config) {
  std::printf(
      "\n-- A2: dummy policy vs a Bayesian adversary with the POI prior --\n");
  PoiDensityDummyGenerator density(lsp.pois(), 32);
  UniformDummyGenerator uniform;
  NearbyDummyGenerator nearby(0.05);
  const DummyGenerator* policies[] = {&uniform, &density, &nearby};
  const int d = 25, trials = 2000;
  for (const DummyGenerator* policy : policies) {
    Rng rng(config.seed + 99);
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      // Users live where POIs are dense.
      Point real = lsp.pois()[rng.NextBelow(lsp.pois().size())].location;
      std::vector<Point> set(d);
      for (Point& p : set) p = policy->Generate(real, rng);
      size_t real_pos = rng.NextBelow(d);
      set[real_pos] = real;
      size_t guess = 0;
      double best = -1;
      for (size_t i = 0; i < set.size(); ++i) {
        double mass = density.CellMass(set[i]);
        if (mass > best) {
          best = mass;
          guess = i;
        }
      }
      if (guess == real_pos) ++hits;
    }
    std::printf(
        "%-12s adversary identifies the real location %5.1f%% of the time "
        "(ideal Privacy I: %.1f%%)\n",
        policy->name(), 100.0 * hits / trials, 100.0 / d);
  }
}

void AblationParallelLsp(const LspDatabase& lsp, const BenchConfig& config) {
  std::printf("\n-- A3: parallel LSP candidate processing (wall clock) --\n");
  std::printf(
      "(host has %u hardware threads; speedup is bounded by that and by the "
      "serial user-side share of the wall time)\n",
      std::thread::hardware_concurrency());
  ProtocolParams params;
  params.key_bits = config.key_bits;  // defaults otherwise: n=8, delta=100
  double base_wall = 0;
  for (int threads : {1, 2, 4, 8}) {
    params.lsp_threads = threads;
    Rng rng(config.seed + 7);
    auto group = RandomGroup(params.n, rng);
    double t0 = WallSeconds();
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng);
    double wall = WallSeconds() - t0;
    if (!outcome.ok()) {
      std::printf("threads=%d ERROR %s\n", threads,
                  outcome.status().ToString().c_str());
      return;
    }
    if (threads == 1) base_wall = wall;
    std::printf(
        "threads=%-3d wall=%-8.2fms lsp_cost=%-8.2fms (total work) "
        "speedup x%.2f\n",
        threads, wall * 1e3, outcome->costs.lsp_seconds * 1e3,
        base_wall / wall);
  }
}

void AblationRoadMetric(const BenchConfig& config) {
  std::printf("\n-- A4: Euclidean vs road-network kGNN black box --\n");
  Rng net_rng(config.seed + 5);
  RoadNetwork roads = RoadNetwork::BuildGrid(32, 32, net_rng, 0.3, 0.3);
  LspDatabase euclid(GenerateSequoiaLike(10000, config.seed));
  LspDatabase road(GenerateSequoiaLike(10000, config.seed));
  RoadDistanceOracle oracle(&roads);
  road.SetSolver(std::make_unique<RoadGnnSolver>(&roads, &road.pois()));
  road.SetDistanceOracle(&oracle);

  ProtocolParams params;
  params.n = 4;
  params.delta = 50;
  params.key_bits = config.key_bits;
  int divergent = 0;
  CostReport euclid_costs, road_costs;
  const int queries = std::max(config.queries, 3);
  Rng rng(config.seed + 6);
  for (int q = 0; q < queries; ++q) {
    auto group = RandomGroup(params.n, rng);
    Rng r1(q), r2(q);
    auto a = RunQuery(Variant::kPpgnn, params, group, euclid, r1);
    auto b = RunQuery(Variant::kPpgnn, params, group, road, r2);
    if (!a.ok() || !b.ok()) {
      std::printf("ERROR: %s / %s\n", a.status().ToString().c_str(),
                  b.status().ToString().c_str());
      return;
    }
    euclid_costs += a->costs;
    road_costs += b->costs;
    if (a->pois.empty() || b->pois.empty() || !(a->pois[0] == b->pois[0]))
      ++divergent;
  }
  std::printf(
      "euclidean: lsp=%.2fms    road: lsp=%.2fms   top-1 answers differ in "
      "%d/%d queries\n",
      euclid_costs.DividedBy(queries).lsp_seconds * 1e3,
      road_costs.DividedBy(queries).lsp_seconds * 1e3, divergent, queries);
}

void AblationDatasetSkew(const BenchConfig& config) {
  // Investigates the Fig 7 deviation (we saturate at ~3 POIs where the
  // paper reports ~4). Finding: spatial SKEW does not matter (uniform
  // and clustered give identical lengths), but absolute answer DENSITY
  // does — with fewer POIs the top-k are farther apart, each inequality
  // cuts a larger region, and longer prefixes survive the theta0 test.
  std::printf(
      "\n-- A5: dataset skew vs sanitized answer length (k=8, n=8, "
      "theta0=0.01) --\n");
  struct Shape {
    const char* name;
    std::vector<Poi> pois;
  };
  Shape shapes[] = {
      {"uniform-62k", GenerateUniform(config.db_size, config.seed)},
      {"clustered-62k", GenerateSequoiaLike(config.db_size, config.seed)},
      {"clustered-5k", GenerateSequoiaLike(5000, config.seed)},
      {"clustered-500", GenerateSequoiaLike(500, config.seed)},
  };
  for (Shape& shape : shapes) {
    LspDatabase lsp(std::move(shape.pois));
    ProtocolParams params;
    params.theta0 = 0.01;
    double total = 0;
    const int queries = 20;
    Rng rng(config.seed + 11);
    for (int q = 0; q < queries; ++q) {
      auto group = RandomGroup(8, rng);
      Rng ref(0);
      total += static_cast<double>(
          ReferenceAnswer(params, group, lsp, ref).size());
    }
    std::printf("%-10s avg POIs returned: %.2f of k=8\n", shape.name,
                total / queries);
  }
}

}  // namespace

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  PrintHeader("Design-choice ablations", config);
  AblationSanitationEarlyExit(lsp, config);
  AblationDummyPolicies(lsp, config);
  AblationParallelLsp(lsp, config);
  AblationRoadMetric(config);
  AblationDatasetSkew(config);
  return 0;
}
