// Reproduces Figure 7: the number of POIs actually returned per answer
// after answer sanitation, varying k (7a), n (7b), and theta0 (7c).
// Defaults here follow the figure's setting: k = 8, n = 8, theta0 = 0.01.
//
// Expected shapes (paper): grows then saturates around 4 as k grows;
// rises slightly with n (the target's location weighs less in the
// aggregate, enlarging the feasible region); decreases as theta0 grows
// (stronger Privacy IV trims more). Sanitation depends only on the
// plaintext answer, so this bench skips the cryptographic layers (PPGNN,
// PPGNN-OPT, and Naive all return identical sanitized answers).

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

double AveragePoisReturned(const LspDatabase& lsp, int n, int k,
                           double theta0, int queries, uint64_t seed) {
  ProtocolParams params;
  params.n = n;
  params.k = k;
  params.theta0 = theta0;
  Rng rng(seed);
  double total = 0;
  for (int q = 0; q < queries; ++q) {
    auto group = RandomGroup(n, rng);
    Rng ref_rng(0);
    total += static_cast<double>(
        ReferenceAnswer(params, group, lsp, ref_rng).size());
  }
  return total / queries;
}

}  // namespace

int main() {
  BenchConfig config;
  // Sanitation-only bench: cheap enough for more repetitions.
  int queries = std::max(config.queries, 10);
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));

  PrintHeader("Fig 7a: POIs returned vs k (n=8, theta0=0.01)", config);
  for (int k : {2, 4, 8, 16, 32}) {
    double pois = AveragePoisReturned(lsp, 8, k, 0.01, queries,
                                      config.seed + static_cast<uint64_t>(k));
    std::printf("PPGNN        k=%-8d pois=%.2f\n", k, pois);
  }

  PrintHeader("Fig 7b: POIs returned vs n (k=8, theta0=0.01)", config);
  for (int n : {2, 4, 8, 16, 32}) {
    double pois = AveragePoisReturned(
        lsp, n, 8, 0.01, queries, config.seed + 100 + static_cast<uint64_t>(n));
    std::printf("PPGNN        n=%-8d pois=%.2f\n", n, pois);
  }

  PrintHeader("Fig 7c: POIs returned vs theta0 (k=8, n=8)", config);
  int point = 0;
  for (double theta0 : {0.01, 0.025, 0.05, 0.075, 0.1}) {
    double pois = AveragePoisReturned(
        lsp, 8, 8, theta0, queries,
        config.seed + 200 + static_cast<uint64_t>(point++));
    std::printf("PPGNN        theta0=%-6.3f pois=%.2f\n", theta0, pois);
  }
  return 0;
}
