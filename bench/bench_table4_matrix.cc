// Reproduces Table 4 — the privacy-property comparison matrix — as an
// EXECUTABLE artifact: for each approach, one representative run plus a
// measured piece of evidence per privacy property.
//
//   Privacy I   location hidden among d candidates from LSP
//   Privacy II  query & answer hidden among >= delta candidates from LSP
//   Privacy III users learn nothing beyond the k answers
//   Privacy IV  resistant to n-1 user collusion (group case only)

#include "baselines/geoind.h"
#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

void Row(const char* name, const char* p1, const char* p2, const char* p3,
         const char* p4, const std::string& evidence) {
  std::printf("%-12s %-4s %-4s %-4s %-4s %s\n", name, p1, p2, p3, p4,
              evidence.c_str());
}

}  // namespace

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  PrintHeader("Table 4: privacy comparison matrix (measured evidence)",
              config);
  std::printf("%-12s %-4s %-4s %-4s %-4s %s\n", "approach", "I", "II", "III",
              "IV", "evidence");

  Rng rng(config.seed);
  std::vector<Point> group = RandomGroup(8, rng);
  char buf[256];

  // ---- PPGNN ----
  {
    ProtocolParams params;
    params.key_bits = config.key_bits;
    Rng r(1);
    auto out = ValueOrDie(RunQuery(Variant::kPpgnn, params, group, lsp, r));
    std::snprintf(buf, sizeof(buf),
                  "d=%d dummies/user; delta'=%llu candidate queries; "
                  "downlink=%llu B (m ciphertexts only); sanitized to %zu "
                  "of k=%d POIs",
                  params.d,
                  static_cast<unsigned long long>(out.info.delta_prime),
                  static_cast<unsigned long long>(
                      out.costs.bytes_lsp_to_user),
                  out.info.pois_returned, params.k);
    Row("PPGNN", "yes", "yes", "yes", "yes", buf);
  }

  // ---- PPGNN-NAS ----
  {
    ProtocolParams params;
    params.key_bits = config.key_bits;
    params.sanitize = false;
    Rng r(2);
    auto out = ValueOrDie(RunQuery(Variant::kPpgnn, params, group, lsp, r));
    // Attack the full answer.
    std::vector<Point> colluders(group.begin() + 1, group.end());
    InequalityAttack attack(colluders, out.pois, AggregateKind::kSum);
    Rng mc(3);
    double region = attack.EstimateRegionFraction(mc, 30000);
    std::snprintf(buf, sizeof(buf),
                  "full top-%d returned; collusion localizes a user to "
                  "%.1f%% of the space (theta0=5%%)",
                  params.k, region * 100);
    Row("PPGNN-NAS", "yes", "yes", "yes",
        region < 0.05 ? "NO" : "weak", buf);
  }

  // ---- APNN (n = 1) ----
  {
    auto server = ValueOrDie(ApnnServer::Build(&lsp, 64, 8));
    ApnnParams params;
    params.grid = 64;
    params.b = 5;
    params.k = 8;
    params.key_bits = config.key_bits;
    Rng r(4);
    auto out = ValueOrDie(server.Query(group[0], params, r));
    std::snprintf(buf, sizeof(buf),
                  "cloak of b^2=25 cells; approximate answer; %0.fs grid "
                  "pre-compute redone on every update (n=1 only)",
                  server.setup_seconds());
    Row("APNN", "yes", "yes", "yes", "n/a", buf);
    (void)out;
  }

  // ---- Geo-indistinguishability (n = 1) ----
  {
    GeoIndParams params;
    params.k = 8;
    Rng r(5);
    auto out = ValueOrDie(RunGeoInd(lsp, params, group[0], r));
    double noise = Distance(group[0], out.reported);
    std::snprintf(buf, sizeof(buf),
                  "LSP SAW the reported point (%.3f, %.3f) and the answer "
                  "(Privacy II lost); noise radius %.4f (n=1 only)",
                  out.reported.x, out.reported.y, noise);
    Row("GeoInd", "yes", "NO", "yes", "n/a", buf);
  }

  // ---- IPPF ----
  {
    IppfParams params;
    params.k = 8;
    Rng r(6);
    auto out = ValueOrDie(RunIppf(lsp, params, group, r));
    std::snprintf(buf, sizeof(buf),
                  "LSP returned %zu candidate POIs for k=8 (Privacy III "
                  "lost: %zux over-disclosure)",
                  out.candidates_returned, out.candidates_returned / 8);
    Row("IPPF", "yes", "yes", "NO", "NO", buf);
  }

  // ---- GLP ----
  {
    GlpParams params;
    params.k = 8;
    params.key_bits = config.key_bits;
    Rng r(7);
    auto out = ValueOrDie(RunGlp(lsp, params, group, r));
    // The collusion break: n-1 users + the opened centroid solve exactly
    // for the victim's location.
    Point recovered;
    recovered.x = out.centroid.x * static_cast<double>(group.size());
    recovered.y = out.centroid.y * static_cast<double>(group.size());
    for (size_t u = 1; u < group.size(); ++u) {
      recovered.x -= group[u].x;
      recovered.y -= group[u].y;
    }
    double err = Distance(recovered, group[0]);
    std::snprintf(buf, sizeof(buf),
                  "LSP saw the centroid (Privacy II lost); colluders "
                  "recover the victim EXACTLY from it (error %.2e)",
                  err);
    Row("GLP", "yes", "NO", "yes", "NO", buf);
  }

  std::printf(
      "\nMatches the paper's Table 4: only PPGNN satisfies Privacy I-IV.\n");
  return 0;
}
