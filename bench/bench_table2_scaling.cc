// Empirically validates Table 2's asymptotic cost model.
//
// Table 2 claims (per query):
//   PPGNN:      comm  = O(nd) L_l + O(delta') L_e + O(k) L_e
//               user  = O(nd) C_l + O(delta') C_e + O(k) C_e
//   PPGNN-OPT:  comm  = O(nd) L_l + O(sqrt(delta')) L_e + O(k) L_e
//               user  = O(nd) C_l + O(sqrt(delta')) C_e + O(k) C_e
//   LSP (both): O(delta')(C_q + C_s) + O(delta' k) C_e  [+ O(sqrt(d')k)]
//
// Strategy: sweep delta' over a 4x range with sanitation off (so LSP cost
// isolates the selection term) and compare measured growth factors with
// the model's predictions: PPGNN's indicator comm should grow ~4x,
// PPGNN-OPT's ~2x, and LSP selection cost ~4x for both.

#include <cmath>

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

struct Point2 {
  double delta_prime;
  double comm;
  double user;
  double lsp;
};

Point2 Measure(Variant variant, int delta, const LspDatabase& lsp,
               const BenchConfig& config) {
  ProtocolParams params;
  params.n = 8;
  params.d = 25;
  params.delta = delta;
  params.k = 8;
  params.key_bits = config.key_bits;
  params.sanitize = false;  // isolate crypto terms from C_s
  auto out = AverageProtocol(variant, params, lsp, config,
                             static_cast<uint64_t>(delta) * 17);
  if (!out.ok) {
    std::printf("measurement failed: %s\n", out.error.c_str());
    std::exit(1);
  }
  return {out.delta_prime,
          static_cast<double>(out.costs.TotalCommBytes()),
          out.costs.user_seconds, out.costs.lsp_seconds};
}

}  // namespace

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));
  PrintHeader("Table 2: measured growth when delta' scales 50 -> 200 (4x)",
              config);

  const int low = 50, high = 200;
  for (Variant variant : {Variant::kPpgnn, Variant::kPpgnnOpt}) {
    Point2 a = Measure(variant, low, lsp, config);
    Point2 b = Measure(variant, high, lsp, config);
    double dp_ratio = b.delta_prime / a.delta_prime;
    // The model's comm prediction: constant nd*L_l + k*L_e terms plus the
    // indicator term that scales as delta' (PPGNN) or sqrt(delta') (OPT).
    double predicted =
        variant == Variant::kPpgnn ? dp_ratio : std::sqrt(dp_ratio);
    std::printf(
        "%-12s delta'=%.0f->%.0f  comm x%.2f  user x%.2f  lsp x%.2f   "
        "(indicator-term model predicts x%.2f before constant terms)\n",
        VariantToString(variant), a.delta_prime, b.delta_prime,
        b.comm / a.comm, b.user / a.user, b.lsp / a.lsp, predicted);
  }

  std::printf(
      "\nInterpretation: PPGNN comm/user should approach x%.1f while "
      "PPGNN-OPT stays near x%.1f (constant nd*L_l and k*L_e terms pull "
      "both down); LSP cost grows ~linearly in delta' for both.\n",
      4.0, 2.0);

  // --- O(nd) L_l term: comm growth when only n grows (sanitize off) ---
  PrintHeader("Table 2: location-set term, n scaling 4 -> 16 (4x)", config);
  for (Variant variant : {Variant::kPpgnn, Variant::kPpgnnOpt}) {
    ProtocolParams params;
    params.d = 25;
    params.delta = 100;
    params.k = 8;
    params.key_bits = config.key_bits;
    params.sanitize = false;
    params.n = 4;
    auto small = AverageProtocol(variant, params, lsp, config, 71);
    params.n = 16;
    auto large = AverageProtocol(variant, params, lsp, config, 72);
    if (!small.ok || !large.ok) continue;
    double loc_small = static_cast<double>(small.costs.bytes_user_to_lsp);
    double loc_large = static_cast<double>(large.costs.bytes_user_to_lsp);
    std::printf(
        "%-12s user->LSP bytes x%.2f when n x4 (location sets are the only "
        "n-dependent upload)\n",
        VariantToString(variant), loc_large / loc_small);
  }
  return 0;
}
