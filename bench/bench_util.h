// Shared plumbing for the figure/table reproduction benches.
//
// Environment knobs (all optional):
//   PPGNN_BENCH_QUERIES  queries averaged per data point (default 2; the
//                        paper used 500 — higher is just slower)
//   PPGNN_BENCH_KEYBITS  Paillier modulus bits (default 512 for bench
//                        turnaround; the paper used 1024)
//   PPGNN_BENCH_DB       database size (default 62556, the Sequoia size)
//   PPGNN_BENCH_SEED     workload seed (default 2018)

#ifndef PPGNN_BENCH_BENCH_UTIL_H_
#define PPGNN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ppgnn.h"

namespace ppgnn::bench {

/// Unwraps a Result in bench setup/measurement code, aborting loudly on
/// error. Benches assert success by construction (fixed seeds, valid
/// parameters); this names that intent where a bare .value() would look
/// like an unchecked error path.
template <typename T>
T ValueOrDie(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct BenchConfig {
  int queries = EnvInt("PPGNN_BENCH_QUERIES", 2);
  int key_bits = EnvInt("PPGNN_BENCH_KEYBITS", 512);
  size_t db_size = static_cast<size_t>(
      EnvInt("PPGNN_BENCH_DB", static_cast<int>(kSequoiaSize)));
  uint64_t seed = static_cast<uint64_t>(EnvInt("PPGNN_BENCH_SEED", 2018));
};

inline std::vector<Point> RandomGroup(int n, Rng& rng) {
  std::vector<Point> out(n);
  for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
  return out;
}

/// Averaged costs plus instrumentation for one parameter point.
struct AveragedOutcome {
  CostReport costs;                  // per-query average
  double pois_returned = 0;          // average answer length
  double delta_prime = 0;
  bool ok = false;
  std::string error;
};

/// Runs `config.queries` protocol queries with fresh random groups (and
/// fresh keys per query, as in the paper) and averages the costs.
inline AveragedOutcome AverageProtocol(Variant variant,
                                       const ProtocolParams& params,
                                       const LspDatabase& lsp,
                                       const BenchConfig& config,
                                       uint64_t point_seed) {
  AveragedOutcome out;
  CostReport total;
  Rng rng(config.seed * 1000003 + point_seed);
  for (int q = 0; q < config.queries; ++q) {
    auto group = RandomGroup(params.n, rng);
    auto outcome = RunQuery(variant, params, group, lsp, rng);
    if (!outcome.ok()) {
      out.error = outcome.status().ToString();
      return out;
    }
    total += outcome->costs;
    out.pois_returned += static_cast<double>(outcome->info.pois_returned);
    out.delta_prime += static_cast<double>(outcome->info.delta_prime);
  }
  out.costs = total.DividedBy(config.queries);
  out.pois_returned /= config.queries;
  out.delta_prime /= config.queries;
  out.ok = true;
  return out;
}

/// Prints one data-point row in the common bench format. When the env
/// var PPGNN_BENCH_CSV names a file, the row is also appended there as
/// "series,param,value,comm_bytes,user_ms,lsp_ms,pois" for plotting.
inline void PrintRow(const char* series, const char* param_name,
                     double param_value, const AveragedOutcome& out) {
  if (!out.ok) {
    std::printf("%-12s %s=%-8g ERROR: %s\n", series, param_name, param_value,
                out.error.c_str());
    return;
  }
  std::printf(
      "%-12s %s=%-8g comm_kb=%-10.2f user_ms=%-10.2f lsp_ms=%-10.2f "
      "pois=%-5.2f\n",
      series, param_name, param_value,
      static_cast<double>(out.costs.TotalCommBytes()) / 1024.0,
      out.costs.user_seconds * 1e3, out.costs.lsp_seconds * 1e3,
      out.pois_returned);
  if (const char* csv = std::getenv("PPGNN_BENCH_CSV"); csv != nullptr) {
    if (std::FILE* f = std::fopen(csv, "a"); f != nullptr) {
      std::fprintf(f, "%s,%s,%g,%llu,%.4f,%.4f,%.3f\n", series, param_name,
                   param_value,
                   static_cast<unsigned long long>(out.costs.TotalCommBytes()),
                   out.costs.user_seconds * 1e3, out.costs.lsp_seconds * 1e3,
                   out.pois_returned);
      std::fclose(f);
    }
  }
}

inline void PrintHeader(const std::string& title, const BenchConfig& config) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf(
      "(queries/point=%d, key_bits=%d, |D|=%zu; paper: 500 queries, 1024 "
      "bits, 62556 POIs)\n",
      config.queries, config.key_bits, config.db_size);
}

}  // namespace ppgnn::bench

#endif  // PPGNN_BENCH_BENCH_UTIL_H_
