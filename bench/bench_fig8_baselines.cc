// Reproduces Figure 8: PPGNN (and PPGNN-NAS, the no-sanitation relaxation)
// against the group-query baselines IPPF and GLP, varying k (8a-8c) and
// n (8d-8f).
//
// Expected shapes (paper): IPPF's communication dwarfs everyone's (it
// returns a candidate superset of thousands of POIs); GLP's user cost and
// comm grow fastest with n (O(n^2) ciphertext broadcasts); PPGNN pays the
// answer-sanitation premium on LSP cost while PPGNN-NAS's LSP cost drops
// to the IPPF/GLP ballpark.

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

AveragedOutcome AverageIppf(const LspDatabase& lsp, int n, int k,
                            const BenchConfig& config, uint64_t seed) {
  AveragedOutcome out;
  IppfParams params;
  params.k = k;
  CostReport total;
  Rng rng(seed);
  for (int q = 0; q < config.queries; ++q) {
    auto group = RandomGroup(n, rng);
    auto outcome = RunIppf(lsp, params, group, rng);
    if (!outcome.ok()) {
      out.error = outcome.status().ToString();
      return out;
    }
    total += outcome->query.costs;
    out.pois_returned +=
        static_cast<double>(outcome->query.info.pois_returned);
  }
  out.costs = total.DividedBy(config.queries);
  out.pois_returned /= config.queries;
  out.ok = true;
  return out;
}

AveragedOutcome AverageGlp(const LspDatabase& lsp, int n, int k,
                           const BenchConfig& config, uint64_t seed) {
  AveragedOutcome out;
  GlpParams params;
  params.k = k;
  params.key_bits = config.key_bits;
  CostReport total;
  Rng rng(seed);
  for (int q = 0; q < config.queries; ++q) {
    auto group = RandomGroup(n, rng);
    auto outcome = RunGlp(lsp, params, group, rng);
    if (!outcome.ok()) {
      out.error = outcome.status().ToString();
      return out;
    }
    total += outcome->query.costs;
    out.pois_returned +=
        static_cast<double>(outcome->query.info.pois_returned);
  }
  out.costs = total.DividedBy(config.queries);
  out.pois_returned /= config.queries;
  out.ok = true;
  return out;
}

void RunPoint(const LspDatabase& lsp, const BenchConfig& config, int n, int k,
              const char* param_name, double param_value, uint64_t seed) {
  ProtocolParams params;  // defaults: d=25, delta=100, theta0=0.05
  params.n = n;
  params.k = k;
  params.key_bits = config.key_bits;
  PrintRow("PPGNN", param_name, param_value,
           AverageProtocol(Variant::kPpgnn, params, lsp, config, seed));
  ProtocolParams nas = params;
  nas.sanitize = false;
  PrintRow("PPGNN-NAS", param_name, param_value,
           AverageProtocol(Variant::kPpgnn, nas, lsp, config, seed + 1));
  PrintRow("IPPF", param_name, param_value,
           AverageIppf(lsp, n, k, config, seed + 2));
  PrintRow("GLP", param_name, param_value,
           AverageGlp(lsp, n, k, config, seed + 3));
}

}  // namespace

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));

  PrintHeader("Fig 8a-8c: baselines, varying k (n=8)", config);
  for (int k : {2, 4, 8, 16, 32}) {
    RunPoint(lsp, config, 8, k, "k", k, 5000 + static_cast<uint64_t>(k) * 7);
  }

  PrintHeader("Fig 8d-8f: baselines, varying n (k=8)", config);
  for (int n : {2, 4, 8, 16, 32}) {
    RunPoint(lsp, config, n, 8, "n", n, 6000 + static_cast<uint64_t>(n) * 7);
  }
  return 0;
}
