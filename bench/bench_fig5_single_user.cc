// Reproduces Figure 5 (single-user query, n = 1).
//
//   5a-5c: communication / user / LSP cost vs d, for PPGNN and PPGNN-OPT.
//   5d-5f: the same three costs vs k, adding the APNN baseline.
//
// Expected shapes (paper): all costs grow with d; PPGNN-OPT's comm
// overtakes PPGNN around d ~ 15 and its user cost around d ~ 25, while
// its LSP cost is always above PPGNN (two-phase selection). Costs vs k
// grow in stages (15 POIs pack into one big integer). APNN's LSP cost is
// the lowest thanks to pre-computation.

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));

  ProtocolParams base;
  base.n = 1;
  base.d = 25;
  base.k = 8;
  base.key_bits = config.key_bits;

  // ---- Fig 5a-5c: vary d ----
  PrintHeader("Fig 5a-5c: n=1, k=8, varying d in [5, 50]", config);
  const int d_values[] = {5, 10, 15, 20, 25, 30, 40, 50};
  for (Variant variant : {Variant::kPpgnn, Variant::kPpgnnOpt}) {
    for (int d : d_values) {
      ProtocolParams params = base;
      params.d = d;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 static_cast<uint64_t>(d));
      PrintRow(VariantToString(variant), "d", d, out);
    }
  }

  // ---- Fig 5d-5f: vary k ----
  PrintHeader("Fig 5d-5f: n=1, d=25, varying k in [2, 32]", config);
  const int k_values[] = {2, 4, 8, 16, 32};
  for (Variant variant : {Variant::kPpgnn, Variant::kPpgnnOpt}) {
    for (int k : k_values) {
      ProtocolParams params = base;
      params.k = k;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 100 + static_cast<uint64_t>(k));
      PrintRow(VariantToString(variant), "k", k, out);
    }
  }

  // APNN baseline: b^2 = 25 cells matches d = 25.
  auto server_or = ApnnServer::Build(&lsp, /*grid=*/64, /*max_k=*/32);
  if (!server_or.ok()) {
    std::printf("APNN build failed: %s\n",
                server_or.status().ToString().c_str());
    return 1;
  }
  const ApnnServer& server = server_or.value();
  std::printf("(APNN pre-computation: %.2f s, excluded from per-query LSP "
              "cost as in the paper)\n",
              server.setup_seconds());
  for (int k : k_values) {
    ApnnParams params;
    params.grid = 64;
    params.b = 5;
    params.k = k;
    params.key_bits = config.key_bits;
    CostReport total;
    Rng rng(config.seed + 31 * static_cast<uint64_t>(k));
    bool ok = true;
    for (int q = 0; q < config.queries; ++q) {
      Point user{rng.NextDouble(), rng.NextDouble()};
      auto outcome = server.Query(user, params, rng);
      if (!outcome.ok()) {
        std::printf("APNN k=%d ERROR %s\n", k,
                    outcome.status().ToString().c_str());
        ok = false;
        break;
      }
      total += outcome->costs;
    }
    if (!ok) continue;
    AveragedOutcome avg;
    avg.ok = true;
    avg.costs = total.DividedBy(config.queries);
    avg.pois_returned = k;
    PrintRow("APNN", "k", k, avg);
  }
  return 0;
}
