// Reproduces Figure 6 (group query, n > 1): PPGNN vs PPGNN-OPT vs Naive
// across delta (6a-6c), k (6d-6f), n (6g-6i), and theta0 (6j-6l),
// reporting communication, user, and LSP cost for each.
//
// Expected shapes (paper): PPGNN-OPT clearly cheapest on comm and user
// cost, the gap growing with delta; Naive the most expensive (ships
// delta-sized location sets per user); LSP costs nearly identical across
// the three variants and dominated by answer sanitation; LSP cost
// decreasing then flattening as theta0 grows; LSP cost linear in n.

#include "bench_util.h"

using namespace ppgnn;
using namespace ppgnn::bench;

namespace {

constexpr Variant kVariants[] = {Variant::kPpgnn, Variant::kPpgnnOpt,
                                 Variant::kNaive};

ProtocolParams Defaults(const BenchConfig& config) {
  ProtocolParams params;  // Table 3 defaults: n=8, d=25, delta=100, k=8,
                          // theta0=0.05
  params.key_bits = config.key_bits;
  return params;
}

}  // namespace

int main() {
  BenchConfig config;
  LspDatabase lsp(GenerateSequoiaLike(config.db_size, config.seed));

  // ---- Fig 6a-6c: vary delta ----
  PrintHeader("Fig 6a-6c: varying delta in [25, 200]", config);
  for (Variant variant : kVariants) {
    for (int delta : {25, 50, 100, 150, 200}) {
      ProtocolParams params = Defaults(config);
      params.delta = delta;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 static_cast<uint64_t>(delta));
      PrintRow(VariantToString(variant), "delta", delta, out);
    }
  }

  // ---- Fig 6d-6f: vary k ----
  PrintHeader("Fig 6d-6f: varying k in [2, 32]", config);
  for (Variant variant : kVariants) {
    for (int k : {2, 4, 8, 16, 32}) {
      ProtocolParams params = Defaults(config);
      params.k = k;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 1000 + static_cast<uint64_t>(k));
      PrintRow(VariantToString(variant), "k", k, out);
    }
  }

  // ---- Fig 6g-6i: vary n ----
  PrintHeader("Fig 6g-6i: varying n in [2, 32]", config);
  for (Variant variant : kVariants) {
    for (int n : {2, 4, 8, 16, 32}) {
      ProtocolParams params = Defaults(config);
      params.n = n;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 2000 + static_cast<uint64_t>(n));
      PrintRow(VariantToString(variant), "n", n, out);
    }
  }

  // ---- Fig 6j-6l: vary theta0 ----
  PrintHeader("Fig 6j-6l: varying theta0 in [0.01, 0.1]", config);
  for (Variant variant : kVariants) {
    int point = 0;
    for (double theta0 : {0.01, 0.025, 0.05, 0.075, 0.1}) {
      ProtocolParams params = Defaults(config);
      params.theta0 = theta0;
      auto out = AverageProtocol(variant, params, lsp, config,
                                 3000 + static_cast<uint64_t>(point++));
      PrintRow(VariantToString(variant), "theta0", theta0, out);
    }
  }
  return 0;
}
