// Command-line driver for one privacy-preserving kGNN query.
//
// Usage:
//   ppgnn_cli [options]
//     --db PATH            load POIs from a CSV ("x,y" or "id,x,y"); when
//                          absent, synthesizes a Sequoia-like database
//     --db-size N          synthetic database cardinality (default 62556)
//     --locations LIST     semicolon-separated "x,y" user locations
//                          (default: 4 random users)
//     --n N                group size when --locations is absent
//     --variant NAME       ppgnn | opt | naive        (default ppgnn)
//     --aggregate NAME     sum | max | min            (default sum)
//     --d N  --delta N  --k N  --theta0 X  --keybits N  --threads N
//     --no-sanitize        run the PPGNN-NAS relaxation
//     --dummies NAME       uniform | poi-density | nearby
//     --keys PATH          reuse a key pair from PATH (see --gen-keys)
//     --gen-keys PATH      generate a key pair, save to PATH, and exit
//     --seed N
//
// Serve mode (in-process LspService + closed-loop load generators):
//   ppgnn_cli --serve [--shards N] [--workers N] [--clients N]
//             [--requests N] [--queue N] [--deadline SECONDS]
//             [plus the options above]
//   Stands up the concurrent LspService front-end and drives it with
//   `--clients` closed-loop client threads issuing `--requests` queries
//   each, then prints throughput, the latency histogram summary, and the
//   service counters.
//
//   --shards N           partition the POI space into N shards behind a
//                        scatter-gather coordinator (ShardedLspService).
//                        Answers are bit-identical to --shards 1; a dead
//                        shard degrades merges instead of failing
//                        queries (arm shard.link.<j> via --fail to see
//                        it). 1 = plain single-node service.
//
//   --replicas R         replicate every shard R-fold behind a health-
//                        monitored replica set (DESIGN.md section 14):
//                        failover + hedging keep answers exact when a
//                        single replica dies (arm
//                        shard.replica.<j>.<r>=error via --fail), and
//                        degraded merges only happen when a whole set
//                        is down. 1 = the unreplicated PR 7 layout.
//                        Applies to the --shards cluster (any N > 1).
//
//   --blinding-pool N    share one pooled Encryptor across the client
//                        threads and keep N blinding factors per
//                        ciphertext level warm from a background
//                        BlindingRefiller thread, so request building
//                        pays the pooled online encryption cost instead
//                        of a fresh blinding exponentiation per
//                        ciphertext (DESIGN.md section 12). 0 = each
//                        request builds its own fixed-base Encryptor.
//
// Overload-resilience knobs (serve mode):
//   --target-p99-ms X    AIMD concurrency limiter's execute-stage p99
//                        target (default 500)
//   --max-concurrency N  AIMD upper bound; 0 = the worker count
//   --no-cost-admission  disable predicted-cost-vs-deadline shedding
//   --no-dedup           disable idempotency-key reply coalescing
//   --wire-deadline-ms N stamp each query's deadline into the wire
//                        trailer (exercises end-to-end deadline
//                        propagation instead of the local budget)
//
// TCP transport (DESIGN.md section 16):
//   ppgnn_cli --listen PORT [--shards N] [--shard-index J]
//             [--workers N] [--db ... | --db-size N --seed S]
//   Serves slice J of the N-way partition over TCP (PORT 0 picks an
//   ephemeral port, printed on startup) until SIGINT/SIGTERM. Every
//   replica of shard J runs this same command; byte-identical answers
//   require every process to build the same database (same --db file or
//   same --db-size/--seed).
//
//   ppgnn_cli --serve --shards N --replicas R \
//             --connect-shard HOST:PORT ...
//   Instead of in-process shard services, the coordinator dials one
//   listed endpoint per (shard, replica), shard-major: the (j, r)
//   endpoint is argument j*R + r. Requires exactly N*R --connect-shard
//   flags. The resilience ladder (retries, hedging, failover, health)
//   rides the sockets unchanged.
//
// Chaos knobs (serve mode):
//   --fail POINT=POLICY  arm a failpoint before serving; repeatable, and
//                        repeated specs *stack* — including on the same
//                        point, so one replica can be slow AND flaky:
//                        --fail shard.replica.0.0=delay:20
//                        --fail shard.replica.0.0=error,p=0.5,seed=3
//                        POLICY is <action>[:<arg>][,p=|seed=|skip=|
//                        every=|times=], e.g.
//                        --fail service.admit=drop,p=0.2,seed=7
//   --retry-budget-ms X  route client traffic through ResilientClient
//                        with an X-millisecond per-call retry budget
//                        (retries + backoff + hedging); prints client
//                        stats alongside the service counters.
//
// Prints the sanitized answer, the per-party costs, and the plaintext
// reference for verification.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ppgnn.h"

namespace {

using namespace ppgnn;

struct CliOptions {
  std::string db_path;
  std::string keys_path;
  std::string gen_keys_path;
  size_t db_size = kSequoiaSize;
  std::string locations;
  int n = 4;
  std::string variant = "ppgnn";
  std::string aggregate = "sum";
  std::string dummies = "uniform";
  ProtocolParams params;
  uint64_t seed = 2018;
  bool no_sanitize = false;
  // Serve mode.
  bool serve = false;
  int shards = 1;
  int replicas = 1;
  int workers = 4;
  int clients = 4;
  int requests_per_client = 8;
  size_t queue_capacity = 64;
  double deadline_seconds = 0.0;
  int blinding_pool = 0;
  // TCP transport.
  int listen_port = -1;  ///< < 0 = not listening; 0 = ephemeral
  int shard_index = 0;
  std::vector<std::string> connect_shards;
  std::vector<std::string> fail_specs;
  double retry_budget_ms = 0.0;
  // Overload-resilience knobs.
  double target_p99_ms = 500.0;
  int max_concurrency = 0;
  bool no_cost_admission = false;
  bool no_dedup = false;
  uint64_t wire_deadline_ms = 0;
};

void PrintUsageAndExit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--db PATH] [--db-size N] [--locations x,y;x,y...]\n"
               "          [--n N] [--variant ppgnn|opt|naive]\n"
               "          [--aggregate sum|max|min] [--d N] [--delta N]\n"
               "          [--k N] [--theta0 X] [--keybits N] [--threads N]\n"
               "          [--dummies uniform|poi-density|nearby]\n"
               "          [--keys PATH] [--gen-keys PATH]\n"
               "          [--no-sanitize] [--seed N]\n"
               "          [--listen PORT] [--shard-index J]\n"
               "          [--connect-shard HOST:PORT]...\n"
               "          [--serve] [--shards N] [--replicas R]\n"
               "          [--workers N] [--clients N]\n"
               "          [--requests N] [--queue N] [--deadline SECONDS]\n"
               "          [--blinding-pool N]\n"
               "          [--fail POINT=POLICY]... [--retry-budget-ms X]\n"
               "          [--target-p99-ms X] [--max-concurrency N]\n"
               "          [--no-cost-admission] [--no-dedup]\n"
               "          [--wire-deadline-ms N]\n",
               argv0);
  std::exit(2);
}

Result<std::vector<Point>> ParseLocations(const std::string& text) {
  std::vector<Point> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    std::string pair = text.substr(pos, end - pos);
    double x, y;
    if (std::sscanf(pair.c_str(), "%lf,%lf", &x, &y) != 2) {
      return Status::InvalidArgument("bad location: " + pair);
    }
    out.push_back({x, y});
    pos = end + 1;
  }
  if (out.empty()) return Status::InvalidArgument("no locations given");
  return out;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  opts.params.key_bits = 512;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) PrintUsageAndExit(argv[0]);
      return argv[++i];
    };
    if (flag == "--db") {
      opts.db_path = next();
    } else if (flag == "--keys") {
      opts.keys_path = next();
    } else if (flag == "--gen-keys") {
      opts.gen_keys_path = next();
    } else if (flag == "--db-size") {
      opts.db_size = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--locations") {
      opts.locations = next();
    } else if (flag == "--n") {
      opts.n = std::atoi(next());
    } else if (flag == "--variant") {
      opts.variant = next();
    } else if (flag == "--aggregate") {
      opts.aggregate = next();
    } else if (flag == "--dummies") {
      opts.dummies = next();
    } else if (flag == "--d") {
      opts.params.d = std::atoi(next());
    } else if (flag == "--delta") {
      opts.params.delta = std::atoi(next());
    } else if (flag == "--k") {
      opts.params.k = std::atoi(next());
    } else if (flag == "--theta0") {
      opts.params.theta0 = std::atof(next());
    } else if (flag == "--keybits") {
      opts.params.key_bits = std::atoi(next());
    } else if (flag == "--threads") {
      opts.params.lsp_threads = std::atoi(next());
    } else if (flag == "--seed") {
      opts.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--no-sanitize") {
      opts.no_sanitize = true;
    } else if (flag == "--serve") {
      opts.serve = true;
    } else if (flag == "--shards") {
      opts.shards = std::atoi(next());
      if (opts.shards < 1)
        return Status::InvalidArgument("--shards must be >= 1");
    } else if (flag == "--replicas") {
      opts.replicas = std::atoi(next());
      if (opts.replicas < 1)
        return Status::InvalidArgument("--replicas must be >= 1");
    } else if (flag == "--workers") {
      opts.workers = std::atoi(next());
    } else if (flag == "--clients") {
      opts.clients = std::atoi(next());
    } else if (flag == "--requests") {
      opts.requests_per_client = std::atoi(next());
    } else if (flag == "--queue") {
      opts.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--deadline") {
      opts.deadline_seconds = std::atof(next());
    } else if (flag == "--blinding-pool") {
      opts.blinding_pool = std::atoi(next());
    } else if (flag == "--listen") {
      opts.listen_port = std::atoi(next());
      if (opts.listen_port < 0 || opts.listen_port > 65535)
        return Status::InvalidArgument("--listen PORT must be in [0, 65535]");
    } else if (flag == "--shard-index") {
      opts.shard_index = std::atoi(next());
      if (opts.shard_index < 0)
        return Status::InvalidArgument("--shard-index must be >= 0");
    } else if (flag == "--connect-shard") {
      opts.connect_shards.push_back(next());
    } else if (flag == "--fail") {
      opts.fail_specs.push_back(next());
    } else if (flag == "--retry-budget-ms") {
      opts.retry_budget_ms = std::atof(next());
    } else if (flag == "--target-p99-ms") {
      opts.target_p99_ms = std::atof(next());
    } else if (flag == "--max-concurrency") {
      opts.max_concurrency = std::atoi(next());
    } else if (flag == "--no-cost-admission") {
      opts.no_cost_admission = true;
    } else if (flag == "--no-dedup") {
      opts.no_dedup = true;
    } else if (flag == "--wire-deadline-ms") {
      opts.wire_deadline_ms = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--help" || flag == "-h") {
      PrintUsageAndExit(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      PrintUsageAndExit(argv[0]);
    }
  }
  return opts;
}

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

// "HOST:PORT" -> (host, port). IPv4 / hostname only — the transport's
// TcpConnect resolves numeric IPv4 addresses.
Result<std::pair<std::string, uint16_t>> ParseEndpoint(
    const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return Status::InvalidArgument("bad endpoint (want HOST:PORT): " + text);
  }
  const int port = std::atoi(text.substr(colon + 1).c_str());
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in endpoint: " + text);
  }
  return std::make_pair(text.substr(0, colon), static_cast<uint16_t>(port));
}

// --listen mode: serve slice `--shard-index` of the `--shards`-way
// partition over TCP until SIGINT/SIGTERM. One process per replica.
int RunListenMode(const CliOptions& opts, std::vector<Poi> pois) {
  if (opts.shard_index >= opts.shards) {
    std::fprintf(stderr, "--shard-index %d out of range for --shards %d\n",
                 opts.shard_index, opts.shards);
    return 2;
  }
  auto slices = PartitionPoisForShards(std::move(pois), opts.shards);
  std::vector<Poi> slice =
      std::move(slices[static_cast<size_t>(opts.shard_index)]);
  std::printf("Shard %d/%d: %zu POIs\n", opts.shard_index, opts.shards,
              slice.size());

  LspDatabase db(std::move(slice));
  ServiceConfig service_config;
  service_config.workers = opts.workers;
  service_config.queue_capacity = opts.queue_capacity;
  service_config.lsp_threads = opts.params.lsp_threads;
  LspService service(db, service_config);

  TcpServerConfig server_config;
  server_config.port = static_cast<uint16_t>(opts.listen_port);
  TcpShardServer server(service, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("Listening on 127.0.0.1:%u (%d workers); Ctrl-C to stop\n",
              server.port(), opts.workers);
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("Stopping: %s\n", server.Stats().ToString().c_str());
  server.Shutdown(/*drain_deadline_seconds=*/5.0);
  service.Shutdown();
  return 0;
}

// Stands up an LspService over `lsp` and drives it with closed-loop
// client threads, each reproducing the coordinator side of Algorithm 1
// via BuildServiceRequest. Returns a process exit code.
int RunServeMode(const CliOptions& opts, const std::vector<Poi>& pois,
                 const LspDatabase& lsp, Variant variant,
                 const KeyPair& keys) {
  ServiceConfig config;
  config.workers = opts.workers;
  config.queue_capacity = opts.queue_capacity;
  config.default_deadline_seconds = opts.deadline_seconds;
  config.lsp_threads = opts.params.lsp_threads;
  config.sanitize = opts.params.sanitize;
  config.target_p99_seconds = opts.target_p99_ms / 1e3;
  config.max_concurrency = opts.max_concurrency;
  config.cost_admission = !opts.no_cost_admission;
  config.enable_dedup = !opts.no_dedup;

  // Offline/online split: one pooled Encryptor shared by every client
  // thread, kept warm by a background refiller. The clients hold the
  // secret key, so the refiller's exponentiations take the CRT-split
  // fixed-base path. The service observes the encryptor for its stats
  // surface only.
  const bool layered = variant == Variant::kPpgnnOpt;
  std::shared_ptr<const Encryptor> pooled_enc;
  std::unique_ptr<BlindingRefiller> refiller;
  if (opts.blinding_pool > 0) {
    pooled_enc = std::make_shared<const Encryptor>(keys);
    BlindingRefillerOptions refill;
    refill.levels = layered ? std::vector<int>{1, 2} : std::vector<int>{1};
    refill.target = static_cast<size_t>(opts.blinding_pool);
    refill.low_watermark = std::max<size_t>(refill.target / 2, 1);
    refill.seed = opts.seed ^ 0xb11dull;
    refiller = std::make_unique<BlindingRefiller>(pooled_enc, refill);
    config.observed_encryptor = pooled_enc;
    std::printf(
        "Blinding pool: target %d per level; expected online cost "
        "%.1f us/ct pooled vs %.2f ms fixed-base vs %.2f ms naive "
        "(%d-bit keys, level 1)\n",
        opts.blinding_pool,
        1e6 * CostModel::AnalyticEncryptSeconds(opts.params.key_bits, 1,
                                                EncryptPath::kPooled),
        1e3 * CostModel::AnalyticEncryptSeconds(opts.params.key_bits, 1,
                                                EncryptPath::kFixedBase),
        1e3 * CostModel::AnalyticEncryptSeconds(opts.params.key_bits, 1,
                                                EncryptPath::kNaive),
        opts.params.key_bits);
  }
  // --shards N > 1 swaps the single-node service for a scatter-gather
  // cluster; the client loop only ever talks to the front-end, which has
  // the same Submit/Call surface either way.
  std::unique_ptr<LspService> single;
  std::unique_ptr<ShardedLspService> cluster;
  if (opts.shards > 1 || !opts.connect_shards.empty()) {
    ShardClusterConfig cluster_config;
    cluster_config.shards = opts.shards;
    cluster_config.replicas = opts.replicas;
    cluster_config.front = config;
    cluster_config.shard.workers = opts.workers;
    cluster_config.link_policy.seed = opts.seed ^ 0x5a4dull;
    cluster_config.background_prober = opts.replicas > 1;
    if (!opts.connect_shards.empty()) {
      // Remote shard tier: one endpoint per (shard, replica), shard-major.
      const size_t want = static_cast<size_t>(opts.shards) *
                          static_cast<size_t>(opts.replicas);
      if (opts.connect_shards.size() != want) {
        std::fprintf(stderr,
                     "--connect-shard: got %zu endpoints, need %zu "
                     "(--shards %d x --replicas %d, shard-major)\n",
                     opts.connect_shards.size(), want, opts.shards,
                     opts.replicas);
        return 2;
      }
      auto endpoints = std::make_shared<
          std::vector<std::pair<std::string, uint16_t>>>();
      for (const std::string& spec : opts.connect_shards) {
        auto parsed = ParseEndpoint(spec);
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
          return 2;
        }
        endpoints->push_back(std::move(parsed).value());
      }
      const uint64_t link_seed = opts.seed ^ 0x7c91ull;
      const int replicas = opts.replicas;
      cluster_config.link_factory =
          [endpoints, link_seed, replicas](int shard, int replica) {
            const auto& endpoint = (*endpoints)[static_cast<size_t>(
                shard * replicas + replica)];
            TcpLinkConfig link;
            link.host = endpoint.first;
            link.port = endpoint.second;
            link.seed = link_seed + static_cast<uint64_t>(shard) +
                        static_cast<uint64_t>(replica) * 1000003ull;
            return std::make_unique<TcpLink>(link);
          };
      std::printf(
          "Dialing %zu remote shard servers (every server must hold the "
          "matching slice of the same database)\n",
          endpoints->size());
    }
    cluster =
        std::make_unique<ShardedLspService>(pois, std::move(cluster_config));
    std::printf("Cluster: %d shards x %d replicas over %zu POIs (",
                opts.shards, opts.replicas, pois.size());
    for (int j = 0; j < cluster->shards(); ++j) {
      std::printf("%s%zu", j > 0 ? ", " : "", cluster->shard_size(j));
    }
    std::printf(" per shard)\n");
  } else {
    single = std::make_unique<LspService>(lsp, config);
  }
  LspService& service = cluster != nullptr ? cluster->front() : *single;

  for (const std::string& spec : opts.fail_specs) {
    // Stacking (not replacing) semantics: repeated --fail flags compose,
    // even on the same point.
    Status armed = FailpointAddFromSpec(spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "--fail %s: %s\n", spec.c_str(),
                   armed.ToString().c_str());
      return 2;
    }
    std::printf("Armed failpoint: %s\n", spec.c_str());
  }

  RetryPolicy retry_policy;
  retry_policy.total_budget_seconds = opts.retry_budget_ms / 1e3;
  retry_policy.hedge = true;
  retry_policy.seed = opts.seed ^ 0xc1a05u;
  ResilientClient resilient(service, retry_policy);
  const bool use_resilient = opts.retry_budget_ms > 0;

  std::printf(
      "Serving: %d workers, queue=%zu, deadline=%s, %d clients x %d "
      "requests (lsp_threads=%d)%s\n"
      "Admission: cost=%s dedup=%s target_p99=%.0fms max_concurrency=%d "
      "wire_deadline=%llums\n",
      opts.workers, opts.queue_capacity,
      opts.deadline_seconds > 0 ? std::to_string(opts.deadline_seconds).c_str()
                                : "none",
      opts.clients, opts.requests_per_client, opts.params.lsp_threads,
      use_resilient ? ", resilient client" : "",
      opts.no_cost_admission ? "off" : "on", opts.no_dedup ? "off" : "on",
      opts.target_p99_ms,
      opts.max_concurrency > 0 ? opts.max_concurrency : opts.workers,
      static_cast<unsigned long long>(opts.wire_deadline_ms));

  std::atomic<uint64_t> answers{0}, service_errors{0}, client_errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(opts.seed * 7919 + static_cast<uint64_t>(c));
      Decryptor dec(keys.pub, keys.sec);
      for (int i = 0; i < opts.requests_per_client; ++i) {
        std::vector<Point> group;
        for (int u = 0; u < opts.params.n; ++u) {
          group.push_back({rng.NextDouble(), rng.NextDouble()});
        }
        RequestWireOptions wire;
        wire.deadline_ms = opts.wire_deadline_ms;
        auto request = BuildServiceRequest(variant, opts.params, group, keys,
                                           rng, wire, pooled_enc.get());
        if (!request.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c,
                       request.status().ToString().c_str());
          client_errors.fetch_add(1);
          continue;
        }
        std::vector<uint8_t> frame;
        if (use_resilient) {
          frame = resilient.Call(std::move(request).value()).frame;
        } else {
          frame = service.Call(std::move(request).value());
        }
        auto reply = ParseServedReply(frame, keys, dec, layered);
        if (!reply.ok()) {
          std::fprintf(stderr, "client %d: transport garbage: %s\n", c,
                       reply.status().ToString().c_str());
          client_errors.fetch_add(1);
        } else if (reply->ok) {
          answers.fetch_add(1);
        } else {
          service_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (cluster != nullptr) {
    cluster->Shutdown();
  } else {
    single->Shutdown();
  }

  const uint64_t total = answers.load() + service_errors.load();
  std::printf("\n%llu replies in %.2f s => %.2f queries/s\n",
              static_cast<unsigned long long>(total), elapsed,
              elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0);
  std::printf("answers=%llu service_errors=%llu client_errors=%llu\n",
              static_cast<unsigned long long>(answers.load()),
              static_cast<unsigned long long>(service_errors.load()),
              static_cast<unsigned long long>(client_errors.load()));
  std::printf("%s\n", (cluster != nullptr ? cluster->Stats() : single->Stats())
                          .ToString()
                          .c_str());
  if (use_resilient) {
    std::printf("%s\n", resilient.Stats().ToString().c_str());
  }
  if (refiller != nullptr) {
    refiller->Stop();
    const BlindingRefiller::Stats refill = refiller->stats();
    std::printf("refiller: passes=%llu refilled=%llu errors=%llu\n",
                static_cast<unsigned long long>(refill.passes),
                static_cast<unsigned long long>(refill.refilled),
                static_cast<unsigned long long>(refill.errors));
  }
  FailpointClearAll();
  return client_errors.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts_or = ParseArgs(argc, argv);
  if (!opts_or.ok()) {
    std::fprintf(stderr, "%s\n", opts_or.status().ToString().c_str());
    return 2;
  }
  CliOptions opts = std::move(opts_or).value();

  // --- key generation mode ---
  if (!opts.gen_keys_path.empty()) {
    Rng rng(opts.seed);
    auto keys = GenerateKeyPair(opts.params.key_bits, rng);
    if (!keys.ok()) {
      std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
      return 1;
    }
    Status saved = SaveKeyPair(opts.gen_keys_path, keys.value());
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("Wrote a %d-bit key pair to %s (protect this file: it "
                "holds the secret key).\n",
                opts.params.key_bits, opts.gen_keys_path.c_str());
    return 0;
  }

  // --- database ---
  std::vector<Poi> pois;
  if (!opts.db_path.empty()) {
    auto loaded = LoadCsv(opts.db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", opts.db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    pois = std::move(loaded).value();
    std::printf("Loaded %zu POIs from %s\n", pois.size(),
                opts.db_path.c_str());
  } else {
    pois = GenerateSequoiaLike(opts.db_size, opts.seed);
    std::printf("Synthesized %zu Sequoia-like POIs (seed %llu)\n",
                pois.size(), static_cast<unsigned long long>(opts.seed));
  }
  // --listen needs only the POI slice — no keys, no group, no query.
  if (opts.listen_port >= 0) {
    return RunListenMode(opts, std::move(pois));
  }

  // Serve mode may need the raw POI list again (sharded clusters build
  // one database per slice), so the database takes a copy.
  LspDatabase lsp(pois);

  // --- group ---
  Rng rng(opts.seed + 1);
  std::vector<Point> group;
  if (!opts.locations.empty()) {
    auto parsed = ParseLocations(opts.locations);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    group = std::move(parsed).value();
  } else {
    for (int i = 0; i < opts.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
  }
  opts.params.n = static_cast<int>(group.size());
  opts.params.sanitize = !opts.no_sanitize;
  opts.params.blinding_pool = opts.blinding_pool;

  // --- enums ---
  auto aggregate = AggregateKindFromString(opts.aggregate);
  if (!aggregate.ok()) {
    std::fprintf(stderr, "%s\n", aggregate.status().ToString().c_str());
    return 2;
  }
  opts.params.aggregate = aggregate.value();
  Variant variant;
  if (opts.variant == "ppgnn") {
    variant = Variant::kPpgnn;
  } else if (opts.variant == "opt") {
    variant = Variant::kPpgnnOpt;
  } else if (opts.variant == "naive") {
    variant = Variant::kNaive;
  } else {
    std::fprintf(stderr, "unknown variant: %s\n", opts.variant.c_str());
    return 2;
  }

  PoiDensityDummyGenerator density(lsp.pois(), 32);
  NearbyDummyGenerator nearby(0.05);
  if (opts.dummies == "poi-density") {
    opts.params.dummy_generator = &density;
  } else if (opts.dummies == "nearby") {
    opts.params.dummy_generator = &nearby;
  } else if (opts.dummies != "uniform") {
    std::fprintf(stderr, "unknown dummy policy: %s\n", opts.dummies.c_str());
    return 2;
  }

  std::printf(
      "Query: %s, n=%d, d=%d, delta=%d, k=%d, theta0=%.3f, F=%s, %d-bit "
      "keys, dummies=%s%s\n",
      VariantToString(variant), opts.params.n, opts.params.d,
      opts.params.delta, opts.params.k, opts.params.theta0,
      AggregateKindToString(opts.params.aggregate), opts.params.key_bits,
      opts.dummies.c_str(), opts.params.sanitize ? "" : " [NAS]");

  KeyPair loaded_keys;
  const KeyPair* fixed_keys = nullptr;
  if (!opts.keys_path.empty()) {
    auto keys = LoadKeyPair(opts.keys_path);
    if (!keys.ok()) {
      std::fprintf(stderr, "loading keys: %s\n",
                   keys.status().ToString().c_str());
      return 1;
    }
    loaded_keys = std::move(keys).value();
    if (loaded_keys.pub.key_bits != opts.params.key_bits) {
      std::printf("(using the key file's %d-bit modulus, overriding "
                  "--keybits %d)\n",
                  loaded_keys.pub.key_bits, opts.params.key_bits);
      opts.params.key_bits = loaded_keys.pub.key_bits;
    }
    fixed_keys = &loaded_keys;
  }

  if (opts.serve) {
    if (fixed_keys == nullptr) {
      auto keys = GenerateKeyPair(opts.params.key_bits, rng);
      if (!keys.ok()) {
        std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
        return 1;
      }
      loaded_keys = std::move(keys).value();
      fixed_keys = &loaded_keys;
    }
    return RunServeMode(opts, pois, lsp, variant, *fixed_keys);
  }

  auto outcome = RunQuery(variant, opts.params, group, lsp, rng, fixed_keys);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\nAnswer (%zu POIs):\n", outcome->pois.size());
  for (size_t i = 0; i < outcome->pois.size(); ++i) {
    std::printf("  #%zu (%.6f, %.6f)  F=%.6f\n", i + 1, outcome->pois[i].x,
                outcome->pois[i].y,
                AggregateCost(opts.params.aggregate, outcome->pois[i], group));
  }
  std::printf("\nCosts: %s\n", outcome->costs.ToString().c_str());
  std::printf(
      "delta'=%llu, m=%zu, omega=%llu, sanitation: %llu samples / %llu "
      "tests (%.1f ms)\n",
      static_cast<unsigned long long>(outcome->info.delta_prime),
      outcome->info.answer_width_m,
      static_cast<unsigned long long>(outcome->info.omega),
      static_cast<unsigned long long>(outcome->info.sanitize_samples),
      static_cast<unsigned long long>(outcome->info.sanitize_tests),
      outcome->info.sanitize_seconds * 1e3);

  Rng ref_rng(0);
  auto reference = ReferenceAnswer(opts.params, group, lsp, ref_rng);
  bool match = reference.size() == outcome->pois.size();
  for (size_t i = 0; match && i < reference.size(); ++i) {
    match = std::abs(reference[i].poi.location.x - outcome->pois[i].x) < 1e-8 &&
            std::abs(reference[i].poi.location.y - outcome->pois[i].y) < 1e-8;
  }
  std::printf("Plaintext reference check: %s\n", match ? "PASS" : "FAIL");
  return match ? 0 : 1;
}
