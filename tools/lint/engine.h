// ppgnn_lint rule engine: project invariants enforced as named rules.
//
// The analyzer is deliberately textual — a lexer plus per-rule pattern
// matchers, no type information — so it stays dependency-free, runs over
// the whole tree in milliseconds, and its verdicts are easy to predict
// from the source. The rules encode conventions this repo already
// follows; see DESIGN.md section 10 for the rationale of each.
//
// Rules:
//   unchecked-result  bare Result<T>::value() with no ok()/status() guard
//                     in the preceding lines, and statements that discard
//                     the Status/Result of a fallible call.
//   secret-flow       identifiers tagged `// ppgnn: secret(a, b)` must not
//                     reach stream/log sinks, Encode*/Serialize* calls, or
//                     if/while/for/switch conditions (constant-time
//                     discipline for key material and indicator indices).
//   determinism       no rand/time/std::random_device/system_clock outside
//                     common/random and service/ timing code — everything
//                     else must draw from ppgnn::Rng so failpoint/chaos
//                     schedules replay bit-identically.
//   include-hygiene   each src/**.cc includes its own header first, and no
//                     layer includes a higher layer (bigint never sees
//                     service/); inside src/service/ a second ranked table
//                     orders the service files themselves.
//   guarded-by        members tagged `// ppgnn: guarded_by(member, mu)` may
//                     only be touched inside a recognized lock_guard /
//                     unique_lock / scoped_lock scope over `mu`, or inside
//                     a function tagged `// ppgnn: requires(mu)`; calling a
//                     requires-tagged function without the mutex, or an
//                     `excludes(mu)`-tagged function while holding it, is
//                     also a violation.
//   lock-order        the acquisition graph (nested RAII scopes plus
//                     requires edges, nodes qualified per file) must be
//                     acyclic; any cycle is reported with every witness
//                     edge's line.
//   blocking-under-lock  no Encrypt*/Pow*/Exp*/Refill* calls, sleeps,
//                     stream/log sinks, or condition-variable waits (other
//                     than on the single held lock's own RAII variable)
//                     inside a held-lock scope.
//   atomics-discipline  memory_order_relaxed only on identifiers tagged
//                     `// ppgnn: stat_counter(...)` — never on
//                     control-flow-feeding state such as cancel flags.
//
// A `.cc` file inherits the concurrency tags of its own header
// (src/d/x.cc reads src/d/x.h), so members can be annotated once at
// their declaration.
//
// Suppression: `// ppgnn-lint: allow(rule): justification` on the finding
// line, or alone on the line directly above it. The justification is
// mandatory; an empty one is itself reported (rule "suppression").

#ifndef PPGNN_TOOLS_LINT_ENGINE_H_
#define PPGNN_TOOLS_LINT_ENGINE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ppgnn {
namespace lint {

/// One rule violation, anchored to a file and 1-based line.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message && hint == other.hint;
  }
};

/// A file to analyze. `path` is repo-relative with forward slashes; the
/// path prefix drives the scoping decisions (src/ layering, exemptions).
struct SourceFile {
  std::string path;
  std::string content;
};

/// The file-local concurrency annotations of one file, parsed from
/// `// ppgnn: guarded_by(...)` / `requires(...)` / `excludes(...)` /
/// `stat_counter(...)` tag comments (the tag must open the comment).
struct ConcurrencyTags {
  /// member identifier -> name of the mutex that must be held.
  std::map<std::string, std::string> guarded;
  /// Identifiers sanctioned for memory_order_relaxed (stats only).
  std::set<std::string> stat_counters;
  /// function name -> mutexes its body assumes held (callers must hold).
  std::map<std::string, std::set<std::string>> requires_fns;
  /// function name -> mutexes that must NOT be held across a call to it.
  std::map<std::string, std::set<std::string>> excludes_fns;
  /// Lines carrying a guarded_by tag (plus the next line when the tag
  /// stands alone): the declaration site itself is exempt.
  std::set<int> declaration_lines;

  bool empty() const {
    return guarded.empty() && stat_counters.empty() && requires_fns.empty() &&
           excludes_fns.empty();
  }
};

/// Cross-file facts gathered in a first pass over the whole file set.
struct ProjectIndex {
  /// Names of functions declared to return Status or Result<T> anywhere
  /// in the tree; used by the discarded-call half of unchecked-result.
  std::set<std::string> status_functions;
  /// Every path in the file set (for own-header existence checks).
  std::set<std::string> all_paths;
  /// Per-path concurrency annotations; a `.cc` merges its own header's
  /// entry on top of its own (declare once, enforce everywhere).
  std::map<std::string, ConcurrencyTags> concurrency_tags;
};

/// Rule-level counters for the `--stats` report. Deterministic.
struct LintStats {
  std::size_t files_scanned = 0;
  /// Findings silenced by a justified allow comment.
  std::size_t suppressions_used = 0;
  /// Unsuppressed findings per rule (includes the meta rule
  /// "suppression" when it fired).
  std::map<std::string, std::size_t> per_rule;
};

/// First pass: collect the project facts the per-file rules need.
ProjectIndex BuildIndex(const std::vector<SourceFile>& files);

/// Runs every rule over one file and applies its suppression comments.
/// Returned findings are unsorted; RunLint sorts globally.
std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index);

/// As above, restricted to the rules named in `enabled` (empty = all).
/// The meta rule "suppression" is never filtered out. When `stats` is
/// non-null, suppression usage is accumulated into it.
std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index,
                                 const std::set<std::string>& enabled,
                                 LintStats* stats);

/// Index + analyze + sort over a whole file set. Deterministic: the same
/// files yield the same findings in the same order, always.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files);

/// As above with rule filtering (empty = all) and optional stats output.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const std::set<std::string>& enabled,
                             LintStats* stats);

/// Reads every C++ source file (.h/.hh/.hpp/.cc/.cpp) under the given
/// root directories, sorted by path. Paths are recorded as given + the
/// relative part, normalized to forward slashes. On I/O failure returns
/// an empty vector and sets *error.
std::vector<SourceFile> LoadTree(const std::vector<std::string>& roots,
                                 std::string* error);

/// Deterministic human-readable report: one block per finding plus a
/// trailing summary line. Byte-identical across runs on identical input.
std::string FormatReport(const std::vector<Finding>& findings,
                         size_t files_scanned);

/// Names of all real rules (excludes the meta rule "suppression").
const std::vector<std::string>& RuleNames();

}  // namespace lint
}  // namespace ppgnn

#endif  // PPGNN_TOOLS_LINT_ENGINE_H_
