// ppgnn_lint rule engine: project invariants enforced as named rules.
//
// The analyzer is deliberately textual — a lexer plus per-rule pattern
// matchers, no type information — so it stays dependency-free, runs over
// the whole tree in milliseconds, and its verdicts are easy to predict
// from the source. The rules encode conventions this repo already
// follows; see DESIGN.md section 10 for the rationale of each.
//
// Rules:
//   unchecked-result  bare Result<T>::value() with no ok()/status() guard
//                     in the preceding lines, and statements that discard
//                     the Status/Result of a fallible call.
//   secret-flow       identifiers tagged `// ppgnn: secret(a, b)` must not
//                     reach stream/log sinks, Encode*/Serialize* calls, or
//                     if/while/for/switch conditions (constant-time
//                     discipline for key material and indicator indices).
//   determinism       no rand/time/std::random_device/system_clock outside
//                     common/random and service/ timing code — everything
//                     else must draw from ppgnn::Rng so failpoint/chaos
//                     schedules replay bit-identically.
//   include-hygiene   each src/**.cc includes its own header first, and no
//                     layer includes a higher layer (bigint never sees
//                     service/).
//
// Suppression: `// ppgnn-lint: allow(rule): justification` on the finding
// line, or alone on the line directly above it. The justification is
// mandatory; an empty one is itself reported (rule "suppression").

#ifndef PPGNN_TOOLS_LINT_ENGINE_H_
#define PPGNN_TOOLS_LINT_ENGINE_H_

#include <set>
#include <string>
#include <vector>

namespace ppgnn {
namespace lint {

/// One rule violation, anchored to a file and 1-based line.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message && hint == other.hint;
  }
};

/// A file to analyze. `path` is repo-relative with forward slashes; the
/// path prefix drives the scoping decisions (src/ layering, exemptions).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Cross-file facts gathered in a first pass over the whole file set.
struct ProjectIndex {
  /// Names of functions declared to return Status or Result<T> anywhere
  /// in the tree; used by the discarded-call half of unchecked-result.
  std::set<std::string> status_functions;
  /// Every path in the file set (for own-header existence checks).
  std::set<std::string> all_paths;
};

/// First pass: collect the project facts the per-file rules need.
ProjectIndex BuildIndex(const std::vector<SourceFile>& files);

/// Runs every rule over one file and applies its suppression comments.
/// Returned findings are unsorted; RunLint sorts globally.
std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index);

/// Index + analyze + sort over a whole file set. Deterministic: the same
/// files yield the same findings in the same order, always.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files);

/// Reads every C++ source file (.h/.hh/.hpp/.cc/.cpp) under the given
/// root directories, sorted by path. Paths are recorded as given + the
/// relative part, normalized to forward slashes. On I/O failure returns
/// an empty vector and sets *error.
std::vector<SourceFile> LoadTree(const std::vector<std::string>& roots,
                                 std::string* error);

/// Deterministic human-readable report: one block per finding plus a
/// trailing summary line. Byte-identical across runs on identical input.
std::string FormatReport(const std::vector<Finding>& findings,
                         size_t files_scanned);

/// Names of all real rules (excludes the meta rule "suppression").
const std::vector<std::string>& RuleNames();

}  // namespace lint
}  // namespace ppgnn

#endif  // PPGNN_TOOLS_LINT_ENGINE_H_
