#include "tools/lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace ppgnn {
namespace lint {
namespace {

bool HasCppExtension(const std::string& path) {
  static const char* const kExts[] = {".h", ".hh", ".hpp", ".cc", ".cpp"};
  for (const char* ext : kExts) {
    size_t len = std::char_traits<char>::length(ext);
    if (path.size() > len && path.compare(path.size() - len, len, ext) == 0)
      return true;
  }
  return false;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// One parsed `ppgnn-lint: allow(rule[, rule]): justification` comment.
struct Suppression {
  int line = 0;              // line the comment sits on
  bool alone = false;        // comment is the only thing on its line
  std::vector<std::string> rules;
  std::string justification;
};

std::vector<Suppression> ParseSuppressions(
    const SourceFile& file, const std::vector<Token>& tokens,
    const std::vector<std::string>& lines, std::vector<Finding>* meta) {
  std::vector<Suppression> out;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) continue;
    // The marker must open the comment; prose mentioning the syntax
    // (docs, hint strings quoted into comments) does not suppress.
    if (t.text.rfind("ppgnn-lint:", 0) != 0) continue;
    size_t tag = 0;
    size_t allow = t.text.find("allow", tag);
    size_t open = allow == std::string::npos ? std::string::npos
                                             : t.text.find('(', allow);
    size_t close = open == std::string::npos ? std::string::npos
                                             : t.text.find(')', open);
    if (close == std::string::npos) {
      meta->push_back(Finding{
          file.path, t.line, "suppression",
          "malformed ppgnn-lint comment (expected `ppgnn-lint: "
          "allow(rule): justification`)",
          "fix the comment or delete it"});
      continue;
    }
    Suppression s;
    s.line = t.line;
    // Rule list: comma-separated identifiers (kebab-case allowed).
    std::string name;
    for (size_t i = open + 1; i <= close; ++i) {
      char c = t.text[i];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_') {
        name.push_back(c);
      } else if (!name.empty()) {
        s.rules.push_back(name);
        name.clear();
      }
    }
    size_t colon = t.text.find(':', close);
    if (colon != std::string::npos) {
      std::string just = t.text.substr(colon + 1);
      size_t b = just.find_first_not_of(" \t");
      s.justification = b == std::string::npos ? "" : just.substr(b);
    }
    // The raw line tells us whether the comment stands alone (in which
    // case it covers the next line as well).
    if (t.line >= 1 && static_cast<size_t>(t.line) <= lines.size()) {
      const std::string& raw = lines[static_cast<size_t>(t.line) - 1];
      size_t slash = raw.find("//");
      s.alone = slash != std::string::npos &&
                raw.find_first_not_of(" \t") == slash;
    }

    if (s.rules.empty()) {
      meta->push_back(Finding{
          file.path, t.line, "suppression",
          "suppression names no rule",
          "use `ppgnn-lint: allow(rule): justification`"});
      continue;
    }
    const std::vector<std::string>& known = RuleNames();
    for (const std::string& r : s.rules) {
      if (std::find(known.begin(), known.end(), r) == known.end()) {
        std::string known_list;
        for (const std::string& k : known) {
          if (!known_list.empty()) known_list += ", ";
          known_list += k;
        }
        meta->push_back(Finding{
            file.path, t.line, "suppression",
            "suppression names unknown rule `" + r + "`",
            "known rules: " + known_list});
      }
    }
    if (s.justification.empty()) {
      meta->push_back(Finding{
          file.path, t.line, "suppression",
          "suppression has no justification",
          "every allow must say why: `ppgnn-lint: allow(rule): <reason>`"});
      continue;  // an unjustified allow suppresses nothing
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Collects function names declared (or defined) with a Status or
/// Result<T> return type:  `Status Name(` / `Result<...> Name(`.
void CollectStatusFunctions(const std::vector<Token>& toks,
                            std::set<std::string>* names) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    size_t after_type = 0;
    if (t.text == "Status") {
      after_type = i + 1;
    } else if (t.text == "Result") {
      // Balance the template argument list; `>>` closes two levels.
      size_t j = i + 1;
      while (j < toks.size() && toks[j].kind == TokKind::kComment) ++j;
      if (j >= toks.size() || toks[j].kind != TokKind::kPunct ||
          toks[j].text != "<")
        continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
        if (toks[j].text == ">>") depth -= 2;
        if (depth <= 0) break;
      }
      if (j >= toks.size()) continue;
      after_type = j + 1;
    } else {
      continue;
    }
    while (after_type < toks.size() &&
           toks[after_type].kind == TokKind::kComment)
      ++after_type;
    if (after_type + 1 >= toks.size()) continue;
    const Token& name = toks[after_type];
    const Token* open = &toks[after_type + 1];
    size_t k = after_type + 1;
    while (k < toks.size() && toks[k].kind == TokKind::kComment) ++k;
    if (k >= toks.size()) continue;
    open = &toks[k];
    if (name.kind == TokKind::kIdent && open->kind == TokKind::kPunct &&
        open->text == "(") {
      names->insert(name.text);
    }
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "unchecked-result", "secret-flow",         "determinism",
      "include-hygiene",  "guarded-by",          "lock-order",
      "blocking-under-lock", "atomics-discipline"};
  return kRules;
}

ProjectIndex BuildIndex(const std::vector<SourceFile>& files) {
  ProjectIndex index;
  for (const SourceFile& f : files) {
    index.all_paths.insert(f.path);
    std::vector<Token> toks = Lex(f.content);
    CollectStatusFunctions(toks, &index.status_functions);
    ConcurrencyTags tags = ParseConcurrencyTags(toks, SplitLines(f.content));
    if (!tags.empty()) index.concurrency_tags[f.path] = std::move(tags);
  }
  return index;
}

std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index,
                                 const std::set<std::string>& enabled,
                                 LintStats* stats) {
  FileContext ctx;
  ctx.file = &file;
  ctx.index = &index;
  ctx.tokens = Lex(file.content);
  ctx.lines = SplitLines(file.content);

  std::vector<Finding> meta;
  std::vector<Suppression> allows =
      ParseSuppressions(file, ctx.tokens, ctx.lines, &meta);

  std::vector<Finding> raw;
  CheckUncheckedResult(ctx, &raw);
  CheckSecretFlow(ctx, &raw);
  CheckDeterminism(ctx, &raw);
  CheckIncludeHygiene(ctx, &raw);
  CheckGuardedBy(ctx, &raw);
  CheckLockOrder(ctx, &raw);
  CheckBlockingUnderLock(ctx, &raw);
  CheckAtomicsDiscipline(ctx, &raw);

  std::vector<Finding> out = std::move(meta);  // never suppressible
  for (Finding& f : raw) {
    // Rule filtering happens before suppression so --rules=... and --stats
    // only report (and count allows for) the rules actually in play.
    if (!enabled.empty() && enabled.count(f.rule) == 0) continue;
    bool suppressed = false;
    for (const Suppression& s : allows) {
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) == s.rules.end())
        continue;
      if (f.line == s.line || (s.alone && f.line == s.line + 1)) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      if (stats != nullptr) ++stats->suppressions_used;
    } else {
      out.push_back(std::move(f));
    }
  }
  if (stats != nullptr) {
    for (const Finding& f : out) ++stats->per_rule[f.rule];
  }
  return out;
}

std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index) {
  return AnalyzeFile(file, index, {}, nullptr);
}

std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const std::set<std::string>& enabled,
                             LintStats* stats) {
  ProjectIndex index = BuildIndex(files);
  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    std::vector<Finding> file_findings = AnalyzeFile(f, index, enabled, stats);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  if (stats != nullptr) stats->files_scanned = files.size();
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<Finding> RunLint(const std::vector<SourceFile>& files) {
  return RunLint(files, {}, nullptr);
}

std::vector<SourceFile> LoadTree(const std::vector<std::string>& roots,
                                 std::string* error) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      if (error != nullptr) *error = "not a directory: " + root;
      return {};
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      std::string path = it->path().generic_string();
      if (!HasCppExtension(path)) continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in.is_open()) {
        if (error != nullptr) *error = "cannot read " + path;
        return {};
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(SourceFile{std::move(path), buf.str()});
    }
    if (ec) {
      if (error != nullptr) *error = "walk failed under " + root;
      return {};
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

std::string FormatReport(const std::vector<Finding>& findings,
                         size_t files_scanned) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.hint.empty()) out << "    hint: " << f.hint << "\n";
  }
  out << "ppgnn-lint: " << findings.size() << " finding"
      << (findings.size() == 1 ? "" : "s") << " in " << files_scanned
      << " file" << (files_scanned == 1 ? "" : "s") << " scanned\n";
  return out.str();
}

}  // namespace lint
}  // namespace ppgnn
