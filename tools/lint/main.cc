// ppgnn_lint: the project-invariant static analyzer.
//
//   ppgnn_lint [--list-rules] [dir...]
//
// Walks the given directories (default: src tools bench, relative to the
// working directory — the `lint` CMake target runs from the repo root),
// analyzes every C++ source file, and prints findings. Exit status:
//   0  clean
//   1  unsuppressed findings
//   2  usage or I/O error

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/engine.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : ppgnn::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: ppgnn_lint [--list-rules] [dir...]\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ppgnn_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    roots.push_back(std::move(arg));
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  std::string error;
  std::vector<ppgnn::lint::SourceFile> files =
      ppgnn::lint::LoadTree(roots, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "ppgnn_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<ppgnn::lint::Finding> findings = ppgnn::lint::RunLint(files);
  std::string report = ppgnn::lint::FormatReport(findings, files.size());
  std::fputs(report.c_str(), stdout);
  return findings.empty() ? 0 : 1;
}
