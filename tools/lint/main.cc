// ppgnn_lint: the project-invariant static analyzer.
//
//   ppgnn_lint [--list-rules] [--rules=a,b,...] [--stats] [dir...]
//
// Walks the given directories (default: src tools bench, relative to the
// working directory — the `lint` CMake target runs from the repo root),
// analyzes every C++ source file, and prints findings.
//   --rules=a,b  run only the named rules (the meta rule "suppression"
//                always runs); unknown names are a usage error.
//   --stats      append per-rule finding counts, files scanned, and the
//                number of justified suppressions used.
// Exit status:
//   0  clean
//   1  unsuppressed findings
//   2  usage or I/O error

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/engine.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::set<std::string> enabled;
  bool want_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : ppgnn::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ppgnn_lint [--list-rules] [--rules=a,b,...] [--stats] "
          "[dir...]\n");
      return 0;
    }
    if (arg == "--stats") {
      want_stats = true;
      continue;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      const std::vector<std::string>& known = ppgnn::lint::RuleNames();
      std::string name;
      for (size_t c = 8; c <= arg.size(); ++c) {
        if (c < arg.size() && arg[c] != ',') {
          name.push_back(arg[c]);
          continue;
        }
        if (name.empty()) continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          std::fprintf(stderr, "ppgnn_lint: unknown rule `%s`\n",
                       name.c_str());
          return 2;
        }
        enabled.insert(name);
        name.clear();
      }
      if (enabled.empty()) {
        std::fprintf(stderr, "ppgnn_lint: --rules= names no rule\n");
        return 2;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ppgnn_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    roots.push_back(std::move(arg));
  }
  if (roots.empty()) roots = {"src", "tools", "bench"};

  std::string error;
  std::vector<ppgnn::lint::SourceFile> files =
      ppgnn::lint::LoadTree(roots, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "ppgnn_lint: %s\n", error.c_str());
    return 2;
  }

  ppgnn::lint::LintStats stats;
  std::vector<ppgnn::lint::Finding> findings =
      ppgnn::lint::RunLint(files, enabled, &stats);
  std::string report = ppgnn::lint::FormatReport(findings, files.size());
  std::fputs(report.c_str(), stdout);
  if (want_stats) {
    std::printf("rules run: %s\n",
                enabled.empty() ? "all" : [&] {
                  std::string s;
                  for (const std::string& r : enabled) {
                    if (!s.empty()) s += ",";
                    s += r;
                  }
                  return s;
                }().c_str());
    for (const std::string& rule : ppgnn::lint::RuleNames()) {
      if (!enabled.empty() && enabled.count(rule) == 0) continue;
      auto it = stats.per_rule.find(rule);
      std::printf("  %-22s %zu\n", rule.c_str(),
                  it == stats.per_rule.end() ? size_t{0} : it->second);
    }
    auto meta = stats.per_rule.find("suppression");
    if (meta != stats.per_rule.end()) {
      std::printf("  %-22s %zu\n", "suppression", meta->second);
    }
    std::printf("suppressions used: %zu\n", stats.suppressions_used);
  }
  return findings.empty() ? 0 : 1;
}
