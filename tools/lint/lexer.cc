#include "tools/lint/lexer.h"

#include <cctype>

namespace ppgnn {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules care about. Longest first so the
// greedy match below picks "<<=" over "<<" over "<".
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<<", ">>", "::", "->", "&&", "||",
    "==",  "!=",  "<=",  ">=",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

// Trims leading/trailing whitespace in place.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool in_directive = false;
  bool line_has_token = false;  // any non-whitespace token on this line yet

  auto push = [&](TokKind kind, std::string text, int tok_line) {
    out.push_back(Token{kind, std::move(text), tok_line, in_directive});
  };

  while (i < n) {
    char c = source[i];

    // Line splice: backslash-newline continues the logical line (keeps a
    // directive open across physical lines).
    if (c == '\\' && i + 1 < n &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
      i += source[i + 1] == '\n' ? 2 : 3;
      ++line;
      continue;
    }

    if (c == '\n') {
      ++i;
      ++line;
      in_directive = false;
      line_has_token = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' as the first token of a line.
    if (c == '#' && !line_has_token) {
      in_directive = true;
      push(TokKind::kPunct, "#", line);
      line_has_token = true;
      ++i;
      continue;
    }

    line_has_token = true;

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      push(TokKind::kComment, Trim(source.substr(i + 2, j - i - 2)), line);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
        if (source[j] == '\n') ++line;
        ++j;
      }
      size_t end = (j + 1 < n) ? j : n;
      push(TokKind::kComment, Trim(source.substr(i + 2, end - i - 2)),
           start_line);
      out.back().line = start_line;
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(' && delim.size() < 16) {
        delim.push_back(source[j]);
        ++j;
      }
      std::string close = ")" + delim + "\"";
      size_t end = source.find(close, j);
      int start_line = line;
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (source[k] == '\n') ++line;
      }
      size_t stop = end == n ? n : end + close.size();
      push(TokKind::kString, source.substr(i, stop - i), start_line);
      out.back().line = start_line;
      i = stop;
      continue;
    }

    // String / char literals with escapes.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      size_t stop = j < n ? j + 1 : n;
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           source.substr(i, stop - i), line);
      i = stop;
      continue;
    }

    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      push(TokKind::kIdent, source.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Numbers (accepts digit separators, suffixes, hex, and exponents —
    // precision is irrelevant to the rules, only token boundaries matter).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::kNumber, source.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Multi-char punctuators, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        push(TokKind::kPunct, p, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace lint
}  // namespace ppgnn
