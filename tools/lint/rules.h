// Internal interface between the engine (engine.cc: indexing, suppression,
// report) and the rule implementations (rules.cc). Not installed; only
// engine.cc, rules.cc and the tests include this.

#ifndef PPGNN_TOOLS_LINT_RULES_H_
#define PPGNN_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/engine.h"
#include "tools/lint/lexer.h"

namespace ppgnn {
namespace lint {

/// Everything a rule needs about one file, prepared once by AnalyzeFile.
struct FileContext {
  const SourceFile* file = nullptr;
  const ProjectIndex* index = nullptr;
  std::vector<Token> tokens;       // full token stream, comments included
  std::vector<std::string> lines;  // raw physical lines, 0-based storage
};

/// Returns the raw text of 1-based line `line`, or "" out of range.
const std::string& ContextLine(const FileContext& ctx, int line);

/// True if `line` contains `ident` delimited by non-identifier characters.
bool LineContainsIdent(const std::string& line, const std::string& ident);

/// Parses the file's `// ppgnn: guarded_by/requires/excludes/stat_counter`
/// tag comments. Called once per file by BuildIndex; the result lands in
/// ProjectIndex::concurrency_tags so a .cc can inherit its header's tags.
ConcurrencyTags ParseConcurrencyTags(const std::vector<Token>& tokens,
                                     const std::vector<std::string>& lines);

/// The file's effective tags: its own entry merged with its own header's
/// (declaration_lines stay file-local — they exempt declaration sites).
ConcurrencyTags EffectiveConcurrencyTags(const FileContext& ctx);

// The rules. Each appends to `out`.
void CheckUncheckedResult(const FileContext& ctx, std::vector<Finding>* out);
void CheckSecretFlow(const FileContext& ctx, std::vector<Finding>* out);
void CheckDeterminism(const FileContext& ctx, std::vector<Finding>* out);
void CheckIncludeHygiene(const FileContext& ctx, std::vector<Finding>* out);
void CheckGuardedBy(const FileContext& ctx, std::vector<Finding>* out);
void CheckLockOrder(const FileContext& ctx, std::vector<Finding>* out);
void CheckBlockingUnderLock(const FileContext& ctx, std::vector<Finding>* out);
void CheckAtomicsDiscipline(const FileContext& ctx, std::vector<Finding>* out);

}  // namespace lint
}  // namespace ppgnn

#endif  // PPGNN_TOOLS_LINT_RULES_H_
