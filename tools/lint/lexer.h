// A lightweight C++ lexer for ppgnn_lint.
//
// This is not a conforming C++ tokenizer — it is exactly enough lexer to
// drive the project-invariant rules in rules.cc: identifiers, literals,
// punctuation, and comments, each tagged with its 1-based source line and
// whether it sits inside a preprocessor directive. Trigraphs, UCNs and
// digraphs are out of scope; raw strings, line splices and nested
// block-comment edge cases are handled because the repo contains them.

#ifndef PPGNN_TOOLS_LINT_LEXER_H_
#define PPGNN_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace ppgnn {
namespace lint {

enum class TokKind {
  kIdent,    // identifiers and keywords (the rules treat keywords by name)
  kNumber,   // numeric literal, including ' separators and suffixes
  kString,   // "..." or R"delim(...)delim", text includes the quotes
  kChar,     // '...'
  kPunct,    // one operator or punctuator ("<<", "::", "->", "(", ...)
  kComment,  // // or /* */ comment, text without the delimiters, trimmed
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;             // 1-based line of the token's first character
  bool in_directive = false;  // true inside a preprocessor directive
                              // (including spliced continuation lines)
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation so the rule engine always sees the full file.
std::vector<Token> Lex(const std::string& source);

}  // namespace lint
}  // namespace ppgnn

#endif  // PPGNN_TOOLS_LINT_LEXER_H_
