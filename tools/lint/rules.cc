#include "tools/lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <utility>

namespace ppgnn {
namespace lint {
namespace {

bool IsIdentByte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Index of the next non-comment token at or after `i`, or tokens.size().
size_t NextCode(const std::vector<Token>& toks, size_t i) {
  while (i < toks.size() && toks[i].kind == TokKind::kComment) ++i;
  return i;
}

/// Skips a balanced (...) / [...] / {...} group. `open` must index the
/// opening punctuator; returns the index just past the matching close
/// (or tokens.size() on unbalanced input).
size_t SkipBalanced(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Statement spans: [begin, end) token ranges split on `;` `{` `}` at
/// parenthesis depth zero, so a `for(;;)` header or a lambda argument does
/// not fracture the enclosing statement.
std::vector<std::pair<size_t, size_t>> StatementSpans(
    const std::vector<Token>& toks) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t begin = 0;
  int paren = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++paren;
    if (t.text == ")" || t.text == "]") --paren;
    if (paren > 0) continue;
    if (t.text == ";" || t.text == "{" || t.text == "}") {
      if (i > begin) spans.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (toks.size() > begin) spans.emplace_back(begin, toks.size());
  return spans;
}

}  // namespace

const std::string& ContextLine(const FileContext& ctx, int line) {
  static const std::string kEmpty;
  if (line < 1 || static_cast<size_t>(line) > ctx.lines.size()) return kEmpty;
  return ctx.lines[static_cast<size_t>(line) - 1];
}

bool LineContainsIdent(const std::string& line, const std::string& ident) {
  if (ident.empty()) return false;
  size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentByte(line[pos - 1]);
    size_t end = pos + ident.size();
    bool right_ok = end >= line.size() || !IsIdentByte(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// unchecked-result
// ---------------------------------------------------------------------------

namespace {

/// How far above a `.value()` call an `ok()` / `status()` guard on the
/// same receiver still counts. Generous on purpose: the rule exists to
/// catch *absent* guards, not to police their distance.
constexpr int kGuardWindowLines = 30;

/// Collects the identifier names that make up the receiver expression of
/// a `.value()` call, walking member/call/index chains backward from the
/// `.` at `dot`. E.g. `std::move(engine_or).value()` -> {engine_or, ...}.
std::set<std::string> ReceiverIdents(const std::vector<Token>& toks,
                                     size_t dot) {
  std::set<std::string> ids;
  size_t i = dot;
  bool expect_primary = true;  // next backward token should end a primary
  while (i > 0) {
    --i;
    const Token& t = toks[i];
    if (t.kind == TokKind::kComment) continue;
    if (expect_primary) {
      if (t.kind == TokKind::kPunct && (t.text == ")" || t.text == "]")) {
        // Balance backward, harvesting identifiers inside the group.
        const std::string close = t.text;
        const std::string open = close == ")" ? "(" : "[";
        int depth = 0;
        while (true) {
          const Token& u = toks[i];
          if (u.kind == TokKind::kIdent) ids.insert(u.text);
          if (u.kind == TokKind::kPunct && u.text == close) ++depth;
          if (u.kind == TokKind::kPunct && u.text == open && --depth == 0)
            break;
          if (i == 0) return ids;
          --i;
        }
        expect_primary = false;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        ids.insert(t.text);
        expect_primary = false;
        continue;
      }
      return ids;
    }
    // After a primary: only member/scope separators extend the chain.
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      expect_primary = true;
      continue;
    }
    return ids;
  }
  return ids;
}

void CheckBareValue(const FileContext& ctx, std::vector<Finding>* out) {
  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!IsPunct(toks[i], ".")) continue;
    size_t name = NextCode(toks, i + 1);
    if (name >= toks.size() || !IsIdent(toks[name], "value")) continue;
    size_t open = NextCode(toks, name + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t close = NextCode(toks, open + 1);
    if (close >= toks.size() || !IsPunct(toks[close], ")")) continue;

    std::set<std::string> ids = ReceiverIdents(toks, i);
    // `std` / `move` wrap everything and would match unrelated guards.
    ids.erase("std");
    ids.erase("move");

    const int line = toks[name].line;
    bool guarded = false;
    for (int l = std::max(1, line - kGuardWindowLines); l <= line && !guarded;
         ++l) {
      const std::string& text = ContextLine(ctx, l);
      if (text.find(".ok(") == std::string::npos &&
          text.find(".status(") == std::string::npos) {
        continue;
      }
      for (const std::string& id : ids) {
        if (LineContainsIdent(text, id)) {
          guarded = true;
          break;
        }
      }
    }
    if (guarded) continue;

    std::string recv;
    for (const std::string& id : ids) {
      if (!recv.empty()) recv += "/";
      recv += id;
    }
    out->push_back(Finding{
        ctx.file->path, line, "unchecked-result",
        "bare .value() on `" + (recv.empty() ? std::string("<expr>") : recv) +
            "` with no ok()/status() guard in the preceding " +
            std::to_string(kGuardWindowLines) + " lines",
        "guard with `if (x.ok())`, use PPGNN_ASSIGN_OR_RETURN, or add "
        "`// ppgnn-lint: allow(unchecked-result): <why success is "
        "guaranteed>`"});
  }
}

void CheckDiscardedCall(const FileContext& ctx, std::vector<Finding>* out) {
  const std::vector<Token>& toks = ctx.tokens;
  const std::set<std::string>& fallible = ctx.index->status_functions;

  // Statement-start token indices: after `;`/`{`/`}` at paren depth 0,
  // after the close-paren of an if/while/for/switch header, and after a
  // brace-less `else`.
  std::set<size_t> starts;
  starts.insert(NextCode(toks, 0));
  int paren = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") ++paren;
      if (t.text == ")" || t.text == "]") --paren;
      if (paren == 0 && (t.text == ";" || t.text == "{" || t.text == "}"))
        starts.insert(NextCode(toks, i + 1));
      continue;
    }
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    if (t.text == "if" || t.text == "while" || t.text == "for" ||
        t.text == "switch") {
      size_t open = NextCode(toks, i + 1);
      if (open < toks.size() && IsIdent(toks[open], "constexpr"))
        open = NextCode(toks, open + 1);
      if (open < toks.size() && IsPunct(toks[open], "("))
        starts.insert(NextCode(toks, SkipBalanced(toks, open)));
    } else if (t.text == "else") {
      starts.insert(NextCode(toks, i + 1));
    }
  }

  for (size_t s : starts) {
    if (s >= toks.size()) continue;
    // Match:  [::] ident ((:: | . | ->) ident)* '(' ... ')' ';'
    size_t i = s;
    if (i < toks.size() && IsPunct(toks[i], "::")) i = NextCode(toks, i + 1);
    std::string last;
    while (i < toks.size() && toks[i].kind == TokKind::kIdent) {
      last = toks[i].text;
      size_t sep = NextCode(toks, i + 1);
      if (sep < toks.size() &&
          (IsPunct(toks[sep], "::") || IsPunct(toks[sep], ".") ||
           IsPunct(toks[sep], "->"))) {
        i = NextCode(toks, sep + 1);
        continue;
      }
      i = sep;
      break;
    }
    if (last.empty() || i >= toks.size() || !IsPunct(toks[i], "(")) continue;
    if (toks[i].in_directive) continue;  // macro bodies: checked at expansion
    size_t after = NextCode(toks, SkipBalanced(toks, i));
    if (after >= toks.size() || !IsPunct(toks[after], ";")) continue;
    if (fallible.count(last) == 0) continue;
    out->push_back(Finding{
        ctx.file->path, toks[i].line, "unchecked-result",
        "result of Status/Result-returning call `" + last + "` is discarded",
        "check it (`Status s = ...; if (!s.ok())`), propagate with "
        "PPGNN_RETURN_IF_ERROR, or add `// ppgnn-lint: "
        "allow(unchecked-result): <why>`"});
  }
}

}  // namespace

void CheckUncheckedResult(const FileContext& ctx, std::vector<Finding>* out) {
  CheckBareValue(ctx, out);
  CheckDiscardedCall(ctx, out);
}

// ---------------------------------------------------------------------------
// secret-flow
// ---------------------------------------------------------------------------

namespace {

/// Parses every `ppgnn: secret(a, b, c)` tag comment in the file.
std::set<std::string> SecretIdents(const FileContext& ctx) {
  std::set<std::string> secrets;
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokKind::kComment) continue;
    // The tag must open the comment; prose that merely *mentions* the
    // syntax (docs, this file) does not register secrets.
    if (t.text.rfind("ppgnn: secret(", 0) != 0) continue;
    size_t open = t.text.find('(');
    size_t close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string name;
    for (size_t i = open + 1; i <= close; ++i) {
      char c = t.text[i];
      if (IsIdentByte(c)) {
        name.push_back(c);
      } else if (!name.empty()) {
        secrets.insert(name);
        name.clear();
      }
    }
  }
  return secrets;
}

const std::set<std::string>& StreamSinkIdents() {
  static const std::set<std::string> kSinks = {
      "cout", "cerr",    "clog", "printf", "fprintf",
      "puts", "fputs",   "sprintf", "snprintf", "syslog"};
  return kSinks;
}

const std::set<std::string>& StreamishIdents() {
  static const std::set<std::string> kStreams = {
      "os", "oss", "out", "stream", "ostream", "log", "logger"};
  return kStreams;
}

}  // namespace

void CheckSecretFlow(const FileContext& ctx, std::vector<Finding>* out) {
  const std::set<std::string> secrets = SecretIdents(ctx);
  if (secrets.empty()) return;
  const std::vector<Token>& toks = ctx.tokens;

  // Sink 1: secret inside an if/while/for/switch condition — a
  // data-dependent branch on secret state (timing/trace channel).
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "if" && t.text != "while" && t.text != "for" &&
        t.text != "switch") {
      continue;
    }
    size_t open = NextCode(toks, i + 1);
    if (open < toks.size() && IsIdent(toks[open], "constexpr"))
      open = NextCode(toks, open + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t end = SkipBalanced(toks, open);
    for (size_t j = open + 1; j + 1 < end; ++j) {
      if (toks[j].kind == TokKind::kIdent && secrets.count(toks[j].text)) {
        out->push_back(Finding{
            ctx.file->path, toks[j].line, "secret-flow",
            "secret `" + toks[j].text + "` branches a `" + t.text +
                "` condition (data-dependent control flow)",
            "make the path constant-time (branchless select / fixed trip "
            "count), or add `// ppgnn-lint: allow(secret-flow): <why the "
            "branch leaks nothing>`"});
        break;  // one finding per condition is enough
      }
    }
    i = end > i ? end - 1 : i;
  }

  // Sink 2: secret inside the argument list of an Encode*/Serialize*
  // call — plaintext secrets must never enter a pre-encryption wire path.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (!StartsWith(t.text, "Encode") && !StartsWith(t.text, "Serialize"))
      continue;
    size_t open = NextCode(toks, i + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t end = SkipBalanced(toks, open);
    for (size_t j = open + 1; j + 1 < end; ++j) {
      if (toks[j].kind == TokKind::kIdent && secrets.count(toks[j].text)) {
        out->push_back(Finding{
            ctx.file->path, toks[j].line, "secret-flow",
            "secret `" + toks[j].text + "` is passed to `" + t.text +
                "` (pre-encryption wire path)",
            "encrypt before encoding, or add `// ppgnn-lint: "
            "allow(secret-flow): <why this boundary is safe>`"});
      }
    }
  }

  // Sink 3: secret in a statement that also feeds a stream/log sink.
  for (const auto& span : StatementSpans(toks)) {
    bool has_shift = false;
    bool has_sink = false;
    bool has_streamish = false;
    const Token* secret_tok = nullptr;
    for (size_t j = span.first; j < span.second; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kComment) continue;
      if (IsPunct(t, "<<")) has_shift = true;
      if (t.kind == TokKind::kIdent) {
        if (StreamSinkIdents().count(t.text)) has_sink = true;
        if (StreamishIdents().count(t.text)) has_streamish = true;
        if (secret_tok == nullptr && secrets.count(t.text)) secret_tok = &t;
      }
    }
    if (secret_tok == nullptr) continue;
    if (has_sink || (has_shift && has_streamish)) {
      out->push_back(Finding{
          ctx.file->path, secret_tok->line, "secret-flow",
          "secret `" + secret_tok->text + "` reaches a stream/log sink",
          "never log key material, locations, or indicator indices; log a "
          "redacted digest instead, or add `// ppgnn-lint: "
          "allow(secret-flow): <why>`"});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const FileContext& ctx, std::vector<Finding>* out) {
  const std::string& path = ctx.file->path;
  // common/random wraps the one sanctioned seed source.
  if (StartsWith(path, "src/common/random")) return;
  // service/ owns wall-clock deadlines and backoff timing by design —
  // but that exemption does not extend to service code touching the
  // fixed-base machinery: the comb tables are derived from key material
  // and the blinding pools must replay bit-identically from seeded Rngs,
  // so neither may consume ambient entropy. A service file that includes
  // bigint/fixedbase.h or names a FixedBase entity is scanned like any
  // other crypto-adjacent file.
  if (StartsWith(path, "src/service/")) {
    bool touches_fixed_base = false;
    for (const Token& t : ctx.tokens) {
      if (t.kind == TokKind::kIdent &&
          t.text.find("FixedBase") != std::string::npos) {
        touches_fixed_base = true;
        break;
      }
      if (t.kind == TokKind::kString &&
          t.text.find("bigint/fixedbase.h") != std::string::npos) {
        touches_fixed_base = true;
        break;
      }
    }
    if (!touches_fixed_base) return;
  }

  // Banned outright: ambient entropy and wall-clock sources.
  static const std::set<std::string> kBannedAlways = {
      "random_device", "system_clock",  "srand",        "rand_r",
      "drand48",       "gettimeofday",  "localtime",    "gmtime",
      "mt19937",       "mt19937_64",    "minstd_rand",  "default_random_engine",
  };
  // Banned only as a call (the bare words are too common to blanket-ban).
  static const std::set<std::string> kBannedCalls = {"rand", "time", "clock"};

  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    bool banned = kBannedAlways.count(t.text) > 0;
    if (!banned && kBannedCalls.count(t.text) > 0) {
      size_t next = NextCode(toks, i + 1);
      banned = next < toks.size() && IsPunct(toks[next], "(");
    }
    if (!banned) continue;
    out->push_back(Finding{
        path, t.line, "determinism",
        "nondeterministic source `" + t.text +
            "` outside common/random and service/ timing code",
        "draw from a seeded ppgnn::Rng (common/random.h) so failpoint and "
        "chaos schedules replay bit-identically; wall-clock timing belongs "
        "in service/"});
  }
}

// ---------------------------------------------------------------------------
// include-hygiene
// ---------------------------------------------------------------------------

namespace {

/// Layer rank of each src/ subdirectory; a file may only include headers
/// from layers at or below its own. Derived from the dependency structure
/// at the time the rule was introduced — raising a layer is an explicit,
/// reviewed decision (edit this table), never an accident.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},  {"bigint", 1},  {"geo", 1},     {"net", 1},
      {"stats", 1},   {"spatial", 2}, {"crypto", 2},  {"roadnet", 3},
      {"core", 3},    {"baselines", 4}, {"service", 4},
      // Two-component layers override their parent by longest-prefix
      // match: the TCP transport *wraps* services (a TcpShardServer owns
      // an LspService), so it sits above the service layer even though
      // it lives under src/net/.
      {"net/transport", 5},
  };
  return kRanks;
}

/// Longest-prefix layer lookup for a path relative to src/:
/// "net/transport/frame.h" matches the two-component layer
/// "net/transport" before falling back to "net". "" = no layer (no
/// directory component).
std::string LayerOf(const std::string& rel) {
  size_t slash = rel.find('/');
  if (slash == std::string::npos) return "";
  size_t slash2 = rel.find('/', slash + 1);
  if (slash2 != std::string::npos) {
    const std::string two = rel.substr(0, slash2);
    if (LayerRanks().count(two) > 0) return two;
  }
  return rel.substr(0, slash);
}

/// Second ranked table ordering the files inside src/service/ themselves:
/// the shard coordinator sits on replica groups, which sit on the client
/// and the single-shard service, which sit on the leaf helpers. A service
/// file may only include service headers at or below its own rank; stems
/// missing from the table are unconstrained.
const std::map<std::string, int>& ServiceRanks() {
  static const std::map<std::string, int> kRanks = {
      {"health", 0},           {"admission", 0},   {"cost_model", 0},
      {"reply_cache", 0},      {"blinding_refiller", 0},
      {"lsp_service", 1},      {"resilient_client", 2},
      {"replica_set", 3},      {"shard_coordinator", 4},
  };
  return kRanks;
}

/// `src/service/lsp_service.cc` -> `lsp_service`; "" when not applicable.
std::string ServiceStem(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string base = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// One `#include "..."` directive.
struct QuotedInclude {
  std::string path;
  int line;
};

std::vector<QuotedInclude> QuotedIncludes(const FileContext& ctx) {
  std::vector<QuotedInclude> out;
  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsPunct(toks[i], "#")) continue;
    size_t kw = NextCode(toks, i + 1);
    if (kw >= toks.size() || !IsIdent(toks[kw], "include")) continue;
    size_t arg = NextCode(toks, kw + 1);
    if (arg >= toks.size() || toks[arg].kind != TokKind::kString) continue;
    std::string inner = toks[arg].text;
    if (inner.size() >= 2) inner = inner.substr(1, inner.size() - 2);
    out.push_back(QuotedInclude{inner, toks[arg].line});
  }
  return out;
}

}  // namespace

void CheckIncludeHygiene(const FileContext& ctx, std::vector<Finding>* out) {
  const std::string& path = ctx.file->path;
  if (!StartsWith(path, "src/")) return;
  // Longest matching path prefix under src/ is the layer; files directly
  // in src/ (the ppgnn.h umbrella) are deliberately above the layering.
  const std::string self_dir = LayerOf(path.substr(4));
  if (self_dir.empty()) return;
  auto self_rank = LayerRanks().find(self_dir);

  const std::vector<QuotedInclude> includes = QuotedIncludes(ctx);

  // Own header first: src/<d>/<base>.cc must open with src/<d>/<base>.h
  // (compile-the-header-standalone discipline).
  const bool is_cc = path.size() > 3 && path.compare(path.size() - 3, 3,
                                                     ".cc") == 0;
  if (is_cc && !includes.empty()) {
    std::string own = path.substr(4, path.size() - 4 - 3) + ".h";
    if (ctx.index->all_paths.count("src/" + own) > 0 &&
        includes.front().path != own) {
      out->push_back(Finding{
          path, includes.front().line, "include-hygiene",
          "first include is \"" + includes.front().path +
              "\" but this file's own header \"" + own + "\" exists",
          "include the own header first so it is proven self-contained"});
    }
  }

  if (self_rank == LayerRanks().end()) return;
  for (const QuotedInclude& inc : includes) {
    const std::string target_dir = LayerOf(inc.path);
    if (target_dir.empty()) continue;
    auto target_rank = LayerRanks().find(target_dir);
    if (target_rank == LayerRanks().end()) continue;
    if (target_rank->second > self_rank->second) {
      out->push_back(Finding{
          path, inc.line, "include-hygiene",
          "layer `" + self_dir + "` (rank " +
              std::to_string(self_rank->second) + ") includes \"" + inc.path +
              "\" from higher layer `" + target_dir + "` (rank " +
              std::to_string(target_rank->second) + ")",
          "invert the dependency (move shared types down a layer) or "
          "promote the layer in tools/lint/rules.cc with review"});
    }
    // Intra-service ordering: within src/service/ the ranked sub-table
    // applies on top of the directory-level check.
    if (self_dir == "service" && target_dir == "service") {
      auto self_svc = ServiceRanks().find(ServiceStem(path));
      auto target_svc = ServiceRanks().find(ServiceStem(inc.path));
      if (self_svc != ServiceRanks().end() &&
          target_svc != ServiceRanks().end() &&
          target_svc->second > self_svc->second) {
        out->push_back(Finding{
            path, inc.line, "include-hygiene",
            "service file `" + ServiceStem(path) + "` (rank " +
                std::to_string(self_svc->second) + ") includes \"" +
                inc.path + "\" from higher-ranked service file `" +
                ServiceStem(inc.path) + "` (rank " +
                std::to_string(target_svc->second) + ")",
            "the service stack is ordered helpers < lsp_service < "
            "resilient_client < replica_set < shard_coordinator; invert "
            "the dependency or adjust ServiceRanks() with review"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// concurrency discipline: shared tag parsing and lock-scope model for the
// guarded-by / lock-order / blocking-under-lock rules
// ---------------------------------------------------------------------------

namespace {

/// Splits the `(...)` body of a tag comment into comma-separated elements,
/// keeping only the final identifier of each (`state->mu` -> `mu`).
std::vector<std::string> TagArgs(const std::string& text) {
  std::vector<std::string> args;
  size_t open = text.find('(');
  size_t close = text.find(')', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos) return args;
  std::string name;
  for (size_t i = open + 1; i <= close; ++i) {
    char c = text[i];
    if (IsIdentByte(c)) {
      name.push_back(c);
    } else if (c == ',' || c == ')') {
      if (!name.empty()) args.push_back(name);
      name.clear();
    } else if (!name.empty() && c != ' ' && c != '\t') {
      // `state->mu`: a separator inside one element restarts the
      // identifier so only the trailing one survives.
      name.clear();
    }
  }
  return args;
}

/// True when the raw source line holding `line` is nothing but a comment
/// (same convention as suppression comments: the tag then also covers the
/// next line, i.e. the declaration under it).
bool CommentAloneOnLine(const std::vector<std::string>& lines, int line) {
  if (line < 1 || static_cast<size_t>(line) > lines.size()) return false;
  const std::string& raw = lines[static_cast<size_t>(line) - 1];
  size_t slash = raw.find("//");
  return slash != std::string::npos &&
         raw.find_first_not_of(" \t") == slash;
}

/// Finds the function name a `requires`/`excludes` tag attaches to: the
/// first identifier directly followed by `(` after the tag comment (the
/// return type's template arguments and class qualifiers are skipped
/// naturally because their identifiers are followed by `<`, `::`, `&`...).
std::string TaggedFunctionName(const std::vector<Token>& toks, size_t tag) {
  constexpr size_t kScanLimit = 64;
  for (size_t i = tag + 1, seen = 0; i < toks.size() && seen < kScanLimit;
       ++i, ++seen) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == "}")) break;
    if (t.kind != TokKind::kIdent) continue;
    size_t next = NextCode(toks, i + 1);
    if (next < toks.size() && IsPunct(toks[next], "(")) return t.text;
  }
  return "";
}

}  // namespace

ConcurrencyTags ParseConcurrencyTags(const std::vector<Token>& tokens,
                                     const std::vector<std::string>& lines) {
  ConcurrencyTags tags;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kComment) continue;
    // The tag must open the comment, mirroring `ppgnn: secret(...)`.
    if (StartsWith(t.text, "ppgnn: guarded_by(")) {
      std::vector<std::string> args = TagArgs(t.text);
      if (args.size() < 2) continue;
      const std::string& mutex = args.back();
      for (size_t a = 0; a + 1 < args.size(); ++a) tags.guarded[args[a]] = mutex;
      tags.declaration_lines.insert(t.line);
      if (CommentAloneOnLine(lines, t.line))
        tags.declaration_lines.insert(t.line + 1);
    } else if (StartsWith(t.text, "ppgnn: stat_counter(")) {
      for (const std::string& a : TagArgs(t.text)) tags.stat_counters.insert(a);
    } else if (StartsWith(t.text, "ppgnn: requires(") ||
               StartsWith(t.text, "ppgnn: excludes(")) {
      std::vector<std::string> args = TagArgs(t.text);
      std::string fn = TaggedFunctionName(tokens, i);
      if (args.empty() || fn.empty()) continue;
      auto& table = StartsWith(t.text, "ppgnn: requires(") ? tags.requires_fns
                                                           : tags.excludes_fns;
      table[fn].insert(args.begin(), args.end());
    }
  }
  return tags;
}

ConcurrencyTags EffectiveConcurrencyTags(const FileContext& ctx) {
  ConcurrencyTags tags;
  const auto& all = ctx.index->concurrency_tags;
  auto self = all.find(ctx.file->path);
  if (self != all.end()) tags = self->second;
  const std::string& path = ctx.file->path;
  if (path.size() > 3 && path.compare(path.size() - 3, 3, ".cc") == 0) {
    auto hdr = all.find(path.substr(0, path.size() - 3) + ".h");
    if (hdr != all.end()) {
      // Name tables merge (own entries win); declaration_lines stay
      // file-local — a line number only exempts sites in its own file.
      for (const auto& kv : hdr->second.guarded) tags.guarded.insert(kv);
      tags.stat_counters.insert(hdr->second.stat_counters.begin(),
                                hdr->second.stat_counters.end());
      for (const auto& kv : hdr->second.requires_fns)
        tags.requires_fns[kv.first].insert(kv.second.begin(), kv.second.end());
      for (const auto& kv : hdr->second.excludes_fns)
        tags.excludes_fns[kv.first].insert(kv.second.begin(), kv.second.end());
    }
  }
  return tags;
}

namespace {

/// One recognized RAII lock scope (lock_guard / unique_lock / scoped_lock /
/// shared_lock), alive from its declaration to the close of the enclosing
/// brace, with `held` toggled by `var.unlock()` / `var.lock()`.
struct HeldLock {
  std::string var;
  std::vector<std::string> names;  ///< final identifier of each mutex arg
  std::vector<std::string> exprs;  ///< full normalized arg text (graph node)
  int line = 0;
  int depth = 0;  ///< brace depth at the declaration
  bool held = true;
};

/// Token range of a `requires(...)`-tagged function's body: inside it the
/// listed mutexes are assumed held.
struct TaggedBody {
  size_t begin = 0;
  size_t end = 0;
  std::set<std::string> mutexes;
};

const std::set<std::string>& RaiiLockTypes() {
  static const std::set<std::string> kTypes = {"lock_guard", "unique_lock",
                                               "scoped_lock", "shared_lock"};
  return kTypes;
}

/// Index just past a balanced template argument list; `open` indexes `<`.
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "<") ++depth;
    else if (toks[i].text == ">") {
      if (--depth <= 0) return i + 1;
    } else if (toks[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (toks[i].text == ";") {
      return i;  // not a template after all
    }
  }
  return toks.size();
}

/// True when the identifier at `i` heads a declaration (or definition)
/// rather than a call: the token before its member/scope chain is a
/// type-ish token (`void Foo::Bar(`, `Status Refill(`), not a statement
/// boundary (`Bar(x);`, `obj->Bar(`, `return Bar(`).
bool IsDeclarationContext(const std::vector<Token>& toks, size_t i) {
  size_t j = i;
  while (true) {
    if (j == 0) return false;
    size_t p = j - 1;
    while (p > 0 && toks[p].kind == TokKind::kComment) --p;
    const Token& t = toks[p];
    if (t.kind == TokKind::kPunct &&
        (t.text == "::" || t.text == "." || t.text == "->")) {
      if (p == 0) return false;
      size_t q = p - 1;
      while (q > 0 && toks[q].kind == TokKind::kComment) --q;
      if (toks[q].kind == TokKind::kIdent) {
        j = q;
        continue;
      }
      return false;
    }
    if (t.kind == TokKind::kIdent) {
      return t.text != "return" && t.text != "co_return" &&
             t.text != "else" && t.text != "do" && t.text != "case";
    }
    return t.kind == TokKind::kPunct &&
           (t.text == ">" || t.text == "*" || t.text == "&");
  }
}

/// Locates the definition bodies of every `requires(...)`-tagged function
/// in this file. `def_tokens` collects the name-token indices of those
/// definitions so the call-site check does not flag them.
std::vector<TaggedBody> FindTaggedBodies(
    const std::vector<Token>& toks,
    const std::map<std::string, std::set<std::string>>& requires_fns,
    std::set<size_t>* def_tokens) {
  std::vector<TaggedBody> bodies;
  if (requires_fns.empty()) return bodies;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    auto it = requires_fns.find(toks[i].text);
    if (it == requires_fns.end()) continue;
    size_t open = NextCode(toks, i + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t after = NextCode(toks, SkipBalanced(toks, open));
    // Skip cv-qualifiers etc. between the parameter list and the body.
    while (after < toks.size() && toks[after].kind == TokKind::kIdent &&
           (toks[after].text == "const" || toks[after].text == "noexcept" ||
            toks[after].text == "override" || toks[after].text == "final")) {
      after = NextCode(toks, after + 1);
    }
    if (after >= toks.size()) continue;
    // Only a declaration context separates `void DrainLocked();` /
    // `void DrainLocked() {...}` from a call statement `DrainLocked();`,
    // which must stay eligible for the requires() caller check.
    if (!IsDeclarationContext(toks, i)) continue;
    if (IsPunct(toks[after], ";")) {
      def_tokens->insert(i);  // pure declaration
      continue;
    }
    if (!IsPunct(toks[after], "{")) continue;
    TaggedBody body;
    body.begin = after + 1;
    body.end = SkipBalanced(toks, after);
    body.mutexes = it->second;
    bodies.push_back(std::move(body));
    def_tokens->insert(i);
  }
  return bodies;
}

/// Calls of these names must never run inside a held-lock scope: the
/// exponentiation/encryption family the PR 6 pool contract exists to keep
/// out of critical sections, plus sleeps, plus the blocking socket
/// syscalls (a peer that stalls mid-read would park every thread queued
/// on the lock — the TCP transport does all socket I/O outside its
/// pool/backoff mutex, and this rule keeps it that way). `Exp` only
/// counts when the next character is not lowercase, so
/// `Expired`/`ExpandToInclude` stay legal.
bool IsBannedBlockingCall(const std::string& name) {
  if (StartsWith(name, "Encrypt") || StartsWith(name, "Refill") ||
      StartsWith(name, "Pow")) {
    return true;
  }
  if (StartsWith(name, "Exp") &&
      (name.size() == 3 || !(name[3] >= 'a' && name[3] <= 'z'))) {
    return true;
  }
  if (name == "connect" || name == "accept" || name == "poll" ||
      name == "send" || name == "recv" || name == "sendmsg" ||
      name == "recvmsg" || name == "sendto" || name == "recvfrom" ||
      name == "select") {
    return true;
  }
  return name == "sleep_for" || name == "sleep_until" || name == "usleep" ||
         name == "nanosleep";
}

/// Everything the single forward pass over one file discovers. The
/// guarded-by and blocking-under-lock findings come straight out; the
/// acquisition edges feed CheckLockOrder.
struct LockAnalysis {
  std::vector<Finding> guarded;
  std::vector<Finding> blocking;
  /// (held mutex expr, newly acquired mutex expr) -> first witness line.
  std::map<std::pair<std::string, std::string>, int> edges;
};

LockAnalysis AnalyzeLockDiscipline(const FileContext& ctx) {
  LockAnalysis res;
  // Note: no tags.empty() early-out — lock-order and blocking-under-lock
  // must fire on untagged files too; a plain mutex with no annotations
  // still deserves deadlock and blocking discipline.
  const ConcurrencyTags tags = EffectiveConcurrencyTags(ctx);
  const std::vector<Token>& toks = ctx.tokens;
  const std::string& path = ctx.file->path;

  std::set<size_t> def_tokens;
  const std::vector<TaggedBody> bodies =
      FindTaggedBodies(toks, tags.requires_fns, &def_tokens);

  std::vector<HeldLock> locks;
  int depth = 0;

  auto required_held = [&](size_t i, std::set<std::string>* out) {
    for (const TaggedBody& b : bodies) {
      if (i >= b.begin && i < b.end)
        out->insert(b.mutexes.begin(), b.mutexes.end());
    }
  };
  auto held_names = [&](size_t i) {
    std::set<std::string> held;
    for (const HeldLock& l : locks) {
      if (l.held) held.insert(l.names.begin(), l.names.end());
    }
    required_held(i, &held);
    return held;
  };
  auto held_exprs = [&](size_t i) {
    std::set<std::string> held;
    for (const HeldLock& l : locks) {
      if (l.held) held.insert(l.exprs.begin(), l.exprs.end());
    }
    required_held(i, &held);  // requires-mutexes node-name == identifier
    return held;
  };
  auto joined = [](const std::set<std::string>& names) {
    std::string s;
    for (const std::string& n : names) {
      if (!s.empty()) s += ", ";
      s += "`" + n + "`";
    }
    return s;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        for (size_t l = locks.size(); l-- > 0;) {
          if (locks[l].depth > depth)
            locks.erase(locks.begin() + static_cast<ptrdiff_t>(l));
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || t.in_directive) continue;

    // RAII lock declaration:  [std::]lock_guard[<...>] var(mutex, ...);
    if (RaiiLockTypes().count(t.text) > 0) {
      size_t j = NextCode(toks, i + 1);
      if (j < toks.size() && IsPunct(toks[j], "<"))
        j = NextCode(toks, SkipTemplateArgs(toks, j));
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        size_t open = NextCode(toks, j + 1);
        if (open < toks.size() && IsPunct(toks[open], "(")) {
          size_t close = SkipBalanced(toks, open) - 1;
          HeldLock lock;
          lock.var = toks[j].text;
          lock.line = t.line;
          lock.depth = depth;
          // Split the argument list on top-level commas.
          int paren = 0;
          std::string expr, last_ident;
          auto flush = [&]() {
            if (last_ident == "defer_lock" || last_ident == "try_to_lock") {
              lock.held = false;
            } else if (!last_ident.empty() && last_ident != "adopt_lock") {
              lock.names.push_back(last_ident);
              lock.exprs.push_back(expr);
            }
            expr.clear();
            last_ident.clear();
          };
          for (size_t k = open; k <= close && k < toks.size(); ++k) {
            const Token& a = toks[k];
            if (a.kind == TokKind::kComment) continue;
            if (a.kind == TokKind::kPunct) {
              if (a.text == "(") {
                if (paren++ > 0) expr += a.text;
                continue;
              }
              if (a.text == ")") {
                if (--paren > 0) expr += a.text;
                continue;
              }
              if (a.text == "," && paren == 1) {
                flush();
                continue;
              }
              expr += a.text;
              continue;
            }
            expr += a.text;
            if (a.kind == TokKind::kIdent) last_ident = a.text;
          }
          flush();
          if (!lock.names.empty() || !lock.held) {
            if (lock.held) {
              const std::set<std::string> held = held_exprs(i);
              for (const std::string& h : held) {
                for (const std::string& m : lock.exprs) {
                  if (h != m)
                    res.edges.insert({{h, m}, t.line});
                }
              }
            }
            locks.push_back(std::move(lock));
            i = close;  // the argument list is the acquisition itself
            continue;
          }
        }
      }
    }

    // `var.unlock()` / `var.lock()` on a recognized RAII variable.
    {
      size_t dot = NextCode(toks, i + 1);
      size_t name = dot < toks.size() && IsPunct(toks[dot], ".")
                        ? NextCode(toks, dot + 1)
                        : toks.size();
      if (name < toks.size() && toks[name].kind == TokKind::kIdent &&
          (toks[name].text == "unlock" || toks[name].text == "lock")) {
        size_t open = NextCode(toks, name + 1);
        if (open < toks.size() && IsPunct(toks[open], "(")) {
          bool matched = false;
          for (size_t l = locks.size(); l-- > 0 && !matched;) {
            if (locks[l].var == t.text) {
              locks[l].held = toks[name].text == "lock";
              matched = true;
            }
          }
          if (matched) {
            i = name;
            continue;
          }
        }
      }
    }

    const bool call_like = [&] {
      size_t next = NextCode(toks, i + 1);
      return next < toks.size() && IsPunct(toks[next], "(");
    }();

    // guarded-by: tagged member touched without its mutex.
    auto guarded_it = tags.guarded.find(t.text);
    if (guarded_it != tags.guarded.end() &&
        tags.declaration_lines.count(t.line) == 0) {
      const std::string& mu = guarded_it->second;
      if (held_names(i).count(mu) == 0) {
        res.guarded.push_back(Finding{
            path, t.line, "guarded-by",
            "member `" + t.text + "` (guarded_by `" + mu +
                "`) accessed without holding `" + mu + "`",
            "take a std::lock_guard/std::unique_lock over `" + mu +
                "` around the access, tag the enclosing function `// ppgnn: "
                "requires(" + mu + ")`, or add `// ppgnn-lint: "
                "allow(guarded-by): <why the access is safe>`"});
      }
    }

    // guarded-by: calling a requires()-tagged function without its mutex,
    // or an excludes()-tagged function while holding it.
    if (call_like && def_tokens.count(i) == 0 &&
        !IsDeclarationContext(toks, i)) {
      auto req = tags.requires_fns.find(t.text);
      if (req != tags.requires_fns.end()) {
        const std::set<std::string> held = held_names(i);
        for (const std::string& mu : req->second) {
          if (held.count(mu) == 0) {
            res.guarded.push_back(Finding{
                path, t.line, "guarded-by",
                "call to `" + t.text + "` (tagged requires(" + mu +
                    ")) without holding `" + mu + "`",
                "acquire `" + mu + "` before the call, or add `// ppgnn-lint: "
                "allow(guarded-by): <why>`"});
          }
        }
      }
      auto exc = tags.excludes_fns.find(t.text);
      if (exc != tags.excludes_fns.end()) {
        const std::set<std::string> held = held_names(i);
        for (const std::string& mu : exc->second) {
          if (held.count(mu) > 0) {
            res.guarded.push_back(Finding{
                path, t.line, "guarded-by",
                "call to `" + t.text + "` (tagged excludes(" + mu +
                    ")) while holding `" + mu + "`",
                "release `" + mu + "` before the call (the callee acquires "
                "it), or add `// ppgnn-lint: allow(guarded-by): <why>`"});
          }
        }
      }
    }

    // blocking-under-lock: expensive/blocking work in a critical section.
    {
      const std::set<std::string> held = held_names(i);
      if (held.empty()) continue;
      if (call_like && (t.text == "wait" || t.text == "wait_for" ||
                        t.text == "wait_until")) {
        // A wait on the single held lock's own RAII variable is the
        // sanctioned pattern; anything else blocks with extra locks held.
        size_t open = NextCode(toks, i + 1);
        std::string first_arg;
        int paren = 0;
        for (size_t k = open; k < toks.size(); ++k) {
          const Token& a = toks[k];
          if (a.kind == TokKind::kPunct) {
            if (a.text == "(" && ++paren == 1) continue;
            if (a.text == ")" && --paren == 0) break;
            if (a.text == "," && paren == 1) break;
          }
          if (a.kind == TokKind::kIdent && paren >= 1) first_arg = a.text;
        }
        size_t held_raii = 0;
        bool waits_on_sole_lock = false;
        for (const HeldLock& l : locks) {
          if (!l.held) continue;
          ++held_raii;
          if (l.var == first_arg) waits_on_sole_lock = true;
        }
        std::set<std::string> required;
        required_held(i, &required);
        if (!(waits_on_sole_lock && held_raii == 1 && required.empty())) {
          res.blocking.push_back(Finding{
              path, t.line, "blocking-under-lock",
              "condition-variable `" + t.text + "` while also holding " +
                  joined(held),
              "wait only with the lock being waited on (every other mutex "
              "must be released first), or add `// ppgnn-lint: "
              "allow(blocking-under-lock): <why>`"});
        }
        continue;
      }
      if (call_like && !IsDeclarationContext(toks, i) &&
          IsBannedBlockingCall(t.text)) {
        res.blocking.push_back(Finding{
            path, t.line, "blocking-under-lock",
            "blocking call `" + t.text + "` inside a held-lock scope "
                "(holding " + joined(held) + ")",
            "claim work under the lock, run the expensive part outside it, "
            "and land results in a second critical section (the Encryptor "
            "pool contract), or add `// ppgnn-lint: "
            "allow(blocking-under-lock): <why>`"});
        continue;
      }
      if (StreamSinkIdents().count(t.text) > 0) {
        res.blocking.push_back(Finding{
            path, t.line, "blocking-under-lock",
            "stream/log sink `" + t.text + "` under a held lock (holding " +
                joined(held) + ")",
            "format into a local buffer outside the critical section, or "
            "add `// ppgnn-lint: allow(blocking-under-lock): <why>`"});
      }
    }
  }
  return res;
}

}  // namespace

void CheckGuardedBy(const FileContext& ctx, std::vector<Finding>* out) {
  LockAnalysis res = AnalyzeLockDiscipline(ctx);
  out->insert(out->end(), std::make_move_iterator(res.guarded.begin()),
              std::make_move_iterator(res.guarded.end()));
}

void CheckBlockingUnderLock(const FileContext& ctx,
                            std::vector<Finding>* out) {
  LockAnalysis res = AnalyzeLockDiscipline(ctx);
  out->insert(out->end(), std::make_move_iterator(res.blocking.begin()),
              std::make_move_iterator(res.blocking.end()));
}

void CheckLockOrder(const FileContext& ctx, std::vector<Finding>* out) {
  const LockAnalysis res = AnalyzeLockDiscipline(ctx);
  if (res.edges.empty()) return;

  // Adjacency over sorted containers: the walk below is deterministic, so
  // the cycle diagnostic is byte-identical across runs.
  std::map<std::string, std::map<std::string, int>> adj;
  for (const auto& e : res.edges) adj[e.first.first][e.first.second] = e.second;

  std::set<std::string> reported;
  for (const auto& root_entry : adj) {
    const std::string& root = root_entry.first;
    if (reported.count(root) > 0) continue;
    // DFS for a path back to `root` using only nodes >= root, so every
    // cycle is found exactly once, anchored at its smallest node.
    std::vector<std::string> stack = {root};
    std::set<std::string> on_path = {root};
    std::vector<std::string> cycle;
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) {
          auto it = adj.find(node);
          if (it == adj.end()) return false;
          for (const auto& next : it->second) {
            if (next.first == root) {
              cycle = stack;
              return true;
            }
            if (next.first < root || on_path.count(next.first) > 0) continue;
            stack.push_back(next.first);
            on_path.insert(next.first);
            if (dfs(next.first)) return true;
            on_path.erase(next.first);
            stack.pop_back();
          }
          return false;
        };
    if (!dfs(root)) continue;

    cycle.push_back(root);  // close the loop: root -> ... -> root
    std::string message = "lock-order cycle: `" + root + "`";
    int first_line = 0;
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      const int line = adj[cycle[i]][cycle[i + 1]];
      if (first_line == 0) first_line = line;
      message += " -> `" + cycle[i + 1] + "` (line " + std::to_string(line) +
                 ")";
    }
    for (const std::string& n : cycle) reported.insert(n);
    out->push_back(Finding{
        ctx.file->path, first_line, "lock-order", message,
        "every thread must acquire these mutexes in one fixed order; "
        "reorder the acquisitions (or split the critical sections) so the "
        "graph is acyclic, or add `// ppgnn-lint: allow(lock-order): <why "
        "the cycle cannot deadlock>`"});
  }
}

void CheckAtomicsDiscipline(const FileContext& ctx,
                            std::vector<Finding>* out) {
  const std::vector<Token>& toks = ctx.tokens;
  bool any_relaxed = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "memory_order_relaxed") {
      any_relaxed = true;
      break;
    }
  }
  if (!any_relaxed) return;
  const ConcurrencyTags tags = EffectiveConcurrencyTags(ctx);
  for (const auto& span : StatementSpans(toks)) {
    bool statement_has_counter = false;
    std::vector<const Token*> relaxed;
    for (size_t j = span.first; j < span.second; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "memory_order_relaxed") relaxed.push_back(&t);
      if (tags.stat_counters.count(t.text) > 0) statement_has_counter = true;
    }
    if (statement_has_counter) continue;
    for (const Token* t : relaxed) {
      out->push_back(Finding{
          ctx.file->path, t->line, "atomics-discipline",
          "memory_order_relaxed on state not tagged `// ppgnn: "
          "stat_counter(...)`",
          "relaxed ordering is reserved for monotonic stats counters; "
          "cancel flags, health transitions, and anything branched on need "
          "acquire/release (or the seq_cst default) — tag the counter, "
          "strengthen the ordering, or add `// ppgnn-lint: "
          "allow(atomics-discipline): <why relaxed is safe>`"});
    }
  }
}

}  // namespace lint
}  // namespace ppgnn
