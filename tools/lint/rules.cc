#include "tools/lint/rules.h"

#include <algorithm>
#include <map>
#include <set>

namespace ppgnn {
namespace lint {
namespace {

bool IsIdentByte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Index of the next non-comment token at or after `i`, or tokens.size().
size_t NextCode(const std::vector<Token>& toks, size_t i) {
  while (i < toks.size() && toks[i].kind == TokKind::kComment) ++i;
  return i;
}

/// Skips a balanced (...) / [...] / {...} group. `open` must index the
/// opening punctuator; returns the index just past the matching close
/// (or tokens.size() on unbalanced input).
size_t SkipBalanced(const std::vector<Token>& toks, size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Statement spans: [begin, end) token ranges split on `;` `{` `}` at
/// parenthesis depth zero, so a `for(;;)` header or a lambda argument does
/// not fracture the enclosing statement.
std::vector<std::pair<size_t, size_t>> StatementSpans(
    const std::vector<Token>& toks) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t begin = 0;
  int paren = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++paren;
    if (t.text == ")" || t.text == "]") --paren;
    if (paren > 0) continue;
    if (t.text == ";" || t.text == "{" || t.text == "}") {
      if (i > begin) spans.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (toks.size() > begin) spans.emplace_back(begin, toks.size());
  return spans;
}

}  // namespace

const std::string& ContextLine(const FileContext& ctx, int line) {
  static const std::string kEmpty;
  if (line < 1 || static_cast<size_t>(line) > ctx.lines.size()) return kEmpty;
  return ctx.lines[static_cast<size_t>(line) - 1];
}

bool LineContainsIdent(const std::string& line, const std::string& ident) {
  if (ident.empty()) return false;
  size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentByte(line[pos - 1]);
    size_t end = pos + ident.size();
    bool right_ok = end >= line.size() || !IsIdentByte(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// unchecked-result
// ---------------------------------------------------------------------------

namespace {

/// How far above a `.value()` call an `ok()` / `status()` guard on the
/// same receiver still counts. Generous on purpose: the rule exists to
/// catch *absent* guards, not to police their distance.
constexpr int kGuardWindowLines = 30;

/// Collects the identifier names that make up the receiver expression of
/// a `.value()` call, walking member/call/index chains backward from the
/// `.` at `dot`. E.g. `std::move(engine_or).value()` -> {engine_or, ...}.
std::set<std::string> ReceiverIdents(const std::vector<Token>& toks,
                                     size_t dot) {
  std::set<std::string> ids;
  size_t i = dot;
  bool expect_primary = true;  // next backward token should end a primary
  while (i > 0) {
    --i;
    const Token& t = toks[i];
    if (t.kind == TokKind::kComment) continue;
    if (expect_primary) {
      if (t.kind == TokKind::kPunct && (t.text == ")" || t.text == "]")) {
        // Balance backward, harvesting identifiers inside the group.
        const std::string close = t.text;
        const std::string open = close == ")" ? "(" : "[";
        int depth = 0;
        while (true) {
          const Token& u = toks[i];
          if (u.kind == TokKind::kIdent) ids.insert(u.text);
          if (u.kind == TokKind::kPunct && u.text == close) ++depth;
          if (u.kind == TokKind::kPunct && u.text == open && --depth == 0)
            break;
          if (i == 0) return ids;
          --i;
        }
        expect_primary = false;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        ids.insert(t.text);
        expect_primary = false;
        continue;
      }
      return ids;
    }
    // After a primary: only member/scope separators extend the chain.
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      expect_primary = true;
      continue;
    }
    return ids;
  }
  return ids;
}

void CheckBareValue(const FileContext& ctx, std::vector<Finding>* out) {
  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!IsPunct(toks[i], ".")) continue;
    size_t name = NextCode(toks, i + 1);
    if (name >= toks.size() || !IsIdent(toks[name], "value")) continue;
    size_t open = NextCode(toks, name + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t close = NextCode(toks, open + 1);
    if (close >= toks.size() || !IsPunct(toks[close], ")")) continue;

    std::set<std::string> ids = ReceiverIdents(toks, i);
    // `std` / `move` wrap everything and would match unrelated guards.
    ids.erase("std");
    ids.erase("move");

    const int line = toks[name].line;
    bool guarded = false;
    for (int l = std::max(1, line - kGuardWindowLines); l <= line && !guarded;
         ++l) {
      const std::string& text = ContextLine(ctx, l);
      if (text.find(".ok(") == std::string::npos &&
          text.find(".status(") == std::string::npos) {
        continue;
      }
      for (const std::string& id : ids) {
        if (LineContainsIdent(text, id)) {
          guarded = true;
          break;
        }
      }
    }
    if (guarded) continue;

    std::string recv;
    for (const std::string& id : ids) {
      if (!recv.empty()) recv += "/";
      recv += id;
    }
    out->push_back(Finding{
        ctx.file->path, line, "unchecked-result",
        "bare .value() on `" + (recv.empty() ? std::string("<expr>") : recv) +
            "` with no ok()/status() guard in the preceding " +
            std::to_string(kGuardWindowLines) + " lines",
        "guard with `if (x.ok())`, use PPGNN_ASSIGN_OR_RETURN, or add "
        "`// ppgnn-lint: allow(unchecked-result): <why success is "
        "guaranteed>`"});
  }
}

void CheckDiscardedCall(const FileContext& ctx, std::vector<Finding>* out) {
  const std::vector<Token>& toks = ctx.tokens;
  const std::set<std::string>& fallible = ctx.index->status_functions;

  // Statement-start token indices: after `;`/`{`/`}` at paren depth 0,
  // after the close-paren of an if/while/for/switch header, and after a
  // brace-less `else`.
  std::set<size_t> starts;
  starts.insert(NextCode(toks, 0));
  int paren = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") ++paren;
      if (t.text == ")" || t.text == "]") --paren;
      if (paren == 0 && (t.text == ";" || t.text == "{" || t.text == "}"))
        starts.insert(NextCode(toks, i + 1));
      continue;
    }
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    if (t.text == "if" || t.text == "while" || t.text == "for" ||
        t.text == "switch") {
      size_t open = NextCode(toks, i + 1);
      if (open < toks.size() && IsIdent(toks[open], "constexpr"))
        open = NextCode(toks, open + 1);
      if (open < toks.size() && IsPunct(toks[open], "("))
        starts.insert(NextCode(toks, SkipBalanced(toks, open)));
    } else if (t.text == "else") {
      starts.insert(NextCode(toks, i + 1));
    }
  }

  for (size_t s : starts) {
    if (s >= toks.size()) continue;
    // Match:  [::] ident ((:: | . | ->) ident)* '(' ... ')' ';'
    size_t i = s;
    if (i < toks.size() && IsPunct(toks[i], "::")) i = NextCode(toks, i + 1);
    std::string last;
    while (i < toks.size() && toks[i].kind == TokKind::kIdent) {
      last = toks[i].text;
      size_t sep = NextCode(toks, i + 1);
      if (sep < toks.size() &&
          (IsPunct(toks[sep], "::") || IsPunct(toks[sep], ".") ||
           IsPunct(toks[sep], "->"))) {
        i = NextCode(toks, sep + 1);
        continue;
      }
      i = sep;
      break;
    }
    if (last.empty() || i >= toks.size() || !IsPunct(toks[i], "(")) continue;
    if (toks[i].in_directive) continue;  // macro bodies: checked at expansion
    size_t after = NextCode(toks, SkipBalanced(toks, i));
    if (after >= toks.size() || !IsPunct(toks[after], ";")) continue;
    if (fallible.count(last) == 0) continue;
    out->push_back(Finding{
        ctx.file->path, toks[i].line, "unchecked-result",
        "result of Status/Result-returning call `" + last + "` is discarded",
        "check it (`Status s = ...; if (!s.ok())`), propagate with "
        "PPGNN_RETURN_IF_ERROR, or add `// ppgnn-lint: "
        "allow(unchecked-result): <why>`"});
  }
}

}  // namespace

void CheckUncheckedResult(const FileContext& ctx, std::vector<Finding>* out) {
  CheckBareValue(ctx, out);
  CheckDiscardedCall(ctx, out);
}

// ---------------------------------------------------------------------------
// secret-flow
// ---------------------------------------------------------------------------

namespace {

/// Parses every `ppgnn: secret(a, b, c)` tag comment in the file.
std::set<std::string> SecretIdents(const FileContext& ctx) {
  std::set<std::string> secrets;
  for (const Token& t : ctx.tokens) {
    if (t.kind != TokKind::kComment) continue;
    // The tag must open the comment; prose that merely *mentions* the
    // syntax (docs, this file) does not register secrets.
    if (t.text.rfind("ppgnn: secret(", 0) != 0) continue;
    size_t open = t.text.find('(');
    size_t close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string name;
    for (size_t i = open + 1; i <= close; ++i) {
      char c = t.text[i];
      if (IsIdentByte(c)) {
        name.push_back(c);
      } else if (!name.empty()) {
        secrets.insert(name);
        name.clear();
      }
    }
  }
  return secrets;
}

const std::set<std::string>& StreamSinkIdents() {
  static const std::set<std::string> kSinks = {
      "cout", "cerr",    "clog", "printf", "fprintf",
      "puts", "fputs",   "sprintf", "snprintf", "syslog"};
  return kSinks;
}

const std::set<std::string>& StreamishIdents() {
  static const std::set<std::string> kStreams = {
      "os", "oss", "out", "stream", "ostream", "log", "logger"};
  return kStreams;
}

}  // namespace

void CheckSecretFlow(const FileContext& ctx, std::vector<Finding>* out) {
  const std::set<std::string> secrets = SecretIdents(ctx);
  if (secrets.empty()) return;
  const std::vector<Token>& toks = ctx.tokens;

  // Sink 1: secret inside an if/while/for/switch condition — a
  // data-dependent branch on secret state (timing/trace channel).
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "if" && t.text != "while" && t.text != "for" &&
        t.text != "switch") {
      continue;
    }
    size_t open = NextCode(toks, i + 1);
    if (open < toks.size() && IsIdent(toks[open], "constexpr"))
      open = NextCode(toks, open + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t end = SkipBalanced(toks, open);
    for (size_t j = open + 1; j + 1 < end; ++j) {
      if (toks[j].kind == TokKind::kIdent && secrets.count(toks[j].text)) {
        out->push_back(Finding{
            ctx.file->path, toks[j].line, "secret-flow",
            "secret `" + toks[j].text + "` branches a `" + t.text +
                "` condition (data-dependent control flow)",
            "make the path constant-time (branchless select / fixed trip "
            "count), or add `// ppgnn-lint: allow(secret-flow): <why the "
            "branch leaks nothing>`"});
        break;  // one finding per condition is enough
      }
    }
    i = end > i ? end - 1 : i;
  }

  // Sink 2: secret inside the argument list of an Encode*/Serialize*
  // call — plaintext secrets must never enter a pre-encryption wire path.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (!StartsWith(t.text, "Encode") && !StartsWith(t.text, "Serialize"))
      continue;
    size_t open = NextCode(toks, i + 1);
    if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;
    size_t end = SkipBalanced(toks, open);
    for (size_t j = open + 1; j + 1 < end; ++j) {
      if (toks[j].kind == TokKind::kIdent && secrets.count(toks[j].text)) {
        out->push_back(Finding{
            ctx.file->path, toks[j].line, "secret-flow",
            "secret `" + toks[j].text + "` is passed to `" + t.text +
                "` (pre-encryption wire path)",
            "encrypt before encoding, or add `// ppgnn-lint: "
            "allow(secret-flow): <why this boundary is safe>`"});
      }
    }
  }

  // Sink 3: secret in a statement that also feeds a stream/log sink.
  for (const auto& span : StatementSpans(toks)) {
    bool has_shift = false;
    bool has_sink = false;
    bool has_streamish = false;
    const Token* secret_tok = nullptr;
    for (size_t j = span.first; j < span.second; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kComment) continue;
      if (IsPunct(t, "<<")) has_shift = true;
      if (t.kind == TokKind::kIdent) {
        if (StreamSinkIdents().count(t.text)) has_sink = true;
        if (StreamishIdents().count(t.text)) has_streamish = true;
        if (secret_tok == nullptr && secrets.count(t.text)) secret_tok = &t;
      }
    }
    if (secret_tok == nullptr) continue;
    if (has_sink || (has_shift && has_streamish)) {
      out->push_back(Finding{
          ctx.file->path, secret_tok->line, "secret-flow",
          "secret `" + secret_tok->text + "` reaches a stream/log sink",
          "never log key material, locations, or indicator indices; log a "
          "redacted digest instead, or add `// ppgnn-lint: "
          "allow(secret-flow): <why>`"});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const FileContext& ctx, std::vector<Finding>* out) {
  const std::string& path = ctx.file->path;
  // common/random wraps the one sanctioned seed source.
  if (StartsWith(path, "src/common/random")) return;
  // service/ owns wall-clock deadlines and backoff timing by design —
  // but that exemption does not extend to service code touching the
  // fixed-base machinery: the comb tables are derived from key material
  // and the blinding pools must replay bit-identically from seeded Rngs,
  // so neither may consume ambient entropy. A service file that includes
  // bigint/fixedbase.h or names a FixedBase entity is scanned like any
  // other crypto-adjacent file.
  if (StartsWith(path, "src/service/")) {
    bool touches_fixed_base = false;
    for (const Token& t : ctx.tokens) {
      if (t.kind == TokKind::kIdent &&
          t.text.find("FixedBase") != std::string::npos) {
        touches_fixed_base = true;
        break;
      }
      if (t.kind == TokKind::kString &&
          t.text.find("bigint/fixedbase.h") != std::string::npos) {
        touches_fixed_base = true;
        break;
      }
    }
    if (!touches_fixed_base) return;
  }

  // Banned outright: ambient entropy and wall-clock sources.
  static const std::set<std::string> kBannedAlways = {
      "random_device", "system_clock",  "srand",        "rand_r",
      "drand48",       "gettimeofday",  "localtime",    "gmtime",
      "mt19937",       "mt19937_64",    "minstd_rand",  "default_random_engine",
  };
  // Banned only as a call (the bare words are too common to blanket-ban).
  static const std::set<std::string> kBannedCalls = {"rand", "time", "clock"};

  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    bool banned = kBannedAlways.count(t.text) > 0;
    if (!banned && kBannedCalls.count(t.text) > 0) {
      size_t next = NextCode(toks, i + 1);
      banned = next < toks.size() && IsPunct(toks[next], "(");
    }
    if (!banned) continue;
    out->push_back(Finding{
        path, t.line, "determinism",
        "nondeterministic source `" + t.text +
            "` outside common/random and service/ timing code",
        "draw from a seeded ppgnn::Rng (common/random.h) so failpoint and "
        "chaos schedules replay bit-identically; wall-clock timing belongs "
        "in service/"});
  }
}

// ---------------------------------------------------------------------------
// include-hygiene
// ---------------------------------------------------------------------------

namespace {

/// Layer rank of each src/ subdirectory; a file may only include headers
/// from layers at or below its own. Derived from the dependency structure
/// at the time the rule was introduced — raising a layer is an explicit,
/// reviewed decision (edit this table), never an accident.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},  {"bigint", 1},  {"geo", 1},     {"net", 1},
      {"stats", 1},   {"spatial", 2}, {"crypto", 2},  {"roadnet", 3},
      {"core", 3},    {"baselines", 4}, {"service", 4},
  };
  return kRanks;
}

/// One `#include "..."` directive.
struct QuotedInclude {
  std::string path;
  int line;
};

std::vector<QuotedInclude> QuotedIncludes(const FileContext& ctx) {
  std::vector<QuotedInclude> out;
  const std::vector<Token>& toks = ctx.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsPunct(toks[i], "#")) continue;
    size_t kw = NextCode(toks, i + 1);
    if (kw >= toks.size() || !IsIdent(toks[kw], "include")) continue;
    size_t arg = NextCode(toks, kw + 1);
    if (arg >= toks.size() || toks[arg].kind != TokKind::kString) continue;
    std::string inner = toks[arg].text;
    if (inner.size() >= 2) inner = inner.substr(1, inner.size() - 2);
    out.push_back(QuotedInclude{inner, toks[arg].line});
  }
  return out;
}

}  // namespace

void CheckIncludeHygiene(const FileContext& ctx, std::vector<Finding>* out) {
  const std::string& path = ctx.file->path;
  if (!StartsWith(path, "src/")) return;
  // First path component under src/ is the layer; files directly in src/
  // (the ppgnn.h umbrella) are deliberately above the layering.
  size_t dir_end = path.find('/', 4);
  if (dir_end == std::string::npos) return;
  const std::string self_dir = path.substr(4, dir_end - 4);
  auto self_rank = LayerRanks().find(self_dir);

  const std::vector<QuotedInclude> includes = QuotedIncludes(ctx);

  // Own header first: src/<d>/<base>.cc must open with src/<d>/<base>.h
  // (compile-the-header-standalone discipline).
  const bool is_cc = path.size() > 3 && path.compare(path.size() - 3, 3,
                                                     ".cc") == 0;
  if (is_cc && !includes.empty()) {
    std::string own = path.substr(4, path.size() - 4 - 3) + ".h";
    if (ctx.index->all_paths.count("src/" + own) > 0 &&
        includes.front().path != own) {
      out->push_back(Finding{
          path, includes.front().line, "include-hygiene",
          "first include is \"" + includes.front().path +
              "\" but this file's own header \"" + own + "\" exists",
          "include the own header first so it is proven self-contained"});
    }
  }

  if (self_rank == LayerRanks().end()) return;
  for (const QuotedInclude& inc : includes) {
    size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string target_dir = inc.path.substr(0, slash);
    auto target_rank = LayerRanks().find(target_dir);
    if (target_rank == LayerRanks().end()) continue;
    if (target_rank->second > self_rank->second) {
      out->push_back(Finding{
          path, inc.line, "include-hygiene",
          "layer `" + self_dir + "` (rank " +
              std::to_string(self_rank->second) + ") includes \"" + inc.path +
              "\" from higher layer `" + target_dir + "` (rank " +
              std::to_string(target_rank->second) + ")",
          "invert the dependency (move shared types down a layer) or "
          "promote the layer in tools/lint/rules.cc with review"});
    }
  }
}

}  // namespace lint
}  // namespace ppgnn
