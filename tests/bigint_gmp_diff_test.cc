// Differential tests: our from-scratch BigInt against GMP. GMP is a
// test-only dependency — the ppgnn library itself never links it. This is
// the strongest evidence that the arithmetic substrate underneath the
// Paillier cryptosystem is correct.

#include <gmp.h>
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bigint/bigint.h"
#include "bigint/fixedbase.h"
#include "bigint/modular.h"
#include "bigint/multiexp.h"
#include "bigint/prime.h"
#include "common/random.h"

namespace ppgnn {
namespace {

// Converts our BigInt to a GMP integer via hex.
class GmpInt {
 public:
  GmpInt() { mpz_init(v_); }
  explicit GmpInt(const BigInt& b) {
    mpz_init(v_);
    std::string hex = b.ToHex();
    mpz_set_str(v_, hex.c_str(), 16);
  }
  GmpInt(const GmpInt&) = delete;
  GmpInt& operator=(const GmpInt&) = delete;
  ~GmpInt() { mpz_clear(v_); }

  std::string ToHex() const {
    char* s = mpz_get_str(nullptr, 16, v_);
    std::string out(s);
    free(s);
    return out;
  }

  mpz_t v_;
};


BigInt RandomSigned(int bits, Rng& rng) {
  BigInt v = BigInt::Random(bits, rng);
  return rng.NextBernoulli(0.5) ? v.Negated() : v;
}

TEST(GmpDiffTest, Addition) {
  Rng rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    int bits = 1 + static_cast<int>(rng.NextBelow(3000));
    BigInt a = RandomSigned(bits, rng);
    BigInt b = RandomSigned(1 + static_cast<int>(rng.NextBelow(3000)), rng);
    GmpInt ga(a), gb(b), out;
    mpz_add(out.v_, ga.v_, gb.v_);
    EXPECT_EQ((a + b).ToHex(), out.ToHex());
  }
}

TEST(GmpDiffTest, Subtraction) {
  Rng rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    BigInt a = RandomSigned(1 + static_cast<int>(rng.NextBelow(2500)), rng);
    BigInt b = RandomSigned(1 + static_cast<int>(rng.NextBelow(2500)), rng);
    GmpInt ga(a), gb(b), out;
    mpz_sub(out.v_, ga.v_, gb.v_);
    EXPECT_EQ((a - b).ToHex(), out.ToHex());
  }
}

TEST(GmpDiffTest, MultiplicationIncludingKaratsubaSizes) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    // Mix sizes around the 1536-bit Karatsuba threshold.
    int bits_a = 1 + static_cast<int>(rng.NextBelow(4000));
    int bits_b = 1 + static_cast<int>(rng.NextBelow(4000));
    BigInt a = RandomSigned(bits_a, rng);
    BigInt b = RandomSigned(bits_b, rng);
    GmpInt ga(a), gb(b), out;
    mpz_mul(out.v_, ga.v_, gb.v_);
    EXPECT_EQ((a * b).ToHex(), out.ToHex());
  }
}

TEST(GmpDiffTest, DivisionTruncated) {
  Rng rng(4);
  for (int iter = 0; iter < 200; ++iter) {
    BigInt a = RandomSigned(1 + static_cast<int>(rng.NextBelow(3000)), rng);
    BigInt b = RandomSigned(1 + static_cast<int>(rng.NextBelow(1500)), rng);
    if (b.IsZero()) continue;
    GmpInt ga(a), gb(b), q, r;
    mpz_tdiv_qr(q.v_, r.v_, ga.v_, gb.v_);  // truncated like C++
    auto qr = BigInt::DivMod(a, b).value();
    EXPECT_EQ(qr.first.ToHex(), q.ToHex());
    EXPECT_EQ(qr.second.ToHex(), r.ToHex());
  }
}

TEST(GmpDiffTest, ModExp) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    BigInt base = BigInt::Random(1024, rng);
    BigInt exp = BigInt::Random(512, rng);
    BigInt mod = BigInt::Random(1024, rng) + BigInt(2);
    GmpInt gb(base), ge(exp), gm(mod), out;
    mpz_powm(out.v_, gb.v_, ge.v_, gm.v_);
    EXPECT_EQ(ModExp(base, exp, mod).value().ToHex(), out.ToHex());
  }
}

TEST(GmpDiffTest, MultiExp) {
  // Straus simultaneous multi-exponentiation vs a GMP powm-and-multiply
  // chain, over odd Paillier-shaped moduli.
  Rng rng(12);
  for (int iter = 0; iter < 10; ++iter) {
    BigInt mod = BigInt::Random(1024, rng);
    if (!mod.IsOdd()) mod = mod + BigInt(1);
    auto ctx = MontgomeryContext::Create(mod).value();
    const size_t t = 1 + rng.NextBelow(8);
    std::vector<BigInt> bases(t), exps(t);
    GmpInt gm(mod), acc;
    mpz_set_ui(acc.v_, 1);
    for (size_t i = 0; i < t; ++i) {
      bases[i] = BigInt::RandomBelow(mod, rng);
      exps[i] = BigInt::Random(512, rng);
      GmpInt gb(bases[i]), ge(exps[i]), term;
      mpz_powm(term.v_, gb.v_, ge.v_, gm.v_);
      mpz_mul(acc.v_, acc.v_, term.v_);
      mpz_mod(acc.v_, acc.v_, gm.v_);
    }
    EXPECT_EQ(MultiExp(bases, exps, ctx).value().ToHex(), acc.ToHex())
        << "iter " << iter << " t=" << t;
  }
}

TEST(GmpDiffTest, FixedBasePow) {
  // Fixed-base windowed tables vs mpz_powm, across digit widths and
  // exponent sizes straddling the table capacity (the over-capacity
  // fallback must agree too).
  Rng rng(13);
  for (int iter = 0; iter < 12; ++iter) {
    BigInt mod = BigInt::Random(768 + static_cast<int>(rng.NextBelow(512)), rng);
    if (!mod.IsOdd()) mod = mod + BigInt(1);
    BigInt base = BigInt::RandomBelow(mod, rng);
    if (base.IsZero()) base = BigInt(2);
    const int window = 1 + static_cast<int>(rng.NextBelow(6));
    const int capacity = 64 + static_cast<int>(rng.NextBelow(1024));
    auto engine = FixedBaseEngine::Create(base, mod, capacity, window).value();
    GmpInt gb(base), gm(mod);
    for (int i = 0; i < 4; ++i) {
      BigInt e = BigInt::Random(
          1 + static_cast<int>(rng.NextBelow(
                  static_cast<uint64_t>(capacity) + 256)),
          rng);
      GmpInt ge(e), out;
      mpz_powm(out.v_, gb.v_, ge.v_, gm.v_);
      EXPECT_EQ(engine.Pow(e).value().ToHex(), out.ToHex())
          << "iter " << iter << " window " << window << " bits "
          << e.BitLength() << "/" << capacity;
    }
  }
}

TEST(GmpDiffTest, ModInverse) {
  Rng rng(6);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt m = BigInt::Random(512, rng) + BigInt(3);
    BigInt a = BigInt::Random(500, rng) + BigInt(1);
    GmpInt ga(a), gm(m), out;
    int invertible = mpz_invert(out.v_, ga.v_, gm.v_);
    auto ours = ModInverse(a, m);
    EXPECT_EQ(ours.ok(), invertible != 0);
    if (ours.ok()) {
      EXPECT_EQ(ours.value().ToHex(), out.ToHex());
    }
  }
}

TEST(GmpDiffTest, Gcd) {
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    BigInt a = BigInt::Random(1000, rng);
    BigInt b = BigInt::Random(800, rng);
    GmpInt ga(a), gb(b), out;
    mpz_gcd(out.v_, ga.v_, gb.v_);
    EXPECT_EQ(Gcd(a, b).ToHex(), out.ToHex());
  }
}

TEST(GmpDiffTest, PrimalityAgreement) {
  Rng rng(8);
  int primes_seen = 0;
  for (int iter = 0; iter < 300; ++iter) {
    BigInt candidate = BigInt::Random(128, rng);
    GmpInt gc(candidate);
    bool gmp_says = mpz_probab_prime_p(gc.v_, 32) != 0;
    bool we_say = IsProbablePrime(candidate, rng);
    EXPECT_EQ(we_say, gmp_says) << candidate.ToDecimal();
    primes_seen += gmp_says ? 1 : 0;
  }
  // Sanity: some primes should appear in 300 draws of 128-bit numbers
  // (density ~ 1/89 for odd numbers; we draw both parities).
  EXPECT_GT(primes_seen, 0);
}

TEST(GmpDiffTest, GeneratedPrimesSatisfyGmp) {
  Rng rng(9);
  for (int bits : {64, 128, 256, 512}) {
    BigInt p = GeneratePrime(bits, rng).value();
    GmpInt gp(p);
    EXPECT_NE(mpz_probab_prime_p(gp.v_, 40), 0) << p.ToDecimal();
  }
}

TEST(GmpDiffTest, DecimalStringsAgree) {
  Rng rng(10);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a = RandomSigned(1 + static_cast<int>(rng.NextBelow(2000)), rng);
    GmpInt ga(a);
    char* s = mpz_get_str(nullptr, 10, ga.v_);
    EXPECT_EQ(a.ToDecimal(), std::string(s));
    free(s);
  }
}

TEST(GmpDiffTest, ShiftsAgree) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    BigInt a = BigInt::Random(1 + static_cast<int>(rng.NextBelow(2000)), rng);
    unsigned shift = static_cast<unsigned>(rng.NextBelow(200));
    GmpInt ga(a), left, right;
    mpz_mul_2exp(left.v_, ga.v_, shift);
    mpz_fdiv_q_2exp(right.v_, ga.v_, shift);
    EXPECT_EQ((a << static_cast<int>(shift)).ToHex(), left.ToHex());
    EXPECT_EQ((a >> static_cast<int>(shift)).ToHex(), right.ToHex());
  }
}

}  // namespace
}  // namespace ppgnn
