#include "core/dummy.h"

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

bool InUnitSquare(const Point& p) {
  return p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0;
}

TEST(UniformDummyTest, InBoundsAndSpread) {
  UniformDummyGenerator gen;
  Rng rng(1);
  double sum_x = 0;
  for (int i = 0; i < 5000; ++i) {
    Point p = gen.Generate({0.5, 0.5}, rng);
    ASSERT_TRUE(InUnitSquare(p));
    sum_x += p.x;
  }
  EXPECT_NEAR(sum_x / 5000, 0.5, 0.03);
}

TEST(UniformDummyTest, IgnoresRealLocation) {
  UniformDummyGenerator gen;
  Rng a(7), b(7);
  Point p1 = gen.Generate({0.0, 0.0}, a);
  Point p2 = gen.Generate({1.0, 1.0}, b);
  EXPECT_EQ(p1, p2);  // same stream, same output regardless of `real`
}

TEST(PoiDensityDummyTest, ConcentratesWherePoisAre) {
  // All POIs in the lower-left quadrant: most dummies should land there.
  std::vector<Poi> pois;
  Rng seed(2);
  for (uint32_t i = 0; i < 2000; ++i) {
    pois.push_back({i, {seed.NextDouble() * 0.4, seed.NextDouble() * 0.4}});
  }
  PoiDensityDummyGenerator gen(pois, 16);
  Rng rng(3);
  int inside = 0;
  const int total = 5000;
  for (int i = 0; i < total; ++i) {
    Point p = gen.Generate({0.9, 0.9}, rng);
    ASSERT_TRUE(InUnitSquare(p));
    if (p.x <= 0.45 && p.y <= 0.45) ++inside;
  }
  EXPECT_GT(inside, total * 6 / 10);
}

TEST(PoiDensityDummyTest, SmoothingKeepsEmptyCellsPossible) {
  // With add-one smoothing, even a database concentrated in one cell
  // still occasionally yields dummies elsewhere.
  std::vector<Poi> pois(100, Poi{0, {0.01, 0.01}});
  PoiDensityDummyGenerator gen(pois, 8);
  Rng rng(4);
  int outside = 0;
  for (int i = 0; i < 4000; ++i) {
    Point p = gen.Generate({0.5, 0.5}, rng);
    if (p.x > 0.125 || p.y > 0.125) ++outside;
  }
  EXPECT_GT(outside, 0);
}

TEST(PoiDensityDummyTest, CellMassSumsToOne) {
  std::vector<Poi> pois = GenerateSequoiaLike(3000, 5);
  PoiDensityDummyGenerator gen(pois, 10);
  double total = 0;
  for (int cy = 0; cy < 10; ++cy) {
    for (int cx = 0; cx < 10; ++cx) {
      total += gen.CellMass({(cx + 0.5) / 10, (cy + 0.5) / 10});
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NearbyDummyTest, StaysNearRealLocation) {
  NearbyDummyGenerator gen(0.02);
  Rng rng(6);
  Point real{0.3, 0.7};
  for (int i = 0; i < 1000; ++i) {
    Point p = gen.Generate(real, rng);
    ASSERT_TRUE(InUnitSquare(p));
    EXPECT_LT(Distance(p, real), 0.02 * 6);  // 6 sigma
  }
}

TEST(NearbyDummyTest, ClampsAtBorders) {
  NearbyDummyGenerator gen(0.5);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(InUnitSquare(gen.Generate({0.0, 0.0}, rng)));
    ASSERT_TRUE(InUnitSquare(gen.Generate({1.0, 1.0}, rng)));
  }
}

TEST(DummyProtocolTest, ProtocolRunsWithEveryPolicy) {
  LspDatabase lsp(GenerateSequoiaLike(2000, 8));
  PoiDensityDummyGenerator density(lsp.pois(), 16);
  NearbyDummyGenerator nearby(0.05);
  UniformDummyGenerator uniform;
  const DummyGenerator* policies[] = {&uniform, &density, &nearby, nullptr};

  Rng key_rng(9);
  KeyPair keys = GenerateKeyPair(256, key_rng).value();
  for (const DummyGenerator* policy : policies) {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 2;
    params.key_bits = 256;
    params.sanitize = false;
    params.dummy_generator = policy;
    Rng rng(10);
    std::vector<Point> group = {{0.2, 0.3}, {0.4, 0.5}, {0.6, 0.7}};
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng, &keys);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    Rng ref_rng(0);
    auto reference = ReferenceAnswer(params, group, lsp, ref_rng);
    ASSERT_EQ(outcome->pois.size(), reference.size());
  }
}

TEST(DummyAdversaryTest, DensityDummiesResistPriorAdversary) {
  // A Bayesian LSP adversary with the POI-density prior guesses the real
  // location as the highest-prior entry of the location set. Real users
  // live in dense areas, so uniform dummies (often in empty space) are
  // easy to beat; density-mimicking dummies push the adversary back
  // toward the 1/d guess rate.
  std::vector<Poi> pois = GenerateSequoiaLike(20000, 11);
  PoiDensityDummyGenerator density(pois, 32);
  UniformDummyGenerator uniform;
  const int d = 10, trials = 400;
  Rng rng(12);

  auto adversary_hits = [&](const DummyGenerator& gen) {
    Rng local(13);
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      // A real user located like a POI (dense areas more likely).
      Point real = pois[local.NextBelow(pois.size())].location;
      std::vector<Point> set(d);
      for (Point& p : set) p = gen.Generate(real, local);
      size_t real_pos = local.NextBelow(d);
      set[real_pos] = real;
      // Adversary: argmax prior mass.
      size_t guess = 0;
      double best = -1;
      for (size_t i = 0; i < set.size(); ++i) {
        double mass = density.CellMass(set[i]);
        if (mass > best) {
          best = mass;
          guess = i;
        }
      }
      if (guess == real_pos) ++hits;
    }
    return static_cast<double>(hits) / trials;
  };

  double uniform_rate = adversary_hits(uniform);
  double density_rate = adversary_hits(density);
  (void)rng;
  // Uniform dummies leak: adversary clearly beats 1/d.
  EXPECT_GT(uniform_rate, 1.5 / d);
  // Density dummies bound the adversary near the ideal 1/d.
  EXPECT_LT(density_rate, uniform_rate);
  EXPECT_LT(density_rate, 2.5 / d);
}

}  // namespace
}  // namespace ppgnn
