// Unit tests for the overload-resilience building blocks — CostModel,
// AimdLimiter, ReplyCache — plus service-level coverage of the admission
// behaviors they compose into: cost-based shedding with a retry_after
// hint, and idempotency-key dedup (join + replay).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/indicator.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "service/admission.h"
#include "service/cost_model.h"
#include "service/lsp_service.h"
#include "service/reply_cache.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

CostFeatures Features(uint64_t delta_prime, int key_bits, int k = 3,
                      bool is_opt = false, uint64_t omega = 0) {
  CostFeatures f;
  f.delta_prime = delta_prime;
  f.k = k;
  f.key_bits = key_bits;
  f.is_opt = is_opt;
  f.omega = omega;
  return f;
}

// --- CostModel ---

TEST(CostModelTest, AnalyticGrowsWithDeltaPrime) {
  const double a = CostModel::AnalyticSeconds(Features(16, 1024));
  const double b = CostModel::AnalyticSeconds(Features(64, 1024));
  const double c = CostModel::AnalyticSeconds(Features(256, 1024));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // The per-candidate terms dominate: 4x the candidates should cost at
  // least ~3x, not some sublinear shrug.
  EXPECT_GT(b, 3.0 * a * 0.9);
}

TEST(CostModelTest, AnalyticGrowsQuadraticallyWithKeyBits) {
  const double k512 = CostModel::AnalyticSeconds(Features(64, 512));
  const double k1024 = CostModel::AnalyticSeconds(Features(64, 1024));
  const double k2048 = CostModel::AnalyticSeconds(Features(64, 2048));
  EXPECT_LT(k512, k1024);
  EXPECT_LT(k1024, k2048);
  // Crypto term scales (key_bits/1024)^2; with the non-crypto terms mixed
  // in, doubling the key size should still cost well over 2x.
  EXPECT_GT(k2048, 2.0 * k1024);
}

TEST(CostModelTest, OptPhaseTwoAddsCost) {
  const double plain = CostModel::AnalyticSeconds(Features(64, 1024));
  const double opt =
      CostModel::AnalyticSeconds(Features(64, 1024, 3, true, 8));
  EXPECT_GT(opt, plain);
}

TEST(CostModelTest, PredictionHasPositiveFloor) {
  EXPECT_GE(CostModel::AnalyticSeconds(Features(0, 0, 0)), 1.0e-4);
  CostModel model;
  EXPECT_GE(model.PredictSeconds(Features(0, 0, 0)), 1.0e-4);
}

TEST(CostModelTest, EwmaConvergesOntoObservedRatio) {
  CostModel model;
  const CostFeatures f = Features(64, 1024);
  const double analytic = CostModel::AnalyticSeconds(f);
  // This machine runs 3x slower than the calibration machine.
  for (int i = 0; i < 50; ++i) {
    model.Observe(f, 3.0 * analytic);
  }
  const double predicted = model.PredictSeconds(f);
  EXPECT_NEAR(predicted / analytic, 3.0, 0.05);
  EXPECT_EQ(model.observations(), 50u);
}

TEST(CostModelTest, UnseenBucketFallsBackToGlobalRatio) {
  CostModel model;
  const CostFeatures seen = Features(64, 1024);
  for (int i = 0; i < 50; ++i) {
    model.Observe(seen, 2.0 * CostModel::AnalyticSeconds(seen));
  }
  // A key-size class the model has never observed still benefits from
  // the machine-speed correction learned globally.
  const CostFeatures unseen = Features(64, 2048);
  const double predicted = model.PredictSeconds(unseen);
  EXPECT_NEAR(predicted / CostModel::AnalyticSeconds(unseen), 2.0, 0.05);
}

TEST(CostModelTest, BucketRatioShadowsGlobal) {
  CostModel model;
  const CostFeatures small = Features(16, 1024);
  const CostFeatures large = Features(1024, 1024);
  for (int i = 0; i < 50; ++i) {
    model.Observe(small, 2.0 * CostModel::AnalyticSeconds(small));
    model.Observe(large, 5.0 * CostModel::AnalyticSeconds(large));
  }
  EXPECT_NEAR(
      model.PredictSeconds(small) / CostModel::AnalyticSeconds(small), 2.0,
      0.1);
  EXPECT_NEAR(
      model.PredictSeconds(large) / CostModel::AnalyticSeconds(large), 5.0,
      0.1);
}

TEST(CostModelTest, EncryptCostOrdersPathsAndScalesWithKey) {
  // Measured hierarchy at any key size: pooled << crt <= fixed-base <<
  // naive; level 2 costs more than level 1 on every path.
  for (int bits : {512, 1024, 2048}) {
    for (int level : {1, 2}) {
      const double naive =
          CostModel::AnalyticEncryptSeconds(bits, level, EncryptPath::kNaive);
      const double fixed = CostModel::AnalyticEncryptSeconds(
          bits, level, EncryptPath::kFixedBase);
      const double crt =
          CostModel::AnalyticEncryptSeconds(bits, level, EncryptPath::kCrt);
      const double pooled =
          CostModel::AnalyticEncryptSeconds(bits, level, EncryptPath::kPooled);
      EXPECT_GT(naive, 2.0 * fixed) << bits << "/" << level;
      EXPECT_LE(crt, fixed * 1.01) << bits << "/" << level;
      EXPECT_LT(pooled, 0.1 * crt) << bits << "/" << level;
      EXPECT_LT(
          CostModel::AnalyticEncryptSeconds(bits, 1, EncryptPath::kFixedBase),
          CostModel::AnalyticEncryptSeconds(bits, 2, EncryptPath::kFixedBase));
    }
    // Exponentiation paths scale cubically: 2x the key must cost > 4x.
    EXPECT_GT(
        CostModel::AnalyticEncryptSeconds(2 * bits, 1, EncryptPath::kNaive),
        4.0 * CostModel::AnalyticEncryptSeconds(bits, 1, EncryptPath::kNaive));
  }
}

TEST(CostModelTest, SeedPriorShapesPredictionUntilRealData) {
  CostModel model;
  const CostFeatures f = Features(64, 1024);
  const double analytic = CostModel::AnalyticSeconds(f);
  model.SeedPrior(f, 4.0 * analytic);
  EXPECT_EQ(model.observations(), 0u);  // priors are not observations
  EXPECT_NEAR(model.PredictSeconds(f), 4.0 * analytic, 1e-9);
  // A second seed does not overwrite the first...
  model.SeedPrior(f, 100.0 * analytic);
  EXPECT_NEAR(model.PredictSeconds(f), 4.0 * analytic, 1e-9);
  // ...and real observations pull away from the prior at the EWMA rate.
  for (int i = 0; i < 64; ++i) model.Observe(f, analytic);
  EXPECT_NEAR(model.PredictSeconds(f), analytic, 0.1 * analytic);
}

TEST(CostModelTest, ObserveRejectsNonPositiveAndNan) {
  CostModel model;
  const CostFeatures f = Features(64, 1024);
  model.Observe(f, 0.0);
  model.Observe(f, -1.0);
  model.Observe(f, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(model.observations(), 0u);
  // Prediction is untouched: pure analytic.
  EXPECT_DOUBLE_EQ(model.PredictSeconds(f), CostModel::AnalyticSeconds(f));
}

// --- AimdLimiter ---

AimdLimiter::Options LimiterOptions(double target, int initial, int window) {
  AimdLimiter::Options o;
  o.target_p99_seconds = target;
  o.min_concurrency = 1;
  o.max_concurrency = 16;
  o.initial_concurrency = initial;
  o.window = window;
  o.decrease_factor = 0.7;
  return o;
}

TEST(AimdLimiterTest, DecreasesMultiplicativelyOnSlowWindow) {
  AimdLimiter limiter(LimiterOptions(0.010, 10, 4));
  ASSERT_EQ(limiter.limit(), 10);
  for (int i = 0; i < 4; ++i) limiter.OnComplete(0.100);  // p99 over target
  EXPECT_EQ(limiter.limit(), 7);  // floor(10 * 0.7)
  EXPECT_EQ(limiter.decreases(), 1u);
  EXPECT_EQ(limiter.increases(), 0u);
}

TEST(AimdLimiterTest, IncreasesAdditivelyOnFastWindow) {
  AimdLimiter limiter(LimiterOptions(0.010, 4, 4));
  for (int i = 0; i < 4; ++i) limiter.OnComplete(0.001);
  EXPECT_EQ(limiter.limit(), 5);
  EXPECT_EQ(limiter.increases(), 1u);
}

TEST(AimdLimiterTest, IncompleteWindowMakesNoDecision) {
  AimdLimiter limiter(LimiterOptions(0.010, 4, 8));
  for (int i = 0; i < 7; ++i) limiter.OnComplete(0.100);
  EXPECT_EQ(limiter.limit(), 4);
  EXPECT_EQ(limiter.decreases(), 0u);
}

TEST(AimdLimiterTest, WindowP99Semantics) {
  // Small window: floor(32 * 99 / 100) = 31 is the max element, so one
  // straggler in a 32-wide window does trigger a decrease (by design —
  // a small window cannot distinguish p99 from max).
  AimdLimiter small(LimiterOptions(0.010, 8, 32));
  for (int i = 0; i < 31; ++i) small.OnComplete(0.001);
  small.OnComplete(5.0);
  EXPECT_EQ(small.decreases(), 1u);
  // Large window: floor(200 * 99 / 100) = 198 is the second-largest, so
  // a single straggler among 200 is ignored.
  AimdLimiter large(LimiterOptions(0.010, 8, 200));
  for (int i = 0; i < 199; ++i) large.OnComplete(0.001);
  large.OnComplete(5.0);
  EXPECT_EQ(large.decreases(), 0u);
  EXPECT_EQ(large.limit(), 9);  // counted as a fast window
}

TEST(AimdLimiterTest, RespectsBounds) {
  AimdLimiter limiter(LimiterOptions(0.010, 8, 2));
  for (int round = 0; round < 20; ++round) {
    limiter.OnComplete(1.0);
    limiter.OnComplete(1.0);
  }
  EXPECT_EQ(limiter.limit(), 1);  // floored at min_concurrency
  for (int round = 0; round < 40; ++round) {
    limiter.OnComplete(0.0001);
    limiter.OnComplete(0.0001);
  }
  EXPECT_EQ(limiter.limit(), 16);  // capped at max_concurrency
}

TEST(AimdLimiterTest, ClampsDegenerateOptions) {
  AimdLimiter::Options o;
  o.min_concurrency = -3;
  o.max_concurrency = -7;
  o.initial_concurrency = 100;
  o.window = 0;
  AimdLimiter limiter(o);
  EXPECT_EQ(limiter.limit(), 1);  // min=1, max=1, initial clamped
}

// --- ReplyCache ---

ReplyCache::Options CacheOptions(size_t capacity, double ttl) {
  ReplyCache::Options o;
  o.capacity = capacity;
  o.ttl_seconds = ttl;
  return o;
}

TEST(ReplyCacheTest, PrimaryJoinReplayLifecycle) {
  ReplyCache cache(CacheOptions(16, 30.0));
  const std::vector<uint8_t> frame = {1, 2, 3};

  auto first = cache.AdmitOrAttach(7, nullptr);
  EXPECT_EQ(first.admission, ReplyCache::Admission::kPrimary);

  std::vector<uint8_t> joined_frame;
  auto second = cache.AdmitOrAttach(
      7, [&](std::vector<uint8_t> f) { joined_frame = std::move(f); });
  EXPECT_EQ(second.admission, ReplyCache::Admission::kJoined);

  auto waiters = cache.Complete(7, first.generation, frame,
                                /*cache_for_replay=*/true);
  ASSERT_EQ(waiters.size(), 1u);
  waiters[0](frame);
  EXPECT_EQ(joined_frame, frame);

  auto third = cache.AdmitOrAttach(7, nullptr);
  EXPECT_EQ(third.admission, ReplyCache::Admission::kReplayed);
  EXPECT_EQ(third.frame, frame);
  EXPECT_EQ(cache.CompletedEntries(), 1u);
}

TEST(ReplyCacheTest, ErrorCompletionIsDeliveredButNeverReplayed) {
  ReplyCache cache(CacheOptions(16, 30.0));
  auto primary = cache.AdmitOrAttach(9, nullptr);
  ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
  int joiner_calls = 0;
  (void)cache.AdmitOrAttach(9,
                            [&](std::vector<uint8_t>) { ++joiner_calls; });
  auto waiters =
      cache.Complete(9, primary.generation, {0xEE}, /*cache_for_replay=*/false);
  ASSERT_EQ(waiters.size(), 1u);
  waiters[0]({0xEE});
  EXPECT_EQ(joiner_calls, 1);
  // The failure is not cached: a later retry with the same key runs fresh.
  EXPECT_EQ(cache.AdmitOrAttach(9, nullptr).admission,
            ReplyCache::Admission::kPrimary);
  EXPECT_EQ(cache.CompletedEntries(), 0u);
}

TEST(ReplyCacheTest, AbortReturnsJoinedWaiters) {
  ReplyCache cache(CacheOptions(16, 30.0));
  auto primary = cache.AdmitOrAttach(5, nullptr);
  ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
  int joiner_calls = 0;
  (void)cache.AdmitOrAttach(5,
                            [&](std::vector<uint8_t>) { ++joiner_calls; });
  auto waiters = cache.Abort(5, primary.generation);
  ASSERT_EQ(waiters.size(), 1u);
  waiters[0]({});
  EXPECT_EQ(joiner_calls, 1);
  EXPECT_EQ(cache.AdmitOrAttach(5, nullptr).admission,
            ReplyCache::Admission::kPrimary);
}

TEST(ReplyCacheTest, CapacityEvictsOldestCompleted) {
  ReplyCache cache(CacheOptions(2, 30.0));
  for (uint64_t key = 1; key <= 3; ++key) {
    auto primary = cache.AdmitOrAttach(key, nullptr);
    ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
    (void)cache.Complete(key, primary.generation,
                         {static_cast<uint8_t>(key)},
                         /*cache_for_replay=*/true);
  }
  EXPECT_EQ(cache.CompletedEntries(), 2u);
  // Key 1 (oldest) was evicted; 2 and 3 still replay.
  EXPECT_EQ(cache.AdmitOrAttach(1, nullptr).admission,
            ReplyCache::Admission::kPrimary);
  EXPECT_EQ(cache.AdmitOrAttach(2, nullptr).admission,
            ReplyCache::Admission::kReplayed);
  EXPECT_EQ(cache.AdmitOrAttach(3, nullptr).admission,
            ReplyCache::Admission::kReplayed);
}

TEST(ReplyCacheTest, TtlEvictsCompletedEntries) {
  ReplyCache cache(CacheOptions(16, 0.02));
  auto primary = cache.AdmitOrAttach(11, nullptr);
  ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
  (void)cache.Complete(11, primary.generation, {0x11},
                       /*cache_for_replay=*/true);
  EXPECT_EQ(cache.AdmitOrAttach(11, nullptr).admission,
            ReplyCache::Admission::kReplayed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(cache.AdmitOrAttach(11, nullptr).admission,
            ReplyCache::Admission::kPrimary);
}

TEST(ReplyCacheTest, InFlightEntriesSurviveEvictionPressure) {
  ReplyCache cache(CacheOptions(1, 30.0));
  auto hundred = cache.AdmitOrAttach(100, nullptr);
  ASSERT_EQ(hundred.admission, ReplyCache::Admission::kPrimary);
  // Churn completed entries past capacity while 100 stays in flight.
  for (uint64_t key = 1; key <= 4; ++key) {
    auto primary = cache.AdmitOrAttach(key, nullptr);
    ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
    (void)cache.Complete(key, primary.generation, {0x01},
                         /*cache_for_replay=*/true);
  }
  // The in-flight entry still coalesces duplicates.
  EXPECT_EQ(cache.AdmitOrAttach(100, [](std::vector<uint8_t>) {}).admission,
            ReplyCache::Admission::kJoined);
  auto waiters = cache.Complete(100, hundred.generation, {0x64},
                                /*cache_for_replay=*/true);
  EXPECT_EQ(waiters.size(), 1u);
}

TEST(ReplyCacheTest, DoubleCompleteIsIgnored) {
  ReplyCache cache(CacheOptions(16, 30.0));
  auto primary = cache.AdmitOrAttach(3, nullptr);
  ASSERT_EQ(primary.admission, ReplyCache::Admission::kPrimary);
  (void)cache.Complete(3, primary.generation, {0xAA},
                       /*cache_for_replay=*/true);
  auto again = cache.Complete(3, primary.generation, {0xBB},
                              /*cache_for_replay=*/true);
  EXPECT_TRUE(again.empty());
  // The first frame wins.
  auto replay = cache.AdmitOrAttach(3, nullptr);
  ASSERT_EQ(replay.admission, ReplyCache::Admission::kReplayed);
  EXPECT_EQ(replay.frame, std::vector<uint8_t>{0xAA});
}

// Regression (pre-fix failing): an in-flight entry whose primary died
// without Complete/Abort pinned its key forever — every retry "joined" an
// execution that would never finish. Past deadline + grace the retry must
// take over as a fresh primary and the stranded joiners must be returned
// for erroring out.
TEST(ReplyCacheTest, RetryTakesOverAbandonedPrimaryPastDeadline) {
  ReplyCache::Options o = CacheOptions(16, 30.0);
  o.in_flight_grace_seconds = 0.0;
  ReplyCache cache(o);
  // Admit with a deadline slightly in the future so the joiner can attach
  // while the entry is still live, then let the deadline lapse.
  const auto deadline =
      ReplyCache::Clock::now() + std::chrono::milliseconds(40);
  auto dead = cache.AdmitOrAttach(42, nullptr, deadline);
  ASSERT_EQ(dead.admission, ReplyCache::Admission::kPrimary);
  int joiner_calls = 0;
  ASSERT_EQ(cache
                .AdmitOrAttach(42,
                               [&](std::vector<uint8_t>) { ++joiner_calls; })
                .admission,
            ReplyCache::Admission::kJoined);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  auto retry = cache.AdmitOrAttach(
      42, nullptr, ReplyCache::Clock::now() + std::chrono::seconds(5));
  EXPECT_EQ(retry.admission, ReplyCache::Admission::kPrimary);
  ASSERT_EQ(retry.expired_waiters.size(), 1u);
  retry.expired_waiters[0]({});
  EXPECT_EQ(joiner_calls, 1);

  // The dead primary's late Complete carries a stale generation: it must
  // not hijack (or cache a frame for) the readmitted execution.
  auto stale = cache.Complete(42, dead.generation, {0xDE},
                              /*cache_for_replay=*/true);
  EXPECT_TRUE(stale.empty());
  EXPECT_EQ(cache.CompletedEntries(), 0u);
  (void)cache.Complete(42, retry.generation, {0xAD},
                       /*cache_for_replay=*/true);
  auto replay = cache.AdmitOrAttach(42, nullptr);
  ASSERT_EQ(replay.admission, ReplyCache::Admission::kReplayed);
  EXPECT_EQ(replay.frame, std::vector<uint8_t>{0xAD});
}

TEST(ReplyCacheTest, DeadlinelessInFlightEntriesAreNeverPurged) {
  ReplyCache::Options o = CacheOptions(16, 30.0);
  o.in_flight_grace_seconds = 0.0;
  ReplyCache cache(o);
  ASSERT_EQ(cache.AdmitOrAttach(8, nullptr).admission,
            ReplyCache::Admission::kPrimary);
  // No deadline was attached, so the entry cannot expire.
  EXPECT_EQ(cache.AdmitOrAttach(8, [](std::vector<uint8_t>) {}).admission,
            ReplyCache::Admission::kJoined);
  EXPECT_EQ(cache.InFlightEntries(), 1u);
}

// Abandoned entries are also swept when *other* keys are admitted, so a
// dead key's waiters do not wait for someone to retry that exact key.
TEST(ReplyCacheTest, AdmissionSweepPurgesAbandonedOtherKeys) {
  ReplyCache::Options o = CacheOptions(16, 30.0);
  o.in_flight_grace_seconds = 0.0;
  ReplyCache cache(o);
  const auto deadline =
      ReplyCache::Clock::now() + std::chrono::milliseconds(40);
  ASSERT_EQ(cache.AdmitOrAttach(1, nullptr, deadline).admission,
            ReplyCache::Admission::kPrimary);
  int joiner_calls = 0;
  ASSERT_EQ(cache
                .AdmitOrAttach(1,
                               [&](std::vector<uint8_t>) { ++joiner_calls; })
                .admission,
            ReplyCache::Admission::kJoined);
  EXPECT_EQ(cache.InFlightEntries(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  auto other = cache.AdmitOrAttach(2, nullptr);
  EXPECT_EQ(other.admission, ReplyCache::Admission::kPrimary);
  ASSERT_EQ(other.expired_waiters.size(), 1u);
  other.expired_waiters[0]({});
  EXPECT_EQ(joiner_calls, 1);
  EXPECT_EQ(cache.InFlightEntries(), 1u);  // only key 2 remains
}

TEST(ReplyCacheTest, StaleGenerationAbortIsIgnored) {
  ReplyCache::Options o = CacheOptions(16, 30.0);
  o.in_flight_grace_seconds = 0.0;
  ReplyCache cache(o);
  const auto expired_deadline =
      ReplyCache::Clock::now() - std::chrono::milliseconds(10);
  auto dead = cache.AdmitOrAttach(6, nullptr, expired_deadline);
  ASSERT_EQ(dead.admission, ReplyCache::Admission::kPrimary);
  auto retry = cache.AdmitOrAttach(
      6, nullptr, ReplyCache::Clock::now() + std::chrono::seconds(5));
  ASSERT_EQ(retry.admission, ReplyCache::Admission::kPrimary);
  // The stale Abort must not tear down the readmitted entry.
  EXPECT_TRUE(cache.Abort(6, dead.generation).empty());
  EXPECT_EQ(cache.AdmitOrAttach(6, [](std::vector<uint8_t>) {}).admission,
            ReplyCache::Admission::kJoined);
}

// --- service-level admission behavior ---

class AdmissionServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(3000, 777));
    Rng rng(778);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }

  struct Request {
    std::vector<uint8_t> query;
    std::vector<std::vector<uint8_t>> uploads;
  };

  static Request MakeRequest(Rng& rng) {
    Request req;
    PartitionPlan plan = SolvePartition(3, 4, 8).value();
    QueryMessage query;
    query.k = 3;
    query.theta0 = 0.05;
    query.aggregate = AggregateKind::kSum;
    query.plan = plan;
    query.pk = keys_->pub;
    std::vector<int> x(plan.alpha, 1);
    Encryptor enc(keys_->pub);
    query.indicator =
        EncryptIndicator(enc, QueryIndex(plan, 1, x), plan.delta_prime, rng)
            .value();
    req.query = query.Encode().value();
    for (uint32_t u = 0; u < 3; ++u) {
      LocationSetMessage msg;
      msg.user_id = u;
      for (int i = 0; i < 4; ++i) {
        msg.locations.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      req.uploads.push_back(msg.Encode());
    }
    return req;
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* AdmissionServiceTest::db_ = nullptr;
KeyPair* AdmissionServiceTest::keys_ = nullptr;

TEST_F(AdmissionServiceTest, ShedsDoomedRequestBeforeAnyCryptoRuns) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  Rng rng(10);
  Request req = MakeRequest(rng);
  ServiceRequest sreq;
  sreq.query = req.query;
  sreq.uploads = req.uploads;
  // A nanosecond budget cannot fit any predicted execution: the request
  // must be rejected at Submit, before a single ciphertext is decoded.
  sreq.deadline_seconds = 1e-9;

  std::vector<uint8_t> frame;
  bool admitted = service.Submit(std::move(sreq), [&](std::vector<uint8_t> f) {
    frame = std::move(f);
  });
  EXPECT_FALSE(admitted);

  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kOverloaded);
  EXPECT_GT(decoded.error.retry_after_ms, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.served, 0u);
  // Shedding never started crypto, so nothing was abandoned mid-flight.
  EXPECT_EQ(stats.abandoned_executing, 0u);
}

TEST_F(AdmissionServiceTest, GenerousDeadlineIsNotShed) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  Rng rng(11);
  Request req = MakeRequest(rng);
  ServiceRequest sreq;
  sreq.query = req.query;
  sreq.uploads = req.uploads;
  sreq.deadline_seconds = 30.0;

  auto frame = service.Call(std::move(sreq));
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  EXPECT_FALSE(decoded.is_error);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.served, 1u);
  // The completed execution fed the model.
  EXPECT_EQ(stats.cost_observations, 1u);
}

TEST_F(AdmissionServiceTest, DedupJoinsInFlightAndRepliesBothLegsIdentically) {
  ServiceConfig config;
  config.workers = 1;
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool primary_entered = false;
  config.test_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(m);
    primary_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  LspService service(*db_, config);

  Rng rng(12);
  Request req = MakeRequest(rng);

  std::mutex frames_mu;
  std::condition_variable frames_cv;
  std::vector<std::vector<uint8_t>> frames;
  auto submit_leg = [&] {
    ServiceRequest sreq;
    sreq.query = req.query;
    sreq.uploads = req.uploads;
    sreq.idempotency_key = 0xF00Dull;
    ASSERT_TRUE(service.Submit(std::move(sreq), [&](std::vector<uint8_t> f) {
      std::lock_guard<std::mutex> lock(frames_mu);
      frames.push_back(std::move(f));
      frames_cv.notify_all();
    }));
  };

  submit_leg();  // primary
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return primary_entered; });
  }
  submit_leg();  // duplicate joins the held primary
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(frames_mu);
    frames_cv.wait(lock, [&] { return frames.size() == 2; });
  }

  // One execution, two legs, bit-identical frames.
  EXPECT_EQ(frames[0], frames[1]);
  EXPECT_FALSE(ResponseFrame::Decode(frames[0]).value().is_error);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.dedup_joins, 1u);

  // A third submission after completion replays from the cache without
  // touching the queue (the single worker is idle; still only 1 served).
  ServiceRequest sreq;
  sreq.query = req.query;
  sreq.uploads = req.uploads;
  sreq.idempotency_key = 0xF00Dull;
  std::vector<uint8_t> replayed;
  ASSERT_TRUE(service.Submit(std::move(sreq), [&](std::vector<uint8_t> f) {
    replayed = std::move(f);
  }));
  EXPECT_EQ(replayed, frames[0]);
  stats = service.Stats();
  EXPECT_EQ(stats.dedup_replays, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.accepted, 1u);
}

TEST_F(AdmissionServiceTest, DedupDisabledRunsEveryCopy) {
  ServiceConfig config;
  config.workers = 1;
  config.enable_dedup = false;
  LspService service(*db_, config);

  Rng rng(13);
  Request req = MakeRequest(rng);
  for (int i = 0; i < 2; ++i) {
    ServiceRequest sreq;
    sreq.query = req.query;
    sreq.uploads = req.uploads;
    sreq.idempotency_key = 0xF00Dull;
    auto frame = service.Call(std::move(sreq));
    EXPECT_FALSE(ResponseFrame::Decode(frame).value().is_error);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.dedup_joins, 0u);
  EXPECT_EQ(stats.dedup_replays, 0u);
}

// Regression (pre-fix hanging): a primary stuck in execution past its
// deadline pinned the idempotency key, so joined waiters were stranded and
// retries kept "joining" forever. Now a retry purges the abandoned entry:
// stranded waiters get kDeadlineExceeded and the retry runs as a fresh
// primary.
TEST_F(AdmissionServiceTest, RetryPurgesAbandonedDedupPrimary) {
  ServiceConfig config;
  config.workers = 1;
  config.reply_cache_in_flight_grace_seconds = 0.0;
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;
  bool block_next = true;
  config.test_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(m);
    if (!block_next) return;  // only the doomed primary is held
    block_next = false;
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  LspService service(*db_, config);

  Rng rng(15);
  Request req = MakeRequest(rng);
  auto submit = [&](double deadline, LspService::Callback done) {
    ServiceRequest sreq;
    sreq.query = req.query;
    sreq.uploads = req.uploads;
    sreq.idempotency_key = 0xDEADull;
    sreq.deadline_seconds = deadline;
    ASSERT_TRUE(service.Submit(std::move(sreq), std::move(done)));
  };

  std::vector<uint8_t> primary_frame;
  submit(0.2, [&](std::vector<uint8_t> f) { primary_frame = std::move(f); });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }
  std::mutex frames_mu;
  std::condition_variable frames_cv;
  std::vector<uint8_t> joiner_frame;
  submit(0.2, [&](std::vector<uint8_t> f) {
    std::lock_guard<std::mutex> lock(frames_mu);
    joiner_frame = std::move(f);
    frames_cv.notify_all();
  });
  EXPECT_EQ(service.Stats().dedup_joins, 1u);

  // Let the primary's deadline (and the zero grace) elapse while it is
  // still stuck executing, then retry the same key.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  std::vector<uint8_t> retry_frame;
  submit(30.0, [&](std::vector<uint8_t> f) {
    std::lock_guard<std::mutex> lock(frames_mu);
    retry_frame = std::move(f);
    frames_cv.notify_all();
  });
  {
    // The stranded joiner is errored out at the retry's admission, before
    // the stuck primary ever finishes.
    std::unique_lock<std::mutex> lock(frames_mu);
    frames_cv.wait(lock, [&] { return !joiner_frame.empty(); });
  }
  ResponseFrame joined = ResponseFrame::Decode(joiner_frame).value();
  ASSERT_TRUE(joined.is_error);
  EXPECT_EQ(joined.error.code, WireError::kDeadlineExceeded);
  EXPECT_EQ(service.Stats().dedup_purged, 1u);

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(frames_mu);
    frames_cv.wait(lock, [&] { return !retry_frame.empty(); });
  }
  // The retry ran as a fresh primary and got a real answer; the stale
  // primary's late completion could not hijack the readmitted key.
  EXPECT_FALSE(ResponseFrame::Decode(retry_frame).value().is_error);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.dedup_purged, 1u);
  service.Shutdown();
}

TEST_F(AdmissionServiceTest, RetryAfterHintOverrideIsHonored) {
  ServiceConfig config;
  config.workers = 1;
  config.retry_after_hint_ms = 123;
  LspService service(*db_, config);

  Rng rng(14);
  Request req = MakeRequest(rng);
  ServiceRequest sreq;
  sreq.query = req.query;
  sreq.uploads = req.uploads;
  sreq.deadline_seconds = 1e-9;  // forces a shed
  std::vector<uint8_t> frame;
  EXPECT_FALSE(service.Submit(std::move(sreq), [&](std::vector<uint8_t> f) {
    frame = std::move(f);
  }));
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.retry_after_ms, 123u);
}

TEST_F(AdmissionServiceTest, StatsExposeConcurrencyLimitAndAimdCounters) {
  // The limiter starts wide open at max_concurrency, so a fresh service
  // can only move by *decreasing*: make every completion blow the p99
  // target and watch the limit walk down toward min_concurrency.
  ServiceConfig config;
  config.workers = 2;
  config.aimd_window = 1;            // every completion is a decision
  config.target_p99_seconds = 1e-9;  // everything is "slow" -> decreases
  config.max_concurrency = 8;
  LspService service(*db_, config);
  EXPECT_EQ(service.Stats().concurrency_limit, 8);

  Rng rng(15);
  for (int i = 0; i < 3; ++i) {
    Request req = MakeRequest(rng);
    ServiceRequest sreq;
    sreq.query = req.query;
    sreq.uploads = req.uploads;
    auto frame = service.Call(std::move(sreq));
    EXPECT_FALSE(ResponseFrame::Decode(frame).value().is_error);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.aimd_decreases, 3u);
  EXPECT_EQ(stats.concurrency_limit, 2);  // floor(floor(floor(8*.7)*.7)*.7)
  EXPECT_EQ(stats.cost_observations, 3u);
}

}  // namespace
}  // namespace ppgnn
