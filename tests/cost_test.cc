#include "net/cost.h"

#include <gtest/gtest.h>

namespace ppgnn {
namespace {

volatile double benchmark_guard_ = 0;  // defeats optimization of busy loops

TEST(CostTrackerTest, RecordsPerLinkBytes) {
  CostTracker tracker;
  tracker.RecordSend(Link::kUserToLsp, 100);
  tracker.RecordSend(Link::kUserToLsp, 50);
  tracker.RecordSend(Link::kLspToUser, 30);
  tracker.RecordSend(Link::kUserToUser, 7);
  const CostReport& r = tracker.report();
  EXPECT_EQ(r.bytes_user_to_lsp, 150u);
  EXPECT_EQ(r.bytes_lsp_to_user, 30u);
  EXPECT_EQ(r.bytes_user_to_user, 7u);
  EXPECT_EQ(r.TotalCommBytes(), 187u);
}

TEST(CostTrackerTest, FramedSendCountsBothColumns) {
  CostTracker tracker;
  // 100 logical payload bytes cost 110 on the socket (10-byte transport
  // header); the logical column must match a plain RecordSend exactly.
  tracker.RecordFramedSend(Link::kUserToLsp, 100, 110);
  tracker.RecordFramedSend(Link::kLspToUser, 40, 50);
  const CostReport& r = tracker.report();
  EXPECT_EQ(r.bytes_user_to_lsp, 100u);
  EXPECT_EQ(r.bytes_lsp_to_user, 40u);
  EXPECT_EQ(r.framed_bytes_user_to_lsp, 110u);
  EXPECT_EQ(r.framed_bytes_lsp_to_user, 50u);
  EXPECT_EQ(r.TotalCommBytes(), 140u);
  EXPECT_EQ(r.TotalFramedBytes(), 160u);
}

// The wire can only add framing, never shed payload: for any mix of
// framed sends, each framed column dominates its logical column.
TEST(CostTrackerTest, FramedBytesDominateLogicalBytes) {
  CostTracker tracker;
  const uint64_t payloads[] = {0, 1, 9, 1024, 65536};
  for (uint64_t p : payloads) {
    tracker.RecordFramedSend(Link::kUserToLsp, p, p + 10);
    tracker.RecordFramedSend(Link::kLspToUser, p, p + 10);
  }
  const CostReport& r = tracker.report();
  EXPECT_GE(r.framed_bytes_user_to_lsp, r.bytes_user_to_lsp);
  EXPECT_GE(r.framed_bytes_lsp_to_user, r.bytes_lsp_to_user);
  EXPECT_GE(r.TotalFramedBytes(), r.TotalCommBytes() - r.bytes_user_to_user);
}

TEST(CostTrackerTest, InProcessRunsLeaveFramedColumnsZero) {
  CostTracker tracker;
  tracker.RecordSend(Link::kUserToLsp, 100);
  tracker.RecordSend(Link::kLspToUser, 100);
  EXPECT_EQ(tracker.report().TotalFramedBytes(), 0u);
}

TEST(CostTrackerTest, RecordsPerPartyTime) {
  CostTracker tracker;
  tracker.RecordCompute(Party::kUser, 0.25);
  tracker.RecordCompute(Party::kUser, 0.25);
  tracker.RecordCompute(Party::kLsp, 1.0);
  EXPECT_DOUBLE_EQ(tracker.report().user_seconds, 0.5);
  EXPECT_DOUBLE_EQ(tracker.report().lsp_seconds, 1.0);
}

TEST(CostTrackerTest, ResetClears) {
  CostTracker tracker;
  tracker.RecordSend(Link::kUserToLsp, 10);
  tracker.RecordCompute(Party::kLsp, 1.0);
  tracker.Reset();
  EXPECT_EQ(tracker.report().TotalCommBytes(), 0u);
  EXPECT_DOUBLE_EQ(tracker.report().lsp_seconds, 0.0);
}

TEST(CostReportTest, AccumulateAndAverage) {
  CostReport a;
  a.bytes_user_to_lsp = 100;
  a.user_seconds = 2.0;
  CostReport b;
  b.bytes_user_to_lsp = 300;
  b.user_seconds = 4.0;
  a += b;
  EXPECT_EQ(a.bytes_user_to_lsp, 400u);
  EXPECT_DOUBLE_EQ(a.user_seconds, 6.0);
  CostReport avg = a.DividedBy(2.0);
  EXPECT_EQ(avg.bytes_user_to_lsp, 200u);
  EXPECT_DOUBLE_EQ(avg.user_seconds, 3.0);
}

TEST(CostReportTest, ToStringMentionsAllFields) {
  CostReport r;
  r.bytes_user_to_lsp = 11;
  r.bytes_lsp_to_user = 22;
  r.bytes_user_to_user = 33;
  std::string s = r.ToString();
  EXPECT_NE(s.find("66"), std::string::npos);   // total
  EXPECT_NE(s.find("user="), std::string::npos);
  EXPECT_NE(s.find("lsp="), std::string::npos);
}

TEST(ScopedTimerTest, ChargesElapsedCpuTime) {
  CostTracker tracker;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    // Burn a little CPU so thread time advances.
    double sink = 0;
    for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
    benchmark_guard_ = sink;
  }
  EXPECT_GT(tracker.report().lsp_seconds, 0.0);
  EXPECT_DOUBLE_EQ(tracker.report().user_seconds, 0.0);
}

TEST(ScopedTimerTest, NullTrackerIsSafe) {
  ScopedTimer timer(nullptr, Party::kUser);  // must not crash on scope exit
}

TEST(ThreadCpuSecondsTest, MonotoneNonDecreasing) {
  double a = ThreadCpuSeconds();
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_guard_ = sink;
  double b = ThreadCpuSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace ppgnn
