#include "bigint/prime.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"

namespace ppgnn {
namespace {

TEST(PrimalityTest, SmallPrimesRecognized) {
  Rng rng(1);
  const uint64_t primes[] = {2, 3, 5, 7, 11, 97, 541, 7919, 104729};
  for (uint64_t p : primes) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), rng)) << p;
  }
}

TEST(PrimalityTest, SmallCompositesRejected) {
  Rng rng(2);
  const uint64_t composites[] = {0, 1, 4, 6, 9, 15, 21, 91, 561, 1105, 6601,
                                 62745, 8911};  // includes Carmichael numbers
  for (uint64_t c : composites) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, NegativeNotPrime) {
  Rng rng(3);
  EXPECT_FALSE(IsProbablePrime(BigInt(-7), rng));
}

TEST(PrimalityTest, LargeKnownPrimeAndNeighbor) {
  Rng rng(4);
  // 2^127 - 1 is a Mersenne prime; its even neighbor is composite.
  BigInt mersenne = BigInt::Pow2(127) - BigInt(1);
  EXPECT_TRUE(IsProbablePrime(mersenne, rng));
  EXPECT_FALSE(IsProbablePrime(mersenne - BigInt(2), rng));
  // 2^255 - 19 is prime (Curve25519 field).
  EXPECT_TRUE(IsProbablePrime(BigInt::Pow2(255) - BigInt(19), rng));
}

TEST(PrimalityTest, ProductOfTwoPrimesRejected) {
  Rng rng(5);
  BigInt p = GeneratePrime(96, rng).value();
  BigInt q = GeneratePrime(96, rng).value();
  EXPECT_FALSE(IsProbablePrime(p * q, rng));
}

class GeneratePrimeTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratePrimeTest, ExactBitLengthAndPrimality) {
  int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits));
  for (int i = 0; i < 3; ++i) {
    BigInt p = GeneratePrime(bits, rng).value();
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, rng, 16));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratePrimeTest,
                         ::testing::Values(16, 32, 64, 128, 256, 512));

TEST(GeneratePrimeTest, RejectsTinyWidths) {
  Rng rng(6);
  EXPECT_FALSE(GeneratePrime(1, rng).ok());
  EXPECT_FALSE(GeneratePrime(0, rng).ok());
  EXPECT_FALSE(GeneratePrime(-5, rng).ok());
}

TEST(GeneratePrimeTest, DistinctAcrossCalls) {
  Rng rng(7);
  BigInt a = GeneratePrime(128, rng).value();
  BigInt b = GeneratePrime(128, rng).value();
  EXPECT_NE(a, b);
}

TEST(GeneratePrime3Mod4Test, CongruenceHolds) {
  Rng rng(8);
  for (int bits : {16, 64, 256}) {
    BigInt p = GeneratePrime3Mod4(bits, rng).value();
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_EQ((p % BigInt(4)), BigInt(3));
    EXPECT_TRUE(IsProbablePrime(p, rng, 16));
  }
}

TEST(GeneratedPrimesTest, SupportFermatInverse) {
  // p prime => every 0 < a < p has an inverse; spot check the generator's
  // output behaves like a field modulus.
  Rng rng(9);
  BigInt p = GeneratePrime(192, rng).value();
  for (int i = 0; i < 5; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), rng) + BigInt(1);
    EXPECT_EQ(ModMul(a, ModInverse(a, p).value(), p), BigInt(1));
  }
}

}  // namespace
}  // namespace ppgnn
