// Tests for the TCP shard transport (net/transport).
//
// Layered like the transport itself. The framing suite is socket-free
// and hostile-input-first: truncation at every byte boundary, an
// oversized length field, garbage (including coincidental magic) before
// a real frame. The socket suite proves one TcpLink/TcpShardServer
// exchange returns the in-process service's ResponseFrame bytes
// *verbatim*, that the server resyncs garbage, and that a mid-frame RST
// from the ChaosProxy fails exactly one exchange before the link
// recovers. The cluster suite is the PR's headline: an S=4, R=2
// ShardedLspService whose replica links dial a loopback TCP fleet
// serves frames byte-identical to the all-in-process cluster — healthy,
// and under a seeded ChaosProxy kill/partial-write storm with zero
// failed queries.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "core/wire.h"
#include "net/transport/chaos_proxy.h"
#include "net/transport/fleet.h"
#include "net/transport/frame.h"
#include "net/transport/socket.h"
#include "net/transport/tcp_link.h"
#include "net/transport/tcp_server.h"
#include "service/shard_coordinator.h"
#include "service/workload.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

// The storm schedule seed comes from PPGNN_CHAOS_SEED when set (CI runs
// the same seed matrix as chaos_test); every schedule replays exactly
// for a given seed.
uint64_t StormSeed() {
  const char* env = std::getenv("PPGNN_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0x57011;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

std::vector<uint8_t> Payload(size_t n, uint8_t salt = 0) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i)
    out[i] = static_cast<uint8_t>((i * 31 + salt) & 0xff);
  return out;
}

TEST(FrameTest, EncodePollRoundtripBothTypes) {
  for (FrameType type : {FrameType::kRequest, FrameType::kResponse}) {
    const std::vector<uint8_t> payload = Payload(137);
    const std::vector<uint8_t> wire = EncodeTransportFrame(type, payload);
    ASSERT_EQ(wire.size(), FramedWireSize(payload.size()));
    FrameReader reader;
    reader.Feed(wire.data(), wire.size());
    TransportFrame frame;
    ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.Poll(&frame), FrameReader::PollResult::kNeedMore);
    EXPECT_EQ(reader.resynced_bytes(), 0u);
  }
}

// The truncation fuzz: every proper prefix of a valid frame must leave
// the reader waiting — never a bogus frame, never a fatal — and the
// remaining bytes must then complete the original frame exactly.
TEST(FrameTest, TruncationAtEveryByteRecoversTheFrame) {
  for (size_t payload_size : {0u, 1u, 9u, 64u, 257u}) {
    const std::vector<uint8_t> payload = Payload(payload_size, 7);
    const std::vector<uint8_t> wire =
        EncodeTransportFrame(FrameType::kResponse, payload);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      FrameReader reader;
      reader.Feed(wire.data(), cut);
      TransportFrame frame;
      ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kNeedMore)
          << "payload=" << payload_size << " cut=" << cut;
      reader.Feed(wire.data() + cut, wire.size() - cut);
      ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFrame)
          << "payload=" << payload_size << " cut=" << cut;
      EXPECT_EQ(frame.payload, payload);
      EXPECT_EQ(reader.resynced_bytes(), 0u);
    }
  }
}

TEST(FrameTest, ByteByByteFeedYieldsEveryFrame) {
  std::vector<uint8_t> stream =
      EncodeTransportFrame(FrameType::kRequest, Payload(33, 1));
  const std::vector<uint8_t> second =
      EncodeTransportFrame(FrameType::kResponse, Payload(71, 2));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  std::vector<TransportFrame> got;
  for (uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    TransportFrame frame;
    while (reader.Poll(&frame) == FrameReader::PollResult::kFrame) {
      got.push_back(frame);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, FrameType::kRequest);
  EXPECT_EQ(got[0].payload, Payload(33, 1));
  EXPECT_EQ(got[1].type, FrameType::kResponse);
  EXPECT_EQ(got[1].payload, Payload(71, 2));
}

TEST(FrameTest, OversizedLengthIsFatalNotAnAllocation) {
  std::vector<uint8_t> header(kTransportHeaderBytes);
  std::memcpy(header.data(), kTransportMagic, 4);
  header[4] = kTransportVersion;
  header[5] = static_cast<uint8_t>(FrameType::kRequest);
  const uint32_t huge = kMaxTransportPayloadBytes + 1;
  header[6] = static_cast<uint8_t>(huge & 0xff);
  header[7] = static_cast<uint8_t>((huge >> 8) & 0xff);
  header[8] = static_cast<uint8_t>((huge >> 16) & 0xff);
  header[9] = static_cast<uint8_t>((huge >> 24) & 0xff);

  FrameReader reader;
  reader.Feed(header.data(), header.size());
  TransportFrame frame;
  ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFatal);
  EXPECT_FALSE(reader.fatal_reason().empty());
  // Fatal is sticky: the connection owner must close, not retry.
  EXPECT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFatal);
}

TEST(FrameTest, GarbageBeforeMagicIsSkippedAndCounted) {
  const std::vector<uint8_t> garbage = {0x00, 0x13, 0xff, 0x7a, 0x01};
  const std::vector<uint8_t> wire =
      EncodeTransportFrame(FrameType::kResponse, Payload(20));
  FrameReader reader;
  reader.Feed(garbage.data(), garbage.size());
  reader.Feed(wire.data(), wire.size());
  TransportFrame frame;
  ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFrame);
  EXPECT_EQ(frame.payload, Payload(20));
  EXPECT_EQ(reader.resynced_bytes(), garbage.size());
}

// Garbage that *contains* the magic but flunks the version byte must not
// wedge the reader: it shifts one byte and keeps hunting.
TEST(FrameTest, CoincidentalMagicInGarbageStillResyncs) {
  std::vector<uint8_t> garbage = {'P', 'G', 'N', 'T', 0xee, 0x02};
  const std::vector<uint8_t> wire =
      EncodeTransportFrame(FrameType::kRequest, Payload(11));
  FrameReader reader;
  reader.Feed(garbage.data(), garbage.size());
  reader.Feed(wire.data(), wire.size());
  TransportFrame frame;
  ASSERT_EQ(reader.Poll(&frame), FrameReader::PollResult::kFrame);
  EXPECT_EQ(frame.payload, Payload(11));
  EXPECT_EQ(reader.resynced_bytes(), garbage.size());
}

TEST(FrameTest, RequestEnvelopeRoundtrip) {
  TransportRequest env;
  env.query = Payload(40, 3);
  env.uploads = {Payload(16, 4), Payload(0, 5), Payload(9, 6)};
  env.deadline_ms = 1500;
  env.idempotency_key = 0xdeadbeefcafeULL;
  env.degraded_users = 2;
  const std::vector<uint8_t> bytes = env.Encode();
  Result<TransportRequest> decoded = TransportRequest::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().query, env.query);
  EXPECT_EQ(decoded.value().uploads, env.uploads);
  EXPECT_EQ(decoded.value().deadline_ms, 1500u);
  EXPECT_EQ(decoded.value().idempotency_key, env.idempotency_key);
  EXPECT_EQ(decoded.value().degraded_users, 2u);
}

TEST(FrameTest, RequestEnvelopeRejectsTrailingBytes) {
  TransportRequest env;
  env.query = Payload(8);
  std::vector<uint8_t> bytes = env.Encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(TransportRequest::Decode(bytes).ok());
}

// ---------------------------------------------------------------------------
// chaos rule grammar
// ---------------------------------------------------------------------------

TEST(ChaosRuleTest, ParsesTheDocumentedGrammar) {
  Result<ChaosRule> r = ParseChaosRule("rst after=120 every=2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, ChaosAction::kRst);
  EXPECT_EQ(r.value().after_bytes, 120u);
  EXPECT_EQ(r.value().every, 2u);

  r = ParseChaosRule("delay=0.05 times=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, ChaosAction::kDelay);
  EXPECT_DOUBLE_EQ(r.value().delay_seconds, 0.05);
  EXPECT_EQ(r.value().times, 1u);

  r = ParseChaosRule("blackhole after=64 p=0.3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, ChaosAction::kBlackhole);
  EXPECT_DOUBLE_EQ(r.value().probability, 0.3);

  r = ParseChaosRule("split=7 skip=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().action, ChaosAction::kSplit);
  EXPECT_EQ(r.value().split_bytes, 7u);
  EXPECT_EQ(r.value().skip, 1u);
}

TEST(ChaosRuleTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseChaosRule("").ok());
  EXPECT_FALSE(ParseChaosRule("explode").ok());
  EXPECT_FALSE(ParseChaosRule("rst after=").ok());
  EXPECT_FALSE(ParseChaosRule("rst every=0").ok());
  EXPECT_FALSE(ParseChaosRule("split=0").ok());
  EXPECT_FALSE(ParseChaosRule("delay=-1").ok());
  EXPECT_FALSE(ParseChaosRule("rst p=1.5").ok());
  EXPECT_FALSE(ParseChaosRule("rst bogus=1").ok());
}

// Same seed + same connection order -> the same fault schedule, down to
// the per-action counters. The chaos tier's two-run determinism holds
// for sockets.
TEST(ChaosRuleTest, SeededScheduleReplaysExactly) {
  auto run = [](uint64_t seed) {
    Result<OwnedFd> upstream = TcpListen(0);
    EXPECT_TRUE(upstream.ok());
    const uint16_t upstream_port = ListenPort(upstream.value().get()).value();
    ChaosProxy::Config config;
    config.upstream_port = upstream_port;
    config.seed = seed;
    config.rules = {ParseChaosRule("rst p=0.5").value(),
                    ParseChaosRule("split=3 p=0.5").value(),
                    ParseChaosRule("drop after=32 every=3").value()};
    ChaosProxy proxy(std::move(config));
    EXPECT_TRUE(proxy.Start().ok());
    for (int i = 0; i < 12; ++i) {
      Result<OwnedFd> conn = TcpConnect("127.0.0.1", proxy.port(), 1.0);
      EXPECT_TRUE(conn.ok());
      // The plan is drawn at accept; wait for this connection to be
      // counted so accept order == connect order.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (proxy.Stats().connections < static_cast<uint64_t>(i + 1) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ChaosProxyStats stats = proxy.Stats();
    proxy.Shutdown();
    return stats;
  };
  const ChaosProxyStats a = run(0xabc);
  const ChaosProxyStats b = run(0xabc);
  EXPECT_EQ(a.connections, 12u);
  EXPECT_EQ(b.connections, 12u);
  EXPECT_EQ(a.rsts, b.rsts);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.clean_connections, b.clean_connections);
  // The schedule fired at all (drop: every=3 with no p-gate; a same-
  // connection rst may claim the cut slot, so only the sum is stable
  // across seeds).
  EXPECT_GT(a.rsts + a.drops + a.splits, 0u);
}

// ---------------------------------------------------------------------------
// socket exchanges (one link, one server)
// ---------------------------------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pois_ = new std::vector<Poi>(GenerateSequoiaLike(800, 911));
    Rng rng(912);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete pois_;
    delete keys_;
  }

  static ServiceRequest MakeRequest(AggregateKind aggregate, uint64_t seed) {
    Rng rng(seed);
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 3;
    params.key_bits = keys_->pub.key_bits;
    params.aggregate = aggregate;
    std::vector<Point> group;
    for (int i = 0; i < params.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    return BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng, {})
        .value();
  }

  static ServiceConfig ShardServiceConfig() {
    ServiceConfig config;
    config.workers = 2;
    return config;
  }

  /// One Submit through a link, waited to completion.
  static std::vector<uint8_t> Exchange(ServiceLink& link,
                                       ServiceRequest request) {
    std::promise<std::vector<uint8_t>> promise;
    std::future<std::vector<uint8_t>> future = promise.get_future();
    (void)link.Submit(std::move(request), [&](std::vector<uint8_t> frame) {
      promise.set_value(std::move(frame));
    });
    return future.get();
  }

  static ResponseFrame Decoded(const std::vector<uint8_t>& frame) {
    Result<ResponseFrame> decoded = ResponseFrame::Decode(frame);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    return decoded.ok() ? decoded.value() : ResponseFrame{};
  }

  static std::vector<Poi>* pois_;
  static KeyPair* keys_;
};
std::vector<Poi>* TransportTest::pois_ = nullptr;
KeyPair* TransportTest::keys_ = nullptr;

TEST_F(TransportTest, TcpExchangeIsByteIdenticalToInProcessCall) {
  LspDatabase db(*pois_);
  LspService service(db, ShardServiceConfig());
  TcpShardServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  TcpLinkConfig link_config;
  link_config.port = server.port();
  TcpLink link(link_config);

  for (AggregateKind aggregate :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    ServiceRequest request = MakeRequest(aggregate, 100);
    // The reference call consumes the same request bytes through the
    // same service; the pipeline is deterministic in them.
    LspDatabase ref_db(*pois_);
    LspService reference(ref_db, ShardServiceConfig());
    const std::vector<uint8_t> expected =
        reference.Call(MakeRequest(aggregate, 100));
    const std::vector<uint8_t> got = Exchange(link, std::move(request));
    EXPECT_EQ(got, expected);
    EXPECT_FALSE(Decoded(got).is_error);
    reference.Shutdown();
  }

  const TcpLinkStats stats = link.Stats();
  EXPECT_EQ(stats.answered, 3u);
  EXPECT_EQ(stats.io_errors, 0u);
  link.Close();
  server.Shutdown(5.0);
  EXPECT_EQ(server.Stats().frames_served, 3u);
  service.Shutdown();
}

TEST_F(TransportTest, ServerResyncsGarbageBeforeARequestFrame) {
  LspDatabase db(*pois_);
  LspService service(db, ShardServiceConfig());
  TcpShardServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  Result<OwnedFd> conn = TcpConnect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(conn.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);

  // Garbage, then a well-formed request frame on the same connection.
  const std::vector<uint8_t> garbage = {0x6b, 0x00, 0xff, 0x50, 0x47, 0x13};
  ASSERT_TRUE(
      SendAll(conn.value().get(), garbage.data(), garbage.size(), deadline)
          .ok());
  ServiceRequest request = MakeRequest(AggregateKind::kSum, 101);
  TransportRequest env;
  env.query = std::move(request.query);
  env.uploads = std::move(request.uploads);
  const std::vector<uint8_t> framed =
      EncodeTransportFrame(FrameType::kRequest, env.Encode());
  ASSERT_TRUE(
      SendAll(conn.value().get(), framed.data(), framed.size(), deadline)
          .ok());

  // The server must still answer with a response frame.
  FrameReader reader;
  TransportFrame frame;
  std::vector<uint8_t> buf(4096);
  for (;;) {
    Result<size_t> got =
        RecvSome(conn.value().get(), buf.data(), buf.size(), deadline);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_GT(got.value(), 0u) << "peer EOF before a response frame";
    reader.Feed(buf.data(), got.value());
    const FrameReader::PollResult poll = reader.Poll(&frame);
    ASSERT_NE(poll, FrameReader::PollResult::kFatal);
    if (poll == FrameReader::PollResult::kFrame) break;
  }
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_FALSE(Decoded(frame.payload).is_error);

  // The skipped garbage is folded into the server counter when the
  // connection ends; hang up and wait for the reader thread to notice.
  conn.value().Reset();
  while (server.Stats().resynced_bytes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.Stats().resynced_bytes, garbage.size());
  server.Shutdown(5.0);
  service.Shutdown();
}

TEST_F(TransportTest, MidFrameRstFailsOneExchangeThenTheLinkRecovers) {
  LspDatabase db(*pois_);
  LspService service(db, ShardServiceConfig());
  TcpShardServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  ChaosProxy::Config proxy_config;
  proxy_config.upstream_port = server.port();
  // First connection: hard RST once 40 bytes crossed — mid-request-frame
  // for any real query. Later connections are untouched.
  proxy_config.rules = {ParseChaosRule("rst after=40 times=1").value()};
  ChaosProxy proxy(std::move(proxy_config));
  ASSERT_TRUE(proxy.Start().ok());

  TcpLinkConfig link_config;
  link_config.port = proxy.port();
  link_config.io_timeout_seconds = 2.0;
  TcpLink link(link_config);

  const std::vector<uint8_t> failed =
      Exchange(link, MakeRequest(AggregateKind::kSum, 102));
  ResponseFrame failed_frame = Decoded(failed);
  EXPECT_TRUE(failed_frame.is_error);
  EXPECT_TRUE(failed_frame.error.code == WireError::kOverloaded ||
              failed_frame.error.code == WireError::kDeadlineExceeded)
      << WireErrorToString(failed_frame.error.code);

  // Same request again: new connection, exhausted schedule, full answer.
  LspDatabase ref_db(*pois_);
  LspService reference(ref_db, ShardServiceConfig());
  const std::vector<uint8_t> expected =
      reference.Call(MakeRequest(AggregateKind::kSum, 102));
  const std::vector<uint8_t> got =
      Exchange(link, MakeRequest(AggregateKind::kSum, 102));
  EXPECT_EQ(got, expected);

  EXPECT_EQ(proxy.Stats().rsts, 1u);
  const TcpLinkStats stats = link.Stats();
  EXPECT_GE(stats.io_errors + stats.io_timeouts, 1u);
  EXPECT_EQ(stats.answered, 1u);

  link.Close();
  reference.Shutdown();
  proxy.Shutdown();
  server.Shutdown(5.0);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// the S=4, R=2 cluster over loopback TCP
// ---------------------------------------------------------------------------

class TcpClusterTest : public TransportTest {
 protected:
  static ShardClusterConfig BaseClusterConfig() {
    ShardClusterConfig config;
    config.shards = 4;
    config.replicas = 2;
    config.front.workers = 2;
    config.shard.workers = 2;
    config.link_policy.max_attempts = 2;
    return config;
  }

  static LoopbackFleetConfig BaseFleetConfig() {
    LoopbackFleetConfig config;
    config.shards = 4;
    config.replicas = 2;
    config.shard_service = ShardServiceConfig();
    return config;
  }

  /// Serves `queries` through a TCP-mode cluster over `fleet` and checks
  /// every frame against the in-process reference cluster.
  static void ExpectByteIdentical(LoopbackShardFleet& fleet,
                                  ShardClusterConfig config,
                                  const std::vector<uint64_t>& seeds) {
    config.link_factory = fleet.LinkFactory();
    ShardedLspService tcp_cluster(*pois_, std::move(config));
    ShardedLspService reference(*pois_, BaseClusterConfig());
    for (uint64_t seed : seeds) {
      for (AggregateKind aggregate :
           {AggregateKind::kSum, AggregateKind::kMax}) {
        const std::vector<uint8_t> expected =
            reference.Call(MakeRequest(aggregate, seed));
        const std::vector<uint8_t> got =
            tcp_cluster.Call(MakeRequest(aggregate, seed));
        ASSERT_FALSE(Decoded(got).is_error)
            << "seed " << seed << ": "
            << Decoded(got).error.detail;
        EXPECT_EQ(got, expected) << "seed " << seed;
      }
    }
    // Exactness held for every query: the degraded merge never fired.
    EXPECT_EQ(tcp_cluster.Stats().degraded_shards, 0u);
    tcp_cluster.Shutdown();
    reference.Shutdown();
  }
};

TEST_F(TcpClusterTest, HealthyTcpClusterMatchesInProcessByteForByte) {
  LoopbackShardFleet fleet(*pois_, BaseFleetConfig());
  ASSERT_TRUE(fleet.Start().ok());
  ExpectByteIdentical(fleet, BaseClusterConfig(), {200, 201, 202});
  fleet.Shutdown(5.0);
}

// The headline robustness claim: replica 0 of every shard sits behind a
// seeded ChaosProxy throwing RSTs, mid-frame drops, and 7-byte split
// writes. The ladder (retries, failover to replica 1, health demotion)
// must absorb all of it: zero failed queries, zero degraded merges, and
// every frame still byte-identical to the in-process cluster.
TEST_F(TcpClusterTest, SeededSocketStormPreservesExactness) {
  LoopbackFleetConfig fleet_config = BaseFleetConfig();
  fleet_config.proxied = [](int, int replica) { return replica == 0; };
  fleet_config.chaos_rules = {
      ParseChaosRule("rst after=150 every=2").value(),
      ParseChaosRule("drop after=60 every=3 skip=1").value(),
      ParseChaosRule("split=7 every=1").value(),
  };
  fleet_config.chaos_seed = StormSeed();
  // Storm failures must fail fast, not burn the whole io timeout.
  fleet_config.link.io_timeout_seconds = 2.0;
  LoopbackShardFleet fleet(*pois_, fleet_config);
  ASSERT_TRUE(fleet.Start().ok());

  ExpectByteIdentical(fleet, BaseClusterConfig(), {300, 301, 302, 303});

  // The storm actually happened — this was not a clean-network run.
  uint64_t faults = 0;
  for (int s = 0; s < fleet.shards(); ++s) {
    ChaosProxy* proxy = fleet.proxy(s, 0);
    ASSERT_NE(proxy, nullptr);
    const ChaosProxyStats stats = proxy->Stats();
    faults += stats.rsts + stats.drops;
    EXPECT_EQ(fleet.proxy(s, 1), nullptr);
  }
  EXPECT_GT(faults, 0u);
  fleet.Shutdown(5.0);
}

// Remote-mode probing: kill one replica's proxy mid-run, watch the
// health ladder demote it on real dial failures, then verify queries
// keep answering exactly through the surviving replica.
TEST_F(TcpClusterTest, DeadReplicaIsAbsorbedByFailover) {
  LoopbackFleetConfig fleet_config = BaseFleetConfig();
  LoopbackShardFleet fleet(*pois_, fleet_config);
  ASSERT_TRUE(fleet.Start().ok());

  ShardClusterConfig config = BaseClusterConfig();
  config.link_factory = fleet.LinkFactory();
  config.probe_timeout_seconds = 0.2;
  ShardedLspService tcp_cluster(*pois_, std::move(config));
  ShardedLspService reference(*pois_, BaseClusterConfig());

  // Sever shard 2, replica 0 entirely: drain its server so new dials
  // are refused.
  fleet.server(2, 0).Shutdown(2.0);

  for (uint64_t seed : {400, 401, 402}) {
    const std::vector<uint8_t> expected =
        reference.Call(MakeRequest(AggregateKind::kSum, seed));
    const std::vector<uint8_t> got =
        tcp_cluster.Call(MakeRequest(AggregateKind::kSum, seed));
    ASSERT_FALSE(Decoded(got).is_error) << Decoded(got).error.detail;
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
  EXPECT_EQ(tcp_cluster.Stats().degraded_shards, 0u);

  // The dead replica's failures were reported into the health monitor.
  EXPECT_NE(tcp_cluster.replica_set(2).health().state(0),
            ReplicaHealth::kHealthy);

  tcp_cluster.Shutdown();
  reference.Shutdown();
  fleet.Shutdown(5.0);
}

}  // namespace
}  // namespace ppgnn
