#include "crypto/key_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace ppgnn {
namespace {

class KeyIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2024);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() { delete keys_; }
  static KeyPair* keys_;
};
KeyPair* KeyIoTest::keys_ = nullptr;

TEST_F(KeyIoTest, PublicKeyRoundTrip) {
  auto bytes = SerializePublicKey(keys_->pub);
  PublicKey pk = DeserializePublicKey(bytes).value();
  EXPECT_EQ(pk.n, keys_->pub.n);
  EXPECT_EQ(pk.key_bits, keys_->pub.key_bits);
}

TEST_F(KeyIoTest, KeyPairRoundTrip) {
  auto bytes = SerializeKeyPair(*keys_);
  KeyPair keys = DeserializeKeyPair(bytes).value();
  EXPECT_EQ(keys.pub.n, keys_->pub.n);
  EXPECT_EQ(keys.sec.lambda, keys_->sec.lambda);
  EXPECT_EQ(keys.sec.p, keys_->sec.p);
  EXPECT_EQ(keys.sec.q, keys_->sec.q);
}

TEST_F(KeyIoTest, DeserializedKeysActuallyWork) {
  auto bytes = SerializeKeyPair(*keys_);
  KeyPair keys = DeserializeKeyPair(bytes).value();
  Rng rng(1);
  Encryptor enc(keys.pub);
  Decryptor dec(keys.pub, keys.sec);
  Ciphertext ct = enc.Encrypt(BigInt(777), rng, 1).value();
  EXPECT_EQ(dec.Decrypt(ct).value(), BigInt(777));
}

TEST_F(KeyIoTest, RejectsTruncation) {
  auto bytes = SerializeKeyPair(*keys_);
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializeKeyPair(truncated).ok()) << cut;
  }
}

TEST_F(KeyIoTest, RejectsTamperedFactor) {
  auto bytes = SerializeKeyPair(*keys_);
  // Flip a bit near the end (inside q).
  bytes[bytes.size() - 2] ^= 0x01;
  auto result = DeserializeKeyPair(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCryptoError);
}

TEST_F(KeyIoTest, RejectsTrailingGarbage) {
  auto bytes = SerializeKeyPair(*keys_);
  bytes.push_back(0x00);
  EXPECT_FALSE(DeserializeKeyPair(bytes).ok());
}

TEST_F(KeyIoTest, PublicKeyRejectsShortModulus) {
  PublicKey pk;
  pk.key_bits = 256;
  pk.n = BigInt(12345);
  auto bytes = SerializePublicKey(pk);
  EXPECT_FALSE(DeserializePublicKey(bytes).ok());
}

TEST_F(KeyIoTest, FileSaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/ppgnn_keys.bin";
  ASSERT_TRUE(SaveKeyPair(path, *keys_).ok());
  KeyPair keys = LoadKeyPair(path).value();
  EXPECT_EQ(keys.pub.n, keys_->pub.n);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadKeyPair(path).ok());
}

}  // namespace
}  // namespace ppgnn
