#include "roadnet/dijkstra.h"
#include "roadnet/graph.h"
#include "roadnet/road_gnn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/protocol.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

// A tiny hand-built network: nodes 0-1-2 on the line y = 0 at
// x = 0, 0.5, 1.0, and node 3 at (0.5, 0.5) hanging off node 1.
RoadNetwork TinyNetwork() {
  return RoadNetwork::FromEdges(
             {{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}, {0.5, 0.5}},
             {{0, 1}, {1, 2}, {1, 3}})
      .value();
}

TEST(RoadNetworkTest, FromEdgesBasics) {
  RoadNetwork net = TinyNetwork();
  EXPECT_EQ(net.NodeCount(), 4u);
  EXPECT_EQ(net.EdgeCount(), 3u);
  EXPECT_TRUE(net.IsConnected());
}

TEST(RoadNetworkTest, FromEdgesRejectsBadInput) {
  EXPECT_FALSE(
      RoadNetwork::FromEdges({{0, 0}, {1, 1}}, {{0, 5}}).ok());  // OOB
  EXPECT_FALSE(
      RoadNetwork::FromEdges({{0, 0}, {1, 1}}, {{1, 1}}).ok());  // self-loop
}

TEST(RoadNetworkTest, NearestNodeSnapsCorrectly) {
  RoadNetwork net = TinyNetwork();
  EXPECT_EQ(net.NearestNode({0.05, 0.02}), 0u);
  EXPECT_EQ(net.NearestNode({0.95, 0.0}), 2u);
  EXPECT_EQ(net.NearestNode({0.5, 0.45}), 3u);
  // Exhaustive agreement with a linear scan on a bigger network.
  Rng rng(1);
  RoadNetwork grid = RoadNetwork::BuildGrid(12, 9, rng);
  for (int trial = 0; trial < 200; ++trial) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    uint32_t fast = grid.NearestNode(p);
    uint32_t slow = 0;
    double best = 1e300;
    for (uint32_t i = 0; i < grid.NodeCount(); ++i) {
      double dist = Distance(p, grid.nodes()[i]);
      if (dist < best) {
        best = dist;
        slow = i;
      }
    }
    EXPECT_DOUBLE_EQ(Distance(p, grid.nodes()[fast]), best) << trial;
    (void)slow;
  }
}

TEST(RoadNetworkTest, GridIsConnectedForAllDropRates) {
  Rng rng(2);
  for (double drop : {0.0, 0.2, 0.5, 0.9}) {
    RoadNetwork net = RoadNetwork::BuildGrid(10, 10, rng, 0.3, drop);
    EXPECT_EQ(net.NodeCount(), 100u);
    EXPECT_TRUE(net.IsConnected()) << "drop=" << drop;
  }
}

TEST(RoadNetworkTest, GridNodesInsideUnitSquare) {
  Rng rng(3);
  RoadNetwork net = RoadNetwork::BuildGrid(20, 20, rng, 0.5, 0.3);
  for (const Point& p : net.nodes()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(DijkstraTest, TinyNetworkDistances) {
  RoadNetwork net = TinyNetwork();
  auto dist = ShortestPathsFrom(net, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.5);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 1.0);  // 0 -> 1 -> 3
  EXPECT_DOUBLE_EQ(ShortestPathDistance(net, 0, 3).value(), 1.0);
  EXPECT_DOUBLE_EQ(ShortestPathDistance(net, 3, 3).value(), 0.0);
}

TEST(DijkstraTest, UnreachableIsInfinity) {
  RoadNetwork net =
      RoadNetwork::FromEdges({{0, 0}, {1, 0}, {0, 1}}, {{0, 1}}).value();
  EXPECT_FALSE(net.IsConnected());
  auto dist = ShortestPathsFrom(net, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
  EXPECT_TRUE(std::isinf(ShortestPathDistance(net, 0, 2).value()));
}

TEST(DijkstraTest, RejectsOutOfRangeNodes) {
  RoadNetwork net = TinyNetwork();
  EXPECT_FALSE(ShortestPathDistance(net, 0, 99).ok());
  EXPECT_FALSE(ShortestPathDistance(net, 99, 0).ok());
}

TEST(DijkstraTest, SymmetricAndTriangleInequality) {
  Rng rng(4);
  RoadNetwork net = RoadNetwork::BuildGrid(8, 8, rng);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t a = static_cast<uint32_t>(rng.NextBelow(net.NodeCount()));
    uint32_t b = static_cast<uint32_t>(rng.NextBelow(net.NodeCount()));
    uint32_t c = static_cast<uint32_t>(rng.NextBelow(net.NodeCount()));
    double ab = ShortestPathDistance(net, a, b).value();
    double ba = ShortestPathDistance(net, b, a).value();
    double ac = ShortestPathDistance(net, a, c).value();
    double cb = ShortestPathDistance(net, c, b).value();
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_LE(ab, ac + cb + 1e-12);
  }
}

TEST(DijkstraTest, NetworkDistanceAtLeastEuclidean) {
  Rng rng(5);
  RoadNetwork net = RoadNetwork::BuildGrid(10, 10, rng);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t a = static_cast<uint32_t>(rng.NextBelow(net.NodeCount()));
    uint32_t b = static_cast<uint32_t>(rng.NextBelow(net.NodeCount()));
    double road = ShortestPathDistance(net, a, b).value();
    double euclid = Distance(net.nodes()[a], net.nodes()[b]);
    EXPECT_GE(road, euclid - 1e-12);
  }
}

TEST(RoadOracleTest, MatchesDijkstraAndCaches) {
  Rng rng(6);
  RoadNetwork net = RoadNetwork::BuildGrid(10, 10, rng);
  RoadDistanceOracle oracle(&net);
  for (int trial = 0; trial < 20; ++trial) {
    Point a{rng.NextDouble(), rng.NextDouble()};
    Point b{rng.NextDouble(), rng.NextDouble()};
    double via_oracle = oracle.Distance(a, b);
    double direct =
        ShortestPathDistance(net, net.NearestNode(a), net.NearestNode(b))
            .value();
    EXPECT_DOUBLE_EQ(via_oracle, direct);
  }
  // Repeated queries from the same source reuse one SSSP tree.
  size_t before = oracle.CachedSources();
  Point fixed{0.31, 0.71};
  for (int i = 0; i < 10; ++i) {
    oracle.Distance(fixed, {rng.NextDouble(), rng.NextDouble()});
  }
  EXPECT_LE(oracle.CachedSources(), before + 1);
}

TEST(RoadGnnTest, MatchesExhaustiveNetworkScan) {
  Rng rng(7);
  RoadNetwork net = RoadNetwork::BuildGrid(12, 12, rng);
  std::vector<Poi> pois = GenerateUniform(300, 8);
  RoadGnnSolver solver(&net, &pois);
  RoadDistanceOracle oracle(&net);
  std::vector<Point> group = {{0.2, 0.3}, {0.8, 0.6}, {0.5, 0.9}};
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    auto fast = solver.Query(group, 5, kind);
    ASSERT_EQ(fast.size(), 5u);
    // Exhaustive check via the oracle.
    std::vector<double> costs;
    for (const Poi& poi : pois) {
      double cost = kind == AggregateKind::kMin ? 1e300 : 0.0;
      for (const Point& q : group) {
        double dist = oracle.Distance(poi.location, q);
        switch (kind) {
          case AggregateKind::kSum:
            cost += dist;
            break;
          case AggregateKind::kMax:
            cost = std::max(cost, dist);
            break;
          case AggregateKind::kMin:
            cost = std::min(cost, dist);
            break;
        }
      }
      costs.push_back(cost);
    }
    std::sort(costs.begin(), costs.end());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i].cost, costs[i], 1e-9) << i;
    }
  }
}

TEST(RoadGnnTest, RanksDifferentlyFromEuclidean) {
  // A sparse network with long detours must produce a different winner
  // than straight-line distance for some group, else the metric is inert.
  Rng rng(9);
  RoadNetwork net = RoadNetwork::BuildGrid(7, 7, rng, 0.2, 0.6);
  std::vector<Poi> pois = GenerateUniform(150, 10);
  RTree tree = RTree::Build(pois);
  RoadGnnSolver road(&net, &pois);
  MbmGnnSolver euclid(&tree);
  int differences = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> group = {{rng.NextDouble(), rng.NextDouble()},
                                {rng.NextDouble(), rng.NextDouble()}};
    auto a = road.Query(group, 1, AggregateKind::kSum);
    auto b = euclid.Query(group, 1, AggregateKind::kSum);
    if (a[0].poi.id != b[0].poi.id) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RoadGnnTest, EndToEndProtocolUnderRoadMetric) {
  // The full PPGNN protocol with the road-network black box + oracle: the
  // decrypted answer must equal the plaintext road-network reference.
  Rng rng(11);
  RoadNetwork net = RoadNetwork::BuildGrid(10, 10, rng);
  LspDatabase lsp(GenerateUniform(500, 12));
  RoadDistanceOracle oracle(&net);
  lsp.SetSolver(std::make_unique<RoadGnnSolver>(&net, &lsp.pois()));
  lsp.SetDistanceOracle(&oracle);

  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = 256;
  KeyPair keys = GenerateKeyPair(256, rng).value();
  std::vector<Point> group = {{0.1, 0.2}, {0.4, 0.3}, {0.2, 0.5}};
  auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng, &keys);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  Rng ref_rng(0);
  auto reference = ReferenceAnswer(params, group, lsp, ref_rng);
  ASSERT_EQ(outcome->pois.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome->pois[i].x, reference[i].poi.location.x, 1e-8);
    EXPECT_NEAR(outcome->pois[i].y, reference[i].poi.location.y, 1e-8);
  }
}

}  // namespace
}  // namespace ppgnn
