#include "bigint/fixedbase.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"
#include "common/random.h"

namespace ppgnn {
namespace {

BigInt OddModulus(int bits, Rng& rng) {
  BigInt mod = BigInt::Random(bits, rng);
  if (!mod.IsOdd()) mod = mod + BigInt(1);
  return mod;
}

TEST(FixedBaseTest, MatchesGenericLadderAcrossWidths) {
  Rng rng(1);
  for (int window : {0, 1, 2, 4, 5, 8}) {
    BigInt mod = OddModulus(512, rng);
    BigInt base = BigInt::RandomBelow(mod, rng);
    if (base.IsZero()) base = BigInt(2);
    auto engine = FixedBaseEngine::Create(base, mod, 600, window).value();
    for (int i = 0; i < 8; ++i) {
      BigInt e = BigInt::Random(1 + static_cast<int>(rng.NextBelow(600)), rng);
      EXPECT_EQ(engine.Pow(e).value(), ModExp(base, e, mod).value())
          << "window " << window;
    }
  }
}

TEST(FixedBaseTest, EdgeExponents) {
  Rng rng(2);
  BigInt mod = OddModulus(256, rng);
  BigInt base = BigInt(7);
  auto engine = FixedBaseEngine::Create(base, mod, 128).value();
  EXPECT_EQ(engine.Pow(BigInt(0)).value(), BigInt(1).Mod(mod));
  EXPECT_EQ(engine.Pow(BigInt(1)).value(), base.Mod(mod));
  EXPECT_EQ(engine.Pow(BigInt(2)).value(), ModMul(base, base, mod));
  // Exactly at capacity (the rounded-up digit boundary).
  BigInt top = (BigInt(1) << engine.max_exponent_bits()) - BigInt(1);
  EXPECT_EQ(engine.Pow(top).value(), ModExp(base, top, mod).value());
  EXPECT_FALSE(engine.Pow(BigInt(-1)).ok());
}

TEST(FixedBaseTest, OverCapacityExponentFallsBackBitIdentically) {
  Rng rng(3);
  BigInt mod = OddModulus(384, rng);
  BigInt base = BigInt::RandomBelow(mod, rng) + BigInt(2);
  auto engine = FixedBaseEngine::Create(base, mod, 64).value();
  BigInt wide = BigInt::Random(500, rng);
  ASSERT_GT(wide.BitLength(), engine.max_exponent_bits());
  EXPECT_EQ(engine.Pow(wide).value(), ModExp(base, wide, mod).value());
}

TEST(FixedBaseTest, CapacityRoundsUpToWholeDigits) {
  Rng rng(4);
  BigInt mod = OddModulus(128, rng);
  auto engine = FixedBaseEngine::Create(BigInt(3), mod, 130, 4).value();
  EXPECT_EQ(engine.window(), 4);
  EXPECT_EQ(engine.max_exponent_bits(), 132);  // 33 digits of 4 bits
  EXPECT_EQ(engine.table_entries(), 33u * 15u);
  EXPECT_GT(engine.table_bytes(), 0u);
}

TEST(FixedBaseTest, RejectsDegenerateInputs) {
  Rng rng(5);
  BigInt mod = OddModulus(128, rng);
  EXPECT_FALSE(FixedBaseEngine::Create(BigInt(2), mod, 0).ok());
  EXPECT_FALSE(FixedBaseEngine::Create(BigInt(2), mod, 64, 9).ok());
  EXPECT_FALSE(FixedBaseEngine::Create(BigInt(0), mod, 64).ok());
  EXPECT_FALSE(FixedBaseEngine::Create(BigInt(2), BigInt(8), 64).ok());  // even
}

TEST(FixedBaseTest, PowDomainComposesWithContext) {
  Rng rng(6);
  BigInt mod = OddModulus(256, rng);
  BigInt base = BigInt(12345);
  auto engine = FixedBaseEngine::Create(base, mod, 128).value();
  BigInt e1 = BigInt::Random(100, rng);
  BigInt e2 = BigInt::Random(100, rng);
  auto d1 = engine.PowDomain(e1).value();
  auto d2 = engine.PowDomain(e2).value();
  BigInt product = engine.context().FromMont(engine.context().MontMul(d1, d2));
  EXPECT_EQ(product, ModExp(base, e1 + e2, mod).value());
}

TEST(FixedBaseTest, SharedRegistryReusesEnginesAndWidens) {
  Rng rng(7);
  BigInt mod = OddModulus(320, rng);
  BigInt base = BigInt::RandomBelow(mod, rng) + BigInt(2);
  const uint64_t created_before = FixedBaseEngine::created_count();
  auto a = SharedFixedBaseEngine(base, mod, 256);
  ASSERT_NE(a, nullptr);
  // Same key shape: a cache hit, no new table build.
  auto b = SharedFixedBaseEngine(base, mod, 200);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(FixedBaseEngine::created_count(), created_before + 1);
  // Wider demand: rebuilt, and the old shared_ptr stays valid.
  auto c = SharedFixedBaseEngine(base, mod, 512);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a.get(), c.get());
  EXPECT_GE(c->max_exponent_bits(), 512);
  BigInt e = BigInt::Random(200, rng);
  EXPECT_EQ(a->Pow(e).value(), c->Pow(e).value());
  // Even modulus: no Montgomery context, callers keep their ladder path.
  EXPECT_EQ(SharedFixedBaseEngine(base, BigInt(16), 64), nullptr);
  FixedBaseRegistryStats stats = SharedFixedBaseRegistryStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 2u);
  EXPECT_GE(stats.engines, 1u);
  EXPECT_GT(stats.table_bytes, 0u);
}

TEST(FixedBaseTest, TableConstructionIsDeterministic) {
  // The tables are a pure function of (base, modulus, window): two
  // engines built independently agree on every evaluation — no ambient
  // entropy is consumed (the determinism lint enforces the same property
  // statically for service-side users).
  Rng rng(8);
  BigInt mod = OddModulus(256, rng);
  BigInt base = BigInt::RandomBelow(mod, rng) + BigInt(2);
  auto a = FixedBaseEngine::Create(base, mod, 300, 5).value();
  auto b = FixedBaseEngine::Create(base, mod, 300, 5).value();
  for (int i = 0; i < 5; ++i) {
    BigInt e = BigInt::Random(300, rng);
    EXPECT_EQ(a.Pow(e).value(), b.Pow(e).value());
  }
}

}  // namespace
}  // namespace ppgnn
