#include "baselines/apnn.h"
#include "baselines/geoind.h"
#include "baselines/glp.h"
#include "baselines/ippf.h"

#include <gtest/gtest.h>

#include "spatial/dataset.h"
#include "spatial/knn.h"

namespace ppgnn {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(5000, 555));
    Rng rng(556);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }

  static std::vector<Point> Group(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Point> out(n);
    for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
    return out;
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* BaselinesTest::db_ = nullptr;
KeyPair* BaselinesTest::keys_ = nullptr;

// ---------- APNN ----------

TEST_F(BaselinesTest, ApnnBuildValidation) {
  EXPECT_FALSE(ApnnServer::Build(nullptr, 8, 4).ok());
  EXPECT_FALSE(ApnnServer::Build(db_, 0, 4).ok());
  EXPECT_FALSE(ApnnServer::Build(db_, 8, 0).ok());
}

TEST_F(BaselinesTest, ApnnQueryReturnsCellAnswer) {
  auto server = ApnnServer::Build(db_, 16, 8).value();
  EXPECT_GT(server.setup_seconds(), 0.0);
  ApnnParams params;
  params.grid = 16;
  params.b = 3;
  params.k = 3;  // fits one 256-bit integer
  params.key_bits = 256;
  Rng rng(1);
  Point user{0.4, 0.6};
  auto outcome = server.Query(user, params, rng, keys_).value();
  auto expected = server.CellAnswer(user, params.k).value();
  ASSERT_EQ(outcome.pois.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(outcome.pois[i].x, expected[i].x, 1e-8);
    EXPECT_NEAR(outcome.pois[i].y, expected[i].y, 1e-8);
  }
}

TEST_F(BaselinesTest, ApnnAnswerIsApproximateKnnOfCellCenter) {
  auto server = ApnnServer::Build(db_, 16, 8).value();
  Point user{0.43, 0.57};
  auto answer = server.CellAnswer(user, 4).value();
  // The cell center for a 16-grid cell containing the user.
  Point center{(6 + 0.5) / 16.0, (9 + 0.5) / 16.0};
  auto expected = KnnQuery(db_->tree(), center, 4);
  ASSERT_EQ(answer.size(), expected.size());
  for (size_t i = 0; i < answer.size(); ++i) {
    EXPECT_EQ(answer[i], expected[i].poi.location);
  }
}

TEST_F(BaselinesTest, ApnnPrivacyLevelMatchesCloakArea) {
  auto server = ApnnServer::Build(db_, 16, 4).value();
  ApnnParams params;
  params.grid = 16;
  params.b = 5;
  params.k = 2;
  params.key_bits = 256;
  Rng rng(2);
  auto outcome = server.Query({0.5, 0.5}, params, rng, keys_).value();
  EXPECT_EQ(outcome.info.delta_prime, 25u);  // b^2 = privacy level
}

TEST_F(BaselinesTest, ApnnLspCostNotAbovePpgnnLspCost) {
  // Fig 5f: APNN's per-query LSP cost is lowest because kNN answers are
  // pre-computed. With an in-memory R-tree the kNN portion of PPGNN's
  // LSP cost is tiny, so both are dominated by the identical private
  // selection — assert APNN does not exceed PPGNN materially, averaged
  // over several runs to damp timing noise.
  auto server = ApnnServer::Build(db_, 16, 4).value();
  ApnnParams aparams;
  aparams.grid = 16;
  aparams.b = 5;
  aparams.k = 3;
  aparams.key_bits = 256;
  ProtocolParams pparams;
  pparams.n = 1;
  pparams.d = 25;
  pparams.k = 3;
  pparams.key_bits = 256;

  Rng rng(3);
  double apnn_total = 0, ppgnn_total = 0;
  for (int run = 0; run < 5; ++run) {
    Point user{0.2 + 0.1 * run, 0.3};
    apnn_total +=
        server.Query(user, aparams, rng, keys_).value().costs.lsp_seconds;
    ppgnn_total += RunQuery(Variant::kPpgnn, pparams, {user}, *db_, rng, keys_)
                       .value()
                       .costs.lsp_seconds;
  }
  EXPECT_LT(apnn_total, ppgnn_total * 1.2);
}

TEST_F(BaselinesTest, ApnnRejectsBadParams) {
  auto server = ApnnServer::Build(db_, 8, 4).value();
  ApnnParams params;
  params.grid = 8;
  params.k = 100;  // > max_k
  params.key_bits = 256;
  Rng rng(4);
  EXPECT_FALSE(server.Query({0.5, 0.5}, params, rng, keys_).ok());
  params.k = 2;
  params.b = 9;  // > grid
  EXPECT_FALSE(server.Query({0.5, 0.5}, params, rng, keys_).ok());
}

TEST_F(BaselinesTest, ApnnCornerUsersGetValidCloaks) {
  auto server = ApnnServer::Build(db_, 16, 4).value();
  ApnnParams params;
  params.grid = 16;
  params.b = 4;
  params.k = 2;
  params.key_bits = 256;
  Rng rng(5);
  for (Point user : {Point{0.0, 0.0}, Point{1.0, 1.0}, Point{0.0, 1.0},
                     Point{0.999, 0.001}}) {
    auto outcome = server.Query(user, params, rng, keys_);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_GE(outcome->pois.size(), 1u);
  }
}

// ---------- IPPF ----------

TEST_F(BaselinesTest, IppfCandidatesContainTrueTopK) {
  // Completeness: the superset must contain the exact kGNN answer for
  // any placement of users inside their rectangles — in particular the
  // real locations.
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    auto group = Group(4, 700 + trial);
    std::vector<Rect> rects;
    for (const Point& p : group) {
      double side = 0.02;
      rects.push_back({p.x - side / 2, p.y - side / 2, p.x + side / 2,
                       p.y + side / 2});
    }
    auto candidates = IppfCandidates(*db_, rects, 8, AggregateKind::kSum);
    auto exact = db_->solver().Query(group, 8, AggregateKind::kSum);
    for (const RankedPoi& rp : exact) {
      bool found = false;
      for (const Poi& c : candidates) {
        if (c.id == rp.poi.id) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing POI " << rp.poi.id;
    }
  }
}

TEST_F(BaselinesTest, IppfReturnsExactAnswerAfterFiltering) {
  IppfParams params;
  params.k = 6;
  auto group = Group(5, 711);
  Rng rng(7);
  auto outcome = RunIppf(*db_, params, group, rng).value();
  auto exact = db_->solver().Query(group, params.k, AggregateKind::kSum);
  ASSERT_EQ(outcome.query.pois.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(outcome.query.pois[i].x, exact[i].poi.location.x, 1e-9);
    EXPECT_NEAR(outcome.query.pois[i].y, exact[i].poi.location.y, 1e-9);
  }
}

TEST_F(BaselinesTest, IppfCommunicationScalesWithCandidates) {
  IppfParams params;
  params.k = 8;
  auto group = Group(8, 721);
  Rng rng(8);
  auto outcome = RunIppf(*db_, params, group, rng).value();
  EXPECT_GT(outcome.candidates_returned, static_cast<size_t>(params.k));
  // LSP->user bytes must cover the whole candidate list (12B each).
  EXPECT_GE(outcome.query.costs.bytes_lsp_to_user,
            outcome.candidates_returned * 12);
}

TEST_F(BaselinesTest, IppfRejectsSingleUser) {
  IppfParams params;
  Rng rng(9);
  EXPECT_FALSE(RunIppf(*db_, params, {{0.5, 0.5}}, rng).ok());
}

// ---------- Geo-indistinguishability ----------

TEST_F(BaselinesTest, GeoIndAnswerIsKnnOfReportedPoint) {
  GeoIndParams params;
  params.k = 5;
  Rng rng(800);
  auto outcome = RunGeoInd(*db_, params, {0.4, 0.6}, rng).value();
  auto expected = KnnQuery(db_->tree(), outcome.reported, params.k);
  ASSERT_EQ(outcome.query.pois.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(outcome.query.pois[i], expected[i].poi.location);
  }
}

TEST_F(BaselinesTest, GeoIndNoiseScalesInverselyWithEpsilon) {
  // Mean planar-Laplace radius is 2/epsilon.
  Rng rng(801);
  for (double epsilon : {20.0, 100.0}) {
    double total = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      Point p = PlanarLaplacePerturb({0.5, 0.5}, epsilon, rng);
      total += Distance(p, {0.5, 0.5});
    }
    EXPECT_NEAR(total / trials, 2.0 / epsilon, 0.35 / epsilon) << epsilon;
  }
}

TEST_F(BaselinesTest, GeoIndPerturbStaysInUnitSquare) {
  Rng rng(802);
  for (int t = 0; t < 500; ++t) {
    Point p = PlanarLaplacePerturb({0.01, 0.99}, 5.0, rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST_F(BaselinesTest, GeoIndAccuracyDegradesWithNoise) {
  // The approximation price: with a small epsilon (big noise) the answer
  // regret vs exact kNN grows.
  Rng rng(803);
  Point user{0.45, 0.55};
  auto exact = KnnQuery(db_->tree(), user, 4);
  auto regret = [&](double epsilon) {
    double total = 0;
    for (int t = 0; t < 30; ++t) {
      GeoIndParams params;
      params.epsilon = epsilon;
      params.k = 4;
      auto out = RunGeoInd(*db_, params, user, rng).value();
      for (size_t i = 0; i < out.query.pois.size(); ++i) {
        total += Distance(user, out.query.pois[i]) - exact[i].cost;
      }
    }
    return total;
  };
  EXPECT_GT(regret(10.0), regret(500.0));
}

TEST_F(BaselinesTest, GeoIndRejectsBadParams) {
  Rng rng(804);
  GeoIndParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(RunGeoInd(*db_, params, {0.5, 0.5}, rng).ok());
  params.epsilon = 10.0;
  params.k = 0;
  EXPECT_FALSE(RunGeoInd(*db_, params, {0.5, 0.5}, rng).ok());
}

// ---------- GLP ----------

TEST_F(BaselinesTest, GlpCentroidIsCorrect) {
  GlpParams params;
  params.k = 4;
  params.key_bits = 256;
  auto group = Group(6, 731);
  Rng rng(10);
  auto outcome = RunGlp(*db_, params, group, rng, keys_).value();
  double cx = 0, cy = 0;
  for (const Point& p : group) {
    cx += p.x;
    cy += p.y;
  }
  cx /= group.size();
  cy /= group.size();
  EXPECT_NEAR(outcome.centroid.x, cx, 1e-6);
  EXPECT_NEAR(outcome.centroid.y, cy, 1e-6);
}

TEST_F(BaselinesTest, GlpAnswerIsKnnOfCentroid) {
  GlpParams params;
  params.k = 5;
  params.key_bits = 256;
  auto group = Group(4, 741);
  Rng rng(11);
  auto outcome = RunGlp(*db_, params, group, rng, keys_).value();
  auto expected = KnnQuery(db_->tree(), outcome.centroid, params.k);
  ASSERT_EQ(outcome.query.pois.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(outcome.query.pois[i].x, expected[i].poi.location.x, 1e-8);
    EXPECT_NEAR(outcome.query.pois[i].y, expected[i].poi.location.y, 1e-8);
  }
}

TEST_F(BaselinesTest, GlpCommGrowsQuadraticallyWithN) {
  GlpParams params;
  params.k = 4;
  params.key_bits = 256;
  Rng rng(12);
  auto small = RunGlp(*db_, params, Group(4, 751), rng, keys_).value();
  auto large = RunGlp(*db_, params, Group(16, 752), rng, keys_).value();
  // n goes 4 -> 16 (4x); O(n^2) user-to-user bytes grow ~16x (within
  // slack for the constant-size parts).
  double ratio = static_cast<double>(large.query.costs.bytes_user_to_user) /
                 static_cast<double>(small.query.costs.bytes_user_to_user);
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 22.0);
}

TEST_F(BaselinesTest, GlpRejectsSingleUser) {
  GlpParams params;
  params.key_bits = 256;
  Rng rng(13);
  EXPECT_FALSE(RunGlp(*db_, params, {{0.5, 0.5}}, rng, keys_).ok());
}

TEST_F(BaselinesTest, GlpIsApproximateForSpreadGroups) {
  // The centroid kNN is generally NOT the kGNN answer — that is the
  // utility price the paper attributes to GLP. Find a seed where they
  // differ to prove the approximation is real.
  GlpParams params;
  params.k = 8;
  params.key_bits = 256;
  bool found_difference = false;
  for (uint64_t seed = 761; seed < 775 && !found_difference; ++seed) {
    auto group = Group(8, seed);
    Rng rng(seed);
    auto glp = RunGlp(*db_, params, group, rng, keys_).value();
    auto exact = db_->solver().Query(group, params.k, AggregateKind::kSum);
    for (size_t i = 0; i < exact.size(); ++i) {
      if (std::abs(glp.query.pois[i].x - exact[i].poi.location.x) > 1e-6 ||
          std::abs(glp.query.pois[i].y - exact[i].poi.location.y) > 1e-6) {
        found_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_difference);
}

}  // namespace
}  // namespace ppgnn
