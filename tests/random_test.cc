#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ppgnn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  const int count = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < count; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / count;
  double var = sum_sq / count - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    const int count = 20000;
    for (int i = 0; i < count; ++i) hits += rng.NextBernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / count, p, 0.02) << "p=" << p;
  }
}

TEST(RngTest, FillBytesCoversAllPositions) {
  Rng rng(23);
  std::vector<uint8_t> buf(37, 0);
  rng.FillBytes(buf.data(), buf.size());
  // With 37 random bytes, the chance all are zero is negligible.
  EXPECT_TRUE(std::any_of(buf.begin(), buf.end(),
                          [](uint8_t b) { return b != 0; }));
  // Different lengths don't write out of bounds (ASAN would catch).
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 16u}) {
    std::vector<uint8_t> small(len);
    rng.FillBytes(small.data(), small.size());
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is 1/100!
}

TEST(RngTest, ChiSquareUniformityOfNextBelow) {
  Rng rng(41);
  const uint64_t buckets = 16;
  const int samples = 160000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < samples; ++i) ++counts[rng.NextBelow(buckets)];
  double expected = static_cast<double>(samples) / buckets;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof: the 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace ppgnn
