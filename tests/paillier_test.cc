#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bigint/modular.h"

namespace ppgnn {
namespace {

// Small keys keep tests fast; the scheme's algebra is size-independent.
constexpr int kTestKeyBits = 256;

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(20240601);
    keys_ = new KeyPair(GenerateKeyPair(kTestKeyBits, *rng_).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }

  static Rng* rng_;
  static KeyPair* keys_;
};

Rng* PaillierTest::rng_ = nullptr;
KeyPair* PaillierTest::keys_ = nullptr;

TEST_F(PaillierTest, KeyGenerationInvariants) {
  EXPECT_EQ(keys_->pub.key_bits, kTestKeyBits);
  EXPECT_EQ(keys_->pub.n.BitLength(), kTestKeyBits);
  EXPECT_EQ(keys_->sec.p * keys_->sec.q, keys_->pub.n);
  // lambda divides (p-1)(q-1) and is divisible by neither p nor q.
  BigInt totient = (keys_->sec.p - BigInt(1)) * (keys_->sec.q - BigInt(1));
  EXPECT_EQ(totient % keys_->sec.lambda, BigInt(0));
}

TEST_F(PaillierTest, KeyGenRejectsBadSizes) {
  Rng rng(1);
  EXPECT_FALSE(GenerateKeyPair(63, rng).ok());
  EXPECT_FALSE(GenerateKeyPair(65, rng).ok());
}

TEST_F(PaillierTest, EncryptDecryptRoundTripLevel1) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  const BigInt values[] = {BigInt(0), BigInt(1), BigInt(42),
                           keys_->pub.n - BigInt(1)};
  for (const BigInt& m : values) {
    Ciphertext ct = enc.Encrypt(m, *rng_, 1).value();
    EXPECT_EQ(ct.level, 1);
    EXPECT_EQ(dec.Decrypt(ct).value(), m) << m;
  }
}

TEST_F(PaillierTest, EncryptDecryptRoundTripLevel2) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  BigInt n2 = keys_->pub.NPow(2);
  const BigInt values[] = {BigInt(0), BigInt(7), keys_->pub.n + BigInt(5),
                           n2 - BigInt(1)};
  for (const BigInt& m : values) {
    Ciphertext ct = enc.Encrypt(m, *rng_, 2).value();
    EXPECT_EQ(ct.level, 2);
    EXPECT_EQ(dec.Decrypt(ct).value(), m);
  }
}

TEST_F(PaillierTest, EncryptDecryptRoundTripLevel3) {
  // The generalized scheme works for any s; spot-check s = 3.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  BigInt m = keys_->pub.NPow(3) - BigInt(123456789);
  Ciphertext ct = enc.Encrypt(m, *rng_, 3).value();
  EXPECT_EQ(dec.Decrypt(ct).value(), m);
}

TEST_F(PaillierTest, PlaintextReducedModuloNs) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  BigInt m = keys_->pub.n + BigInt(3);  // out of Z_N range
  Ciphertext ct = enc.Encrypt(m, *rng_, 1).value();
  EXPECT_EQ(dec.Decrypt(ct).value(), BigInt(3));
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  Encryptor enc(keys_->pub);
  Ciphertext a = enc.Encrypt(BigInt(5), *rng_, 1).value();
  Ciphertext b = enc.Encrypt(BigInt(5), *rng_, 1).value();
  EXPECT_NE(a.value, b.value);  // different blinding randomness
}

TEST_F(PaillierTest, CiphertextInRange) {
  Encryptor enc(keys_->pub);
  BigInt n2 = keys_->pub.NPow(2);
  for (int i = 0; i < 5; ++i) {
    Ciphertext ct = enc.Encrypt(BigInt(i), *rng_, 1).value();
    EXPECT_TRUE(ct.value < n2);
    EXPECT_FALSE(ct.value.IsNegative());
    // Ciphertexts must be units mod N^2.
    EXPECT_EQ(Gcd(ct.value, n2), BigInt(1));
  }
}

TEST_F(PaillierTest, HomomorphicAddition) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext a = enc.Encrypt(BigInt(1234), *rng_, 1).value();
  Ciphertext b = enc.Encrypt(BigInt(8766), *rng_, 1).value();
  Ciphertext sum = enc.Add(a, b).value();
  EXPECT_EQ(dec.Decrypt(sum).value(), BigInt(10000));
}

TEST_F(PaillierTest, HomomorphicAdditionWrapsModN) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  BigInt near_n = keys_->pub.n - BigInt(1);
  Ciphertext a = enc.Encrypt(near_n, *rng_, 1).value();
  Ciphertext b = enc.Encrypt(BigInt(5), *rng_, 1).value();
  EXPECT_EQ(dec.Decrypt(enc.Add(a, b).value()).value(), BigInt(4));
}

TEST_F(PaillierTest, AddRejectsMismatchedLevels) {
  Encryptor enc(keys_->pub);
  Ciphertext a = enc.Encrypt(BigInt(1), *rng_, 1).value();
  Ciphertext b = enc.Encrypt(BigInt(1), *rng_, 2).value();
  EXPECT_FALSE(enc.Add(a, b).ok());
}

TEST_F(PaillierTest, HomomorphicScalarMultiplication) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext ct = enc.Encrypt(BigInt(111), *rng_, 1).value();
  Ciphertext scaled = enc.ScalarMul(BigInt(9), ct).value();
  EXPECT_EQ(dec.Decrypt(scaled).value(), BigInt(999));
  // Scaling by zero yields an encryption of zero.
  EXPECT_EQ(dec.Decrypt(enc.ScalarMul(BigInt(0), ct).value()).value(),
            BigInt(0));
}

TEST_F(PaillierTest, ScalarMulRejectsNegative) {
  Encryptor enc(keys_->pub);
  Ciphertext ct = enc.Encrypt(BigInt(1), *rng_, 1).value();
  EXPECT_FALSE(enc.ScalarMul(BigInt(-2), ct).ok());
}

TEST_F(PaillierTest, DotProductSelectsIndicatedElement) {
  // The private-selection primitive (Eqn 4): a one-hot encrypted vector
  // dotted with a plaintext row returns the indicated element.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  std::vector<Ciphertext> v;
  const size_t hot = 2;
  for (size_t i = 0; i < 4; ++i) {
    v.push_back(enc.Encrypt(BigInt(i == hot ? 1 : 0), *rng_, 1).value());
  }
  std::vector<BigInt> x = {BigInt(10), BigInt(20), BigInt(30), BigInt(40)};
  Ciphertext out = enc.DotProduct(x, v).value();
  EXPECT_EQ(dec.Decrypt(out).value(), BigInt(30));
}

TEST_F(PaillierTest, DotProductGeneralLinearCombination) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  std::vector<Ciphertext> v = {enc.Encrypt(BigInt(3), *rng_, 1).value(),
                               enc.Encrypt(BigInt(5), *rng_, 1).value(),
                               enc.Encrypt(BigInt(7), *rng_, 1).value()};
  std::vector<BigInt> x = {BigInt(2), BigInt(0), BigInt(4)};
  Ciphertext out = enc.DotProduct(x, v).value();
  EXPECT_EQ(dec.Decrypt(out).value(), BigInt(2 * 3 + 0 * 5 + 4 * 7));
}

TEST_F(PaillierTest, DotProductValidatesShapes) {
  Encryptor enc(keys_->pub);
  std::vector<Ciphertext> v = {enc.Encrypt(BigInt(1), *rng_, 1).value()};
  EXPECT_FALSE(enc.DotProduct({BigInt(1), BigInt(2)}, v).ok());
  EXPECT_FALSE(enc.DotProduct({}, {}).ok());
}

TEST_F(PaillierTest, LayeredEncryptionRoundTrip) {
  // PPGNN-OPT's core trick: an eps_1 ciphertext is a valid eps_2
  // plaintext; two decryptions peel both layers.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  BigInt secret(987654321);
  Ciphertext inner = enc.Encrypt(secret, *rng_, 1).value();
  Ciphertext outer = enc.Encrypt(inner.value, *rng_, 2).value();
  EXPECT_EQ(dec.DecryptLayered(outer).value(), secret);
}

TEST_F(PaillierTest, LayeredSelectionViaScalarMul) {
  // Treating eps_1 ciphertexts as eps_2 scalars: dot([[one-hot]],
  // (c1, c2)) picks the indicated inner ciphertext.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext inner_a = enc.Encrypt(BigInt(111), *rng_, 1).value();
  Ciphertext inner_b = enc.Encrypt(BigInt(222), *rng_, 1).value();
  std::vector<Ciphertext> v2 = {enc.Encrypt(BigInt(0), *rng_, 2).value(),
                                enc.Encrypt(BigInt(1), *rng_, 2).value()};
  std::vector<BigInt> scalars = {inner_a.value, inner_b.value};
  Ciphertext outer = enc.DotProduct(scalars, v2).value();
  EXPECT_EQ(dec.DecryptLayered(outer).value(), BigInt(222));
}

TEST_F(PaillierTest, DecryptLayeredRejectsWrongLevel) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext ct = enc.Encrypt(BigInt(1), *rng_, 1).value();
  EXPECT_FALSE(dec.DecryptLayered(ct).ok());
}

TEST_F(PaillierTest, CiphertextByteSizes) {
  // L_e = 2 * keysize/8 for eps_1; eps_2 ciphertexts are 1.5x larger
  // (Z_{N^3}), the ratio driving Eqn 18's cost model.
  EXPECT_EQ(keys_->pub.CiphertextBytes(1),
            static_cast<size_t>(2 * kTestKeyBits / 8));
  EXPECT_EQ(keys_->pub.CiphertextBytes(2),
            static_cast<size_t>(3 * kTestKeyBits / 8));
}

TEST_F(PaillierTest, ExtractDjLogRecoversExponent) {
  const BigInt& n = keys_->pub.n;
  for (int s : {1, 2, 3}) {
    BigInt n_s1 = keys_->pub.NPow(s + 1);
    BigInt x = (BigInt(123456789) * keys_->pub.n + BigInt(42)).Mod(
        keys_->pub.NPow(s));
    BigInt a = ModExp(n + BigInt(1), x, n_s1).value();
    EXPECT_EQ(internal::ExtractDjLog(a, n, s).value(), x) << "s=" << s;
  }
}

TEST_F(PaillierTest, ExtractDjLogRejectsMalformedInput) {
  // A value that is not (1+N)^x mod N^2 (its L-part is not divisible).
  EXPECT_FALSE(internal::ExtractDjLog(BigInt(2), keys_->pub.n, 1).ok());
}

TEST_F(PaillierTest, RerandomizePreservesPlaintextButChangesCiphertext) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  for (int level : {1, 2}) {
    Ciphertext ct = enc.Encrypt(BigInt(31337), *rng_, level).value();
    Ciphertext re = enc.Rerandomize(ct, *rng_).value();
    EXPECT_EQ(re.level, level);
    EXPECT_NE(re.value, ct.value);
    EXPECT_EQ(dec.Decrypt(re).value(), BigInt(31337));
  }
}

TEST_F(PaillierTest, ZeroCiphertextIsAdditiveIdentity) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext ct = enc.Encrypt(BigInt(77), *rng_, 1).value();
  Ciphertext sum = enc.Add(ct, enc.Zero(1)).value();
  EXPECT_EQ(dec.Decrypt(sum).value(), BigInt(77));
}

TEST_F(PaillierTest, DistinctKeysProduceDistinctModuli) {
  Rng rng(31337);
  KeyPair other = GenerateKeyPair(kTestKeyBits, rng).value();
  EXPECT_NE(other.pub.n, keys_->pub.n);
}

TEST_F(PaillierTest, CrtAndDirectDecryptionAgree) {
  Encryptor enc(keys_->pub);
  Decryptor crt(keys_->pub, keys_->sec, /*use_crt=*/true);
  Decryptor direct(keys_->pub, keys_->sec, /*use_crt=*/false);
  for (int level : {1, 2}) {
    for (int i = 0; i < 10; ++i) {
      BigInt m = BigInt::RandomBelow(keys_->pub.NPow(level), *rng_);
      Ciphertext ct = enc.Encrypt(m, *rng_, level).value();
      BigInt via_crt = crt.Decrypt(ct).value();
      BigInt via_direct = direct.Decrypt(ct).value();
      EXPECT_EQ(via_crt, via_direct);
      EXPECT_EQ(via_crt, m);
    }
  }
}

TEST_F(PaillierTest, BlindingPoolPreservesCorrectnessAndDrains) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  ASSERT_TRUE(enc.RefillBlindingPool(1, 3, *rng_).ok());
  EXPECT_EQ(enc.PooledBlindingCount(1), 3u);
  for (int i = 0; i < 5; ++i) {  // 3 pooled + 2 fresh
    Ciphertext ct = enc.Encrypt(BigInt(1000 + i), *rng_, 1).value();
    EXPECT_EQ(dec.Decrypt(ct).value(), BigInt(1000 + i));
  }
  EXPECT_EQ(enc.PooledBlindingCount(1), 0u);
}

// Regression (pre-fix failing): racing refillers each compared the pool
// size against the target *before* exponentiating, so N concurrent top-ups
// to the same target could overshoot it N-fold. The quota is now claimed
// under the pool lock before any exponentiation runs.
TEST_F(PaillierTest, TargetedRefillNeverOverfillsThePool) {
  Encryptor enc(keys_->pub);
  constexpr size_t kTarget = 8;
  // Serial: a second targeted refill on a full pool is a no-op.
  size_t produced = 0;
  ASSERT_TRUE(
      enc.RefillBlindingPool(1, kTarget, *rng_, kTarget, &produced).ok());
  EXPECT_EQ(produced, kTarget);
  ASSERT_TRUE(
      enc.RefillBlindingPool(1, kTarget, *rng_, kTarget, &produced).ok());
  EXPECT_EQ(produced, 0u);
  EXPECT_EQ(enc.PooledBlindingCount(1), kTarget);

  // Concurrent: racing refillers split the remaining quota, never sum it.
  Encryptor racy(keys_->pub);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::array<Status, kThreads> status;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + static_cast<uint64_t>(t));
      status[t] = racy.RefillBlindingPool(1, kTarget, rng, kTarget);
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& s : status) EXPECT_TRUE(s.ok());
  EXPECT_EQ(racy.PooledBlindingCount(1), kTarget);
}

TEST_F(PaillierTest, UntargetedRefillKeepsUnconditionalSemantics) {
  // target = 0 is the per-query warmup path (RunQuery): the caller asked
  // for exactly `count` factors and must get them even onto a full pool.
  Encryptor enc(keys_->pub);
  ASSERT_TRUE(enc.RefillBlindingPool(1, 3, *rng_).ok());
  ASSERT_TRUE(enc.RefillBlindingPool(1, 3, *rng_).ok());
  EXPECT_EQ(enc.PooledBlindingCount(1), 6u);
}

TEST_F(PaillierTest, PooledCiphertextsStillProbabilistic) {
  Encryptor enc(keys_->pub);
  ASSERT_TRUE(enc.RefillBlindingPool(1, 2, *rng_).ok());
  Ciphertext a = enc.Encrypt(BigInt(5), *rng_, 1).value();
  Ciphertext b = enc.Encrypt(BigInt(5), *rng_, 1).value();
  EXPECT_NE(a.value, b.value);
}

TEST_F(PaillierTest, BlindingPoolLevelsAreIndependent) {
  Encryptor enc(keys_->pub);
  ASSERT_TRUE(enc.RefillBlindingPool(2, 2, *rng_).ok());
  EXPECT_EQ(enc.PooledBlindingCount(1), 0u);
  EXPECT_EQ(enc.PooledBlindingCount(2), 2u);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext ct = enc.Encrypt(BigInt(77), *rng_, 2).value();
  EXPECT_EQ(dec.Decrypt(ct).value(), BigInt(77));
  EXPECT_EQ(enc.PooledBlindingCount(2), 1u);
  EXPECT_FALSE(enc.RefillBlindingPool(0, 1, *rng_).ok());
}

TEST_F(PaillierTest, BlindingPathsAreBitIdenticalOnSameRngStream) {
  // The chaos/dedup/replay machinery depends on deterministic frames, so
  // every blinding configuration must produce byte-identical ciphertexts
  // from the same RNG stream: generic ladder, fixed-base tables (several
  // widths), and the secret-key CRT split, with and without CRT tables.
  EncryptorOptions naive;
  naive.use_fixed_base = false;
  naive.use_crt = false;
  // Encryptor is non-movable (it owns mutexes and atomics), so hold the
  // configurations through unique_ptr.
  std::vector<std::pair<const char*, std::unique_ptr<Encryptor>>> configs;
  configs.emplace_back("naive", std::make_unique<Encryptor>(keys_->pub, naive));
  configs.emplace_back("fixed-base", std::make_unique<Encryptor>(keys_->pub));
  EncryptorOptions narrow;
  narrow.fixed_base_window = 2;
  configs.emplace_back("fixed-base-w2",
                       std::make_unique<Encryptor>(keys_->pub, narrow));
  configs.emplace_back("crt", std::make_unique<Encryptor>(*keys_));
  EncryptorOptions crt_ladder;
  crt_ladder.use_fixed_base = false;
  configs.emplace_back("crt-ladder",
                       std::make_unique<Encryptor>(*keys_, crt_ladder));
  for (int level : {1, 2}) {
    for (int i = 0; i < 3; ++i) {
      const BigInt m = BigInt::RandomBelow(keys_->pub.NPow(level), *rng_);
      Rng reference_rng(9000 + i);
      const Ciphertext reference =
          configs[0].second->Encrypt(m, reference_rng, level).value();
      for (auto& [name, enc] : configs) {
        Rng rng(9000 + i);
        Ciphertext ct = enc->Encrypt(m, rng, level).value();
        EXPECT_EQ(ct.value, reference.value)
            << name << " level " << level << " diverged";
      }
    }
  }
}

TEST_F(PaillierTest, PoolExhaustionFallsBackEquivalently) {
  // A pool-warmed Encryptor whose pool has drained must consume the RNG
  // exactly like a never-pooled one: pooled Encrypts draw nothing, so
  // post-exhaustion ciphertexts are byte-identical across the two.
  Encryptor pooled(keys_->pub);
  Encryptor fresh(keys_->pub);
  Rng pool_rng(41);
  ASSERT_TRUE(pooled.RefillBlindingPool(1, 2, pool_rng).ok());
  Rng rng_a(42);
  Rng rng_b(42);
  // Drain the pool (no randomness consumed from rng_a)...
  ASSERT_TRUE(pooled.Encrypt(BigInt(1), rng_a, 1).ok());
  ASSERT_TRUE(pooled.Encrypt(BigInt(2), rng_a, 1).ok());
  EXPECT_EQ(pooled.PooledBlindingCount(1), 0u);
  // ...then the exhausted and never-pooled paths must coincide.
  for (int i = 0; i < 3; ++i) {
    Ciphertext a = pooled.Encrypt(BigInt(100 + i), rng_a, 1).value();
    Ciphertext b = fresh.Encrypt(BigInt(100 + i), rng_b, 1).value();
    EXPECT_EQ(a.value, b.value) << "post-exhaustion encrypt " << i;
  }
  // And the exhausted path ran on the fixed-base engine, not the ladder.
  Encryptor::BlindingStats stats = pooled.blinding_stats();
  EXPECT_EQ(stats.pool_hits, 2u);
  EXPECT_EQ(stats.pool_misses, 3u);
  EXPECT_EQ(stats.refilled, 2u);
  EXPECT_GE(stats.fixed_base_evals, 3u);
  EXPECT_EQ(stats.generic_evals, 0u);
  EXPECT_GT(stats.table_bytes, 0u);
}

TEST_F(PaillierTest, CrtEncryptorDecryptsAndPools) {
  // The secret-key (CRT) encrypt path must interoperate with everything
  // else: decryption, the pool, and level 2.
  Encryptor enc(*keys_);
  Decryptor dec(keys_->pub, keys_->sec);
  Rng rng(77);
  ASSERT_TRUE(enc.RefillBlindingPool(2, 2, rng).ok());
  for (int level : {1, 2}) {
    for (int i = 0; i < 4; ++i) {
      BigInt m = BigInt::RandomBelow(keys_->pub.NPow(level), rng);
      Ciphertext ct = enc.Encrypt(m, rng, level).value();
      EXPECT_EQ(dec.Decrypt(ct).value(), m) << "level " << level;
    }
  }
  EXPECT_EQ(enc.PooledBlindingCount(2), 0u);
}

TEST(PaillierSoakTest, ManyRandomRoundTrips) {
  Rng rng(606);
  KeyPair keys = GenerateKeyPair(128, rng).value();
  Encryptor enc(keys.pub);
  Decryptor dec(keys.pub, keys.sec);
  for (int i = 0; i < 30; ++i) {
    BigInt m = BigInt::RandomBelow(keys.pub.n, rng);
    EXPECT_EQ(dec.Decrypt(enc.Encrypt(m, rng, 1).value()).value(), m);
  }
}

}  // namespace
}  // namespace ppgnn
