#include "core/indicator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppgnn {
namespace {

class IndicatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(777);
    keys_ = new KeyPair(GenerateKeyPair(256, *rng_).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }
  static Rng* rng_;
  static KeyPair* keys_;
};
Rng* IndicatorTest::rng_ = nullptr;
KeyPair* IndicatorTest::keys_ = nullptr;

TEST(MakeIndicatorTest, OneHotShape) {
  auto v = MakeIndicator(3, 5).value();
  ASSERT_EQ(v.size(), 5u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], BigInt(i == 2 ? 1 : 0));
  }
}

TEST(MakeIndicatorTest, BoundaryPositions) {
  EXPECT_EQ(MakeIndicator(1, 4).value()[0], BigInt(1));
  EXPECT_EQ(MakeIndicator(4, 4).value()[3], BigInt(1));
  EXPECT_FALSE(MakeIndicator(0, 4).ok());
  EXPECT_FALSE(MakeIndicator(5, 4).ok());
}

TEST(ChooseOmegaTest, NearSqrtHalfDeltaPrime) {
  // Eqn 18: omega* ~ sqrt(delta'/2).
  for (uint64_t dp : {8ULL, 50ULL, 100ULL, 200ULL, 1000ULL}) {
    uint64_t omega = ChooseOmega(dp, 1);
    double ideal = std::sqrt(static_cast<double>(dp) / 2.0);
    EXPECT_GE(omega, 1u);
    EXPECT_LE(omega, dp);
    EXPECT_NEAR(static_cast<double>(omega), ideal, ideal * 0.8 + 2.0)
        << "dp=" << dp;
  }
}

TEST(ChooseOmegaTest, MinimizesDiscreteCost) {
  // Exhaustively verify optimality of the chosen omega for small delta'.
  for (uint64_t dp = 1; dp <= 300; ++dp) {
    for (size_t m : {1u, 3u}) {
      auto cost = [&](uint64_t w) {
        return 2 * w + (dp + w - 1) / w + 2 * m;
      };
      uint64_t chosen = ChooseOmega(dp, m);
      uint64_t best = cost(chosen);
      for (uint64_t w = 1; w <= dp; ++w) {
        EXPECT_LE(best, cost(w)) << "dp=" << dp << " w=" << w;
      }
    }
  }
}

TEST(ChooseOmegaTest, DegenerateCases) {
  EXPECT_EQ(ChooseOmega(1, 1), 1u);
  EXPECT_EQ(ChooseOmega(0, 1), 1u);
}

TEST_F(IndicatorTest, EncryptIndicatorDecryptsToOneHot) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  auto cts = EncryptIndicator(enc, 4, 6, *rng_).value();
  ASSERT_EQ(cts.size(), 6u);
  for (size_t i = 0; i < cts.size(); ++i) {
    EXPECT_EQ(cts[i].level, 1);
    EXPECT_EQ(dec.Decrypt(cts[i]).value(), BigInt(i == 3 ? 1 : 0));
  }
}

TEST_F(IndicatorTest, EncryptIndicatorHidesPosition) {
  // Ciphertexts at the hot and cold positions must be indistinguishable
  // by trivial inspection (all distinct, none equal to a deterministic
  // encoding of 0 or 1).
  Encryptor enc(keys_->pub);
  auto cts = EncryptIndicator(enc, 2, 4, *rng_).value();
  for (size_t i = 0; i < cts.size(); ++i) {
    for (size_t j = i + 1; j < cts.size(); ++j) {
      EXPECT_NE(cts[i].value, cts[j].value);
    }
  }
}

TEST_F(IndicatorTest, OptIndicatorShapeAndLevels) {
  Encryptor enc(keys_->pub);
  const uint64_t delta_prime = 10, omega = 2;
  auto opt = EncryptOptIndicator(enc, 7, delta_prime, omega, *rng_).value();
  EXPECT_EQ(opt.omega, 2u);
  EXPECT_EQ(opt.block_size, 5u);
  ASSERT_EQ(opt.v1.size(), 5u);
  ASSERT_EQ(opt.v2.size(), 2u);
  for (const auto& ct : opt.v1) EXPECT_EQ(ct.level, 1);
  for (const auto& ct : opt.v2) EXPECT_EQ(ct.level, 2);
}

TEST_F(IndicatorTest, OptIndicatorFactorizationCorrect) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  const uint64_t delta_prime = 12, omega = 3;  // block_size = 4
  for (uint64_t qi = 1; qi <= delta_prime; ++qi) {
    auto opt = EncryptOptIndicator(enc, qi, delta_prime, omega, *rng_).value();
    uint64_t block = (qi - 1) / opt.block_size;
    uint64_t offset = (qi - 1) % opt.block_size;
    for (uint64_t i = 0; i < opt.block_size; ++i) {
      EXPECT_EQ(dec.Decrypt(opt.v1[i]).value(), BigInt(i == offset ? 1 : 0));
    }
    for (uint64_t b = 0; b < omega; ++b) {
      EXPECT_EQ(dec.Decrypt(opt.v2[b]).value(), BigInt(b == block ? 1 : 0));
    }
  }
}

TEST_F(IndicatorTest, OptIndicatorPaperExample) {
  // Figure 4a: delta' = 8, omega = 2, real query at position 7 ->
  // v1 = (0,0,1,0), v2 = (0,1).
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  auto opt = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
  std::vector<int> v1, v2;
  for (const auto& ct : opt.v1)
    v1.push_back(dec.Decrypt(ct).value() == BigInt(1) ? 1 : 0);
  for (const auto& ct : opt.v2)
    v2.push_back(dec.Decrypt(ct).value() == BigInt(1) ? 1 : 0);
  EXPECT_EQ(v1, (std::vector<int>{0, 0, 1, 0}));
  EXPECT_EQ(v2, (std::vector<int>{0, 1}));
}

TEST_F(IndicatorTest, OptIndicatorValidatesArguments) {
  Encryptor enc(keys_->pub);
  EXPECT_FALSE(EncryptOptIndicator(enc, 1, 8, 0, *rng_).ok());
  EXPECT_FALSE(EncryptOptIndicator(enc, 1, 8, 9, *rng_).ok());
  EXPECT_FALSE(EncryptOptIndicator(enc, 0, 8, 2, *rng_).ok());
  EXPECT_FALSE(EncryptOptIndicator(enc, 9, 8, 2, *rng_).ok());
}

TEST_F(IndicatorTest, OptWireSizeBeatsPlainForLargeDeltaPrime) {
  // The whole point of PPGNN-OPT: sqrt-many ciphertexts. Compare wire
  // bytes of the two encodings at delta' = 100 (m = 1).
  Encryptor enc(keys_->pub);
  const uint64_t dp = 100;
  uint64_t omega = ChooseOmega(dp, 1);
  auto opt = EncryptOptIndicator(enc, 42, dp, omega, *rng_).value();
  size_t opt_bytes = opt.v1.size() * keys_->pub.CiphertextBytes(1) +
                     opt.v2.size() * keys_->pub.CiphertextBytes(2);
  size_t plain_bytes = dp * keys_->pub.CiphertextBytes(1);
  EXPECT_LT(opt_bytes, plain_bytes / 2);
}

}  // namespace
}  // namespace ppgnn
