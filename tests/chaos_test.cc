// The chaos tier: the full service loop (coordinator-built requests,
// LspService, ResilientClient) under scripted, deterministic fault
// schedules. The invariants, for every injected fault:
//
//   1. The call ends in a correct answer or a decodable structured
//      error — never a crash, a hang past the budget, or a silently
//      wrong answer.
//   2. Retries and hedges respect the call's total deadline budget.
//   3. A dropout-degraded query is byte-shape-identical on the wire to
//      a healthy one (same d, same delta', same message sizes).
//
// The probabilistic schedule seed comes from PPGNN_CHAOS_SEED when set
// (CI runs a small seed matrix); every schedule replays exactly for a
// given seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "service/lsp_service.h"
#include "service/resilient_client.h"
#include "service/workload.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("PPGNN_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(3000, 777));
    Rng rng(778);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }
  void TearDown() override { FailpointClearAll(); }

  static ProtocolParams GroupParams() {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 3;
    params.key_bits = keys_->pub.key_bits;
    params.sanitize = false;
    return params;
  }

  static ServiceRequest WorkloadRequest(Rng& rng,
                                        std::vector<Point>* real = nullptr) {
    ProtocolParams params = GroupParams();
    std::vector<Point> group;
    for (int i = 0; i < params.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    if (real != nullptr) *real = group;
    return BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng)
        .value();
  }

  // Decodes an answer frame and checks it against the plaintext kGNN
  // reference for `real` (exact up to wire quantization).
  static void ExpectExactAnswer(const std::vector<uint8_t>& frame,
                                const std::vector<Point>& real) {
    Decryptor dec(keys_->pub, keys_->sec);
    ServedReply reply =
        ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
    ASSERT_TRUE(reply.ok) << reply.error.detail;
    auto expected = db_->solver().Query(real, GroupParams().k,
                                        AggregateKind::kSum);
    ASSERT_EQ(reply.pois.size(), expected.size());
    for (size_t i = 0; i < reply.pois.size(); ++i) {
      EXPECT_NEAR(reply.pois[i].x, expected[i].poi.location.x, 1e-8);
      EXPECT_NEAR(reply.pois[i].y, expected[i].poi.location.y, 1e-8);
    }
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* ChaosTest::db_ = nullptr;
KeyPair* ChaosTest::keys_ = nullptr;

// Invariant 3: a coordinator that lost a user substitutes a synthetic
// set; the LSP-visible bytes have the same shape as a healthy query.
TEST_F(ChaosTest, DropoutDegradedRequestIsWireShapeIdentical) {
  ServiceRequest healthy;
  {
    Rng rng(50);
    healthy = WorkloadRequest(rng);
  }
  ASSERT_EQ(healthy.degraded_users, 0u);

  ASSERT_TRUE(FailpointSetFromSpec("user.upload=drop,times=1").ok());
  ServiceRequest degraded;
  std::vector<Point> real;
  {
    Rng rng(50);  // same coordinator randomness, one user dropped
    degraded = WorkloadRequest(rng, &real);
  }
  FailpointClearAll();
  EXPECT_EQ(degraded.degraded_users, 1u);

  // Same query size, same upload count, same per-upload byte size: the
  // LSP (and any observer of the wire) cannot tell who dropped.
  EXPECT_EQ(degraded.query.size(), healthy.query.size());
  ASSERT_EQ(degraded.uploads.size(), healthy.uploads.size());
  for (size_t u = 0; u < healthy.uploads.size(); ++u) {
    EXPECT_EQ(degraded.uploads[u].size(), healthy.uploads[u].size())
        << "upload " << u;
  }

  // And the degraded query still serves end-to-end: delta' candidates,
  // k decodable POIs — just not necessarily the group-optimal ones.
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);
  std::vector<uint8_t> frame = service.Call(std::move(degraded));
  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  EXPECT_EQ(reply.pois.size(), static_cast<size_t>(GroupParams().k));
  service.Shutdown();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.degraded_queries, 1u);
  EXPECT_EQ(stats.totals.degraded_users, 1u);
  EXPECT_EQ(stats.totals.delta_prime, 8u);
}

// Invariant 1 + retry classification: transient rejects are retried and
// the final answer is exactly correct.
TEST_F(ChaosTest, RetriesRecoverFromTransientOverload) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,times=2").ok());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.001;
  ResilientClient client(service, policy);

  Rng rng(51);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered)
      << ResponseFrame::Decode(outcome.frame).value().error.detail;
  EXPECT_EQ(outcome.attempts, 3);  // two injected rejects, then success
  ExpectExactAnswer(outcome.frame, real);

  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.retries, 2u);
  EXPECT_EQ(cs.answers, 1u);
  EXPECT_EQ(service.Stats().retries, 2u);
  service.Shutdown();
}

TEST_F(ChaosTest, TerminalErrorIsNotRetried) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  RetryPolicy policy;
  policy.max_attempts = 5;
  ResilientClient client(service, policy);

  ServiceRequest garbage;
  garbage.query = {0xDE, 0xAD};
  ClientCallOutcome outcome = client.Call(std::move(garbage));
  EXPECT_FALSE(outcome.answered);
  EXPECT_EQ(outcome.attempts, 1);  // malformed: resending cannot help
  EXPECT_EQ(outcome.error.code, WireError::kMalformed);
  ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kMalformed);
  EXPECT_EQ(client.Stats().terminal_errors, 1u);
  service.Shutdown();
}

// Invariant 2: a persistently failing service cannot drag a call past
// its budget, and the caller still gets a structured error.
TEST_F(ChaosTest, RetriesRespectTheDeadlineBudget) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop").ok());

  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.total_budget_seconds = 0.25;
  policy.initial_backoff_seconds = 0.005;
  policy.max_backoff_seconds = 0.05;
  ResilientClient client(service, policy);

  Rng rng(52);
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
  EXPECT_FALSE(outcome.answered);
  // Rejects are inline and instant; only backoffs consume time, and the
  // budget caps them. Generous slop for loaded CI machines.
  EXPECT_LE(outcome.elapsed_seconds, 0.25 + 0.2);
  EXPECT_GT(outcome.attempts, 1);
  ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kOverloaded);
  EXPECT_EQ(client.Stats().budget_exhausted, 1u);
  service.Shutdown();
}

TEST_F(ChaosTest, HedgeWinsWhenPrimaryStalls) {
  ServiceConfig config;
  config.workers = 2;  // room for primary + hedge to run concurrently
  config.sanitize = false;
  LspService service(*db_, config);

  // Only the first execution stalls; the hedge runs clean.
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:500,times=1").ok());

  RetryPolicy policy;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.03;
  ResilientClient client(service, policy);

  Rng rng(53);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered);
  EXPECT_EQ(outcome.hedges, 1);
  EXPECT_TRUE(outcome.hedge_won);
  ExpectExactAnswer(outcome.frame, real);
  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.hedges, 1u);
  EXPECT_EQ(cs.hedge_wins, 1u);
  EXPECT_EQ(service.Stats().hedges, 1u);
  service.Shutdown();
}

// A corrupted reply is detectable garbage (frame CRC), classified as
// transient, and the retry recovers the exact answer.
TEST_F(ChaosTest, CorruptReplyIsRetriedAndRecovered) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.reply=corrupt:3,times=1").ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.001;
  ResilientClient client(service, policy);

  Rng rng(54);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered);
  EXPECT_EQ(outcome.attempts, 2);
  ExpectExactAnswer(outcome.frame, real);
  EXPECT_EQ(client.Stats().transport_garbage, 1u);
  service.Shutdown();
}

// Injected failures below the service layer (crypto, candidate loop)
// surface as structured internal errors, not crashes.
TEST_F(ChaosTest, LspLayerFaultsYieldStructuredErrors) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);
  RetryPolicy policy;
  policy.max_attempts = 1;
  ResilientClient client(service, policy);

  Rng rng(55);
  for (const char* spec :
       {"lsp.process=error:malformed,times=1", "lsp.candidate=error,times=1",
        "lsp.select=error:crypto,times=1"}) {
    // Build the (healthy) request before arming so the fault hits the
    // serving path, not the coordinator's own encryption.
    ServiceRequest request = WorkloadRequest(rng);
    ASSERT_TRUE(FailpointSetFromSpec(spec).ok()) << spec;
    ClientCallOutcome outcome = client.Call(std::move(request));
    EXPECT_FALSE(outcome.answered) << spec;
    ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
    ASSERT_TRUE(decoded.is_error) << spec;
    FailpointClearAll();
  }
  // With everything cleared the same client serves exactly again.
  std::vector<Point> real;
  ClientCallOutcome healthy = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(healthy.answered);
  ExpectExactAnswer(healthy.frame, real);
  service.Shutdown();
}

// Crypto-layer failpoints surface as clean Results at the Paillier entry
// points (the coordinator side of the protocol).
TEST_F(ChaosTest, PaillierFailpointsReturnCleanErrors) {
  Rng rng(56);
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext good = enc.Encrypt(BigInt(42), rng, 1).value();

  ASSERT_TRUE(FailpointSetFromSpec("paillier.encrypt=error:crypto,times=1")
                  .ok());
  Result<Ciphertext> blocked = enc.Encrypt(BigInt(7), rng, 1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kCryptoError);
  // times=1 exhausted: encryption works again.
  EXPECT_TRUE(enc.Encrypt(BigInt(7), rng, 1).ok());

  ASSERT_TRUE(FailpointSetFromSpec("paillier.decrypt=error:crypto,times=1")
                  .ok());
  EXPECT_FALSE(dec.Decrypt(good).ok());
  EXPECT_EQ(dec.Decrypt(good).value(), BigInt(42));
}

// The scripted schedule: a stream of requests against a service with
// several probabilistic failpoints armed at once, seeded from
// PPGNN_CHAOS_SEED. Every call must end inside its budget with either
// an exact answer (healthy request) or a decodable frame.
TEST_F(ChaosTest, ScriptedScheduleNeverCrashesHangsOrLies) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("PPGNN_CHAOS_SEED=" + std::to_string(seed));

  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,p=0.15,seed=" +
                                   std::to_string(seed))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("service.reply=corrupt:2,p=0.1,seed=" +
                                   std::to_string(seed + 1))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("user.upload=drop,p=0.1,seed=" +
                                   std::to_string(seed + 2))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:20,p=0.2,seed=" +
                                   std::to_string(seed + 3))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("lsp.candidate=error,p=0.05,seed=" +
                                   std::to_string(seed + 4))
                  .ok());

  constexpr double kBudget = 2.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.total_budget_seconds = kBudget;
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.02;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.2;
  policy.seed = seed;
  ResilientClient client(service, policy);

  Rng rng(9000 + seed);
  int answered = 0, exact_checked = 0, structured_errors = 0, degraded = 0;
  for (int i = 0; i < 25; ++i) {
    std::vector<Point> real;
    ServiceRequest request = WorkloadRequest(rng, &real);
    const bool is_degraded = request.degraded_users > 0;
    ClientCallOutcome outcome = client.Call(std::move(request));

    // Never a hang past the budget (wide slop: a slow execution that
    // beat the in-queue deadline check may finish its full query).
    EXPECT_LT(outcome.elapsed_seconds, kBudget + 2.0) << "request " << i;
    // Never an undecodable reply.
    Result<ResponseFrame> decoded = ResponseFrame::Decode(outcome.frame);
    ASSERT_TRUE(decoded.ok()) << "request " << i << ": "
                              << decoded.status().ToString();
    if (outcome.answered) {
      ++answered;
      if (is_degraded) {
        ++degraded;
        // Degraded: still k decodable POIs, just not reference-exact.
        Decryptor dec(keys_->pub, keys_->sec);
        ServedReply reply =
            ParseServedReply(outcome.frame, *keys_, dec, /*layered=*/false)
                .value();
        ASSERT_TRUE(reply.ok);
        EXPECT_EQ(reply.pois.size(), static_cast<size_t>(GroupParams().k));
      } else {
        // Healthy and answered: the answer must be exactly right —
        // corruption or faults may delay it, never falsify it.
        ExpectExactAnswer(outcome.frame, real);
        ++exact_checked;
      }
    } else {
      ++structured_errors;
      EXPECT_TRUE(decoded.value().is_error);
    }
  }
  FailpointClearAll();
  service.Shutdown();

  // The schedule must actually exercise both outcomes and the checks.
  EXPECT_GT(answered, 0);
  EXPECT_GT(exact_checked, 0);
  EXPECT_EQ(answered + structured_errors, 25);

  ServiceStats stats = service.Stats();
  // Every degraded request the client saw answered was served at least
  // once (a hedge pair can be served twice, so >= not ==).
  EXPECT_GE(stats.degraded_queries, static_cast<uint64_t>(degraded));
  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.calls, 25u);
  EXPECT_GE(cs.attempts, cs.calls);
}

}  // namespace
}  // namespace ppgnn
