// The chaos tier: the full service loop (coordinator-built requests,
// LspService, ResilientClient) under scripted, deterministic fault
// schedules. The invariants, for every injected fault:
//
//   1. The call ends in a correct answer or a decodable structured
//      error — never a crash, a hang past the budget, or a silently
//      wrong answer.
//   2. Retries and hedges respect the call's total deadline budget.
//   3. A dropout-degraded query is byte-shape-identical on the wire to
//      a healthy one (same d, same delta', same message sizes).
//
// The probabilistic schedule seed comes from PPGNN_CHAOS_SEED when set
// (CI runs a small seed matrix); every schedule replays exactly for a
// given seed.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "service/lsp_service.h"
#include "service/resilient_client.h"
#include "service/shard_coordinator.h"
#include "service/workload.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("PPGNN_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(3000, 777));
    Rng rng(778);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }
  void TearDown() override { FailpointClearAll(); }

  static ProtocolParams GroupParams() {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 3;
    params.key_bits = keys_->pub.key_bits;
    params.sanitize = false;
    return params;
  }

  static ServiceRequest WorkloadRequest(Rng& rng,
                                        std::vector<Point>* real = nullptr) {
    ProtocolParams params = GroupParams();
    std::vector<Point> group;
    for (int i = 0; i < params.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    if (real != nullptr) *real = group;
    return BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng)
        .value();
  }

  // Decodes an answer frame and checks it against the plaintext kGNN
  // reference for `real` (exact up to wire quantization).
  static void ExpectExactAnswer(const std::vector<uint8_t>& frame,
                                const std::vector<Point>& real) {
    Decryptor dec(keys_->pub, keys_->sec);
    ServedReply reply =
        ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
    ASSERT_TRUE(reply.ok) << reply.error.detail;
    auto expected = db_->solver().Query(real, GroupParams().k,
                                        AggregateKind::kSum);
    ASSERT_EQ(reply.pois.size(), expected.size());
    for (size_t i = 0; i < reply.pois.size(); ++i) {
      EXPECT_NEAR(reply.pois[i].x, expected[i].poi.location.x, 1e-8);
      EXPECT_NEAR(reply.pois[i].y, expected[i].poi.location.y, 1e-8);
    }
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* ChaosTest::db_ = nullptr;
KeyPair* ChaosTest::keys_ = nullptr;

// Invariant 3: a coordinator that lost a user substitutes a synthetic
// set; the LSP-visible bytes have the same shape as a healthy query.
TEST_F(ChaosTest, DropoutDegradedRequestIsWireShapeIdentical) {
  ServiceRequest healthy;
  {
    Rng rng(50);
    healthy = WorkloadRequest(rng);
  }
  ASSERT_EQ(healthy.degraded_users, 0u);

  ASSERT_TRUE(FailpointSetFromSpec("user.upload=drop,times=1").ok());
  ServiceRequest degraded;
  std::vector<Point> real;
  {
    Rng rng(50);  // same coordinator randomness, one user dropped
    degraded = WorkloadRequest(rng, &real);
  }
  FailpointClearAll();
  EXPECT_EQ(degraded.degraded_users, 1u);

  // Same query size, same upload count, same per-upload byte size: the
  // LSP (and any observer of the wire) cannot tell who dropped.
  EXPECT_EQ(degraded.query.size(), healthy.query.size());
  ASSERT_EQ(degraded.uploads.size(), healthy.uploads.size());
  for (size_t u = 0; u < healthy.uploads.size(); ++u) {
    EXPECT_EQ(degraded.uploads[u].size(), healthy.uploads[u].size())
        << "upload " << u;
  }

  // And the degraded query still serves end-to-end: delta' candidates,
  // k decodable POIs — just not necessarily the group-optimal ones.
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);
  std::vector<uint8_t> frame = service.Call(std::move(degraded));
  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  EXPECT_EQ(reply.pois.size(), static_cast<size_t>(GroupParams().k));
  service.Shutdown();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.degraded_queries, 1u);
  EXPECT_EQ(stats.totals.degraded_users, 1u);
  EXPECT_EQ(stats.totals.delta_prime, 8u);
}

// Invariant 1 + retry classification: transient rejects are retried and
// the final answer is exactly correct.
TEST_F(ChaosTest, RetriesRecoverFromTransientOverload) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,times=2").ok());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.001;
  ResilientClient client(service, policy);

  Rng rng(51);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered)
      << ResponseFrame::Decode(outcome.frame).value().error.detail;
  EXPECT_EQ(outcome.attempts, 3);  // two injected rejects, then success
  ExpectExactAnswer(outcome.frame, real);

  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.retries, 2u);
  EXPECT_EQ(cs.answers, 1u);
  EXPECT_EQ(service.Stats().retries, 2u);
  service.Shutdown();
}

TEST_F(ChaosTest, TerminalErrorIsNotRetried) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  RetryPolicy policy;
  policy.max_attempts = 5;
  ResilientClient client(service, policy);

  ServiceRequest garbage;
  garbage.query = {0xDE, 0xAD};
  ClientCallOutcome outcome = client.Call(std::move(garbage));
  EXPECT_FALSE(outcome.answered);
  EXPECT_EQ(outcome.attempts, 1);  // malformed: resending cannot help
  EXPECT_EQ(outcome.error.code, WireError::kMalformed);
  ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kMalformed);
  EXPECT_EQ(client.Stats().terminal_errors, 1u);
  service.Shutdown();
}

// Invariant 2: a persistently failing service cannot drag a call past
// its budget, and the caller still gets a structured error.
TEST_F(ChaosTest, RetriesRespectTheDeadlineBudget) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop").ok());

  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.total_budget_seconds = 0.25;
  policy.initial_backoff_seconds = 0.005;
  policy.max_backoff_seconds = 0.05;
  ResilientClient client(service, policy);

  Rng rng(52);
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
  EXPECT_FALSE(outcome.answered);
  // Rejects are inline and instant; only backoffs consume time, and the
  // budget caps them. Generous slop for loaded CI machines.
  EXPECT_LE(outcome.elapsed_seconds, 0.25 + 0.2);
  EXPECT_GT(outcome.attempts, 1);
  ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kOverloaded);
  EXPECT_EQ(client.Stats().budget_exhausted, 1u);
  service.Shutdown();
}

TEST_F(ChaosTest, HedgeWinsWhenPrimaryStalls) {
  ServiceConfig config;
  config.workers = 2;  // room for primary + hedge to run concurrently
  config.sanitize = false;
  LspService service(*db_, config);

  // Only the first execution stalls; the hedge runs clean.
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:500,times=1").ok());

  RetryPolicy policy;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.03;
  // This test wants a genuine race: with idempotency tagging the hedge
  // would join the stalled primary (see HedgedDuplicateCoalesces below)
  // instead of executing independently and winning.
  policy.tag_idempotency = false;
  ResilientClient client(service, policy);

  Rng rng(53);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered);
  EXPECT_EQ(outcome.hedges, 1);
  EXPECT_TRUE(outcome.hedge_won);
  ExpectExactAnswer(outcome.frame, real);
  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.hedges, 1u);
  EXPECT_EQ(cs.hedge_wins, 1u);
  EXPECT_EQ(service.Stats().hedges, 1u);
  service.Shutdown();
}

// A corrupted reply is detectable garbage (frame CRC), classified as
// transient, and the retry recovers the exact answer.
TEST_F(ChaosTest, CorruptReplyIsRetriedAndRecovered) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.reply=corrupt:3,times=1").ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.001;
  ResilientClient client(service, policy);

  Rng rng(54);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered);
  EXPECT_EQ(outcome.attempts, 2);
  ExpectExactAnswer(outcome.frame, real);
  EXPECT_EQ(client.Stats().transport_garbage, 1u);
  service.Shutdown();
}

// Injected failures below the service layer (crypto, candidate loop)
// surface as structured internal errors, not crashes.
TEST_F(ChaosTest, LspLayerFaultsYieldStructuredErrors) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);
  RetryPolicy policy;
  policy.max_attempts = 1;
  ResilientClient client(service, policy);

  Rng rng(55);
  for (const char* spec :
       {"lsp.process=error:malformed,times=1", "lsp.candidate=error,times=1",
        "lsp.select=error:crypto,times=1"}) {
    // Build the (healthy) request before arming so the fault hits the
    // serving path, not the coordinator's own encryption.
    ServiceRequest request = WorkloadRequest(rng);
    ASSERT_TRUE(FailpointSetFromSpec(spec).ok()) << spec;
    ClientCallOutcome outcome = client.Call(std::move(request));
    EXPECT_FALSE(outcome.answered) << spec;
    ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
    ASSERT_TRUE(decoded.is_error) << spec;
    FailpointClearAll();
  }
  // With everything cleared the same client serves exactly again.
  std::vector<Point> real;
  ClientCallOutcome healthy = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(healthy.answered);
  ExpectExactAnswer(healthy.frame, real);
  service.Shutdown();
}

// Crypto-layer failpoints surface as clean Results at the Paillier entry
// points (the coordinator side of the protocol).
TEST_F(ChaosTest, PaillierFailpointsReturnCleanErrors) {
  Rng rng(56);
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  Ciphertext good = enc.Encrypt(BigInt(42), rng, 1).value();

  ASSERT_TRUE(FailpointSetFromSpec("paillier.encrypt=error:crypto,times=1")
                  .ok());
  Result<Ciphertext> blocked = enc.Encrypt(BigInt(7), rng, 1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kCryptoError);
  // times=1 exhausted: encryption works again.
  EXPECT_TRUE(enc.Encrypt(BigInt(7), rng, 1).ok());

  ASSERT_TRUE(FailpointSetFromSpec("paillier.decrypt=error:crypto,times=1")
                  .ok());
  EXPECT_FALSE(dec.Decrypt(good).ok());
  EXPECT_EQ(dec.Decrypt(good).value(), BigInt(42));
}

// The scripted schedule: a stream of requests against a service with
// several probabilistic failpoints armed at once, seeded from
// PPGNN_CHAOS_SEED. Every call must end inside its budget with either
// an exact answer (healthy request) or a decodable frame.
TEST_F(ChaosTest, ScriptedScheduleNeverCrashesHangsOrLies) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("PPGNN_CHAOS_SEED=" + std::to_string(seed));

  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,p=0.15,seed=" +
                                   std::to_string(seed))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("service.reply=corrupt:2,p=0.1,seed=" +
                                   std::to_string(seed + 1))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("user.upload=drop,p=0.1,seed=" +
                                   std::to_string(seed + 2))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:20,p=0.2,seed=" +
                                   std::to_string(seed + 3))
                  .ok());
  ASSERT_TRUE(FailpointSetFromSpec("lsp.candidate=error,p=0.05,seed=" +
                                   std::to_string(seed + 4))
                  .ok());

  constexpr double kBudget = 2.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.total_budget_seconds = kBudget;
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.02;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.2;
  policy.seed = seed;
  ResilientClient client(service, policy);

  Rng rng(9000 + seed);
  int answered = 0, exact_checked = 0, structured_errors = 0, degraded = 0;
  for (int i = 0; i < 25; ++i) {
    std::vector<Point> real;
    ServiceRequest request = WorkloadRequest(rng, &real);
    const bool is_degraded = request.degraded_users > 0;
    ClientCallOutcome outcome = client.Call(std::move(request));

    // Never a hang past the budget (wide slop: a slow execution that
    // beat the in-queue deadline check may finish its full query).
    EXPECT_LT(outcome.elapsed_seconds, kBudget + 2.0) << "request " << i;
    // Never an undecodable reply.
    Result<ResponseFrame> decoded = ResponseFrame::Decode(outcome.frame);
    ASSERT_TRUE(decoded.ok()) << "request " << i << ": "
                              << decoded.status().ToString();
    if (outcome.answered) {
      ++answered;
      if (is_degraded) {
        ++degraded;
        // Degraded: still k decodable POIs, just not reference-exact.
        Decryptor dec(keys_->pub, keys_->sec);
        ServedReply reply =
            ParseServedReply(outcome.frame, *keys_, dec, /*layered=*/false)
                .value();
        ASSERT_TRUE(reply.ok);
        EXPECT_EQ(reply.pois.size(), static_cast<size_t>(GroupParams().k));
      } else {
        // Healthy and answered: the answer must be exactly right —
        // corruption or faults may delay it, never falsify it.
        ExpectExactAnswer(outcome.frame, real);
        ++exact_checked;
      }
    } else {
      ++structured_errors;
      EXPECT_TRUE(decoded.value().is_error);
    }
  }
  FailpointClearAll();
  service.Shutdown();

  // The schedule must actually exercise both outcomes and the checks.
  EXPECT_GT(answered, 0);
  EXPECT_GT(exact_checked, 0);
  EXPECT_EQ(answered + structured_errors, 25);

  ServiceStats stats = service.Stats();
  // Every degraded request the client saw answered was served at least
  // once (a hedge pair can be served twice, so >= not ==).
  EXPECT_GE(stats.degraded_queries, static_cast<uint64_t>(degraded));
  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.calls, 25u);
  EXPECT_GE(cs.attempts, cs.calls);
}

// With idempotency tagging on (the default), a hedge is not a second
// execution: it joins the stalled primary server-side and both legs get
// the same frame from the one run of the crypto pipeline.
TEST_F(ChaosTest, HedgedDuplicateCoalescesIntoOneExecution) {
  ServiceConfig config;
  config.workers = 2;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:100,times=1").ok());

  RetryPolicy policy;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.01;
  ASSERT_TRUE(policy.tag_idempotency);  // the default under test
  ResilientClient client(service, policy);

  Rng rng(57);
  std::vector<Point> real;
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng, &real));
  ASSERT_TRUE(outcome.answered);
  EXPECT_EQ(outcome.hedges, 1);
  ExpectExactAnswer(outcome.frame, real);

  service.Shutdown();
  ServiceStats stats = service.Stats();
  // One accepted execution; the hedge was a dedup join, not a second run.
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.dedup_joins, 1u);
  EXPECT_EQ(stats.hedges, 1u);
}

// The acceptance check for dedup delivery: both legs of a duplicate pair
// receive bit-identical frames from the single execution.
TEST_F(ChaosTest, DuplicateLegsReceiveBitIdenticalFrames) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  // Stall the primary's execution so the duplicate provably arrives
  // while the original is still in flight.
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:50,times=1").ok());

  Rng rng(58);
  std::vector<Point> real;
  ServiceRequest request = WorkloadRequest(rng, &real);
  request.idempotency_key = 0xD00DFEEDull;
  ServiceRequest duplicate = request;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<uint8_t>> frames;
  auto collect = [&](std::vector<uint8_t> f) {
    std::lock_guard<std::mutex> lock(mu);
    frames.push_back(std::move(f));
    cv.notify_all();
  };
  ASSERT_TRUE(service.Submit(std::move(request), collect));
  ASSERT_TRUE(service.Submit(std::move(duplicate), collect));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return frames.size() == 2; }));
  }

  EXPECT_EQ(frames[0], frames[1]);
  ExpectExactAnswer(frames[0], real);
  service.Shutdown();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.dedup_joins, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.accepted, 1u);
}

// Overload storm: a burst far beyond capacity against a tiny queue. The
// service must shed with actionable hints, keep every reply decodable,
// and never abandon a query it already started crypto on.
TEST_F(ChaosTest, OverloadStormShedsCleanlyAndNeverAbandonsStartedWork) {
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 4;
  config.sanitize = false;
  LspService service(*db_, config);

  // Every execution drags an extra 30 ms, so the burst below is several
  // times capacity for the 300 ms budgets it carries.
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:30").ok());

  constexpr int kBurst = 30;
  Rng rng(59);
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < kBurst; ++i) {
    ServiceRequest request = WorkloadRequest(rng);
    request.deadline_seconds = 0.3;
    requests.push_back(std::move(request));
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<uint8_t>> frames;
  for (ServiceRequest& request : requests) {
    (void)service.Submit(std::move(request), [&](std::vector<uint8_t> f) {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(std::move(f));
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return frames.size() == kBurst; }));
  }
  service.Shutdown();

  int answers = 0, overloaded = 0, deadline = 0;
  for (const std::vector<uint8_t>& frame : frames) {
    ResponseFrame decoded = ResponseFrame::Decode(frame).value();
    if (!decoded.is_error) {
      ++answers;
      continue;
    }
    if (decoded.error.code == WireError::kOverloaded) {
      ++overloaded;
      // Every shed/reject carries a usable backpressure hint.
      EXPECT_GT(decoded.error.retry_after_ms, 0u);
    } else {
      EXPECT_EQ(decoded.error.code, WireError::kDeadlineExceeded);
      ++deadline;
    }
  }
  EXPECT_EQ(answers + overloaded + deadline, kBurst);
  EXPECT_GT(answers, 0);     // the service did not collapse under the storm
  EXPECT_GT(overloaded, 0);  // and it did push back

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted + stats.rejected, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(stats.accepted,
            stats.served + stats.failed + stats.deadline_expired);
  // The core overload guarantee: work, once started, is finished. Every
  // deadline casualty was caught before its crypto began.
  EXPECT_EQ(stats.abandoned_executing, 0u);
  EXPECT_EQ(stats.deadline_expired, stats.expired_in_queue);
}

// Budget exhaustion with a hedge still in flight: the caller gets exactly
// one decodable terminal frame at the budget edge, and the late legs are
// absorbed without leaking or crashing.
TEST_F(ChaosTest, BudgetExhaustionWithHedgeInFlightYieldsOneTerminalFrame) {
  ServiceConfig config;
  config.workers = 2;
  config.sanitize = false;
  LspService service(*db_, config);

  // Both the primary and the hedge stall far past the client's budget.
  ASSERT_TRUE(FailpointSetFromSpec("service.execute=delay:400").ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.total_budget_seconds = 0.1;
  policy.hedge = true;
  policy.hedge_delay_seconds = 0.01;
  ResilientClient client(service, policy);

  Rng rng(63);
  ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
  EXPECT_FALSE(outcome.answered);
  // Returned at the budget edge, not after the 400 ms stall.
  EXPECT_LT(outcome.elapsed_seconds, 0.35);
  ResponseFrame decoded = ResponseFrame::Decode(outcome.frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_TRUE(decoded.error.code == WireError::kOverloaded ||
              decoded.error.code == WireError::kDeadlineExceeded)
      << WireErrorToString(decoded.error.code);

  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.calls, 1u);
  EXPECT_EQ(cs.answers, 0u);
  EXPECT_EQ(cs.budget_exhausted, 1u);

  // The stalled legs are still executing. Shutdown drains them; their
  // late replies must land in the (still-alive) client without incident
  // — the no-leaked-callback half of the contract.
  service.Shutdown();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted,
            stats.served + stats.failed + stats.deadline_expired);
}

// The retry_after_ms hint steers the client's backoff in both
// directions: a small hint must beat the configured exponential
// schedule, a large hint must override a tiny one — and the hint is
// always capped against the remaining budget.
TEST_F(ChaosTest, RetryAfterHintShortensAndLengthensBackoff) {
  Rng rng(64);

  // Hint far below the exponential schedule: two retries would cost
  // 50 + 100 ms of configured backoff, but the 1 ms hint wins.
  {
    ServiceConfig config;
    config.workers = 1;
    config.sanitize = false;
    config.retry_after_hint_ms = 1;
    LspService service(*db_, config);
    ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,times=2").ok());
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff_seconds = 0.050;
    policy.backoff_multiplier = 2.0;
    policy.jitter_fraction = 0.0;
    ResilientClient client(service, policy);
    ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
    FailpointClearAll();
    ASSERT_TRUE(outcome.answered);
    EXPECT_EQ(outcome.attempts, 3);
    EXPECT_LT(outcome.elapsed_seconds, 0.120);  // << the 150 ms schedule
    EXPECT_EQ(client.Stats().retry_after_honored, 2u);
    service.Shutdown();
  }

  // Hint far above the exponential schedule: the client waits as told.
  {
    ServiceConfig config;
    config.workers = 1;
    config.sanitize = false;
    config.retry_after_hint_ms = 150;
    LspService service(*db_, config);
    ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop,times=1").ok());
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 0.001;
    policy.jitter_fraction = 0.0;
    ResilientClient client(service, policy);
    ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
    FailpointClearAll();
    ASSERT_TRUE(outcome.answered);
    EXPECT_EQ(outcome.attempts, 2);
    EXPECT_GE(outcome.elapsed_seconds, 0.140);  // >> the 1 ms schedule
    EXPECT_EQ(client.Stats().retry_after_honored, 1u);
    service.Shutdown();
  }

  // Hint past the remaining budget: the client gives up immediately
  // instead of sleeping into a deadline it cannot make.
  {
    ServiceConfig config;
    config.workers = 1;
    config.sanitize = false;
    config.retry_after_hint_ms = 5000;
    LspService service(*db_, config);
    ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop").ok());
    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.total_budget_seconds = 0.2;
    ResilientClient client(service, policy);
    ClientCallOutcome outcome = client.Call(WorkloadRequest(rng));
    FailpointClearAll();
    EXPECT_FALSE(outcome.answered);
    EXPECT_LT(outcome.elapsed_seconds, 0.2);  // no 5 s sleep happened
    EXPECT_EQ(client.Stats().budget_exhausted, 1u);
    service.Shutdown();
  }
}

// Circuit breaker: consecutive overloaded replies open it, an open
// breaker fast-fails locally without touching the server, and a
// successful half-open probe closes it again.
TEST_F(ChaosTest, CircuitBreakerOpensFastFailsAndRecovers) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  ASSERT_TRUE(FailpointSetFromSpec("service.admit=drop").ok());

  RetryPolicy policy;
  policy.max_attempts = 1;  // each Call is one decisive observation
  policy.breaker_threshold = 3;
  policy.breaker_cooldown_seconds = 0.05;
  ResilientClient client(service, policy);

  Rng rng(65);
  ServiceRequest request = WorkloadRequest(rng);

  // Three consecutive overloaded replies trip the breaker.
  for (int i = 0; i < 3; ++i) {
    ClientCallOutcome outcome = client.Call(request);
    EXPECT_FALSE(outcome.answered);
    EXPECT_EQ(outcome.error.code, WireError::kOverloaded);
  }
  EXPECT_EQ(client.Stats().breaker_opens, 1u);
  const uint64_t server_rejects = service.Stats().rejected;
  EXPECT_EQ(server_rejects, 3u);

  // While open (cooldown not yet elapsed): local fast-fail. The frame is
  // still a decodable structured error with a cooldown hint, and the
  // server never sees the attempt.
  ClientCallOutcome fast = client.Call(request);
  EXPECT_FALSE(fast.answered);
  EXPECT_EQ(fast.error.code, WireError::kOverloaded);
  EXPECT_GT(fast.error.retry_after_ms, 0u);
  EXPECT_EQ(client.Stats().breaker_fast_fails, 1u);
  EXPECT_EQ(service.Stats().rejected, server_rejects);  // unchanged

  // Heal the service, wait out the cooldown: the next call is the
  // half-open probe, it succeeds, and the breaker closes for good.
  FailpointClearAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ClientCallOutcome probe = client.Call(request);
  EXPECT_TRUE(probe.answered);
  ClientCallOutcome after = client.Call(WorkloadRequest(rng));
  EXPECT_TRUE(after.answered);
  ClientStats cs = client.Stats();
  EXPECT_EQ(cs.breaker_opens, 1u);
  EXPECT_EQ(cs.breaker_fast_fails, 1u);
  EXPECT_EQ(cs.answers, 2u);
  service.Shutdown();
}

// A shard cluster with one link both failing and slow: every query must
// still complete with an answer frame (a degraded merge, never an error
// or a hang), the degradation must be counted, and no query may be
// abandoned after its crypto ran.
TEST_F(ChaosTest, SickShardLinkDegradesMergesWithoutFailingQueries) {
  ShardClusterConfig config;
  config.shards = 4;
  config.front.workers = 2;
  config.front.sanitize = false;
  config.shard.workers = 2;
  config.link_policy.max_attempts = 2;
  config.link_policy.total_budget_seconds = 0.5;
  ShardedLspService cluster(GenerateSequoiaLike(3000, 777), config);

  const uint64_t seed = ChaosSeed();
  // Link 2 errors on most legs and is slow on the rest — the retry layer
  // sees a shard that is simultaneously flaky and missing its SLO.
  ASSERT_TRUE(FailpointSetFromSpec("shard.link.2=error,p=0.8,seed=" +
                                   std::to_string(seed))
                  .ok());
  ASSERT_TRUE(
      FailpointSetFromSpec("service.execute=delay:20,p=0.3,seed=" +
                           std::to_string(seed + 1))
          .ok());

  Rng rng(seed * 1000 + 70);
  constexpr int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    std::vector<Point> real;
    ServiceRequest request = WorkloadRequest(rng, &real);
    request.deadline_seconds = 10.0;
    std::vector<uint8_t> frame = cluster.Call(std::move(request));
    Decryptor dec(keys_->pub, keys_->sec);
    ServedReply reply =
        ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
    ASSERT_TRUE(reply.ok) << "query " << i << ": " << reply.error.detail;
  }

  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.served, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.degraded_shards, 1u);
  EXPECT_EQ(stats.abandoned_executing, 0u);
  cluster.Shutdown();
}

// Replicated kill-storm: S=4, R=2, one primary hard down and the other
// primaries flaky or slow — while replica 1 of every set stays clean.
// Unlike the single-replica storm above, the acceptance bar is *zero*
// degraded merges: the ladder absorbs every primary loss and each query
// ends in an exact answer.
TEST_F(ChaosTest, ReplicatedKillStormServesExactAnswersWithZeroDegraded) {
  ShardClusterConfig config;
  config.shards = 4;
  config.replicas = 2;
  config.front.workers = 2;
  config.front.sanitize = false;
  config.shard.workers = 2;
  config.link_policy.max_attempts = 2;
  config.link_policy.total_budget_seconds = 0.5;
  config.hedge_delay_seconds = 0.01;
  ShardedLspService cluster(GenerateSequoiaLike(3000, 777), config);

  const uint64_t seed = ChaosSeed();
  // Shard 2's primary is dead outright; shard 0's is slow AND flaky via
  // two stacked policies on one point (the composed --fail semantics);
  // shards 1 and 3 get probabilistic errors and delays.
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.2.0=error").ok());
  ASSERT_TRUE(FailpointAddFromSpec("shard.replica.0.0=delay:10,p=0.5,seed=" +
                                   std::to_string(seed))
                  .ok());
  ASSERT_TRUE(FailpointAddFromSpec("shard.replica.0.0=error,p=0.3,seed=" +
                                   std::to_string(seed + 1))
                  .ok());
  ASSERT_TRUE(FailpointAddFromSpec("shard.replica.1.0=error,p=0.5,seed=" +
                                   std::to_string(seed + 2))
                  .ok());
  ASSERT_TRUE(FailpointAddFromSpec("shard.replica.3.0=delay:15,p=0.4,seed=" +
                                   std::to_string(seed + 3))
                  .ok());

  Rng rng(seed * 1000 + 80);
  constexpr int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    std::vector<Point> real;
    ServiceRequest request = WorkloadRequest(rng, &real);
    request.deadline_seconds = 10.0;
    std::vector<uint8_t> frame = cluster.Call(std::move(request));
    // Exact — not merely answered: a lost primary must not cost a POI.
    ExpectExactAnswer(frame, real);
  }

  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.served, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded_shards, 0u);
  EXPECT_GE(stats.exact_despite_failures, 1u);
  EXPECT_GE(stats.replica_failovers + stats.replica_hedge_wins, 1u);
  EXPECT_GE(stats.health_transitions, 1u);
  cluster.Shutdown();
}

}  // namespace
}  // namespace ppgnn
