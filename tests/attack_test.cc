#include "core/attack.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "geo/aggregate.h"

namespace ppgnn {
namespace {

TEST(AttackTest, FewerThanTwoPoisAlwaysSatisfied) {
  InequalityAttack none({}, {}, AggregateKind::kSum);
  EXPECT_TRUE(none.Satisfies({0.5, 0.5}));
  InequalityAttack one({{0.1, 0.1}}, {{0.5, 0.5}}, AggregateKind::kSum);
  EXPECT_TRUE(one.Satisfies({0.9, 0.9}));
  EXPECT_EQ(one.NumInequalities(), 0u);
}

TEST(AttackTest, SingleUserBisectorGeometry) {
  // No colluders, answer (p1, p2): the solution region is the half-plane
  // nearer to p1 — the classic kNN inversion.
  InequalityAttack attack({}, {{0.25, 0.5}, {0.75, 0.5}},
                          AggregateKind::kSum);
  EXPECT_TRUE(attack.Satisfies({0.1, 0.5}));    // closer to p1
  EXPECT_FALSE(attack.Satisfies({0.9, 0.5}));   // closer to p2
  EXPECT_TRUE(attack.Satisfies({0.5, 0.9}));    // on the bisector (<=)
  // Monte-Carlo fraction should be ~0.5.
  Rng rng(1);
  EXPECT_NEAR(attack.EstimateRegionFraction(rng, 20000), 0.5, 0.02);
}

TEST(AttackTest, SatisfiesMatchesDirectDefinition) {
  // Cross-check the partial-aggregate fast path against a direct
  // evaluation of Eqn 14 for all three aggregate kinds.
  Rng rng(2);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<Point> colluders;
      for (int i = 0; i < 4; ++i)
        colluders.push_back({rng.NextDouble(), rng.NextDouble()});
      std::vector<Point> answer;
      for (int i = 0; i < 5; ++i)
        answer.push_back({rng.NextDouble(), rng.NextDouble()});
      InequalityAttack attack(colluders, answer, kind);
      for (int s = 0; s < 20; ++s) {
        Point candidate{rng.NextDouble(), rng.NextDouble()};
        // Direct: F(p_i, C) with C = colluders + candidate.
        std::vector<Point> full = colluders;
        full.push_back(candidate);
        bool direct = true;
        for (size_t i = 0; i + 1 < answer.size(); ++i) {
          if (AggregateCost(kind, answer[i], full) >
              AggregateCost(kind, answer[i + 1], full)) {
            direct = false;
            break;
          }
        }
        EXPECT_EQ(attack.Satisfies(candidate), direct)
            << AggregateKindToString(kind) << " trial " << trial;
      }
    }
  }
}

TEST(AttackTest, RealLocationAlwaysInRegion) {
  // Soundness: the target's true location always satisfies the
  // inequalities derived from a correctly ranked answer.
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> group;
    for (int i = 0; i < 5; ++i)
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    // Build a ranked "answer" by sorting random POIs by true cost.
    std::vector<Point> pois;
    for (int i = 0; i < 6; ++i)
      pois.push_back({rng.NextDouble(), rng.NextDouble()});
    std::sort(pois.begin(), pois.end(), [&](const Point& a, const Point& b) {
      return AggregateCost(AggregateKind::kSum, a, group) <
             AggregateCost(AggregateKind::kSum, b, group);
    });
    // Collude against user 0.
    std::vector<Point> colluders(group.begin() + 1, group.end());
    InequalityAttack attack(colluders, pois, AggregateKind::kSum);
    EXPECT_TRUE(attack.Satisfies(group[0])) << "trial " << trial;
  }
}

TEST(AttackTest, LongerPrefixShrinksRegion) {
  // More inequalities can only cut the region down (monotonicity).
  Rng rng(4);
  std::vector<Point> colluders = {{0.2, 0.3}, {0.7, 0.8}};
  std::vector<Point> answer;
  for (int i = 0; i < 8; ++i)
    answer.push_back({rng.NextDouble(), rng.NextDouble()});
  // Sort answer by cost w.r.t. some plausible group to get a realistic
  // ranking.
  std::vector<Point> group = colluders;
  group.push_back({0.5, 0.5});
  std::sort(answer.begin(), answer.end(), [&](const Point& a, const Point& b) {
    return AggregateCost(AggregateKind::kSum, a, group) <
           AggregateCost(AggregateKind::kSum, b, group);
  });
  double prev = 1.0;
  for (size_t t = 2; t <= answer.size(); ++t) {
    std::vector<Point> prefix(answer.begin(), answer.begin() + t);
    InequalityAttack attack(colluders, prefix, AggregateKind::kSum);
    Rng est_rng(100 + t);
    double frac = attack.EstimateRegionFraction(est_rng, 4000);
    EXPECT_LE(frac, prev + 0.03) << "t=" << t;  // MC noise tolerance
    prev = frac;
  }
}

TEST(AttackTest, Figure1StyleAttackShrinksRegionBelowHalf) {
  // Recreate the paper's Figure 1 narrative: colluders close together,
  // answer POIs ranked; the victim's region should be well under the
  // whole space.
  std::vector<Point> colluders = {{0.8, 0.2}, {0.85, 0.3}};
  std::vector<Point> answer = {{0.5, 0.5}, {0.2, 0.2}, {0.9, 0.9},
                               {0.1, 0.8}};
  // Rank the POIs correctly for a victim at (0.3, 0.6).
  Point victim{0.3, 0.6};
  std::vector<Point> group = colluders;
  group.push_back(victim);
  std::sort(answer.begin(), answer.end(), [&](const Point& a, const Point& b) {
    return AggregateCost(AggregateKind::kSum, a, group) <
           AggregateCost(AggregateKind::kSum, b, group);
  });
  InequalityAttack attack(colluders, answer, AggregateKind::kSum);
  EXPECT_TRUE(attack.Satisfies(victim));
  Rng rng(5);
  double frac = attack.EstimateRegionFraction(rng, 20000);
  EXPECT_LT(frac, 0.6);
  EXPECT_GT(frac, 0.0);
}

TEST(AttackTest, CustomSpaceSampling) {
  Rect space{0.0, 0.0, 2.0, 2.0};
  InequalityAttack attack({}, {{0.5, 1.0}, {1.5, 1.0}}, AggregateKind::kSum,
                          space);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    Point p = attack.SamplePoint(rng);
    EXPECT_TRUE(space.Contains(p));
  }
  // Bisector splits the 2x2 space evenly too.
  EXPECT_NEAR(attack.EstimateRegionFraction(rng, 20000), 0.5, 0.02);
}

TEST(AttackTest, ZeroSamplesGiveZeroFraction) {
  InequalityAttack attack({}, {{0.1, 0.1}, {0.9, 0.9}}, AggregateKind::kSum);
  Rng rng(7);
  EXPECT_EQ(attack.EstimateRegionFraction(rng, 0), 0.0);
}

}  // namespace
}  // namespace ppgnn
