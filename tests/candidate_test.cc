#include "core/candidate.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ppgnn {
namespace {

std::vector<LocationSet> RandomSets(int n, int d, Rng& rng) {
  std::vector<LocationSet> sets(n);
  for (LocationSet& set : sets) {
    set.resize(d);
    for (Point& p : set) p = {rng.NextDouble(), rng.NextDouble()};
  }
  return sets;
}

PartitionPlan PaperPlan() {
  // Figure 3's setup: n = 4, d = 4, alpha = 2, n_bar = (2,2),
  // d_bar = (2,2), delta' = 8.
  PartitionPlan plan;
  plan.alpha = 2;
  plan.n_bar = {2, 2};
  plan.d_bar = {2, 2};
  plan.delta_prime = 8;
  return plan;
}

TEST(SubgroupOfUserTest, MapsUsersInOrder) {
  PartitionPlan plan;
  plan.alpha = 3;
  plan.n_bar = {2, 1, 3};
  EXPECT_EQ(SubgroupOfUser(plan), (std::vector<int>{0, 0, 1, 2, 2, 2}));
}

TEST(CandidateTest, CountMatchesDeltaPrime) {
  Rng rng(1);
  PartitionPlan plan = PaperPlan();
  auto sets = RandomSets(4, 4, rng);
  auto candidates = GenerateCandidateQueries(plan, sets).value();
  EXPECT_EQ(candidates.size(), 8u);
  for (const auto& c : candidates) EXPECT_EQ(c.size(), 4u);
}

TEST(CandidateTest, PaperFigure3Layout) {
  // Build location sets whose entries encode (user, position) so we can
  // check the exact cartesian-product layout of Figure 3c.
  PartitionPlan plan = PaperPlan();
  std::vector<LocationSet> sets(4);
  for (int u = 0; u < 4; ++u) {
    sets[u].resize(4);
    for (int pos = 0; pos < 4; ++pos) {
      sets[u][pos] = {static_cast<double>(u), static_cast<double>(pos)};
    }
  }
  auto candidates = GenerateCandidateQueries(plan, sets).value();
  ASSERT_EQ(candidates.size(), 8u);
  // Candidate C1 (index 0): segment 1, both subgroups at position 1
  // -> every user contributes its 0-based position 0.
  for (int u = 0; u < 4; ++u) EXPECT_EQ(candidates[0][u].y, 0.0);
  // Candidate C2: subgroup1 (users 0,1) at position 1, subgroup2 (users
  // 2,3) at position 2 of segment 1.
  EXPECT_EQ(candidates[1][0].y, 0.0);
  EXPECT_EQ(candidates[1][1].y, 0.0);
  EXPECT_EQ(candidates[1][2].y, 1.0);
  EXPECT_EQ(candidates[1][3].y, 1.0);
  // Candidate C5 (index 4): first candidate of segment 2 -> position 3
  // (0-based 2) for everyone.
  for (int u = 0; u < 4; ++u) EXPECT_EQ(candidates[4][u].y, 2.0);
  // Candidate C7 (index 6, QI = 7): the paper's real query — subgroup1 on
  // the 2nd position of segment 2, subgroup2 on the 1st.
  EXPECT_EQ(candidates[6][0].y, 3.0);
  EXPECT_EQ(candidates[6][1].y, 3.0);
  EXPECT_EQ(candidates[6][2].y, 2.0);
  EXPECT_EQ(candidates[6][3].y, 2.0);
}

TEST(CandidateTest, RealQueryAppearsAtQueryIndex) {
  // End-to-end consistency of Eqn 12 with the enumeration order, across
  // every (seg, x) choice.
  Rng rng(2);
  PartitionPlan plan;
  plan.alpha = 2;
  plan.n_bar = {3, 2};
  plan.d_bar = {3, 2};
  plan.delta_prime = 9 + 4;
  const int n = 5, d = 5;
  for (int seg = 1; seg <= plan.beta(); ++seg) {
    for (int x1 = 1; x1 <= plan.d_bar[seg - 1]; ++x1) {
      for (int x2 = 1; x2 <= plan.d_bar[seg - 1]; ++x2) {
        auto sets = RandomSets(n, d, rng);
        // Arrange "real" locations per the protocol: subgroup j's users
        // put theirs at absolute position offset + x_j.
        std::vector<int> subgroup = SubgroupOfUser(plan);
        std::vector<int> x = {x1, x2};
        std::vector<Point> real(n);
        for (int u = 0; u < n; ++u) {
          int abs_pos = plan.SegmentOffset(seg) - 1 + x[subgroup[u]] - 1;
          real[u] = sets[u][abs_pos];
        }
        uint64_t qi = QueryIndex(plan, seg, x);
        auto candidates = GenerateCandidateQueries(plan, sets).value();
        ASSERT_LE(qi, candidates.size());
        EXPECT_EQ(candidates[qi - 1], real);
      }
    }
  }
}

TEST(CandidateTest, CandidateQueryAtMatchesFullEnumeration) {
  Rng rng(3);
  PartitionPlan plan;
  plan.alpha = 3;
  plan.n_bar = {1, 1, 2};
  plan.d_bar = {2, 2, 1};
  plan.delta_prime = 8 + 8 + 1;
  auto sets = RandomSets(4, 5, rng);
  auto all = GenerateCandidateQueries(plan, sets).value();
  ASSERT_EQ(all.size(), plan.delta_prime);
  for (uint64_t qi = 1; qi <= plan.delta_prime; ++qi) {
    EXPECT_EQ(CandidateQueryAt(plan, sets, qi).value(), all[qi - 1]);
  }
  EXPECT_FALSE(CandidateQueryAt(plan, sets, 0).ok());
  EXPECT_FALSE(CandidateQueryAt(plan, sets, plan.delta_prime + 1).ok());
}

TEST(CandidateTest, ValidatesSetSizes) {
  Rng rng(4);
  PartitionPlan plan = PaperPlan();
  auto sets = RandomSets(4, 3, rng);  // wrong d
  EXPECT_FALSE(GenerateCandidateQueries(plan, sets).ok());
  auto sets2 = RandomSets(3, 4, rng);  // wrong n
  EXPECT_FALSE(GenerateCandidateQueries(plan, sets2).ok());
}

TEST(CandidateTest, SolvedPlansProduceDeltaPrimeCandidates) {
  Rng rng(5);
  for (int n : {2, 4, 8}) {
    for (int delta : {25, 60, 100}) {
      PartitionPlan plan = SolvePartition(n, 25, delta).value();
      auto sets = RandomSets(n, 25, rng);
      auto candidates = GenerateCandidateQueries(plan, sets).value();
      EXPECT_EQ(candidates.size(), plan.delta_prime);
    }
  }
}

TEST(CandidateTest, AllCandidatesDistinctForDistinctLocations) {
  Rng rng(6);
  PartitionPlan plan = SolvePartition(4, 10, 50).value();
  auto sets = RandomSets(4, 10, rng);
  auto candidates = GenerateCandidateQueries(plan, sets).value();
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_NE(candidates[i], candidates[j]);
    }
  }
}

}  // namespace
}  // namespace ppgnn
