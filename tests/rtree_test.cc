#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "spatial/dataset.h"
#include "spatial/knn.h"

namespace ppgnn {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree = RTree::Build({});
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.RangeQuery({0, 0, 1, 1}).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, SinglePoi) {
  RTree tree = RTree::Build({{7, {0.5, 0.5}}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto hits = tree.RangeQuery({0.4, 0.4, 0.6, 0.6});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
}

class RTreeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeSizeTest, InvariantsHoldAtAllSizes) {
  size_t size = GetParam();
  RTree tree = RTree::Build(GenerateUniform(size, size * 31 + 1));
  EXPECT_EQ(tree.Size(), size);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeSizeTest,
                         ::testing::Values<size_t>(1, 2, 15, 16, 17, 255, 256,
                                                   257, 1000, 5000));

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree small = RTree::Build(GenerateUniform(16, 1));
  EXPECT_EQ(small.Height(), 1);
  RTree medium = RTree::Build(GenerateUniform(17, 2));
  EXPECT_EQ(medium.Height(), 2);
  RTree large = RTree::Build(GenerateUniform(5000, 3));
  EXPECT_LE(large.Height(), 4);  // 16^3 = 4096 < 5000 <= 16^4
  EXPECT_GE(large.Height(), 3);
}

TEST(RTreeTest, RangeQueryMatchesLinearScan) {
  std::vector<Poi> pois = GenerateUniform(2000, 42);
  RTree tree = RTree::Build(pois);
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    double x0 = rng.NextDouble() * 0.8;
    double y0 = rng.NextDouble() * 0.8;
    Rect range{x0, y0, x0 + rng.NextDouble() * 0.3,
               y0 + rng.NextDouble() * 0.3};
    auto hits = tree.RangeQuery(range);
    std::vector<uint32_t> got;
    for (const Poi& p : hits) got.push_back(p.id);
    std::vector<uint32_t> want;
    for (const Poi& p : pois) {
      if (range.Contains(p.location)) want.push_back(p.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, RangeQueryWholeSpaceReturnsEverything) {
  RTree tree = RTree::Build(GenerateUniform(500, 5));
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 500u);
}

TEST(RTreeTest, RangeQueryOutsideSpaceReturnsNothing) {
  RTree tree = RTree::Build(GenerateUniform(500, 6));
  EXPECT_TRUE(tree.RangeQuery({2, 2, 3, 3}).empty());
}

TEST(RTreeTest, DuplicateLocationsAllRetained) {
  std::vector<Poi> pois;
  for (uint32_t i = 0; i < 100; ++i) pois.push_back({i, {0.5, 0.5}});
  RTree tree = RTree::Build(pois);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.RangeQuery({0.5, 0.5, 0.5, 0.5}).size(), 100u);
}

TEST(RTreeTest, ClusteredDataInvariants) {
  RTree tree = RTree::Build(GenerateSequoiaLike(10000, 99));
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
}

// ---------- dynamic updates ----------

TEST(RTreeDynamicTest, InsertIntoEmptyTree) {
  RTree tree = RTree::Build({});
  tree.Insert({7, {0.5, 0.5}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  auto hits = tree.RangeQuery({0, 0, 1, 1});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
}

TEST(RTreeDynamicTest, ManyInsertsKeepInvariants) {
  RTree tree = RTree::Build({});
  Rng rng(11);
  for (uint32_t i = 0; i < 2000; ++i) {
    tree.Insert({i, {rng.NextDouble(), rng.NextDouble()}});
    if (i % 257 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << i << ": " << tree.CheckInvariants();
    }
  }
  EXPECT_EQ(tree.Size(), 2000u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_GE(tree.Height(), 3);
}

TEST(RTreeDynamicTest, InsertThenRangeQueryMatchesLinearScan) {
  RTree tree = RTree::Build(GenerateUniform(500, 12));
  Rng rng(13);
  std::vector<Poi> extra;
  for (uint32_t i = 0; i < 300; ++i) {
    Poi poi{1000 + i, {rng.NextDouble(), rng.NextDouble()}};
    extra.push_back(poi);
    tree.Insert(poi);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<Poi> all = tree.LivePois();
  EXPECT_EQ(all.size(), 800u);
  for (int trial = 0; trial < 10; ++trial) {
    double x0 = rng.NextDouble() * 0.7;
    double y0 = rng.NextDouble() * 0.7;
    Rect range{x0, y0, x0 + 0.3, y0 + 0.3};
    auto got = tree.RangeQuery(range);
    size_t want = 0;
    for (const Poi& p : all) {
      if (range.Contains(p.location)) ++want;
    }
    EXPECT_EQ(got.size(), want);
  }
}

TEST(RTreeDynamicTest, DeleteRemovesAndCondenses) {
  std::vector<Poi> pois = GenerateUniform(400, 14);
  RTree tree = RTree::Build(pois);
  Rng rng(15);
  std::vector<uint32_t> ids;
  for (const Poi& p : pois) ids.push_back(p.id);
  rng.Shuffle(ids);
  for (size_t i = 0; i < 350; ++i) {
    ASSERT_TRUE(tree.Delete(ids[i])) << i;
    if (i % 37 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << i << ": " << tree.CheckInvariants();
    }
  }
  EXPECT_EQ(tree.Size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  // Deleted POIs are no longer reachable.
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 50u);
}

TEST(RTreeDynamicTest, DeleteMissingIdReturnsFalse) {
  RTree tree = RTree::Build(GenerateUniform(10, 16));
  EXPECT_FALSE(tree.Delete(999));
  EXPECT_EQ(tree.Size(), 10u);
}

TEST(RTreeDynamicTest, DeleteToEmptyAndRefill) {
  RTree tree = RTree::Build(GenerateUniform(20, 17));
  for (uint32_t i = 0; i < 20; ++i) EXPECT_TRUE(tree.Delete(i));
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  tree.Insert({100, {0.5, 0.5}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeDynamicTest, MixedChurnKeepsKnnExact) {
  // Property test: after interleaved inserts/deletes, kNN over the tree
  // must match brute force over the live POIs.
  RTree tree = RTree::Build(GenerateUniform(300, 18));
  Rng rng(19);
  uint32_t next_id = 1000;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 40; ++i) {
      tree.Insert({next_id++, {rng.NextDouble(), rng.NextDouble()}});
    }
    // Delete ~30 random live ids.
    std::vector<Poi> live = tree.LivePois();
    rng.Shuffle(live);
    for (int i = 0; i < 30 && i < static_cast<int>(live.size()); ++i) {
      ASSERT_TRUE(tree.Delete(live[i].id));
    }
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << round << ": " << tree.CheckInvariants();
    std::vector<Poi> now = tree.LivePois();
    Point q{rng.NextDouble(), rng.NextDouble()};
    auto fast = KnnQuery(tree, q, 10);
    auto slow = KnnBruteForce(now, q, 10);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].poi.id, slow[i].poi.id) << round << " rank " << i;
    }
  }
}

TEST(RTreeDynamicTest, DuplicateIdsDeleteOneAtATime) {
  RTree tree = RTree::Build({});
  tree.Insert({5, {0.1, 0.1}});
  tree.Insert({5, {0.9, 0.9}});
  EXPECT_EQ(tree.Size(), 2u);
  EXPECT_TRUE(tree.Delete(5));
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_TRUE(tree.Delete(5));
  EXPECT_TRUE(tree.Empty());
  EXPECT_FALSE(tree.Delete(5));
}

TEST(RTreeTest, RootCoversAllPois) {
  std::vector<Poi> pois = GenerateUniform(300, 8);
  RTree tree = RTree::Build(pois);
  const Rect& root_box = tree.nodes()[tree.root()].box;
  for (const Poi& p : pois) EXPECT_TRUE(root_box.Contains(p.location));
}

}  // namespace
}  // namespace ppgnn
