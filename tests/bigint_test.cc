#include "bigint/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <limits>
#include <sstream>

#include "common/random.h"

namespace ppgnn {
namespace {

BigInt Dec(const std::string& s) { return BigInt::FromDecimal(s).value(); }

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z.ToDecimal(), "0");
}

TEST(BigIntTest, ConstructFromNativeInts) {
  EXPECT_EQ(BigInt(int64_t{42}).ToDecimal(), "42");
  EXPECT_EQ(BigInt(int64_t{-42}).ToDecimal(), "-42");
  EXPECT_EQ(BigInt(uint64_t{18446744073709551615ULL}).ToDecimal(),
            "18446744073709551615");
  EXPECT_EQ(BigInt(std::numeric_limits<int64_t>::min()).ToDecimal(),
            "-9223372036854775808");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {
      "0",
      "1",
      "-1",
      "9999999999999999999",               // just below 10^19 chunk
      "10000000000000000000",              // exactly the chunk base
      "123456789012345678901234567890",
      "-340282366920938463463374607431768211456",  // -2^128
  };
  for (const char* c : cases) {
    EXPECT_EQ(Dec(c).ToDecimal(), c) << c;
  }
}

TEST(BigIntTest, HexRoundTrip) {
  const char* cases[] = {"0", "1", "f", "deadbeef",
                         "ffffffffffffffff",  // 2^64-1
                         "10000000000000000", // 2^64
                         "-abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::FromHex(c).value().ToHex(), c) << c;
  }
}

TEST(BigIntTest, ParseRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12a3").ok());
  EXPECT_FALSE(BigInt::FromHex("").ok());
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
}

TEST(BigIntTest, ParseAcceptsPlusSign) {
  EXPECT_EQ(Dec("+17").ToDecimal(), "17");
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  EXPECT_EQ(Dec("-0"), BigInt(0));
  EXPECT_EQ((BigInt(5) - BigInt(5)).sign(), 0);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  BigInt values[] = {Dec("-100000000000000000000"), BigInt(-2), BigInt(0),
                     BigInt(1), Dec("18446744073709551616")};
  for (size_t i = 0; i < std::size(values); ++i) {
    for (size_t j = 0; j < std::size(values); ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
      EXPECT_EQ(values[i] > values[j], i > j);
    }
  }
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::Pow2(64) - BigInt(1);
  EXPECT_EQ((a + BigInt(1)).ToHex(), "10000000000000000");
  BigInt b = BigInt::Pow2(128) - BigInt(1);
  EXPECT_EQ((b + b).ToHex(), "1fffffffffffffffffffffffffffffffe");
}

TEST(BigIntTest, SignedAdditionMatrix) {
  EXPECT_EQ(BigInt(7) + BigInt(5), BigInt(12));
  EXPECT_EQ(BigInt(7) + BigInt(-5), BigInt(2));
  EXPECT_EQ(BigInt(-7) + BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(-7) + BigInt(-5), BigInt(-12));
  EXPECT_EQ(BigInt(5) - BigInt(7), BigInt(-2));
}

TEST(BigIntTest, MultiplicationSmall) {
  EXPECT_EQ(BigInt(12) * BigInt(-3), BigInt(-36));
  EXPECT_EQ(BigInt(0) * Dec("123456789123456789"), BigInt(0));
}

TEST(BigIntTest, MultiplicationKnownLarge) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  BigInt v = BigInt::Pow2(128) - BigInt(1);
  BigInt expected = BigInt::Pow2(256) - BigInt::Pow2(129) + BigInt(1);
  EXPECT_EQ(v * v, expected);
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  // C++ semantics: quotient truncates toward zero, remainder keeps the
  // dividend's sign.
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(-7) % BigInt(-2), BigInt(-1));
}

TEST(BigIntTest, DivisionByZeroErrors) {
  EXPECT_FALSE(BigInt::DivMod(BigInt(1), BigInt(0)).ok());
}

TEST(BigIntTest, ModAlwaysNonNegative) {
  EXPECT_EQ(BigInt(-7).Mod(BigInt(3)), BigInt(2));
  EXPECT_EQ(BigInt(7).Mod(BigInt(3)), BigInt(1));
  EXPECT_EQ(BigInt(-9).Mod(BigInt(3)), BigInt(0));
}

TEST(BigIntTest, KnuthDivisionAddBackCase) {
  // Crafted inputs that exercise the rare "add back" correction in
  // Algorithm D: dividend with a high limb pattern just below the divisor.
  BigInt a = BigInt::FromHex("7fffffffffffffff8000000000000000"
                             "00000000000000000000000000000000")
                 .value();
  BigInt b = BigInt::FromHex("800000000000000000000000000000000001").value();
  auto qr = BigInt::DivMod(a, b).value();
  EXPECT_EQ(qr.first * b + qr.second, a);
  EXPECT_TRUE(qr.second < b);
  EXPECT_FALSE(qr.second.IsNegative());
}

TEST(BigIntTest, ShiftsMatchPow2Arithmetic) {
  BigInt v = Dec("123456789123456789123456789");
  for (int s : {0, 1, 7, 63, 64, 65, 130}) {
    EXPECT_EQ(v << s, v * BigInt::Pow2(s)) << s;
    EXPECT_EQ((v << s) >> s, v) << s;
  }
  EXPECT_EQ(BigInt(5) >> 10, BigInt(0));
  EXPECT_EQ(BigInt(-20) >> 2, BigInt(-5));
}

TEST(BigIntTest, NegativeShiftFlipsDirection) {
  BigInt v(40);
  EXPECT_EQ(v << -2, BigInt(10));
  EXPECT_EQ(v >> -2, BigInt(160));
}

TEST(BigIntTest, BitAccessors) {
  BigInt v = BigInt::FromHex("10000000000000001").value();  // 2^64 + 1
  EXPECT_TRUE(v.GetBit(0));
  EXPECT_FALSE(v.GetBit(1));
  EXPECT_TRUE(v.GetBit(64));
  EXPECT_FALSE(v.GetBit(65));
  EXPECT_FALSE(v.GetBit(1000));
  EXPECT_EQ(v.BitLength(), 65);
  EXPECT_TRUE(v.IsOdd());
  EXPECT_FALSE((v + BigInt(1)).IsOdd());
}

TEST(BigIntTest, BytesRoundTrip) {
  BigInt v = Dec("123456789012345678901234567890");
  EXPECT_EQ(BigInt::FromBytes(v.ToBytes()), v);
  EXPECT_TRUE(BigInt(0).ToBytes().empty());
  EXPECT_EQ(BigInt::FromBytes({}), BigInt(0));
  EXPECT_EQ(BigInt::FromBytes({0x01, 0x00}), BigInt(256));
}

TEST(BigIntTest, PaddedBytes) {
  BigInt v(0x1234);
  auto padded = v.ToBytesPadded(4).value();
  EXPECT_EQ(padded, (std::vector<uint8_t>{0x00, 0x00, 0x12, 0x34}));
  EXPECT_EQ(BigInt::FromBytes(padded), v);
  EXPECT_FALSE(v.ToBytesPadded(1).ok());
  EXPECT_EQ(BigInt(0).ToBytesPadded(3).value(),
            (std::vector<uint8_t>{0, 0, 0}));
}

TEST(BigIntTest, ToUint64Boundaries) {
  EXPECT_EQ(BigInt(uint64_t{~0ULL}).ToUint64().value(), ~0ULL);
  EXPECT_FALSE(BigInt::Pow2(64).ToUint64().ok());
  EXPECT_FALSE(BigInt(-1).ToUint64().ok());
  EXPECT_EQ(BigInt(0).ToUint64().value(), 0u);
}

TEST(BigIntTest, RandomRespectsBitBound) {
  Rng rng(99);
  for (int bits : {1, 8, 63, 64, 65, 257}) {
    for (int i = 0; i < 20; ++i) {
      BigInt v = BigInt::Random(bits, rng);
      EXPECT_LE(v.BitLength(), bits);
      EXPECT_FALSE(v.IsNegative());
    }
  }
}

TEST(BigIntTest, RandomBelowIsUniformAcrossSmallRange) {
  Rng rng(101);
  BigInt bound(10);
  int counts[10] = {0};
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = BigInt::RandomBelow(bound, rng).ToUint64().value();
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 350);  // expected 500 each
}

TEST(BigIntTest, Pow2Values) {
  EXPECT_EQ(BigInt::Pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::Pow2(10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow2(64).ToHex(), "10000000000000000");
}

// ---- randomized algebraic properties (schoolbook vs Karatsuba sizes) ----

class BigIntPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntPropertyTest, RingAxiomsHold) {
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 7919);
  for (int iter = 0; iter < 25; ++iter) {
    BigInt a = BigInt::Random(bits, rng);
    BigInt b = BigInt::Random(bits, rng);
    BigInt c = BigInt::Random(bits / 2 + 1, rng);
    if (iter % 2) a = a.Negated();
    if (iter % 3 == 0) b = b.Negated();

    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a * BigInt(1), a);
  }
}

TEST_P(BigIntPropertyTest, DivModReconstructsDividend) {
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 104729);
  for (int iter = 0; iter < 25; ++iter) {
    BigInt a = BigInt::Random(bits, rng);
    BigInt b = BigInt::Random(bits / 2 + 1, rng);
    if (b.IsZero()) b = BigInt(1);
    if (iter % 2) a = a.Negated();
    if (iter % 3 == 0) b = b.Negated();
    auto qr = BigInt::DivMod(a, b).value();
    EXPECT_EQ(qr.first * b + qr.second, a);
    EXPECT_TRUE(qr.second.Abs() < b.Abs());
    // Remainder sign matches dividend (or is zero).
    if (!qr.second.IsZero()) {
      EXPECT_EQ(qr.second.sign(), a.sign());
    }
  }
}

TEST_P(BigIntPropertyTest, DecimalAndHexRoundTrip) {
  const int bits = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 1299709);
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = BigInt::Random(bits, rng);
    EXPECT_EQ(BigInt::FromDecimal(a.ToDecimal()).value(), a);
    EXPECT_EQ(BigInt::FromHex(a.ToHex()).value(), a);
    EXPECT_EQ(BigInt::FromBytes(a.ToBytes()), a);
  }
}

// 3000+ bits exercises the Karatsuba path (threshold is 24 limbs = 1536
// bits) and multi-limb division.
INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(8, 64, 128, 512, 1600, 3100));

TEST(BigIntTest, KaratsubaMatchesSchoolbookAcrossThreshold) {
  Rng rng(4242);
  // Multiply numbers straddling the Karatsuba threshold and verify via
  // the identity (a+b)^2 - (a-b)^2 = 4ab, which mixes both code paths.
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = BigInt::Random(2000, rng);
    BigInt b = BigInt::Random(1900, rng);
    BigInt lhs = (a + b) * (a + b) - (a - b) * (a - b);
    BigInt rhs = BigInt(4) * a * b;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigIntTest, StreamOutput) {
  std::ostringstream os;
  os << BigInt(-123);
  EXPECT_EQ(os.str(), "-123");
}

}  // namespace
}  // namespace ppgnn
