#include "spatial/gnn.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

std::vector<Point> RandomGroup(int n, Rng& rng) {
  std::vector<Point> out(n);
  for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
  return out;
}

TEST(GnnTest, EmptyInputs) {
  RTree tree = RTree::Build(GenerateUniform(10, 1));
  MbmGnnSolver solver(&tree);
  EXPECT_TRUE(solver.Query({}, 3, AggregateKind::kSum).empty());
  EXPECT_TRUE(
      solver.Query({{0.5, 0.5}}, 0, AggregateKind::kSum).empty());
  RTree empty = RTree::Build({});
  MbmGnnSolver empty_solver(&empty);
  EXPECT_TRUE(
      empty_solver.Query({{0.5, 0.5}}, 3, AggregateKind::kSum).empty());
}

TEST(GnnTest, SingleUserReducesToKnn) {
  std::vector<Poi> pois = GenerateUniform(1000, 2);
  RTree tree = RTree::Build(pois);
  MbmGnnSolver solver(&tree);
  Point q{0.4, 0.6};
  auto gnn = solver.Query({q}, 10, AggregateKind::kSum);
  auto knn = KnnBruteForce(pois, q, 10);
  ASSERT_EQ(gnn.size(), knn.size());
  for (size_t i = 0; i < gnn.size(); ++i) {
    EXPECT_EQ(gnn[i].poi.id, knn[i].poi.id);
  }
}

TEST(GnnTest, SumMinimizerForTwoUsersLiesBetween) {
  // Place a POI exactly between two users plus decoys far away; the
  // midpoint POI must win under sum.
  std::vector<Poi> pois = {
      {0, {0.5, 0.5}}, {1, {0.05, 0.05}}, {2, {0.95, 0.95}}};
  RTree tree = RTree::Build(pois);
  MbmGnnSolver solver(&tree);
  auto result = solver.Query({{0.3, 0.3}, {0.7, 0.7}}, 1, AggregateKind::kSum);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].poi.id, 0u);
}

TEST(GnnTest, MinAggregatePicksAnyUsersNearest) {
  std::vector<Poi> pois = {{0, {0.0, 0.0}}, {1, {1.0, 1.0}}, {2, {0.5, 0.0}}};
  RTree tree = RTree::Build(pois);
  MbmGnnSolver solver(&tree);
  // User B sits on POI 1; min-aggregate must return it first.
  auto result =
      solver.Query({{0.2, 0.2}, {1.0, 1.0}}, 1, AggregateKind::kMin);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].poi.id, 1u);
}

TEST(GnnTest, ResultsSortedByAggregateCost) {
  RTree tree = RTree::Build(GenerateSequoiaLike(2000, 3));
  MbmGnnSolver solver(&tree);
  Rng rng(4);
  auto queries = RandomGroup(5, rng);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    auto result = solver.Query(queries, 15, kind);
    ASSERT_EQ(result.size(), 15u);
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].cost, result[i].cost);
    }
    for (const RankedPoi& rp : result) {
      EXPECT_DOUBLE_EQ(rp.cost, AggregateCost(kind, rp.poi.location, queries));
    }
  }
}

struct GnnCase {
  int n;
  int k;
  AggregateKind kind;
};

class GnnDifferentialTest : public ::testing::TestWithParam<GnnCase> {};

TEST_P(GnnDifferentialTest, MbmMatchesBruteForce) {
  const GnnCase& c = GetParam();
  std::vector<Poi> pois = GenerateSequoiaLike(2500, 77);
  RTree tree = RTree::Build(pois);
  MbmGnnSolver mbm(&tree);
  BruteForceGnnSolver brute(&pois);
  Rng rng(88 + c.n * 10 + c.k);
  for (int trial = 0; trial < 10; ++trial) {
    auto queries = RandomGroup(c.n, rng);
    auto fast = mbm.Query(queries, c.k, c.kind);
    auto slow = brute.Query(queries, c.k, c.kind);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      // Ties in aggregate cost may order differently; compare costs and
      // verify the id sets match rank-by-rank within tolerance.
      EXPECT_NEAR(fast[i].cost, slow[i].cost, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GnnDifferentialTest,
    ::testing::Values(GnnCase{1, 5, AggregateKind::kSum},
                      GnnCase{2, 8, AggregateKind::kSum},
                      GnnCase{8, 8, AggregateKind::kSum},
                      GnnCase{32, 4, AggregateKind::kSum},
                      GnnCase{4, 16, AggregateKind::kMax},
                      GnnCase{8, 8, AggregateKind::kMax},
                      GnnCase{4, 16, AggregateKind::kMin},
                      GnnCase{8, 8, AggregateKind::kMin}));

TEST(GnnTest, MbmPrunesAggressively) {
  // Best-first with the aggregate bound should visit far fewer nodes than
  // the whole tree for a small k.
  RTree tree = RTree::Build(GenerateSequoiaLike(20000, 5));
  MbmGnnSolver solver(&tree);
  Rng rng(6);
  // A realistic group: users within walking distance of each other, so
  // the aggregate bound can cut off most of the tree.
  std::vector<Point> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back({0.4 + 0.05 * rng.NextDouble(),
                       0.6 + 0.05 * rng.NextDouble()});
  }
  solver.Query(queries, 8, AggregateKind::kSum);
  EXPECT_LT(solver.last_nodes_visited(), tree.nodes().size() / 4);
}

TEST(GnnTest, SpmMatchesBruteForceAllAggregates) {
  std::vector<Poi> pois = GenerateSequoiaLike(2500, 123);
  RTree tree = RTree::Build(pois);
  SpmGnnSolver spm(&tree);
  BruteForceGnnSolver brute(&pois);
  Rng rng(124);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    for (int trial = 0; trial < 10; ++trial) {
      auto queries = RandomGroup(1 + trial % 8, rng);
      auto fast = spm.Query(queries, 8, kind);
      auto slow = brute.Query(queries, 8, kind);
      ASSERT_EQ(fast.size(), slow.size()) << AggregateKindToString(kind);
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i].cost, slow[i].cost, 1e-12)
            << AggregateKindToString(kind) << " trial " << trial;
      }
    }
  }
}

TEST(GnnTest, SpmAndMbmAgree) {
  RTree tree = RTree::Build(GenerateSequoiaLike(5000, 125));
  SpmGnnSolver spm(&tree);
  MbmGnnSolver mbm(&tree);
  Rng rng(126);
  for (int trial = 0; trial < 15; ++trial) {
    auto queries = RandomGroup(4, rng);
    auto a = spm.Query(queries, 10, AggregateKind::kSum);
    auto b = mbm.Query(queries, 10, AggregateKind::kSum);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].cost, b[i].cost, 1e-12);
    }
  }
}

TEST(GnnTest, SpmHandlesDegenerateInputs) {
  RTree empty = RTree::Build({});
  SpmGnnSolver solver(&empty);
  EXPECT_TRUE(solver.Query({{0.5, 0.5}}, 3, AggregateKind::kSum).empty());
  RTree tree = RTree::Build(GenerateUniform(10, 127));
  SpmGnnSolver spm(&tree);
  EXPECT_TRUE(spm.Query({}, 3, AggregateKind::kSum).empty());
  EXPECT_EQ(spm.Query({{0.5, 0.5}}, 100, AggregateKind::kSum).size(), 10u);
}

TEST(GnnTest, MbmPrunesBetterThanSpmForSpreadGroups) {
  // The reason the paper's LSP uses MBM: its per-node aggregate bound is
  // tighter than SPM's centroid bound when users are far apart.
  RTree tree = RTree::Build(GenerateSequoiaLike(20000, 128));
  MbmGnnSolver mbm(&tree);
  SpmGnnSolver spm(&tree);
  std::vector<Point> spread = {{0.05, 0.05}, {0.95, 0.95}, {0.05, 0.95},
                               {0.95, 0.05}};
  mbm.Query(spread, 8, AggregateKind::kSum);
  spm.Query(spread, 8, AggregateKind::kSum);
  EXPECT_LE(mbm.last_nodes_visited(), spm.last_nodes_visited());
}

TEST(GnnTest, SolverNames) {
  RTree tree = RTree::Build(GenerateUniform(10, 7));
  std::vector<Poi> pois = tree.pois();
  MbmGnnSolver mbm(&tree);
  BruteForceGnnSolver brute(&pois);
  EXPECT_STREQ(mbm.name(), "MBM");
  EXPECT_STREQ(brute.name(), "BruteForce");
}

}  // namespace
}  // namespace ppgnn
