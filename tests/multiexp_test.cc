#include "bigint/multiexp.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"
#include "bigint/prime.h"
#include "common/random.h"
#include "crypto/paillier.h"

namespace ppgnn {
namespace {

// Naive reference: prod_i bases[i]^{exps[i]} mod m, one exponentiation
// per term. MultiExp must be bit-identical to this.
BigInt NaiveProduct(const std::vector<BigInt>& bases,
                    const std::vector<BigInt>& exps, const BigInt& m) {
  BigInt acc(1);
  for (size_t i = 0; i < bases.size(); ++i) {
    acc = ModMul(acc, ModExp(bases[i], exps[i], m).value(), m);
  }
  return acc;
}

BigInt OddModulus(int bits, Rng& rng) {
  BigInt m = BigInt::Random(bits, rng);
  if (!m.IsOdd()) m = m + BigInt(1);
  if (m < BigInt(3)) m = BigInt(3);
  return m;
}

TEST(MultiExpTest, MatchesNaiveProductRandomized) {
  Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    const int bits = 128 + static_cast<int>(rng.NextBelow(700));
    const BigInt m = OddModulus(bits, rng);
    auto ctx = MontgomeryContext::Create(m).value();
    const size_t t = 1 + rng.NextBelow(12);
    std::vector<BigInt> bases(t), exps(t);
    for (size_t i = 0; i < t; ++i) {
      bases[i] = BigInt::RandomBelow(m, rng);
      exps[i] = BigInt::Random(static_cast<int>(rng.NextBelow(300)), rng);
    }
    EXPECT_EQ(MultiExp(bases, exps, ctx).value(), NaiveProduct(bases, exps, m))
        << "iter " << iter << " t=" << t << " bits=" << bits;
  }
}

TEST(MultiExpTest, SingleBaseDegeneratesToModExp) {
  Rng rng(12);
  const BigInt m = GeneratePrime(256, rng).value();
  auto ctx = MontgomeryContext::Create(m).value();
  const BigInt base = BigInt::RandomBelow(m, rng);
  const BigInt exp = BigInt::Random(200, rng);
  EXPECT_EQ(MultiExp({base}, {exp}, ctx).value(),
            ModExp(base, exp, m).value());
}

TEST(MultiExpTest, ZeroAndMixedExponents) {
  Rng rng(13);
  const BigInt m = OddModulus(256, rng);
  auto ctx = MontgomeryContext::Create(m).value();
  std::vector<BigInt> bases = {BigInt::RandomBelow(m, rng),
                               BigInt::RandomBelow(m, rng),
                               BigInt::RandomBelow(m, rng)};
  // All-zero exponents: the empty product.
  EXPECT_EQ(MultiExp(bases, {BigInt(0), BigInt(0), BigInt(0)}, ctx).value(),
            BigInt(1).Mod(m));
  // Mixed zero / one / large.
  std::vector<BigInt> exps = {BigInt(0), BigInt(1), BigInt::Random(180, rng)};
  EXPECT_EQ(MultiExp(bases, exps, ctx).value(), NaiveProduct(bases, exps, m));
}

TEST(MultiExpTest, RejectsBadInput) {
  Rng rng(14);
  const BigInt m = OddModulus(192, rng);
  auto ctx = MontgomeryContext::Create(m).value();
  const BigInt b = BigInt::RandomBelow(m, rng);
  EXPECT_FALSE(MultiExp({}, {}, ctx).ok());
  EXPECT_FALSE(MultiExp({b}, {BigInt(1), BigInt(2)}, ctx).ok());
  EXPECT_FALSE(MultiExp({b}, {BigInt(-3)}, ctx).ok());
  EXPECT_FALSE(MultiExpEngine::Create(nullptr, {b}).ok());
}

TEST(MultiExpTest, EngineReuseAcrossRows) {
  // The engine's tables are built once; many Eval calls against the same
  // bases must all match the naive product (the m-row amortization of
  // Theorem 3.1).
  Rng rng(15);
  const BigInt m = OddModulus(512, rng);
  auto ctx = MontgomeryContext::Create(m).value();
  const size_t t = 8;
  std::vector<BigInt> bases(t);
  for (auto& b : bases) b = BigInt::RandomBelow(m, rng);
  auto engine = MultiExpEngine::Create(&ctx, bases).value();
  EXPECT_EQ(engine.size(), t);
  for (int row = 0; row < 6; ++row) {
    std::vector<BigInt> exps(t);
    for (auto& e : exps) e = BigInt::Random(256, rng);
    EXPECT_EQ(engine.Eval(exps).value(), NaiveProduct(bases, exps, m))
        << "row " << row;
  }
}

// --- DotProduct engine vs the naive ScalarMul/Add chain -------------------

TEST(MultiExpTest, DotProductBitIdenticalToNaiveRandomized) {
  Rng rng(16);
  const KeyPair keys = GenerateKeyPair(256, rng).value();
  const Encryptor enc(keys.pub);
  for (int level = 1; level <= 2; ++level) {
    for (int iter = 0; iter < 4; ++iter) {
      const size_t t = 1 + rng.NextBelow(10);  // delta'
      std::vector<Ciphertext> v(t);
      std::vector<BigInt> x(t);
      for (size_t i = 0; i < t; ++i) {
        v[i] = enc.Encrypt(BigInt::Random(40, rng), rng, level).value();
        // Mix of zero and random scalars, level-appropriate widths.
        x[i] = rng.NextBelow(4) == 0
                   ? BigInt(0)
                   : BigInt::Random(level == 1 ? 60 : 512, rng);
      }
      const Ciphertext fast = enc.DotProduct(x, v).value();
      const Ciphertext naive = enc.DotProductNaive(x, v).value();
      EXPECT_EQ(fast.value, naive.value)
          << "level " << level << " iter " << iter << " t=" << t;
      EXPECT_EQ(fast.level, naive.level);
    }
  }
}

TEST(MultiExpTest, DotEngineSharedAcrossRowsMatchesNaive) {
  Rng rng(17);
  const KeyPair keys = GenerateKeyPair(256, rng).value();
  const Encryptor enc(keys.pub);
  const size_t t = 6;
  std::vector<Ciphertext> v(t);
  for (auto& c : v) c = enc.Encrypt(BigInt::Random(30, rng), rng).value();
  auto engine = enc.MakeDotEngine(v).value();
  EXPECT_EQ(engine.size(), t);
  EXPECT_EQ(engine.level(), 1);
  for (int row = 0; row < 5; ++row) {
    std::vector<BigInt> x(t);
    for (auto& xi : x) xi = BigInt::Random(60, rng);
    const Ciphertext fast = engine.Dot(x).value();
    const Ciphertext naive = enc.DotProductNaive(x, v).value();
    EXPECT_EQ(fast.value, naive.value) << "row " << row;
  }
}

TEST(MultiExpTest, DotEngineRejectsBadInput) {
  Rng rng(18);
  const KeyPair keys = GenerateKeyPair(128, rng).value();
  const Encryptor enc(keys.pub);
  EXPECT_FALSE(enc.MakeDotEngine({}).ok());
  std::vector<Ciphertext> mixed = {
      enc.Encrypt(BigInt(1), rng, 1).value(),
      enc.Encrypt(BigInt(2), rng, 2).value(),
  };
  EXPECT_FALSE(enc.MakeDotEngine(mixed).ok());
  std::vector<Ciphertext> v = {enc.Encrypt(BigInt(5), rng).value()};
  auto engine = enc.MakeDotEngine(v).value();
  EXPECT_FALSE(engine.Dot({BigInt(1), BigInt(2)}).ok());  // dimension
  EXPECT_FALSE(engine.Dot({BigInt(-1)}).ok());            // negative scalar
}

TEST(MultiExpTest, HotPathBuildsNoNewContexts) {
  // Context derivation (R^2 mod n) must happen only at Encryptor
  // construction, never per homomorphic call.
  Rng rng(19);
  const KeyPair keys = GenerateKeyPair(256, rng).value();
  const Encryptor enc(keys.pub);
  std::vector<Ciphertext> v(4);
  for (auto& c : v) c = enc.Encrypt(BigInt::Random(30, rng), rng).value();

  const uint64_t before = MontgomeryContext::created_count();
  auto engine = enc.MakeDotEngine(v).value();
  for (int row = 0; row < 3; ++row) {
    std::vector<BigInt> x(v.size());
    for (auto& xi : x) xi = BigInt::Random(60, rng);
    ASSERT_TRUE(engine.Dot(x).ok());
    ASSERT_TRUE(enc.DotProduct(x, v).ok());
    ASSERT_TRUE(enc.ScalarMul(x[0], v[0]).ok());
    ASSERT_TRUE(enc.Add(v[0], v[1]).ok());
  }
  EXPECT_EQ(MontgomeryContext::created_count(), before);
}

}  // namespace
}  // namespace ppgnn
