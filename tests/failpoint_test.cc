// Unit tests for the failpoint framework itself: spec parsing, the
// deterministic fire schedules (skip/every/times/probability), and the
// per-action call-site helpers. The end-to-end behavior of armed
// failpoints inside the service loop lives in chaos_test.cc.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace ppgnn {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointClearAll(); }
};

TEST_F(FailpointTest, DisabledIsInvisible) {
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(FailpointCheck("nowhere").ok());
  EXPECT_FALSE(FailpointDrop("nowhere"));
  std::vector<uint8_t> bytes = {1, 2, 3};
  FailpointCorrupt("nowhere", bytes);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
  // Unconfigured points are not even counted.
  EXPECT_EQ(FailpointHits("nowhere"), 0u);
}

TEST_F(FailpointTest, ParsesActionsAndModifiers) {
  FailpointPolicy p = ParseFailpointPolicy("error:overloaded").value();
  EXPECT_EQ(p.action, FailAction::kError);
  EXPECT_EQ(p.error_code, StatusCode::kResourceExhausted);

  p = ParseFailpointPolicy("delay:2.5").value();
  EXPECT_EQ(p.action, FailAction::kDelay);
  EXPECT_DOUBLE_EQ(p.delay_seconds, 0.0025);

  p = ParseFailpointPolicy("drop,p=0.25,seed=7,skip=2,every=3,times=4")
          .value();
  EXPECT_EQ(p.action, FailAction::kDrop);
  EXPECT_DOUBLE_EQ(p.probability, 0.25);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.skip, 2u);
  EXPECT_EQ(p.every, 3u);
  EXPECT_EQ(p.max_fires, 4u);

  p = ParseFailpointPolicy("corrupt:3").value();
  EXPECT_EQ(p.action, FailAction::kCorrupt);
  EXPECT_EQ(p.corrupt_bytes, 3u);
}

TEST_F(FailpointTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseFailpointPolicy("").ok());
  EXPECT_FALSE(ParseFailpointPolicy("explode").ok());
  EXPECT_FALSE(ParseFailpointPolicy("error:nonsense").ok());
  EXPECT_FALSE(ParseFailpointPolicy("delay").ok());
  EXPECT_FALSE(ParseFailpointPolicy("delay:-1").ok());
  EXPECT_FALSE(ParseFailpointPolicy("drop:what").ok());
  EXPECT_FALSE(ParseFailpointPolicy("corrupt:0").ok());
  EXPECT_FALSE(ParseFailpointPolicy("drop,p=1.5").ok());
  EXPECT_FALSE(ParseFailpointPolicy("drop,every=0").ok());
  EXPECT_FALSE(ParseFailpointPolicy("drop,banana=1").ok());
  EXPECT_FALSE(FailpointSetFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(FailpointSetFromSpec("=drop").ok());
  EXPECT_FALSE(FailpointsArmed());
}

TEST_F(FailpointTest, ErrorPolicyInjectsStatusWithCode) {
  ASSERT_TRUE(FailpointSetFromSpec("pt=error:deadline").ok());
  EXPECT_TRUE(FailpointsArmed());
  Status s = FailpointCheck("pt");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("failpoint pt"), std::string::npos);
  // Other points stay clean while this one is armed.
  EXPECT_TRUE(FailpointCheck("other").ok());
  // Wrong-helper calls are ignored, not misapplied.
  EXPECT_FALSE(FailpointDrop("pt"));
}

TEST_F(FailpointTest, SkipEveryTimesScheduleIsExact) {
  // skip=2, every=3, times=2: hits 1,2 skipped; eligible hits are
  // 3,6,9,...; of those only every 3rd eligible *index* fires (0-based
  // eligible counter), capped at 2 fires total.
  ASSERT_TRUE(FailpointSetFromSpec("pt=drop,skip=2,every=3,times=2").ok());
  std::vector<int> fired_at;
  for (int hit = 1; hit <= 12; ++hit) {
    if (FailpointDrop("pt")) fired_at.push_back(hit);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6}));
  EXPECT_EQ(FailpointHits("pt"), 12u);
  EXPECT_EQ(FailpointFires("pt"), 2u);
}

TEST_F(FailpointTest, ProbabilityScheduleIsSeededAndReproducible) {
  auto run = [] {
    FailpointSet("pt", ParseFailpointPolicy("drop,p=0.5,seed=42").value());
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(FailpointDrop("pt"));
    FailpointClear("pt");
    return pattern;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Roughly half fire (loose bounds; the point is determinism above).
  int fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 16);
  EXPECT_LT(fires, 48);
}

TEST_F(FailpointTest, CorruptFlipsExactlyConfiguredBytesDeterministically) {
  ASSERT_TRUE(FailpointSetFromSpec("pt=corrupt:2,seed=9").ok());
  std::vector<uint8_t> original(32, 0xAA);
  std::vector<uint8_t> first = original;
  FailpointCorrupt("pt", first);
  EXPECT_NE(first, original);
  size_t changed = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    if (first[i] != original[i]) ++changed;
  }
  EXPECT_GE(changed, 1u);
  EXPECT_LE(changed, 2u);  // two draws may hit the same position

  // Re-arming replays the identical first fire.
  ASSERT_TRUE(FailpointSetFromSpec("pt=corrupt:2,seed=9").ok());
  std::vector<uint8_t> replay = original;
  FailpointCorrupt("pt", replay);
  EXPECT_EQ(replay, first);
}

TEST_F(FailpointTest, ClearRestoresZeroCostPath) {
  ASSERT_TRUE(FailpointSetFromSpec("a=drop").ok());
  ASSERT_TRUE(FailpointSetFromSpec("b=drop").ok());
  EXPECT_TRUE(FailpointsArmed());
  FailpointClear("a");
  EXPECT_TRUE(FailpointsArmed());  // b is still armed
  EXPECT_FALSE(FailpointDrop("a"));
  FailpointClearAll();
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_FALSE(FailpointDrop("b"));
}

// Stacked slots on one point: a replica can be slow AND failing at once.
// Every fired delay sleeps, then the first fired error wins.
TEST_F(FailpointTest, AddStacksDelayAndErrorOnOnePoint) {
  ASSERT_TRUE(FailpointAddFromSpec("pt=delay:20").ok());
  ASSERT_TRUE(FailpointAddFromSpec("pt=error:overloaded").ok());
  const auto start = std::chrono::steady_clock::now();
  Status s = FailpointCheck("pt");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(elapsed, 0.015);  // the delay slot fired too
  // Every traversal hits every slot once; both slots fired.
  EXPECT_EQ(FailpointHits("pt"), 1u);
  EXPECT_EQ(FailpointFires("pt"), 2u);
}

// Each stacked slot keeps its own schedule and RNG stream: a times=1
// error rides on an every-other delay without perturbing it.
TEST_F(FailpointTest, StackedSlotsScheduleIndependently) {
  ASSERT_TRUE(FailpointAddFromSpec("pt=error:deadline,every=2").ok());
  ASSERT_TRUE(FailpointAddFromSpec("pt=error:overloaded,skip=1,times=1").ok());
  // Hit 1: slot A fires (eligible 0), slot B skipped.
  Status s = FailpointCheck("pt");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // Hit 2: slot A idle (eligible 1), slot B fires its single time.
  s = FailpointCheck("pt");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Hit 3: slot A fires again; slot B is exhausted.
  s = FailpointCheck("pt");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // Hit 4: nothing fires.
  EXPECT_TRUE(FailpointCheck("pt").ok());
  EXPECT_EQ(FailpointHits("pt"), 4u);
  EXPECT_EQ(FailpointFires("pt"), 3u);
}

// Set still *replaces* — the one-shot semantics tests above rely on it —
// while Add composes; Clear removes the whole stack.
TEST_F(FailpointTest, SetReplacesTheWholeStack) {
  ASSERT_TRUE(FailpointAddFromSpec("pt=delay:20").ok());
  ASSERT_TRUE(FailpointAddFromSpec("pt=error").ok());
  ASSERT_TRUE(FailpointSetFromSpec("pt=drop").ok());
  EXPECT_TRUE(FailpointCheck("pt").ok());  // no delay, no error left
  EXPECT_TRUE(FailpointDrop("pt"));
  FailpointClear("pt");
  EXPECT_FALSE(FailpointDrop("pt"));
  EXPECT_EQ(FailpointHits("pt"), 0u);
}

TEST_F(FailpointTest, AddFromSpecRejectsBadInput) {
  EXPECT_FALSE(FailpointAddFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(FailpointAddFromSpec("=drop").ok());
  EXPECT_FALSE(FailpointAddFromSpec("pt=explode").ok());
  EXPECT_FALSE(FailpointsArmed());
}

TEST_F(FailpointTest, DelayPolicySleepsAndContinues) {
  ASSERT_TRUE(FailpointSetFromSpec("pt=delay:20,times=1").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailpointCheck("pt").ok());  // slept, no error
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.015);
  // times=1 exhausted: the second traversal is instant and clean.
  EXPECT_TRUE(FailpointCheck("pt").ok());
  EXPECT_EQ(FailpointFires("pt"), 1u);
}

}  // namespace
}  // namespace ppgnn
