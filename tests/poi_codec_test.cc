#include "crypto/poi_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ppgnn {
namespace {

std::vector<Point> RandomPois(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> out(count);
  for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
  return out;
}

TEST(QuantizeCoordTest, BoundariesAndMonotonicity) {
  EXPECT_EQ(QuantizeCoord(0.0), 0u);
  EXPECT_EQ(QuantizeCoord(1.0), 0xffffffffu);
  EXPECT_EQ(QuantizeCoord(-0.5), 0u);     // saturates
  EXPECT_EQ(QuantizeCoord(1.5), 0xffffffffu);
  EXPECT_LE(QuantizeCoord(0.25), QuantizeCoord(0.75));
}

TEST(QuantizeCoordTest, RoundTripErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    double back = DequantizeCoord(QuantizeCoord(v));
    EXPECT_NEAR(back, v, 1.0 / 4294967295.0);
  }
}

TEST(QuantizeCoordTest, QuantizedValuesAreFixedPoints) {
  for (uint32_t q : {0u, 1u, 77777u, 0xffffffffu}) {
    EXPECT_EQ(QuantizeCoord(DequantizeCoord(q)), q);
  }
}

TEST(PoiCodecTest, CapacityMatchesPaperAt1024Bits) {
  // "15 POIs information can be encoded by a big integer in our settings"
  PoiCodec codec(1024);
  EXPECT_EQ(codec.SlotsInFirstInt(), 15);
  EXPECT_EQ(codec.SlotsInLaterInt(), 15);
  EXPECT_EQ(codec.IntsNeeded(1), 1u);
  EXPECT_EQ(codec.IntsNeeded(15), 1u);
  EXPECT_EQ(codec.IntsNeeded(16), 2u);
  EXPECT_EQ(codec.IntsNeeded(30), 2u);
  EXPECT_EQ(codec.IntsNeeded(31), 3u);
  EXPECT_EQ(codec.PlaintextBytes(), 128u);
}

TEST(PoiCodecTest, SmallKeyCapacities) {
  PoiCodec codec(256);
  EXPECT_EQ(codec.SlotsInFirstInt(), 3);  // (256-9)/64
  EXPECT_EQ(codec.SlotsInLaterInt(), 3);  // (256-1)/64
  EXPECT_EQ(codec.IntsNeeded(3), 1u);
  EXPECT_EQ(codec.IntsNeeded(4), 2u);
}

class PoiCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(PoiCodecRoundTrip, EncodeDecodeIdentity) {
  auto [key_bits, count] = GetParam();
  PoiCodec codec(key_bits);
  std::vector<Point> pois =
      RandomPois(count, 1000 + count + static_cast<size_t>(key_bits));
  size_t width = codec.IntsNeeded(count);
  std::vector<BigInt> ints = codec.Encode(pois, width).value();
  ASSERT_EQ(ints.size(), width);
  std::vector<Point> decoded = codec.Decode(ints).value();
  ASSERT_EQ(decoded.size(), pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_NEAR(decoded[i].x, pois[i].x, 1e-9);
    EXPECT_NEAR(decoded[i].y, pois[i].y, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoiCodecRoundTrip,
    ::testing::Combine(::testing::Values(256, 512, 1024),
                       ::testing::Values<size_t>(0, 1, 2, 3, 8, 15, 16, 31,
                                                 40)));

TEST(PoiCodecTest, PaddingToWiderMatrixIsTransparent) {
  PoiCodec codec(512);
  std::vector<Point> pois = RandomPois(2, 7);
  // Pad to 4 integers even though 1 suffices (uniform matrix width m).
  std::vector<BigInt> ints = codec.Encode(pois, 4).value();
  ASSERT_EQ(ints.size(), 4u);
  EXPECT_TRUE(ints[1].IsZero());
  EXPECT_TRUE(ints[3].IsZero());
  std::vector<Point> decoded = codec.Decode(ints).value();
  ASSERT_EQ(decoded.size(), 2u);
}

TEST(PoiCodecTest, EmptyAnswerRoundTrips) {
  // Sanitation can shrink an answer; even length 0 must survive (though
  // the protocol always keeps >= 1 POI).
  PoiCodec codec(256);
  std::vector<BigInt> ints = codec.Encode({}, 1).value();
  EXPECT_TRUE(codec.Decode(ints).value().empty());
}

TEST(PoiCodecTest, EveryPackedIntegerBelowPlaintextBound) {
  PoiCodec codec(256);
  std::vector<Point> pois(3, Point{1.0, 1.0});  // all-ones slots
  std::vector<BigInt> ints = codec.Encode(pois, 1).value();
  for (const BigInt& v : ints) {
    EXPECT_LT(v.BitLength(), 256);  // strictly < 2^(kb-1) < N
  }
}

TEST(PoiCodecTest, RejectsWidthTooSmall) {
  PoiCodec codec(256);
  std::vector<Point> pois = RandomPois(4, 9);
  EXPECT_FALSE(codec.Encode(pois, 1).ok());
}

TEST(PoiCodecTest, RejectsOversizedAnswer) {
  PoiCodec codec(1024);
  std::vector<Point> pois = RandomPois(256, 11);
  EXPECT_FALSE(codec.Encode(pois, 64).ok());
}

TEST(PoiCodecTest, DecodeRejectsEmptyAndTruncated) {
  PoiCodec codec(256);
  EXPECT_FALSE(codec.Decode({}).ok());
  std::vector<Point> pois = RandomPois(5, 13);
  std::vector<BigInt> ints = codec.Encode(pois, codec.IntsNeeded(5)).value();
  ints.pop_back();
  EXPECT_FALSE(codec.Decode(ints).ok());
}

TEST(PoiCodecTest, OrderPreserved) {
  // The answer is a RANKED list; order must survive the round trip.
  PoiCodec codec(512);
  std::vector<Point> pois;
  for (int i = 0; i < 10; ++i)
    pois.push_back({i / 10.0, 1.0 - i / 10.0});
  std::vector<Point> decoded =
      codec.Decode(codec.Encode(pois, codec.IntsNeeded(10)).value()).value();
  for (int i = 1; i < 10; ++i) {
    EXPECT_GT(decoded[i].x, decoded[i - 1].x);
  }
}

}  // namespace
}  // namespace ppgnn
