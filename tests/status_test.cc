#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppgnn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange},
      {Status::NotFound("c"), StatusCode::kNotFound},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::Internal("f"), StatusCode::kInternal},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::CryptoError("h"), StatusCode::kCryptoError},
      {Status::ProtocolError("i"), StatusCode::kProtocolError},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Halve(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterViaMacro(int v) {
  PPGNN_ASSIGN_OR_RETURN(int half, Halve(v));
  PPGNN_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fail = QuarterViaMacro(6);  // 6 -> 3 -> odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  PPGNN_RETURN_IF_ERROR(FailIfNegative(a));
  PPGNN_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace ppgnn
