#include "spatial/knn.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

TEST(KnnTest, EmptyTreeAndZeroK) {
  RTree empty = RTree::Build({});
  EXPECT_TRUE(KnnQuery(empty, {0.5, 0.5}, 3).empty());
  RTree tree = RTree::Build(GenerateUniform(10, 1));
  EXPECT_TRUE(KnnQuery(tree, {0.5, 0.5}, 0).empty());
  EXPECT_TRUE(KnnQuery(tree, {0.5, 0.5}, -2).empty());
}

TEST(KnnTest, KLargerThanDatabaseReturnsAll) {
  RTree tree = RTree::Build(GenerateUniform(7, 2));
  EXPECT_EQ(KnnQuery(tree, {0.1, 0.1}, 100).size(), 7u);
}

TEST(KnnTest, NearestOfThree) {
  std::vector<Poi> pois = {{0, {0.1, 0.1}}, {1, {0.5, 0.5}}, {2, {0.9, 0.9}}};
  RTree tree = RTree::Build(pois);
  auto result = KnnQuery(tree, {0.52, 0.52}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].poi.id, 1u);
}

TEST(KnnTest, ResultsSortedByDistance) {
  RTree tree = RTree::Build(GenerateUniform(500, 3));
  auto result = KnnQuery(tree, {0.3, 0.7}, 20);
  ASSERT_EQ(result.size(), 20u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].cost, result[i].cost);
  }
}

TEST(KnnTest, ReportedCostIsTrueDistance) {
  RTree tree = RTree::Build(GenerateUniform(200, 4));
  Point q{0.25, 0.75};
  for (const RankedPoi& rp : KnnQuery(tree, q, 10)) {
    EXPECT_DOUBLE_EQ(rp.cost, Distance(q, rp.poi.location));
  }
}

class KnnDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnDifferentialTest, MatchesBruteForce) {
  const int k = GetParam();
  std::vector<Poi> pois = GenerateSequoiaLike(3000, 55);
  RTree tree = RTree::Build(pois);
  Rng rng(66);
  for (int trial = 0; trial < 25; ++trial) {
    Point q{rng.NextDouble(), rng.NextDouble()};
    auto fast = KnnQuery(tree, q, k);
    auto slow = KnnBruteForce(pois, q, k);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].poi.id, slow[i].poi.id)
          << "trial " << trial << " rank " << i;
      EXPECT_DOUBLE_EQ(fast[i].cost, slow[i].cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnDifferentialTest,
                         ::testing::Values(1, 2, 8, 32, 100));

TEST(KnnTest, QueryOutsideDataSpace) {
  std::vector<Poi> pois = GenerateUniform(100, 7);
  RTree tree = RTree::Build(pois);
  auto fast = KnnQuery(tree, {5.0, 5.0}, 5);
  auto slow = KnnBruteForce(pois, {5.0, 5.0}, 5);
  ASSERT_EQ(fast.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(fast[i].poi.id, slow[i].poi.id);
}

}  // namespace
}  // namespace ppgnn
