#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ppgnn {
namespace {

TEST(BytesTest, RoundTripFixedWidth) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutDouble(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             std::numeric_limits<uint64_t>::max()};
  ByteWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarint().value(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSizes) {
  auto size_of = [](uint64_t v) {
    ByteWriter w;
    w.PutVarint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(BytesTest, LengthPrefixedBytes) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ByteWriter w;
  w.PutBytes(payload);
  w.PutBytes({});
  ByteReader r(w.data());
  EXPECT_EQ(r.GetBytes().value(), payload);
  EXPECT_TRUE(r.GetBytes().value().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReaderRejectsTruncatedInput) {
  ByteWriter w;
  w.PutU32(7);
  std::vector<uint8_t> data = w.data();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(BytesTest, ReaderRejectsTruncatedVarint) {
  std::vector<uint8_t> data = {0x80, 0x80};  // unterminated continuation
  ByteReader r(data);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, ReaderRejectsOverlongVarint) {
  std::vector<uint8_t> data(11, 0x80);
  ByteReader r(data);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, ReaderRejectsBytesPastEnd) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_FALSE(r.GetBytes().ok());
}

TEST(BytesTest, ReleaseMovesBuffer) {
  ByteWriter w;
  w.PutU8(9);
  std::vector<uint8_t> data = w.Release();
  EXPECT_EQ(data, std::vector<uint8_t>{9});
}

TEST(BytesTest, BytesToHex) {
  EXPECT_EQ(BytesToHex({}), "");
  EXPECT_EQ(BytesToHex({0x00, 0xff, 0x1a}), "00ff1a");
}

TEST(BytesTest, NegativeDoubleRoundTrip) {
  ByteWriter w;
  w.PutDouble(-0.0);
  w.PutDouble(-1e300);
  ByteReader r(w.data());
  EXPECT_EQ(r.GetDouble().value(), 0.0);
  EXPECT_TRUE(std::signbit(r.GetDouble().value()));
}

}  // namespace
}  // namespace ppgnn
