// Empirical validation of the privacy guarantees (Theorem 4.3 and
// Theorem 5.2): the probabilistic claims of the proofs, tested as
// statistics over many protocol rounds.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/attack.h"
#include "core/candidate.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

// Replicates Algorithm 1 lines 3-6: segment by Eqn 11, position uniform
// in the segment; returns the absolute 1-based position of the real
// location for subgroup j.
int DrawAbsolutePosition(const PartitionPlan& plan, int d, int j, Rng& rng) {
  int64_t pick = rng.NextInRange(1, d);
  int64_t acc = 0;
  int seg = 1;
  for (int i = 1; i <= plan.beta(); ++i) {
    acc += plan.d_bar[i - 1];
    if (pick <= acc) {
      seg = i;
      break;
    }
  }
  int x = static_cast<int>(rng.NextInRange(1, plan.d_bar[seg - 1]));
  (void)j;  // all subgroups draw i.i.d.
  return plan.SegmentOffset(seg) - 1 + x;
}

TEST(PrivacyITest, RealPositionIsUniformOverD) {
  // Theorem 4.3, Privacy I: P(LSP identifies the real location) = 1/d,
  // i.e. the real location's slot is uniform over the d positions.
  const int n = 8, d = 25, delta = 100;
  PartitionPlan plan = SolvePartition(n, d, delta).value();
  Rng rng(1);
  const int trials = 50000;
  std::vector<int> counts(d, 0);
  for (int t = 0; t < trials; ++t) {
    ++counts[DrawAbsolutePosition(plan, d, 0, rng) - 1];
  }
  // Chi-square against uniform; d-1 = 24 dof, 99.9th percentile ~ 51.2.
  double expected = static_cast<double>(trials) / d;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 51.2) << "positions are not uniform";
}

TEST(PrivacyITest, UniformForEveryPlanShape) {
  // The uniformity must hold for any solved plan, including very skewed
  // segment sizes.
  Rng rng(2);
  for (auto [n, d, delta] : {std::tuple{2, 10, 50}, std::tuple{4, 12, 80},
                             std::tuple{16, 25, 200}}) {
    PartitionPlan plan = SolvePartition(n, d, delta).value();
    const int trials = 20000;
    std::vector<int> counts(d, 0);
    for (int t = 0; t < trials; ++t) {
      ++counts[DrawAbsolutePosition(plan, d, 0, rng) - 1];
    }
    double expected = static_cast<double>(trials) / d;
    for (int c : counts) {
      // Every slot within 6 sigma of the binomial expectation.
      double sigma = std::sqrt(expected * (1.0 - 1.0 / d));
      EXPECT_NEAR(c, expected, 6 * sigma) << "n" << n << " d" << d;
    }
  }
}

TEST(PrivacyIITest, QueryIndexDistributionMatchesTheory) {
  // Privacy II: each candidate in segment i carries probability
  // (d_i/d) * (1/d_i)^alpha. Verify the empirical distribution of the
  // real query's index matches, and that the min probability over all
  // candidates is <= 1/delta (the advertised guarantee).
  const int n = 4, d = 8, delta = 20;
  PartitionPlan plan = SolvePartition(n, d, delta).value();
  ASSERT_GE(plan.delta_prime, static_cast<uint64_t>(delta));

  Rng rng(3);
  const int trials = 200000;
  std::vector<int> counts(plan.delta_prime, 0);
  for (int t = 0; t < trials; ++t) {
    // Replicate the coordinator's full (seg, x_1..x_alpha) draw.
    int64_t pick = rng.NextInRange(1, d);
    int64_t acc = 0;
    int seg = 1;
    for (int i = 1; i <= plan.beta(); ++i) {
      acc += plan.d_bar[i - 1];
      if (pick <= acc) {
        seg = i;
        break;
      }
    }
    std::vector<int> x(plan.alpha);
    for (int j = 0; j < plan.alpha; ++j) {
      x[j] = static_cast<int>(rng.NextInRange(1, plan.d_bar[seg - 1]));
    }
    ++counts[QueryIndex(plan, seg, x) - 1];
  }

  uint64_t index = 0;
  for (int seg = 1; seg <= plan.beta(); ++seg) {
    double d_seg = plan.d_bar[seg - 1];
    double per_candidate =
        (d_seg / d) * std::pow(1.0 / d_seg, plan.alpha);
    uint64_t combos = 1;
    for (int j = 0; j < plan.alpha; ++j)
      combos *= static_cast<uint64_t>(plan.d_bar[seg - 1]);
    for (uint64_t c = 0; c < combos; ++c, ++index) {
      double expected = per_candidate * trials;
      double sigma = std::sqrt(expected);
      EXPECT_NEAR(counts[index], expected, 6 * sigma + 1) << "index " << index;
    }
    // The guarantee: no candidate is more likely than 1/delta... the
    // paper's bound is on the TOTAL number of candidates; verify
    // delta' >= delta so 1/delta' <= 1/delta for a uniform-segment plan.
  }
  EXPECT_EQ(index, plan.delta_prime);
}

TEST(PrivacyIIITest, UserReceivesExactlyOneAnswer) {
  // Privacy III: the wire answer is m ciphertexts — independent of
  // delta' — so the user cannot learn any non-selected candidate's
  // answer.
  LspDatabase lsp(GenerateSequoiaLike(2000, 4));
  Rng rng(5);
  KeyPair keys = GenerateKeyPair(256, rng).value();
  for (int delta : {12, 24, 48}) {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = delta;
    params.k = 3;
    params.key_bits = 256;
    params.sanitize = false;
    std::vector<Point> group = {{0.2, 0.2}, {0.5, 0.5}, {0.7, 0.3}};
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng, &keys);
    ASSERT_TRUE(outcome.ok());
    // The downlink must be exactly the m answer ciphertexts + framing,
    // independent of delta.
    size_t expected =
        outcome->info.answer_width_m * keys.pub.CiphertextBytes(1);
    EXPECT_GE(outcome->costs.bytes_lsp_to_user, expected);
    EXPECT_LE(outcome->costs.bytes_lsp_to_user, expected + 16);
  }
}

TEST(PrivacyIVTest, CollusionRegionExceedsTheta0AfterSanitation) {
  // Theorem 5.2: with sanitation on, any n-1 colluders localize the
  // remaining user to a region of at least theta0 of the space (with
  // confidence 1 - gamma). Empirically attack every returned answer.
  LspDatabase lsp(GenerateSequoiaLike(20000, 6));
  ProtocolParams params;
  params.n = 5;
  params.d = 4;
  params.delta = 8;
  params.k = 8;
  params.key_bits = 256;
  params.theta0 = 0.05;

  Rng rng(7);
  KeyPair keys = GenerateKeyPair(256, rng).value();
  int attacks = 0, violations = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Point> group(params.n);
    for (Point& p : group) p = {rng.NextDouble(), rng.NextDouble()};
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng, &keys);
    ASSERT_TRUE(outcome.ok());
    if (outcome->pois.size() < 2) continue;  // nothing to attack
    for (int target = 0; target < params.n; ++target) {
      std::vector<Point> colluders;
      for (int u = 0; u < params.n; ++u) {
        if (u != target) colluders.push_back(group[u]);
      }
      InequalityAttack attack(colluders, outcome->pois,
                              AggregateKind::kSum);
      Rng mc(1000 + trial * 10 + target);
      double region = attack.EstimateRegionFraction(mc, 20000);
      ++attacks;
      // Allow the test's own Monte-Carlo noise plus the hypothesis
      // test's Type I error margin.
      if (region < params.theta0 * 0.7) ++violations;
    }
  }
  ASSERT_GT(attacks, 0);
  // gamma = 0.05 per test; a rare violation is statistically expected,
  // but the overwhelming majority of attacks must fail.
  EXPECT_LE(violations, std::max(1, attacks / 10));
}

TEST(PrivacyIVTest, WithoutSanitationAttacksDoSucceed) {
  // The control experiment: PPGNN-NAS leaks — some attack localizes a
  // user below theta0. This is what Figure 1 illustrates.
  LspDatabase lsp(GenerateSequoiaLike(20000, 8));
  ProtocolParams params;
  params.n = 5;
  params.d = 4;
  params.delta = 8;
  params.k = 8;
  params.key_bits = 256;
  params.theta0 = 0.05;
  params.sanitize = false;

  Rng rng(9);
  KeyPair keys = GenerateKeyPair(256, rng).value();
  bool any_success = false;
  for (int trial = 0; trial < 6 && !any_success; ++trial) {
    std::vector<Point> group(params.n);
    for (Point& p : group) p = {rng.NextDouble(), rng.NextDouble()};
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng, &keys);
    ASSERT_TRUE(outcome.ok());
    for (int target = 0; target < params.n; ++target) {
      std::vector<Point> colluders;
      for (int u = 0; u < params.n; ++u) {
        if (u != target) colluders.push_back(group[u]);
      }
      InequalityAttack attack(colluders, outcome->pois,
                              AggregateKind::kSum);
      Rng mc(2000 + trial * 10 + target);
      if (attack.EstimateRegionFraction(mc, 20000) < params.theta0) {
        any_success = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_success)
      << "the unsanitized top-8 answer never enabled an attack — "
         "suspiciously strong";
}

}  // namespace
}  // namespace ppgnn
