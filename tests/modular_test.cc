#include "bigint/modular.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ppgnn {
namespace {

BigInt Dec(const std::string& s) { return BigInt::FromDecimal(s).value(); }

TEST(GcdTest, SmallCases) {
  EXPECT_EQ(Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(17), BigInt(31)), BigInt(1));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(Gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(0)), BigInt(0));
}

TEST(GcdTest, IgnoresSigns) {
  EXPECT_EQ(Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(12), BigInt(-18)), BigInt(6));
  EXPECT_EQ(Gcd(BigInt(-12), BigInt(-18)), BigInt(6));
}

TEST(GcdTest, LargeKnownValue) {
  // gcd(2^200 - 1, 2^120 - 1) = 2^gcd(200,120) - 1 = 2^40 - 1.
  BigInt a = BigInt::Pow2(200) - BigInt(1);
  BigInt b = BigInt::Pow2(120) - BigInt(1);
  EXPECT_EQ(Gcd(a, b), BigInt::Pow2(40) - BigInt(1));
}

TEST(LcmTest, Basics) {
  EXPECT_EQ(Lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_EQ(Lcm(BigInt(0), BigInt(6)), BigInt(0));
  EXPECT_EQ(Lcm(BigInt(7), BigInt(13)), BigInt(91));
}

TEST(ModInverseTest, SmallKnownInverses) {
  EXPECT_EQ(ModInverse(BigInt(3), BigInt(7)).value(), BigInt(5));  // 3*5=15=1
  EXPECT_EQ(ModInverse(BigInt(1), BigInt(2)).value(), BigInt(1));
  EXPECT_EQ(ModInverse(BigInt(10), BigInt(17)).value(), BigInt(12));
}

TEST(ModInverseTest, FailsWhenNotCoprime) {
  EXPECT_FALSE(ModInverse(BigInt(6), BigInt(9)).ok());
  EXPECT_FALSE(ModInverse(BigInt(0), BigInt(9)).ok());
}

TEST(ModInverseTest, RejectsTinyModulus) {
  EXPECT_FALSE(ModInverse(BigInt(1), BigInt(1)).ok());
  EXPECT_FALSE(ModInverse(BigInt(1), BigInt(0)).ok());
}

TEST(ModInverseTest, HandlesNegativeAndLargeInputs) {
  BigInt m = Dec("1000000007");
  BigInt a = Dec("-123456789123456789");
  BigInt inv = ModInverse(a, m).value();
  EXPECT_EQ((a * inv).Mod(m), BigInt(1));
}

TEST(ModInverseTest, RandomizedInverseProperty) {
  Rng rng(555);
  BigInt m = (BigInt::Pow2(255) - BigInt(19));  // prime (Curve25519 prime)
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(m - BigInt(1), rng) + BigInt(1);
    BigInt inv = ModInverse(a, m).value();
    EXPECT_EQ(ModMul(a, inv, m), BigInt(1));
    EXPECT_TRUE(inv < m);
    EXPECT_FALSE(inv.IsNegative());
  }
}

TEST(ModExpTest, SmallKnownValues) {
  EXPECT_EQ(ModExp(BigInt(2), BigInt(10), BigInt(1000)).value(), BigInt(24));
  EXPECT_EQ(ModExp(BigInt(3), BigInt(0), BigInt(7)).value(), BigInt(1));
  EXPECT_EQ(ModExp(BigInt(0), BigInt(5), BigInt(7)).value(), BigInt(0));
  EXPECT_EQ(ModExp(BigInt(5), BigInt(1), BigInt(7)).value(), BigInt(5));
}

TEST(ModExpTest, ModulusOneGivesZero) {
  EXPECT_EQ(ModExp(BigInt(5), BigInt(100), BigInt(1)).value(), BigInt(0));
}

TEST(ModExpTest, RejectsBadArguments) {
  EXPECT_FALSE(ModExp(BigInt(2), BigInt(-1), BigInt(7)).ok());
  EXPECT_FALSE(ModExp(BigInt(2), BigInt(3), BigInt(0)).ok());
  EXPECT_FALSE(ModExp(BigInt(2), BigInt(3), BigInt(-7)).ok());
}

TEST(ModExpTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  BigInt p = Dec("1000000007");
  Rng rng(777);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), rng) + BigInt(1);
    EXPECT_EQ(ModExp(a, p - BigInt(1), p).value(), BigInt(1));
  }
}

TEST(ModExpTest, ExponentLawsRandomized) {
  Rng rng(888);
  BigInt m = BigInt::Random(384, rng) + BigInt(2);
  BigInt base = BigInt::Random(380, rng);
  BigInt e1 = BigInt::Random(128, rng);
  BigInt e2 = BigInt::Random(128, rng);
  // a^(e1+e2) = a^e1 * a^e2 (mod m)
  BigInt lhs = ModExp(base, e1 + e2, m).value();
  BigInt rhs =
      ModMul(ModExp(base, e1, m).value(), ModExp(base, e2, m).value(), m);
  EXPECT_EQ(lhs, rhs);
  // (a^e1)^e2 = a^(e1*e2) (mod m)
  BigInt lhs2 = ModExp(ModExp(base, e1, m).value(), e2, m).value();
  BigInt rhs2 = ModExp(base, e1 * e2, m).value();
  EXPECT_EQ(lhs2, rhs2);
}

TEST(ModExpTest, NegativeBaseIsReduced) {
  // (-2)^3 mod 7 = -8 mod 7 = 6.
  EXPECT_EQ(ModExp(BigInt(-2), BigInt(3), BigInt(7)).value(), BigInt(6));
}

TEST(ModMulTest, MatchesDirectComputation) {
  BigInt a = Dec("987654321987654321");
  BigInt b = Dec("123456789123456789");
  BigInt m = Dec("1000000000000000003");
  EXPECT_EQ(ModMul(a, b, m), (a * b) % m);
}

TEST(CrtTest, RecombinesResidues) {
  // x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15.
  EXPECT_EQ(CrtCombine(BigInt(2), BigInt(3), BigInt(3), BigInt(5)).value(),
            BigInt(8));
}

TEST(CrtTest, RandomizedAgainstDefinition) {
  Rng rng(999);
  BigInt m1 = Dec("1000003");        // prime
  BigInt m2 = Dec("1000033");        // prime
  for (int i = 0; i < 20; ++i) {
    BigInt x = BigInt::RandomBelow(m1 * m2, rng);
    BigInt rebuilt =
        CrtCombine(x.Mod(m1), m1, x.Mod(m2), m2).value();
    EXPECT_EQ(rebuilt, x);
  }
}

TEST(CrtTest, FailsForNonCoprimeModuli) {
  EXPECT_FALSE(CrtCombine(BigInt(1), BigInt(6), BigInt(2), BigInt(9)).ok());
}

}  // namespace
}  // namespace ppgnn
