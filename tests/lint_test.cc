// Unit tests for the ppgnn-lint rule engine (tools/lint). Each rule gets
// a tripping fixture, a suppressed variant, and a clean variant, all as
// in-memory SourceFiles so the tests are hermetic. The final test proves
// the report itself is deterministic: two full LoadTree+RunLint runs over
// the same on-disk fixture tree produce byte-identical output.

#include "tools/lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ppgnn {
namespace lint {
namespace {

std::vector<Finding> LintOne(const std::string& path,
                             const std::string& content) {
  std::vector<SourceFile> files = {{path, content}};
  return RunLint(files);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  const std::vector<std::string> rules = Rules(findings);
  return static_cast<size_t>(std::count(rules.begin(), rules.end(), rule));
}

TEST(LintMeta, EightRulesRegistered) {
  const std::vector<std::string>& rules = RuleNames();
  ASSERT_EQ(rules.size(), 8u);
  for (const char* name :
       {"unchecked-result", "secret-flow", "determinism", "include-hygiene",
        "guarded-by", "lock-order", "blocking-under-lock",
        "atomics-discipline"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), name), rules.end())
        << "missing rule: " << name;
  }
}

// ---------------------------------------------------------------------------
// unchecked-result
// ---------------------------------------------------------------------------

TEST(UncheckedResult, BareValueTrips) {
  auto findings = LintOne("src/core/fixture.cc",
                          "int F() {\n"
                          "  auto r = Parse();\n"
                          "  return r.value();\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "unchecked-result"), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("bare .value()"), std::string::npos);
}

TEST(UncheckedResult, BareValueSuppressed) {
  auto findings =
      LintOne("src/core/fixture.cc",
              "int F() {\n"
              "  auto r = Parse();\n"
              "  // ppgnn-lint: allow(unchecked-result): fixture proven ok\n"
              "  return r.value();\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(UncheckedResult, GuardedValueClean) {
  auto findings = LintOne("src/core/fixture.cc",
                          "int F() {\n"
                          "  auto r = Parse();\n"
                          "  if (!r.ok()) return -1;\n"
                          "  return r.value();\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(UncheckedResult, MovedReceiverStillResolved) {
  // std::move(...) wrappers must not hide the receiver from the guard
  // search, and must not let `std` match an unrelated guard either.
  auto findings = LintOne("src/core/fixture.cc",
                          "int F() {\n"
                          "  auto r = Parse();\n"
                          "  return std::move(r).value();\n"
                          "}\n");
  EXPECT_EQ(CountRule(findings, "unchecked-result"), 1u);
}

TEST(UncheckedResult, DiscardedStatusCallTrips) {
  std::vector<SourceFile> files = {
      {"src/common/io.h", "Status Flush();\n"},
      {"src/core/use.cc", "void G() {\n  Flush();\n}\n"},
  };
  auto findings = RunLint(files);
  ASSERT_EQ(CountRule(findings, "unchecked-result"), 1u);
  EXPECT_EQ(findings[0].file, "src/core/use.cc");
  EXPECT_NE(findings[0].message.find("Flush"), std::string::npos);
}

TEST(UncheckedResult, DiscardedCallSuppressed) {
  std::vector<SourceFile> files = {
      {"src/common/io.h", "Status Flush();\n"},
      {"src/core/use.cc",
       "void G() {\n"
       "  // ppgnn-lint: allow(unchecked-result): fire-and-forget by design\n"
       "  Flush();\n"
       "}\n"},
  };
  EXPECT_EQ(RunLint(files).size(), 0u);
}

TEST(UncheckedResult, AssignedCallClean) {
  std::vector<SourceFile> files = {
      {"src/common/io.h", "Status Flush();\n"},
      {"src/core/use.cc",
       "void G() {\n"
       "  Status s = Flush();\n"
       "  if (!s.ok()) Abort();\n"
       "}\n"},
  };
  EXPECT_EQ(RunLint(files).size(), 0u);
}

// ---------------------------------------------------------------------------
// secret-flow
// ---------------------------------------------------------------------------

TEST(SecretFlow, SecretInConditionTrips) {
  auto findings = LintOne("src/crypto/fixture.cc",
                          "// ppgnn: secret(sk)\n"
                          "int F(int sk) {\n"
                          "  if (sk > 0) return 1;\n"
                          "  return 0;\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "secret-flow"), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("`sk`"), std::string::npos);
}

TEST(SecretFlow, SecretInConditionSuppressed) {
  auto findings =
      LintOne("src/crypto/fixture.cc",
              "// ppgnn: secret(sk)\n"
              "int F(int sk) {\n"
              "  // ppgnn-lint: allow(secret-flow): trusted-side validation\n"
              "  if (sk > 0) return 1;\n"
              "  return 0;\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(SecretFlow, ArithmeticOnSecretClean) {
  auto findings = LintOne("src/crypto/fixture.cc",
                          "// ppgnn: secret(sk)\n"
                          "int F(int sk, int pub) {\n"
                          "  int masked = sk ^ pub;\n"
                          "  if (pub > 0) return masked;\n"
                          "  return 0;\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(SecretFlow, UntaggedFileClean) {
  // Without a tag comment nothing is secret, however suggestive the name.
  auto findings = LintOne("src/crypto/fixture.cc",
                          "int F(int sk) {\n"
                          "  if (sk > 0) return 1;\n"
                          "  return 0;\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(SecretFlow, SecretIntoSerializeTrips) {
  auto findings = LintOne("src/crypto/fixture.cc",
                          "// ppgnn: secret(sk)\n"
                          "void F(Writer& w, BigInt sk) {\n"
                          "  SerializeKey(w, sk);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "secret-flow"), 1u);
  EXPECT_NE(findings[0].message.find("SerializeKey"), std::string::npos);
}

TEST(SecretFlow, SecretToStreamTrips) {
  auto findings = LintOne("src/crypto/fixture.cc",
                          "// ppgnn: secret(sk)\n"
                          "void F(BigInt sk) {\n"
                          "  std::cout << sk;\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "secret-flow"), 1u);
  EXPECT_NE(findings[0].message.find("stream/log sink"), std::string::npos);
}

TEST(SecretFlow, ProseMentionDoesNotRegister) {
  // A doc comment *about* the tag syntax must not create secrets.
  auto findings =
      LintOne("src/crypto/fixture.cc",
              "// Identifiers tagged `ppgnn: secret(a, b)` are tracked.\n"
              "int F(int a) {\n"
              "  if (a > 0) return 1;\n"
              "  return 0;\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

TEST(Determinism, RandomDeviceTrips) {
  auto findings = LintOne("src/core/fixture.cc",
                          "#include <random>\n"
                          "unsigned F() {\n"
                          "  std::random_device rd;\n"
                          "  return rd();\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "determinism"), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Determinism, RandCallSuppressed) {
  auto findings =
      LintOne("src/core/fixture.cc",
              "int F() {\n"
              "  // ppgnn-lint: allow(determinism): fixture for this test\n"
              "  return rand();\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(Determinism, ExemptPathsClean) {
  const char* body =
      "#include <random>\n"
      "unsigned F() {\n"
      "  std::mt19937 gen(1);\n"
      "  return gen();\n"
      "}\n";
  EXPECT_EQ(LintOne("src/common/random.cc", body).size(), 0u);
  EXPECT_EQ(LintOne("src/service/backoff.cc", body).size(), 0u);
}

TEST(Determinism, ServiceExemptionDoesNotCoverFixedBaseCode) {
  // The comb tables are derived from key material: a service file that
  // touches the FixedBase machinery loses the service/ timing exemption
  // and must not consume ambient entropy.
  auto by_include =
      LintOne("src/service/warmup.cc",
              "#include \"bigint/fixedbase.h\"\n"
              "#include <random>\n"
              "unsigned Seed() {\n"
              "  std::random_device rd;\n"
              "  return rd();\n"
              "}\n");
  ASSERT_EQ(CountRule(by_include, "determinism"), 1u);
  EXPECT_EQ(by_include[0].line, 4);

  auto by_ident = LintOne("src/service/warmup.cc",
                          "unsigned Seed(const FixedBaseEngine& engine) {\n"
                          "  (void)engine;\n"
                          "  return static_cast<unsigned>(time(nullptr));\n"
                          "}\n");
  EXPECT_EQ(CountRule(by_ident, "determinism"), 1u);
}

TEST(Determinism, ServiceTimingCodeStaysExemptWithoutFixedBase) {
  // The classic service exemption is untouched for files that never go
  // near the fixed-base tables.
  auto findings = LintOne("src/service/backoff2.cc",
                          "double Jitter() {\n"
                          "  return static_cast<double>(time(nullptr));\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(Determinism, TimeAsPlainIdentifierClean) {
  // `time` and `clock` are banned only as calls; variables keep the name.
  auto findings = LintOne("src/core/fixture.cc",
                          "double Account(double time) {\n"
                          "  double clock = time * 2;\n"
                          "  return clock;\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// include-hygiene
// ---------------------------------------------------------------------------

TEST(IncludeHygiene, LowerLayerIncludingHigherTrips) {
  auto findings = LintOne("src/common/fixture.h",
                          "#include \"core/protocol.h\"\n");
  ASSERT_EQ(CountRule(findings, "include-hygiene"), 1u);
  EXPECT_NE(findings[0].message.find("higher layer"), std::string::npos);
}

TEST(IncludeHygiene, LayerViolationSuppressed) {
  auto findings = LintOne(
      "src/common/fixture.h",
      "#include \"core/protocol.h\"  // ppgnn-lint: allow(include-hygiene): "
      "fixture for this test\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(IncludeHygiene, DownwardIncludeClean) {
  auto findings = LintOne("src/core/fixture.h",
                          "#include \"common/status.h\"\n"
                          "#include \"crypto/paillier.h\"\n");
  EXPECT_EQ(findings.size(), 0u);
}

// The two-component "net/transport" layer sits *above* service by
// longest-prefix match, so wrapping a service in a TCP server is legal…
TEST(IncludeHygiene, TransportSublayerMayIncludeService) {
  auto findings = LintOne("src/net/transport/fixture.h",
                          "#include \"net/transport/frame.h\"\n"
                          "#include \"service/lsp_service.h\"\n");
  EXPECT_EQ(findings.size(), 0u);
}

// …while the parent net layer still may not, and nothing below the
// transport may reach up into it.
TEST(IncludeHygiene, PlainNetIncludingServiceStillTrips) {
  auto findings = LintOne("src/net/fixture.h",
                          "#include \"service/lsp_service.h\"\n");
  ASSERT_EQ(CountRule(findings, "include-hygiene"), 1u);
}

TEST(IncludeHygiene, ServiceIncludingTransportTrips) {
  auto findings = LintOne("src/service/fixture.h",
                          "#include \"net/transport/tcp_link.h\"\n");
  ASSERT_EQ(CountRule(findings, "include-hygiene"), 1u);
  EXPECT_NE(findings[0].message.find("net/transport"), std::string::npos);
}

TEST(IncludeHygiene, OwnHeaderFirstTrips) {
  std::vector<SourceFile> files = {
      {"src/geo/fixture.h", "int F();\n"},
      {"src/geo/fixture.cc",
       "#include \"common/status.h\"\n"
       "#include \"geo/fixture.h\"\n"
       "int F() { return 1; }\n"},
  };
  auto findings = RunLint(files);
  ASSERT_EQ(CountRule(findings, "include-hygiene"), 1u);
  EXPECT_EQ(findings[0].file, "src/geo/fixture.cc");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(IncludeHygiene, OwnHeaderFirstClean) {
  std::vector<SourceFile> files = {
      {"src/geo/fixture.h", "int F();\n"},
      {"src/geo/fixture.cc",
       "#include \"geo/fixture.h\"\n"
       "#include \"common/status.h\"\n"
       "int F() { return 1; }\n"},
  };
  EXPECT_EQ(RunLint(files).size(), 0u);
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

TEST(GuardedBy, UnlockedAccessTrips) {
  auto findings = LintOne("src/service/fixture.h",
                          "// ppgnn: guarded_by(queue_, mu_)\n"
                          "int queue_;\n"
                          "std::mutex mu_;\n"
                          "void F() {\n"
                          "  queue_ = 1;\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "guarded-by"), 1u);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("`queue_`"), std::string::npos);
  EXPECT_NE(findings[0].message.find("without holding `mu_`"),
            std::string::npos);
}

TEST(GuardedBy, RaiiScopedAccessClean) {
  auto findings = LintOne("src/service/fixture.h",
                          "// ppgnn: guarded_by(queue_, mu_)\n"
                          "int queue_;\n"
                          "std::mutex mu_;\n"
                          "void F() {\n"
                          "  std::lock_guard<std::mutex> lock(mu_);\n"
                          "  queue_ = 1;\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(GuardedBy, RequiresTagGrantsTheLockInsideTheBody) {
  auto findings = LintOne("src/service/fixture.h",
                          "// ppgnn: guarded_by(queue_, mu_)\n"
                          "int queue_;\n"
                          "std::mutex mu_;\n"
                          "// ppgnn: requires(mu_)\n"
                          "void DrainLocked() {\n"
                          "  queue_ = 1;\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(GuardedBy, RequiresCallWithoutLockTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "// ppgnn: requires(mu_)\n"
                          "void DrainLocked() {}\n"
                          "void F() {\n"
                          "  DrainLocked();\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "guarded-by"), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("requires(mu_)"), std::string::npos);
}

TEST(GuardedBy, ExcludesCallUnderTheLockTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "// ppgnn: excludes(mu_)\n"
                          "void Broadcast();\n"
                          "std::mutex mu_;\n"
                          "void F() {\n"
                          "  std::lock_guard<std::mutex> lock(mu_);\n"
                          "  Broadcast();\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "guarded-by"), 1u);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("while holding `mu_`"),
            std::string::npos);
}

TEST(GuardedBy, UnlockedAccessSuppressed) {
  auto findings =
      LintOne("src/service/fixture.h",
              "// ppgnn: guarded_by(queue_, mu_)\n"
              "int queue_;\n"
              "void F() {\n"
              "  // ppgnn-lint: allow(guarded-by): ctor has exclusive access\n"
              "  queue_ = 1;\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(GuardedBy, CcInheritsOwnHeaderTags) {
  // Tags written once at the declaration in the header govern the .cc.
  std::vector<SourceFile> files = {
      {"src/service/fixture.h",
       "// ppgnn: guarded_by(queue_, mu_)\n"
       "int queue_;\n"
       "std::mutex mu_;\n"},
      {"src/service/fixture.cc",
       "#include \"service/fixture.h\"\n"
       "void F() {\n"
       "  queue_ = 1;\n"
       "}\n"},
  };
  auto findings = RunLint(files);
  ASSERT_EQ(CountRule(findings, "guarded-by"), 1u);
  EXPECT_EQ(findings[0].file, "src/service/fixture.cc");
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

TEST(LockOrder, TwoMutexCycleTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "std::mutex mu2;\n"
                          "void CycleA() {\n"
                          "  std::lock_guard<std::mutex> a(mu);\n"
                          "  std::lock_guard<std::mutex> b(mu2);\n"
                          "}\n"
                          "void CycleB() {\n"
                          "  std::lock_guard<std::mutex> a(mu2);\n"
                          "  std::lock_guard<std::mutex> b(mu);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "lock-order"), 1u);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].message,
            "lock-order cycle: `mu` -> `mu2` (line 5) -> `mu` (line 9)");
}

TEST(LockOrder, ConsistentOrderClean) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "std::mutex mu2;\n"
                          "void A() {\n"
                          "  std::lock_guard<std::mutex> a(mu);\n"
                          "  std::lock_guard<std::mutex> b(mu2);\n"
                          "}\n"
                          "void B() {\n"
                          "  std::lock_guard<std::mutex> a(mu);\n"
                          "  std::lock_guard<std::mutex> b(mu2);\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LockOrder, CycleSuppressed) {
  auto findings =
      LintOne("src/service/fixture.cc",
              "std::mutex mu;\n"
              "std::mutex mu2;\n"
              "void CycleA() {\n"
              "  std::lock_guard<std::mutex> a(mu);\n"
              "  // ppgnn-lint: allow(lock-order): both paths trylock-fenced\n"
              "  std::lock_guard<std::mutex> b(mu2);\n"
              "}\n"
              "void CycleB() {\n"
              "  std::lock_guard<std::mutex> a(mu2);\n"
              "  std::lock_guard<std::mutex> b(mu);\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LockOrder, DiagnosticIsDeterministicAcrossRuns) {
  const std::vector<SourceFile> files = {
      {"src/service/fixture.cc",
       "std::mutex a;\nstd::mutex b;\nstd::mutex c;\n"
       "void F() {\n"
       "  std::lock_guard<std::mutex> l1(a);\n"
       "  std::lock_guard<std::mutex> l2(b);\n"
       "  std::lock_guard<std::mutex> l3(c);\n"
       "}\n"
       "void G() {\n"
       "  std::lock_guard<std::mutex> l1(c);\n"
       "  std::lock_guard<std::mutex> l2(a);\n"
       "}\n"},
  };
  const std::string first = FormatReport(RunLint(files), files.size());
  const std::string second = FormatReport(RunLint(files), files.size());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("lock-order cycle: `a`"), std::string::npos);
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

TEST(BlockingUnderLock, EncryptUnderLockTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "void F() {\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  auto c = Encrypt(5);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "blocking-under-lock"), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("`Encrypt`"), std::string::npos);
  EXPECT_NE(findings[0].message.find("holding `mu`"), std::string::npos);
}

TEST(BlockingUnderLock, EncryptOutsideTheCriticalSectionClean) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "void F() {\n"
                          "  auto c = Encrypt(5);\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  Store(c);\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(BlockingUnderLock, ManualUnlockEndsTheHeldScope) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "void F() {\n"
                          "  std::unique_lock<std::mutex> lk(mu);\n"
                          "  lk.unlock();\n"
                          "  auto c = Encrypt(5);\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(BlockingUnderLock, CvWaitOnSoleHeldLockClean) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "void F() {\n"
                          "  std::unique_lock<std::mutex> lk(mu);\n"
                          "  cv.wait(lk);\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(BlockingUnderLock, CvWaitWithSecondLockHeldTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::mutex mu;\n"
                          "std::mutex mu2;\n"
                          "void F() {\n"
                          "  std::lock_guard<std::mutex> g(mu2);\n"
                          "  std::unique_lock<std::mutex> lk(mu);\n"
                          "  cv.wait(lk);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "blocking-under-lock"), 1u);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("condition-variable"),
            std::string::npos);
}

TEST(BlockingUnderLock, EncryptUnderLockSuppressed) {
  auto findings = LintOne(
      "src/service/fixture.cc",
      "std::mutex mu;\n"
      "void F() {\n"
      "  std::lock_guard<std::mutex> lock(mu);\n"
      "  // ppgnn-lint: allow(blocking-under-lock): init path, no waiters\n"
      "  auto c = Encrypt(5);\n"
      "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

// Socket syscalls block for as long as the peer feels like: a stalled
// recv under a held lock parks every thread queued on that lock.
TEST(BlockingUnderLock, SocketRecvUnderLockTrips) {
  auto findings = LintOne("src/net/transport/fixture.cc",
                          "std::mutex mu;\n"
                          "void F(int fd, void* buf) {\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  ssize_t n = recv(fd, buf, 16, 0);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "blocking-under-lock"), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("`recv`"), std::string::npos);
}

TEST(BlockingUnderLock, SocketConnectUnderLockTrips) {
  auto findings = LintOne("src/net/transport/fixture.cc",
                          "std::mutex mu;\n"
                          "void F(int fd) {\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  int rc = connect(fd, nullptr, 0);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "blocking-under-lock"), 1u);
}

TEST(BlockingUnderLock, SocketPollUnderLockSuppressed) {
  auto findings = LintOne(
      "src/net/transport/fixture.cc",
      "std::mutex mu;\n"
      "void F(struct pollfd* fds) {\n"
      "  std::lock_guard<std::mutex> lock(mu);\n"
      "  // ppgnn-lint: allow(blocking-under-lock): zero-timeout poll\n"
      "  int rc = poll(fds, 1, 0);\n"
      "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(BlockingUnderLock, SocketIoOutsideTheCriticalSectionClean) {
  auto findings = LintOne("src/net/transport/fixture.cc",
                          "std::mutex mu;\n"
                          "void F(int fd, void* buf) {\n"
                          "  ssize_t n = send(fd, buf, 16, 0);\n"
                          "  std::lock_guard<std::mutex> lock(mu);\n"
                          "  Record(n);\n"
                          "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// atomics-discipline
// ---------------------------------------------------------------------------

TEST(AtomicsDiscipline, UntaggedRelaxedTrips) {
  auto findings = LintOne("src/service/fixture.cc",
                          "std::atomic<bool> stop_;\n"
                          "bool F() {\n"
                          "  return stop_.load(std::memory_order_relaxed);\n"
                          "}\n");
  ASSERT_EQ(CountRule(findings, "atomics-discipline"), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("memory_order_relaxed"),
            std::string::npos);
}

TEST(AtomicsDiscipline, TaggedStatCounterClean) {
  auto findings =
      LintOne("src/service/fixture.cc",
              "// ppgnn: stat_counter(hits_)\n"
              "std::atomic<uint64_t> hits_;\n"
              "void F() {\n"
              "  hits_.fetch_add(1, std::memory_order_relaxed);\n"
              "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(AtomicsDiscipline, UntaggedRelaxedSuppressed) {
  auto findings = LintOne(
      "src/service/fixture.cc",
      "std::atomic<bool> armed_;\n"
      "bool F() {\n"
      "  // ppgnn-lint: allow(atomics-discipline): racy gate, recheck locked\n"
      "  return armed_.load(std::memory_order_relaxed);\n"
      "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// rule filtering and stats
// ---------------------------------------------------------------------------

TEST(RuleFilter, EnabledSetRestrictsReportedRules) {
  // One file tripping two different rules; filtering keeps exactly one.
  std::vector<SourceFile> files = {
      {"src/core/fixture.cc",
       "std::atomic<int> x;\n"
       "int F() {\n"
       "  auto r = Parse();\n"
       "  return r.value() + x.load(std::memory_order_relaxed);\n"
       "}\n"},
  };
  ASSERT_EQ(RunLint(files).size(), 2u);
  LintStats stats;
  auto findings = RunLint(files, {"atomics-discipline"}, &stats);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "atomics-discipline");
  EXPECT_EQ(stats.files_scanned, 1u);
  EXPECT_EQ(stats.per_rule.at("atomics-discipline"), 1u);
}

TEST(RuleFilter, StatsCountSuppressions) {
  std::vector<SourceFile> files = {
      {"src/core/fixture.cc",
       "int F() {\n"
       "  auto r = Parse();\n"
       "  // ppgnn-lint: allow(unchecked-result): fixture proven ok\n"
       "  return r.value();\n"
       "}\n"},
  };
  LintStats stats;
  auto findings = RunLint(files, {}, &stats);
  EXPECT_EQ(findings.size(), 0u);
  EXPECT_EQ(stats.suppressions_used, 1u);
}

// ---------------------------------------------------------------------------
// suppression policy (meta rule)
// ---------------------------------------------------------------------------

TEST(Suppression, MissingJustificationIsAFindingAndSuppressesNothing) {
  auto findings = LintOne("src/core/fixture.cc",
                          "int F() {\n"
                          "  auto r = Parse();\n"
                          "  // ppgnn-lint: allow(unchecked-result)\n"
                          "  return r.value();\n"
                          "}\n");
  EXPECT_EQ(CountRule(findings, "suppression"), 1u);
  EXPECT_EQ(CountRule(findings, "unchecked-result"), 1u);
}

TEST(Suppression, UnknownRuleIsAFinding) {
  auto findings = LintOne("src/core/fixture.cc",
                          "// ppgnn-lint: allow(made-up-rule): because\n"
                          "int F() { return 1; }\n");
  ASSERT_EQ(CountRule(findings, "suppression"), 1u);
  EXPECT_NE(findings[0].message.find("made-up-rule"), std::string::npos);
}

// ---------------------------------------------------------------------------
// report determinism
// ---------------------------------------------------------------------------

TEST(Report, ByteIdenticalAcrossRuns) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "ppgnn_lint_fixture";
  fs::remove_all(root);
  ASSERT_TRUE(fs::create_directories(root / "deep"));
  {
    std::ofstream(root / "a.cc")
        << "int F() {\n  auto r = Parse();\n  return r.value();\n}\n";
    std::ofstream(root / "deep" / "b.cc")
        << "int G() {\n  return rand();\n}\n";
    std::ofstream(root / "deep" / "c.h") << "int H();\n";
    std::ofstream(root / "ignored.txt") << "not C++\n";
  }

  auto run = [&]() {
    std::string error;
    std::vector<SourceFile> files = LoadTree({root.string()}, &error);
    EXPECT_TRUE(error.empty()) << error;
    return FormatReport(RunLint(files), files.size());
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("unchecked-result"), std::string::npos);
  EXPECT_NE(first.find("determinism"), std::string::npos);
  EXPECT_NE(first.find("3 files scanned"), std::string::npos);
  fs::remove_all(root);
}

TEST(Report, ConcurrencyDiagnosticsByteIdenticalAcrossRuns) {
  // Same contract as ByteIdenticalAcrossRuns, but the fixture tree trips
  // the four concurrency rules; the lock-order cycle diagnostic (a graph
  // walk) is the one most at risk of nondeterminism.
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "ppgnn_lint_conc";
  fs::remove_all(root);
  ASSERT_TRUE(fs::create_directories(root));
  {
    std::ofstream(root / "cycle.cc")
        << "std::mutex mu;\nstd::mutex mu2;\n"
        << "void A() {\n"
        << "  std::lock_guard<std::mutex> a(mu);\n"
        << "  std::lock_guard<std::mutex> b(mu2);\n"
        << "}\n"
        << "void B() {\n"
        << "  std::lock_guard<std::mutex> a(mu2);\n"
        << "  std::lock_guard<std::mutex> b(mu);\n"
        << "}\n";
    std::ofstream(root / "guarded.h")
        << "// ppgnn: guarded_by(queue_, mu_)\nint queue_;\n"
        << "void F() { queue_ = 1; }\n";
    std::ofstream(root / "blocking.cc")
        << "std::mutex mu;\n"
        << "void F() {\n"
        << "  std::lock_guard<std::mutex> lock(mu);\n"
        << "  auto c = Encrypt(5);\n"
        << "  (void)c.load(std::memory_order_relaxed);\n"
        << "}\n";
  }

  auto run = [&]() {
    std::string error;
    std::vector<SourceFile> files = LoadTree({root.string()}, &error);
    EXPECT_TRUE(error.empty()) << error;
    return FormatReport(RunLint(files), files.size());
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("lock-order cycle: `mu` -> `mu2`"), std::string::npos);
  EXPECT_NE(first.find("guarded-by"), std::string::npos);
  EXPECT_NE(first.find("blocking-under-lock"), std::string::npos);
  EXPECT_NE(first.find("atomics-discipline"), std::string::npos);
  fs::remove_all(root);
}

TEST(Report, FindingsAreGloballySorted) {
  std::vector<SourceFile> files = {
      {"src/core/z.cc", "int F() {\n  auto r = P();\n  return r.value();\n}\n"},
      {"src/core/a.cc", "int G() {\n  auto r = P();\n  return r.value();\n}\n"},
  };
  auto findings = RunLint(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/core/a.cc");
  EXPECT_EQ(findings[1].file, "src/core/z.cc");
}

}  // namespace
}  // namespace lint
}  // namespace ppgnn
