// Unit tests for the HealthMonitor state machine: the demotion ladder
// (healthy -> suspect -> down), flap suppression (a suspect replica
// keeps its preference slot), half-open probe admission (exactly one
// owner per cooldown expiry), the EWMA latency trigger, and two-run
// determinism under the injectable clock. The end-to-end behavior —
// health driving failover inside a replica set — lives in shard_test.cc
// and chaos_test.cc.

#include "service/health.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

namespace ppgnn {
namespace {

using Clock = HealthConfig::Clock;

/// A scriptable time source: tests advance it explicitly, so cooldown
/// expiry is a deterministic event, not a sleep.
struct FakeClock {
  Clock::time_point now{};
  void Advance(double seconds) {
    now += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }
  std::function<Clock::time_point()> Fn() {
    return [this] { return now; };
  }
};

HealthConfig TestConfig(FakeClock& clock) {
  HealthConfig config;
  config.suspect_after = 1;
  config.down_after = 3;
  config.recover_after = 2;
  config.down_cooldown_seconds = 0.2;
  config.clock = clock.Fn();
  return config;
}

TEST(HealthMonitorTest, StartsHealthyAndInIndexOrder) {
  FakeClock clock;
  HealthMonitor monitor(3, TestConfig(clock));
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(monitor.state(r), ReplicaHealth::kHealthy);
    EXPECT_EQ(monitor.transitions(r), 0u);
  }
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(monitor.total_transitions(), 0u);
}

TEST(HealthMonitorTest, DemotionLadderHealthySuspectDown) {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  monitor.ReportFailure(0);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kSuspect);
  monitor.ReportFailure(0);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kSuspect);
  monitor.ReportFailure(0);  // third consecutive failure: down_after = 3
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kDown);
  EXPECT_EQ(monitor.transitions(0), 2u);
  // The other replica never moved.
  EXPECT_EQ(monitor.state(1), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{1}));
}

// Flap suppression: one failed leg demotes the primary to suspect, but a
// suspect replica is still routable *in its original slot* — the
// preference order must not reshuffle traffic onto the secondary.
TEST(HealthMonitorTest, SuspectDoesNotImmediatelyReroute) {
  FakeClock clock;
  HealthMonitor monitor(3, TestConfig(clock));
  monitor.ReportFailure(0);
  ASSERT_EQ(monitor.state(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{0, 1, 2}));

  // A success streak heals the flap without any transition churn beyond
  // suspect -> healthy.
  monitor.ReportSuccess(0, 0.001);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kSuspect);  // recover_after = 2
  monitor.ReportSuccess(0, 0.001);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.transitions(0), 2u);
}

TEST(HealthMonitorTest, DownReplicaLeavesPreferenceOrder) {
  FakeClock clock;
  HealthMonitor monitor(3, TestConfig(clock));
  for (int i = 0; i < 3; ++i) monitor.ReportFailure(1);
  ASSERT_EQ(monitor.state(1), ReplicaHealth::kDown);
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{0, 2}));
  // Success reports against a down replica are ignored: only a probe may
  // resurrect it, so a late straggler reply cannot skip the half-open
  // gate.
  monitor.ReportSuccess(1, 0.001);
  EXPECT_EQ(monitor.state(1), ReplicaHealth::kDown);
}

TEST(HealthMonitorTest, HalfOpenAdmitsExactlyOneProbePerCooldown) {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  for (int i = 0; i < 3; ++i) monitor.ReportFailure(0);
  ASSERT_EQ(monitor.state(0), ReplicaHealth::kDown);

  // Not admitted: a healthy replica, or a down one before the cooldown.
  EXPECT_FALSE(monitor.TryAdmitProbe(1));
  EXPECT_FALSE(monitor.TryAdmitProbe(0));
  clock.Advance(0.1);
  EXPECT_FALSE(monitor.TryAdmitProbe(0));

  clock.Advance(0.15);  // past down_cooldown_seconds = 0.2
  EXPECT_TRUE(monitor.TryAdmitProbe(0));
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kProbing);
  // Exactly one owner: every racing caller is refused while the probe is
  // in flight, and a probing replica takes no regular traffic.
  EXPECT_FALSE(monitor.TryAdmitProbe(0));
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{1}));
}

TEST(HealthMonitorTest, ProbeSuccessReadmitsAsSuspect) {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  for (int i = 0; i < 3; ++i) monitor.ReportFailure(0);
  clock.Advance(0.25);
  ASSERT_TRUE(monitor.TryAdmitProbe(0));

  monitor.ReportSuccess(0, 0.002);
  // Half-open success does not jump straight to healthy: the replica
  // must still earn recover_after consecutive successes.
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.PreferenceOrder(), (std::vector<int>{0, 1}));
  monitor.ReportSuccess(0, 0.002);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kHealthy);
}

TEST(HealthMonitorTest, ProbeFailureReturnsToDownAndReArmsCooldown) {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  for (int i = 0; i < 3; ++i) monitor.ReportFailure(0);
  clock.Advance(0.25);
  ASSERT_TRUE(monitor.TryAdmitProbe(0));

  monitor.ReportFailure(0);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kDown);
  // The cooldown re-armed at the failure: no immediate re-probe.
  EXPECT_FALSE(monitor.TryAdmitProbe(0));
  clock.Advance(0.25);
  EXPECT_TRUE(monitor.TryAdmitProbe(0));
}

TEST(HealthMonitorTest, EwmaLatencyCrossingTurnsHealthySuspect) {
  FakeClock clock;
  HealthConfig config = TestConfig(clock);
  config.ewma_alpha = 0.5;
  config.latency_suspect_seconds = 0.010;
  HealthMonitor monitor(1, config);

  // First observation seeds the EWMA directly.
  monitor.ReportSuccess(0, 0.004);
  EXPECT_DOUBLE_EQ(monitor.ewma_latency_seconds(0), 0.004);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kHealthy);

  // 0.5 * 0.004 + 0.5 * 0.020 = 0.012 > 0.010: latency alone demotes.
  monitor.ReportSuccess(0, 0.020);
  EXPECT_DOUBLE_EQ(monitor.ewma_latency_seconds(0), 0.012);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kSuspect);

  // Fast successes pull the EWMA back down and the success streak heals
  // the replica.
  monitor.ReportSuccess(0, 0.001);
  monitor.ReportSuccess(0, 0.001);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kHealthy);
}

TEST(HealthMonitorTest, LatencyTriggerDisabledByDefault) {
  FakeClock clock;
  HealthMonitor monitor(1, TestConfig(clock));  // latency_suspect_seconds = 0
  monitor.ReportSuccess(0, 10.0);
  monitor.ReportSuccess(0, 10.0);
  EXPECT_EQ(monitor.state(0), ReplicaHealth::kHealthy);
}

/// Runs a fixed outcome script against a fresh monitor and returns the
/// transition log.
std::vector<std::string> RunScript() {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  std::vector<std::string> log;
  monitor.set_on_transition([&](HealthMonitor::Transition t) {
    log.push_back(std::to_string(t.replica) + ":" +
                  ReplicaHealthToString(t.from) + "->" +
                  ReplicaHealthToString(t.to));
  });

  monitor.ReportFailure(0);
  monitor.ReportFailure(0);
  monitor.ReportSuccess(1, 0.003);
  monitor.ReportFailure(0);  // down
  clock.Advance(0.25);
  if (monitor.TryAdmitProbe(0)) monitor.ReportFailure(0);  // probe fails
  clock.Advance(0.25);
  if (monitor.TryAdmitProbe(0)) monitor.ReportSuccess(0, 0.002);
  monitor.ReportSuccess(0, 0.002);  // heals
  return log;
}

// Two-run determinism: the transition sequence is a pure function of the
// outcome script and the injected clock — byte-identical across runs.
TEST(HealthMonitorTest, TransitionSequenceIsDeterministic) {
  const std::vector<std::string> first = RunScript();
  const std::vector<std::string> second = RunScript();
  EXPECT_EQ(first, second);
  const std::vector<std::string> expected = {
      "0:healthy->suspect", "0:suspect->down",    "0:down->probing",
      "0:probing->down",    "0:down->probing",    "0:probing->suspect",
      "0:suspect->healthy",
  };
  EXPECT_EQ(first, expected);
}

/// Downs every replica in index order and returns the jittered cooldown
/// window each one drew.
std::vector<double> DrawCooldowns(uint64_t seed, int replicas) {
  FakeClock clock;
  HealthConfig config = TestConfig(clock);
  config.cooldown_jitter_fraction = 0.5;
  config.cooldown_jitter_seed = seed;
  HealthMonitor monitor(replicas, config);
  std::vector<double> windows;
  for (int r = 0; r < replicas; ++r) {
    monitor.ReportFailure(r);
    monitor.ReportFailure(r);
    monitor.ReportFailure(r);  // down; the jitter draw happens here
    windows.push_back(monitor.last_cooldown_seconds(r));
  }
  return windows;
}

// The thundering-herd fix: replicas downed together draw different
// half-open windows, so their probes reopen staggered — but the draws
// replay exactly for a fixed (seed, transition order).
TEST(HealthMonitorTest, CooldownJitterIsSeededAndDeterministic) {
  const std::vector<double> first = DrawCooldowns(0x5eed, 4);
  const std::vector<double> second = DrawCooldowns(0x5eed, 4);
  EXPECT_EQ(first, second);  // exact replay, not approximate

  // Windows stay inside cooldown * (1 ± fraction) and actually spread.
  for (double w : first) {
    EXPECT_GE(w, 0.2 * 0.5);
    EXPECT_LE(w, 0.2 * 1.5);
  }
  std::set<double> distinct(first.begin(), first.end());
  EXPECT_GT(distinct.size(), 1u) << "all replicas drew the same window";

  // A different seed draws a different schedule.
  const std::vector<double> other = DrawCooldowns(0xd1ff, 4);
  EXPECT_NE(first, other);
}

// The drawn window — not the configured base — is what gates the
// half-open probe admit.
TEST(HealthMonitorTest, JitteredWindowGatesTryAdmitProbe) {
  FakeClock clock;
  HealthConfig config = TestConfig(clock);
  config.cooldown_jitter_fraction = 0.5;
  HealthMonitor monitor(1, config);
  monitor.ReportFailure(0);
  monitor.ReportFailure(0);
  monitor.ReportFailure(0);  // down
  const double window = monitor.last_cooldown_seconds(0);
  ASSERT_GT(window, 0.0);
  clock.Advance(window * 0.9);
  EXPECT_FALSE(monitor.TryAdmitProbe(0));  // still inside the drawn window
  clock.Advance(window * 0.2);
  EXPECT_TRUE(monitor.TryAdmitProbe(0));  // past it
}

// Jitter off (the default) keeps the PR 8 behavior bit-for-bit: every
// window is exactly the configured cooldown.
TEST(HealthMonitorTest, ZeroJitterKeepsExactConfiguredCooldown) {
  FakeClock clock;
  HealthMonitor monitor(2, TestConfig(clock));
  for (int r = 0; r < 2; ++r) {
    monitor.ReportFailure(r);
    monitor.ReportFailure(r);
    monitor.ReportFailure(r);
    EXPECT_EQ(monitor.last_cooldown_seconds(r), 0.2);
  }
}

TEST(HealthMonitorTest, TotalTransitionsSumsAcrossReplicas) {
  FakeClock clock;
  HealthMonitor monitor(3, TestConfig(clock));
  monitor.ReportFailure(0);  // 0: healthy -> suspect
  monitor.ReportFailure(2);  // 2: healthy -> suspect
  monitor.ReportFailure(2);
  monitor.ReportFailure(2);  // 2: suspect -> down
  EXPECT_EQ(monitor.transitions(0), 1u);
  EXPECT_EQ(monitor.transitions(1), 0u);
  EXPECT_EQ(monitor.transitions(2), 2u);
  EXPECT_EQ(monitor.total_transitions(), 3u);
}

}  // namespace
}  // namespace ppgnn
