#include "spatial/mld.h"

#include <gtest/gtest.h>

#include "core/protocol.h"

namespace ppgnn {
namespace {

TEST(MldSolverTest, EmptyAndDegenerateInputs) {
  MeetingLocationSolver solver;
  EXPECT_TRUE(solver.Query({}, 3, AggregateKind::kSum).empty());
  EXPECT_TRUE(solver.Query({{0.5, 0.5}}, 0, AggregateKind::kSum).empty());
  auto one = solver.Query({{0.5, 0.5}}, 3, AggregateKind::kSum);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].poi.id, 0u);
}

TEST(MldSolverTest, CentralProposalWinsUnderSum) {
  MeetingLocationSolver solver;
  // Proposal 1 sits between the others: minimal total distance.
  std::vector<Point> proposals = {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  auto ranked = solver.Query(proposals, 3, AggregateKind::kSum);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].poi.id, 1u);
  EXPECT_LE(ranked[0].cost, ranked[1].cost);
  EXPECT_LE(ranked[1].cost, ranked[2].cost);
}

TEST(MldSolverTest, CostIsAggregateOverAllProposals) {
  MeetingLocationSolver solver;
  std::vector<Point> proposals = {{0.0, 0.0}, {1.0, 0.0}};
  auto ranked = solver.Query(proposals, 2, AggregateKind::kSum);
  // Each proposal is distance 1 from the other and 0 from itself.
  EXPECT_DOUBLE_EQ(ranked[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].cost, 1.0);
}

TEST(MldSolverTest, MaxAggregatePicksGeometricCenter) {
  MeetingLocationSolver solver;
  // Under max, the proposal minimizing the farthest proposal wins.
  std::vector<Point> proposals = {{0.0, 0.5}, {0.5, 0.5}, {1.0, 0.5}};
  auto ranked = solver.Query(proposals, 1, AggregateKind::kMax);
  EXPECT_EQ(ranked[0].poi.id, 1u);
  EXPECT_DOUBLE_EQ(ranked[0].cost, 0.5);
}

TEST(MldSolverTest, KTruncates) {
  MeetingLocationSolver solver;
  std::vector<Point> proposals(10, Point{0.5, 0.5});
  EXPECT_EQ(solver.Query(proposals, 4, AggregateKind::kSum).size(), 4u);
}

TEST(MldProtocolTest, EndToEndPpmld) {
  // The full portability claim: PPGNN with the MLD black box returns the
  // best proposal, privately.
  LspDatabase server({});
  server.SetSolver(std::make_unique<MeetingLocationSolver>());

  ProtocolParams params;
  params.n = 4;
  params.d = 4;
  params.delta = 10;
  params.k = 2;
  params.key_bits = 256;

  Rng rng(5);
  KeyPair keys = GenerateKeyPair(256, rng).value();
  // Asymmetric on purpose: exact ties would be broken differently after
  // the wire's fixed-point quantization.
  std::vector<Point> proposals = {
      {0.1, 0.1}, {0.45, 0.5}, {0.58, 0.5}, {0.9, 0.9}};
  auto outcome =
      RunQuery(Variant::kPpgnn, params, proposals, server, rng, &keys);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_GE(outcome->pois.size(), 1u);

  MeetingLocationSolver reference;
  auto ranked = reference.Query(proposals, params.k, AggregateKind::kSum);
  // The protocol answer is the sanitized prefix of the plaintext ranking.
  for (size_t i = 0; i < outcome->pois.size(); ++i) {
    EXPECT_NEAR(outcome->pois[i].x, ranked[i].poi.location.x, 1e-8);
    EXPECT_NEAR(outcome->pois[i].y, ranked[i].poi.location.y, 1e-8);
  }
}

TEST(MldProtocolTest, OptVariantAlsoWorks) {
  LspDatabase server({});
  server.SetSolver(std::make_unique<MeetingLocationSolver>());
  ProtocolParams params;
  params.n = 3;
  params.d = 4;
  params.delta = 12;
  params.k = 1;
  params.key_bits = 256;
  Rng rng(6);
  KeyPair keys = GenerateKeyPair(256, rng).value();
  std::vector<Point> proposals = {{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.8}};
  auto outcome =
      RunQuery(Variant::kPpgnnOpt, params, proposals, server, rng, &keys);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->pois.size(), 1u);
  EXPECT_NEAR(outcome->pois[0].x, 0.5, 1e-8);
  EXPECT_NEAR(outcome->pois[0].y, 0.5, 1e-8);
}

}  // namespace
}  // namespace ppgnn
