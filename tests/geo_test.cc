#include "geo/aggregate.h"
#include "geo/point.h"
#include "geo/rect.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ppgnn {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(RectTest, ContainsAndIntersects) {
  Rect r{0.2, 0.2, 0.6, 0.6};
  EXPECT_TRUE(r.Contains({0.2, 0.2}));   // boundary inclusive
  EXPECT_TRUE(r.Contains({0.4, 0.5}));
  EXPECT_FALSE(r.Contains({0.7, 0.4}));
  EXPECT_TRUE(r.Intersects({0.5, 0.5, 1.0, 1.0}));
  EXPECT_TRUE(r.Intersects({0.6, 0.6, 1.0, 1.0}));  // touching corners
  EXPECT_FALSE(r.Intersects({0.61, 0.61, 1.0, 1.0}));
}

TEST(RectTest, EmptyBehavesAsUnionIdentity) {
  Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  Rect r{0.1, 0.1, 0.3, 0.4};
  EXPECT_EQ(e.Union(r), r);
  EXPECT_EQ(r.Union(e), r);
}

TEST(RectTest, UnionCovers) {
  Rect a{0, 0, 1, 1};
  Rect b{2, 2, 3, 3};
  Rect u = a.Union(b);
  EXPECT_EQ(u, (Rect{0, 0, 3, 3}));
}

TEST(RectTest, ExpandToInclude) {
  Rect r = Rect::FromPoint({0.5, 0.5});
  r.ExpandToInclude({0.1, 0.9});
  EXPECT_EQ(r, (Rect{0.1, 0.5, 0.5, 0.9}));
}

TEST(RectTest, GeometryAccessors) {
  Rect r{1, 2, 4, 6};
  EXPECT_DOUBLE_EQ(r.Width(), 3);
  EXPECT_DOUBLE_EQ(r.Height(), 4);
  EXPECT_DOUBLE_EQ(r.Area(), 12);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 14);
  EXPECT_EQ(r.Center(), (Point{2.5, 4}));
}

TEST(RectDistanceTest, MinDistanceZeroInside) {
  Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MinDistance({0.5, 0.5}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance({1.0, 1.0}, r), 0.0);  // boundary
}

TEST(RectDistanceTest, MinDistanceToSidesAndCorners) {
  Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MinDistance({2.0, 0.5}, r), 1.0);   // right side
  EXPECT_DOUBLE_EQ(MinDistance({0.5, -2.0}, r), 2.0);  // below
  EXPECT_DOUBLE_EQ(MinDistance({4.0, 5.0}, r), 5.0);   // corner: 3-4-5
}

TEST(RectDistanceTest, MaxDistanceIsFarCorner) {
  Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MaxDistance({0, 0}, r), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(MaxDistance({-3, 0}, r), std::sqrt(16 + 1.0));
  EXPECT_DOUBLE_EQ(MaxDistance({0.5, 0.5}, r), std::sqrt(0.5));
}

TEST(RectDistanceTest, MinLeqMaxProperty) {
  Rng rng(21);
  Rect r{0.3, 0.3, 0.7, 0.8};
  for (int i = 0; i < 200; ++i) {
    Point p{rng.NextDouble() * 3 - 1, rng.NextDouble() * 3 - 1};
    EXPECT_LE(MinDistance(p, r), MaxDistance(p, r));
  }
}

TEST(AggregateTest, KindStringRoundTrip) {
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    EXPECT_EQ(AggregateKindFromString(AggregateKindToString(kind)).value(),
              kind);
  }
  EXPECT_FALSE(AggregateKindFromString("median").ok());
}

TEST(AggregateTest, CostValues) {
  std::vector<Point> queries = {{0, 0}, {0, 3}};
  Point p{4, 0};
  EXPECT_DOUBLE_EQ(AggregateCost(AggregateKind::kSum, p, queries), 4.0 + 5.0);
  EXPECT_DOUBLE_EQ(AggregateCost(AggregateKind::kMax, p, queries), 5.0);
  EXPECT_DOUBLE_EQ(AggregateCost(AggregateKind::kMin, p, queries), 4.0);
}

TEST(AggregateTest, SingleUserAllKindsEqual) {
  std::vector<Point> one = {{0.2, 0.8}};
  Point p{0.9, 0.1};
  double dist = Distance(p, one[0]);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    EXPECT_DOUBLE_EQ(AggregateCost(kind, p, one), dist);
  }
}

class AggregateBoundTest : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(AggregateBoundTest, MinDistanceLowerBoundsEveryInteriorPoint) {
  // The MBM pruning bound must satisfy
  //   AggregateMinDistance(box, C) <= F(q, C) for all q in box.
  AggregateKind kind = GetParam();
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    Rect box{rng.NextDouble() * 0.5, rng.NextDouble() * 0.5, 0, 0};
    box.max_x = box.min_x + rng.NextDouble() * 0.4;
    box.max_y = box.min_y + rng.NextDouble() * 0.4;
    std::vector<Point> queries;
    for (int i = 0; i < 4; ++i)
      queries.push_back({rng.NextDouble(), rng.NextDouble()});
    double bound = AggregateMinDistance(kind, box, queries);
    for (int i = 0; i < 20; ++i) {
      Point q{box.min_x + rng.NextDouble() * box.Width(),
              box.min_y + rng.NextDouble() * box.Height()};
      EXPECT_LE(bound, AggregateCost(kind, q, queries) + 1e-12);
    }
  }
}

TEST_P(AggregateBoundTest, MaxDistanceUpperBoundsEveryInteriorPoint) {
  AggregateKind kind = GetParam();
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    Rect box{rng.NextDouble() * 0.5, rng.NextDouble() * 0.5, 0, 0};
    box.max_x = box.min_x + rng.NextDouble() * 0.4;
    box.max_y = box.min_y + rng.NextDouble() * 0.4;
    std::vector<Point> queries;
    for (int i = 0; i < 4; ++i)
      queries.push_back({rng.NextDouble(), rng.NextDouble()});
    double bound = AggregateMaxDistance(kind, box, queries);
    for (int i = 0; i < 20; ++i) {
      Point q{box.min_x + rng.NextDouble() * box.Width(),
              box.min_y + rng.NextDouble() * box.Height()};
      EXPECT_GE(bound, AggregateCost(kind, q, queries) - 1e-12);
    }
  }
}

TEST_P(AggregateBoundTest, DegenerateBoxEqualsPointCost) {
  AggregateKind kind = GetParam();
  Point p{0.42, 0.24};
  Rect box = Rect::FromPoint(p);
  std::vector<Point> queries = {{0.1, 0.9}, {0.8, 0.3}, {0.5, 0.5}};
  EXPECT_DOUBLE_EQ(AggregateMinDistance(kind, box, queries),
                   AggregateCost(kind, p, queries));
  EXPECT_DOUBLE_EQ(AggregateMaxDistance(kind, box, queries),
                   AggregateCost(kind, p, queries));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregateBoundTest,
                         ::testing::Values(AggregateKind::kSum,
                                           AggregateKind::kMax,
                                           AggregateKind::kMin));

}  // namespace
}  // namespace ppgnn
