// Tests for the wire-level LSP entry point (LspHandleQuery): the surface
// a network-facing LSP daemon exposes to untrusted clients. Beyond the
// happy path, this suite throws malformed and adversarial inputs at it —
// the decoder must fail cleanly, never crash or mis-serve.

#include <gtest/gtest.h>

#include "core/candidate.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "crypto/poi_codec.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

class LspServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(3000, 777));
    Rng rng(778);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }

  // Builds a well-formed query + uploads for a 3-user group, returning
  // the expected plaintext answer alongside.
  struct Request {
    std::vector<uint8_t> query;
    std::vector<std::vector<uint8_t>> uploads;
    uint64_t qi;
    std::vector<Point> real;
  };

  static Request MakeRequest(Rng& rng, int k = 3) {
    Request req;
    PartitionPlan plan = SolvePartition(3, 4, 8).value();
    QueryMessage query;
    query.k = k;
    query.theta0 = 0.05;
    query.aggregate = AggregateKind::kSum;
    query.plan = plan;
    query.pk = keys_->pub;
    // Place everyone at segment 1 position 1 for simplicity.
    std::vector<int> x(plan.alpha, 1);
    req.qi = QueryIndex(plan, 1, x);
    Encryptor enc(keys_->pub);
    query.indicator =
        EncryptIndicator(enc, req.qi, plan.delta_prime, rng).value();
    req.query = query.Encode();

    std::vector<int> subgroup = SubgroupOfUser(plan);
    for (uint32_t u = 0; u < 3; ++u) {
      LocationSetMessage msg;
      msg.user_id = u;
      for (int i = 0; i < 4; ++i) {
        msg.locations.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      // Real location at absolute position 1 (segment 1, x = 1).
      req.real.push_back(msg.locations[0]);
      req.uploads.push_back(msg.Encode());
    }
    return req;
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* LspServiceTest::db_ = nullptr;
KeyPair* LspServiceTest::keys_ = nullptr;

TEST_F(LspServiceTest, HappyPathServesCorrectAnswer) {
  Rng rng(1);
  Request req = MakeRequest(rng);
  QueryInstrumentation info;
  auto answer_bytes = LspHandleQuery(*db_, req.query, req.uploads,
                                     TestConfig{}, /*sanitize=*/false, 1,
                                     &info);
  ASSERT_TRUE(answer_bytes.ok()) << answer_bytes.status();
  EXPECT_EQ(info.delta_prime, 8u);

  AnswerMessage answer =
      AnswerMessage::Decode(answer_bytes.value(), keys_->pub).value();
  Decryptor dec(keys_->pub, keys_->sec);
  std::vector<BigInt> plain;
  for (const Ciphertext& ct : answer.ciphertexts) {
    plain.push_back(dec.Decrypt(ct).value());
  }
  PoiCodec codec(keys_->pub.key_bits);
  auto pois = codec.Decode(plain).value();
  auto expected = db_->solver().Query(req.real, 3, AggregateKind::kSum);
  ASSERT_EQ(pois.size(), expected.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_NEAR(pois[i].x, expected[i].poi.location.x, 1e-8);
  }
}

TEST_F(LspServiceTest, RejectsGarbageQueryBytes) {
  Rng rng(2);
  Request req = MakeRequest(rng);
  // Random garbage of assorted sizes must never crash the decoder.
  Rng fuzz(3);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = fuzz.NextBelow(200);
    std::vector<uint8_t> junk(len);
    fuzz.FillBytes(junk.data(), junk.size());
    auto result = LspHandleQuery(*db_, junk, req.uploads);
    EXPECT_FALSE(result.ok());
  }
}

TEST_F(LspServiceTest, RejectsBitflippedQuery) {
  Rng rng(4);
  Request req = MakeRequest(rng);
  Rng fuzz(5);
  int served = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> mutated = req.query;
    size_t pos = fuzz.NextBelow(std::min<size_t>(mutated.size(), 64));
    mutated[pos] ^= static_cast<uint8_t>(1 + fuzz.NextBelow(255));
    auto result = LspHandleQuery(*db_, mutated, req.uploads);
    // Header corruption must be rejected; flips inside ciphertext bodies
    // may decode (they are valid ciphertexts of garbage) — that's fine,
    // the point is no crash and no false rejection of the LSP itself.
    if (result.ok()) ++served;
  }
  // At least the clearly-structural corruptions must be caught.
  EXPECT_LT(served, 60);
}

TEST_F(LspServiceTest, RejectsUnknownUserId) {
  Rng rng(6);
  Request req = MakeRequest(rng);
  LocationSetMessage rogue = LocationSetMessage::Decode(req.uploads[0]).value();
  rogue.user_id = 99;
  req.uploads[0] = rogue.Encode();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsWrongLocationSetSize) {
  Rng rng(7);
  Request req = MakeRequest(rng);
  LocationSetMessage bad = LocationSetMessage::Decode(req.uploads[1]).value();
  bad.locations.pop_back();  // d = 3 != 4
  req.uploads[1] = bad.Encode();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsMissingUpload) {
  Rng rng(8);
  Request req = MakeRequest(rng);
  req.uploads.pop_back();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsIndicatorOfWrongLength) {
  Rng rng(9);
  Request req = MakeRequest(rng);
  // Rebuild the query with a too-short indicator: decode must fail
  // because the indicator length is checked against delta'.
  QueryMessage query = QueryMessage::Decode(req.query).value();
  query.indicator.pop_back();
  EXPECT_FALSE(LspHandleQuery(*db_, query.Encode(), req.uploads).ok());
}

TEST_F(LspServiceTest, SanitationOnReturnsPrefix) {
  Rng rng(10);
  Request req = MakeRequest(rng, /*k=*/3);
  QueryInstrumentation info;
  auto answer_bytes = LspHandleQuery(*db_, req.query, req.uploads,
                                     TestConfig{}, /*sanitize=*/true, 1,
                                     &info);
  ASSERT_TRUE(answer_bytes.ok());
  EXPECT_GT(info.sanitize_tests, 0u);
}

}  // namespace
}  // namespace ppgnn
