// Tests for the wire-level LSP entry point (LspHandleQuery) and the
// LspService front-end built on it: the surface a network-facing LSP
// daemon exposes to untrusted clients. Beyond the happy path, this suite
// throws malformed and adversarial inputs at the decoder (it must fail
// cleanly, never crash or mis-serve) and drives the service with
// concurrent clients, full queues, and expiring deadlines — the
// concurrency cases are the TSan tier.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/candidate.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "crypto/poi_codec.h"
#include "service/blinding_refiller.h"
#include "service/lsp_service.h"
#include "service/workload.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

class LspServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(3000, 777));
    Rng rng(778);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }

  // Builds a well-formed query + uploads for a 3-user group, returning
  // the expected plaintext answer alongside.
  struct Request {
    std::vector<uint8_t> query;
    std::vector<std::vector<uint8_t>> uploads;
    uint64_t qi;
    std::vector<Point> real;
  };

  static Request MakeRequest(Rng& rng, int k = 3) {
    Request req;
    PartitionPlan plan = SolvePartition(3, 4, 8).value();
    QueryMessage query;
    query.k = k;
    query.theta0 = 0.05;
    query.aggregate = AggregateKind::kSum;
    query.plan = plan;
    query.pk = keys_->pub;
    // Place everyone at segment 1 position 1 for simplicity.
    std::vector<int> x(plan.alpha, 1);
    req.qi = QueryIndex(plan, 1, x);
    Encryptor enc(keys_->pub);
    query.indicator =
        EncryptIndicator(enc, req.qi, plan.delta_prime, rng).value();
    req.query = query.Encode().value();

    std::vector<int> subgroup = SubgroupOfUser(plan);
    for (uint32_t u = 0; u < 3; ++u) {
      LocationSetMessage msg;
      msg.user_id = u;
      for (int i = 0; i < 4; ++i) {
        msg.locations.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      // Real location at absolute position 1 (segment 1, x = 1).
      req.real.push_back(msg.locations[0]);
      req.uploads.push_back(msg.Encode());
    }
    return req;
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* LspServiceTest::db_ = nullptr;
KeyPair* LspServiceTest::keys_ = nullptr;

TEST_F(LspServiceTest, HappyPathServesCorrectAnswer) {
  Rng rng(1);
  Request req = MakeRequest(rng);
  QueryInstrumentation info;
  auto answer_bytes = LspHandleQuery(*db_, req.query, req.uploads,
                                     TestConfig{}, /*sanitize=*/false, 1,
                                     &info);
  ASSERT_TRUE(answer_bytes.ok()) << answer_bytes.status();
  EXPECT_EQ(info.delta_prime, 8u);

  AnswerMessage answer =
      AnswerMessage::Decode(answer_bytes.value(), keys_->pub).value();
  Decryptor dec(keys_->pub, keys_->sec);
  std::vector<BigInt> plain;
  for (const Ciphertext& ct : answer.ciphertexts) {
    plain.push_back(dec.Decrypt(ct).value());
  }
  PoiCodec codec(keys_->pub.key_bits);
  auto pois = codec.Decode(plain).value();
  auto expected = db_->solver().Query(req.real, 3, AggregateKind::kSum);
  ASSERT_EQ(pois.size(), expected.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_NEAR(pois[i].x, expected[i].poi.location.x, 1e-8);
  }
}

TEST_F(LspServiceTest, RejectsGarbageQueryBytes) {
  Rng rng(2);
  Request req = MakeRequest(rng);
  // Random garbage of assorted sizes must never crash the decoder.
  Rng fuzz(3);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = fuzz.NextBelow(200);
    std::vector<uint8_t> junk(len);
    fuzz.FillBytes(junk.data(), junk.size());
    auto result = LspHandleQuery(*db_, junk, req.uploads);
    EXPECT_FALSE(result.ok());
  }
}

TEST_F(LspServiceTest, RejectsBitflippedQuery) {
  Rng rng(4);
  Request req = MakeRequest(rng);
  Rng fuzz(5);
  int served = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> mutated = req.query;
    size_t pos = fuzz.NextBelow(std::min<size_t>(mutated.size(), 64));
    mutated[pos] ^= static_cast<uint8_t>(1 + fuzz.NextBelow(255));
    auto result = LspHandleQuery(*db_, mutated, req.uploads);
    // Header corruption must be rejected; flips inside ciphertext bodies
    // may decode (they are valid ciphertexts of garbage) — that's fine,
    // the point is no crash and no false rejection of the LSP itself.
    if (result.ok()) ++served;
  }
  // At least the clearly-structural corruptions must be caught.
  EXPECT_LT(served, 60);
}

TEST_F(LspServiceTest, RejectsUnknownUserId) {
  Rng rng(6);
  Request req = MakeRequest(rng);
  LocationSetMessage rogue = LocationSetMessage::Decode(req.uploads[0]).value();
  rogue.user_id = 99;
  req.uploads[0] = rogue.Encode();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsWrongLocationSetSize) {
  Rng rng(7);
  Request req = MakeRequest(rng);
  LocationSetMessage bad = LocationSetMessage::Decode(req.uploads[1]).value();
  bad.locations.pop_back();  // d = 3 != 4
  req.uploads[1] = bad.Encode();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsMissingUpload) {
  Rng rng(8);
  Request req = MakeRequest(rng);
  req.uploads.pop_back();
  EXPECT_FALSE(LspHandleQuery(*db_, req.query, req.uploads).ok());
}

TEST_F(LspServiceTest, RejectsIndicatorOfWrongLength) {
  Rng rng(9);
  Request req = MakeRequest(rng);
  // Rebuild the query with a too-short indicator: decode must fail
  // because the indicator length is checked against delta'.
  QueryMessage query = QueryMessage::Decode(req.query).value();
  query.indicator.pop_back();
  EXPECT_FALSE(
      LspHandleQuery(*db_, query.Encode().value(), req.uploads).ok());
}

TEST_F(LspServiceTest, SanitationOnReturnsPrefix) {
  Rng rng(10);
  Request req = MakeRequest(rng, /*k=*/3);
  QueryInstrumentation info;
  auto answer_bytes = LspHandleQuery(*db_, req.query, req.uploads,
                                     TestConfig{}, /*sanitize=*/true, 1,
                                     &info);
  ASSERT_TRUE(answer_bytes.ok());
  EXPECT_GT(info.sanitize_tests, 0u);
}

TEST_F(LspServiceTest, CancelFlagAbandonsQuery) {
  Rng rng(11);
  Request req = MakeRequest(rng);
  std::atomic<bool> cancel{true};
  auto result = LspHandleQuery(*db_, req.query, req.uploads, TestConfig{},
                               /*sanitize=*/false, 1, nullptr, &cancel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// --- LspService: the concurrent serving front-end ---

class ServiceTest : public LspServiceTest {
 protected:
  static ProtocolParams GroupParams() {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 3;
    params.key_bits = keys_->pub.key_bits;
    params.sanitize = false;
    return params;
  }

  static ServiceRequest WorkloadRequest(Rng& rng,
                                        std::vector<Point>* real = nullptr) {
    ProtocolParams params = GroupParams();
    std::vector<Point> group;
    for (int i = 0; i < params.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    if (real != nullptr) *real = group;
    return BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng)
        .value();
  }
};

TEST_F(ServiceTest, ServesOneRequestEndToEnd) {
  ServiceConfig config;
  config.workers = 2;
  config.sanitize = false;
  LspService service(*db_, config);

  Rng rng(20);
  std::vector<Point> real;
  ServiceRequest request = WorkloadRequest(rng, &real);
  std::vector<uint8_t> frame = service.Call(std::move(request));

  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  auto expected = db_->solver().Query(real, 3, AggregateKind::kSum);
  ASSERT_EQ(reply.pois.size(), expected.size());
  for (size_t i = 0; i < reply.pois.size(); ++i) {
    EXPECT_NEAR(reply.pois[i].x, expected[i].poi.location.x, 1e-8);
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.totals.delta_prime, 8u);
  EXPECT_EQ(stats.latency.count, 1u);
  EXPECT_GT(stats.latency.p99_seconds, 0.0);
}

TEST_F(ServiceTest, MalformedQueryGetsStructuredErrorFrame) {
  ServiceConfig config;
  config.workers = 1;
  LspService service(*db_, config);

  ServiceRequest request;
  request.query = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> frame = service.Call(std::move(request));
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kMalformed);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 0u);
}

TEST_F(ServiceTest, RejectsOnFullQueueWithOverloadedFrame) {
  // One worker held on a latch + capacity-1 queue: the third and fourth
  // submissions must bounce with kOverloaded, deterministically.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.sanitize = false;
  config.test_execute_hook = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  LspService service(*db_, config);

  std::mutex reply_mu;
  std::condition_variable reply_cv;
  std::vector<std::vector<uint8_t>> frames;
  auto collect = [&](std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(reply_mu);
    frames.push_back(std::move(frame));
    reply_cv.notify_all();
  };

  Rng rng(21);
  ASSERT_TRUE(service.Submit(WorkloadRequest(rng), collect));
  // Wait until the worker is parked inside request 1 so request 2 is
  // guaranteed to sit in the queue.
  while (entered.load() < 1) std::this_thread::yield();
  ASSERT_TRUE(service.Submit(WorkloadRequest(rng), collect));
  EXPECT_FALSE(service.Submit(WorkloadRequest(rng), collect));
  EXPECT_FALSE(service.Submit(WorkloadRequest(rng), collect));

  {
    // The two rejects were delivered inline.
    std::lock_guard<std::mutex> lock(reply_mu);
    ASSERT_EQ(frames.size(), 2u);
    for (const auto& frame : frames) {
      ResponseFrame decoded = ResponseFrame::Decode(frame).value();
      ASSERT_TRUE(decoded.is_error);
      EXPECT_EQ(decoded.error.code, WireError::kOverloaded);
    }
  }

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(reply_mu);
    reply_cv.wait(lock, [&] { return frames.size() == 4u; });
  }
  service.Shutdown();

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// Graceful drain: once Shutdown(deadline) begins, new submissions bounce
// with a structured kShuttingDown frame (not kOverloaded — the queue has
// room) while everything already accepted is served. Every submitted
// request gets exactly one reply: accepted + rejected == submitted.
TEST_F(ServiceTest, GracefulDrainAnswersAcceptedAndRejectsNewWork) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;  // rejections below can only mean "draining"
  config.sanitize = false;
  config.test_execute_hook = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  LspService service(*db_, config);

  std::mutex reply_mu;
  std::condition_variable reply_cv;
  std::vector<std::vector<uint8_t>> frames;
  auto collect = [&](std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(reply_mu);
    frames.push_back(std::move(frame));
    reply_cv.notify_all();
  };

  Rng rng(25);
  uint64_t submitted = 0, accepted = 0;
  auto submit = [&] {
    ++submitted;
    if (service.Submit(WorkloadRequest(rng), collect)) {
      ++accepted;
      return true;
    }
    return false;
  };
  ASSERT_TRUE(submit());
  while (entered.load() < 1) std::this_thread::yield();
  ASSERT_TRUE(submit());
  ASSERT_TRUE(submit());

  // Drain in the background: Shutdown(deadline) blocks until the worker
  // (parked on the gate) empties the queue.
  std::thread drainer([&] { service.Shutdown(/*drain_deadline_seconds=*/10.0); });
  // Submissions racing the stopping flag may still be accepted — they
  // joined the drain and will be served. The first rejection is the
  // structured shutting-down frame.
  while (submit()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  drainer.join();
  {
    std::unique_lock<std::mutex> lock(reply_mu);
    reply_cv.wait(lock, [&] { return frames.size() == submitted; });
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected, submitted - accepted);
  EXPECT_EQ(stats.accepted + stats.rejected, submitted);
  EXPECT_EQ(stats.served, accepted);  // drained, not dropped
  EXPECT_EQ(stats.drain_flushed, 0u);

  int answers = 0, shutting_down = 0;
  for (const auto& frame : frames) {
    ResponseFrame decoded = ResponseFrame::Decode(frame).value();
    if (!decoded.is_error) {
      ++answers;
      continue;
    }
    EXPECT_EQ(decoded.error.code, WireError::kShuttingDown);
    EXPECT_GT(decoded.error.retry_after_ms, 0u);  // actionable hint
    ++shutting_down;
  }
  EXPECT_EQ(answers, static_cast<int>(accepted));
  EXPECT_EQ(shutting_down, static_cast<int>(submitted - accepted));
  EXPECT_GE(shutting_down, 1);
}

// A drain that cannot finish by the deadline flushes the still-queued
// requests with kShuttingDown frames (retry hint included) instead of
// leaving their callbacks to dangle; executing work still completes.
TEST_F(ServiceTest, DrainDeadlineFlushesQueuedRequests) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.sanitize = false;
  config.test_execute_hook = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  LspService service(*db_, config);

  std::mutex reply_mu;
  std::condition_variable reply_cv;
  std::vector<std::vector<uint8_t>> frames;
  auto collect = [&](std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(reply_mu);
    frames.push_back(std::move(frame));
    reply_cv.notify_all();
  };

  Rng rng(26);
  ASSERT_TRUE(service.Submit(WorkloadRequest(rng), collect));
  while (entered.load() < 1) std::this_thread::yield();
  ASSERT_TRUE(service.Submit(WorkloadRequest(rng), collect));
  ASSERT_TRUE(service.Submit(WorkloadRequest(rng), collect));

  // The worker is parked, so the 50 ms drain deadline must expire and
  // flush the two queued requests.
  std::thread drainer([&] { service.Shutdown(/*drain_deadline_seconds=*/0.05); });
  {
    std::unique_lock<std::mutex> lock(reply_mu);
    reply_cv.wait(lock, [&] { return frames.size() == 2u; });
    for (const auto& frame : frames) {
      ResponseFrame decoded = ResponseFrame::Decode(frame).value();
      ASSERT_TRUE(decoded.is_error);
      EXPECT_EQ(decoded.error.code, WireError::kShuttingDown);
      EXPECT_GT(decoded.error.retry_after_ms, 0u);
    }
  }

  // The executing request was never abandoned: release it and it serves.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  drainer.join();
  {
    std::unique_lock<std::mutex> lock(reply_mu);
    reply_cv.wait(lock, [&] { return frames.size() == 3u; });
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.drain_flushed, 2u);
  // accepted == served + flushed: exactly one reply per accepted request.
  EXPECT_EQ(stats.accepted, stats.served + stats.drain_flushed);
  EXPECT_EQ(stats.abandoned_executing, 0u);
}

TEST_F(ServiceTest, DeadlineExpiresInQueueWithoutExecution) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.sanitize = false;
  config.test_execute_hook = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  LspService service(*db_, config);

  std::mutex reply_mu;
  std::condition_variable reply_cv;
  size_t replies = 0;
  std::vector<uint8_t> expired_frame;

  Rng rng(22);
  (void)service.Submit(WorkloadRequest(rng), [&](std::vector<uint8_t>) {
    std::lock_guard<std::mutex> lock(reply_mu);
    ++replies;
    reply_cv.notify_all();
  });
  while (entered.load() < 1) std::this_thread::yield();

  ServiceRequest doomed = WorkloadRequest(rng);
  doomed.deadline_seconds = 0.01;
  (void)service.Submit(std::move(doomed), [&](std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(reply_mu);
    expired_frame = std::move(frame);
    ++replies;
    reply_cv.notify_all();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(reply_mu);
    reply_cv.wait(lock, [&] { return replies == 2u; });
  }
  service.Shutdown();

  ResponseFrame decoded = ResponseFrame::Decode(expired_frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kDeadlineExceeded);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.served, 1u);
  // The doomed request never reached the execute hook.
  EXPECT_EQ(entered.load(), 1);
}

TEST_F(ServiceTest, DeadlineCancelsMidExecution) {
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  // Park the worker *inside* the request (after in-flight registration)
  // long enough for the monitor to flip the cancel flag.
  config.test_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  LspService service(*db_, config);

  Rng rng(23);
  ServiceRequest request = WorkloadRequest(rng);
  request.deadline_seconds = 0.02;
  std::vector<uint8_t> frame = service.Call(std::move(request));

  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kDeadlineExceeded);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.served, 0u);
}

// The TSan workhorse: many closed-loop clients against a small queue
// with a mix of deadlines and garbage, exercising admission, execution,
// cancellation, and stats merging concurrently.
TEST_F(ServiceTest, ConcurrentClientsSmallQueueMixedDeadlines) {
  ServiceConfig config;
  config.workers = 3;
  config.queue_capacity = 4;
  config.lsp_threads = 2;  // intra-query fan-out on top of the pool
  config.sanitize = false;
  LspService service(*db_, config);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 5;
  std::atomic<int> answers{0}, errors{0}, transport_garbage{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      Decryptor dec(keys_->pub, keys_->sec);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServiceRequest request;
        if (i % 5 == 4) {
          request.query = {0xFF, 0xFF, 0xFF};  // malformed
        } else {
          request = WorkloadRequest(rng);
        }
        if (i % 3 == 1) request.deadline_seconds = 1e-6;  // will expire
        std::vector<uint8_t> frame = service.Call(std::move(request));
        auto reply = ParseServedReply(frame, *keys_, dec, /*layered=*/false);
        if (!reply.ok()) {
          transport_garbage.fetch_add(1);
        } else if (reply->ok) {
          answers.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Shutdown();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kClients) * kRequestsPerClient;
  // Every reply is a well-formed frame — answer or structured error.
  EXPECT_EQ(transport_garbage.load(), 0);
  EXPECT_EQ(static_cast<uint64_t>(answers.load() + errors.load()), kTotal);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted + stats.rejected, kTotal);
  EXPECT_EQ(stats.accepted,
            stats.served + stats.failed + stats.deadline_expired);
  EXPECT_EQ(stats.served, static_cast<uint64_t>(answers.load()));
  EXPECT_EQ(stats.latency.count, kTotal);
  EXPECT_GT(stats.deadline_expired, 0u);
  EXPECT_GE(stats.latency.p99_seconds, stats.latency.p50_seconds);
}

TEST_F(ServiceTest, StatsExposeRetryHedgeDegradedAndErrorCodeCounters) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.sanitize = false;
  // Keep the hopeless-deadline request below on the queue-expiry path:
  // with cost admission on it would be shed at Submit as kOverloaded
  // instead (that path is covered in admission_test).
  config.cost_admission = false;
  LspService service(*db_, config);

  // Per-code error replies: one malformed...
  ServiceRequest malformed;
  malformed.query = {0xBA, 0xD0};
  ResponseFrame err1 =
      ResponseFrame::Decode(service.Call(std::move(malformed))).value();
  ASSERT_TRUE(err1.is_error);
  EXPECT_EQ(err1.error.code, WireError::kMalformed);
  // ...and one deadline (expires before a worker can pick it up).
  Rng rng(24);
  ServiceRequest doomed = WorkloadRequest(rng);
  doomed.deadline_seconds = 1e-9;
  ResponseFrame err2 =
      ResponseFrame::Decode(service.Call(std::move(doomed))).value();
  ASSERT_TRUE(err2.is_error);
  EXPECT_EQ(err2.error.code, WireError::kDeadlineExceeded);

  // A degraded-but-served query: the request says 2 of its users were
  // substituted; the service must count the query and sum the users.
  ServiceRequest degraded = WorkloadRequest(rng);
  degraded.degraded_users = 2;
  ResponseFrame served =
      ResponseFrame::Decode(service.Call(std::move(degraded))).value();
  EXPECT_FALSE(served.is_error);

  // Client-side resilience events flow in through the Record hooks.
  service.RecordClientRetry();
  service.RecordClientRetry();
  service.RecordClientHedge();

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.hedges, 1u);
  EXPECT_EQ(stats.degraded_queries, 1u);
  EXPECT_EQ(stats.totals.degraded_users, 2u);
  EXPECT_EQ(stats.error_replies[static_cast<size_t>(WireError::kMalformed)],
            1u);
  EXPECT_EQ(
      stats.error_replies[static_cast<size_t>(WireError::kDeadlineExceeded)],
      1u);
  EXPECT_EQ(stats.error_replies[static_cast<size_t>(WireError::kOverloaded)],
            0u);
  EXPECT_EQ(stats.error_replies[static_cast<size_t>(WireError::kInternal)],
            0u);
  // The counters are part of the human-readable snapshot too.
  EXPECT_NE(stats.ToString().find("retries=2"), std::string::npos);
  EXPECT_NE(stats.ToString().find("degraded=1"), std::string::npos);
}

TEST_F(ServiceTest, LatencyHistogramQuantilesAreOrdered) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(i * 1e-5);  // 10us .. 10ms
  LatencySummary summary = hist.Summarize();
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_GT(summary.p50_seconds, 0.004);
  EXPECT_LT(summary.p50_seconds, 0.007);
  EXPECT_GT(summary.p99_seconds, summary.p90_seconds * 0.99);
  EXPECT_GE(summary.max_seconds, summary.p99_seconds * 0.9);
  EXPECT_NEAR(summary.mean_seconds, 0.005, 0.001);
}

TEST_F(ServiceTest, QueueWaitAndExecuteAreRecordedSeparately) {
  // Hold the single worker on a latch so a second request measurably
  // waits in the queue, then verify the two histograms split the
  // end-to-end time instead of lumping it together.
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  config.test_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  LspService service(*db_, config);

  Rng rng(60);
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(service.Submit(WorkloadRequest(rng),
                               [&](std::vector<uint8_t>) {
                                 std::lock_guard<std::mutex> lock(done_mu);
                                 ++done;
                                 done_cv.notify_all();
                               }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == 2; });
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.served, 2u);
  ASSERT_EQ(stats.queue_wait.count, 2u);
  ASSERT_EQ(stats.execute.count, 2u);
  // The second request sat behind the latched first for >= 30ms; that
  // time lands in queue_wait, not in execute (the latch holds the worker
  // before the execute timer starts, so execute stays honest).
  EXPECT_GT(stats.queue_wait.max_seconds, 0.025);
  EXPECT_GT(stats.execute.max_seconds, 0.0);
  EXPECT_LT(stats.execute.max_seconds, 0.025);
  EXPECT_GE(stats.latency.max_seconds, stats.queue_wait.max_seconds);
}

TEST_F(ServiceTest, WireDeadlinePropagatesFromQueryTrailer) {
  // The deadline rides inside the encoded QueryMessage (wire version 2):
  // no ServiceRequest.deadline_seconds is set, yet the service must honor
  // the 1 ms budget — here by shedding at admission (predicted cost far
  // exceeds it) with a structured kOverloaded + retry hint.
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  Rng rng(61);
  ProtocolParams params = GroupParams();
  std::vector<Point> group;
  for (int i = 0; i < params.n; ++i) {
    group.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  RequestWireOptions wire;
  wire.deadline_ms = 1;
  ServiceRequest request =
      BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng, wire)
          .value();
  ASSERT_EQ(request.deadline_seconds, 0.0);

  std::vector<uint8_t> frame;
  EXPECT_FALSE(service.Submit(std::move(request), [&](std::vector<uint8_t> f) {
    frame = std::move(f);
  }));
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kOverloaded);
  EXPECT_GT(decoded.error.retry_after_ms, 0u);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.accepted, 0u);

  // A generous wire deadline sails through and is served normally.
  wire.deadline_ms = 30000;
  ServiceRequest fine =
      BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng, wire)
          .value();
  std::vector<uint8_t> ok_frame = service.Call(std::move(fine));
  EXPECT_FALSE(ResponseFrame::Decode(ok_frame).value().is_error);
  EXPECT_EQ(service.Stats().served, 1u);
}

TEST_F(ServiceTest, WireIdempotencyKeyPropagatesFromQueryTrailer) {
  // The dedup key also rides in the trailer: two submissions of the same
  // encoded request coalesce without ServiceRequest.idempotency_key set.
  ServiceConfig config;
  config.workers = 1;
  config.sanitize = false;
  LspService service(*db_, config);

  Rng rng(62);
  ProtocolParams params = GroupParams();
  std::vector<Point> group;
  for (int i = 0; i < params.n; ++i) {
    group.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  RequestWireOptions wire;
  wire.idempotency_key = 0xABCDEF01ull;
  ServiceRequest request =
      BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng, wire)
          .value();
  ASSERT_EQ(request.idempotency_key, 0u);
  ServiceRequest copy = request;

  std::vector<uint8_t> first = service.Call(std::move(request));
  EXPECT_FALSE(ResponseFrame::Decode(first).value().is_error);
  std::vector<uint8_t> second = service.Call(std::move(copy));
  EXPECT_EQ(second, first);  // replayed bit-identically from the cache
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.dedup_replays, 1u);
}

TEST_F(ServiceTest, PooledEncryptorSharedAcrossClientsAndRefiller) {
  // The Encryptor thread-safety contract under real contention (TSan
  // tier): one pooled Encryptor shared by concurrent client threads
  // building requests against the service worker pool, while a
  // BlindingRefiller thread refills the same pools and Stats() snapshots
  // the blinding counters mid-flight.
  auto pooled = std::make_shared<const Encryptor>(*keys_);

  ServiceConfig config;
  config.workers = 3;
  config.queue_capacity = 16;
  config.sanitize = false;
  config.observed_encryptor = pooled;
  LspService service(*db_, config);

  BlindingRefillerOptions refill;
  refill.levels = {1};
  refill.low_watermark = 8;
  refill.target = 32;
  refill.poll_interval_seconds = 0.0005;
  BlindingRefiller refiller(pooled, refill);

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 4;
  std::atomic<int> answers{0}, errors{0}, transport_garbage{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(7000 + c);
      Decryptor dec(keys_->pub, keys_->sec);
      ProtocolParams params = GroupParams();
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::vector<Point> group;
        for (int u = 0; u < params.n; ++u) {
          group.push_back({rng.NextDouble(), rng.NextDouble()});
        }
        ServiceRequest request =
            BuildServiceRequest(Variant::kPpgnn, params, group, *keys_, rng,
                                {}, pooled.get())
                .value();
        std::vector<uint8_t> frame = service.Call(std::move(request));
        auto reply = ParseServedReply(frame, *keys_, dec, /*layered=*/false);
        if (!reply.ok()) {
          transport_garbage.fetch_add(1);
        } else if (reply->ok) {
          answers.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
        // Snapshot stats concurrently with the refiller and the other
        // clients — the read side of the contract.
        (void)service.Stats();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  refiller.Stop();
  service.Shutdown();

  EXPECT_EQ(transport_garbage.load(), 0);
  EXPECT_EQ(answers.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(errors.load(), 0);

  const Encryptor::BlindingStats blinding = pooled->blinding_stats();
  // Every ciphertext either hit the pool or blinded online; nothing fell
  // back to the generic ladder (the fixed-base engine covers all paths).
  EXPECT_GT(blinding.pool_hits + blinding.pool_misses, 0u);
  EXPECT_EQ(blinding.generic_evals, 0u);
  EXPECT_GT(refiller.stats().passes, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.blinding_pool_hits, blinding.pool_hits);
  EXPECT_EQ(stats.blinding_pool_misses, blinding.pool_misses);
  EXPECT_GT(stats.fixed_base_engines, 0u);
  EXPECT_GT(stats.fixed_base_table_bytes, 0u);
}

// Regression (pre-fix failing): two refillers racing TopUpOnce against
// the same drained pool each saw "below watermark, need target - size"
// before either appended, so the pool landed at up to 2x target. The
// refill quota is now claimed under the pool lock, so concurrent passes
// split the deficit instead of duplicating it.
TEST_F(ServiceTest, RacingRefillersNeverOverfillPastTarget) {
  auto pooled = std::make_shared<const Encryptor>(*keys_);
  BlindingRefillerOptions options;
  options.levels = {1};
  options.low_watermark = 16;
  options.target = 16;
  options.start_thread = false;  // driven manually from racing threads
  BlindingRefiller a(pooled, options);
  options.seed = 0xfeedbee5;
  BlindingRefiller b(pooled, options);

  for (int round = 0; round < 3; ++round) {
    std::thread ta([&] { EXPECT_TRUE(a.TopUpOnce().ok()); });
    std::thread tb([&] { EXPECT_TRUE(b.TopUpOnce().ok()); });
    ta.join();
    tb.join();
    EXPECT_EQ(pooled->PooledBlindingCount(1), options.target);
  }
  // Both refillers together produced exactly one deficit's worth.
  EXPECT_EQ(a.stats().refilled + b.stats().refilled, options.target);
}

}  // namespace
}  // namespace ppgnn
