#include "core/wire.h"

#include <gtest/gtest.h>

#include <limits>

#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

class WireTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(31415);
    keys_ = new KeyPair(GenerateKeyPair(256, *rng_).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }

  static QueryMessage PlainQuery() {
    QueryMessage msg;
    msg.k = 8;
    msg.theta0 = 0.05;
    msg.aggregate = AggregateKind::kMax;
    msg.plan.alpha = 2;
    msg.plan.n_bar = {2, 2};
    msg.plan.d_bar = {2, 2};
    msg.plan.delta_prime = 8;
    msg.pk = keys_->pub;
    Encryptor enc(keys_->pub);
    msg.indicator = EncryptIndicator(enc, 7, 8, *rng_).value();
    return msg;
  }

  // Handcrafts the query header (through the public key field) so the
  // adversarial tests below can smuggle values a well-formed Encode would
  // never produce.
  static ByteWriter ForgedHeader(uint64_t k, uint64_t alpha,
                                 const std::vector<uint64_t>& n_bar,
                                 const std::vector<uint64_t>& d_bar) {
    ByteWriter w;
    w.PutVarint(k);
    w.PutDouble(0.05);
    w.PutU8(0);  // kSum
    w.PutVarint(alpha);
    for (uint64_t nb : n_bar) w.PutVarint(nb);
    w.PutVarint(d_bar.size());
    for (uint64_t db : d_bar) w.PutVarint(db);
    w.PutVarint(static_cast<uint64_t>(keys_->pub.key_bits));
    w.PutBytes(keys_->pub.n.ToBytesPadded(keys_->pub.ByteSize()).value());
    return w;
  }

  static void AppendLevelCiphertext(ByteWriter& w, int level) {
    Encryptor enc(keys_->pub);
    Ciphertext ct = enc.Encrypt(BigInt(1), *rng_, level).value();
    w.PutBytes(
        ct.value.ToBytesPadded(keys_->pub.CiphertextBytes(level)).value());
  }

  static Rng* rng_;
  static KeyPair* keys_;
};
Rng* WireTest::rng_ = nullptr;
KeyPair* WireTest::keys_ = nullptr;

TEST_F(WireTest, QueryMessageRoundTripPlain) {
  QueryMessage msg = PlainQuery();
  auto bytes = msg.Encode().value();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.k, msg.k);
  EXPECT_DOUBLE_EQ(decoded.theta0, msg.theta0);
  EXPECT_EQ(decoded.aggregate, msg.aggregate);
  EXPECT_EQ(decoded.plan.alpha, msg.plan.alpha);
  EXPECT_EQ(decoded.plan.n_bar, msg.plan.n_bar);
  EXPECT_EQ(decoded.plan.d_bar, msg.plan.d_bar);
  EXPECT_EQ(decoded.plan.delta_prime, msg.plan.delta_prime);
  EXPECT_EQ(decoded.pk.n, msg.pk.n);
  EXPECT_EQ(decoded.pk.key_bits, msg.pk.key_bits);
  EXPECT_FALSE(decoded.is_opt);
  ASSERT_EQ(decoded.indicator.size(), msg.indicator.size());
  for (size_t i = 0; i < msg.indicator.size(); ++i) {
    EXPECT_EQ(decoded.indicator[i].value, msg.indicator[i].value);
    EXPECT_EQ(decoded.indicator[i].level, 1);
  }
}

TEST_F(WireTest, QueryMessageRoundTripOpt) {
  QueryMessage msg = PlainQuery();
  msg.indicator.clear();
  msg.is_opt = true;
  Encryptor enc(keys_->pub);
  msg.opt_indicator = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
  auto bytes = msg.Encode().value();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  ASSERT_TRUE(decoded.is_opt);
  EXPECT_EQ(decoded.opt_indicator.omega, 2u);
  EXPECT_EQ(decoded.opt_indicator.block_size, 4u);
  ASSERT_EQ(decoded.opt_indicator.v1.size(), 4u);
  ASSERT_EQ(decoded.opt_indicator.v2.size(), 2u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded.opt_indicator.v1[i].value,
              msg.opt_indicator.v1[i].value);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.opt_indicator.v2[i].value,
              msg.opt_indicator.v2[i].value);
    EXPECT_EQ(decoded.opt_indicator.v2[i].level, 2);
  }
}

TEST_F(WireTest, QueryDecodeRecomputesDeltaPrime) {
  QueryMessage msg = PlainQuery();
  msg.plan.delta_prime = 999;  // wrong on purpose; wire doesn't carry it
  // The indicator length must match the TRUE delta' = 8 for decode to
  // accept, so re-encode with the correct indicator.
  auto bytes = msg.Encode().value();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.plan.delta_prime, 8u);
}

TEST_F(WireTest, QueryDecodeRejectsCorruption) {
  QueryMessage msg = PlainQuery();
  auto bytes = msg.Encode().value();

  // Truncation at every prefix must fail cleanly, never crash.
  for (size_t cut : std::vector<size_t>{0, 1, 5, 20, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(QueryMessage::Decode(truncated).ok()) << "cut=" << cut;
  }
  // Trailing garbage.
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0x42);
  EXPECT_FALSE(QueryMessage::Decode(extended).ok());
  // Bad aggregate kind byte (offset: varint k (1B) + double theta0 (8B)).
  std::vector<uint8_t> bad_agg = bytes;
  bad_agg[9] = 77;
  EXPECT_FALSE(QueryMessage::Decode(bad_agg).ok());
}

TEST_F(WireTest, QueryDecodeRejectsShortPublicKey) {
  QueryMessage msg = PlainQuery();
  msg.pk.n = BigInt(12345);  // not full-width for key_bits = 256
  auto bytes = msg.Encode().value();
  EXPECT_FALSE(QueryMessage::Decode(bytes).ok());
}

// --- adversarial decode: overflow and narrowing regressions ---

// delta' = 4^64 wraps a uint64 to exactly 0, which used to match an
// *empty* indicator and sail through decode with a plan whose true
// candidate enumeration is astronomically large.
TEST_F(WireTest, QueryDecodeRejectsOverflowWrappedDeltaPrime) {
  ByteWriter w =
      ForgedHeader(1, 64, std::vector<uint64_t>(64, 2), {4});
  w.PutU8(0);     // plain indicator
  w.PutVarint(0);  // length 0 == wrapped delta'
  auto result = QueryMessage::Decode(w.Release());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Same wrap through the OPT branch: a shape of omega = block_size = 1
// trivially covers a delta' of 0.
TEST_F(WireTest, QueryDecodeRejectsOverflowWrappedDeltaPrimeOpt) {
  ByteWriter w =
      ForgedHeader(1, 64, std::vector<uint64_t>(64, 2), {4});
  w.PutU8(1);      // OPT indicator
  w.PutVarint(1);  // omega
  w.PutVarint(1);  // block_size
  AppendLevelCiphertext(w, 1);  // v1
  AppendLevelCiphertext(w, 2);  // v2
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

// d_bar entries near 2^64 used to pass the (uint64) >= 1 check, wrap the
// delta' *sum* back into a small value, and turn negative when narrowed
// to int: (2^64 - 4) + 8 = 4 (mod 2^64), with d_bar = {-4, 8}.
TEST_F(WireTest, QueryDecodeRejectsSegmentSizeAboveIntRange) {
  ByteWriter w = ForgedHeader(1, 1, {2}, {0xFFFFFFFFFFFFFFFCull, 8});
  w.PutU8(0);
  w.PutVarint(4);
  for (int i = 0; i < 4; ++i) AppendLevelCiphertext(w, 1);
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

// n_bar = 2^31 passes an unsigned >= 1 check but is INT_MIN after the
// cast; the subgroup bookkeeping downstream must never see it.
TEST_F(WireTest, QueryDecodeRejectsSubgroupSizeAboveIntRange) {
  ByteWriter w = ForgedHeader(1, 1, {uint64_t{1} << 31}, {2, 2});
  w.PutU8(0);
  w.PutVarint(4);
  for (int i = 0; i < 4; ++i) AppendLevelCiphertext(w, 1);
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

// k = 2^32 + 3 used to silently truncate to k = 3 on the cast.
TEST_F(WireTest, QueryDecodeRejectsTruncatedK) {
  ByteWriter w = ForgedHeader((uint64_t{1} << 32) + 3, 1, {2}, {2, 2});
  w.PutU8(0);
  w.PutVarint(4);
  for (int i = 0; i < 4; ++i) AppendLevelCiphertext(w, 1);
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

// omega * block_size wrapping 64 bits must not satisfy the coverage
// check (here (2^62 + 2) * 4 = 8 mod 2^64 >= delta' = 8).
TEST_F(WireTest, QueryDecodeRejectsOptShapeProductOverflow) {
  ByteWriter w = ForgedHeader(1, 2, {2, 2}, {2, 2});  // delta' = 8
  w.PutU8(1);
  w.PutVarint((uint64_t{1} << 62) + 2);  // omega
  w.PutVarint(4);                        // block_size
  for (int i = 0; i < 4; ++i) AppendLevelCiphertext(w, 1);
  auto result = QueryMessage::Decode(w.Release());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("OPT indicator shape"),
            std::string::npos);
}

// --- adversarial decode: ciphertext framing ---

TEST_F(WireTest, QueryDecodeRejectsWrongWidthCiphertext) {
  ByteWriter w = ForgedHeader(1, 1, {2}, {2, 2});  // delta' = 4
  w.PutU8(0);
  w.PutVarint(4);
  // A ciphertext frame of the wrong fixed width.
  w.PutBytes(std::vector<uint8_t>(10, 0xAB));
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

TEST_F(WireTest, QueryDecodeRejectsOversizedCiphertextLength) {
  ByteWriter w = ForgedHeader(1, 1, {2}, {2, 2});
  w.PutU8(0);
  w.PutVarint(4);
  // Length prefix promising far more bytes than the message holds.
  w.PutVarint(1 << 20);
  w.PutU8(0x01);
  EXPECT_FALSE(QueryMessage::Decode(w.Release()).ok());
}

// --- encode-side hardening ---

// A public key whose modulus does not fit its declared width used to hit
// Result::value() on an error (process abort); now it is a clean error.
TEST_F(WireTest, QueryEncodeRejectsOverflowingPublicKeyWidth) {
  QueryMessage msg = PlainQuery();
  msg.pk.key_bits = 64;  // modulus is 256-bit: nothing fits in 8 bytes
  auto result = msg.Encode();
  EXPECT_FALSE(result.ok());
}

TEST_F(WireTest, LocationSetRoundTrip) {
  LocationSetMessage msg;
  msg.user_id = 3;
  Rng rng(1);
  for (int i = 0; i < 25; ++i) {
    msg.locations.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  auto bytes = msg.Encode();
  // d = 25 locations at 8 bytes each, plus header: matches the paper's
  // L_l accounting.
  EXPECT_EQ(bytes.size(), 4u + 1u + 25u * 8u);
  LocationSetMessage decoded = LocationSetMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.user_id, 3u);
  ASSERT_EQ(decoded.locations.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(decoded.locations[i].x, msg.locations[i].x, 1e-9);
    EXPECT_NEAR(decoded.locations[i].y, msg.locations[i].y, 1e-9);
  }
}

TEST_F(WireTest, LocationSetRejectsEmptyAndTruncated) {
  LocationSetMessage msg;
  msg.user_id = 0;
  msg.locations = {{0.5, 0.5}};
  auto bytes = msg.Encode();
  bytes.pop_back();
  EXPECT_FALSE(LocationSetMessage::Decode(bytes).ok());

  LocationSetMessage empty;
  empty.user_id = 0;
  EXPECT_FALSE(LocationSetMessage::Decode(empty.Encode()).ok());
}

TEST_F(WireTest, AnswerMessageRoundTripBothLevels) {
  Encryptor enc(keys_->pub);
  for (int level : {1, 2}) {
    AnswerMessage msg;
    for (int i = 0; i < 3; ++i) {
      msg.ciphertexts.push_back(
          enc.Encrypt(BigInt(100 + i), *rng_, level).value());
    }
    auto bytes = msg.Encode(keys_->pub).value();
    AnswerMessage decoded = AnswerMessage::Decode(bytes, keys_->pub).value();
    ASSERT_EQ(decoded.ciphertexts.size(), 3u);
    Decryptor dec(keys_->pub, keys_->sec);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(decoded.ciphertexts[i].level, level);
      EXPECT_EQ(dec.Decrypt(decoded.ciphertexts[i]).value(),
                BigInt(100 + i));
    }
  }
}

TEST_F(WireTest, AnswerMessageWireSizeMatchesCostModel) {
  // m eps_1 ciphertexts of 2*keysize/8 bytes each (+ tiny header): the
  // O(k) L_e term of Table 2.
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(1), *rng_, 1).value());
  size_t expected_payload = keys_->pub.CiphertextBytes(1);
  auto bytes = msg.Encode(keys_->pub).value();
  EXPECT_GE(bytes.size(), expected_payload);
  EXPECT_LE(bytes.size(), expected_payload + 4);
}

// Encode used to emit an empty message (no level byte) that Decode could
// never accept; empty answers are now a hard error at the source.
TEST_F(WireTest, AnswerMessageRejectsEmptyAtEncode) {
  AnswerMessage empty;
  auto result = empty.Encode(keys_->pub);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// The format carries one level byte for the whole vector, so a mixed
// vector would silently mis-parse on the other side; reject at encode.
TEST_F(WireTest, AnswerMessageRejectsMixedLevelsAtEncode) {
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(1), *rng_, 1).value());
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(2), *rng_, 2).value());
  EXPECT_FALSE(msg.Encode(keys_->pub).ok());
}

TEST_F(WireTest, AnswerBroadcastRoundTrip) {
  AnswerBroadcast msg;
  msg.pois = {{0.25, 0.75}, {0.1, 0.2}};
  auto decoded = AnswerBroadcast::Decode(msg.Encode()).value();
  ASSERT_EQ(decoded.pois.size(), 2u);
  EXPECT_NEAR(decoded.pois[0].x, 0.25, 1e-9);
  EXPECT_NEAR(decoded.pois[1].y, 0.2, 1e-9);
  // Empty broadcast is legal (sanitation could in principle empty it).
  AnswerBroadcast empty;
  EXPECT_TRUE(AnswerBroadcast::Decode(empty.Encode()).value().pois.empty());
}

TEST_F(WireTest, AnswerMessageRejectsBadLevelOrWidth) {
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(5), *rng_, 1).value());
  auto bytes = msg.Encode(keys_->pub).value();
  // Corrupt the level byte (after the 1-byte count varint).
  bytes[1] = 9;
  EXPECT_FALSE(AnswerMessage::Decode(bytes, keys_->pub).ok());
}

// --- error frames ---

TEST_F(WireTest, ErrorMessageRoundTripAllCodes) {
  for (WireError code :
       {WireError::kMalformed, WireError::kOverloaded,
        WireError::kDeadlineExceeded, WireError::kInternal,
        WireError::kShuttingDown}) {
    ErrorMessage msg;
    msg.code = code;
    msg.detail = std::string("details for ") + WireErrorToString(code);
    ErrorMessage decoded = ErrorMessage::Decode(msg.Encode()).value();
    EXPECT_EQ(decoded.code, code);
    EXPECT_EQ(decoded.detail, msg.detail);
  }
}

TEST_F(WireTest, ErrorMessageClipsOversizedDetail) {
  ErrorMessage msg;
  msg.code = WireError::kInternal;
  msg.detail = std::string(10000, 'x');
  ErrorMessage decoded = ErrorMessage::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.detail.size(), kMaxWireErrorDetail);
}

TEST_F(WireTest, ErrorMessageRejectsGarbage) {
  EXPECT_FALSE(ErrorMessage::Decode({}).ok());
  EXPECT_FALSE(ErrorMessage::Decode({0x07, 0x00}).ok());  // unknown code
  // The first code past the taxonomy (kShuttingDown + 1) is rejected too.
  EXPECT_FALSE(ErrorMessage::Decode({0x05, 0x00}).ok());
  ErrorMessage msg;
  msg.code = WireError::kOverloaded;
  msg.detail = "queue full";
  auto bytes = msg.Encode();
  bytes.pop_back();
  EXPECT_FALSE(ErrorMessage::Decode(bytes).ok());
}

TEST_F(WireTest, WireErrorFromStatusTaxonomy) {
  EXPECT_EQ(WireErrorFromStatus(Status::InvalidArgument("x")),
            WireError::kMalformed);
  EXPECT_EQ(WireErrorFromStatus(Status::ProtocolError("x")),
            WireError::kMalformed);
  EXPECT_EQ(WireErrorFromStatus(Status::ResourceExhausted("x")),
            WireError::kOverloaded);
  EXPECT_EQ(WireErrorFromStatus(Status::DeadlineExceeded("x")),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(WireErrorFromStatus(Status::CryptoError("x")),
            WireError::kInternal);
}

TEST_F(WireTest, ResponseFrameRoundTrips) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  ResponseFrame answer = ResponseFrame::Decode(
                             ResponseFrame::WrapAnswer(payload))
                             .value();
  EXPECT_FALSE(answer.is_error);
  EXPECT_EQ(answer.answer, payload);

  ErrorMessage err;
  err.code = WireError::kDeadlineExceeded;
  err.detail = "too slow";
  ResponseFrame error =
      ResponseFrame::Decode(ResponseFrame::WrapError(err)).value();
  ASSERT_TRUE(error.is_error);
  EXPECT_EQ(error.error.code, WireError::kDeadlineExceeded);
  EXPECT_EQ(error.error.detail, "too slow");

  EXPECT_FALSE(ResponseFrame::Decode({}).ok());
  EXPECT_FALSE(ResponseFrame::Decode({0x09}).ok());  // unknown tag
}

TEST_F(WireTest, ResponseFrameDetectsCorruption) {
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(7), *rng_, 1).value());
  std::vector<uint8_t> frame =
      ResponseFrame::WrapAnswer(msg.Encode(keys_->pub).value());
  // Flip one bit anywhere in the frame: decode must fail cleanly. A flip
  // in the payload trips the CRC; a flip in the stored CRC mismatches the
  // payload; a flip in the tag is an unknown tag (or a CRC'd mismatch).
  for (size_t pos : std::vector<size_t>{0, 1, 4, 5, frame.size() / 2,
                                        frame.size() - 1}) {
    std::vector<uint8_t> bad = frame;
    bad[pos] ^= 0x10;
    EXPECT_FALSE(ResponseFrame::Decode(bad).ok()) << "pos=" << pos;
  }
}

// --- exhaustive truncation fuzz: every prefix of a valid encoding must
// --- produce a clean Status error (never UB, an abort, or acceptance).

TEST_F(WireTest, ResponseFrameEveryTruncationFailsCleanly) {
  ErrorMessage err;
  err.code = WireError::kOverloaded;
  err.detail = "queue full";
  const std::vector<uint8_t> frame = ResponseFrame::WrapError(err);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<uint8_t> prefix(frame.begin(), frame.begin() + cut);
    EXPECT_FALSE(ResponseFrame::Decode(prefix).ok()) << "cut=" << cut;
  }
  EXPECT_TRUE(ResponseFrame::Decode(frame).ok());
}

TEST_F(WireTest, ErrorMessageEveryTruncationFailsCleanly) {
  ErrorMessage err;
  err.code = WireError::kMalformed;
  err.detail = "bad query bytes";
  const std::vector<uint8_t> bytes = err.Encode();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(ErrorMessage::Decode(prefix).ok()) << "cut=" << cut;
  }
  EXPECT_TRUE(ErrorMessage::Decode(bytes).ok());
}

TEST_F(WireTest, AnswerMessageEveryTruncationFailsCleanly) {
  Encryptor enc(keys_->pub);
  for (int level : {1, 2}) {
    AnswerMessage msg;
    for (int i = 0; i < 2; ++i) {
      msg.ciphertexts.push_back(
          enc.Encrypt(BigInt(10 + i), *rng_, level).value());
    }
    const std::vector<uint8_t> bytes = msg.Encode(keys_->pub).value();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
      EXPECT_FALSE(AnswerMessage::Decode(prefix, keys_->pub).ok())
          << "level=" << level << " cut=" << cut;
    }
    EXPECT_TRUE(AnswerMessage::Decode(bytes, keys_->pub).ok());
  }
}

// --- wire-version-2 trailer: deadline + idempotency key ---

TEST_F(WireTest, QueryTrailerRoundTripPlainAndOpt) {
  for (bool opt : {false, true}) {
    QueryMessage msg = PlainQuery();
    if (opt) {
      msg.indicator.clear();
      msg.is_opt = true;
      Encryptor enc(keys_->pub);
      msg.opt_indicator = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
    }
    msg.deadline_ms = 1500;
    msg.idempotency_key = 0xDEADBEEFCAFEF00Dull;
    QueryMessage decoded = QueryMessage::Decode(msg.Encode().value()).value();
    EXPECT_EQ(decoded.deadline_ms, 1500u) << "opt=" << opt;
    EXPECT_EQ(decoded.idempotency_key, 0xDEADBEEFCAFEF00Dull)
        << "opt=" << opt;
  }
}

TEST_F(WireTest, QueryTrailerAbsentWhenFieldsZero) {
  // Zero fields must produce the byte-identical version-1 frame, and a
  // version-1 frame must decode with the fields reading as absent (zero).
  QueryMessage v1 = PlainQuery();
  QueryMessage v2 = v1;
  v2.deadline_ms = 0;
  v2.idempotency_key = 0;
  EXPECT_EQ(v1.Encode().value(), v2.Encode().value());
  QueryMessage decoded = QueryMessage::Decode(v1.Encode().value()).value();
  EXPECT_EQ(decoded.deadline_ms, 0u);
  EXPECT_EQ(decoded.idempotency_key, 0u);
}

TEST_F(WireTest, QueryTrailerKeyAloneStillEmitsTrailer) {
  // An idempotency key without a deadline is a legal combination (client
  // dedup tagging with no budget): the trailer must still round-trip.
  QueryMessage msg = PlainQuery();
  msg.idempotency_key = 42;
  QueryMessage decoded = QueryMessage::Decode(msg.Encode().value()).value();
  EXPECT_EQ(decoded.deadline_ms, 0u);
  EXPECT_EQ(decoded.idempotency_key, 42u);
}

TEST_F(WireTest, QueryTrailerEveryTruncationFailsCleanly) {
  QueryMessage msg = PlainQuery();
  const size_t v1_len = msg.Encode().value().size();
  msg.deadline_ms = 250;
  msg.idempotency_key = 7;
  const std::vector<uint8_t> bytes = msg.Encode().value();
  ASSERT_GT(bytes.size(), v1_len);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    auto decoded = QueryMessage::Decode(prefix);
    if (cut == v1_len) {
      // Cutting exactly at the trailer boundary reconstructs the valid
      // version-1 frame: it must decode, with both fields absent.
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().deadline_ms, 0u);
      EXPECT_EQ(decoded.value().idempotency_key, 0u);
    } else {
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
  }
  EXPECT_TRUE(QueryMessage::Decode(bytes).ok());
}

TEST_F(WireTest, QueryTrailerRejectsUnknownTagAndOversizedDeadline) {
  QueryMessage msg = PlainQuery();
  std::vector<uint8_t> bytes = msg.Encode().value();
  bytes.push_back(0x52);  // not kQueryTrailerTag
  EXPECT_FALSE(QueryMessage::Decode(bytes).ok());

  msg.deadline_ms = kMaxWireMillis + 1;
  EXPECT_FALSE(msg.Encode().ok());
}

TEST_F(WireTest, PeekQueryHeaderAgreesWithDecode) {
  for (bool opt : {false, true}) {
    for (bool trailer : {false, true}) {
      QueryMessage msg = PlainQuery();
      if (opt) {
        msg.indicator.clear();
        msg.is_opt = true;
        Encryptor enc(keys_->pub);
        msg.opt_indicator = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
      }
      if (trailer) {
        msg.deadline_ms = 900;
        msg.idempotency_key = 123;
      }
      const std::vector<uint8_t> bytes = msg.Encode().value();
      QueryWireHeader header = PeekQueryHeader(bytes).value();
      QueryMessage decoded = QueryMessage::Decode(bytes).value();
      EXPECT_EQ(header.k, decoded.k);
      EXPECT_EQ(header.delta_prime, decoded.plan.delta_prime);
      EXPECT_EQ(header.key_bits, decoded.pk.key_bits);
      EXPECT_EQ(header.is_opt, decoded.is_opt);
      if (opt) {
        EXPECT_EQ(header.omega, decoded.opt_indicator.omega);
      }
      EXPECT_EQ(header.deadline_ms, decoded.deadline_ms);
      EXPECT_EQ(header.idempotency_key, decoded.idempotency_key);
    }
  }
}

TEST_F(WireTest, PeekQueryHeaderEveryTruncationFailsCleanly) {
  // A version-1 frame (no trailer) has no valid strict prefix: the peek
  // must reject every cut without touching ciphertext bytes.
  QueryMessage msg = PlainQuery();
  const std::vector<uint8_t> bytes = msg.Encode().value();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(PeekQueryHeader(prefix).ok()) << "cut=" << cut;
  }
  EXPECT_TRUE(PeekQueryHeader(bytes).ok());
}

// --- version-gated retry_after_ms hint on error frames ---

TEST_F(WireTest, ErrorMessageRetryAfterRoundTrip) {
  ErrorMessage msg;
  msg.code = WireError::kOverloaded;
  msg.detail = "shed: predicted cost exceeds deadline";
  msg.retry_after_ms = 75;
  ErrorMessage decoded = ErrorMessage::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.code, WireError::kOverloaded);
  EXPECT_EQ(decoded.retry_after_ms, 75u);
}

TEST_F(WireTest, ErrorMessageRetryAfterAbsentOnOldFrames) {
  ErrorMessage msg;
  msg.code = WireError::kOverloaded;
  msg.detail = "queue full";
  ErrorMessage zero = msg;
  zero.retry_after_ms = 0;
  // Zero hint encodes as the byte-identical version-1 frame...
  EXPECT_EQ(msg.Encode(), zero.Encode());
  // ...and version-1 frames decode with the hint absent.
  ErrorMessage decoded = ErrorMessage::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.retry_after_ms, 0u);
  // An explicit zero varint on the wire is malformed (zero means absent,
  // and absent frames simply end earlier).
  std::vector<uint8_t> bytes = msg.Encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(ErrorMessage::Decode(bytes).ok());
}

TEST_F(WireTest, ErrorMessageRetryAfterClippedAtEncodeRejectedAtDecode) {
  ErrorMessage msg;
  msg.code = WireError::kOverloaded;
  msg.detail = "x";
  msg.retry_after_ms = kMaxWireMillis + 999;
  // Encode clips to the wire ceiling rather than erroring: a hint is
  // advisory, and a clipped hint is still a useful hint.
  ErrorMessage decoded = ErrorMessage::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.retry_after_ms, kMaxWireMillis);
}

TEST_F(WireTest, ErrorMessageWithHintEveryTruncationFailsCleanly) {
  ErrorMessage msg;
  msg.code = WireError::kDeadlineExceeded;
  msg.detail = "expired in queue";
  msg.retry_after_ms = 200;
  const std::vector<uint8_t> bytes = msg.Encode();
  ErrorMessage v1 = msg;
  v1.retry_after_ms = 0;
  const size_t v1_len = v1.Encode().size();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    auto decoded = ErrorMessage::Decode(prefix);
    if (cut == v1_len) {
      ASSERT_TRUE(decoded.ok());  // valid version-1 frame
      EXPECT_EQ(decoded.value().retry_after_ms, 0u);
    } else {
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
  }
  EXPECT_TRUE(ErrorMessage::Decode(bytes).ok());
}

// --- explicit key_bits on the wire ---

// Regression (pre-fix failing): key_bits used to be reconstructed as
// pk_bytes.size() * 8, which over-reports by up to 7 bits for any key
// size that is not a multiple of 8 — a 252-bit key round-tripped as 256
// bits, desynchronizing PoiCodec widths and CostModel buckets across the
// wire.
TEST_F(WireTest, QueryMessageRoundTripNonByteAlignedKeyBits) {
  Rng rng(2718);
  KeyPair keys = GenerateKeyPair(252, rng).value();
  QueryMessage msg;
  msg.k = 4;
  msg.theta0 = 0.05;
  msg.aggregate = AggregateKind::kSum;
  msg.plan.alpha = 1;
  msg.plan.n_bar = {2};
  msg.plan.d_bar = {2, 2};
  msg.plan.delta_prime = 4;
  msg.pk = keys.pub;
  Encryptor enc(keys.pub);
  msg.indicator = EncryptIndicator(enc, 2, 4, rng).value();
  auto bytes = msg.Encode().value();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.pk.key_bits, 252);
  EXPECT_EQ(decoded.pk.n, keys.pub.n);
  QueryWireHeader header = PeekQueryHeader(bytes).value();
  EXPECT_EQ(header.key_bits, 252);
  EXPECT_FALSE(header.is_shard);
}

TEST_F(WireTest, QueryDecodeRejectsKeyBitsModulusMismatch) {
  QueryMessage msg = PlainQuery();
  auto bytes = msg.Encode().value();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  ASSERT_EQ(decoded.pk.key_bits, 256);
  // Patch the declared key_bits on the wire from 256 to 250. The pk field
  // is still 32 bytes so the width check passes, but the modulus is
  // genuinely 256 bits wide — decode must catch the declared-width /
  // modulus mismatch. Walk the header fields to find the varint's offset.
  ByteReader r(bytes);
  ASSERT_TRUE(r.GetVarint().ok());  // k
  ASSERT_TRUE(r.GetDouble().ok());  // theta0
  ASSERT_TRUE(r.GetU8().ok());      // aggregate
  uint64_t alpha = r.GetVarint().value();
  for (uint64_t j = 0; j < alpha; ++j) ASSERT_TRUE(r.GetVarint().ok());
  uint64_t beta = r.GetVarint().value();
  for (uint64_t i = 0; i < beta; ++i) ASSERT_TRUE(r.GetVarint().ok());
  size_t off = bytes.size() - r.remaining();
  ASSERT_EQ(bytes[off], 0x80);      // varint(256) low byte
  ASSERT_EQ(bytes[off + 1], 0x02);  // varint(256) high byte
  bytes[off] = 0xFA;                // varint(250), same 2-byte width
  bytes[off + 1] = 0x01;
  EXPECT_FALSE(QueryMessage::Decode(bytes).ok());
}

TEST_F(WireTest, QueryEncodeRejectsOutOfRangeKeyBits) {
  QueryMessage msg = PlainQuery();
  msg.pk.key_bits = 32;  // below kMinWireKeyBits
  EXPECT_FALSE(msg.Encode().ok());
  msg = PlainQuery();
  msg.pk.key_bits = (1 << 16) + 8;  // above kMaxWireKeyBits
  EXPECT_FALSE(msg.Encode().ok());
}

// --- shard scatter-gather messages ---

TEST_F(WireTest, ShardQueryMessageRoundTrip) {
  ShardQueryMessage msg;
  msg.k = 5;
  msg.aggregate = AggregateKind::kMin;
  // Raw doubles, deliberately off the quantization grid.
  msg.candidates.push_back({3, {{0.123456789012345, 0.98765432109876}}});
  msg.candidates.push_back({17, {{0.5, 0.25}, {0.750000000001, 0.1}}});
  auto bytes = msg.Encode().value();
  EXPECT_TRUE(IsShardQuery(bytes));
  ShardQueryMessage decoded = ShardQueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.k, 5);
  EXPECT_EQ(decoded.aggregate, AggregateKind::kMin);
  ASSERT_EQ(decoded.candidates.size(), 2u);
  EXPECT_EQ(decoded.candidates[0].index, 3u);
  EXPECT_EQ(decoded.candidates[1].index, 17u);
  // Bit-exact: no quantization on the shard path.
  EXPECT_EQ(decoded.candidates[0].locations[0].x, 0.123456789012345);
  EXPECT_EQ(decoded.candidates[1].locations[0].y, 0.25);
  EXPECT_EQ(decoded.deadline_ms, 0u);
  EXPECT_EQ(decoded.idempotency_key, 0u);
}

TEST_F(WireTest, ShardQueryMessageTrailerRoundTrip) {
  ShardQueryMessage msg;
  msg.k = 1;
  msg.candidates.push_back({0, {{0.1, 0.2}}});
  msg.deadline_ms = 1500;
  msg.idempotency_key = 0xFEEDFACEull;
  ShardQueryMessage decoded =
      ShardQueryMessage::Decode(msg.Encode().value()).value();
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.idempotency_key, 0xFEEDFACEull);
}

TEST_F(WireTest, ShardQueryIsNeverMistakenForQueryMessage) {
  // A QueryMessage's first byte is the varint k >= 1, never 0x00.
  QueryMessage query = PlainQuery();
  auto query_bytes = query.Encode().value();
  EXPECT_FALSE(IsShardQuery(query_bytes));
  QueryWireHeader header = PeekQueryHeader(query_bytes).value();
  EXPECT_FALSE(header.is_shard);

  ShardQueryMessage shard;
  shard.k = 2;
  shard.candidates.push_back({0, {{0.3, 0.4}}});
  shard.deadline_ms = 250;
  shard.idempotency_key = 99;
  auto shard_bytes = shard.Encode().value();
  EXPECT_TRUE(IsShardQuery(shard_bytes));
  EXPECT_FALSE(QueryMessage::Decode(shard_bytes).ok());
  // The peek understands both shapes at one endpoint.
  QueryWireHeader peeked = PeekQueryHeader(shard_bytes).value();
  EXPECT_TRUE(peeked.is_shard);
  EXPECT_EQ(peeked.k, 2);
  EXPECT_EQ(peeked.delta_prime, 1u);
  EXPECT_EQ(peeked.key_bits, 0);
  EXPECT_EQ(peeked.deadline_ms, 250u);
  EXPECT_EQ(peeked.idempotency_key, 99u);
}

TEST_F(WireTest, ShardQueryEveryTruncationFailsCleanly) {
  ShardQueryMessage msg;
  msg.k = 3;
  msg.candidates.push_back({1, {{0.1, 0.2}, {0.3, 0.4}}});
  msg.deadline_ms = 777;
  msg.idempotency_key = 42;
  const auto bytes = msg.Encode().value();
  ShardQueryMessage v1 = msg;
  v1.deadline_ms = 0;
  v1.idempotency_key = 0;
  const size_t v1_len = v1.Encode().value().size();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    auto decoded = ShardQueryMessage::Decode(prefix);
    if (cut == v1_len) {
      ASSERT_TRUE(decoded.ok());  // valid trailer-less message
    } else {
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
  }
  EXPECT_TRUE(ShardQueryMessage::Decode(bytes).ok());
}

TEST_F(WireTest, ShardQueryRejectsNonFiniteLocations) {
  ShardQueryMessage msg;
  msg.k = 1;
  msg.candidates.push_back(
      {0, {{std::numeric_limits<double>::quiet_NaN(), 0.5}}});
  auto bytes = msg.Encode().value();  // encode does not inspect values
  EXPECT_FALSE(ShardQueryMessage::Decode(bytes).ok());
}

TEST_F(WireTest, ShardAnswerMessageRoundTrip) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c0;
  c0.index = 2;
  c0.results.push_back({7, {0.111111111111, 0.22222222222}, 0.0333333});
  c0.results.push_back({9, {0.4, 0.5}, 0.0666666});
  ShardAnswerMessage::CandidateResult c1;
  c1.index = 5;  // empty result list (shard held no nearby POIs)
  msg.candidates.push_back(c0);
  msg.candidates.push_back(c1);
  auto bytes = msg.Encode().value();
  ShardAnswerMessage decoded = ShardAnswerMessage::Decode(bytes).value();
  ASSERT_EQ(decoded.candidates.size(), 2u);
  EXPECT_EQ(decoded.candidates[0].index, 2u);
  ASSERT_EQ(decoded.candidates[0].results.size(), 2u);
  EXPECT_EQ(decoded.candidates[0].results[0].poi_id, 7u);
  EXPECT_EQ(decoded.candidates[0].results[0].location.x, 0.111111111111);
  EXPECT_EQ(decoded.candidates[0].results[0].cost, 0.0333333);
  EXPECT_TRUE(decoded.candidates[1].results.empty());
}

TEST_F(WireTest, ShardAnswerEveryTruncationFailsCleanly) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c;
  c.index = 0;
  c.results.push_back({1, {0.1, 0.2}, 0.3});
  msg.candidates.push_back(c);
  const auto bytes = msg.Encode().value();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(ShardAnswerMessage::Decode(prefix).ok()) << "cut=" << cut;
  }
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0x00);
  EXPECT_FALSE(ShardAnswerMessage::Decode(extended).ok());
  EXPECT_TRUE(ShardAnswerMessage::Decode(bytes).ok());
}

// A NaN cost would violate the strict weak ordering of the coordinator's
// merge sort (undefined behavior in std::sort) — rejected at decode.
TEST_F(WireTest, ShardAnswerRejectsNonFiniteCost) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c;
  c.index = 0;
  c.results.push_back(
      {1, {0.1, 0.2}, std::numeric_limits<double>::quiet_NaN()});
  msg.candidates.push_back(c);
  auto bytes = msg.Encode().value();
  EXPECT_FALSE(ShardAnswerMessage::Decode(bytes).ok());
  c.results[0].cost = std::numeric_limits<double>::infinity();
  msg.candidates[0] = c;
  EXPECT_FALSE(ShardAnswerMessage::Decode(msg.Encode().value()).ok());
}

// A compromised or buggy replica repeating a POI id could double-count
// it in the merged top-k. The decode — the trust boundary between the
// coordinator and the shard wire — rejects the frame outright. The
// duplicate is introduced by byte-patching a valid frame, so the test
// pins the wire layout, not the encoder's cooperation.
TEST_F(WireTest, ShardAnswerRejectsDuplicatePoiIdByBytePatch) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c;
  c.index = 0;
  c.results.push_back({1, {0.1, 0.2}, 0.25});
  c.results.push_back({2, {0.3, 0.4}, 0.50});
  msg.candidates.push_back(c);
  auto bytes = msg.Encode().value();
  ASSERT_TRUE(ShardAnswerMessage::Decode(bytes).ok());

  // Layout: magic, candidate count, index, result count (1 byte each
  // here), then 28-byte results (u32 id + 3 doubles). Overwrite the
  // second result's id with the first's.
  const size_t first_id = 4, second_id = 4 + 28;
  ASSERT_GE(bytes.size(), second_id + 4);
  std::vector<uint8_t> patched = bytes;
  for (size_t b = 0; b < 4; ++b) {
    patched[second_id + b] = bytes[first_id + b];
  }
  auto decoded = ShardAnswerMessage::Decode(patched);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("duplicate"), std::string::npos);
}

// Results must arrive in strictly increasing (cost, id) order — the
// order the merge relies on. Out-of-order costs and equal-cost id ties
// are both rejected.
TEST_F(WireTest, ShardAnswerRejectsOutOfOrderResults) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c;
  c.index = 0;
  c.results.push_back({1, {0.1, 0.2}, 0.50});
  c.results.push_back({2, {0.3, 0.4}, 0.25});  // cost decreases
  msg.candidates.push_back(c);
  auto decoded = ShardAnswerMessage::Decode(msg.Encode().value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("order"), std::string::npos);

  // Equal costs must still be ordered by id; a tie (or inversion) in the
  // id tiebreak is the same malformed frame.
  c.results[0] = {5, {0.1, 0.2}, 0.25};
  c.results[1] = {3, {0.3, 0.4}, 0.25};
  msg.candidates[0] = c;
  EXPECT_FALSE(ShardAnswerMessage::Decode(msg.Encode().value()).ok());

  // The well-ordered version of the same rows decodes fine.
  c.results[0] = {3, {0.3, 0.4}, 0.25};
  c.results[1] = {5, {0.1, 0.2}, 0.25};
  msg.candidates[0] = c;
  EXPECT_TRUE(ShardAnswerMessage::Decode(msg.Encode().value()).ok());
}

// Duplicate ids are scoped per candidate: two candidates may (and do)
// legitimately rank the same POI.
TEST_F(WireTest, ShardAnswerAllowsSamePoiAcrossCandidates) {
  ShardAnswerMessage msg;
  ShardAnswerMessage::CandidateResult c0, c1;
  c0.index = 0;
  c0.results.push_back({7, {0.1, 0.2}, 0.25});
  c1.index = 1;
  c1.results.push_back({7, {0.1, 0.2}, 0.30});
  msg.candidates.push_back(c0);
  msg.candidates.push_back(c1);
  EXPECT_TRUE(ShardAnswerMessage::Decode(msg.Encode().value()).ok());
}

}  // namespace
}  // namespace ppgnn
