#include "core/wire.h"

#include <gtest/gtest.h>

#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

class WireTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(31415);
    keys_ = new KeyPair(GenerateKeyPair(256, *rng_).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }

  static QueryMessage PlainQuery() {
    QueryMessage msg;
    msg.k = 8;
    msg.theta0 = 0.05;
    msg.aggregate = AggregateKind::kMax;
    msg.plan.alpha = 2;
    msg.plan.n_bar = {2, 2};
    msg.plan.d_bar = {2, 2};
    msg.plan.delta_prime = 8;
    msg.pk = keys_->pub;
    Encryptor enc(keys_->pub);
    msg.indicator = EncryptIndicator(enc, 7, 8, *rng_).value();
    return msg;
  }

  static Rng* rng_;
  static KeyPair* keys_;
};
Rng* WireTest::rng_ = nullptr;
KeyPair* WireTest::keys_ = nullptr;

TEST_F(WireTest, QueryMessageRoundTripPlain) {
  QueryMessage msg = PlainQuery();
  auto bytes = msg.Encode();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.k, msg.k);
  EXPECT_DOUBLE_EQ(decoded.theta0, msg.theta0);
  EXPECT_EQ(decoded.aggregate, msg.aggregate);
  EXPECT_EQ(decoded.plan.alpha, msg.plan.alpha);
  EXPECT_EQ(decoded.plan.n_bar, msg.plan.n_bar);
  EXPECT_EQ(decoded.plan.d_bar, msg.plan.d_bar);
  EXPECT_EQ(decoded.plan.delta_prime, msg.plan.delta_prime);
  EXPECT_EQ(decoded.pk.n, msg.pk.n);
  EXPECT_EQ(decoded.pk.key_bits, msg.pk.key_bits);
  EXPECT_FALSE(decoded.is_opt);
  ASSERT_EQ(decoded.indicator.size(), msg.indicator.size());
  for (size_t i = 0; i < msg.indicator.size(); ++i) {
    EXPECT_EQ(decoded.indicator[i].value, msg.indicator[i].value);
    EXPECT_EQ(decoded.indicator[i].level, 1);
  }
}

TEST_F(WireTest, QueryMessageRoundTripOpt) {
  QueryMessage msg = PlainQuery();
  msg.indicator.clear();
  msg.is_opt = true;
  Encryptor enc(keys_->pub);
  msg.opt_indicator = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
  auto bytes = msg.Encode();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  ASSERT_TRUE(decoded.is_opt);
  EXPECT_EQ(decoded.opt_indicator.omega, 2u);
  EXPECT_EQ(decoded.opt_indicator.block_size, 4u);
  ASSERT_EQ(decoded.opt_indicator.v1.size(), 4u);
  ASSERT_EQ(decoded.opt_indicator.v2.size(), 2u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded.opt_indicator.v1[i].value,
              msg.opt_indicator.v1[i].value);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.opt_indicator.v2[i].value,
              msg.opt_indicator.v2[i].value);
    EXPECT_EQ(decoded.opt_indicator.v2[i].level, 2);
  }
}

TEST_F(WireTest, QueryDecodeRecomputesDeltaPrime) {
  QueryMessage msg = PlainQuery();
  msg.plan.delta_prime = 999;  // wrong on purpose; wire doesn't carry it
  // The indicator length must match the TRUE delta' = 8 for decode to
  // accept, so re-encode with the correct indicator.
  auto bytes = msg.Encode();
  QueryMessage decoded = QueryMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.plan.delta_prime, 8u);
}

TEST_F(WireTest, QueryDecodeRejectsCorruption) {
  QueryMessage msg = PlainQuery();
  auto bytes = msg.Encode();

  // Truncation at every prefix must fail cleanly, never crash.
  for (size_t cut : std::vector<size_t>{0, 1, 5, 20, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(QueryMessage::Decode(truncated).ok()) << "cut=" << cut;
  }
  // Trailing garbage.
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0x42);
  EXPECT_FALSE(QueryMessage::Decode(extended).ok());
  // Bad aggregate kind byte (offset: varint k (1B) + double theta0 (8B)).
  std::vector<uint8_t> bad_agg = bytes;
  bad_agg[9] = 77;
  EXPECT_FALSE(QueryMessage::Decode(bad_agg).ok());
}

TEST_F(WireTest, QueryDecodeRejectsShortPublicKey) {
  QueryMessage msg = PlainQuery();
  msg.pk.n = BigInt(12345);  // not full-width for key_bits = 256
  auto bytes = msg.Encode();
  EXPECT_FALSE(QueryMessage::Decode(bytes).ok());
}

TEST_F(WireTest, LocationSetRoundTrip) {
  LocationSetMessage msg;
  msg.user_id = 3;
  Rng rng(1);
  for (int i = 0; i < 25; ++i) {
    msg.locations.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  auto bytes = msg.Encode();
  // d = 25 locations at 8 bytes each, plus header: matches the paper's
  // L_l accounting.
  EXPECT_EQ(bytes.size(), 4u + 1u + 25u * 8u);
  LocationSetMessage decoded = LocationSetMessage::Decode(bytes).value();
  EXPECT_EQ(decoded.user_id, 3u);
  ASSERT_EQ(decoded.locations.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(decoded.locations[i].x, msg.locations[i].x, 1e-9);
    EXPECT_NEAR(decoded.locations[i].y, msg.locations[i].y, 1e-9);
  }
}

TEST_F(WireTest, LocationSetRejectsEmptyAndTruncated) {
  LocationSetMessage msg;
  msg.user_id = 0;
  msg.locations = {{0.5, 0.5}};
  auto bytes = msg.Encode();
  bytes.pop_back();
  EXPECT_FALSE(LocationSetMessage::Decode(bytes).ok());

  LocationSetMessage empty;
  empty.user_id = 0;
  EXPECT_FALSE(LocationSetMessage::Decode(empty.Encode()).ok());
}

TEST_F(WireTest, AnswerMessageRoundTripBothLevels) {
  Encryptor enc(keys_->pub);
  for (int level : {1, 2}) {
    AnswerMessage msg;
    for (int i = 0; i < 3; ++i) {
      msg.ciphertexts.push_back(
          enc.Encrypt(BigInt(100 + i), *rng_, level).value());
    }
    auto bytes = msg.Encode(keys_->pub);
    AnswerMessage decoded = AnswerMessage::Decode(bytes, keys_->pub).value();
    ASSERT_EQ(decoded.ciphertexts.size(), 3u);
    Decryptor dec(keys_->pub, keys_->sec);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(decoded.ciphertexts[i].level, level);
      EXPECT_EQ(dec.Decrypt(decoded.ciphertexts[i]).value(),
                BigInt(100 + i));
    }
  }
}

TEST_F(WireTest, AnswerMessageWireSizeMatchesCostModel) {
  // m eps_1 ciphertexts of 2*keysize/8 bytes each (+ tiny header): the
  // O(k) L_e term of Table 2.
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(1), *rng_, 1).value());
  size_t expected_payload = keys_->pub.CiphertextBytes(1);
  auto bytes = msg.Encode(keys_->pub);
  EXPECT_GE(bytes.size(), expected_payload);
  EXPECT_LE(bytes.size(), expected_payload + 4);
}

TEST_F(WireTest, AnswerBroadcastRoundTrip) {
  AnswerBroadcast msg;
  msg.pois = {{0.25, 0.75}, {0.1, 0.2}};
  auto decoded = AnswerBroadcast::Decode(msg.Encode()).value();
  ASSERT_EQ(decoded.pois.size(), 2u);
  EXPECT_NEAR(decoded.pois[0].x, 0.25, 1e-9);
  EXPECT_NEAR(decoded.pois[1].y, 0.2, 1e-9);
  // Empty broadcast is legal (sanitation could in principle empty it).
  AnswerBroadcast empty;
  EXPECT_TRUE(AnswerBroadcast::Decode(empty.Encode()).value().pois.empty());
}

TEST_F(WireTest, AnswerMessageRejectsBadLevelOrWidth) {
  Encryptor enc(keys_->pub);
  AnswerMessage msg;
  msg.ciphertexts.push_back(enc.Encrypt(BigInt(5), *rng_, 1).value());
  auto bytes = msg.Encode(keys_->pub);
  // Corrupt the level byte (after the 1-byte count varint).
  bytes[1] = 9;
  EXPECT_FALSE(AnswerMessage::Decode(bytes, keys_->pub).ok());
}

}  // namespace
}  // namespace ppgnn
