#include "spatial/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ppgnn {
namespace {

TEST(DatasetTest, SequoiaLikeCardinalityAndBounds) {
  std::vector<Poi> pois = GenerateSequoiaLike(10000, 1);
  EXPECT_EQ(pois.size(), 10000u);
  for (const Poi& p : pois) {
    EXPECT_GE(p.location.x, 0.0);
    EXPECT_LE(p.location.x, 1.0);
    EXPECT_GE(p.location.y, 0.0);
    EXPECT_LE(p.location.y, 1.0);
  }
}

TEST(DatasetTest, IdsAreSequential) {
  std::vector<Poi> pois = GenerateSequoiaLike(100, 2);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(pois[i].id, i);
}

TEST(DatasetTest, DeterministicForSeed) {
  auto a = GenerateSequoiaLike(1000, 42);
  auto b = GenerateSequoiaLike(1000, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location, b[i].location);
  }
  auto c = GenerateSequoiaLike(1000, 43);
  int diffs = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].location == c[i].location)) ++diffs;
  }
  EXPECT_GT(diffs, 900);
}

TEST(DatasetTest, SequoiaLikeIsSpatiallySkewed) {
  // The synthetic dataset must be clustered, not uniform: the densest of
  // a 10x10 grid of cells should hold far more than 1% of the points.
  std::vector<Poi> pois = GenerateSequoiaLike(20000, 7);
  int counts[10][10] = {};
  for (const Poi& p : pois) {
    int cx = std::min(9, static_cast<int>(p.location.x * 10));
    int cy = std::min(9, static_cast<int>(p.location.y * 10));
    ++counts[cx][cy];
  }
  int max_cell = 0;
  for (auto& row : counts)
    for (int c : row) max_cell = std::max(max_cell, c);
  EXPECT_GT(max_cell, 20000 / 100 * 3);  // >= 3x uniform expectation
}

TEST(DatasetTest, UniformIsNotSkewed) {
  std::vector<Poi> pois = GenerateUniform(20000, 8);
  int counts[10][10] = {};
  for (const Poi& p : pois) {
    int cx = std::min(9, static_cast<int>(p.location.x * 10));
    int cy = std::min(9, static_cast<int>(p.location.y * 10));
    ++counts[cx][cy];
  }
  for (auto& row : counts) {
    for (int c : row) {
      EXPECT_GT(c, 100);  // expectation 200; wild deviation means bug
      EXPECT_LT(c, 400);
    }
  }
}

TEST(DatasetTest, CsvSaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/pois_roundtrip.csv";
  std::vector<Poi> pois = GenerateSequoiaLike(200, 3);
  ASSERT_TRUE(SaveCsv(path, pois).ok());
  auto loaded = LoadCsv(path).value();
  ASSERT_EQ(loaded.size(), pois.size());
  // LoadCsv re-normalizes; span-preserving check of relative order.
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].id, pois[i].id);
    EXPECT_GE(loaded[i].location.x, 0.0);
    EXPECT_LE(loaded[i].location.x, 1.0);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvLoadTwoColumnFormatAssignsIds) {
  std::string path = ::testing::TempDir() + "/pois_2col.csv";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "10.5, 20.5\n";
    out << "30.5, 40.5\n";
    out << "20.5, 30.5\n";
  }
  auto loaded = LoadCsv(path).value();
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].id, 0u);
  EXPECT_EQ(loaded[2].id, 2u);
  // Normalization maps the extremes onto [0, 1].
  EXPECT_DOUBLE_EQ(loaded[0].location.x, 0.0);
  EXPECT_DOUBLE_EQ(loaded[1].location.x, 1.0);
  EXPECT_DOUBLE_EQ(loaded[2].location.x, 0.5);
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvLoadRejectsMissingFile) {
  EXPECT_FALSE(LoadCsv("/nonexistent/path/pois.csv").ok());
}

TEST(DatasetTest, CsvLoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/pois_bad.csv";
  {
    std::ofstream out(path);
    out << "hello,world\n";
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvLoadRejectsEmptyFile) {
  std::string path = ::testing::TempDir() + "/pois_empty.csv";
  {
    std::ofstream out(path);
    out << "# only a comment\n";
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, FullPaperScaleGenerationIsFast) {
  std::vector<Poi> pois = GenerateSequoiaLike(kSequoiaSize, 11);
  EXPECT_EQ(pois.size(), 62556u);
}

}  // namespace
}  // namespace ppgnn
