#include "core/partition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numeric>

namespace ppgnn {
namespace {

uint64_t PowerSum(const std::vector<int>& parts, int alpha) {
  uint64_t total = 0;
  for (int part : parts) {
    uint64_t term = 1;
    for (int i = 0; i < alpha; ++i) term *= static_cast<uint64_t>(part);
    total += term;
  }
  return total;
}

TEST(PartitionTest, PlanInternallyConsistent) {
  PartitionPlan plan = SolvePartition(8, 25, 100).value();
  EXPECT_GE(plan.alpha, 1);
  EXPECT_LE(plan.alpha, 8);
  EXPECT_EQ(std::accumulate(plan.n_bar.begin(), plan.n_bar.end(), 0), 8);
  EXPECT_EQ(std::accumulate(plan.d_bar.begin(), plan.d_bar.end(), 0), 25);
  EXPECT_EQ(plan.delta_prime, PowerSum(plan.d_bar, plan.alpha));
  EXPECT_GE(plan.delta_prime, 100u);
  EXPECT_EQ(static_cast<size_t>(plan.beta()), plan.d_bar.size());
}

TEST(PartitionTest, SingleUserDegeneratesToDelta) {
  // n = 1 forces alpha = 1, so delta' = d for any segmentation.
  PartitionPlan plan = SolvePartition(1, 25, 25).value();
  EXPECT_EQ(plan.alpha, 1);
  EXPECT_EQ(plan.delta_prime, 25u);
}

TEST(PartitionTest, DeltaEqualsDUsesLinearPlan) {
  PartitionPlan plan = SolvePartition(8, 25, 25).value();
  EXPECT_EQ(plan.delta_prime, 25u);  // alpha = 1 achieves delta' = d exactly
}

TEST(PartitionTest, FiguresExampleFromPaper) {
  // Figure 3: n = 4, d = 4, delta = 8 -> d_bar = (2, 2), alpha = 2,
  // delta' = 2^2 + 2^2 = 8.
  PartitionPlan plan = SolvePartition(4, 4, 8).value();
  EXPECT_EQ(plan.delta_prime, 8u);
  EXPECT_EQ(plan.alpha, 2);
  EXPECT_EQ(plan.d_bar, (std::vector<int>{2, 2}));
}

TEST(PartitionTest, InfeasibleWhenDeltaExceedsDToTheN) {
  EXPECT_FALSE(SolvePartition(2, 3, 10).ok());   // 3^2 = 9 < 10
  EXPECT_TRUE(SolvePartition(2, 3, 9).ok());
  EXPECT_FALSE(SolvePartition(1, 5, 6).ok());    // 5^1 < 6
}

TEST(PartitionTest, RejectsNonPositiveInputs) {
  EXPECT_FALSE(SolvePartition(0, 25, 100).ok());
  EXPECT_FALSE(SolvePartition(8, 0, 100).ok());
  EXPECT_FALSE(SolvePartition(8, 25, 0).ok());
}

// Brute-force optimum over all partitions of d and all alpha (for small
// instances) to certify the solver's minimality.
uint64_t BruteForceOptimum(int n, int d, int delta) {
  uint64_t best = ~0ULL;
  // Enumerate partitions of d as non-increasing parts.
  std::vector<int> parts;
  std::function<void(int, int)> recurse = [&](int remaining, int max_part) {
    if (remaining == 0) {
      for (int alpha = 1; alpha <= n; ++alpha) {
        // Saturating power sum.
        uint64_t total = 0;
        bool overflow = false;
        for (int part : parts) {
          uint64_t term = 1;
          for (int i = 0; i < alpha; ++i) {
            if (term > (~0ULL) / static_cast<uint64_t>(part)) {
              overflow = true;
              break;
            }
            term *= static_cast<uint64_t>(part);
          }
          if (overflow || total > (~0ULL) - term) {
            overflow = true;
            break;
          }
          total += term;
        }
        if (!overflow && total >= static_cast<uint64_t>(delta)) {
          best = std::min(best, total);
        }
      }
      return;
    }
    for (int part = std::min(max_part, remaining); part >= 1; --part) {
      parts.push_back(part);
      recurse(remaining - part, part);
      parts.pop_back();
    }
  };
  recurse(d, d);
  return best;
}

struct SolverCase {
  int n, d, delta;
};

class PartitionOptimalityTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(PartitionOptimalityTest, MatchesBruteForceOptimum) {
  const SolverCase& c = GetParam();
  auto plan = SolvePartition(c.n, c.d, c.delta);
  uint64_t brute = BruteForceOptimum(c.n, c.d, c.delta);
  if (brute == ~0ULL) {
    EXPECT_FALSE(plan.ok());
  } else {
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->delta_prime, brute)
        << "n=" << c.n << " d=" << c.d << " delta=" << c.delta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionOptimalityTest,
    ::testing::Values(SolverCase{2, 5, 10}, SolverCase{2, 8, 30},
                      SolverCase{3, 10, 50}, SolverCase{4, 12, 100},
                      SolverCase{8, 15, 150}, SolverCase{2, 15, 200},
                      SolverCase{5, 6, 7000}, SolverCase{3, 9, 728},
                      SolverCase{3, 9, 729}, SolverCase{3, 9, 730}));

TEST(PartitionTest, PaperObservationDeltaPrimeCloseToDelta) {
  // Section 8.3: over n in [2,32], d in [5,50], delta in [50,200], the
  // average delta' - delta is approximately 1. Verify the gap stays tiny
  // on a sample grid.
  double total_gap = 0;
  int count = 0;
  for (int n : {2, 4, 8, 16, 32}) {
    for (int d : {10, 25, 50}) {
      for (int delta : {50, 100, 150, 200}) {
        // Skip infeasible corners (delta > d^n), e.g. n=2, d=10, delta=150.
        if (std::pow(static_cast<double>(d), n) < delta) continue;
        auto plan = SolvePartition(n, d, delta);
        ASSERT_TRUE(plan.ok());
        total_gap += static_cast<double>(plan->delta_prime - delta);
        ++count;
      }
    }
  }
  EXPECT_LT(total_gap / count, 3.0);
}

TEST(PartitionTest, SegmentOffsets) {
  PartitionPlan plan;
  plan.alpha = 2;
  plan.d_bar = {3, 2, 4};
  EXPECT_EQ(plan.SegmentOffset(1), 1);
  EXPECT_EQ(plan.SegmentOffset(2), 4);
  EXPECT_EQ(plan.SegmentOffset(3), 6);
}

TEST(QueryIndexTest, PaperExample) {
  // Example 4.2: seg = 2, alpha = 2, d_bar = (2,2), x = (2,1) -> QI = 7.
  PartitionPlan plan;
  plan.alpha = 2;
  plan.d_bar = {2, 2};
  plan.delta_prime = 8;
  EXPECT_EQ(QueryIndex(plan, 2, {2, 1}), 7u);
}

TEST(QueryIndexTest, EnumeratesAllPositionsBijectively) {
  PartitionPlan plan;
  plan.alpha = 3;
  plan.d_bar = {3, 2};
  plan.delta_prime = 27 + 8;
  std::vector<bool> seen(plan.delta_prime, false);
  for (int seg = 1; seg <= 2; ++seg) {
    int d_seg = plan.d_bar[seg - 1];
    for (int x1 = 1; x1 <= d_seg; ++x1) {
      for (int x2 = 1; x2 <= d_seg; ++x2) {
        for (int x3 = 1; x3 <= d_seg; ++x3) {
          uint64_t qi = QueryIndex(plan, seg, {x1, x2, x3});
          ASSERT_GE(qi, 1u);
          ASSERT_LE(qi, plan.delta_prime);
          EXPECT_FALSE(seen[qi - 1]) << "duplicate index " << qi;
          seen[qi - 1] = true;
        }
      }
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(CandidatesBeforeSegmentTest, PrefixSums) {
  PartitionPlan plan;
  plan.alpha = 2;
  plan.d_bar = {3, 2, 1};
  EXPECT_EQ(CandidatesBeforeSegment(plan, 1), 0u);
  EXPECT_EQ(CandidatesBeforeSegment(plan, 2), 9u);
  EXPECT_EQ(CandidatesBeforeSegment(plan, 3), 13u);
}

TEST(PartitionTest, MemoizedResultsAreStable) {
  auto a = SolvePartition(8, 25, 100).value();
  auto b = SolvePartition(8, 25, 100).value();
  EXPECT_EQ(a.delta_prime, b.delta_prime);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.d_bar, b.d_bar);
}

TEST(PartitionTest, LargeParameterSpaceStaysFast) {
  // Worst case in the benchmark sweeps: d = 50, n = 32, delta = 200.
  auto plan = SolvePartition(32, 50, 200).value();
  EXPECT_GE(plan.delta_prime, 200u);
  EXPECT_LE(plan.delta_prime, 220u);
}

}  // namespace
}  // namespace ppgnn
