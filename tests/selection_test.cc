#include "core/selection.h"

#include <gtest/gtest.h>

#include "bigint/montgomery.h"

namespace ppgnn {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(4242);
    keys_ = new KeyPair(GenerateKeyPair(256, *rng_).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }

  // Builds an m x cols matrix with distinct recognizable entries:
  // column c, row r holds 1000*c + r + 1.
  static AnswerMatrix TestMatrix(size_t rows, size_t cols) {
    AnswerMatrix matrix;
    matrix.columns.resize(cols);
    for (size_t c = 0; c < cols; ++c) {
      for (size_t r = 0; r < rows; ++r) {
        matrix.columns[c].push_back(
            BigInt(static_cast<uint64_t>(1000 * c + r + 1)));
      }
    }
    return matrix;
  }

  static Rng* rng_;
  static KeyPair* keys_;
};
Rng* SelectionTest::rng_ = nullptr;
KeyPair* SelectionTest::keys_ = nullptr;

TEST_F(SelectionTest, MatrixValidation) {
  AnswerMatrix empty;
  EXPECT_FALSE(empty.Validate().ok());
  AnswerMatrix no_rows;
  no_rows.columns = {{}};
  EXPECT_FALSE(no_rows.Validate().ok());
  AnswerMatrix ragged;
  ragged.columns = {{BigInt(1)}, {BigInt(1), BigInt(2)}};
  EXPECT_FALSE(ragged.Validate().ok());
  AnswerMatrix ok = TestMatrix(2, 3);
  EXPECT_TRUE(ok.Validate().ok());
  EXPECT_EQ(ok.Rows(), 2u);
  EXPECT_EQ(ok.Cols(), 3u);
}

TEST_F(SelectionTest, SelectsEveryColumnCorrectly) {
  // Theorem 3.1 exactness: for each hot position, the selected column
  // decrypts to exactly that candidate's answer.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  const size_t rows = 3, cols = 5;
  AnswerMatrix matrix = TestMatrix(rows, cols);
  for (uint64_t qi = 1; qi <= cols; ++qi) {
    auto indicator = EncryptIndicator(enc, qi, cols, *rng_).value();
    auto selected = PrivateSelect(enc, matrix, indicator).value();
    ASSERT_EQ(selected.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(dec.Decrypt(selected[r]).value(), matrix.columns[qi - 1][r]);
    }
  }
}

TEST_F(SelectionTest, RejectsDimensionMismatch) {
  Encryptor enc(keys_->pub);
  AnswerMatrix matrix = TestMatrix(2, 4);
  auto indicator = EncryptIndicator(enc, 1, 3, *rng_).value();
  EXPECT_FALSE(PrivateSelect(enc, matrix, indicator).ok());
}

TEST_F(SelectionTest, TwoPhaseSelectsEveryColumn) {
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  const size_t rows = 2, cols = 10;
  const uint64_t omega = 3;  // block_size = ceil(10/3) = 4, padded to 12
  AnswerMatrix matrix = TestMatrix(rows, cols);
  for (uint64_t qi = 1; qi <= cols; ++qi) {
    auto opt = EncryptOptIndicator(enc, qi, cols, omega, *rng_).value();
    auto selected = PrivateSelectTwoPhase(enc, matrix, opt).value();
    ASSERT_EQ(selected.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(selected[r].level, 2);
      EXPECT_EQ(dec.DecryptLayered(selected[r]).value(),
                matrix.columns[qi - 1][r]);
    }
  }
}

TEST_F(SelectionTest, TwoPhaseExactBlockDivision) {
  // cols divisible by omega: no padding path.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  AnswerMatrix matrix = TestMatrix(1, 8);
  auto opt = EncryptOptIndicator(enc, 7, 8, 2, *rng_).value();
  auto selected = PrivateSelectTwoPhase(enc, matrix, opt).value();
  EXPECT_EQ(dec.DecryptLayered(selected[0]).value(), matrix.columns[6][0]);
}

TEST_F(SelectionTest, TwoPhaseSingleBlockDegenerate) {
  // omega = 1 degenerates to single-phase selection wrapped in eps_2.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  AnswerMatrix matrix = TestMatrix(2, 4);
  auto opt = EncryptOptIndicator(enc, 3, 4, 1, *rng_).value();
  auto selected = PrivateSelectTwoPhase(enc, matrix, opt).value();
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(dec.DecryptLayered(selected[r]).value(), matrix.columns[2][r]);
  }
}

TEST_F(SelectionTest, TwoPhaseRejectsUndersizedIndicator) {
  Encryptor enc(keys_->pub);
  AnswerMatrix matrix = TestMatrix(1, 10);
  // Indicator planned for delta' = 6 cannot cover 10 columns.
  auto opt = EncryptOptIndicator(enc, 2, 6, 2, *rng_).value();
  EXPECT_FALSE(PrivateSelectTwoPhase(enc, matrix, opt).ok());
}

TEST_F(SelectionTest, LargeValuesSurviveSelection) {
  // Values close to N (the packed POI integers use nearly all bits).
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  AnswerMatrix matrix;
  BigInt big = keys_->pub.n - BigInt(12345);
  matrix.columns = {{big}, {keys_->pub.n - BigInt(1)}};
  auto indicator = EncryptIndicator(enc, 1, 2, *rng_).value();
  auto selected = PrivateSelect(enc, matrix, indicator).value();
  EXPECT_EQ(dec.Decrypt(selected[0]).value(), big);
}

TEST_F(SelectionTest, BitIdenticalToNaiveDotProduct) {
  // The multi-exp engine is an evaluation-order change over exact residue
  // arithmetic: each selected ciphertext must equal, bit for bit, the
  // serial ScalarMul/Add reference chain over the same indicator.
  Encryptor enc(keys_->pub);
  const size_t rows = 3, cols = 6;
  AnswerMatrix matrix = TestMatrix(rows, cols);
  auto indicator = EncryptIndicator(enc, 4, cols, *rng_).value();
  auto selected = PrivateSelect(enc, matrix, indicator).value();
  ASSERT_EQ(selected.size(), rows);
  std::vector<BigInt> row(cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) row[c] = matrix.columns[c][r];
    Ciphertext naive = enc.DotProductNaive(row, indicator).value();
    EXPECT_EQ(selected[r].value, naive.value) << "row " << r;
    EXPECT_EQ(selected[r].level, naive.level);
  }
}

TEST_F(SelectionTest, ParallelResultBitIdenticalToSerial) {
  // Chunked partial products recombined with Add carry the same residue
  // as the serial evaluation, for both selection variants.
  Encryptor enc(keys_->pub);
  AnswerMatrix matrix = TestMatrix(2, 7);
  auto indicator = EncryptIndicator(enc, 5, 7, *rng_).value();
  auto serial = PrivateSelect(enc, matrix, indicator, /*threads=*/1).value();
  auto parallel = PrivateSelect(enc, matrix, indicator, /*threads=*/3).value();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].value, parallel[r].value) << "row " << r;
  }
  auto opt = EncryptOptIndicator(enc, 5, 7, 3, *rng_).value();
  auto serial2 = PrivateSelectTwoPhase(enc, matrix, opt, 1).value();
  auto parallel2 = PrivateSelectTwoPhase(enc, matrix, opt, 4).value();
  for (size_t r = 0; r < serial2.size(); ++r) {
    EXPECT_EQ(serial2[r].value, parallel2[r].value) << "row " << r;
  }
}

TEST_F(SelectionTest, SelectionHotPathBuildsNoContexts) {
  // All Montgomery contexts are derived when the Encryptor is built; the
  // selection loops themselves must never re-derive one.
  Encryptor enc(keys_->pub);
  AnswerMatrix matrix = TestMatrix(2, 8);
  auto indicator = EncryptIndicator(enc, 3, 8, *rng_).value();
  auto opt = EncryptOptIndicator(enc, 3, 8, 2, *rng_).value();
  const uint64_t before = MontgomeryContext::created_count();
  ASSERT_TRUE(PrivateSelect(enc, matrix, indicator, 2).ok());
  ASSERT_TRUE(PrivateSelectTwoPhase(enc, matrix, opt, 2).ok());
  EXPECT_EQ(MontgomeryContext::created_count(), before);
}

TEST_F(SelectionTest, ZeroColumnsSelectable) {
  // Padded answers are all-zero integers; selecting them must work.
  Encryptor enc(keys_->pub);
  Decryptor dec(keys_->pub, keys_->sec);
  AnswerMatrix matrix;
  matrix.columns = {{BigInt(0)}, {BigInt(5)}};
  auto indicator = EncryptIndicator(enc, 1, 2, *rng_).value();
  auto selected = PrivateSelect(enc, matrix, indicator).value();
  EXPECT_EQ(dec.Decrypt(selected[0]).value(), BigInt(0));
}

}  // namespace
}  // namespace ppgnn
