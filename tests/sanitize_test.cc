#include "core/sanitize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/attack.h"
#include "geo/aggregate.h"

namespace ppgnn {
namespace {

std::vector<RankedPoi> MakeRankedAnswer(const std::vector<Point>& group,
                                        std::vector<Point> pois,
                                        AggregateKind kind) {
  std::sort(pois.begin(), pois.end(), [&](const Point& a, const Point& b) {
    return AggregateCost(kind, a, group) < AggregateCost(kind, b, group);
  });
  std::vector<RankedPoi> out;
  for (size_t i = 0; i < pois.size(); ++i) {
    out.push_back(
        {{static_cast<uint32_t>(i), pois[i]}, AggregateCost(kind, pois[i], group)});
  }
  return out;
}

std::vector<Point> RandomPoints(int count, Rng& rng) {
  std::vector<Point> out(count);
  for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
  return out;
}

TEST(SanitizerTest, CreateComputesSampleSize) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  EXPECT_EQ(sanitizer.sample_size(),
            RequiredSampleSize(0.05, config).value());
  EXPECT_DOUBLE_EQ(sanitizer.theta0(), 0.05);
  EXPECT_FALSE(AnswerSanitizer::Create(0.0, config).ok());
  EXPECT_FALSE(AnswerSanitizer::Create(1.5, config).ok());
}

TEST(SanitizerTest, SingleUserAnswerUntouched) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(1);
  std::vector<Point> group = {{0.5, 0.5}};
  auto answer = MakeRankedAnswer(group, RandomPoints(5, rng),
                                 AggregateKind::kSum);
  auto sanitized =
      sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng);
  EXPECT_EQ(sanitized.size(), answer.size());
}

TEST(SanitizerTest, SingletonAnswerAlwaysSafe) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(2);
  std::vector<Point> group = RandomPoints(4, rng);
  auto answer =
      MakeRankedAnswer(group, RandomPoints(1, rng), AggregateKind::kSum);
  auto sanitized =
      sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng);
  EXPECT_EQ(sanitized.size(), 1u);
}

TEST(SanitizerTest, OutputIsPrefixOfInput) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point> group = RandomPoints(6, rng);
    auto answer =
        MakeRankedAnswer(group, RandomPoints(10, rng), AggregateKind::kSum);
    auto sanitized =
        sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng);
    ASSERT_GE(sanitized.size(), 1u);
    ASSERT_LE(sanitized.size(), answer.size());
    for (size_t i = 0; i < sanitized.size(); ++i) {
      EXPECT_EQ(sanitized[i].poi.id, answer[i].poi.id);
    }
  }
}

TEST(SanitizerTest, ReturnedPrefixPassesItsOwnSafetyTest) {
  // The invariant of Section 5.2: the returned prefix is safe for every
  // target user; verify by re-running the attack region estimate.
  TestConfig config;
  double theta0 = 0.05;
  auto sanitizer = AnswerSanitizer::Create(theta0, config).value();
  Rng rng(4);
  std::vector<Point> group = RandomPoints(4, rng);
  auto answer =
      MakeRankedAnswer(group, RandomPoints(8, rng), AggregateKind::kSum);
  auto sanitized =
      sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng);
  std::vector<Point> prefix_points;
  for (const auto& rp : sanitized) prefix_points.push_back(rp.poi.location);
  if (prefix_points.size() >= 2) {
    for (size_t target = 0; target < group.size(); ++target) {
      std::vector<Point> colluders;
      for (size_t u = 0; u < group.size(); ++u) {
        if (u != target) colluders.push_back(group[u]);
      }
      InequalityAttack attack(colluders, prefix_points, AggregateKind::kSum);
      Rng est(99 + target);
      // Region estimate should be comfortably above theta0 (allowing MC
      // noise around the test's threshold).
      EXPECT_GT(attack.EstimateRegionFraction(est, 20000), theta0 * 0.8);
    }
  }
}

TEST(SanitizerTest, StricterTheta0ReturnsFewerPois) {
  TestConfig config;
  Rng seed_rng(5);
  std::vector<Point> group = RandomPoints(8, seed_rng);
  auto answer =
      MakeRankedAnswer(group, RandomPoints(16, seed_rng), AggregateKind::kSum);
  double prev_size = 1e9;
  for (double theta0 : {0.01, 0.05, 0.10}) {
    auto sanitizer = AnswerSanitizer::Create(theta0, config).value();
    // Average over a few runs to damp Monte-Carlo noise.
    double total = 0;
    for (int run = 0; run < 5; ++run) {
      Rng rng(1000 + run);
      total += static_cast<double>(
          sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng).size());
    }
    double avg = total / 5;
    EXPECT_LE(avg, prev_size + 0.75) << "theta0=" << theta0;
    prev_size = avg;
  }
}

TEST(SanitizerTest, StatsAreAccumulated) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(6);
  std::vector<Point> group = RandomPoints(4, rng);
  auto answer =
      MakeRankedAnswer(group, RandomPoints(6, rng), AggregateKind::kSum);
  SanitizeStats stats;
  auto sanitized =
      sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng, &stats);
  if (sanitized.size() > 1 || answer.size() > 1) {
    EXPECT_GT(stats.tests_run, 0u);
    EXPECT_GT(stats.samples_drawn, 0u);
  }
}

TEST(SanitizerTest, PrefixSafeForTargetAgreesWithZTest) {
  // A wide-open two-POI configuration (bisector region ~ half the space)
  // must be judged safe for theta0 = 0.05; an extremely tight
  // configuration must be judged unsafe for theta0 = 0.9.
  TestConfig config;
  auto loose = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(7);
  std::vector<Point> colluders = {{0.5, 0.2}};
  std::vector<Point> halfspace = {{0.25, 0.5}, {0.75, 0.5}};
  EXPECT_TRUE(loose.PrefixSafeForTarget(colluders, halfspace,
                                        AggregateKind::kSum, rng));
  auto strict = AnswerSanitizer::Create(0.9, config).value();
  EXPECT_FALSE(strict.PrefixSafeForTarget(colluders, halfspace,
                                          AggregateKind::kSum, rng));
}

TEST(SanitizerTest, EarlyExitUsesFarFewerSamplesThanNH) {
  // For a clearly-safe prefix the sequential test should stop early.
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(8);
  std::vector<Point> group = {{0.5, 0.45}, {0.5, 0.55}};
  auto answer = MakeRankedAnswer(group, {{0.5, 0.5}, {0.9, 0.9}},
                                 AggregateKind::kSum);
  SanitizeStats stats;
  sanitizer.Sanitize(answer, group, AggregateKind::kSum, rng, &stats);
  ASSERT_GT(stats.tests_run, 0u);
  EXPECT_LT(stats.samples_drawn / stats.tests_run,
            sanitizer.sample_size() / 2);
}

TEST(SanitizerTest, WorksForAllAggregates) {
  TestConfig config;
  auto sanitizer = AnswerSanitizer::Create(0.05, config).value();
  Rng rng(9);
  std::vector<Point> group = RandomPoints(4, rng);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    auto answer = MakeRankedAnswer(group, RandomPoints(6, rng), kind);
    auto sanitized = sanitizer.Sanitize(answer, group, kind, rng);
    EXPECT_GE(sanitized.size(), 1u);
    EXPECT_LE(sanitized.size(), answer.size());
  }
}

}  // namespace
}  // namespace ppgnn
