#include "stats/hypothesis.h"
#include "stats/normal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace ppgnn {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.0), 1 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(6.0), 1.0, 1e-8);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644853627, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.8), 0.841621234, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.0013498980316301), -3.0, 1e-6);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.017) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9) << p;
  }
}

TEST(NormalTest, UpperCriticalPaperValues) {
  // z_0.05 ~ 1.645 and z_0.2 ~ 0.842 (the paper's gamma and eta).
  EXPECT_NEAR(UpperCritical(0.05), 1.6449, 1e-3);
  EXPECT_NEAR(UpperCritical(0.2), 0.8416, 1e-3);
}

TEST(SampleSizeTest, PaperDefaultsProduceExpectedScale) {
  // theta0 = 0.05, phi = 0.1 -> theta1 = 0.055: N_H lands in the
  // ten-thousands; theta0 = 0.01 needs many more samples.
  TestConfig config;  // gamma 0.05, eta 0.2, phi 0.1
  uint64_t n_05 = RequiredSampleSize(0.05, config).value();
  EXPECT_GT(n_05, 8000u);
  EXPECT_LT(n_05, 20000u);
  uint64_t n_01 = RequiredSampleSize(0.01, config).value();
  EXPECT_GT(n_01, n_05);
  uint64_t n_10 = RequiredSampleSize(0.10, config).value();
  EXPECT_LT(n_10, n_05);
}

TEST(SampleSizeTest, MatchesClosedForm) {
  TestConfig config;
  double theta0 = 0.05;
  double theta1 = theta0 * 1.1;
  double z_g = UpperCritical(config.gamma);
  double z_e = UpperCritical(config.eta);
  double root = (z_g * std::sqrt(theta0 * (1 - theta0)) +
                 z_e * std::sqrt(theta1 * (1 - theta1))) /
                (theta1 - theta0);
  EXPECT_EQ(RequiredSampleSize(theta0, config).value(),
            static_cast<uint64_t>(std::ceil(root * root)));
}

TEST(SampleSizeTest, RejectsInvalidInputs) {
  TestConfig config;
  EXPECT_FALSE(RequiredSampleSize(0.0, config).ok());
  EXPECT_FALSE(RequiredSampleSize(1.0, config).ok());
  EXPECT_FALSE(RequiredSampleSize(0.95, config).ok());  // theta1 >= 1
  TestConfig bad = config;
  bad.gamma = 0.0;
  EXPECT_FALSE(RequiredSampleSize(0.05, bad).ok());
}

TEST(ZTestTest, ThresholdFormula) {
  double threshold = RejectionThreshold(10000, 0.05, 0.05);
  EXPECT_NEAR(threshold, 10000 * 0.05 + 1.6449 * std::sqrt(10000 * 0.0475),
              0.5);
  EXPECT_TRUE(RejectsH0(static_cast<uint64_t>(threshold) + 1, 10000, 0.05,
                        0.05));
  EXPECT_FALSE(RejectsH0(static_cast<uint64_t>(threshold) - 1, 10000, 0.05,
                         0.05));
}

TEST(ZTestTest, TypeIErrorBounded) {
  // With true theta == theta0 (H0 boundary), the rejection frequency must
  // stay near gamma.
  Rng rng(17);
  TestConfig config;
  double theta0 = 0.1;
  uint64_t n = 2000;
  int rejections = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < n; ++i) hits += rng.NextBernoulli(theta0) ? 1 : 0;
    if (RejectsH0(hits, n, theta0, config.gamma)) ++rejections;
  }
  double rate = static_cast<double>(rejections) / trials;
  EXPECT_LT(rate, config.gamma + 0.02);
}

TEST(ZTestTest, PowerAgainstClearlyLargeRegion) {
  // With theta = 2 * theta0, rejection should be near-certain at N_H.
  Rng rng(19);
  TestConfig config;
  double theta0 = 0.05;
  uint64_t n = RequiredSampleSize(theta0, config).value();
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < n; ++i)
      hits += rng.NextBernoulli(2 * theta0) ? 1 : 0;
    if (RejectsH0(hits, n, theta0, config.gamma)) ++rejections;
  }
  EXPECT_GT(rejections, trials * 95 / 100);
}

TEST(SequentialTest, MatchesBatchDecisionExactly) {
  Rng rng(23);
  TestConfig config;
  const double theta0 = 0.07;
  const uint64_t n = 500;
  for (int trial = 0; trial < 300; ++trial) {
    double p = rng.NextDouble() * 0.2;  // sweep around theta0
    std::vector<bool> outcomes(n);
    uint64_t hits = 0;
    for (uint64_t i = 0; i < n; ++i) {
      outcomes[i] = rng.NextBernoulli(p);
      hits += outcomes[i] ? 1 : 0;
    }
    bool batch = RejectsH0(hits, n, theta0, config.gamma);

    SequentialProportionTest seq(n, theta0, config.gamma);
    for (uint64_t i = 0;
         i < n && seq.CurrentVerdict() ==
                      SequentialProportionTest::Verdict::kUndecided;
         ++i) {
      seq.AddSample(outcomes[i]);
    }
    bool sequential =
        seq.CurrentVerdict() == SequentialProportionTest::Verdict::kReject;
    EXPECT_EQ(sequential, batch) << "p=" << p << " hits=" << hits;
    EXPECT_LE(seq.samples_used(), n);
  }
}

TEST(SequentialTest, EarlyExitSavesSamplesOnExtremes) {
  TestConfig config;
  const uint64_t n = 10000;
  // All successes: reject fires long before n samples.
  SequentialProportionTest hot(n, 0.05, config.gamma);
  while (hot.CurrentVerdict() ==
         SequentialProportionTest::Verdict::kUndecided) {
    hot.AddSample(true);
  }
  EXPECT_EQ(hot.CurrentVerdict(), SequentialProportionTest::Verdict::kReject);
  EXPECT_LT(hot.samples_used(), n / 5);

  // All failures: not-reject is provable once the tail can't reach the
  // threshold.
  SequentialProportionTest cold(n, 0.05, config.gamma);
  while (cold.CurrentVerdict() ==
         SequentialProportionTest::Verdict::kUndecided) {
    cold.AddSample(false);
  }
  EXPECT_EQ(cold.CurrentVerdict(),
            SequentialProportionTest::Verdict::kNotReject);
  EXPECT_LT(cold.samples_used(), n);
}

TEST(SequentialTest, DecidedStateIgnoresFurtherSamples) {
  SequentialProportionTest test(100, 0.05, 0.05);
  while (test.CurrentVerdict() ==
         SequentialProportionTest::Verdict::kUndecided) {
    test.AddSample(true);
  }
  uint64_t used = test.samples_used();
  test.AddSample(true);
  test.AddSample(false);
  EXPECT_EQ(test.samples_used(), used);
}

}  // namespace
}  // namespace ppgnn
