#include "bigint/montgomery.h"

#include <gtest/gtest.h>

#include "bigint/modular.h"
#include "bigint/prime.h"
#include "common/random.h"

namespace ppgnn {
namespace {

// The plain multiply-and-divide ladder, kept as the differential
// reference (ModExp itself now routes odd moduli through Montgomery).
BigInt LadderModExp(const BigInt& base, const BigInt& exponent,
                    const BigInt& m) {
  BigInt acc(1);
  BigInt b = base.Mod(m);
  for (int i = exponent.BitLength() - 1; i >= 0; --i) {
    acc = ModMul(acc, acc, m);
    if (exponent.GetBit(i)) acc = ModMul(acc, b, m);
  }
  return acc;
}

TEST(MontgomeryTest, CreateRejectsBadModuli) {
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(0)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(1)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(2)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigInt(100)).ok());  // even
  EXPECT_TRUE(MontgomeryContext::Create(BigInt(3)).ok());
}

TEST(MontgomeryTest, RoundTripThroughDomain) {
  Rng rng(1);
  for (int bits : {64, 192, 512, 1024}) {
    BigInt m = BigInt::Random(bits, rng);
    if (!m.IsOdd()) m = m + BigInt(1);
    if (m < BigInt(3)) m = BigInt(3);
    auto ctx = MontgomeryContext::Create(m).value();
    for (int i = 0; i < 10; ++i) {
      BigInt a = BigInt::RandomBelow(m, rng);
      EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a) << bits;
    }
  }
}

TEST(MontgomeryTest, MontMulMatchesPlainModMul) {
  Rng rng(2);
  for (int bits : {64, 128, 320, 1024, 2048}) {
    BigInt m = BigInt::Random(bits, rng);
    if (!m.IsOdd()) m = m + BigInt(1);
    if (m < BigInt(3)) m = BigInt(3);
    auto ctx = MontgomeryContext::Create(m).value();
    for (int i = 0; i < 15; ++i) {
      BigInt a = BigInt::RandomBelow(m, rng);
      BigInt b = BigInt::RandomBelow(m, rng);
      BigInt got = ctx.FromMont(ctx.MontMul(ctx.ToMont(a), ctx.ToMont(b)));
      EXPECT_EQ(got, ModMul(a, b, m)) << bits << " iter " << i;
    }
  }
}

TEST(MontgomeryTest, EdgeOperands) {
  Rng rng(3);
  BigInt m = GeneratePrime(256, rng).value();
  auto ctx = MontgomeryContext::Create(m).value();
  BigInt zero(0), one(1), top = m - BigInt(1);
  EXPECT_EQ(ctx.FromMont(ctx.MontMul(ctx.ToMont(zero), ctx.ToMont(top))),
            BigInt(0));
  EXPECT_EQ(ctx.FromMont(ctx.MontMul(ctx.ToMont(one), ctx.ToMont(top))), top);
  // (m-1)^2 mod m = 1.
  EXPECT_EQ(ctx.FromMont(ctx.MontMul(ctx.ToMont(top), ctx.ToMont(top))),
            BigInt(1));
}

TEST(MontgomeryTest, ModExpMatchesLadderRandomized) {
  Rng rng(4);
  for (int iter = 0; iter < 25; ++iter) {
    int bits = 128 + static_cast<int>(rng.NextBelow(900));
    BigInt m = BigInt::Random(bits, rng);
    if (!m.IsOdd()) m = m + BigInt(1);
    BigInt base = BigInt::Random(bits + 20, rng);
    BigInt exp = BigInt::Random(160, rng);
    auto ctx = MontgomeryContext::Create(m).value();
    EXPECT_EQ(ctx.ModExp(base, exp).value(), LadderModExp(base, exp, m))
        << "iter " << iter;
  }
}

TEST(MontgomeryTest, ModExpEdgeCases) {
  Rng rng(5);
  BigInt m = GeneratePrime(192, rng).value();
  auto ctx = MontgomeryContext::Create(m).value();
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(0)).value(), BigInt(1));
  EXPECT_EQ(ctx.ModExp(BigInt(0), BigInt(17)).value(), BigInt(0));
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(1)).value(), BigInt(5));
  EXPECT_FALSE(ctx.ModExp(BigInt(2), BigInt(-3)).ok());
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(ctx.ModExp(BigInt(123456789), m - BigInt(1)).value(), BigInt(1));
}

TEST(MontgomeryTest, PublicModExpUsesItTransparently) {
  // ModExp routes odd moduli >= 128 bits through Montgomery; results must
  // be identical to the ladder.
  Rng rng(6);
  for (int iter = 0; iter < 10; ++iter) {
    BigInt m = BigInt::Random(512, rng);
    if (!m.IsOdd()) m = m + BigInt(1);
    BigInt base = BigInt::Random(512, rng);
    BigInt exp = BigInt::Random(256, rng);
    EXPECT_EQ(ModExp(base, exp, m).value(), LadderModExp(base, exp, m));
  }
  // Even moduli still work via the ladder path.
  BigInt even = BigInt::Random(256, rng);
  if (even.IsOdd()) even = even + BigInt(1);
  BigInt base = BigInt::Random(200, rng);
  BigInt exp = BigInt::Random(100, rng);
  EXPECT_EQ(ModExp(base, exp, even).value(), LadderModExp(base, exp, even));
}

TEST(MontgomeryTest, WorksForPaillierShapedModuli) {
  // N^2 and N^3 for an RSA-style N: the exact moduli PPGNN exercises.
  Rng rng(7);
  BigInt p = GeneratePrime(128, rng).value();
  BigInt q = GeneratePrime(128, rng).value();
  BigInt n = p * q;
  for (const BigInt& m : {n * n, n * n * n}) {
    auto ctx = MontgomeryContext::Create(m).value();
    BigInt base = BigInt::RandomBelow(m, rng);
    BigInt exp = BigInt::Random(200, rng);
    EXPECT_EQ(ctx.ModExp(base, exp).value(), LadderModExp(base, exp, m));
  }
}

}  // namespace
}  // namespace ppgnn
