// Tests for the sharded scatter-gather cluster (ShardedLspService).
//
// The load-bearing property is exactness: partitioning the POI space and
// merging per-shard top-k lists must not change a single bit of the
// served answer. The S=1 suite checks frames (and decrypted POIs) are
// byte-identical to a plain LspService over the same POIs, across
// aggregates and both protocol variants; the S=4 suite checks a real
// multi-shard merge still reproduces the S=1 frames. The failure-path
// suite drives shard links through failpoints: a dead shard degrades the
// merge (query still answered, degraded_shards counted), while an
// all-shards outage is the only way a query errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/failpoint.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "service/shard_coordinator.h"
#include "service/workload.h"
#include "spatial/dataset.h"

namespace ppgnn {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pois_ = new std::vector<Poi>(GenerateSequoiaLike(2000, 901));
    Rng rng(902);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete pois_;
    delete keys_;
  }
  void TearDown() override { FailpointClearAll(); }

  static ProtocolParams GroupParams(AggregateKind aggregate,
                                    bool sanitize = true) {
    ProtocolParams params;
    params.n = 3;
    params.d = 4;
    params.delta = 8;
    params.k = 3;
    params.key_bits = keys_->pub.key_bits;
    params.aggregate = aggregate;
    params.sanitize = sanitize;
    return params;
  }

  static ServiceRequest MakeRequest(Variant variant, AggregateKind aggregate,
                                    uint64_t seed, bool sanitize = true,
                                    std::vector<Point>* real = nullptr,
                                    const RequestWireOptions& wire = {}) {
    Rng rng(seed);
    ProtocolParams params = GroupParams(aggregate, sanitize);
    std::vector<Point> group;
    for (int i = 0; i < params.n; ++i) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    if (real != nullptr) *real = group;
    return BuildServiceRequest(variant, params, group, *keys_, rng, wire)
        .value();
  }

  static ServiceConfig FrontConfig(bool sanitize = true) {
    ServiceConfig config;
    config.workers = 2;
    config.sanitize = sanitize;
    return config;
  }

  static ShardClusterConfig ClusterConfig(int shards, bool sanitize = true) {
    ShardClusterConfig config;
    config.shards = shards;
    config.front = FrontConfig(sanitize);
    config.shard.workers = 2;
    config.link_policy.max_attempts = 2;
    return config;
  }

  static ShardClusterConfig ReplicatedConfig(int shards, int replicas,
                                             bool sanitize = true) {
    ShardClusterConfig config = ClusterConfig(shards, sanitize);
    config.replicas = replicas;
    return config;
  }

  static std::vector<uint8_t> FrameOf(ShardedLspService& cluster,
                                      const ServiceRequest& request) {
    return cluster.Call(request);
  }

  static std::vector<Poi>* pois_;
  static KeyPair* keys_;
};
std::vector<Poi>* ShardTest::pois_ = nullptr;
KeyPair* ShardTest::keys_ = nullptr;

// --- partitioning ---

TEST_F(ShardTest, PartitionCoversEveryPoiExactlyOnce) {
  std::vector<Poi> pois(pois_->begin(), pois_->begin() + 101);
  for (int shards : {1, 2, 3, 5}) {
    auto slices = PartitionPoisForShards(pois, shards);
    ASSERT_EQ(slices.size(), static_cast<size_t>(shards));
    std::multiset<uint32_t> seen;
    size_t min_size = pois.size(), max_size = 0;
    for (const auto& slice : slices) {
      min_size = std::min(min_size, slice.size());
      max_size = std::max(max_size, slice.size());
      for (const Poi& poi : slice) seen.insert(poi.id);
    }
    // Near-equal slices; every POI in exactly one slice.
    EXPECT_LE(max_size - min_size, 1u) << "shards=" << shards;
    ASSERT_EQ(seen.size(), pois.size()) << "shards=" << shards;
    for (const Poi& poi : pois) EXPECT_EQ(seen.count(poi.id), 1u);
    // Slices are contiguous in x: a later slice never starts left of an
    // earlier slice's end.
    for (size_t j = 1; j < slices.size(); ++j) {
      if (slices[j].empty() || slices[j - 1].empty()) continue;
      EXPECT_GE(slices[j].front().location.x,
                slices[j - 1].back().location.x);
    }
  }
}

TEST_F(ShardTest, PartitionWithMoreShardsThanPoisLeavesEmptySlices) {
  std::vector<Poi> pois(pois_->begin(), pois_->begin() + 3);
  auto slices = PartitionPoisForShards(pois, 5);
  ASSERT_EQ(slices.size(), 5u);
  EXPECT_EQ(slices[0].size(), 1u);
  EXPECT_EQ(slices[1].size(), 1u);
  EXPECT_EQ(slices[2].size(), 1u);
  EXPECT_TRUE(slices[3].empty());
  EXPECT_TRUE(slices[4].empty());
}

// --- S=1 bit-identity against the plain single-node service ---

TEST_F(ShardTest, SingleShardClusterIsBitIdenticalToPlainService) {
  LspDatabase db(*pois_);
  uint64_t seed = 40;
  for (AggregateKind aggregate :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin}) {
    ServiceRequest request =
        MakeRequest(Variant::kPpgnn, aggregate, seed++);

    LspService plain(db, FrontConfig());
    std::vector<uint8_t> plain_frame = plain.Call(request);

    ShardedLspService cluster(*pois_, ClusterConfig(1));
    std::vector<uint8_t> cluster_frame = FrameOf(cluster, request);

    // Frames — ciphertext bytes included — must match bit for bit: same
    // merge order, same sanitize seed and draws, same packing, same
    // deterministic homomorphic selection.
    ASSERT_EQ(cluster_frame, plain_frame)
        << "aggregate=" << static_cast<int>(aggregate);

    Decryptor dec(keys_->pub, keys_->sec);
    ServedReply plain_reply =
        ParseServedReply(plain_frame, *keys_, dec, /*layered=*/false).value();
    ServedReply cluster_reply =
        ParseServedReply(cluster_frame, *keys_, dec, /*layered=*/false)
            .value();
    ASSERT_TRUE(plain_reply.ok) << plain_reply.error.detail;
    ASSERT_TRUE(cluster_reply.ok) << cluster_reply.error.detail;
    ASSERT_EQ(cluster_reply.pois.size(), plain_reply.pois.size());
    for (size_t i = 0; i < cluster_reply.pois.size(); ++i) {
      EXPECT_EQ(cluster_reply.pois[i].x, plain_reply.pois[i].x);
      EXPECT_EQ(cluster_reply.pois[i].y, plain_reply.pois[i].y);
    }
    EXPECT_EQ(cluster.Stats().degraded_shards, 0u);
  }
}

TEST_F(ShardTest, SingleShardClusterIsBitIdenticalUnderOpt) {
  LspDatabase db(*pois_);
  ServiceRequest request =
      MakeRequest(Variant::kPpgnnOpt, AggregateKind::kSum, 50);

  LspService plain(db, FrontConfig());
  std::vector<uint8_t> plain_frame = plain.Call(request);

  ShardedLspService cluster(*pois_, ClusterConfig(1));
  std::vector<uint8_t> cluster_frame = FrameOf(cluster, request);
  ASSERT_EQ(cluster_frame, plain_frame);

  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(cluster_frame, *keys_, dec, /*layered=*/true).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  EXPECT_FALSE(reply.pois.empty());
}

// --- multi-shard merge exactness ---

TEST_F(ShardTest, FourShardClusterReproducesSingleShardFrames) {
  uint64_t seed = 60;
  for (AggregateKind aggregate :
       {AggregateKind::kSum, AggregateKind::kMin}) {
    ServiceRequest request =
        MakeRequest(Variant::kPpgnn, aggregate, seed++);
    ShardedLspService one(*pois_, ClusterConfig(1));
    ShardedLspService four(*pois_, ClusterConfig(4));
    std::vector<uint8_t> one_frame = FrameOf(one, request);
    std::vector<uint8_t> four_frame = FrameOf(four, request);
    EXPECT_EQ(four_frame, one_frame)
        << "aggregate=" << static_cast<int>(aggregate);
    EXPECT_EQ(four.Stats().degraded_shards, 0u);
  }
}

TEST_F(ShardTest, ClusterAnswerMatchesPlainSolverTopK) {
  std::vector<Point> real;
  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       70, /*sanitize=*/false, &real);
  ShardedLspService cluster(*pois_, ClusterConfig(4, /*sanitize=*/false));
  std::vector<uint8_t> frame = FrameOf(cluster, request);

  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;

  LspDatabase db(*pois_);
  auto expected = db.solver().Query(real, 3, AggregateKind::kSum);
  ASSERT_EQ(reply.pois.size(), expected.size());
  for (size_t i = 0; i < reply.pois.size(); ++i) {
    EXPECT_NEAR(reply.pois[i].x, expected[i].poi.location.x, 1e-8);
    EXPECT_NEAR(reply.pois[i].y, expected[i].poi.location.y, 1e-8);
  }
}

TEST_F(ShardTest, EmptyShardsAreNeverRouted) {
  std::vector<Poi> few(pois_->begin(), pois_->begin() + 6);
  ShardedLspService cluster(few, ClusterConfig(8, /*sanitize=*/false));
  ASSERT_EQ(cluster.shards(), 8);
  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       80, /*sanitize=*/false);
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  EXPECT_FALSE(decoded.is_error) << decoded.error.detail;
  for (int j = 0; j < cluster.shards(); ++j) {
    if (cluster.shard_size(j) == 0) {
      EXPECT_EQ(cluster.shard_service(j).Stats().accepted, 0u)
          << "empty shard " << j << " was routed";
    }
  }
}

// --- degraded merges and idempotent fan-out ---

TEST_F(ShardTest, DeadShardDegradesTheMergeButStillServes) {
  ShardedLspService cluster(*pois_, ClusterConfig(4, /*sanitize=*/false));
  // Shard link 1 is hard down: every scatter to it fails before the wire.
  ASSERT_TRUE(FailpointSetFromSpec("shard.link.1=error").ok());

  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       90, /*sanitize=*/false);
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  // The query completes with an answer (possibly missing the dead
  // shard's POIs) — never an error frame.
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.degraded_shards, 1u);
}

TEST_F(ShardTest, AllShardLinksDownFailsTheQuery) {
  ShardedLspService cluster(*pois_, ClusterConfig(2, /*sanitize=*/false));
  ASSERT_TRUE(FailpointSetFromSpec("shard.link.0=error").ok());
  ASSERT_TRUE(FailpointSetFromSpec("shard.link.1=error").ok());

  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       91, /*sanitize=*/false);
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  ASSERT_TRUE(decoded.is_error);
  EXPECT_EQ(decoded.error.code, WireError::kInternal);
}

// --- replicated shard groups: exact answers under replica loss ---

// The tentpole invariant: replicas hold identical slice data and the
// shard wire is deterministic, so a failover changes *zero* answer bits.
TEST_F(ShardTest, ReplicaFailoverKeepsFramesByteIdentical) {
  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       100, /*sanitize=*/false);
  ShardedLspService healthy(*pois_, ReplicatedConfig(2, 2, /*sanitize=*/false));
  std::vector<uint8_t> expected = FrameOf(healthy, request);

  // Replica 0 of *every* shard is hard down, so whichever shards the
  // query routes to must fail over to replica 1.
  ShardedLspService cluster(*pois_, ReplicatedConfig(2, 2, /*sanitize=*/false));
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.0.0=error").ok());
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.1.0=error").ok());
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  EXPECT_EQ(frame, expected);

  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.degraded_shards, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.replica_failovers, 1u);
  EXPECT_GE(stats.exact_despite_failures, 1u);
  EXPECT_GE(stats.health_transitions, 1u);
}

// A slow (not dead) primary: the hedge leg to the secondary wins, and
// the winning frame is still byte-identical to the no-failure run.
TEST_F(ShardTest, HedgeWinKeepsFramesByteIdentical) {
  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       101, /*sanitize=*/false);
  ShardedLspService healthy(*pois_, ReplicatedConfig(2, 2, /*sanitize=*/false));
  std::vector<uint8_t> expected = FrameOf(healthy, request);

  ShardClusterConfig config = ReplicatedConfig(2, 2, /*sanitize=*/false);
  config.hedge_delay_seconds = 0.005;
  ShardedLspService cluster(*pois_, config);
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.0.0=delay:200").ok());
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.1.0=delay:200").ok());
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  EXPECT_EQ(frame, expected);

  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.degraded_shards, 0u);
  EXPECT_GE(stats.replica_hedge_wins, 1u);
  EXPECT_GE(stats.exact_despite_failures, 1u);
}

// Degraded merge is the last tier: it engages (and is counted) only when
// *every* replica of a routed set is down.
TEST_F(ShardTest, WholeReplicaSetDownDegradesTheMerge) {
  ShardedLspService cluster(*pois_, ReplicatedConfig(4, 2, /*sanitize=*/false));
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.1.0=error").ok());
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.1.1=error").ok());

  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       90, /*sanitize=*/false);
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  Decryptor dec(keys_->pub, keys_->sec);
  ServedReply reply =
      ParseServedReply(frame, *keys_, dec, /*layered=*/false).value();
  ASSERT_TRUE(reply.ok) << reply.error.detail;
  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.degraded_shards, 1u);
}

// The set-wide shard.link.<j> failpoint still means "the whole set is
// unreachable" under replication — the designated degraded-merge path.
TEST_F(ShardTest, SetWideLinkFailureDegradesReplicatedMerge) {
  ShardedLspService cluster(*pois_, ReplicatedConfig(4, 2, /*sanitize=*/false));
  ASSERT_TRUE(FailpointSetFromSpec("shard.link.1=error").ok());

  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       90, /*sanitize=*/false);
  std::vector<uint8_t> frame = FrameOf(cluster, request);
  ResponseFrame decoded = ResponseFrame::Decode(frame).value();
  EXPECT_FALSE(decoded.is_error) << decoded.error.detail;
  EXPECT_GE(cluster.Stats().degraded_shards, 1u);
}

// The issue's acceptance scenario: S=4, R=2, the primary replica of one
// shard killed. Every answer is served, zero merges degrade, and every
// frame is byte-identical to the no-failure cluster's.
TEST_F(ShardTest, KillPrimaryAcceptanceServesExactAnswers) {
  ShardedLspService healthy(*pois_, ReplicatedConfig(4, 2, /*sanitize=*/false));
  ShardedLspService cluster(*pois_, ReplicatedConfig(4, 2, /*sanitize=*/false));
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.3.0=error").ok());

  for (uint64_t seed = 110; seed < 115; ++seed) {
    ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                         seed, /*sanitize=*/false);
    std::vector<uint8_t> expected = FrameOf(healthy, request);
    std::vector<uint8_t> frame = FrameOf(cluster, request);
    EXPECT_EQ(frame, expected) << "seed=" << seed;
    ResponseFrame decoded = ResponseFrame::Decode(frame).value();
    EXPECT_FALSE(decoded.is_error) << decoded.error.detail;
  }

  ServiceStats stats = cluster.Stats();
  EXPECT_EQ(stats.served, 5u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded_shards, 0u);
  EXPECT_GE(stats.exact_despite_failures, 1u);
  EXPECT_GE(stats.replica_failovers, 1u);

  // The ladder surfaced per replica: (3,0) was demoted and never served
  // a winning leg; (3,1) carried the shard.
  bool saw_dead = false, saw_backup = false;
  for (const ServiceStats::ReplicaRow& row : stats.replicas) {
    if (row.shard == 3 && row.replica == 0) {
      saw_dead = true;
      EXPECT_NE(row.health, 0);  // not healthy
      EXPECT_EQ(row.served, 0u);
      EXPECT_GE(row.transitions, 1u);
    }
    if (row.shard == 3 && row.replica == 1) {
      saw_backup = true;
      EXPECT_GE(row.served, 1u);
    }
  }
  EXPECT_TRUE(saw_dead);
  EXPECT_TRUE(saw_backup);
}

// Half-open recovery end to end: kill the primary, drive it down, lift
// the failpoint, probe — the replica rejoins and serves again.
TEST_F(ShardTest, ProbeRecoversAKilledReplica) {
  ShardClusterConfig config = ReplicatedConfig(1, 2, /*sanitize=*/false);
  config.health.down_after = 1;
  config.health.down_cooldown_seconds = 0.0;
  ShardedLspService cluster(*pois_, config);
  ASSERT_TRUE(FailpointSetFromSpec("shard.replica.0.0=error").ok());

  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       120, /*sanitize=*/false);
  std::vector<uint8_t> first = FrameOf(cluster, request);
  ResponseFrame decoded = ResponseFrame::Decode(first).value();
  ASSERT_FALSE(decoded.is_error) << decoded.error.detail;
  ReplicaSet& set = cluster.replica_set(0);
  ASSERT_EQ(set.health().state(0), ReplicaHealth::kDown);

  FailpointClearAll();
  set.ProbeOnce();  // half-open probe succeeds: down -> suspect
  EXPECT_EQ(set.health().state(0), ReplicaHealth::kSuspect);
  set.ProbeOnce();  // second success: suspect -> healthy
  EXPECT_EQ(set.health().state(0), ReplicaHealth::kHealthy);

  const uint64_t served_before = set.Stats().replicas[0].served;
  std::vector<uint8_t> second = FrameOf(cluster, request);
  EXPECT_EQ(second, first);  // recovery changes no bits either
  EXPECT_GE(set.Stats().replicas[0].served, served_before + 1);
}

TEST_F(ShardTest, ParentIdempotencyKeyCoalescesShardLegs) {
  // Front dedup off so the handler really runs twice; the derived
  // per-shard keys must then coalesce the second fan-out at the shards.
  ShardClusterConfig config = ClusterConfig(2, /*sanitize=*/false);
  config.front.enable_dedup = false;
  ShardedLspService cluster(*pois_, config);

  RequestWireOptions wire;
  wire.idempotency_key = 0xC0FFEE;
  ServiceRequest request = MakeRequest(Variant::kPpgnn, AggregateKind::kSum,
                                       92, /*sanitize=*/false, nullptr, wire);
  std::vector<uint8_t> first = FrameOf(cluster, request);
  std::vector<uint8_t> second = FrameOf(cluster, request);
  EXPECT_EQ(first, second);

  uint64_t replays = 0;
  for (int j = 0; j < cluster.shards(); ++j) {
    replays += cluster.shard_service(j).Stats().dedup_replays;
  }
  EXPECT_GE(replays, 1u);
}

}  // namespace
}  // namespace ppgnn
