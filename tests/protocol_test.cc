#include "core/protocol.h"

#include <gtest/gtest.h>

#include "spatial/dataset.h"

namespace ppgnn {
namespace {

// Shared fixtures: a mid-sized database and fixed keys so each test does
// not pay key generation.
class ProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new LspDatabase(GenerateSequoiaLike(5000, 321));
    Rng rng(999);
    keys_ = new KeyPair(GenerateKeyPair(256, rng).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete keys_;
  }

  static ProtocolParams SmallParams() {
    ProtocolParams params;
    params.n = 4;
    params.d = 6;
    params.delta = 12;
    params.k = 4;
    params.key_bits = 256;
    params.theta0 = 0.05;
    return params;
  }

  static std::vector<Point> Group(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Point> out(n);
    for (Point& p : out) p = {rng.NextDouble(), rng.NextDouble()};
    return out;
  }

  static void ExpectMatchesReference(Variant variant,
                                     const ProtocolParams& params,
                                     uint64_t seed) {
    auto group = Group(params.n, seed);
    Rng rng(seed * 3 + 1);
    auto outcome = RunQuery(variant, params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    Rng ref_rng(0);
    auto reference = ReferenceAnswer(params, group, *db_, ref_rng);
    ASSERT_EQ(outcome->pois.size(), reference.size())
        << VariantToString(variant);
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_NEAR(outcome->pois[i].x, reference[i].poi.location.x, 1e-8);
      EXPECT_NEAR(outcome->pois[i].y, reference[i].poi.location.y, 1e-8);
    }
  }

  static LspDatabase* db_;
  static KeyPair* keys_;
};
LspDatabase* ProtocolTest::db_ = nullptr;
KeyPair* ProtocolTest::keys_ = nullptr;

TEST_F(ProtocolTest, ParamsValidation) {
  ProtocolParams p = SmallParams();
  EXPECT_TRUE(p.Validate().ok());
  p.n = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.d = 1;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.delta = p.d - 1;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.k = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.theta0 = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.key_bits = 100;
  EXPECT_FALSE(p.Validate().ok());
}

TEST_F(ProtocolTest, EffectiveDeltaSingleUser) {
  ProtocolParams p = SmallParams();
  p.n = 1;
  EXPECT_EQ(p.EffectiveDelta(), p.d);
  p.n = 4;
  EXPECT_EQ(p.EffectiveDelta(), p.delta);
}

TEST_F(ProtocolTest, PpgnnGroupMatchesPlaintextReference) {
  ExpectMatchesReference(Variant::kPpgnn, SmallParams(), 11);
  ExpectMatchesReference(Variant::kPpgnn, SmallParams(), 12);
}

TEST_F(ProtocolTest, PpgnnOptMatchesPlaintextReference) {
  ExpectMatchesReference(Variant::kPpgnnOpt, SmallParams(), 13);
  ExpectMatchesReference(Variant::kPpgnnOpt, SmallParams(), 14);
}

TEST_F(ProtocolTest, NaiveMatchesPlaintextReference) {
  ExpectMatchesReference(Variant::kNaive, SmallParams(), 15);
}

TEST_F(ProtocolTest, SingleUserQueryMatchesKnn) {
  ProtocolParams params = SmallParams();
  params.n = 1;
  params.d = 8;
  ExpectMatchesReference(Variant::kPpgnn, params, 21);
  ExpectMatchesReference(Variant::kPpgnnOpt, params, 22);
}

TEST_F(ProtocolTest, SingleUserReturnsFullK) {
  // No Privacy IV for n = 1: no sanitation, full k POIs come back.
  ProtocolParams params = SmallParams();
  params.n = 1;
  auto group = Group(1, 31);
  Rng rng(32);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->pois.size(), static_cast<size_t>(params.k));
  EXPECT_EQ(outcome->info.sanitize_samples, 0u);
}

TEST_F(ProtocolTest, NasVariantSkipsSanitation) {
  ProtocolParams params = SmallParams();
  params.sanitize = false;
  auto group = Group(params.n, 41);
  Rng rng(42);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->pois.size(), static_cast<size_t>(params.k));
  EXPECT_EQ(outcome->info.sanitize_samples, 0u);
  EXPECT_DOUBLE_EQ(outcome->info.sanitize_seconds, 0.0);
}

TEST_F(ProtocolTest, SanitationNeverReturnsEmptyAnswer) {
  ProtocolParams params = SmallParams();
  for (uint64_t seed = 50; seed < 56; ++seed) {
    auto group = Group(params.n, seed);
    Rng rng(seed);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GE(outcome->pois.size(), 1u);
    EXPECT_LE(outcome->pois.size(), static_cast<size_t>(params.k));
  }
}

TEST_F(ProtocolTest, DeltaPrimeRespectsPrivacyII) {
  ProtocolParams params = SmallParams();
  auto group = Group(params.n, 61);
  Rng rng(62);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->info.delta_prime,
            static_cast<uint64_t>(params.delta));
}

TEST_F(ProtocolTest, NaiveUsesExactlyDeltaCandidates) {
  ProtocolParams params = SmallParams();
  auto group = Group(params.n, 71);
  Rng rng(72);
  auto outcome = RunQuery(Variant::kNaive, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->info.delta_prime,
            static_cast<uint64_t>(params.delta));
}

TEST_F(ProtocolTest, CommunicationCostOrdering) {
  // Fig 6a: Naive > PPGNN > PPGNN-OPT on communication for large delta.
  ProtocolParams params = SmallParams();
  params.n = 4;
  params.d = 8;
  params.delta = 64;
  params.sanitize = false;  // speeds the test; comm unaffected
  auto group = Group(params.n, 81);
  uint64_t comm[3];
  Variant variants[] = {Variant::kNaive, Variant::kPpgnn, Variant::kPpgnnOpt};
  for (int i = 0; i < 3; ++i) {
    Rng rng(82);
    auto outcome = RunQuery(variants[i], params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    comm[i] = outcome->costs.TotalCommBytes();
  }
  EXPECT_GT(comm[0], comm[1]);  // Naive > PPGNN
  EXPECT_GT(comm[1], comm[2]);  // PPGNN > OPT
}

TEST_F(ProtocolTest, OptUsesSqrtScaleIndicator) {
  ProtocolParams params = SmallParams();
  params.delta = 49;
  params.d = 8;
  params.sanitize = false;
  auto group = Group(params.n, 91);
  Rng rng(92);
  auto outcome = RunQuery(Variant::kPpgnnOpt, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->info.omega, 2u);
  EXPECT_LE(outcome->info.omega, 12u);
}

TEST_F(ProtocolTest, CostsArePopulated) {
  ProtocolParams params = SmallParams();
  auto group = Group(params.n, 101);
  Rng rng(102);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok());
  const CostReport& costs = outcome->costs;
  EXPECT_GT(costs.bytes_user_to_lsp, 0u);
  EXPECT_GT(costs.bytes_lsp_to_user, 0u);
  EXPECT_GT(costs.bytes_user_to_user, 0u);  // pos broadcast + answer
  EXPECT_GT(costs.user_seconds, 0.0);
  EXPECT_GT(costs.lsp_seconds, 0.0);
  // Sanitation dominates but never exceeds total LSP time.
  EXPECT_LE(outcome->info.sanitize_seconds, costs.lsp_seconds + 1e-9);
}

TEST_F(ProtocolTest, RejectsWrongGroupSize) {
  ProtocolParams params = SmallParams();
  auto group = Group(params.n - 1, 111);
  Rng rng(112);
  EXPECT_FALSE(RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_).ok());
}

TEST_F(ProtocolTest, NaiveRejectsSingleUser) {
  ProtocolParams params = SmallParams();
  params.n = 1;
  auto group = Group(1, 121);
  Rng rng(122);
  EXPECT_FALSE(RunQuery(Variant::kNaive, params, group, *db_, rng, keys_).ok());
}

TEST_F(ProtocolTest, FreshKeysPerQueryAlsoWork) {
  ProtocolParams params = SmallParams();
  params.key_bits = 128;
  params.sanitize = false;
  auto group = Group(params.n, 131);
  Rng rng(132);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome->pois.size(), 1u);
}

TEST_F(ProtocolTest, AnswerWidthMatchesCodec) {
  ProtocolParams params = SmallParams();
  params.k = 4;  // 256-bit key packs 3 POIs/int -> m = 2
  auto group = Group(params.n, 141);
  Rng rng(142);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->info.answer_width_m, 2u);
}

TEST_F(ProtocolTest, ParallelLspIsDeterministic) {
  // The per-candidate sanitation seed makes the answer independent of the
  // LSP thread count, and the reported LSP cost stays total-work.
  ProtocolParams params = SmallParams();
  auto group = Group(params.n, 171);
  std::vector<Point> baseline;
  for (int threads : {1, 2, 4, 7}) {
    params.lsp_threads = threads;
    Rng rng(172);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (threads == 1) {
      baseline = outcome->pois;
      EXPECT_DOUBLE_EQ(outcome->info.lsp_parallel_seconds, 0.0);
    } else {
      ASSERT_EQ(outcome->pois.size(), baseline.size()) << threads;
      for (size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(outcome->pois[i], baseline[i]) << threads;
      }
      EXPECT_GT(outcome->info.lsp_parallel_seconds, 0.0);
    }
  }
}

TEST_F(ProtocolTest, ParamsRejectBadThreadCount) {
  ProtocolParams params = SmallParams();
  params.lsp_threads = 0;
  EXPECT_FALSE(params.Validate().ok());
  params.lsp_threads = 500;
  EXPECT_FALSE(params.Validate().ok());
}

TEST_F(ProtocolTest, VariantNames) {
  EXPECT_STREQ(VariantToString(Variant::kPpgnn), "PPGNN");
  EXPECT_STREQ(VariantToString(Variant::kPpgnnOpt), "PPGNN-OPT");
  EXPECT_STREQ(VariantToString(Variant::kNaive), "Naive");
}

TEST_F(ProtocolTest, TinyDatabaseReturnsAllPois) {
  // k > |D|: the kGNN black box returns everything; the codec and the
  // selection must handle answers shorter than k.
  LspDatabase tiny(GenerateUniform(3, 1));
  ProtocolParams params = SmallParams();
  params.k = 8;
  params.sanitize = false;
  auto group = Group(params.n, 201);
  Rng rng(202);
  auto outcome = RunQuery(Variant::kPpgnn, params, group, tiny, rng, keys_);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->pois.size(), 3u);
}

TEST_F(ProtocolTest, CustomTestConfigPropagates) {
  // A stricter gamma means a larger N_H, visible as more Monte-Carlo
  // samples drawn per test on average.
  ProtocolParams params = SmallParams();
  auto group = Group(params.n, 211);
  uint64_t samples_loose, samples_strict;
  {
    params.test.gamma = 0.2;
    Rng rng(212);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok());
    samples_loose = outcome->info.sanitize_samples;
  }
  {
    params.test.gamma = 0.01;
    params.test.phi = 0.05;  // smaller effect size -> much larger N_H
    Rng rng(212);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, *db_, rng, keys_);
    ASSERT_TRUE(outcome.ok());
    samples_strict = outcome->info.sanitize_samples;
  }
  EXPECT_GT(samples_strict, samples_loose);
}

struct SweepCase {
  Variant variant;
  int n;
  AggregateKind kind;
};

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweepTest, MatchesReferenceAcrossTheMatrix) {
  const SweepCase& c = GetParam();
  static LspDatabase* db = new LspDatabase(GenerateSequoiaLike(3000, 555));
  static KeyPair* keys = [] {
    Rng rng(556);
    return new KeyPair(GenerateKeyPair(256, rng).value());
  }();

  ProtocolParams params;
  params.n = c.n;
  params.d = 4;
  params.delta = 8;
  params.k = 3;
  params.key_bits = 256;
  params.aggregate = c.kind;
  Rng group_rng(600 + c.n);
  std::vector<Point> group(c.n);
  for (Point& p : group) p = {group_rng.NextDouble(), group_rng.NextDouble()};

  Rng rng(601);
  auto outcome = RunQuery(c.variant, params, group, *db, rng, keys);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  Rng ref_rng(0);
  auto reference = ReferenceAnswer(params, group, *db, ref_rng);
  ASSERT_EQ(outcome->pois.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome->pois[i].x, reference[i].poi.location.x, 1e-8);
    EXPECT_NEAR(outcome->pois[i].y, reference[i].poi.location.y, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolSweepTest,
    ::testing::Values(
        SweepCase{Variant::kPpgnn, 1, AggregateKind::kSum},
        SweepCase{Variant::kPpgnn, 2, AggregateKind::kSum},
        SweepCase{Variant::kPpgnn, 5, AggregateKind::kMax},
        SweepCase{Variant::kPpgnn, 5, AggregateKind::kMin},
        SweepCase{Variant::kPpgnnOpt, 1, AggregateKind::kSum},
        SweepCase{Variant::kPpgnnOpt, 2, AggregateKind::kMax},
        SweepCase{Variant::kPpgnnOpt, 5, AggregateKind::kSum},
        SweepCase{Variant::kNaive, 2, AggregateKind::kSum},
        SweepCase{Variant::kNaive, 5, AggregateKind::kMin}));

TEST_F(ProtocolTest, MaxAggregateEndToEnd) {
  ProtocolParams params = SmallParams();
  params.aggregate = AggregateKind::kMax;
  ExpectMatchesReference(Variant::kPpgnn, params, 151);
}

TEST_F(ProtocolTest, MinAggregateEndToEnd) {
  ProtocolParams params = SmallParams();
  params.aggregate = AggregateKind::kMin;
  ExpectMatchesReference(Variant::kPpgnn, params, 161);
}

}  // namespace
}  // namespace ppgnn
