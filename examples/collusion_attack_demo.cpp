// The inequality attack, live (Sections 5.1-5.2 of the paper).
//
//   ./collusion_attack_demo
//
// Five users query; four of them collude to localize the fifth using the
// ranked answer. We show how the victim's feasible region shrinks as the
// colluders exploit longer and longer answer prefixes, and how the LSP's
// answer sanitation cuts the answer to the longest SAFE prefix.

#include <cstdio>

#include "ppgnn.h"

int main() {
  using namespace ppgnn;

  LspDatabase lsp(GenerateSequoiaLike(20000, 77));

  // The group; user 0 is the attack victim.
  std::vector<Point> group = {
      {0.30, 0.60},  // victim
      {0.80, 0.20},
      {0.82, 0.25},
      {0.78, 0.22},
      {0.76, 0.28},
  };
  const Point victim = group[0];
  std::vector<Point> colluders(group.begin() + 1, group.end());
  const int k = 8;

  // The unsanitized ranked answer the LSP would compute.
  auto ranked = lsp.solver().Query(group, k, AggregateKind::kSum);
  std::printf("Unsanitized top-%d answer (rank: location, group cost):\n", k);
  std::vector<Point> answer_points;
  for (size_t i = 0; i < ranked.size(); ++i) {
    answer_points.push_back(ranked[i].poi.location);
    std::printf("  %zu: (%.4f, %.4f)  F=%.4f\n", i + 1,
                ranked[i].poi.location.x, ranked[i].poi.location.y,
                ranked[i].cost);
  }

  // The colluders run the inequality attack on growing prefixes.
  std::printf("\nColluders' view: victim's feasible region by prefix length\n");
  std::printf("%-8s %16s %10s\n", "prefix", "inequalities", "region");
  Rng rng(1);
  for (size_t t = 1; t <= answer_points.size(); ++t) {
    std::vector<Point> prefix(answer_points.begin(),
                              answer_points.begin() + t);
    InequalityAttack attack(colluders, prefix, AggregateKind::kSum);
    double frac = attack.EstimateRegionFraction(rng, 40000);
    std::printf("%-8zu %16zu %9.1f%%  %s\n", t, attack.NumInequalities(),
                frac * 100,
                attack.Satisfies(victim) ? "" : "(victim excluded?! bug)");
  }

  // The LSP's defense: sanitize to the longest prefix where every user's
  // region stays above theta0.
  const double theta0 = 0.05;
  auto sanitizer = AnswerSanitizer::Create(theta0, TestConfig{}).value();
  SanitizeStats stats;
  Rng sanitize_rng(2);
  auto safe = sanitizer.Sanitize(ranked, group, AggregateKind::kSum,
                                 sanitize_rng, &stats);
  std::printf(
      "\nAnswer sanitation with theta0 = %.0f%% of the space:\n"
      "  LSP ran %llu hypothesis tests using %llu Monte-Carlo samples\n"
      "  (N_H per test = %llu; early exit saves most of them)\n"
      "  -> returns the top-%zu prefix instead of the full top-%d.\n",
      theta0 * 100, static_cast<unsigned long long>(stats.tests_run),
      static_cast<unsigned long long>(stats.samples_drawn),
      static_cast<unsigned long long>(sanitizer.sample_size()), safe.size(),
      k);

  // Verify: attacking the sanitized prefix leaves a large region.
  if (safe.size() >= 2) {
    std::vector<Point> safe_points;
    for (const auto& rp : safe) safe_points.push_back(rp.poi.location);
    InequalityAttack attack(colluders, safe_points, AggregateKind::kSum);
    Rng verify_rng(3);
    std::printf(
        "\nAttacking the sanitized answer localizes the victim only to\n"
        "%.1f%% of the space (>= theta0 = %.0f%%): Privacy IV holds.\n",
        attack.EstimateRegionFraction(verify_rng, 40000) * 100, theta0 * 100);
  } else {
    std::printf("\nSanitized answer has a single POI: nothing to attack.\n");
  }
  return 0;
}
