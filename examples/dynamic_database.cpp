// Dynamic databases: the operational edge the paper claims for PPGNN
// over pre-computation schemes (Sections 1 and 8.2).
//
//   ./dynamic_database
//
// A new cafe opens right next to the group. PPGNN's next query simply
// finds it — the LSP computes kGNN on the live R-tree. APNN, by
// contrast, must re-run its whole grid pre-computation before any query
// can see the change (and until then silently returns stale answers).

#include <cstdio>

#include "ppgnn.h"

int main() {
  using namespace ppgnn;

  LspDatabase lsp(GenerateSequoiaLike(30000, 99));
  std::vector<Point> group = {{0.401, 0.402}, {0.403, 0.398}};
  const Point new_cafe{0.4015, 0.4005};  // right between the two users

  ProtocolParams params;
  params.n = 2;
  params.d = 5;
  params.delta = 10;
  params.k = 1;
  params.key_bits = 512;
  params.sanitize = false;  // k = 1 needs no sanitation anyway

  auto top1 = [&](const char* label) {
    Rng rng(7);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng);
    if (!outcome.ok() || outcome->pois.empty()) {
      std::fprintf(stderr, "query failed\n");
      std::exit(1);
    }
    std::printf("%-28s best POI (%.4f, %.4f), total distance %.5f\n", label,
                outcome->pois[0].x, outcome->pois[0].y,
                AggregateCost(AggregateKind::kSum, outcome->pois[0], group));
    return outcome->pois[0];
  };

  // Also set up APNN over the same database for the contrast.
  auto apnn_before = ApnnServer::Build(&lsp, 64, 4).value();

  std::printf("== Before the new cafe ==\n");
  Point before = top1("PPGNN:");

  std::printf("\n== The cafe opens (one InsertPoi call) ==\n");
  lsp.InsertPoi({999999, new_cafe});
  Point after = top1("PPGNN (same LSP object):");
  if (!(after == before)) {
    std::printf("PPGNN found the new cafe immediately — zero maintenance.\n");
  }

  auto contains_cafe = [&](const std::vector<Point>& answer) {
    for (const Point& p : answer) {
      if (Distance(p, new_cafe) < 1e-9) return true;
    }
    return false;
  };
  auto stale = apnn_before.CellAnswer({0.402, 0.4}, 4).value();
  std::printf(
      "\nAPNN's pre-computed grid still answers from the OLD database:\n"
      "%-28s new cafe in the cell's top-4? %s  <-- stale!\n",
      "APNN (stale grid):", contains_cafe(stale) ? "yes" : "no");

  double t0 = ThreadCpuSeconds();
  auto apnn_after = ApnnServer::Build(&lsp, 64, 4).value();
  double rebuild = ThreadCpuSeconds() - t0;
  auto fresh = apnn_after.CellAnswer({0.402, 0.4}, 4).value();
  std::printf("%-28s new cafe in the cell's top-4? %s (after %.0f ms full "
              "re-compute)\n",
              "APNN (rebuilt grid):", contains_cafe(fresh) ? "yes" : "no",
              rebuild * 1e3);

  std::printf(
      "\nA POI update costs APNN a full grid pre-computation; PPGNN pays\n"
      "nothing. The same holds for deletions:\n");
  lsp.DeletePoi(999999);
  top1("PPGNN after DeletePoi:");
  return 0;
}
