// Quickstart: a group of four friends privately retrieves the top-3
// meeting places from a simulated LSP.
//
//   ./quickstart [key_bits]
//
// Demonstrates the minimal API surface: build an LspDatabase, fill in
// ProtocolParams, call RunQuery. Uses a modest key size by default so the
// demo finishes in a second or two; pass 1024 for the paper's setting.

#include <cstdio>
#include <cstdlib>

#include "ppgnn.h"

int main(int argc, char** argv) {
  using namespace ppgnn;

  int key_bits = argc > 1 ? std::atoi(argv[1]) : 512;

  // 1. The LSP owns a POI database. We synthesize a Sequoia-like workload
  //    (62,556 POIs would match the paper; 20k keeps the demo snappy).
  std::printf("Building LSP database (20000 POIs, Sequoia-like skew)...\n");
  LspDatabase lsp(GenerateSequoiaLike(20000, /*seed=*/2018));

  // 2. Four users at known real locations want the 3 best meeting spots
  //    by total travel distance (aggregate F = sum).
  std::vector<Point> group = {
      {0.21, 0.76}, {0.25, 0.71}, {0.18, 0.69}, {0.30, 0.74}};

  ProtocolParams params;
  params.n = static_cast<int>(group.size());
  params.d = 10;        // each user hides among d locations (Privacy I)
  params.delta = 40;    // LSP sees >= delta candidate queries (Privacy II)
  params.k = 3;
  params.theta0 = 0.05; // colluders can't localize anyone below 5% of space
  params.key_bits = key_bits;

  // 3. Run the full protocol: dummy generation, Paillier encryption,
  //    candidate-query expansion, MBM kGNN, answer sanitation, private
  //    selection, decryption.
  Rng rng(42);
  auto outcome = RunQuery(Variant::kPpgnnOpt, params, group, lsp, rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\nTop meeting places (after Privacy IV sanitation):\n");
  for (size_t i = 0; i < outcome->pois.size(); ++i) {
    double cost = AggregateCost(AggregateKind::kSum, outcome->pois[i], group);
    std::printf("  #%zu  (%.4f, %.4f)   total distance %.4f\n", i + 1,
                outcome->pois[i].x, outcome->pois[i].y, cost);
  }

  std::printf("\nWhat it cost:\n  %s\n", outcome->costs.ToString().c_str());
  std::printf(
      "  candidate queries delta' = %llu, indicator blocks omega = %llu\n",
      static_cast<unsigned long long>(outcome->info.delta_prime),
      static_cast<unsigned long long>(outcome->info.omega));
  std::printf("  POIs returned: %zu of k=%d (sanitation may trim)\n",
              outcome->info.pois_returned, params.k);

  // 4. Sanity: compare with the plaintext reference the LSP would compute
  //    if privacy were not a concern.
  Rng ref_rng(0);
  auto reference = ReferenceAnswer(params, group, lsp, ref_rng);
  std::printf("\nPlaintext reference agrees: %s\n",
              reference.size() == outcome->pois.size() ? "yes" : "NO");
  return 0;
}
