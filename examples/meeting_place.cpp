// Meeting-place scenario: business rivals pick a venue without revealing
// their offices to each other OR to the map service.
//
//   ./meeting_place [n] [k]
//
// Walks through all three protocol variants (Naive, PPGNN, PPGNN-OPT) on
// the same group and compares their costs side by side — a miniature of
// the paper's Figure 6 — and shows the effect of the aggregate function
// choice (sum vs max vs min) on the chosen venue.

#include <cstdio>
#include <cstdlib>

#include "ppgnn.h"

int main(int argc, char** argv) {
  using namespace ppgnn;

  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const int k = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("LSP database: 30000 POIs\n");
  LspDatabase lsp(GenerateSequoiaLike(30000, 7));

  // Rival companies scattered around the city center.
  Rng place_rng(99);
  std::vector<Point> group;
  for (int i = 0; i < n; ++i) {
    group.push_back({0.4 + 0.25 * place_rng.NextDouble(),
                     0.4 + 0.25 * place_rng.NextDouble()});
  }

  ProtocolParams params;
  params.n = n;
  params.d = 8;
  params.delta = 32;
  params.k = k;
  params.key_bits = 512;
  params.theta0 = 0.05;

  std::printf("\n=== Variant comparison (n=%d, d=%d, delta=%d, k=%d) ===\n",
              n, params.d, params.delta, k);
  std::printf("%-10s %12s %12s %12s %8s\n", "variant", "comm(B)", "user(ms)",
              "LSP(ms)", "POIs");
  for (Variant variant :
       {Variant::kNaive, Variant::kPpgnn, Variant::kPpgnnOpt}) {
    Rng rng(1234);  // same randomness for a fair comparison
    auto outcome = RunQuery(variant, params, group, lsp, rng);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", VariantToString(variant),
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %12llu %12.2f %12.2f %8zu\n", VariantToString(variant),
                static_cast<unsigned long long>(
                    outcome->costs.TotalCommBytes()),
                outcome->costs.user_seconds * 1e3,
                outcome->costs.lsp_seconds * 1e3, outcome->pois.size());
  }

  std::printf("\n=== Aggregate function semantics ===\n");
  struct {
    AggregateKind kind;
    const char* story;
  } kinds[] = {
      {AggregateKind::kSum, "minimize total travel"},
      {AggregateKind::kMax, "minimize the latest arrival"},
      {AggregateKind::kMin, "minimize the earliest arrival"},
  };
  for (const auto& item : kinds) {
    params.aggregate = item.kind;
    Rng rng(777);
    auto outcome = RunQuery(Variant::kPpgnn, params, group, lsp, rng);
    if (!outcome.ok() || outcome->pois.empty()) {
      std::fprintf(stderr, "aggregate %s failed\n",
                   AggregateKindToString(item.kind));
      return 1;
    }
    std::printf("  F=%-4s (%s): best venue (%.4f, %.4f)\n",
                AggregateKindToString(item.kind), item.story,
                outcome->pois[0].x, outcome->pois[0].y);
  }

  std::printf(
      "\nNo rival learned another's office: each only ever sent its\n"
      "d-location dummy set to the LSP, and the ranked answer was\n"
      "sanitized against the full-collusion inequality attack.\n");
  return 0;
}
