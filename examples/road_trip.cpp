// Group nearest neighbor under ROAD-NETWORK distance (Definition 2.1
// allows any metric; the paper cites Yiu et al. TKDE'05 for the road
// case).
//
//   ./road_trip
//
// Three friends on opposite sides of a river (a sparse road network with
// few crossings) pick a restaurant. Straight-line distance would choose a
// place just across the river from two of them; network distance knows
// about the detour to the bridge. The PPGNN protocol runs unchanged with
// the road-network black box and a road-aware answer sanitation.

#include <cstdio>

#include "ppgnn.h"

int main() {
  using namespace ppgnn;

  // A city street grid with 35% of streets missing (rivers, parks, ...).
  Rng net_rng(13);
  RoadNetwork roads = RoadNetwork::BuildGrid(24, 24, net_rng, 0.3, 0.35);
  std::printf("Road network: %zu intersections, %zu road segments, %s\n",
              roads.NodeCount(), roads.EdgeCount(),
              roads.IsConnected() ? "connected" : "DISCONNECTED?!");

  LspDatabase lsp(GenerateSequoiaLike(4000, 17));
  RoadDistanceOracle oracle(&roads);
  lsp.SetSolver(std::make_unique<RoadGnnSolver>(&roads, &lsp.pois()));
  lsp.SetDistanceOracle(&oracle);

  std::vector<Point> friends = {{0.15, 0.40}, {0.22, 0.55}, {0.70, 0.45}};

  ProtocolParams params;
  params.n = 3;
  params.d = 6;
  params.delta = 20;
  params.k = 3;
  params.key_bits = 512;

  Rng rng(21);
  auto road_answer = RunQuery(Variant::kPpgnn, params, friends, lsp, rng);
  if (!road_answer.ok()) {
    std::fprintf(stderr, "road query failed: %s\n",
                 road_answer.status().ToString().c_str());
    return 1;
  }

  // The same query under straight-line distance, for contrast.
  LspDatabase euclid_lsp(GenerateSequoiaLike(4000, 17));
  Rng rng2(21);
  auto euclid_answer =
      RunQuery(Variant::kPpgnn, params, friends, euclid_lsp, rng2);
  if (!euclid_answer.ok()) return 1;

  auto total_road = [&](const Point& p) {
    double total = 0;
    for (const Point& f : friends) total += oracle.Distance(p, f);
    return total;
  };
  auto total_euclid = [&](const Point& p) {
    double total = 0;
    for (const Point& f : friends) total += Distance(p, f);
    return total;
  };

  std::printf("\nTop restaurant by ROAD distance:\n");
  const Point& road_best = road_answer->pois[0];
  std::printf("  (%.3f, %.3f)  drive %.3f  (straight-line %.3f)\n",
              road_best.x, road_best.y, total_road(road_best),
              total_euclid(road_best));

  std::printf("Top restaurant by STRAIGHT-LINE distance:\n");
  const Point& euclid_best = euclid_answer->pois[0];
  std::printf("  (%.3f, %.3f)  drive %.3f  (straight-line %.3f)\n",
              euclid_best.x, euclid_best.y, total_road(euclid_best),
              total_euclid(euclid_best));

  double saved = total_road(euclid_best) - total_road(road_best);
  if (saved > 1e-9) {
    std::printf("\nThe road-aware answer saves %.3f of total driving that\n"
                "the Euclidean answer would have cost.\n",
                saved);
  } else {
    std::printf("\n(For this seed both metrics agree on the winner; the\n"
                "road-aware engine is still never worse by construction.)\n");
  }
  return 0;
}
