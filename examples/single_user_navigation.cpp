// Single-user scenario (the paper's Section 3): a lone driver privately
// asks for the k nearest charging stations, comparing PPGNN with the
// pre-computation-based APNN baseline.
//
//   ./single_user_navigation [d] [k]
//
// Shows the qualitative trade the paper highlights in Figure 5d-5f: APNN
// answers faster on the LSP side (everything pre-computed) but returns
// the kNN of a grid-cell center — an approximation — and its pre-compute
// must be redone whenever the database changes.

#include <cstdio>
#include <cstdlib>

#include "ppgnn.h"

int main(int argc, char** argv) {
  using namespace ppgnn;

  const int d = argc > 1 ? std::atoi(argv[1]) : 25;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("LSP database: 25000 charging stations\n");
  LspDatabase lsp(GenerateSequoiaLike(25000, 3));

  Point driver{0.37, 0.52};

  // --- PPGNN (exact, no pre-computation) ---
  ProtocolParams params;
  params.n = 1;
  params.d = d;
  params.k = k;
  params.key_bits = 512;
  Rng rng(5);
  auto ppgnn = RunQuery(Variant::kPpgnn, params, {driver}, lsp, rng);
  if (!ppgnn.ok()) {
    std::fprintf(stderr, "PPGNN failed: %s\n",
                 ppgnn.status().ToString().c_str());
    return 1;
  }

  // --- APNN (pre-computed grid, approximate) ---
  auto server_or = ApnnServer::Build(&lsp, /*grid=*/64, /*max_k=*/k);
  if (!server_or.ok()) {
    std::fprintf(stderr, "APNN build failed\n");
    return 1;
  }
  const ApnnServer& server = server_or.value();
  ApnnParams aparams;
  aparams.grid = 64;
  aparams.b = 5;  // b^2 = 25 cells ~ d = 25 locations
  aparams.k = k;
  aparams.key_bits = 512;
  auto apnn = server.Query(driver, aparams, rng);
  if (!apnn.ok()) {
    std::fprintf(stderr, "APNN query failed\n");
    return 1;
  }

  std::printf("\nAPNN grid pre-computation took %.2f s (paid again on every "
              "database update!)\n",
              server.setup_seconds());

  std::printf("\n%-10s %12s %12s %12s\n", "method", "comm(B)", "user(ms)",
              "LSP(ms)");
  std::printf("%-10s %12llu %12.2f %12.2f\n", "PPGNN",
              static_cast<unsigned long long>(ppgnn->costs.TotalCommBytes()),
              ppgnn->costs.user_seconds * 1e3, ppgnn->costs.lsp_seconds * 1e3);
  std::printf("%-10s %12llu %12.2f %12.2f\n", "APNN",
              static_cast<unsigned long long>(apnn->costs.TotalCommBytes()),
              apnn->costs.user_seconds * 1e3, apnn->costs.lsp_seconds * 1e3);

  // --- answer quality: APNN is approximate ---
  auto exact = KnnQuery(lsp.tree(), driver, k);
  double ppgnn_err = 0, apnn_err = 0;
  for (int i = 0; i < k; ++i) {
    ppgnn_err += Distance(driver, ppgnn->pois[i]) - exact[i].cost;
    apnn_err += Distance(driver, apnn->pois[i]) - exact[i].cost;
  }
  std::printf("\nAnswer quality (summed distance overhead vs exact kNN):\n");
  std::printf("  PPGNN: %.6f   (exact: retrieves the true kNN)\n", ppgnn_err);
  std::printf("  APNN:  %.6f   (kNN of the cell center, not of you)\n",
              apnn_err);

  std::printf("\nNearest stations via PPGNN:\n");
  for (int i = 0; i < k && i < static_cast<int>(ppgnn->pois.size()); ++i) {
    std::printf("  #%d (%.4f, %.4f)  %.4f away\n", i + 1, ppgnn->pois[i].x,
                ppgnn->pois[i].y, Distance(driver, ppgnn->pois[i]));
  }
  return 0;
}
