// Privacy-preserving meeting location determination (PPMLD) via the
// paper's black-box portability claim (Sections 1 and 9).
//
//   ./ppmld
//
// Five colleagues each propose a preferred meeting venue. Nobody — not
// the coordination server, not the other colleagues — should learn who
// proposed what; yet everyone should learn the fairest venue (the
// proposal minimizing total distance to all proposals). We simply swap
// the kGNN engine for a plain MLD ranking and rerun the PPGNN protocol
// unchanged.

#include <cstdio>

#include "ppgnn.h"
#include "spatial/mld.h"

int main() {
  using namespace ppgnn;

  // The "LSP" here is just a coordination server; it owns no POIs.
  LspDatabase server({});
  server.SetSolver(std::make_unique<MeetingLocationSolver>());

  // Each colleague's preferred venue (normalized city coordinates).
  std::vector<Point> proposals = {
      {0.82, 0.10},  // near the airport
      {0.45, 0.52},  // downtown
      {0.50, 0.47},  // also downtown
      {0.48, 0.55},  // downtown again
      {0.12, 0.91},  // the suburb office
  };

  ProtocolParams params;
  params.n = static_cast<int>(proposals.size());
  params.d = 6;     // each proposal hides among 6 decoy venues
  params.delta = 18;
  params.k = 2;     // top-2 fairest proposals
  params.key_bits = 512;
  params.theta0 = 0.05;

  Rng rng(7);
  auto outcome = RunQuery(Variant::kPpgnnOpt, params, proposals, server, rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "PPMLD failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Fairest meeting venues (rank, location, total distance):\n");
  for (size_t i = 0; i < outcome->pois.size(); ++i) {
    std::printf("  #%zu (%.3f, %.3f)  F=%.4f\n", i + 1, outcome->pois[i].x,
                outcome->pois[i].y,
                AggregateCost(AggregateKind::kSum, outcome->pois[i],
                              proposals));
  }
  std::printf("\nCosts: %s\n", outcome->costs.ToString().c_str());

  // Show the winner is truly optimal among the proposals.
  MeetingLocationSolver reference;
  auto ranked = reference.Query(proposals, params.k, AggregateKind::kSum);
  std::printf("\nPlaintext MLD agrees: winner is proposal #%u at "
              "(%.3f, %.3f).\n",
              ranked[0].poi.id, ranked[0].poi.location.x,
              ranked[0].poi.location.y);
  std::printf(
      "The server never saw the real proposals (hidden among %d decoys\n"
      "each, %llu candidate panels), and the answer was sanitized so no\n"
      "%d-way collusion can pin down the last colleague's proposal.\n",
      params.d, static_cast<unsigned long long>(outcome->info.delta_prime),
      params.n - 1);
  return 0;
}
