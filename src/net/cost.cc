#include "net/cost.h"

#include <ctime>
#include <sstream>

namespace ppgnn {

CostReport& CostReport::operator+=(const CostReport& o) {
  bytes_user_to_lsp += o.bytes_user_to_lsp;
  bytes_lsp_to_user += o.bytes_lsp_to_user;
  bytes_user_to_user += o.bytes_user_to_user;
  framed_bytes_user_to_lsp += o.framed_bytes_user_to_lsp;
  framed_bytes_lsp_to_user += o.framed_bytes_lsp_to_user;
  user_seconds += o.user_seconds;
  lsp_seconds += o.lsp_seconds;
  return *this;
}

CostReport CostReport::DividedBy(double runs) const {
  CostReport out;
  out.bytes_user_to_lsp = static_cast<uint64_t>(bytes_user_to_lsp / runs);
  out.bytes_lsp_to_user = static_cast<uint64_t>(bytes_lsp_to_user / runs);
  out.bytes_user_to_user = static_cast<uint64_t>(bytes_user_to_user / runs);
  out.framed_bytes_user_to_lsp =
      static_cast<uint64_t>(framed_bytes_user_to_lsp / runs);
  out.framed_bytes_lsp_to_user =
      static_cast<uint64_t>(framed_bytes_lsp_to_user / runs);
  out.user_seconds = user_seconds / runs;
  out.lsp_seconds = lsp_seconds / runs;
  return out;
}

std::string CostReport::ToString() const {
  std::ostringstream os;
  os << "comm=" << TotalCommBytes() << "B (u->lsp " << bytes_user_to_lsp
     << ", lsp->u " << bytes_lsp_to_user << ", u<->u " << bytes_user_to_user
     << ")";
  if (TotalFramedBytes() > 0) {
    os << " framed=" << TotalFramedBytes() << "B (u->lsp "
       << framed_bytes_user_to_lsp << ", lsp->u " << framed_bytes_lsp_to_user
       << ")";
  }
  os << " user=" << user_seconds * 1e3 << "ms lsp=" << lsp_seconds * 1e3
     << "ms";
  return os.str();
}

void CostTracker::RecordSend(Link link, uint64_t bytes) {
  switch (link) {
    case Link::kUserToLsp:
      report_.bytes_user_to_lsp += bytes;
      break;
    case Link::kLspToUser:
      report_.bytes_lsp_to_user += bytes;
      break;
    case Link::kUserToUser:
      report_.bytes_user_to_user += bytes;
      break;
  }
}

void CostTracker::RecordFramedSend(Link link, uint64_t bytes,
                                   uint64_t framed_bytes) {
  RecordSend(link, bytes);
  switch (link) {
    case Link::kUserToLsp:
      report_.framed_bytes_user_to_lsp += framed_bytes;
      break;
    case Link::kLspToUser:
      report_.framed_bytes_lsp_to_user += framed_bytes;
      break;
    case Link::kUserToUser:
      // No socket carries the intra-group hop today; if one ever does,
      // fold its framing into the u->lsp column rather than drop it.
      report_.framed_bytes_user_to_lsp += framed_bytes;
      break;
  }
}

void CostTracker::RecordCompute(Party party, double seconds) {
  if (party == Party::kUser) {
    report_.user_seconds += seconds;
  } else {
    report_.lsp_seconds += seconds;
  }
}

double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

ScopedTimer::ScopedTimer(CostTracker* tracker, Party party)
    : tracker_(tracker), party_(party), start_(ThreadCpuSeconds()) {}

ScopedTimer::~ScopedTimer() {
  if (tracker_ != nullptr) {
    tracker_->RecordCompute(party_, ThreadCpuSeconds() - start_);
  }
}

}  // namespace ppgnn
