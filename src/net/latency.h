// Lock-free latency histogram for the serving path.
//
// LspService records one sample per request (admission to reply) from
// many worker threads at once, so the histogram is an array of relaxed
// atomic counters: recording is wait-free and the summary is a racy-but-
// consistent-enough snapshot, which is all an operational p99 needs.
//
// Buckets are log-linear over nanoseconds (HdrHistogram-style): values
// below 16 ns get exact buckets, above that each power-of-two octave is
// split into 8 linear sub-buckets, giving a worst-case quantile error of
// ~6% across the full uint64 range with a fixed 500-ish bucket table.

#ifndef PPGNN_NET_LATENCY_H_
#define PPGNN_NET_LATENCY_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ppgnn {

/// Plain-value summary of a LatencyHistogram at one point in time.
struct LatencySummary {
  uint64_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;

  std::string ToString() const;
};

class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Thread-safe; negative samples clamp to zero.
  void Record(double seconds);

  /// Approximate quantile (upper bucket bound) in seconds; 0 when empty.
  double Quantile(double q) const;

  LatencySummary Summarize() const;

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  // 16 exact buckets + 8 sub-buckets for each octave 2^4 .. 2^63.
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 8
  static constexpr int kFirstOctave = 4;             // values >= 16 ns
  static constexpr int kBuckets =
      (1 << kFirstOctave) + (64 - kFirstOctave) * kSubBuckets;

  static int BucketOf(uint64_t ns);
  /// Inclusive upper bound (in ns) of the values mapped to `bucket`.
  static uint64_t BucketUpperNs(int bucket);

  // Monotonic stats cells; Summarize() tolerates torn cross-counter
  // snapshots by construction, so relaxed ordering is sanctioned.
  // ppgnn: stat_counter(buckets_, count_, total_ns_, max_ns_)
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

}  // namespace ppgnn

#endif  // PPGNN_NET_LATENCY_H_
