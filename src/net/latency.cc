#include "net/latency.h"

#include <bit>
#include <cstdio>

namespace ppgnn {

int LatencyHistogram::BucketOf(uint64_t ns) {
  if (ns < (1u << kFirstOctave)) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);  // floor(log2(ns)) >= 4
  const int sub =
      static_cast<int>((ns >> (msb - kSubBits)) & (kSubBuckets - 1));
  return (1 << kFirstOctave) + (msb - kFirstOctave) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperNs(int bucket) {
  if (bucket < (1 << kFirstOctave)) return static_cast<uint64_t>(bucket);
  const int rel = bucket - (1 << kFirstOctave);
  const int msb = kFirstOctave + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  const uint64_t base = uint64_t{1} << msb;
  const uint64_t step = base >> kSubBits;
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  const uint64_t ns = static_cast<uint64_t>(seconds * 1e9);
  buckets_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n));
  if (target < 1) target = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) return static_cast<double>(BucketUpperNs(b)) * 1e-9;
  }
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

LatencySummary LatencyHistogram::Summarize() const {
  LatencySummary out;
  out.count = count_.load(std::memory_order_relaxed);
  if (out.count == 0) return out;
  out.mean_seconds = static_cast<double>(
                         total_ns_.load(std::memory_order_relaxed)) *
                     1e-9 / static_cast<double>(out.count);
  out.p50_seconds = Quantile(0.50);
  out.p90_seconds = Quantile(0.90);
  out.p99_seconds = Quantile(0.99);
  out.max_seconds =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

std::string LatencySummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms "
                "max=%.3fms",
                static_cast<unsigned long long>(count), mean_seconds * 1e3,
                p50_seconds * 1e3, p90_seconds * 1e3, p99_seconds * 1e3,
                max_seconds * 1e3);
  return buf;
}

}  // namespace ppgnn
