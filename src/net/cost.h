// Cost accounting for the simulated protocol runs.
//
// The paper reports three metrics per query (Section 8.1):
//   * total communication cost — bytes moved between the user group and
//     LSP plus bytes moved within the user group;
//   * user cost — the summed computation time of all users (the
//     coordinator included);
//   * LSP cost — computation time spent by LSP.
//
// CostTracker accumulates these. Parties record communication via
// RecordSend and wrap computation in ScopedTimer blocks. Timing uses the
// thread CPU clock so co-scheduled benchmarks don't pollute each other.

#ifndef PPGNN_NET_COST_H_
#define PPGNN_NET_COST_H_

#include <cstdint>
#include <string>

namespace ppgnn {

/// Logical direction of a message, for the communication breakdown.
enum class Link {
  kUserToLsp,
  kLspToUser,
  kUserToUser,
};

/// Which party is burning CPU.
enum class Party {
  kUser,
  kLsp,
};

struct CostReport {
  uint64_t bytes_user_to_lsp = 0;
  uint64_t bytes_lsp_to_user = 0;
  uint64_t bytes_user_to_user = 0;
  /// Actual on-the-socket byte counts (transport header included) for
  /// traffic that crossed a real link. Zero for purely in-process runs —
  /// the logical fields above are then the whole story. Framed >= the
  /// logical bytes of the same sends, by construction.
  uint64_t framed_bytes_user_to_lsp = 0;
  uint64_t framed_bytes_lsp_to_user = 0;
  double user_seconds = 0.0;
  double lsp_seconds = 0.0;

  uint64_t TotalCommBytes() const {
    return bytes_user_to_lsp + bytes_lsp_to_user + bytes_user_to_user;
  }
  uint64_t TotalFramedBytes() const {
    return framed_bytes_user_to_lsp + framed_bytes_lsp_to_user;
  }

  CostReport& operator+=(const CostReport& o);
  /// Pointwise division by a query count, for averaging.
  CostReport DividedBy(double runs) const;

  std::string ToString() const;
};

class CostTracker {
 public:
  void RecordSend(Link link, uint64_t bytes);
  /// A send that crossed a real socket: `bytes` is the logical payload
  /// (recorded exactly like RecordSend), `framed_bytes` what the wire
  /// actually carried — payload plus transport framing. Keeps the
  /// paper's Section 8.1 communication metric honest about overhead.
  void RecordFramedSend(Link link, uint64_t bytes, uint64_t framed_bytes);
  void RecordCompute(Party party, double seconds);

  const CostReport& report() const { return report_; }
  void Reset() { report_ = CostReport(); }

 private:
  CostReport report_;
};

/// RAII timer charging elapsed thread-CPU time to a party on destruction.
class ScopedTimer {
 public:
  ScopedTimer(CostTracker* tracker, Party party);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CostTracker* tracker_;
  Party party_;
  double start_;
};

/// Current thread CPU time in seconds (monotonic within a thread).
double ThreadCpuSeconds();

}  // namespace ppgnn

#endif  // PPGNN_NET_COST_H_
