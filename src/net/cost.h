// Cost accounting for the simulated protocol runs.
//
// The paper reports three metrics per query (Section 8.1):
//   * total communication cost — bytes moved between the user group and
//     LSP plus bytes moved within the user group;
//   * user cost — the summed computation time of all users (the
//     coordinator included);
//   * LSP cost — computation time spent by LSP.
//
// CostTracker accumulates these. Parties record communication via
// RecordSend and wrap computation in ScopedTimer blocks. Timing uses the
// thread CPU clock so co-scheduled benchmarks don't pollute each other.

#ifndef PPGNN_NET_COST_H_
#define PPGNN_NET_COST_H_

#include <cstdint>
#include <string>

namespace ppgnn {

/// Logical direction of a message, for the communication breakdown.
enum class Link {
  kUserToLsp,
  kLspToUser,
  kUserToUser,
};

/// Which party is burning CPU.
enum class Party {
  kUser,
  kLsp,
};

struct CostReport {
  uint64_t bytes_user_to_lsp = 0;
  uint64_t bytes_lsp_to_user = 0;
  uint64_t bytes_user_to_user = 0;
  double user_seconds = 0.0;
  double lsp_seconds = 0.0;

  uint64_t TotalCommBytes() const {
    return bytes_user_to_lsp + bytes_lsp_to_user + bytes_user_to_user;
  }

  CostReport& operator+=(const CostReport& o);
  /// Pointwise division by a query count, for averaging.
  CostReport DividedBy(double runs) const;

  std::string ToString() const;
};

class CostTracker {
 public:
  void RecordSend(Link link, uint64_t bytes);
  void RecordCompute(Party party, double seconds);

  const CostReport& report() const { return report_; }
  void Reset() { report_ = CostReport(); }

 private:
  CostReport report_;
};

/// RAII timer charging elapsed thread-CPU time to a party on destruction.
class ScopedTimer {
 public:
  ScopedTimer(CostTracker* tracker, Party party);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CostTracker* tracker_;
  Party party_;
  double start_;
};

/// Current thread CPU time in seconds (monotonic within a thread).
double ThreadCpuSeconds();

}  // namespace ppgnn

#endif  // PPGNN_NET_COST_H_
