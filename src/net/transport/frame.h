// Transport framing for the TCP shard/replica hop.
//
// A TCP stream has no message boundaries, so every payload — a request
// envelope on the way in, raw ResponseFrame bytes on the way back — is
// wrapped in a fixed 10-byte header:
//
//   offset  size  field
//   0       4     magic "PGNT" (0x50 0x47 0x4e 0x54)
//   4       1     version (currently 1)
//   5       1     type (1 = request, 2 = response)
//   6       4     payload length, u32 little-endian
//   10      len   payload bytes
//
// The reader is deliberately hostile-input-first:
//   * Desync tolerance: bytes before a magic match are skipped (and
//     counted — resynced_bytes()), so a half-delivered previous frame
//     or injected garbage costs one frame, not the connection. A magic
//     match followed by a bad version/type is treated as a coincidental
//     match: skip one byte and rescan.
//   * Oversized-length ceiling: a length field above
//     kMaxTransportPayloadBytes is fatal (kFatal) — buffering it would
//     let one corrupt header pin 4 GiB, and "skip it" would mean
//     trusting the very field that failed validation. The connection
//     dies; the link redials.
//   * Incremental: Feed() any fragmentation the kernel hands you;
//     Poll() yields complete frames in order.
//
// The response payload is the ResponseFrame encoding *verbatim* — the
// transport adds the 10 header bytes and nothing else, which is what
// makes byte-identity with the in-process service provable.

#ifndef PPGNN_NET_TRANSPORT_FRAME_H_
#define PPGNN_NET_TRANSPORT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppgnn {

inline constexpr uint8_t kTransportMagic[4] = {0x50, 0x47, 0x4e, 0x54};
inline constexpr uint8_t kTransportVersion = 1;
inline constexpr size_t kTransportHeaderBytes = 10;
/// Hard ceiling on one frame's payload (64 MiB). Generously above any
/// real ShardQuery/ShardAnswer; a header claiming more is corruption.
inline constexpr uint32_t kMaxTransportPayloadBytes = 64u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct TransportFrame {
  FrameType type = FrameType::kRequest;
  std::vector<uint8_t> payload;
};

/// Header + payload, ready for the socket.
std::vector<uint8_t> EncodeTransportFrame(FrameType type,
                                          const std::vector<uint8_t>& payload);

/// Bytes `payload_bytes` costs on the wire once framed — the number the
/// CostTracker's framed-bytes column records.
inline uint64_t FramedWireSize(uint64_t payload_bytes) {
  return payload_bytes + kTransportHeaderBytes;
}

/// Incremental, socket-free frame parser (tests drive it byte by byte).
class FrameReader {
 public:
  enum class PollResult {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out was filled with the next frame
    kFatal,     ///< unrecoverable (oversized length); close the connection
  };

  /// Appends raw stream bytes.
  void Feed(const uint8_t* data, size_t n);

  /// Extracts the next complete frame, resyncing past garbage.
  PollResult Poll(TransportFrame* out);

  /// Garbage bytes skipped while hunting for a frame boundary.
  uint64_t resynced_bytes() const { return resynced_; }
  /// Bytes buffered but not yet yielded as a frame — nonzero means the
  /// peer is mid-frame (the server's slow-loris guard keys off this).
  size_t buffered() const { return buf_.size(); }
  /// Set when Poll returned kFatal.
  const std::string& fatal_reason() const { return fatal_reason_; }

 private:
  std::deque<uint8_t> buf_;
  uint64_t resynced_ = 0;
  bool fatal_ = false;
  std::string fatal_reason_;
};

/// The request envelope a TcpLink sends: everything a ServiceRequest
/// carries, flattened for the wire. The response direction needs no
/// envelope — it is raw ResponseFrame bytes.
struct TransportRequest {
  std::vector<uint8_t> query;
  std::vector<std::vector<uint8_t>> uploads;
  uint64_t deadline_ms = 0;  ///< remaining budget; 0 = none
  uint64_t idempotency_key = 0;
  uint32_t degraded_users = 0;

  std::vector<uint8_t> Encode() const;
  [[nodiscard]] static Result<TransportRequest> Decode(
      const std::vector<uint8_t>& bytes);
};

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_FRAME_H_
