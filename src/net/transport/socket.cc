#include "net/transport/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace ppgnn {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

/// Remaining budget in milliseconds for poll(2), floored at 0 so an
/// expired deadline still gets one non-blocking readiness check.
int PollTimeoutMs(SocketClock::time_point deadline) {
  const auto remaining = deadline - SocketClock::now();
  if (remaining <= SocketClock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
  // +1 rounds sub-millisecond remainders up; never spin at timeout 0
  // while budget remains.
  return static_cast<int>(std::min<int64_t>(ms + 1, 60'000));
}

/// Polls `fd` for `events` until ready or `deadline`. kDeadlineExceeded
/// on timeout; POLLERR/POLLHUP count as ready (the subsequent
/// read/write surfaces the real error).
Status PollUntil(int fd, short events, SocketClock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout_ms = PollTimeoutMs(deadline);
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      if (SocketClock::now() >= deadline) {
        return Status::DeadlineExceeded("socket deadline exceeded");
      }
      continue;  // sub-ms remainder; poll again
    }
    if (errno == EINTR) continue;
    return Status::Internal(Errno("poll"));
  }
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> TcpListen(uint16_t port, int backlog) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::Internal(Errno("bind"));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::Internal(Errno("listen"));
  }
  PPGNN_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> ListenPort(int listen_fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<OwnedFd> TcpAccept(int listen_fd, double timeout_seconds) {
  const auto deadline =
      SocketClock::now() + std::chrono::duration_cast<SocketClock::duration>(
                               std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    PPGNN_RETURN_IF_ERROR(PollUntil(listen_fd, POLLIN, deadline));
    OwnedFd conn(::accept(listen_fd, nullptr, nullptr));
    if (conn.valid()) {
      PPGNN_RETURN_IF_ERROR(SetNonBlocking(conn.get()));
      const int one = 1;
      (void)::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // raced another accepter or the peer gave up; re-poll
    }
    return Status::Internal(Errno("accept"));
  }
}

Result<OwnedFd> TcpConnect(const std::string& host, uint16_t port,
                           double timeout_seconds) {
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  PPGNN_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto deadline =
      SocketClock::now() + std::chrono::duration_cast<SocketClock::duration>(
                               std::chrono::duration<double>(timeout_seconds));
  const int rc = ::connect(
      fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc < 0) {
    if (errno != EINPROGRESS) return Status::Internal(Errno("connect"));
    PPGNN_RETURN_IF_ERROR(PollUntil(fd.get(), POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Status::Internal(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return Status::Internal(std::string("connect: ") + strerror(err));
    }
  }
  return fd;
}

Status SendAll(int fd, const uint8_t* data, size_t n,
               SocketClock::time_point deadline) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      PPGNN_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, deadline));
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::ProtocolError(Errno("send: peer gone"));
    }
    return Status::Internal(Errno("send"));
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, uint8_t* buf, size_t n,
                        SocketClock::time_point deadline) {
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, n, 0);
    if (rc > 0) return static_cast<size_t>(rc);
    if (rc == 0) return static_cast<size_t>(0);  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      PPGNN_RETURN_IF_ERROR(PollUntil(fd, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::ProtocolError(Errno("recv: connection reset"));
    }
    return Status::Internal(Errno("recv"));
  }
}

}  // namespace ppgnn
