#include "net/transport/frame.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"

namespace ppgnn {

std::vector<uint8_t> EncodeTransportFrame(FrameType type,
                                          const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out(kTransportHeaderBytes + payload.size());
  std::memcpy(out.data(), kTransportMagic, 4);
  out[4] = kTransportVersion;
  out[5] = static_cast<uint8_t>(type);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out[6] = static_cast<uint8_t>(len & 0xff);
  out[7] = static_cast<uint8_t>((len >> 8) & 0xff);
  out[8] = static_cast<uint8_t>((len >> 16) & 0xff);
  out[9] = static_cast<uint8_t>((len >> 24) & 0xff);
  if (!payload.empty()) {
    std::memcpy(out.data() + kTransportHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

void FrameReader::Feed(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

FrameReader::PollResult FrameReader::Poll(TransportFrame* out) {
  if (fatal_) return PollResult::kFatal;
  for (;;) {
    // Hunt for the magic, discarding (and counting) anything before it.
    while (!buf_.empty() && buf_.front() != kTransportMagic[0]) {
      buf_.pop_front();
      ++resynced_;
    }
    if (buf_.size() < kTransportHeaderBytes) return PollResult::kNeedMore;

    uint8_t header[kTransportHeaderBytes];
    std::copy_n(buf_.begin(), kTransportHeaderBytes, header);
    const bool magic_ok = std::memcmp(header, kTransportMagic, 4) == 0;
    const uint8_t version = header[4];
    const uint8_t type = header[5];
    const bool type_ok = type == static_cast<uint8_t>(FrameType::kRequest) ||
                         type == static_cast<uint8_t>(FrameType::kResponse);
    if (!magic_ok || version != kTransportVersion || !type_ok) {
      // Coincidental first byte (or a bad version/type after real magic):
      // shift one byte and rescan rather than discarding a whole window.
      buf_.pop_front();
      ++resynced_;
      continue;
    }

    const uint32_t len = static_cast<uint32_t>(header[6]) |
                         (static_cast<uint32_t>(header[7]) << 8) |
                         (static_cast<uint32_t>(header[8]) << 16) |
                         (static_cast<uint32_t>(header[9]) << 24);
    if (len > kMaxTransportPayloadBytes) {
      fatal_ = true;
      fatal_reason_ = "frame length " + std::to_string(len) +
                      " exceeds ceiling " +
                      std::to_string(kMaxTransportPayloadBytes);
      return PollResult::kFatal;
    }
    if (buf_.size() < kTransportHeaderBytes + len) return PollResult::kNeedMore;

    out->type = static_cast<FrameType>(type);
    out->payload.assign(buf_.begin() + kTransportHeaderBytes,
                        buf_.begin() + kTransportHeaderBytes + len);
    buf_.erase(buf_.begin(), buf_.begin() + kTransportHeaderBytes + len);
    return PollResult::kFrame;
  }
}

std::vector<uint8_t> TransportRequest::Encode() const {
  ByteWriter w;
  w.PutVarint(uploads.size());
  for (const auto& upload : uploads) w.PutBytes(upload);
  w.PutBytes(query);
  w.PutVarint(deadline_ms);
  w.PutU64(idempotency_key);
  w.PutVarint(degraded_users);
  return w.Release();
}

Result<TransportRequest> TransportRequest::Decode(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  TransportRequest req;
  PPGNN_ASSIGN_OR_RETURN(uint64_t n_uploads, r.GetVarint());
  if (n_uploads > bytes.size()) {
    return Status::InvalidArgument("upload count exceeds envelope size");
  }
  req.uploads.reserve(n_uploads);
  for (uint64_t i = 0; i < n_uploads; ++i) {
    PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> upload, r.GetBytes());
    req.uploads.push_back(std::move(upload));
  }
  PPGNN_ASSIGN_OR_RETURN(req.query, r.GetBytes());
  PPGNN_ASSIGN_OR_RETURN(req.deadline_ms, r.GetVarint());
  PPGNN_ASSIGN_OR_RETURN(req.idempotency_key, r.GetU64());
  PPGNN_ASSIGN_OR_RETURN(uint64_t degraded, r.GetVarint());
  req.degraded_users = static_cast<uint32_t>(degraded);
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request envelope");
  }
  return req;
}

}  // namespace ppgnn
