// TcpShardServer: the listening side of the shard/replica hop.
//
// Wraps one LspService behind a loopback TCP listener: an accept loop
// hands each connection to its own reader thread, which parses
// transport frames (net/transport/frame.h), decodes the request
// envelope, runs the service's full admission/queue/deadline pipeline
// via the blocking Call(), and writes the reply ResponseFrame back
// verbatim inside a response frame. One connection serves one request
// at a time — concurrency is connections, which is exactly how the
// client side (TcpLink's per-request pooled connections) drives it.
//
// Failure containment, per connection:
//   * Envelope that fails to decode -> a structured kMalformed
//     ResponseFrame reply (the peer learns *why*; the connection
//     survives — it was a well-framed bad request, not desync).
//   * Framing resync (garbage before magic) -> counted, tolerated.
//   * Fatal framing (oversized length) / send failure / peer EOF or
//     reset / mid-frame stall past read_timeout -> the connection is
//     closed. The client redials; nobody else is affected.
//
// Shutdown(drain) reuses LspService::Shutdown's bounded drain — queued
// requests are answered (or flushed with kShuttingDown) and every
// reply still goes out on its socket — then severs remaining
// connections and joins all threads.

#ifndef PPGNN_NET_TRANSPORT_TCP_SERVER_H_
#define PPGNN_NET_TRANSPORT_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport/socket.h"
#include "service/lsp_service.h"

namespace ppgnn {

struct TcpServerConfig {
  /// 0 = kernel-assigned ephemeral port; read it back with port().
  uint16_t port = 0;
  /// How often blocked accept/read waits re-check the stop flag.
  double tick_seconds = 0.05;
  /// A peer that goes silent *mid-frame* for longer than this is cut
  /// (slow-loris guard). Idle connections with no partial frame are
  /// never timed out.
  double read_timeout_seconds = 10.0;
  /// Budget for writing one reply frame.
  double write_timeout_seconds = 5.0;
};

struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_served = 0;        ///< request frames answered
  uint64_t malformed_envelopes = 0;  ///< well-framed but undecodable
  uint64_t fatal_framing = 0;        ///< connections killed by kFatal
  uint64_t stalled_connections = 0;  ///< cut by the mid-frame stall guard
  uint64_t resynced_bytes = 0;       ///< garbage skipped before magic
  uint64_t send_failures = 0;

  std::string ToString() const;
};

class TcpShardServer {
 public:
  /// The service must outlive the server. Shutdown(drain) drains it.
  TcpShardServer(LspService& service, TcpServerConfig config);
  ~TcpShardServer();

  TcpShardServer(const TcpShardServer&) = delete;
  TcpShardServer& operator=(const TcpShardServer&) = delete;

  /// Binds, listens, and starts the accept loop. Call once.
  [[nodiscard]] Status Start();

  /// The bound port (valid after Start; resolves config.port == 0).
  uint16_t port() const { return port_; }

  TcpServerStats Stats() const;

  /// Stops accepting, drains the wrapped service (bounded by
  /// `drain_deadline_seconds`, 0 = unbounded), severs remaining
  /// connections, joins all threads. Idempotent; the destructor calls it.
  void Shutdown(double drain_deadline_seconds = 0.0);

 private:
  struct Connection {
    OwnedFd fd;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Decodes and answers one request frame. False = stop serving this
  /// connection (send failed).
  bool HandleRequestFrame(Connection* conn,
                          const std::vector<uint8_t>& payload);

  LspService& service_;
  const TcpServerConfig config_;
  OwnedFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  // ppgnn: guarded_by(conns_, mu_)
  std::vector<std::unique_ptr<Connection>> conns_;
  // ppgnn: guarded_by(shut_down_, mu_)
  bool shut_down_ = false;

  // ppgnn: stat_counter(connections_accepted_, connections_closed_)
  // ppgnn: stat_counter(frames_served_, malformed_envelopes_)
  // ppgnn: stat_counter(fatal_framing_, stalled_connections_)
  // ppgnn: stat_counter(resynced_bytes_, send_failures_)
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> malformed_envelopes_{0};
  std::atomic<uint64_t> fatal_framing_{0};
  std::atomic<uint64_t> stalled_connections_{0};
  std::atomic<uint64_t> resynced_bytes_{0};
  std::atomic<uint64_t> send_failures_{0};
};

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_TCP_SERVER_H_
