// Thin POSIX socket helpers with poll-based deadlines.
//
// Everything here is blocking-with-a-deadline: the fd is non-blocking
// under the hood and every wait goes through poll(2) against an
// absolute steady_clock deadline, so a stalled peer costs exactly the
// budget the caller granted — never a hung thread. Writes use
// MSG_NOSIGNAL so a peer that vanished mid-write surfaces as EPIPE (a
// Status) instead of killing the process with SIGPIPE.
//
// Loopback-oriented by design: hosts are numeric IPv4 strings (the
// shard fleet this transport serves addresses replicas by address, not
// name), which keeps DNS — a blocking call with no deadline — out of
// the dial path.

#ifndef PPGNN_NET_TRANSPORT_SOCKET_H_
#define PPGNN_NET_TRANSPORT_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ppgnn {

/// RAII file descriptor. Move-only; closes on destruction.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

using SocketClock = std::chrono::steady_clock;

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port; read it back with ListenPort). SO_REUSEADDR set.
Result<OwnedFd> TcpListen(uint16_t port, int backlog = 64);

/// The local port a listening fd is bound to.
Result<uint16_t> ListenPort(int listen_fd);

/// Accepts one connection, waiting at most `timeout_seconds`.
/// kDeadlineExceeded when nothing arrived in time.
Result<OwnedFd> TcpAccept(int listen_fd, double timeout_seconds);

/// Connects to a numeric IPv4 host:port within `timeout_seconds`
/// (non-blocking connect + poll). The returned fd stays non-blocking.
Result<OwnedFd> TcpConnect(const std::string& host, uint16_t port,
                           double timeout_seconds);

/// Writes all `n` bytes before `deadline`. MSG_NOSIGNAL; EPIPE and
/// timeouts come back as Status (kProtocolError / kDeadlineExceeded).
Status SendAll(int fd, const uint8_t* data, size_t n,
               SocketClock::time_point deadline);

/// Reads up to `n` bytes before `deadline`. Returns the count read;
/// 0 means orderly EOF. kDeadlineExceeded when nothing arrived in time.
Result<size_t> RecvSome(int fd, uint8_t* buf, size_t n,
                        SocketClock::time_point deadline);

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_SOCKET_H_
