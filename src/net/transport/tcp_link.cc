#include "net/transport/tcp_link.h"

#include <sys/socket.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/wire.h"
#include "net/transport/frame.h"

namespace ppgnn {

namespace {

/// Grace past the request's own deadline for the server's structured
/// kDeadlineExceeded reply to arrive before we cut the exchange.
constexpr double kDeadlineGraceSeconds = 0.25;

SocketClock::time_point DeadlineAfter(double seconds) {
  return SocketClock::now() + std::chrono::duration_cast<SocketClock::duration>(
                                  std::chrono::duration<double>(seconds));
}

}  // namespace

std::string TcpLinkStats::ToString() const {
  std::ostringstream os;
  os << "tcp_link: submitted=" << submitted << " answered=" << answered
     << " dials=" << dials << " dial_failures=" << dial_failures
     << " fast_fails=" << fast_fails << " io_errors=" << io_errors
     << " io_timeouts=" << io_timeouts << " pooled_reuses=" << pooled_reuses;
  return os.str();
}

TcpLink::TcpLink(TcpLinkConfig config)
    // ppgnn-lint: allow(guarded-by): constructor has exclusive access
    : config_(std::move(config)), rng_(config_.seed) {}

TcpLink::~TcpLink() { Close(); }

bool TcpLink::Submit(ServiceRequest request, Callback done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ReapFinishedWorkers();

  auto finished = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!closed_) {
      workers_.emplace_back();
      Worker& w = workers_.back();
      w.finished = finished;
      w.thread = std::thread([this, finished, request = std::move(request),
                              done = std::move(done)]() mutable {
        RunExchange(std::move(request), std::move(done));
        finished->store(true, std::memory_order_release);
      });
      return true;
    }
  }
  // Inline structured reject (outside the lock), mirroring LspService's
  // Submit contract.
  done(SynthesizeError(WireError::kShuttingDown, "tcp link closed", 0));
  return false;
}

Status TcpLink::Probe(double timeout_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("tcp link closed");
    if (!idle_.empty()) return Status::OK();  // a live pooled connection
  }
  dials_.fetch_add(1, std::memory_order_relaxed);
  Result<OwnedFd> dialed =
      TcpConnect(config_.host, config_.port, timeout_seconds);
  if (!dialed.ok()) {
    dial_failures_.fetch_add(1, std::memory_order_relaxed);
    (void)OnDialFailure();
    NotifyConnectivity(false);
    return dialed.status();
  }
  ReturnConnection(std::move(dialed).value());
  OnExchangeSuccess();
  NotifyConnectivity(true);
  return Status::OK();
}

void TcpLink::RunExchange(ServiceRequest request, Callback done) {
  OwnedFd conn = CheckoutConnection();
  bool reused = conn.valid();
  if (reused) {
    pooled_reuses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const uint64_t gate_ms = DialGateRemainingMs();
    if (gate_ms > 0) {
      fast_fails_.fetch_add(1, std::memory_order_relaxed);
      done(SynthesizeError(WireError::kOverloaded,
                           "dial backoff gate closed", gate_ms));
      return;
    }
    dials_.fetch_add(1, std::memory_order_relaxed);
    Result<OwnedFd> dialed = TcpConnect(config_.host, config_.port,
                                        config_.connect_timeout_seconds);
    if (!dialed.ok()) {
      dial_failures_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t backoff_ms = OnDialFailure();
      NotifyConnectivity(false);
      done(SynthesizeError(WireError::kOverloaded,
                           "dial failed: " + dialed.status().message(),
                           backoff_ms));
      return;
    }
    conn = std::move(dialed).value();
  }
  RegisterActive(conn.get());

  // Encode the envelope and push it out.
  TransportRequest env;
  env.query = std::move(request.query);
  env.uploads = std::move(request.uploads);
  env.deadline_ms = request.deadline_seconds > 0.0
                        ? static_cast<uint64_t>(
                              std::llround(request.deadline_seconds * 1000.0))
                        : 0;
  env.idempotency_key = request.idempotency_key;
  env.degraded_users = request.degraded_users;
  const std::vector<uint8_t> payload = env.Encode();
  const std::vector<uint8_t> framed =
      EncodeTransportFrame(FrameType::kRequest, payload);

  const double exchange_budget =
      request.deadline_seconds > 0.0
          ? request.deadline_seconds + kDeadlineGraceSeconds
          : config_.io_timeout_seconds;
  const auto deadline = DeadlineAfter(exchange_budget);

  auto fail = [&](WireError code, const std::string& detail,
                  std::atomic<uint64_t>& counter) {
    // ppgnn-lint: allow(atomics-discipline): aliases a tagged stat counter
    counter.fetch_add(1, std::memory_order_relaxed);
    UnregisterActive(conn.get());
    conn.Reset();  // a connection in an unknown state is never pooled
    NotifyConnectivity(false);
    done(SynthesizeError(code, detail, 0));
  };

  Status sent = SendAll(conn.get(), framed.data(), framed.size(), deadline);
  if (!sent.ok()) {
    if (sent.code() == StatusCode::kDeadlineExceeded) {
      fail(WireError::kDeadlineExceeded, "send timed out", io_timeouts_);
    } else {
      fail(WireError::kOverloaded, "send failed: " + sent.message(),
           io_errors_);
    }
    return;
  }
  RecordCost(Link::kUserToLsp, payload.size(), framed.size());

  // Read until one response frame (tolerating resync) or failure.
  FrameReader reader;
  std::vector<uint8_t> chunk(64 * 1024);
  for (;;) {
    TransportFrame frame;
    const auto pr = reader.Poll(&frame);
    if (pr == FrameReader::PollResult::kFatal) {
      fail(WireError::kOverloaded,
           "fatal framing: " + reader.fatal_reason(), io_errors_);
      return;
    }
    if (pr == FrameReader::PollResult::kFrame) {
      if (frame.type != FrameType::kResponse) continue;  // nonsense; skip
      RecordCost(Link::kLspToUser, frame.payload.size(),
                 FramedWireSize(frame.payload.size()));
      UnregisterActive(conn.get());
      ReturnConnection(std::move(conn));
      OnExchangeSuccess();
      NotifyConnectivity(true);
      answered_.fetch_add(1, std::memory_order_relaxed);
      // Verbatim delivery: whatever ResponseFrame the server sent is
      // what the caller decodes — including transport garbage, which
      // ResilientClient classifies itself.
      done(std::move(frame.payload));
      return;
    }
    Result<size_t> got =
        RecvSome(conn.get(), chunk.data(), chunk.size(), deadline);
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kDeadlineExceeded) {
        fail(WireError::kDeadlineExceeded, "reply timed out", io_timeouts_);
      } else {
        fail(WireError::kOverloaded, "recv failed: " + got.status().message(),
             io_errors_);
      }
      return;
    }
    if (got.value() == 0) {
      fail(WireError::kOverloaded, "peer closed mid-exchange", io_errors_);
      return;
    }
    reader.Feed(chunk.data(), got.value());
  }
}

OwnedFd TcpLink::CheckoutConnection() {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.empty()) return OwnedFd();
  OwnedFd fd = std::move(idle_.back());
  idle_.pop_back();
  return fd;
}

void TcpLink::ReturnConnection(OwnedFd fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;  // dropping closes it
  idle_.push_back(std::move(fd));
}

void TcpLink::RegisterActive(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  active_fds_.push_back(fd);
}

void TcpLink::UnregisterActive(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  active_fds_.erase(std::remove(active_fds_.begin(), active_fds_.end(), fd),
                    active_fds_.end());
}

uint64_t TcpLink::DialGateRemainingMs() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = SocketClock::now();
  if (now >= next_dial_allowed_) return 0;
  const auto remaining = next_dial_allowed_ - now;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
  return static_cast<uint64_t>(std::max<int64_t>(ms, 1));
}

uint64_t TcpLink::OnDialFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const int n = consecutive_dial_failures_++;
  double backoff = config_.reconnect_initial_backoff_seconds *
                   std::pow(config_.reconnect_backoff_multiplier, n);
  backoff = std::min(backoff, config_.reconnect_max_backoff_seconds);
  const double jitter =
      1.0 + config_.reconnect_jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  backoff *= jitter;
  next_dial_allowed_ = DeadlineAfter(backoff);
  return static_cast<uint64_t>(
      std::max<long long>(std::llround(backoff * 1000.0), 1));
}

void TcpLink::OnExchangeSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_dial_failures_ = 0;
  next_dial_allowed_ = SocketClock::time_point{};
}

void TcpLink::SetConnectivityObserver(std::function<void(bool)> observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

void TcpLink::NotifyConnectivity(bool up) {
  std::function<void(bool)> observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (link_up_ == up) return;  // edge-triggered
    link_up_ = up;
    observer = observer_;
  }
  if (observer) observer(up);
}

std::vector<uint8_t> TcpLink::SynthesizeError(WireError code,
                                              std::string detail,
                                              uint64_t retry_after_ms) {
  ErrorMessage err;
  err.code = code;
  err.detail = std::move(detail);
  err.retry_after_ms = retry_after_ms;
  return ResponseFrame::WrapError(err);
}

void TcpLink::RecordCost(Link link, uint64_t logical, uint64_t framed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.cost != nullptr) {
    config_.cost->RecordFramedSend(link, logical, framed);
  }
}

void TcpLink::ReapFinishedWorkers() {
  std::vector<Worker> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.begin();
    while (it != workers_.end()) {
      if (it->finished->load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Worker& w : done) {
    if (w.thread.joinable()) w.thread.join();
  }
}

void TcpLink::Close() {
  std::vector<Worker> workers;
  std::vector<OwnedFd> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      // Idempotent; still join anything left from a racing Submit.
    }
    closed_ = true;
    observer_ = nullptr;
    workers.swap(workers_);
    idle.swap(idle_);
    // Sever in-flight exchanges: their blocked reads wake with EOF and
    // resolve their callbacks with structured errors.
    for (int fd : active_fds_) (void)::shutdown(fd, SHUT_RDWR);
  }
  idle.clear();  // closes pooled fds
  for (Worker& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
}

TcpLinkStats TcpLink::Stats() const {
  TcpLinkStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.answered = answered_.load(std::memory_order_relaxed);
  s.dials = dials_.load(std::memory_order_relaxed);
  s.dial_failures = dial_failures_.load(std::memory_order_relaxed);
  s.fast_fails = fast_fails_.load(std::memory_order_relaxed);
  s.io_errors = io_errors_.load(std::memory_order_relaxed);
  s.io_timeouts = io_timeouts_.load(std::memory_order_relaxed);
  s.pooled_reuses = pooled_reuses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ppgnn
