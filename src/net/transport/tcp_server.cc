#include "net/transport/tcp_server.h"

#include <sys/socket.h>

#include <sstream>
#include <utility>

#include "core/wire.h"
#include "net/transport/frame.h"

namespace ppgnn {

std::string TcpServerStats::ToString() const {
  std::ostringstream os;
  os << "tcp_server: accepted=" << connections_accepted
     << " closed=" << connections_closed << " served=" << frames_served
     << " malformed=" << malformed_envelopes
     << " fatal_framing=" << fatal_framing
     << " stalled=" << stalled_connections
     << " resynced_bytes=" << resynced_bytes
     << " send_failures=" << send_failures;
  return os.str();
}

TcpShardServer::TcpShardServer(LspService& service, TcpServerConfig config)
    : service_(service), config_(config) {}

TcpShardServer::~TcpShardServer() { Shutdown(); }

Status TcpShardServer::Start() {
  PPGNN_ASSIGN_OR_RETURN(listen_fd_, TcpListen(config_.port));
  PPGNN_ASSIGN_OR_RETURN(port_, ListenPort(listen_fd_.get()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpShardServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<OwnedFd> conn_fd = TcpAccept(listen_fd_.get(), config_.tick_seconds);
    if (!conn_fd.ok()) continue;  // tick (deadline) or transient accept error
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(conn_fd).value();
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;  // raced Shutdown; drop the connection
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void TcpShardServer::ServeConnection(Connection* conn) {
  FrameReader reader;
  std::vector<uint8_t> chunk(64 * 1024);
  auto last_progress = SocketClock::now();
  const auto stall_budget = std::chrono::duration_cast<SocketClock::duration>(
      std::chrono::duration<double>(config_.read_timeout_seconds));

  while (!stop_.load(std::memory_order_acquire)) {
    TransportFrame frame;
    const auto pr = reader.Poll(&frame);
    if (pr == FrameReader::PollResult::kFatal) {
      fatal_framing_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (pr == FrameReader::PollResult::kFrame) {
      if (frame.type == FrameType::kRequest) {
        if (!HandleRequestFrame(conn, frame.payload)) break;
      }
      // A kResponse from a client is nonsense; drop it and read on.
      last_progress = SocketClock::now();
      continue;
    }

    // kNeedMore: read with a tick deadline so stop_ stays responsive.
    const auto tick = SocketClock::now() +
                      std::chrono::duration_cast<SocketClock::duration>(
                          std::chrono::duration<double>(config_.tick_seconds));
    Result<size_t> got =
        RecvSome(conn->fd.get(), chunk.data(), chunk.size(), tick);
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kDeadlineExceeded) {
        // Idle tick. Cut only a peer stalled *mid-frame* too long.
        if (reader.buffered() > 0 &&
            SocketClock::now() - last_progress > stall_budget) {
          stalled_connections_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        continue;
      }
      break;  // reset or hard error
    }
    if (got.value() == 0) break;  // orderly EOF
    reader.Feed(chunk.data(), got.value());
    last_progress = SocketClock::now();
  }

  resynced_bytes_.fetch_add(reader.resynced_bytes(),
                            std::memory_order_relaxed);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  // Half-close our side; the fd itself is reclaimed when Shutdown
  // destroys the Connection after joining this thread.
  (void)::shutdown(conn->fd.get(), SHUT_RDWR);
}

bool TcpShardServer::HandleRequestFrame(Connection* conn,
                                        const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> reply;
  Result<TransportRequest> envelope = TransportRequest::Decode(payload);
  if (!envelope.ok()) {
    malformed_envelopes_.fetch_add(1, std::memory_order_relaxed);
    ErrorMessage err;
    err.code = WireError::kMalformed;
    err.detail = "transport envelope: " + envelope.status().message();
    reply = ResponseFrame::WrapError(err);
  } else {
    TransportRequest req = std::move(envelope).value();
    ServiceRequest sr;
    sr.query = std::move(req.query);
    sr.uploads = std::move(req.uploads);
    sr.deadline_seconds = static_cast<double>(req.deadline_ms) / 1000.0;
    sr.idempotency_key = req.idempotency_key;
    sr.degraded_users = req.degraded_users;
    // Blocking: one request at a time per connection. The service's own
    // worker pool + AIMD limiter govern actual execution concurrency.
    reply = service_.Call(std::move(sr));
    frames_served_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<uint8_t> framed =
      EncodeTransportFrame(FrameType::kResponse, reply);
  const auto deadline =
      SocketClock::now() +
      std::chrono::duration_cast<SocketClock::duration>(
          std::chrono::duration<double>(config_.write_timeout_seconds));
  Status sent = SendAll(conn->fd.get(), framed.data(), framed.size(), deadline);
  if (!sent.ok()) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

TcpServerStats TcpShardServer::Stats() const {
  TcpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frames_served = frames_served_.load(std::memory_order_relaxed);
  s.malformed_envelopes = malformed_envelopes_.load(std::memory_order_relaxed);
  s.fatal_framing = fatal_framing_.load(std::memory_order_relaxed);
  s.stalled_connections =
      stalled_connections_.load(std::memory_order_relaxed);
  s.resynced_bytes = resynced_bytes_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  return s;
}

void TcpShardServer::Shutdown(double drain_deadline_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain the wrapped service first: in-flight Calls complete (or flush
  // with kShuttingDown) and their replies still go out on live sockets.
  service_.Shutdown(drain_deadline_seconds);

  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // Wake any reader blocked in poll; EOF ends its loop.
    (void)::shutdown(conn->fd.get(), SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  listen_fd_.Reset();
}

}  // namespace ppgnn
