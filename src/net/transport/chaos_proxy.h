// ChaosProxy: a deterministic in-process TCP fault injector for the
// shard/replica hop.
//
// Sits between a TcpLink and a TcpShardServer on loopback and forwards
// bytes both ways, applying a seeded schedule of socket-level faults —
// the failure surface the in-process failpoint framework cannot model:
//
//   action      effect on the connection
//   ---------   ----------------------------------------------------
//   delay       sleep `delay` seconds before forwarding each chunk
//   drop        forward `after` bytes (per direction), then close the
//               proxy legs with an orderly FIN (mid-frame truncation)
//   rst         forward `after` bytes, then close with SO_LINGER(0) so
//               the peer sees a hard RST mid-exchange
//   blackhole   forward `after` bytes, then swallow everything while
//               keeping the connection open (slow-loris / stalled peer)
//   split       forward output in `split`-byte writes with a short
//               yield between them (partial reads on the peer)
//
// Schedules compose with the failpoint spec idiom: each rule carries a
// trigger (`every=N` connections / `times=N` / `skip=N` / `p=F`) drawn
// from a seeded per-rule counter+RNG, so a given (seed, rule list,
// connection order) replays the exact same fault sequence — the chaos
// tier's two-run determinism applies to sockets too. Spec grammar
// (ParseChaosRule):
//
//   "rst after=120 every=2"      RST after 120 forwarded bytes, every
//                                2nd connection
//   "delay=0.05 times=1"         50 ms per-chunk delay, first conn only
//   "blackhole after=64 p=0.3"   seeded 30% of connections stall
//   "split=7"                    every connection writes 7-byte chunks
//   "drop after=0 skip=1"        fail every connection after the first
//
// Directionality: faults apply to both pump directions of an afflicted
// connection; `after` counts bytes per direction.

#ifndef PPGNN_NET_TRANSPORT_CHAOS_PROXY_H_
#define PPGNN_NET_TRANSPORT_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/transport/socket.h"

namespace ppgnn {

enum class ChaosAction : uint8_t {
  kDelay = 0,
  kDrop = 1,
  kRst = 2,
  kBlackhole = 3,
  kSplit = 4,
};

const char* ChaosActionToString(ChaosAction action);

struct ChaosRule {
  ChaosAction action = ChaosAction::kDelay;
  /// Per-chunk forwarding delay for kDelay, seconds.
  double delay_seconds = 0.0;
  /// Bytes forwarded (per direction) before kDrop/kRst/kBlackhole bite.
  uint64_t after_bytes = 0;
  /// Write-chunk size for kSplit (>= 1).
  uint64_t split_bytes = 1;
  /// Trigger schedule over the proxy's connection counter, evaluated in
  /// accept order exactly like failpoint schedules: first `skip`
  /// matching connections pass untouched, then at most `times` fire
  /// (0 = unlimited), gated by `every` (fire when (n - skip) % every ==
  /// 0) and by a seeded Bernoulli(p) draw.
  uint64_t skip = 0;
  uint64_t times = 0;
  uint64_t every = 1;
  double probability = 1.0;
};

/// Parses the spec grammar documented above. Examples: "rst after=120
/// every=2", "delay=0.05", "split=7 p=0.5", "blackhole after=64".
Result<ChaosRule> ParseChaosRule(const std::string& spec);

struct ChaosProxyStats {
  uint64_t connections = 0;
  uint64_t clean_connections = 0;  ///< no rule fired
  uint64_t delays = 0;
  uint64_t drops = 0;
  uint64_t rsts = 0;
  uint64_t blackholes = 0;
  uint64_t splits = 0;
  uint64_t bytes_forwarded = 0;
  uint64_t bytes_swallowed = 0;  ///< eaten by black holes

  std::string ToString() const;
};

class ChaosProxy {
 public:
  struct Config {
    /// 0 = kernel-assigned; read back with port().
    uint16_t listen_port = 0;
    std::string upstream_host = "127.0.0.1";
    uint16_t upstream_port = 0;
    double connect_timeout_seconds = 0.5;
    /// How often blocked waits re-check the stop flag.
    double tick_seconds = 0.02;
    uint64_t seed = 0xc4a05;
    std::vector<ChaosRule> rules;
  };

  explicit ChaosProxy(Config config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds, listens, and starts the accept loop. Call once.
  [[nodiscard]] Status Start();

  /// The proxy's listening port (valid after Start).
  uint16_t port() const { return port_; }

  ChaosProxyStats Stats() const;

  /// Stops accepting, severs every proxied connection, joins threads.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  /// The fault plan drawn for one connection at accept time.
  struct Plan {
    bool delay = false;
    double delay_seconds = 0.0;
    bool cut = false;  ///< drop / rst / blackhole armed
    ChaosAction cut_action = ChaosAction::kDrop;
    uint64_t cut_after_bytes = 0;
    bool split = false;
    uint64_t split_bytes = 1;
  };

  struct Session {
    /// Guards the two fds: the pump closes them (RST/drop actions) while
    /// Shutdown may concurrently want to shutdown(2) them as a wakeup.
    std::mutex fd_mu;
    // ppgnn: guarded_by(client, fd_mu)
    OwnedFd client;
    // ppgnn: guarded_by(upstream, fd_mu)
    OwnedFd upstream;
    Plan plan;
    std::thread pump;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Draws the per-connection plan from the seeded rule schedules.
  Plan DrawPlan();
  /// One thread pumps both directions (poll over the fd pair), applying
  /// the session plan, until EOF/cut/stop.
  void PumpSession(Session* session);
  /// Closes a fd so the peer sees RST instead of FIN.
  static void HardReset(OwnedFd* fd);

  const Config config_;
  OwnedFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  // ppgnn: guarded_by(sessions_, mu_)
  std::vector<std::unique_ptr<Session>> sessions_;
  // ppgnn: guarded_by(rng_, mu_)
  Rng rng_;
  // ppgnn: guarded_by(rule_hits_, mu_)
  std::vector<uint64_t> rule_hits_;  ///< matching connections seen per rule
  // ppgnn: guarded_by(rule_fired_, mu_)
  std::vector<uint64_t> rule_fired_;  ///< times each rule actually fired
  // ppgnn: guarded_by(shut_down_, mu_)
  bool shut_down_ = false;

  // ppgnn: stat_counter(connections_, clean_connections_, delays_)
  // ppgnn: stat_counter(drops_, rsts_, blackholes_, splits_)
  // ppgnn: stat_counter(bytes_forwarded_, bytes_swallowed_)
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> clean_connections_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> rsts_{0};
  std::atomic<uint64_t> blackholes_{0};
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
  std::atomic<uint64_t> bytes_swallowed_{0};
};

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_CHAOS_PROXY_H_
