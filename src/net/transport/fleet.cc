#include "net/transport/fleet.h"

#include <utility>

namespace ppgnn {

namespace {

/// Same per-(shard, replica) seed perturbation ReplicaSet uses for its
/// in-process links, reused here for chaos schedules and link jitter so
/// TCP-mode runs replay with the same independence guarantees.
uint64_t PerturbSeed(uint64_t seed, int shard, int replica) {
  return seed + static_cast<uint64_t>(shard) +
         static_cast<uint64_t>(replica) * 1000003ULL;
}

}  // namespace

LoopbackShardFleet::LoopbackShardFleet(std::vector<Poi> pois,
                                       LoopbackFleetConfig config)
    : config_(std::move(config)) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.replicas < 1) config_.replicas = 1;
  std::vector<std::vector<Poi>> slices =
      PartitionPoisForShards(std::move(pois), config_.shards);
  const size_t total =
      static_cast<size_t>(config_.shards) * static_cast<size_t>(config_.replicas);
  dbs_.reserve(total);
  services_.reserve(total);
  servers_.reserve(total);
  proxies_.reserve(total);
  for (int s = 0; s < config_.shards; ++s) {
    for (int r = 0; r < config_.replicas; ++r) {
      // Each replica gets its own copy of the slice, like ReplicaSet's
      // in-process layout: identical data is what makes failover answer
      // bits identical.
      dbs_.push_back(std::make_unique<LspDatabase>(slices[static_cast<size_t>(s)]));
      services_.push_back(
          std::make_unique<LspService>(*dbs_.back(), config_.shard_service));
      servers_.push_back(
          std::make_unique<TcpShardServer>(*services_.back(), config_.server));
      proxies_.push_back(nullptr);
    }
  }
}

LoopbackShardFleet::~LoopbackShardFleet() { Shutdown(); }

Status LoopbackShardFleet::Start() {
  if (started_) return Status::FailedPrecondition("fleet already started");
  started_ = true;
  for (int s = 0; s < config_.shards; ++s) {
    for (int r = 0; r < config_.replicas; ++r) {
      const size_t i = Index(s, r);
      Status status = servers_[i]->Start();
      if (!status.ok()) return status;
      if (config_.proxied && config_.proxied(s, r)) {
        ChaosProxy::Config proxy_config;
        proxy_config.upstream_port = servers_[i]->port();
        proxy_config.seed = PerturbSeed(config_.chaos_seed, s, r);
        proxy_config.rules = config_.chaos_rules;
        proxies_[i] = std::make_unique<ChaosProxy>(std::move(proxy_config));
        status = proxies_[i]->Start();
        if (!status.ok()) return status;
      }
    }
  }
  return Status::OK();
}

uint16_t LoopbackShardFleet::dial_port(int shard, int replica) const {
  const size_t i = Index(shard, replica);
  if (proxies_[i]) return proxies_[i]->port();
  return servers_[i]->port();
}

uint16_t LoopbackShardFleet::server_port(int shard, int replica) const {
  return servers_[Index(shard, replica)]->port();
}

std::function<std::unique_ptr<ServiceLink>(int, int)>
LoopbackShardFleet::LinkFactory() const {
  // The factory captures `this`; the fleet must outlive the cluster the
  // caller builds with it (test/bench scope guarantees that).
  return [this](int shard, int replica) -> std::unique_ptr<ServiceLink> {
    TcpLinkConfig link = config_.link;
    link.host = "127.0.0.1";
    link.port = dial_port(shard, replica);
    link.seed = PerturbSeed(link.seed, shard, replica);
    return std::make_unique<TcpLink>(std::move(link));
  };
}

void LoopbackShardFleet::Shutdown(double drain_deadline_seconds) {
  // Servers drain first (they still answer in-flight frames), then the
  // proxies sever whatever client connections remain.
  for (auto& server : servers_) {
    if (server) server->Shutdown(drain_deadline_seconds);
  }
  for (auto& proxy : proxies_) {
    if (proxy) proxy->Shutdown();
  }
}

}  // namespace ppgnn
