// LoopbackShardFleet: the server side of a TCP-mode cluster, in one
// process.
//
// Builds the exact per-(shard, replica) layout a ShardedLspService with
// a TcpLink factory expects to dial: the POI space is partitioned with
// the same PartitionPoisForShards the coordinator uses, and every
// replica of shard j gets its own LspDatabase copy of slice j, its own
// LspService, and its own TcpShardServer on a loopback ephemeral port.
// Optionally, selected replicas are fronted by a seeded ChaosProxy so
// socket-level faults (RST, truncation, black holes, split writes) hit
// exactly the legs a test scripts — the link then dials the proxy, and
// the replica ladder has to absorb whatever the schedule injects.
//
// This is the harness for transport_test, the `--transport=tcp` bench
// smoke, and the CLI's TCP cluster mode; production deployments run
// `ppgnn_cli --serve --listen` per replica instead (one process each)
// and point the coordinator at them with --connect-shard.

#ifndef PPGNN_NET_TRANSPORT_FLEET_H_
#define PPGNN_NET_TRANSPORT_FLEET_H_

#include <functional>
#include <memory>
#include <vector>

#include "net/transport/chaos_proxy.h"
#include "net/transport/tcp_link.h"
#include "net/transport/tcp_server.h"
#include "service/shard_coordinator.h"

namespace ppgnn {

struct LoopbackFleetConfig {
  int shards = 1;
  int replicas = 1;
  /// Per-replica shard service config (plaintext shard kGNN).
  ServiceConfig shard_service;
  TcpServerConfig server;
  /// Base link config; host/port are filled per replica by LinkFactory,
  /// and the seed is perturbed per (shard, replica).
  TcpLinkConfig link;
  /// Which replicas sit behind a ChaosProxy; null = none.
  std::function<bool(int shard, int replica)> proxied;
  /// Fault schedule for proxied replicas; the seed is perturbed per
  /// (shard, replica) so schedules stay independent but replayable.
  std::vector<ChaosRule> chaos_rules;
  uint64_t chaos_seed = 0xfa117;
};

class LoopbackShardFleet {
 public:
  explicit LoopbackShardFleet(std::vector<Poi> pois,
                              LoopbackFleetConfig config);
  ~LoopbackShardFleet();

  LoopbackShardFleet(const LoopbackShardFleet&) = delete;
  LoopbackShardFleet& operator=(const LoopbackShardFleet&) = delete;

  /// Binds and starts every server (and proxy). Call once before
  /// building links.
  [[nodiscard]] Status Start();

  /// The port a coordinator link for (shard, replica) should dial — the
  /// proxy's port when the replica is proxied, the server's otherwise.
  uint16_t dial_port(int shard, int replica) const;
  /// The server's real port (behind any proxy).
  uint16_t server_port(int shard, int replica) const;

  /// A ShardClusterConfig::link_factory dialing this fleet.
  std::function<std::unique_ptr<ServiceLink>(int, int)> LinkFactory() const;

  int shards() const { return config_.shards; }
  int replicas() const { return config_.replicas; }
  TcpShardServer& server(int shard, int replica) {
    return *servers_[Index(shard, replica)];
  }
  LspService& service(int shard, int replica) {
    return *services_[Index(shard, replica)];
  }
  /// Null when the replica is not proxied.
  ChaosProxy* proxy(int shard, int replica) {
    return proxies_[Index(shard, replica)].get();
  }

  /// Drains and stops every server, then the proxies. Idempotent.
  void Shutdown(double drain_deadline_seconds = 0.0);

 private:
  size_t Index(int shard, int replica) const {
    return static_cast<size_t>(shard) *
               static_cast<size_t>(config_.replicas) +
           static_cast<size_t>(replica);
  }

  LoopbackFleetConfig config_;
  bool started_ = false;
  std::vector<std::unique_ptr<LspDatabase>> dbs_;
  std::vector<std::unique_ptr<LspService>> services_;
  std::vector<std::unique_ptr<TcpShardServer>> servers_;
  std::vector<std::unique_ptr<ChaosProxy>> proxies_;  ///< null when direct
};

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_FLEET_H_
