#include "net/transport/chaos_proxy.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

namespace ppgnn {
namespace {

/// One pump-side write budget. Generous: the proxy only ever talks
/// loopback, and a genuinely wedged peer is severed by Shutdown.
constexpr double kWriteTimeoutSeconds = 5.0;

SocketClock::time_point DeadlineAfter(double seconds) {
  return SocketClock::now() + std::chrono::duration_cast<SocketClock::duration>(
                                  std::chrono::duration<double>(seconds));
}

bool ParseUint(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

}  // namespace

const char* ChaosActionToString(ChaosAction action) {
  switch (action) {
    case ChaosAction::kDelay:
      return "delay";
    case ChaosAction::kDrop:
      return "drop";
    case ChaosAction::kRst:
      return "rst";
    case ChaosAction::kBlackhole:
      return "blackhole";
    case ChaosAction::kSplit:
      return "split";
  }
  return "unknown";
}

Result<ChaosRule> ParseChaosRule(const std::string& spec) {
  ChaosRule rule;
  std::istringstream in(spec);
  std::string word;
  bool have_action = false;
  while (in >> word) {
    std::string key = word;
    std::string value;
    const size_t eq = word.find('=');
    if (eq != std::string::npos) {
      key = word.substr(0, eq);
      value = word.substr(eq + 1);
    }
    if (!have_action) {
      have_action = true;
      if (key == "delay") {
        rule.action = ChaosAction::kDelay;
        if (!value.empty() && !ParseDouble(value, &rule.delay_seconds)) {
          return Status::InvalidArgument("chaos rule: bad delay: " + spec);
        }
        if (rule.delay_seconds < 0.0) {
          return Status::InvalidArgument("chaos rule: negative delay: " + spec);
        }
        continue;
      }
      if (key == "drop" || key == "rst" || key == "blackhole") {
        rule.action = key == "drop"    ? ChaosAction::kDrop
                      : key == "rst"   ? ChaosAction::kRst
                                       : ChaosAction::kBlackhole;
        if (!value.empty() && !ParseUint(value, &rule.after_bytes)) {
          return Status::InvalidArgument("chaos rule: bad byte count: " + spec);
        }
        continue;
      }
      if (key == "split") {
        rule.action = ChaosAction::kSplit;
        if (!value.empty() && !ParseUint(value, &rule.split_bytes)) {
          return Status::InvalidArgument("chaos rule: bad split: " + spec);
        }
        if (rule.split_bytes == 0) {
          return Status::InvalidArgument("chaos rule: split must be >= 1");
        }
        continue;
      }
      return Status::InvalidArgument("chaos rule: unknown action: " + key);
    }
    // Trailing key=value trigger / parameter clauses.
    if (key == "after" && ParseUint(value, &rule.after_bytes)) continue;
    if (key == "skip" && ParseUint(value, &rule.skip)) continue;
    if (key == "times" && ParseUint(value, &rule.times)) continue;
    if (key == "every" && ParseUint(value, &rule.every)) {
      if (rule.every == 0) {
        return Status::InvalidArgument("chaos rule: every must be >= 1");
      }
      continue;
    }
    if (key == "p" && ParseDouble(value, &rule.probability)) {
      if (rule.probability < 0.0 || rule.probability > 1.0) {
        return Status::InvalidArgument("chaos rule: p outside [0, 1]");
      }
      continue;
    }
    return Status::InvalidArgument("chaos rule: unknown clause: " + word);
  }
  if (!have_action) {
    return Status::InvalidArgument("chaos rule: empty spec");
  }
  return rule;
}

std::string ChaosProxyStats::ToString() const {
  std::ostringstream os;
  os << "chaos_proxy: connections=" << connections
     << " clean=" << clean_connections << " delays=" << delays
     << " drops=" << drops << " rsts=" << rsts
     << " blackholes=" << blackholes << " splits=" << splits
     << " forwarded=" << bytes_forwarded << "B swallowed=" << bytes_swallowed
     << "B";
  return os.str();
}

ChaosProxy::ChaosProxy(Config config)
    : config_(std::move(config)),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      rng_(config_.seed),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      rule_hits_(config_.rules.size(), 0),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      rule_fired_(config_.rules.size(), 0) {}

ChaosProxy::~ChaosProxy() { Shutdown(); }

Status ChaosProxy::Start() {
  PPGNN_ASSIGN_OR_RETURN(listen_fd_, TcpListen(config_.listen_port));
  PPGNN_ASSIGN_OR_RETURN(port_, ListenPort(listen_fd_.get()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

ChaosProxy::Plan ChaosProxy::DrawPlan() {
  std::lock_guard<std::mutex> lock(mu_);
  Plan plan;
  for (size_t i = 0; i < config_.rules.size(); ++i) {
    const ChaosRule& rule = config_.rules[i];
    const uint64_t hit = rule_hits_[i]++;
    if (hit < rule.skip) continue;
    if ((hit - rule.skip) % rule.every != 0) continue;
    if (rule.times > 0 && rule_fired_[i] >= rule.times) continue;
    // The Bernoulli draw is consumed only when the deterministic gates
    // pass, so the RNG stream is a pure function of the schedule.
    if (rule.probability < 1.0 && !rng_.NextBernoulli(rule.probability))
      continue;
    rule_fired_[i]++;
    switch (rule.action) {
      case ChaosAction::kDelay:
        plan.delay = true;
        plan.delay_seconds = rule.delay_seconds;
        delays_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosAction::kSplit:
        plan.split = true;
        plan.split_bytes = std::max<uint64_t>(rule.split_bytes, 1);
        splits_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosAction::kDrop:
      case ChaosAction::kRst:
      case ChaosAction::kBlackhole:
        if (plan.cut) break;  // first armed cut wins
        plan.cut = true;
        plan.cut_action = rule.action;
        plan.cut_after_bytes = rule.after_bytes;
        (rule.action == ChaosAction::kDrop  ? drops_
         : rule.action == ChaosAction::kRst ? rsts_
                                            : blackholes_)
            .fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return plan;
}

void ChaosProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<OwnedFd> accepted =
        TcpAccept(listen_fd_.get(), config_.tick_seconds);
    if (!accepted.ok()) continue;  // tick or transient accept error
    connections_.fetch_add(1, std::memory_order_relaxed);
    Result<OwnedFd> dialed =
        TcpConnect(config_.upstream_host, config_.upstream_port,
                   config_.connect_timeout_seconds);
    if (!dialed.ok()) continue;  // dropping `accepted` closes it
    auto session = std::make_unique<Session>();
    // ppgnn-lint: allow(guarded-by): session not yet visible to any thread
    session->client = std::move(accepted).value();
    // ppgnn-lint: allow(guarded-by): session not yet visible to any thread
    session->upstream = std::move(dialed).value();
    session->plan = DrawPlan();
    if (!session->plan.delay && !session->plan.cut && !session->plan.split) {
      clean_connections_.fetch_add(1, std::memory_order_relaxed);
    }
    Session* raw = session.get();
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;  // raced Shutdown; drop the connection
    sessions_.push_back(std::move(session));
    raw->pump = std::thread([this, raw] { PumpSession(raw); });
  }
}

void ChaosProxy::HardReset(OwnedFd* fd) {
  if (!fd->valid()) return;
  struct linger lin;
  lin.l_onoff = 1;
  lin.l_linger = 0;
  (void)::setsockopt(fd->get(), SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  fd->Reset();  // close with linger(0) => RST, not FIN
}

void ChaosProxy::PumpSession(Session* session) {
  const Plan& plan = session->plan;
  std::vector<uint8_t> buf(16 * 1024);
  // Per-direction forwarded-byte counters for the cut threshold.
  uint64_t forwarded[2] = {0, 0};
  bool swallowing = false;

  // Forward `n` bytes to `to`, honoring delay/split. False = peer gone.
  auto forward = [&](int to, const uint8_t* data, size_t n) {
    if (plan.delay && plan.delay_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan.delay_seconds));
    }
    size_t off = 0;
    while (off < n) {
      const size_t chunk =
          plan.split ? std::min<size_t>(plan.split_bytes, n - off) : n - off;
      const Status sent = SendAll(to, data + off, chunk,
                                  DeadlineAfter(kWriteTimeoutSeconds));
      if (!sent.ok()) return false;
      off += chunk;
      // A yield between split writes encourages the kernel to deliver
      // each chunk as its own segment (partial reads on the peer).
      if (plan.split && off < n) std::this_thread::yield();
    }
    bytes_forwarded_.fetch_add(n, std::memory_order_relaxed);
    return true;
  };

  while (!stop_.load(std::memory_order_acquire) &&
         !session->done.load(std::memory_order_acquire)) {
    int fds[2];
    {
      std::lock_guard<std::mutex> lock(session->fd_mu);
      fds[0] = session->client.get();
      fds[1] = session->upstream.get();
    }
    if (fds[0] < 0 || fds[1] < 0) break;

    struct pollfd pfds[2];
    for (int i = 0; i < 2; ++i) {
      pfds[i].fd = fds[i];
      pfds[i].events = POLLIN;
      pfds[i].revents = 0;
    }
    const int timeout_ms = std::max(
        1, static_cast<int>(config_.tick_seconds * 1000.0));
    const int rc = ::poll(pfds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // tick; re-check stop flags

    bool finished = false;
    for (int i = 0; i < 2 && !finished; ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const ssize_t got = ::recv(fds[i], buf.data(), buf.size(), 0);
      if (got == 0) {
        finished = true;  // orderly EOF from either side: tear down both
        break;
      }
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        finished = true;
        break;
      }
      size_t n = static_cast<size_t>(got);
      if (swallowing) {
        bytes_swallowed_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      if (plan.cut) {
        const uint64_t budget = plan.cut_after_bytes - std::min<uint64_t>(
                                    plan.cut_after_bytes, forwarded[i]);
        if (n >= budget) {
          // Forward the allowance, then bite.
          if (budget > 0 && !forward(fds[1 - i], buf.data(), budget)) {
            finished = true;
            break;
          }
          forwarded[i] += budget;
          if (plan.cut_action == ChaosAction::kBlackhole) {
            // Keep the connection open; swallow everything from now on.
            bytes_swallowed_.fetch_add(n - budget, std::memory_order_relaxed);
            swallowing = true;
            continue;
          }
          std::lock_guard<std::mutex> lock(session->fd_mu);
          if (plan.cut_action == ChaosAction::kRst) {
            HardReset(&session->client);
            HardReset(&session->upstream);
          } else {
            session->client.Reset();
            session->upstream.Reset();
          }
          finished = true;
          break;
        }
      }
      if (!forward(fds[1 - i], buf.data(), n)) {
        finished = true;
        break;
      }
      forwarded[i] += n;
    }
    if (finished) break;
  }

  session->done.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(session->fd_mu);
  // Orderly teardown for every exit path that did not already reset.
  if (session->client.valid()) (void)::shutdown(session->client.get(), SHUT_RDWR);
  if (session->upstream.valid())
    (void)::shutdown(session->upstream.get(), SHUT_RDWR);
}

ChaosProxyStats ChaosProxy::Stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.clean_connections = clean_connections_.load(std::memory_order_relaxed);
  s.delays = delays_.load(std::memory_order_relaxed);
  s.drops = drops_.load(std::memory_order_relaxed);
  s.rsts = rsts_.load(std::memory_order_relaxed);
  s.blackholes = blackholes_.load(std::memory_order_relaxed);
  s.splits = splits_.load(std::memory_order_relaxed);
  s.bytes_forwarded = bytes_forwarded_.load(std::memory_order_relaxed);
  s.bytes_swallowed = bytes_swallowed_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->fd_mu);
    // Wake a pump blocked in poll; its loop exits on the stop flag.
    if (session->client.valid())
      (void)::shutdown(session->client.get(), SHUT_RDWR);
    if (session->upstream.valid())
      (void)::shutdown(session->upstream.get(), SHUT_RDWR);
  }
  for (auto& session : sessions) {
    if (session->pump.joinable()) session->pump.join();
  }
  listen_fd_.Reset();
}

}  // namespace ppgnn
