// TcpLink: a ServiceLink over a real TCP connection.
//
// Plugs into the exact seam ResilientClient drives in-process — which
// is the whole point: the PR 8 ladder (budgets, retries, hedging,
// failover, health) applies unchanged over sockets. One link targets
// one server (one replica); ReplicaSet owns R of them per shard.
//
// Per Submit, a worker thread runs one request/response exchange on a
// pooled connection (dialing lazily when the pool is empty). Hedges
// are naturally supported: two in-flight Submits use two connections.
//
// Failures never escape as exceptions or silence — every Submit
// resolves its callback with either the server's verbatim
// ResponseFrame bytes or a locally synthesized structured error:
//   * dial failure / backoff gate -> kOverloaded with a retry_after_ms
//     hint equal to the remaining backoff (ResilientClient honors it);
//   * send/recv error, peer EOF, fatal framing -> kOverloaded
//     ("the replica is unreachable *right now*" — retryable, and the
//     failure is reported to the connectivity observer so HealthMonitor
//     demotes the replica);
//   * I/O deadline -> kDeadlineExceeded.
//
// Reconnect discipline: consecutive dial failures arm a capped
// exponential backoff with seeded jitter; while the gate is closed,
// Submits fast-fail locally instead of hammering a dead address. The
// first success resets the gate.

#ifndef PPGNN_NET_TRANSPORT_TCP_LINK_H_
#define PPGNN_NET_TRANSPORT_TCP_LINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/cost.h"
#include "net/transport/socket.h"
#include "service/link.h"
#include "service/lsp_service.h"

namespace ppgnn {

struct TcpLinkConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 0.5;
  /// Backstop for one request/response exchange when the request
  /// carries no deadline of its own; a request deadline (plus a small
  /// grace for the server's structured timeout reply) wins when set.
  double io_timeout_seconds = 5.0;
  /// Dial backoff after consecutive connect failures:
  /// min(initial * multiplier^n, max) * (1 ± jitter), seeded.
  double reconnect_initial_backoff_seconds = 0.01;
  double reconnect_max_backoff_seconds = 0.5;
  double reconnect_backoff_multiplier = 2.0;
  double reconnect_jitter_fraction = 0.2;
  uint64_t seed = 0x7c9;
  /// Optional communication-cost sink (logical + framed bytes, both
  /// directions). Recorded under the link's own lock; the tracker may
  /// be shared with other links only if every other writer is also
  /// externally synchronized.
  CostTracker* cost = nullptr;
};

struct TcpLinkStats {
  uint64_t submitted = 0;
  uint64_t answered = 0;        ///< server frames delivered verbatim
  uint64_t dials = 0;
  uint64_t dial_failures = 0;
  uint64_t fast_fails = 0;      ///< backoff gate, no dial attempted
  uint64_t io_errors = 0;       ///< send/recv/EOF/framing failures
  uint64_t io_timeouts = 0;
  uint64_t pooled_reuses = 0;   ///< exchanges on an already-open conn

  std::string ToString() const;
};

class TcpLink : public ServiceLink {
 public:
  explicit TcpLink(TcpLinkConfig config);
  ~TcpLink() override;

  TcpLink(const TcpLink&) = delete;
  TcpLink& operator=(const TcpLink&) = delete;

  [[nodiscard]] bool Submit(ServiceRequest request,
                            Callback done) override;
  void SetConnectivityObserver(std::function<void(bool)> observer) override;
  /// Reachability probe: reuses a pooled connection when one exists,
  /// otherwise dials (pooling the new connection on success, arming the
  /// backoff gate on failure). Never sends a byte.
  Status Probe(double timeout_seconds) override;
  void Close() override;

  TcpLinkStats Stats() const;

 private:
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };

  /// The whole exchange for one request; runs on a worker thread.
  void RunExchange(ServiceRequest request, Callback done);
  /// Pool checkout (nullptr = empty) / return / registration of the fd
  /// a worker is actively using, so Close() can sever it.
  OwnedFd CheckoutConnection();
  void ReturnConnection(OwnedFd fd);
  void RegisterActive(int fd);
  void UnregisterActive(int fd);
  /// Backoff gate. Returns 0 when dialing is allowed; otherwise the
  /// remaining closed time in milliseconds (the fast-fail hint).
  uint64_t DialGateRemainingMs();
  /// Arms/extends the backoff gate; returns the new closed window in
  /// milliseconds (the fast-fail retry_after hint).
  uint64_t OnDialFailure();
  void OnExchangeSuccess();
  void NotifyConnectivity(bool up);
  std::vector<uint8_t> SynthesizeError(WireError code, std::string detail,
                                       uint64_t retry_after_ms);
  void RecordCost(Link link, uint64_t logical, uint64_t framed);
  /// Joins workers that have finished; called opportunistically from
  /// Submit and exhaustively from Close.
  void ReapFinishedWorkers();

  const TcpLinkConfig config_;

  mutable std::mutex mu_;
  // ppgnn: guarded_by(idle_, mu_)
  std::vector<OwnedFd> idle_;
  // ppgnn: guarded_by(active_fds_, mu_)
  std::vector<int> active_fds_;
  // ppgnn: guarded_by(workers_, mu_)
  std::vector<Worker> workers_;
  // ppgnn: guarded_by(observer_, mu_)
  std::function<void(bool)> observer_;
  // ppgnn: guarded_by(rng_, mu_)
  Rng rng_;
  // ppgnn: guarded_by(consecutive_dial_failures_, mu_)
  int consecutive_dial_failures_ = 0;
  // ppgnn: guarded_by(next_dial_allowed_, mu_)
  SocketClock::time_point next_dial_allowed_{};
  // ppgnn: guarded_by(closed_, mu_)
  bool closed_ = false;
  /// Last connectivity state reported to the observer; notifications are
  /// edge-triggered so HealthMonitor sees transitions, not every call.
  // ppgnn: guarded_by(link_up_, mu_)
  bool link_up_ = true;

  // ppgnn: stat_counter(submitted_, answered_, dials_, dial_failures_)
  // ppgnn: stat_counter(fast_fails_, io_errors_, io_timeouts_)
  // ppgnn: stat_counter(pooled_reuses_)
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> answered_{0};
  std::atomic<uint64_t> dials_{0};
  std::atomic<uint64_t> dial_failures_{0};
  std::atomic<uint64_t> fast_fails_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> io_timeouts_{0};
  std::atomic<uint64_t> pooled_reuses_{0};
};

}  // namespace ppgnn

#endif  // PPGNN_NET_TRANSPORT_TCP_LINK_H_
