// APNN baseline (Yi, Paulet, Bertino, Varadharajan, TKDE 2016) for the
// single-user comparison of Section 8.2.
//
// LSP partitions the data space into a grid and PRE-COMPUTES the kNN
// answer with respect to the center of every cell. At query time the user
// picks a square cloak region of b x b cells containing her own cell and
// privately retrieves the pre-computed answer of her cell via the same
// Paillier indicator/selection machinery (privacy level b^2, matching
// d = b^2 in PPGNN). The answer is approximate — it is the kNN of the
// cell center, not of the user — and any database update forces the grid
// pre-computation to be redone; the paper contrasts both weaknesses with
// PPGNN.

#ifndef PPGNN_BASELINES_APNN_H_
#define PPGNN_BASELINES_APNN_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/protocol.h"

namespace ppgnn {

struct ApnnParams {
  int grid = 64;       ///< grid resolution per axis (grid^2 cells)
  int b = 5;           ///< cloak region side, privacy level b^2
  int k = 8;           ///< POIs to retrieve
  int key_bits = 1024;
};

class ApnnServer {
 public:
  /// Pre-computes kNN (up to `max_k` POIs) for every cell center. The
  /// setup cost is reported separately — the paper excludes it from the
  /// per-query LSP cost but charges APNN for it qualitatively.
  static Result<ApnnServer> Build(const LspDatabase* db, int grid, int max_k);

  double setup_seconds() const { return setup_seconds_; }
  int grid() const { return grid_; }
  int max_k() const { return max_k_; }

  /// Runs one private approximate-kNN query for `user`.
  Result<QueryOutcome> Query(const Point& user, const ApnnParams& params,
                             Rng& rng, const KeyPair* fixed_keys = nullptr) const;

  /// The (plaintext) pre-computed answer for the cell containing `user` —
  /// what Query should decode to. Used by tests and accuracy benches.
  Result<std::vector<Point>> CellAnswer(const Point& user, int k) const;

 private:
  ApnnServer() = default;

  int CellIndexOf(const Point& p) const;

  const LspDatabase* db_ = nullptr;
  int grid_ = 0;
  int max_k_ = 0;
  double setup_seconds_ = 0.0;
  /// cell -> ranked kNN POI locations for the cell center (size <= max_k).
  std::vector<std::vector<Point>> cell_answers_;
};

}  // namespace ppgnn

#endif  // PPGNN_BASELINES_APNN_H_
