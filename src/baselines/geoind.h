// Geo-indistinguishability baseline (Andrés et al., CCS 2013) — the
// "Perturbation" row of the paper's Table 4 (refs [1, 34, 37]).
//
// The single user adds planar Laplace noise (privacy budget epsilon) to
// her location and queries in the clear. This buys Privacy I (the real
// location is epsilon-geo-indistinguishable within any radius) and
// Privacy III (only k POIs come back), but forfeits Privacy II — the LSP
// sees both the reported location and the exact answer it serves — and
// the answer is approximate: it is the kNN of the noisy point.
//
// The planar Laplace radius has density proportional to r * exp(-eps*r),
// i.e. Gamma(shape 2, rate eps): sampled exactly as the sum of two
// exponentials, no Lambert-W needed.

#ifndef PPGNN_BASELINES_GEOIND_H_
#define PPGNN_BASELINES_GEOIND_H_

#include "common/random.h"
#include "common/status.h"
#include "core/protocol.h"

namespace ppgnn {

struct GeoIndParams {
  /// Privacy budget; larger = less noise. In unit-square coordinates an
  /// epsilon of ~50 corresponds to city-block-scale noise.
  double epsilon = 50.0;
  int k = 8;
};

struct GeoIndOutcome {
  QueryOutcome query;
  Point reported;  ///< the noisy location the LSP saw
};

/// Draws a planar-Laplace perturbation of `real` (clamped to the unit
/// square).
Point PlanarLaplacePerturb(const Point& real, double epsilon, Rng& rng);

/// Runs one geo-indistinguishable (approximate) kNN query.
Result<GeoIndOutcome> RunGeoInd(const LspDatabase& lsp,
                                const GeoIndParams& params, const Point& user,
                                Rng& rng);

}  // namespace ppgnn

#endif  // PPGNN_BASELINES_GEOIND_H_
