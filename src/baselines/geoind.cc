#include "baselines/geoind.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "crypto/poi_codec.h"
#include "spatial/knn.h"

namespace ppgnn {

Point PlanarLaplacePerturb(const Point& real, double epsilon, Rng& rng) {
  // Radius ~ Gamma(2, epsilon) = Exp(1)/eps + Exp(1)/eps; angle uniform.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  while (u1 <= 0.0) u1 = rng.NextDouble();
  while (u2 <= 0.0) u2 = rng.NextDouble();
  double r = -(std::log(u1) + std::log(u2)) / epsilon;
  double theta = 2.0 * M_PI * rng.NextDouble();
  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  return {clamp01(real.x + r * std::cos(theta)),
          clamp01(real.y + r * std::sin(theta))};
}

Result<GeoIndOutcome> RunGeoInd(const LspDatabase& lsp,
                                const GeoIndParams& params, const Point& user,
                                Rng& rng) {
  if (params.epsilon <= 0.0)
    return Status::InvalidArgument("epsilon must be positive");
  if (params.k < 1) return Status::InvalidArgument("k must be >= 1");
  CostTracker tracker;

  // --- user: perturb and send in the clear ---
  Point reported;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    reported = PlanarLaplacePerturb(user, params.epsilon, rng);
  }
  {
    ByteWriter w;
    w.PutVarint(static_cast<uint64_t>(params.k));
    w.PutU32(QuantizeCoord(reported.x));
    w.PutU32(QuantizeCoord(reported.y));
    tracker.RecordSend(Link::kUserToLsp, w.size());
  }

  // --- LSP: plain kNN at the reported point (it learns the answer) ---
  std::vector<Point> answer;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    for (const RankedPoi& rp : KnnQuery(lsp.tree(), reported, params.k)) {
      answer.push_back(rp.poi.location);
    }
  }
  {
    ByteWriter w;
    w.PutVarint(answer.size());
    for (const Point& p : answer) {
      w.PutU32(QuantizeCoord(p.x));
      w.PutU32(QuantizeCoord(p.y));
    }
    tracker.RecordSend(Link::kLspToUser, w.size());
  }

  GeoIndOutcome outcome;
  outcome.query.pois = std::move(answer);
  outcome.query.costs = tracker.report();
  outcome.query.info.pois_returned = outcome.query.pois.size();
  outcome.reported = reported;
  return outcome;
}

}  // namespace ppgnn
