#include "baselines/glp.h"

#include "common/bytes.h"
#include "crypto/poi_codec.h"
#include "spatial/knn.h"

namespace ppgnn {

Result<GlpOutcome> RunGlp(const LspDatabase& lsp, const GlpParams& params,
                          const std::vector<Point>& real_locations, Rng& rng,
                          const KeyPair* fixed_keys) {
  const int n = static_cast<int>(real_locations.size());
  if (n < 2) return Status::InvalidArgument("GLP is a group protocol (n >= 2)");
  if (params.k < 1) return Status::InvalidArgument("k must be >= 1");
  CostTracker tracker;

  // --- group key setup (charged to the users) ---
  KeyPair keys;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    if (fixed_keys != nullptr) {
      keys = *fixed_keys;
    } else {
      PPGNN_ASSIGN_OR_RETURN(keys, GenerateKeyPair(params.key_bits, rng));
    }
  }
  Encryptor enc(keys.pub);
  Decryptor dec(keys.pub, keys.sec);

  // --- every user encrypts her fixed-point coordinates and broadcasts
  //     the two ciphertexts to all other users (O(n^2) transmissions) ---
  std::vector<Ciphertext> enc_x(n), enc_y(n);
  {
    ScopedTimer timer(&tracker, Party::kUser);
    for (int u = 0; u < n; ++u) {
      PPGNN_ASSIGN_OR_RETURN(
          enc_x[u],
          enc.Encrypt(BigInt(static_cast<uint64_t>(
                          QuantizeCoord(real_locations[u].x))),
                      rng, 1));
      PPGNN_ASSIGN_OR_RETURN(
          enc_y[u],
          enc.Encrypt(BigInt(static_cast<uint64_t>(
                          QuantizeCoord(real_locations[u].y))),
                      rng, 1));
    }
  }
  const uint64_t ct_bytes = keys.pub.CiphertextBytes(1);
  tracker.RecordSend(Link::kUserToUser, static_cast<uint64_t>(n) *
                                            static_cast<uint64_t>(n - 1) * 2 *
                                            ct_bytes);

  // --- every user blinds (re-randomizes) each received share, AV-net
  //     style, then aggregates homomorphically; one opened sum reveals
  //     the centroid to the whole group. The blinding step is what makes
  //     GLP cost O(n^2) public-key operations overall (each of the n
  //     users performs O(n) exponentiations), matching the paper's
  //     analysis in Section 8.3.2. ---
  BigInt sum_x, sum_y;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    for (int aggregating_user = 0; aggregating_user < n; ++aggregating_user) {
      Ciphertext acc_x = enc.Zero(1);
      Ciphertext acc_y = enc.Zero(1);
      for (int u = 0; u < n; ++u) {
        Ciphertext share_x = enc_x[u];
        Ciphertext share_y = enc_y[u];
        if (u != aggregating_user) {
          PPGNN_ASSIGN_OR_RETURN(share_x, enc.Rerandomize(share_x, rng));
          PPGNN_ASSIGN_OR_RETURN(share_y, enc.Rerandomize(share_y, rng));
        }
        PPGNN_ASSIGN_OR_RETURN(acc_x, enc.Add(acc_x, share_x));
        PPGNN_ASSIGN_OR_RETURN(acc_y, enc.Add(acc_y, share_y));
      }
      if (aggregating_user == 0) {
        // The group jointly opens the aggregate (simulated by one
        // decryption; a threshold opening exchanges n more ciphertexts,
        // accounted below).
        PPGNN_ASSIGN_OR_RETURN(sum_x, dec.Decrypt(acc_x));
        PPGNN_ASSIGN_OR_RETURN(sum_y, dec.Decrypt(acc_y));
      }
    }
  }
  // Decryption-share exchange for the joint opening.
  tracker.RecordSend(Link::kUserToUser,
                     static_cast<uint64_t>(n - 1) * 2 * ct_bytes);

  Point centroid;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    centroid.x =
        DequantizeCoord(static_cast<uint32_t>((sum_x / BigInt(n)).Low64()));
    centroid.y =
        DequantizeCoord(static_cast<uint32_t>((sum_y / BigInt(n)).Low64()));
  }

  // --- centroid -> LSP (in the clear: GLP forfeits Privacy II) ---
  {
    ByteWriter w;
    w.PutVarint(static_cast<uint64_t>(params.k));
    w.PutU32(QuantizeCoord(centroid.x));
    w.PutU32(QuantizeCoord(centroid.y));
    tracker.RecordSend(Link::kUserToLsp, w.size());
  }

  // --- LSP: plain kNN at the centroid ---
  std::vector<Point> answer;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    std::vector<RankedPoi> knn = KnnQuery(lsp.tree(), centroid, params.k);
    answer.reserve(knn.size());
    for (const RankedPoi& rp : knn) answer.push_back(rp.poi.location);
  }
  {
    ByteWriter w;
    w.PutVarint(answer.size());
    for (const Point& p : answer) {
      w.PutU32(QuantizeCoord(p.x));
      w.PutU32(QuantizeCoord(p.y));
    }
    tracker.RecordSend(Link::kLspToUser, w.size());
  }
  // Coordinator relays the plaintext answer inside the group.
  {
    ByteWriter w;
    w.PutVarint(answer.size());
    for (const Point& p : answer) {
      w.PutU32(QuantizeCoord(p.x));
      w.PutU32(QuantizeCoord(p.y));
    }
    tracker.RecordSend(Link::kUserToUser,
                       static_cast<uint64_t>(n - 1) * w.size());
  }

  GlpOutcome outcome;
  outcome.query.pois = std::move(answer);
  outcome.query.costs = tracker.report();
  outcome.query.info.pois_returned = outcome.query.pois.size();
  outcome.centroid = centroid;
  return outcome;
}

}  // namespace ppgnn
