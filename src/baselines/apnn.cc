#include "baselines/apnn.h"

#include <algorithm>

#include "common/bytes.h"
#include "core/indicator.h"
#include "core/selection.h"
#include "crypto/poi_codec.h"
#include "spatial/knn.h"

namespace ppgnn {

int ApnnServer::CellIndexOf(const Point& p) const {
  auto clamp_cell = [&](double v) {
    int c = static_cast<int>(v * grid_);
    return std::min(std::max(c, 0), grid_ - 1);
  };
  return clamp_cell(p.y) * grid_ + clamp_cell(p.x);
}

Result<ApnnServer> ApnnServer::Build(const LspDatabase* db, int grid,
                                     int max_k) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (grid < 1 || max_k < 1)
    return Status::InvalidArgument("grid and max_k must be >= 1");
  ApnnServer server;
  server.db_ = db;
  server.grid_ = grid;
  server.max_k_ = max_k;
  double t0 = ThreadCpuSeconds();
  server.cell_answers_.resize(static_cast<size_t>(grid) * grid);
  const double cell = 1.0 / grid;
  for (int row = 0; row < grid; ++row) {
    for (int col = 0; col < grid; ++col) {
      Point center{(col + 0.5) * cell, (row + 0.5) * cell};
      std::vector<RankedPoi> knn = KnnQuery(db->tree(), center, max_k);
      std::vector<Point>& out = server.cell_answers_[row * grid + col];
      out.reserve(knn.size());
      for (const RankedPoi& rp : knn) out.push_back(rp.poi.location);
    }
  }
  server.setup_seconds_ = ThreadCpuSeconds() - t0;
  return server;
}

Result<std::vector<Point>> ApnnServer::CellAnswer(const Point& user,
                                                  int k) const {
  if (k > max_k_)
    return Status::InvalidArgument("k exceeds pre-computed max_k");
  const std::vector<Point>& full = cell_answers_[CellIndexOf(user)];
  return std::vector<Point>(
      full.begin(), full.begin() + std::min<size_t>(full.size(), k));
}

Result<QueryOutcome> ApnnServer::Query(const Point& user,
                                       const ApnnParams& params, Rng& rng,
                                       const KeyPair* fixed_keys) const {
  if (params.k > max_k_)
    return Status::InvalidArgument("k exceeds pre-computed max_k");
  if (params.b < 1 || params.b > grid_)
    return Status::InvalidArgument("cloak side b out of range");
  CostTracker tracker;
  QueryInstrumentation info;
  const int b = params.b;
  const uint64_t cells = static_cast<uint64_t>(b) * b;
  info.delta_prime = cells;

  // --- user: keys, cloak region, encrypted indicator ---
  KeyPair keys;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    if (fixed_keys != nullptr) {
      keys = *fixed_keys;
    } else {
      PPGNN_ASSIGN_OR_RETURN(keys, GenerateKeyPair(params.key_bits, rng));
    }
  }
  Encryptor enc(keys.pub);
  Decryptor dec(keys.pub, keys.sec);
  PoiCodec codec(params.key_bits);
  const size_t m = codec.IntsNeeded(static_cast<size_t>(params.k));
  info.answer_width_m = m;

  // Cloak region: a b x b block of cells containing the user's cell, with
  // a random offset so the user's cell position inside it is uniform.
  int user_cell = CellIndexOf(user);
  int user_row = user_cell / grid_;
  int user_col = user_cell % grid_;
  int row0, col0, index_in_cloak;
  std::vector<Ciphertext> indicator;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    int max_row0 = std::min(user_row, grid_ - b);
    int min_row0 = std::max(0, user_row - b + 1);
    int max_col0 = std::min(user_col, grid_ - b);
    int min_col0 = std::max(0, user_col - b + 1);
    row0 = static_cast<int>(rng.NextInRange(min_row0, max_row0));
    col0 = static_cast<int>(rng.NextInRange(min_col0, max_col0));
    index_in_cloak = (user_row - row0) * b + (user_col - col0);
    PPGNN_ASSIGN_OR_RETURN(
        indicator,
        EncryptIndicator(enc, static_cast<uint64_t>(index_in_cloak) + 1, cells,
                         rng));
  }

  // --- user -> LSP: cloak spec + pk + indicator ---
  {
    ByteWriter w;
    w.PutVarint(static_cast<uint64_t>(params.k));
    w.PutVarint(static_cast<uint64_t>(row0));
    w.PutVarint(static_cast<uint64_t>(col0));
    w.PutVarint(static_cast<uint64_t>(b));
    PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> pk_bytes,
                           keys.pub.n.ToBytesPadded(keys.pub.ByteSize()));
    w.PutBytes(pk_bytes);
    for (const Ciphertext& ct : indicator) {
      PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                             ct.value.ToBytesPadded(ct.ByteSize(keys.pub)));
      w.PutBytes(bytes);
    }
    tracker.RecordSend(Link::kUserToLsp, w.size());
  }

  // --- LSP: assemble the pre-computed answers, private selection ---
  std::vector<Ciphertext> selected;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    AnswerMatrix matrix;
    matrix.columns.reserve(cells);
    for (int r = 0; r < b; ++r) {
      for (int c = 0; c < b; ++c) {
        const std::vector<Point>& full =
            cell_answers_[(row0 + r) * grid_ + (col0 + c)];
        std::vector<Point> prefix(
            full.begin(),
            full.begin() + std::min<size_t>(full.size(), params.k));
        PPGNN_ASSIGN_OR_RETURN(std::vector<BigInt> column,
                               codec.Encode(prefix, m));
        matrix.columns.push_back(std::move(column));
      }
    }
    PPGNN_ASSIGN_OR_RETURN(selected, PrivateSelect(enc, matrix, indicator));
  }

  // --- LSP -> user: encrypted answer; user decrypts ---
  {
    ByteWriter w;
    for (const Ciphertext& ct : selected) {
      PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                             ct.value.ToBytesPadded(ct.ByteSize(keys.pub)));
      w.PutBytes(bytes);
    }
    tracker.RecordSend(Link::kLspToUser, w.size());
  }
  std::vector<Point> pois;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    std::vector<BigInt> plain;
    plain.reserve(selected.size());
    for (const Ciphertext& ct : selected) {
      PPGNN_ASSIGN_OR_RETURN(BigInt value, dec.Decrypt(ct));
      plain.push_back(std::move(value));
    }
    PPGNN_ASSIGN_OR_RETURN(pois, codec.Decode(plain));
  }
  info.pois_returned = pois.size();

  QueryOutcome outcome;
  outcome.pois = std::move(pois);
  outcome.costs = tracker.report();
  outcome.info = info;
  return outcome;
}

}  // namespace ppgnn
