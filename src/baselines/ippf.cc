#include "baselines/ippf.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

Rect CloakRect(const Point& center, double area_fraction, Rng& rng) {
  // A square of the requested area containing the user's location at a
  // uniformly random offset (so the location is not always the center).
  double side = std::sqrt(area_fraction);
  double off_x = rng.NextDouble() * side;
  double off_y = rng.NextDouble() * side;
  double min_x = std::min(std::max(center.x - off_x, 0.0), 1.0 - side);
  double min_y = std::min(std::max(center.y - off_y, 0.0), 1.0 - side);
  return {min_x, min_y, min_x + side, min_y + side};
}

}  // namespace

std::vector<Poi> IppfCandidates(const LspDatabase& lsp,
                                const std::vector<Rect>& rects, int k,
                                AggregateKind aggregate) {
  const std::vector<Poi>& pois = lsp.pois();
  std::vector<double> lower(pois.size());
  std::vector<double> upper(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    const Point& p = pois[i].location;
    // Reuse the aggregate fold: per-rect min/max distance of a point to a
    // rectangle equals the point-in-box bounds with roles swapped.
    double lb = 0.0, ub = 0.0;
    switch (aggregate) {
      case AggregateKind::kSum: {
        lb = ub = 0.0;
        for (const Rect& r : rects) {
          lb += MinDistance(p, r);
          ub += MaxDistance(p, r);
        }
        break;
      }
      case AggregateKind::kMax: {
        lb = ub = 0.0;
        for (const Rect& r : rects) {
          lb = std::max(lb, MinDistance(p, r));
          ub = std::max(ub, MaxDistance(p, r));
        }
        break;
      }
      case AggregateKind::kMin: {
        lb = ub = std::numeric_limits<double>::infinity();
        for (const Rect& r : rects) {
          lb = std::min(lb, MinDistance(p, r));
          ub = std::min(ub, MaxDistance(p, r));
        }
        break;
      }
    }
    lower[i] = lb;
    upper[i] = ub;
  }
  // Threshold: k-th smallest upper bound.
  std::vector<double> sorted_upper = upper;
  size_t kth = std::min<size_t>(static_cast<size_t>(std::max(k, 1)),
                                sorted_upper.size());
  if (kth == 0) return {};
  std::nth_element(sorted_upper.begin(), sorted_upper.begin() + (kth - 1),
                   sorted_upper.end());
  double threshold = sorted_upper[kth - 1];

  std::vector<Poi> out;
  for (size_t i = 0; i < pois.size(); ++i) {
    if (lower[i] <= threshold) out.push_back(pois[i]);
  }
  return out;
}

Result<IppfOutcome> RunIppf(const LspDatabase& lsp, const IppfParams& params,
                            const std::vector<Point>& real_locations,
                            Rng& rng) {
  const int n = static_cast<int>(real_locations.size());
  if (n < 2)
    return Status::InvalidArgument("IPPF is a group protocol (n >= 2)");
  if (params.k < 1) return Status::InvalidArgument("k must be >= 1");
  CostTracker tracker;

  // --- each user: cloak rectangle -> LSP ---
  std::vector<Rect> rects(n);
  {
    ScopedTimer timer(&tracker, Party::kUser);
    for (int u = 0; u < n; ++u) {
      rects[u] = CloakRect(real_locations[u], params.rect_area_fraction, rng);
    }
  }
  for (int u = 0; u < n; ++u) {
    ByteWriter w;
    w.PutU32(static_cast<uint32_t>(u));
    w.PutDouble(rects[u].min_x);
    w.PutDouble(rects[u].min_y);
    w.PutDouble(rects[u].max_x);
    w.PutDouble(rects[u].max_y);
    tracker.RecordSend(Link::kUserToLsp, w.size());
  }

  // --- LSP: candidate superset ---
  std::vector<Poi> candidates;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    candidates = IppfCandidates(lsp, rects, params.k, params.aggregate);
  }
  {
    // Candidate list to the first user in the chain: id + coords each.
    ByteWriter w;
    w.PutVarint(candidates.size());
    for (const Poi& p : candidates) {
      w.PutU32(p.id);
      w.PutU32(QuantizeCoord(p.location.x));
      w.PutU32(QuantizeCoord(p.location.y));
    }
    tracker.RecordSend(Link::kLspToUser, w.size());
  }

  // --- cooperative filtering chain ---
  std::vector<double> partial(candidates.size());
  {
    ScopedTimer timer(&tracker, Party::kUser);
    switch (params.aggregate) {
      case AggregateKind::kSum:
        std::fill(partial.begin(), partial.end(), 0.0);
        break;
      case AggregateKind::kMax:
        std::fill(partial.begin(), partial.end(), 0.0);
        break;
      case AggregateKind::kMin:
        std::fill(partial.begin(), partial.end(),
                  std::numeric_limits<double>::infinity());
        break;
    }
    for (int u = 0; u < n; ++u) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        double dist = Distance(real_locations[u], candidates[i].location);
        switch (params.aggregate) {
          case AggregateKind::kSum:
            partial[i] += dist;
            break;
          case AggregateKind::kMax:
            partial[i] = std::max(partial[i], dist);
            break;
          case AggregateKind::kMin:
            partial[i] = std::min(partial[i], dist);
            break;
        }
      }
    }
  }
  // Each chain hop ships (id, partial aggregate) per candidate.
  for (int hop = 0; hop + 1 < n; ++hop) {
    ByteWriter w;
    w.PutVarint(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      w.PutU32(candidates[i].id);
      w.PutDouble(partial[i]);
    }
    tracker.RecordSend(Link::kUserToUser, w.size());
  }

  // --- last user: exact top-k, broadcast ---
  std::vector<Point> answer;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (partial[a] != partial[b]) return partial[a] < partial[b];
      return candidates[a].id < candidates[b].id;
    });
    size_t take = std::min<size_t>(static_cast<size_t>(params.k),
                                   order.size());
    answer.reserve(take);
    for (size_t i = 0; i < take; ++i)
      answer.push_back(candidates[order[i]].location);
  }
  for (int u = 0; u + 1 < n; ++u) {
    ByteWriter w;
    w.PutVarint(answer.size());
    for (const Point& p : answer) {
      w.PutU32(QuantizeCoord(p.x));
      w.PutU32(QuantizeCoord(p.y));
    }
    tracker.RecordSend(Link::kUserToUser, w.size());
  }

  IppfOutcome outcome;
  outcome.query.pois = std::move(answer);
  outcome.query.costs = tracker.report();
  outcome.query.info.pois_returned = outcome.query.pois.size();
  outcome.candidates_returned = candidates.size();
  return outcome;
}

}  // namespace ppgnn
