// IPPF baseline (Hashem, Kulik, Zhang, EDBT 2010) for the group
// comparison of Section 8.3.2.
//
// Each user obfuscates her location into a cloak rectangle. LSP evaluates
// the kGNN query with respect to the n rectangles: using the aggregate
// min/max distance bounds, it returns every POI that could be among the
// top-k for SOME placement of the users inside their rectangles — a
// candidate superset that is often thousands of POIs (the source of
// IPPF's large communication cost in Fig 8a/8d). The users then filter
// cooperatively: the candidate list flows down a user chain, each user
// adding its private distance contribution, and the last user extracts
// the exact top-k and broadcasts it.
//
// IPPF provides Privacy I-II (rectangles) but not Privacy III (the
// superset leaks database content beyond the answer) nor Privacy IV (two
// chain neighbors can collude against the user between them).

#ifndef PPGNN_BASELINES_IPPF_H_
#define PPGNN_BASELINES_IPPF_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/protocol.h"

namespace ppgnn {

struct IppfParams {
  /// Cloak rectangle area as a fraction of the data space. The paper uses
  /// 0.0005% (= 5e-6), calibrated to d = 25 locations out of ~5M
  /// addresses.
  double rect_area_fraction = 5e-6;
  int k = 8;
  AggregateKind aggregate = AggregateKind::kSum;
};

struct IppfOutcome {
  QueryOutcome query;          ///< answer + costs (delta_prime unused)
  size_t candidates_returned;  ///< size of LSP's candidate superset
};

/// Runs one IPPF group query. real_locations.size() = n >= 2.
Result<IppfOutcome> RunIppf(const LspDatabase& lsp, const IppfParams& params,
                            const std::vector<Point>& real_locations,
                            Rng& rng);

/// LSP-side candidate computation, exposed for tests: all POIs whose
/// aggregate lower bound does not exceed the k-th smallest aggregate
/// upper bound over the rectangles.
std::vector<Poi> IppfCandidates(const LspDatabase& lsp,
                                const std::vector<Rect>& rects, int k,
                                AggregateKind aggregate);

}  // namespace ppgnn

#endif  // PPGNN_BASELINES_IPPF_H_
