// GLP baseline (Ashouri-Talouki, Baraani-Dastjerdi, Selçuk, Computer
// Communications 2012) for the group comparison of Section 8.3.2.
//
// The group privately computes its centroid via secure multiparty
// computation — every user broadcasts homomorphic encryptions of her
// coordinates to all other users (O(n^2) ciphertext transmissions, the
// paper's stated reason GLP's communication and user costs grow fastest
// with n), each user aggregates the shares homomorphically, and the
// opened sum yields the centroid. LSP then answers a plain kNN query at
// the centroid, in the clear.
//
// GLP provides Privacy I (locations never leave the group in the clear)
// and Privacy III (only k POIs are returned), but not Privacy II (LSP
// sees the centroid and the answer) nor Privacy IV (n-1 colluders can
// solve the centroid equation for the last user's location). The answer
// is approximate: the kNN of the centroid is not the kGNN of the group.

#ifndef PPGNN_BASELINES_GLP_H_
#define PPGNN_BASELINES_GLP_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/protocol.h"

namespace ppgnn {

struct GlpParams {
  int k = 8;
  int key_bits = 1024;
};

struct GlpOutcome {
  QueryOutcome query;
  Point centroid;  ///< the (approximate) group centroid sent to LSP
};

/// Runs one GLP group query. real_locations.size() = n >= 2.
Result<GlpOutcome> RunGlp(const LspDatabase& lsp, const GlpParams& params,
                          const std::vector<Point>& real_locations, Rng& rng,
                          const KeyPair* fixed_keys = nullptr);

}  // namespace ppgnn

#endif  // PPGNN_BASELINES_GLP_H_
