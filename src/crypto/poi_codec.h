// Packing of query answers (ranked POI coordinate lists) into Paillier
// plaintext integers.
//
// The paper returns 8 bytes per POI (two 4-byte fixed-point coordinates in
// the normalized unit square) and notes that "15 POIs information can be
// encoded by a big integer in our settings" (keysize 1024). This codec
// reproduces that layout:
//
//   * every packed integer is < 2^(key_bits - 1) < N, so it is a valid
//     plaintext in Z_N;
//   * each POI occupies one 64-bit slot: x in the low 32 bits, y in the
//     high 32 bits, both quantized to 32-bit fixed point;
//   * the first integer carries an 8-bit answer-length header (answers can
//     be shorter than k after answer sanitation), followed by POI slots;
//     subsequent integers are all POI slots;
//   * with key_bits = 1024 both the first and later integers hold
//     floor(1015/64) = floor(1023/64) = 15 POIs, matching the paper.
//
// All answers inside one private selection are padded with zero integers
// to the same width m so the answer matrix A^{m x delta'} is rectangular.

#ifndef PPGNN_CRYPTO_POI_CODEC_H_
#define PPGNN_CRYPTO_POI_CODEC_H_

#include <vector>

#include "bigint/bigint.h"
#include "common/status.h"
#include "geo/point.h"

namespace ppgnn {

class PoiCodec {
 public:
  /// key_bits: Paillier modulus size; must be >= 128.
  explicit PoiCodec(int key_bits);

  /// POI capacity of the first packed integer (header included).
  int SlotsInFirstInt() const { return slots_first_; }
  /// POI capacity of every subsequent packed integer.
  int SlotsInLaterInt() const { return slots_rest_; }

  /// Number of packed integers (the paper's m) needed for an answer of up
  /// to `max_pois` POIs.
  size_t IntsNeeded(size_t max_pois) const;

  /// Packs an answer (<= 255 POIs) into exactly `width` integers, padding
  /// with zeros. Requires width >= IntsNeeded(points.size()).
  Result<std::vector<BigInt>> Encode(const std::vector<Point>& points,
                                     size_t width) const;

  /// Inverse of Encode. Trailing padding is ignored.
  Result<std::vector<Point>> Decode(const std::vector<BigInt>& ints) const;

  /// Wire size in bytes of one plaintext integer (= key_bits / 8).
  size_t PlaintextBytes() const { return static_cast<size_t>(key_bits_) / 8; }

 private:
  int key_bits_;
  int slots_first_;
  int slots_rest_;
};

/// Quantizes a coordinate in [0, 1] to 32-bit fixed point (saturating).
uint32_t QuantizeCoord(double value);
/// Inverse of QuantizeCoord (midpoint reconstruction not needed; exact
/// grid values round-trip).
double DequantizeCoord(uint32_t fixed);

}  // namespace ppgnn

#endif  // PPGNN_CRYPTO_POI_CODEC_H_
