#include "crypto/paillier.h"

#include <algorithm>
#include <array>

#include "bigint/modular.h"
#include "bigint/prime.h"
#include "common/failpoint.h"

// ppgnn: secret(lambda, p, q, sk_, crt_p_pow, crt_q_pow, crt_p_engine, crt_q_engine)
//
// The crt_* members are precomputed from the secret factors (moduli
// p^{s+1}/q^{s+1} and the fixed-base tables over them), so they carry the
// same taint as p and q themselves: control flow branches on the `crt` /
// `crt_engines` configuration booleans instead, never on these values.

namespace ppgnn {

namespace {
// Highest memoized power of N: level-3 ciphertexts (the deepest any test
// or protocol path goes) live in Z_{N^4}.
constexpr int kMaxCachedNPow = 4;
// Guards lazy creation and fills of every NPowCache. NPow is off the hot
// path (Encryptor/Decryptor hold their own per-level caches), so one
// global mutex is plenty.
std::mutex g_npow_mu;
}  // namespace

struct PublicKey::NPowCache {
  BigInt n;  // modulus the powers below were computed for
  std::array<BigInt, kMaxCachedNPow + 1> pow;
  std::array<bool, kMaxCachedNPow + 1> ready{};
};

BigInt PublicKey::NPow(int s) const {
  if (s <= 0) return BigInt(1);
  if (s > kMaxCachedNPow) {
    BigInt out = NPow(kMaxCachedNPow);
    for (int i = kMaxCachedNPow; i < s; ++i) out = out * n;
    return out;
  }
  std::lock_guard<std::mutex> lock(g_npow_mu);
  if (npow_cache_ == nullptr || npow_cache_->n != n) {
    npow_cache_ = std::make_shared<NPowCache>();
    npow_cache_->n = n;
  }
  NPowCache& cache = *npow_cache_;
  for (int i = 1; i <= s; ++i) {
    if (!cache.ready[i]) {
      cache.pow[i] = i == 1 ? n : cache.pow[i - 1] * n;
      cache.ready[i] = true;
    }
  }
  return cache.pow[s];
}

Result<KeyPair> GenerateKeyPair(int key_bits, Rng& rng) {
  if (key_bits < 64 || key_bits % 2 != 0) {
    return Status::InvalidArgument(
        "key_bits must be even and >= 64 (got " + std::to_string(key_bits) +
        ")");
  }
  const int half = key_bits / 2;
  while (true) {
    PPGNN_ASSIGN_OR_RETURN(BigInt p, GeneratePrime(half, rng));
    PPGNN_ASSIGN_OR_RETURN(BigInt q, GeneratePrime(half, rng));
    // ppgnn-lint: allow(secret-flow): key-generation retry loop; rejecting p == q reveals nothing beyond the published modulus structure
    if (p == q) continue;
    BigInt n = p * q;
    // Force exact modulus size (top bits of p*q can fall one short).
    if (n.BitLength() != key_bits) continue;
    // gcd(n, (p-1)(q-1)) == 1 holds automatically for distinct primes of
    // equal size, but verify defensively.
    BigInt p1 = p - BigInt(1);
    BigInt q1 = q - BigInt(1);
    if (Gcd(n, p1 * q1) != BigInt(1)) continue;
    KeyPair keys;
    keys.pub.n = n;
    keys.pub.key_bits = key_bits;
    keys.sec.lambda = Lcm(p1, q1);
    keys.sec.p = std::move(p);
    keys.sec.q = std::move(q);
    return keys;
  }
}

Encryptor::Encryptor(PublicKey pk)
    : Encryptor(std::move(pk), EncryptorOptions()) {}

Encryptor::Encryptor(PublicKey pk, const EncryptorOptions& options)
    : pk_(std::move(pk)), opts_(options) {
  // Eagerly derive the ε_1/ε_2 caches (N^2 and N^3 with their Montgomery
  // contexts): every protocol hot path uses one of them, and eager
  // construction keeps parallel selection workers from contending on
  // first touch. The blinding machinery stays lazy — evaluation-only
  // Encryptors (the LSP's selection path) never encrypt, so they never
  // pay for the h_s derivation or the fixed-base tables.
  Level(1);
  Level(2);
}

Encryptor::Encryptor(const KeyPair& keys, const EncryptorOptions& options)
    : pk_(keys.pub),
      opts_(options),
      sk_(std::make_unique<SecretKey>(keys.sec)) {
  Level(1);
  Level(2);
}

const Encryptor::LevelCache& Encryptor::Level(int level) const {
  const size_t idx = static_cast<size_t>(level < 0 ? 0 : level);
  std::lock_guard<std::mutex> lock(level_mu_);
  if (levels_.size() <= idx) levels_.resize(idx + 1);
  std::unique_ptr<LevelCache>& slot = levels_[idx];
  if (slot == nullptr) {
    auto cache = std::make_unique<LevelCache>();
    cache->n_s = pk_.NPow(static_cast<int>(idx));
    cache->modulus = cache->n_s * pk_.n;
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(cache->modulus);
    if (ctx.ok()) {
      cache->ctx = std::make_unique<MontgomeryContext>(std::move(ctx).value());
    }
    slot = std::move(cache);
  }
  return *slot;
}

const BigInt& Encryptor::Modulus(int level) const {
  return Level(level).modulus;
}

namespace {

// (1+N)^m mod N^{s+1} via the binomial expansion: sum_{i=0}^{s} C(m,i) N^i.
// Exact because N^{s+1} kills all higher terms. C(m,i) is computed as the
// falling factorial times (i!)^{-1} mod N^{s+1} (i! is a unit mod N).
Result<BigInt> OnePlusNToM(const BigInt& m, const BigInt& n, int s,
                           const BigInt& mod) {
  // s = 1 closed form (1 + mN): the general loop below reduces to it,
  // but skipping the ModInverse of 1! keeps the pooled online path — an
  // embedding plus one multiply — free of extended-gcd work.
  if (s == 1) return (BigInt(1) + ModMul(m, n, mod)).Mod(mod);
  BigInt acc(1);           // i = 0 term
  BigInt n_pow(1);         // N^i
  BigInt falling(1);       // m (m-1) ... (m-i+1)
  BigInt factorial(1);     // i!
  for (int i = 1; i <= s; ++i) {
    n_pow = (n_pow * n).Mod(mod);
    falling = (falling * (m - BigInt(static_cast<int64_t>(i - 1)))).Mod(mod);
    factorial = factorial * BigInt(static_cast<int64_t>(i));
    PPGNN_ASSIGN_OR_RETURN(BigInt fact_inv, ModInverse(factorial, mod));
    BigInt term = ModMul(ModMul(falling, fact_inv, mod), n_pow, mod);
    acc = (acc + term).Mod(mod);
  }
  return acc;
}

}  // namespace

Result<const Encryptor::LevelCache::Blinding*> Encryptor::EnsureBlinding(
    int level) const {
  const LevelCache& lc = Level(level);
  std::lock_guard<std::mutex> lock(level_mu_);
  if (lc.blinding != nullptr) return lc.blinding.get();
  auto b = std::make_unique<LevelCache::Blinding>();
  // h_s = g^{N^s} mod N^{s+1} with g = 2: a unit modulo every odd
  // semiprime N, and deterministic — the base (hence every fixed-base
  // table derived from it) is a pure function of the public key.
  const BigInt g(2);
  if (lc.ctx != nullptr) {
    PPGNN_ASSIGN_OR_RETURN(b->h, ModExp(g, lc.n_s, *lc.ctx));
  } else {
    PPGNN_ASSIGN_OR_RETURN(b->h, ModExp(g, lc.n_s, lc.modulus));
  }
  if (opts_.use_fixed_base && lc.ctx != nullptr) {
    // Shared process-wide: every Encryptor over this key (and every
    // request-scoped Encryptor the workload layer creates) reuses one
    // table build. Null on registry failure -> generic ladder below.
    b->engine = SharedFixedBaseEngine(b->h, lc.modulus, BlindingExponentBits(),
                                      opts_.fixed_base_window);
  }
  // ppgnn-lint: allow(secret-flow): branches on key presence (role), not bits
  if (sk_ != nullptr && opts_.use_crt) {
    // CRT split mirroring the decrypt side: blind mod p^{s+1} and
    // q^{s+1} at half width, recombine. Exact, so bit-identical to the
    // direct h^t mod N^{s+1}.
    BigInt p_pow(1);
    BigInt q_pow(1);
    for (int i = 0; i <= level; ++i) {
      p_pow = p_pow * sk_->p;
      q_pow = q_pow * sk_->q;
    }
    Result<MontgomeryContext> p_ctx = MontgomeryContext::Create(p_pow);
    Result<MontgomeryContext> q_ctx = MontgomeryContext::Create(q_pow);
    if (p_ctx.ok() && q_ctx.ok()) {
      b->crt_p_pow = std::move(p_pow);
      b->crt_q_pow = std::move(q_pow);
      b->crt_p_ctx =
          std::make_unique<MontgomeryContext>(std::move(p_ctx).value());
      b->crt_q_ctx =
          std::make_unique<MontgomeryContext>(std::move(q_ctx).value());
      b->crt = true;
      if (opts_.use_fixed_base) {
        b->crt_p_engine =
            SharedFixedBaseEngine(b->h.Mod(b->crt_p_pow), b->crt_p_pow,
                                  BlindingExponentBits(),
                                  opts_.fixed_base_window);
        b->crt_q_engine =
            SharedFixedBaseEngine(b->h.Mod(b->crt_q_pow), b->crt_q_pow,
                                  BlindingExponentBits(),
                                  opts_.fixed_base_window);
        b->crt_engines =
            b->crt_p_engine != nullptr && b->crt_q_engine != nullptr;
      }
    }
  }
  lc.blinding = std::move(b);
  return lc.blinding.get();
}

Result<BigInt> Encryptor::MakeBlinding(int level, Rng& rng) const {
  const LevelCache& lc = Level(level);
  PPGNN_ASSIGN_OR_RETURN(const LevelCache::Blinding* b, EnsureBlinding(level));
  // One fixed-width draw regardless of path: the bit-identity guarantee
  // (naive == fixed-base == CRT on the same RNG stream) requires every
  // configuration to consume the same randomness AND compute the same
  // exact residue h_s^t.
  const BigInt t = BigInt::Random(BlindingExponentBits(), rng);
  op_count_.fetch_add(1, std::memory_order_relaxed);
  if (b->crt) {
    BigInt blind_p;
    BigInt blind_q;
    if (b->crt_engines) {
      fixed_base_evals_.fetch_add(1, std::memory_order_relaxed);
      PPGNN_ASSIGN_OR_RETURN(blind_p, b->crt_p_engine->Pow(t));
      PPGNN_ASSIGN_OR_RETURN(blind_q, b->crt_q_engine->Pow(t));
    } else {
      generic_evals_.fetch_add(1, std::memory_order_relaxed);
      PPGNN_ASSIGN_OR_RETURN(
          blind_p, ModExp(b->h.Mod(b->crt_p_pow), t, *b->crt_p_ctx));
      PPGNN_ASSIGN_OR_RETURN(
          blind_q, ModExp(b->h.Mod(b->crt_q_pow), t, *b->crt_q_ctx));
    }
    return CrtCombine(blind_p, b->crt_p_pow, blind_q, b->crt_q_pow);
  }
  if (b->engine != nullptr) {
    fixed_base_evals_.fetch_add(1, std::memory_order_relaxed);
    return b->engine->Pow(t);
  }
  generic_evals_.fetch_add(1, std::memory_order_relaxed);
  if (lc.ctx != nullptr) return ModExp(b->h, t, *lc.ctx);
  return ModExp(b->h, t, lc.modulus);
}

Status Encryptor::RefillBlindingPool(int level, size_t count, Rng& rng,
                                     size_t target,
                                     size_t* refilled) const {
  if (refilled != nullptr) *refilled = 0;
  if (level < 1) return Status::InvalidArgument("ciphertext level must be >= 1");
  const size_t idx = static_cast<size_t>(level);
  // Claim the quota under the lock *before* exponentiating. Without the
  // claim, two refillers can both observe a low watermark, both compute
  // a full batch outside the lock, and jointly over-fill the pool past
  // target — work and memory the pool will never drain.
  size_t claimed = count;
  if (target != 0) {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (pools_.size() <= idx) pools_.resize(idx + 1);
    if (pending_refills_.size() <= idx) pending_refills_.resize(idx + 1);
    const size_t committed = pools_[idx].size() + pending_refills_[idx];
    claimed = committed >= target ? 0 : std::min(count, target - committed);
    pending_refills_[idx] += claimed;
  }
  if (claimed == 0) return Status::OK();
  // The expensive exponentiations run outside the pool lock so request
  // threads encrypting concurrently never block on the offline batch.
  std::vector<BigInt> fresh;
  fresh.reserve(claimed);
  Status status = Status::OK();
  for (size_t i = 0; i < claimed; ++i) {
    Result<BigInt> blind = MakeBlinding(level, rng);
    if (!blind.ok()) {
      status = blind.status();
      break;
    }
    fresh.push_back(std::move(blind).value());
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pools_.size() <= idx) pools_.resize(idx + 1);
  auto& pool = pools_[idx];
  const size_t produced = fresh.size();
  for (BigInt& blind : fresh) pool.push_back(std::move(blind));
  if (target != 0) pending_refills_[idx] -= claimed;
  refilled_.fetch_add(produced, std::memory_order_relaxed);
  if (refilled != nullptr) *refilled = produced;
  return status;
}

size_t Encryptor::PooledBlindingCount(int level) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (level < 1 || pools_.size() <= static_cast<size_t>(level)) return 0;
  return pools_[static_cast<size_t>(level)].size();
}

Encryptor::BlindingStats Encryptor::blinding_stats() const {
  BlindingStats stats;
  stats.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  stats.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  stats.refilled = refilled_.load(std::memory_order_relaxed);
  stats.fixed_base_evals = fixed_base_evals_.load(std::memory_order_relaxed);
  stats.generic_evals = generic_evals_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (const auto& pool : pools_) stats.pooled += pool.size();
  }
  {
    std::lock_guard<std::mutex> lock(level_mu_);
    for (const auto& lc : levels_) {
      if (lc == nullptr || lc->blinding == nullptr) continue;
      const LevelCache::Blinding& b = *lc->blinding;
      if (b.engine != nullptr) stats.table_bytes += b.engine->table_bytes();
      if (b.crt_engines) {
        stats.table_bytes += b.crt_p_engine->table_bytes();
        stats.table_bytes += b.crt_q_engine->table_bytes();
      }
    }
  }
  return stats;
}

Result<Ciphertext> Encryptor::Encrypt(const BigInt& m, Rng& rng,
                                      int level) const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("paillier.encrypt"));
  if (level < 1) return Status::InvalidArgument("ciphertext level must be >= 1");
  const LevelCache& lc = Level(level);
  const BigInt m_red = m.Mod(lc.n_s);

  PPGNN_ASSIGN_OR_RETURN(BigInt g_pow,
                         OnePlusNToM(m_red, pk_.n, level, lc.modulus));

  // Blinding factor h_s^t: pooled (offline/online split) or computed
  // online — on the fixed-base path when the engine exists, so pool
  // exhaustion degrades to the fast online cost, not the naive ladder.
  BigInt blind;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (static_cast<size_t>(level) < pools_.size() &&
        !pools_[static_cast<size_t>(level)].empty()) {
      auto& pool = pools_[static_cast<size_t>(level)];
      blind = std::move(pool.back());
      pool.pop_back();
      pooled = true;
    }
  }
  if (pooled) {
    pool_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pool_misses_.fetch_add(1, std::memory_order_relaxed);
    PPGNN_ASSIGN_OR_RETURN(blind, MakeBlinding(level, rng));
  }

  Ciphertext out;
  out.value = ModMul(g_pow, blind, lc.modulus);
  out.level = level;
  return out;
}

Result<Ciphertext> Encryptor::Add(const Ciphertext& a,
                                  const Ciphertext& b) const {
  if (a.level != b.level)
    return Status::InvalidArgument("homomorphic Add on mismatched levels");
  Ciphertext out;
  out.level = a.level;
  out.value = ModMul(a.value, b.value, Modulus(a.level));
  op_count_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<Ciphertext> Encryptor::ScalarMul(const BigInt& x,
                                        const Ciphertext& c) const {
  if (x.IsNegative())
    return Status::InvalidArgument("ScalarMul requires non-negative scalar");
  const LevelCache& lc = Level(c.level);
  Ciphertext out;
  out.level = c.level;
  if (lc.ctx != nullptr) {
    PPGNN_ASSIGN_OR_RETURN(out.value, ModExp(c.value, x, *lc.ctx));
  } else {
    PPGNN_ASSIGN_OR_RETURN(out.value, ModExp(c.value, x, lc.modulus));
  }
  op_count_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<Ciphertext> Encryptor::DotProduct(
    const std::vector<BigInt>& x, const std::vector<Ciphertext>& v) const {
  if (x.size() != v.size())
    return Status::InvalidArgument("DotProduct dimension mismatch");
  PPGNN_ASSIGN_OR_RETURN(DotEngine engine, MakeDotEngine(v));
  return engine.Dot(x);
}

Result<Ciphertext> Encryptor::DotProductNaive(
    const std::vector<BigInt>& x, const std::vector<Ciphertext>& v) const {
  if (x.size() != v.size())
    return Status::InvalidArgument("DotProduct dimension mismatch");
  if (v.empty()) return Status::InvalidArgument("DotProduct on empty vectors");
  const int level = v[0].level;
  Ciphertext acc = Zero(level);
  for (size_t i = 0; i < x.size(); ++i) {
    if (v[i].level != level)
      return Status::InvalidArgument("DotProduct on mismatched levels");
    if (x[i].IsZero()) continue;
    PPGNN_ASSIGN_OR_RETURN(Ciphertext term, ScalarMul(x[i], v[i]));
    PPGNN_ASSIGN_OR_RETURN(acc, Add(acc, term));
  }
  return acc;
}

Result<Encryptor::DotEngine> Encryptor::MakeDotEngine(
    const std::vector<Ciphertext>& v) const {
  if (v.empty()) return Status::InvalidArgument("DotProduct on empty vectors");
  const int level = v[0].level;
  for (const Ciphertext& c : v) {
    if (c.level != level)
      return Status::InvalidArgument("DotProduct on mismatched levels");
  }
  DotEngine engine;
  engine.enc_ = this;
  engine.level_ = level;
  engine.size_ = v.size();
  const LevelCache& lc = Level(level);
  if (lc.ctx != nullptr) {
    std::vector<BigInt> bases;
    bases.reserve(v.size());
    for (const Ciphertext& c : v) bases.push_back(c.value);
    PPGNN_ASSIGN_OR_RETURN(MultiExpEngine multi,
                           MultiExpEngine::Create(lc.ctx.get(), bases));
    engine.engine_ = std::make_unique<MultiExpEngine>(std::move(multi));
  } else {
    // Degenerate (even-modulus) key: keep the ladder-based reference path.
    engine.fallback_v_ = v;
  }
  return engine;
}

Result<Ciphertext> Encryptor::DotEngine::Dot(
    const std::vector<BigInt>& x) const {
  if (x.size() != size_)
    return Status::InvalidArgument("DotProduct dimension mismatch");
  if (engine_ == nullptr) return enc_->DotProductNaive(x, fallback_v_);
  size_t nonzero = 0;
  for (const BigInt& xi : x) {
    if (xi.IsNegative())
      return Status::InvalidArgument("ScalarMul requires non-negative scalar");
    if (!xi.IsZero()) ++nonzero;
  }
  PPGNN_ASSIGN_OR_RETURN(BigInt value, engine_->Eval(x));
  // Cost-model parity with the naive chain: one ScalarMul + one Add per
  // non-zero term.
  enc_->op_count_.fetch_add(2 * nonzero, std::memory_order_relaxed);
  Ciphertext out;
  out.value = std::move(value);
  out.level = level_;
  return out;
}

Result<Ciphertext> Encryptor::Rerandomize(const Ciphertext& c,
                                          Rng& rng) const {
  PPGNN_ASSIGN_OR_RETURN(Ciphertext zero, Encrypt(BigInt(0), rng, c.level));
  return Add(c, zero);
}

Ciphertext Encryptor::Zero(int level) const {
  Ciphertext out;
  out.level = level;
  out.value = BigInt(1);  // (1+N)^0 * 1^{N^s}
  return out;
}

Decryptor::Decryptor(PublicKey pk, SecretKey sk, bool use_crt)
    : pk_(std::move(pk)), sk_(std::move(sk)), use_crt_(use_crt) {
  // Eagerly derive the ε_1 cache — every protocol decryption touches it.
  Level(1);
}

const Decryptor::LevelCache& Decryptor::Level(int s) const {
  const size_t idx = static_cast<size_t>(s < 1 ? 1 : s);
  std::lock_guard<std::mutex> lock(level_mu_);
  if (levels_.size() <= idx) levels_.resize(idx + 1);
  std::unique_ptr<LevelCache>& slot = levels_[idx];
  if (slot == nullptr) {
    auto cache = std::make_unique<LevelCache>();
    const BigInt n_s = pk_.NPow(static_cast<int>(idx));
    const BigInt modulus = n_s * pk_.n;  // N^{s+1}
    cache->p_pow = BigInt(1);
    cache->q_pow = BigInt(1);
    for (size_t i = 0; i <= idx; ++i) {
      cache->p_pow = cache->p_pow * sk_.p;
      cache->q_pow = cache->q_pow * sk_.q;
    }
    auto adopt = [](Result<MontgomeryContext> ctx)
        -> std::unique_ptr<MontgomeryContext> {
      if (!ctx.ok()) return nullptr;
      return std::make_unique<MontgomeryContext>(std::move(ctx).value());
    };
    cache->p_ctx = adopt(MontgomeryContext::Create(cache->p_pow));
    cache->q_ctx = adopt(MontgomeryContext::Create(cache->q_pow));
    cache->n_ctx = adopt(MontgomeryContext::Create(modulus));
    cache->lambda_inv = ModInverse(sk_.lambda, n_s);
    slot = std::move(cache);
  }
  return *slot;
}

Result<BigInt> Decryptor::PowLambda(const BigInt& c, int s) const {
  const LevelCache& lv = Level(s);
  if (!use_crt_) {
    if (lv.n_ctx != nullptr) return ModExp(c, sk_.lambda, *lv.n_ctx);
    return ModExp(c, sk_.lambda, pk_.NPow(s + 1));
  }
  // CRT split: exponentiate modulo p^{s+1} and q^{s+1} (half-width
  // arithmetic), then recombine. p^{s+1} and q^{s+1} are coprime and
  // their product is N^{s+1}.
  BigInt a_p, a_q;
  if (lv.p_ctx != nullptr) {
    PPGNN_ASSIGN_OR_RETURN(a_p, ModExp(c.Mod(lv.p_pow), sk_.lambda, *lv.p_ctx));
  } else {
    PPGNN_ASSIGN_OR_RETURN(a_p, ModExp(c.Mod(lv.p_pow), sk_.lambda, lv.p_pow));
  }
  if (lv.q_ctx != nullptr) {
    PPGNN_ASSIGN_OR_RETURN(a_q, ModExp(c.Mod(lv.q_pow), sk_.lambda, *lv.q_ctx));
  } else {
    PPGNN_ASSIGN_OR_RETURN(a_q, ModExp(c.Mod(lv.q_pow), sk_.lambda, lv.q_pow));
  }
  return CrtCombine(a_p, lv.p_pow, a_q, lv.q_pow);
}

namespace internal {

Result<BigInt> ExtractDjLog(const BigInt& a, const BigInt& n, int s) {
  // Damgård-Jurik recursive extraction of x from (1+N)^x mod N^{s+1}.
  BigInt i(0);
  BigInt n_pow_j(1);  // n^j inside the loop
  for (int j = 1; j <= s; ++j) {
    n_pow_j = n_pow_j * n;
    const BigInt n_pow_j1 = n_pow_j * n;  // n^{j+1}
    // t1 = L(a mod n^{j+1}) = ((a mod n^{j+1}) - 1) / n; exact by construction.
    BigInt reduced = a.Mod(n_pow_j1);
    PPGNN_ASSIGN_OR_RETURN(auto qr, BigInt::DivMod(reduced - BigInt(1), n));
    if (!qr.second.IsZero())
      return Status::CryptoError("DJ extraction: value not of form (1+N)^x");
    BigInt t1 = std::move(qr.first);
    BigInt t2 = i;
    BigInt factorial(1);
    BigInt n_pow_k(1);  // n^{k-1}
    for (int k = 2; k <= j; ++k) {
      i = i - BigInt(1);
      t2 = ModMul(t2, i, n_pow_j);
      factorial = factorial * BigInt(static_cast<int64_t>(k));
      n_pow_k = n_pow_k * n;
      PPGNN_ASSIGN_OR_RETURN(BigInt fact_inv, ModInverse(factorial, n_pow_j));
      BigInt term = ModMul(ModMul(t2, n_pow_k, n_pow_j), fact_inv, n_pow_j);
      t1 = (t1 - term).Mod(n_pow_j);
    }
    i = std::move(t1);
  }
  return i;
}

}  // namespace internal

Result<BigInt> Decryptor::Decrypt(const Ciphertext& c) const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("paillier.decrypt"));
  const int s = c.level;
  if (s < 1) return Status::InvalidArgument("ciphertext level must be >= 1");
  const LevelCache& lv = Level(s);
  // c^lambda = (1+N)^{lambda * m} mod N^{s+1}; the blinding term vanishes.
  PPGNN_ASSIGN_OR_RETURN(BigInt a, PowLambda(c.value, s));
  PPGNN_ASSIGN_OR_RETURN(BigInt lambda_m, internal::ExtractDjLog(a, pk_.n, s));
  PPGNN_RETURN_IF_ERROR(lv.lambda_inv.status());
  return ModMul(lambda_m, lv.lambda_inv.value(), pk_.NPow(s));
}

Result<BigInt> Decryptor::DecryptLayered(const Ciphertext& outer) const {
  if (outer.level != 2)
    return Status::InvalidArgument("DecryptLayered expects a level-2 ciphertext");
  PPGNN_ASSIGN_OR_RETURN(BigInt inner_value, Decrypt(outer));
  Ciphertext inner;
  inner.value = std::move(inner_value);
  inner.level = 1;
  return Decrypt(inner);
}

}  // namespace ppgnn
