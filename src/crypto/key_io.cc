#include "crypto/key_io.h"

#include <fstream>

#include "bigint/modular.h"
#include "common/bytes.h"

// ppgnn: secret(lambda, p, q, sec)

namespace ppgnn {
namespace {

void PutBigInt(ByteWriter& w, const BigInt& v) { w.PutBytes(v.ToBytes()); }

Result<BigInt> GetBigInt(ByteReader& r) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, r.GetBytes());
  return BigInt::FromBytes(bytes);
}

Status ValidateKeyPair(const KeyPair& keys) {
  if (keys.pub.n.BitLength() != keys.pub.key_bits)
    return Status::CryptoError("public key is not full width");
  // ppgnn-lint: allow(secret-flow): owner-side integrity check after key import; attacker never observes this branch
  if (keys.sec.p * keys.sec.q != keys.pub.n)
    return Status::CryptoError("N != p*q: corrupted key material");
  BigInt lambda =
      Lcm(keys.sec.p - BigInt(1), keys.sec.q - BigInt(1));
  // ppgnn-lint: allow(secret-flow): owner-side integrity check after key import; attacker never observes this branch
  if (lambda != keys.sec.lambda)
    return Status::CryptoError("lambda != lcm(p-1, q-1)");
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> SerializePublicKey(const PublicKey& pk) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(pk.key_bits));
  PutBigInt(w, pk.n);
  return w.Release();
}

Result<PublicKey> DeserializePublicKey(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  PublicKey pk;
  PPGNN_ASSIGN_OR_RETURN(uint32_t key_bits, r.GetU32());
  pk.key_bits = static_cast<int>(key_bits);
  PPGNN_ASSIGN_OR_RETURN(pk.n, GetBigInt(r));
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after key");
  if (pk.key_bits < 64 || pk.n.BitLength() != pk.key_bits)
    return Status::CryptoError("public key is not full width");
  return pk;
}

std::vector<uint8_t> SerializeKeyPair(const KeyPair& keys) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(keys.pub.key_bits));
  PutBigInt(w, keys.pub.n);
  PutBigInt(w, keys.sec.lambda);
  PutBigInt(w, keys.sec.p);
  PutBigInt(w, keys.sec.q);
  return w.Release();
}

Result<KeyPair> DeserializeKeyPair(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  KeyPair keys;
  PPGNN_ASSIGN_OR_RETURN(uint32_t key_bits, r.GetU32());
  keys.pub.key_bits = static_cast<int>(key_bits);
  PPGNN_ASSIGN_OR_RETURN(keys.pub.n, GetBigInt(r));
  PPGNN_ASSIGN_OR_RETURN(keys.sec.lambda, GetBigInt(r));
  PPGNN_ASSIGN_OR_RETURN(keys.sec.p, GetBigInt(r));
  PPGNN_ASSIGN_OR_RETURN(keys.sec.q, GetBigInt(r));
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes after key");
  PPGNN_RETURN_IF_ERROR(ValidateKeyPair(keys));
  return keys;
}

Status SaveKeyPair(const std::string& path, const KeyPair& keys) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::Internal("cannot write " + path);
  std::vector<uint8_t> bytes = SerializeKeyPair(keys);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<KeyPair> LoadKeyPair(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return DeserializeKeyPair(bytes);
}

}  // namespace ppgnn
