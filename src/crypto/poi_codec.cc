#include "crypto/poi_codec.h"

#include <cmath>

namespace ppgnn {

uint32_t QuantizeCoord(double value) {
  if (value <= 0.0) return 0;
  if (value >= 1.0) return 0xffffffffu;
  return static_cast<uint32_t>(std::lround(value * 4294967295.0));
}

double DequantizeCoord(uint32_t fixed) {
  return static_cast<double>(fixed) / 4294967295.0;
}

PoiCodec::PoiCodec(int key_bits) : key_bits_(key_bits) {
  // Usable payload bits: key_bits - 1 keeps every packed value < 2^(kb-1)
  // and therefore strictly below N (N has its top bit set).
  slots_first_ = (key_bits - 1 - 8) / 64;
  slots_rest_ = (key_bits - 1) / 64;
}

size_t PoiCodec::IntsNeeded(size_t max_pois) const {
  if (max_pois <= static_cast<size_t>(slots_first_)) return 1;
  size_t rest = max_pois - static_cast<size_t>(slots_first_);
  return 1 + (rest + slots_rest_ - 1) / slots_rest_;
}

Result<std::vector<BigInt>> PoiCodec::Encode(const std::vector<Point>& points,
                                             size_t width) const {
  if (points.size() > 255)
    return Status::InvalidArgument("answer too long for 8-bit length header");
  if (width < IntsNeeded(points.size()))
    return Status::InvalidArgument("Encode width too small for answer");

  std::vector<BigInt> out;
  out.reserve(width);

  auto slot_value = [](const Point& p) {
    uint64_t slot = (static_cast<uint64_t>(QuantizeCoord(p.y)) << 32) |
                    QuantizeCoord(p.x);
    return slot;
  };

  size_t next = 0;  // next POI to pack
  // First integer: 8-bit count header in the low bits, then slots.
  {
    BigInt packed(static_cast<uint64_t>(points.size()));
    for (int s = 0; s < slots_first_ && next < points.size(); ++s, ++next) {
      packed = packed + (BigInt(slot_value(points[next])) << (8 + 64 * s));
    }
    out.push_back(std::move(packed));
  }
  while (out.size() < width) {
    BigInt packed(0);
    for (int s = 0; s < slots_rest_ && next < points.size(); ++s, ++next) {
      packed = packed + (BigInt(slot_value(points[next])) << (64 * s));
    }
    out.push_back(std::move(packed));
  }
  if (next != points.size())
    return Status::Internal("PoiCodec::Encode failed to pack all POIs");
  return out;
}

Result<std::vector<Point>> PoiCodec::Decode(
    const std::vector<BigInt>& ints) const {
  if (ints.empty()) return Status::InvalidArgument("Decode on empty answer");
  uint64_t count = (ints[0] % BigInt(static_cast<uint64_t>(256))).Low64();
  size_t needed = IntsNeeded(count);
  if (ints.size() < needed)
    return Status::InvalidArgument("Decode: answer shorter than its header");

  auto slot_point = [](uint64_t slot) {
    Point p;
    p.x = DequantizeCoord(static_cast<uint32_t>(slot & 0xffffffffu));
    p.y = DequantizeCoord(static_cast<uint32_t>(slot >> 32));
    return p;
  };

  std::vector<Point> out;
  out.reserve(count);
  size_t taken = 0;
  BigInt first = ints[0] >> 8;
  for (int s = 0; s < slots_first_ && taken < count; ++s, ++taken) {
    out.push_back(slot_point((first >> (64 * s)).Low64()));
  }
  for (size_t i = 1; i < ints.size() && taken < count; ++i) {
    for (int s = 0; s < slots_rest_ && taken < count; ++s, ++taken) {
      out.push_back(slot_point((ints[i] >> (64 * s)).Low64()));
    }
  }
  if (taken != count)
    return Status::Internal("PoiCodec::Decode did not recover all POIs");
  return out;
}

}  // namespace ppgnn
