// Generalized Paillier cryptosystem (Damgård-Jurik, PKC 2001).
//
// The scheme family ε_s encrypts plaintexts in Z_{N^s} into ciphertexts in
// Z*_{N^{s+1}}:
//
//   Enc_s(m; r) = (1+N)^m * r^{N^s}  mod N^{s+1}
//
// with N = p*q a product of two large primes. All levels share one key
// pair. The paper (Section 3.1, Section 6) uses s = 1 for the PPGNN
// indicator vector and s = 2 for the outer layer of the PPGNN-OPT
// two-phase selection, where a level-1 *ciphertext* (an element of
// Z_{N^2}) is treated as a level-2 *plaintext*.
//
// Supported homomorphisms (used by Theorem 3.1's private selection):
//   Add:       Enc(m1) * Enc(m2)        = Enc(m1 + m2)
//   ScalarMul: Enc(m)^x                 = Enc(x * m)
//   Dot:       prod_i Enc(v_i)^{x_i}    = Enc(<x, v>)
//
// Encryption uses the (1+N)^m binomial fast path; decryption uses
// Damgård-Jurik's recursive discrete-log extraction. Both are exact for
// any s >= 1.
//
// Blinding: the random term r^{N^s} is drawn as h_s^t for the fixed
// public base h_s = g^{N^s} mod N^{s+1} (g = 2, a unit modulo every odd
// semiprime N) and a fresh (key_bits + 64)-bit exponent t — the standard
// Damgård-Jurik Section 4.2 shortcut. h_s^t ranges over the N^s-th
// residues with a bias negligible in the 64 slack bits, so ciphertext
// indistinguishability rests on the same DCR assumption as the scheme
// itself. What the shortcut buys is a *fixed* base that lives as long as
// the key: the exponentiation runs on a shared fixed-base window table
// (bigint/fixedbase.h) instead of a full square-and-multiply ladder,
// and secret-key holders additionally split it across p^{s+1} / q^{s+1}
// with CRT recombination, mirroring the decrypt side. Every
// configuration (generic ladder, fixed-base, CRT) computes the same
// exact residue h_s^t, so ciphertexts are bit-identical for the same
// RNG stream regardless of EncryptorOptions — the chaos/dedup/replay
// machinery depends on that, and paillier_test enforces it.
//
// Exponentiation engine: an Encryptor (and Decryptor) owns one
// MontgomeryContext per ciphertext level (and per CRT modulus), built
// once and reused by every homomorphic operation, so no hot call ever
// re-derives R^2 mod n. DotProduct evaluates the whole row as one
// simultaneous multi-exponentiation (bigint/multiexp.h); DotEngine
// additionally shares the per-ciphertext window tables across the m rows
// of an answer matrix. All of this is an evaluation-order change over
// exact residue arithmetic: results are bit-identical to the naive
// ScalarMul/Add chain, which DotProductNaive retains as the reference.

#ifndef PPGNN_CRYPTO_PAILLIER_H_
#define PPGNN_CRYPTO_PAILLIER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/fixedbase.h"
#include "bigint/multiexp.h"
#include "common/random.h"
#include "common/status.h"

namespace ppgnn {

/// Public key: the modulus N and its bit size.
struct PublicKey {
  BigInt n;
  int key_bits = 0;

  /// N^s (s >= 1). Memoized (thread-safe) for s <= 4 — the highest power
  /// any supported ciphertext level touches; the cache rides along with
  /// copies of the key.
  BigInt NPow(int s) const;

  /// Wire size in bytes of a level-s ciphertext: ceil((s+1)*key_bits / 8).
  /// Ceiling, not truncation: a modulus whose bit length is not a multiple
  /// of 8 still needs its partial top byte on the wire.
  size_t CiphertextBytes(int level) const {
    return (static_cast<size_t>(level + 1) * static_cast<size_t>(key_bits) +
            7) /
           8;
  }
  /// Byte size of the serialized public key (ceiling of key_bits / 8).
  size_t ByteSize() const { return (static_cast<size_t>(key_bits) + 7) / 8; }

 private:
  struct NPowCache;
  // Shared across copies (the cached powers depend only on n; validity is
  // re-checked against n on every lookup, so post-copy mutation of n is
  // safe — it just forks a fresh cache).
  mutable std::shared_ptr<NPowCache> npow_cache_;
};

/// Secret key: Carmichael value lambda = lcm(p-1, q-1) plus the factors.
struct SecretKey {
  BigInt lambda;
  BigInt p;
  BigInt q;
};

struct KeyPair {
  PublicKey pub;
  SecretKey sec;
};

/// A Damgård-Jurik ciphertext, tagged with its level s (plaintext space
/// Z_{N^s}, ciphertext space Z*_{N^{s+1}}).
struct Ciphertext {
  BigInt value;
  int level = 1;

  /// Wire size given the key that produced it.
  size_t ByteSize(const PublicKey& pk) const { return pk.CiphertextBytes(level); }
};

/// Generates a fresh key pair with an N of exactly `key_bits` bits.
/// key_bits must be even and >= 64 (use >= 1024 for real privacy; tests
/// use small keys for speed).
Result<KeyPair> GenerateKeyPair(int key_bits, Rng& rng);

/// Blinding-path knobs. The default is the fast configuration; the
/// alternatives exist as differential references (every configuration
/// produces bit-identical ciphertexts for the same RNG stream).
struct EncryptorOptions {
  /// Evaluate h_s^t on shared fixed-base window tables. false = the
  /// retained generic-ladder reference path.
  bool use_fixed_base = true;
  /// Table digit width in bits; 0 = auto (see bigint/fixedbase.h).
  int fixed_base_window = 0;
  /// Split blinding across p^{s+1}/q^{s+1} with CRT recombination.
  /// Only effective on Encryptors constructed with the secret key.
  bool use_crt = true;
};

/// Encryption/evaluation context bound to a public key. The RNG for
/// blinding randomness is passed per call. Holds one cached
/// MontgomeryContext per ciphertext level. Thread-safety contract: the
/// homomorphic operations (Add, ScalarMul, DotProduct, DotEngine::Dot)
/// AND Encrypt / Rerandomize / RefillBlindingPool are all safe to call
/// concurrently — the blinding pool is mutex-guarded precisely so a
/// dedicated background thread can keep it topped up while request
/// threads encrypt (service/blinding_refiller.h); lsp_service_test's
/// TSan tier exercises that combination.
class Encryptor {
 public:
  explicit Encryptor(PublicKey pk);
  Encryptor(PublicKey pk, const EncryptorOptions& options);
  /// Secret-key holder's context (the querying user owns the key pair in
  /// PPGNN): enables the CRT-accelerated blinding path. The secret key
  /// is copied; the Encryptor never exposes it.
  explicit Encryptor(const KeyPair& keys,
                     const EncryptorOptions& options = EncryptorOptions());

  const PublicKey& public_key() const { return pk_; }

  /// Encrypts m (reduced into Z_{N^level}) at the given level. Consumes
  /// randomness from `rng` only when the blinding pool for `level` is
  /// empty (one fixed-width draw), so a pool-exhausted Encrypt is
  /// byte-equivalent to a never-pooled one on the same RNG stream.
  Result<Ciphertext> Encrypt(const BigInt& m, Rng& rng, int level = 1) const;

  /// Homomorphic addition: Enc(m1 + m2). Levels must match.
  Result<Ciphertext> Add(const Ciphertext& a, const Ciphertext& b) const;

  /// Homomorphic scalar multiplication: Enc(x * m) from plaintext x >= 0.
  Result<Ciphertext> ScalarMul(const BigInt& x, const Ciphertext& c) const;

  /// Homomorphic dot product of a plaintext row with a ciphertext vector
  /// (Eqn 4 of the paper): Enc(sum_i x_i * v_i). Evaluated as one
  /// simultaneous multi-exponentiation; bit-identical to DotProductNaive.
  Result<Ciphertext> DotProduct(const std::vector<BigInt>& x,
                                const std::vector<Ciphertext>& v) const;

  /// The serial ScalarMul/Add reference chain for DotProduct. Retained as
  /// the correctness oracle (tests diff the engine against it) and as the
  /// fallback for degenerate public keys with an even modulus.
  Result<Ciphertext> DotProductNaive(const std::vector<BigInt>& x,
                                     const std::vector<Ciphertext>& v) const;

  /// A multi-exponentiation engine bound to a fixed ciphertext vector
  /// [v]: the per-ciphertext window tables are built once (in the
  /// Montgomery domain) and shared by every Dot() row evaluation — the
  /// A (x) [v] access pattern of Theorem 3.1, where the same encrypted
  /// indicator multiplies all m rows of the answer matrix. Borrows the
  /// Encryptor's cached context: must not outlive the Encryptor.
  /// Dot() is const and thread-safe.
  class DotEngine {
   public:
    /// Enc(sum_i x_i * v_i) for one plaintext row x.
    Result<Ciphertext> Dot(const std::vector<BigInt>& x) const;

    int level() const { return level_; }
    size_t size() const { return size_; }

   private:
    friend class Encryptor;
    DotEngine() = default;

    const Encryptor* enc_ = nullptr;
    int level_ = 1;
    size_t size_ = 0;
    // Engine path (odd modulus — every real Paillier key).
    std::unique_ptr<MultiExpEngine> engine_;
    // Fallback path: the ciphertexts themselves, fed to DotProductNaive.
    std::vector<Ciphertext> fallback_v_;
  };

  /// Builds a DotEngine over [v]. Errors on empty input or mismatched
  /// ciphertext levels.
  Result<DotEngine> MakeDotEngine(const std::vector<Ciphertext>& v) const;

  /// The trivial encryption of zero with no randomness (identity element of
  /// Add). Useful as an accumulator seed; NOT semantically secure alone.
  Ciphertext Zero(int level = 1) const;

  /// Re-randomizes a ciphertext: multiplies in a fresh encryption of zero,
  /// producing an unlinkable ciphertext of the same plaintext. One
  /// modular exponentiation — the unit "cryptographic operation" of
  /// mix/AV-net style protocols such as the GLP baseline.
  Result<Ciphertext> Rerandomize(const Ciphertext& c, Rng& rng) const;

  /// Number of modular multiplications performed so far (cost model hook).
  uint64_t op_count() const {
    return op_count_.load(std::memory_order_relaxed);
  }

  /// Offline phase of the offline/online split: generates `count`
  /// blinding factors h_s^t in one batch and appends them to the pool
  /// for `level`, so subsequent Encrypt calls are a cheap plaintext
  /// embedding plus one modular multiplication. The exponentiations run
  /// outside the pool lock — safe to call from a dedicated background
  /// thread (service/blinding_refiller.h) while other threads encrypt.
  ///
  /// When `target` is nonzero the refill is quota-claimed: the batch size
  /// is clamped under the pool lock so pooled + in-flight refills never
  /// exceed `target`, even when several refillers (per-shard encryptors,
  /// a background refiller racing manual top-ups) observe the same low
  /// watermark concurrently. `target == 0` keeps the old unconditional
  /// append. `refilled`, when non-null, receives the number of factors
  /// this call actually produced (<= count under a quota).
  Status RefillBlindingPool(int level, size_t count, Rng& rng,
                            size_t target = 0,
                            size_t* refilled = nullptr) const;

  /// Blinding factors currently pooled for `level`.
  size_t PooledBlindingCount(int level) const;

  /// Observability for the blinding pipeline (threaded into
  /// ServiceStats). Counter reads are racy-but-monotonic snapshots.
  struct BlindingStats {
    uint64_t pool_hits = 0;      ///< Encrypt served from the pool
    uint64_t pool_misses = 0;    ///< Encrypt fell through to an online path
    uint64_t refilled = 0;       ///< factors produced by RefillBlindingPool
    uint64_t fixed_base_evals = 0;  ///< h^t via fixed-base tables (CRT or not)
    uint64_t generic_evals = 0;     ///< h^t via the generic ladder
    size_t pooled = 0;           ///< currently pooled, summed over levels
    size_t table_bytes = 0;      ///< fixed-base tables reachable from here
  };
  BlindingStats blinding_stats() const;

 private:
  /// Everything the level-s hot path needs, derived once: N^s, N^{s+1},
  /// and the Montgomery context for N^{s+1} (null when the modulus is
  /// even — a degenerate key — in which case callers fall back to the
  /// generic ladder).
  struct LevelCache {
    BigInt n_s;      // N^level
    BigInt modulus;  // N^{level+1}
    std::unique_ptr<MontgomeryContext> ctx;

    /// Blinding-base machinery, built lazily on first use (evaluation-only
    /// Encryptors — e.g. the LSP's selection path — never pay for it):
    /// h = h_s, the shared fixed-base engine over it, and, for secret-key
    /// holders, the CRT split. Immutable once built; guarded by level_mu_
    /// during construction.
    struct Blinding {
      BigInt h;  // g^{N^s} mod N^{s+1}, g = 2
      std::shared_ptr<const FixedBaseEngine> engine;  // null on naive config
      // CRT split (crt == true only when all pieces exist).
      bool crt = false;
      bool crt_engines = false;  // fixed-base tables on both CRT halves
      BigInt crt_p_pow;  // p^{level+1}
      BigInt crt_q_pow;  // q^{level+1}
      std::unique_ptr<MontgomeryContext> crt_p_ctx;
      std::unique_ptr<MontgomeryContext> crt_q_ctx;
      std::shared_ptr<const FixedBaseEngine> crt_p_engine;
      std::shared_ptr<const FixedBaseEngine> crt_q_engine;
    };
    mutable std::unique_ptr<Blinding> blinding;
  };

  /// Lazily builds (then reuses) the cache for `level`. Thread-safe;
  /// levels 1 and 2 are built eagerly at construction so the selection
  /// worker threads never contend on first touch.
  const LevelCache& Level(int level) const;

  /// Lazily builds (then reuses) the blinding machinery for `level`.
  /// The returned pointer stays valid for the Encryptor's lifetime.
  Result<const LevelCache::Blinding*> EnsureBlinding(int level) const;

  /// Bit width of the blinding exponent t.
  int BlindingExponentBits() const { return pk_.key_bits + 64; }

  const BigInt& Modulus(int level) const;  // N^{level+1}
  Result<BigInt> MakeBlinding(int level, Rng& rng) const;

  PublicKey pk_;
  EncryptorOptions opts_;
  /// Secret key copy for the CRT blinding split; null for public-only
  /// Encryptors.
  std::unique_ptr<SecretKey> sk_;
  mutable std::atomic<uint64_t> op_count_{0};
  mutable std::mutex level_mu_;
  // ppgnn: guarded_by(levels_, level_mu_)
  mutable std::vector<std::unique_ptr<LevelCache>> levels_;
  // pools_[level] holds ready-made h_s^t mod N^{level+1} values. Guarded
  // by pool_mu_ (see the class comment's thread-safety contract).
  mutable std::mutex pool_mu_;
  // ppgnn: guarded_by(pools_, pool_mu_)
  mutable std::vector<std::vector<BigInt>> pools_;
  // pending_refills_[level]: factors claimed by in-flight quota-bounded
  // RefillBlindingPool calls that have not landed in pools_ yet. Also
  // guarded by pool_mu_; the quota check counts pool.size() + pending so
  // concurrent refillers cannot jointly overshoot a target.
  // ppgnn: guarded_by(pending_refills_, pool_mu_)
  mutable std::vector<size_t> pending_refills_;
  // Blinding pipeline counters (see BlindingStats); relaxed by design.
  // ppgnn: stat_counter(op_count_, pool_hits_, pool_misses_, refilled_)
  // ppgnn: stat_counter(fixed_base_evals_, generic_evals_)
  mutable std::atomic<uint64_t> pool_hits_{0};
  mutable std::atomic<uint64_t> pool_misses_{0};
  mutable std::atomic<uint64_t> refilled_{0};
  mutable std::atomic<uint64_t> fixed_base_evals_{0};
  mutable std::atomic<uint64_t> generic_evals_{0};
};

/// Decryption context bound to a key pair.
///
/// By default decryption runs the exponentiation c^lambda separately
/// modulo p^{s+1} and q^{s+1} and recombines by CRT — about twice as fast
/// as working modulo N^{s+1} directly (half-width modular multiplies).
/// Pass use_crt = false to force the direct path (kept for differential
/// testing). Per-level moduli, Montgomery contexts, and lambda inverses
/// are derived once and cached (thread-safe).
class Decryptor {
 public:
  Decryptor(PublicKey pk, SecretKey sk, bool use_crt = true);

  /// Recovers the plaintext in Z_{N^level}.
  Result<BigInt> Decrypt(const Ciphertext& c) const;

  /// Decrypts a level-2 ciphertext whose plaintext is itself a level-1
  /// ciphertext (the PPGNN-OPT layered construction), then decrypts that
  /// inner ciphertext, returning the innermost plaintext in Z_N.
  Result<BigInt> DecryptLayered(const Ciphertext& outer) const;

 private:
  /// Per-level decryption constants: p^{s+1}/q^{s+1} with their
  /// Montgomery contexts (CRT path), the N^{s+1} context (direct path),
  /// and lambda^{-1} mod N^s.
  struct LevelCache {
    BigInt p_pow;  // p^{s+1}
    BigInt q_pow;  // q^{s+1}
    std::unique_ptr<MontgomeryContext> p_ctx;
    std::unique_ptr<MontgomeryContext> q_ctx;
    std::unique_ptr<MontgomeryContext> n_ctx;  // modulus N^{s+1}
    Result<BigInt> lambda_inv = Status::Internal("unset");  // mod N^s
  };

  /// Lazily builds (then reuses) the cache for level `s`. Thread-safe.
  const LevelCache& Level(int s) const;

  /// c^lambda mod N^{s+1}, via CRT when enabled.
  Result<BigInt> PowLambda(const BigInt& c, int s) const;

  PublicKey pk_;
  SecretKey sk_;
  bool use_crt_;
  mutable std::mutex level_mu_;
  // ppgnn: guarded_by(levels_, level_mu_)
  mutable std::vector<std::unique_ptr<LevelCache>> levels_;
};

namespace internal {
/// Recovers x from (1+N)^x mod N^{s+1} (Damgård-Jurik's recursive
/// extraction). Exposed for testing.
Result<BigInt> ExtractDjLog(const BigInt& a, const BigInt& n, int s);
}  // namespace internal

}  // namespace ppgnn

#endif  // PPGNN_CRYPTO_PAILLIER_H_
