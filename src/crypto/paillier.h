// Generalized Paillier cryptosystem (Damgård-Jurik, PKC 2001).
//
// The scheme family ε_s encrypts plaintexts in Z_{N^s} into ciphertexts in
// Z*_{N^{s+1}}:
//
//   Enc_s(m; r) = (1+N)^m * r^{N^s}  mod N^{s+1}
//
// with N = p*q a product of two large primes. All levels share one key
// pair. The paper (Section 3.1, Section 6) uses s = 1 for the PPGNN
// indicator vector and s = 2 for the outer layer of the PPGNN-OPT
// two-phase selection, where a level-1 *ciphertext* (an element of
// Z_{N^2}) is treated as a level-2 *plaintext*.
//
// Supported homomorphisms (used by Theorem 3.1's private selection):
//   Add:       Enc(m1) * Enc(m2)        = Enc(m1 + m2)
//   ScalarMul: Enc(m)^x                 = Enc(x * m)
//   Dot:       prod_i Enc(v_i)^{x_i}    = Enc(<x, v>)
//
// Encryption uses the (1+N)^m binomial fast path; decryption uses
// Damgård-Jurik's recursive discrete-log extraction. Both are exact for
// any s >= 1.

#ifndef PPGNN_CRYPTO_PAILLIER_H_
#define PPGNN_CRYPTO_PAILLIER_H_

#include <atomic>
#include <vector>

#include "bigint/bigint.h"
#include "common/random.h"
#include "common/status.h"

namespace ppgnn {

/// Public key: the modulus N and its bit size.
struct PublicKey {
  BigInt n;
  int key_bits = 0;

  /// N^s (s >= 1), cached by callers where hot.
  BigInt NPow(int s) const;

  /// Wire size in bytes of a level-s ciphertext: (s+1) * key_bits / 8.
  size_t CiphertextBytes(int level) const {
    return static_cast<size_t>(level + 1) * static_cast<size_t>(key_bits) / 8;
  }
  /// Byte size of the serialized public key.
  size_t ByteSize() const { return static_cast<size_t>(key_bits) / 8; }
};

/// Secret key: Carmichael value lambda = lcm(p-1, q-1) plus the factors.
struct SecretKey {
  BigInt lambda;
  BigInt p;
  BigInt q;
};

struct KeyPair {
  PublicKey pub;
  SecretKey sec;
};

/// A Damgård-Jurik ciphertext, tagged with its level s (plaintext space
/// Z_{N^s}, ciphertext space Z*_{N^{s+1}}).
struct Ciphertext {
  BigInt value;
  int level = 1;

  /// Wire size given the key that produced it.
  size_t ByteSize(const PublicKey& pk) const { return pk.CiphertextBytes(level); }
};

/// Generates a fresh key pair with an N of exactly `key_bits` bits.
/// key_bits must be even and >= 64 (use >= 1024 for real privacy; tests
/// use small keys for speed).
Result<KeyPair> GenerateKeyPair(int key_bits, Rng& rng);

/// Encryption/evaluation context bound to a public key. Thread-compatible;
/// the RNG for blinding randomness is passed per call.
class Encryptor {
 public:
  explicit Encryptor(PublicKey pk);

  const PublicKey& public_key() const { return pk_; }

  /// Encrypts m (reduced into Z_{N^level}) at the given level.
  Result<Ciphertext> Encrypt(const BigInt& m, Rng& rng, int level = 1) const;

  /// Homomorphic addition: Enc(m1 + m2). Levels must match.
  Result<Ciphertext> Add(const Ciphertext& a, const Ciphertext& b) const;

  /// Homomorphic scalar multiplication: Enc(x * m) from plaintext x >= 0.
  Result<Ciphertext> ScalarMul(const BigInt& x, const Ciphertext& c) const;

  /// Homomorphic dot product of a plaintext row with a ciphertext vector
  /// (Eqn 4 of the paper): Enc(sum_i x_i * v_i). Skips x_i == 0 terms.
  Result<Ciphertext> DotProduct(const std::vector<BigInt>& x,
                                const std::vector<Ciphertext>& v) const;

  /// The trivial encryption of zero with no randomness (identity element of
  /// Add). Useful as an accumulator seed; NOT semantically secure alone.
  Ciphertext Zero(int level = 1) const;

  /// Re-randomizes a ciphertext: multiplies in a fresh encryption of zero,
  /// producing an unlinkable ciphertext of the same plaintext. One
  /// modular exponentiation — the unit "cryptographic operation" of
  /// mix/AV-net style protocols such as the GLP baseline.
  Result<Ciphertext> Rerandomize(const Ciphertext& c, Rng& rng) const;

  /// Number of modular multiplications performed so far (cost model hook).
  uint64_t op_count() const {
    return op_count_.load(std::memory_order_relaxed);
  }

  /// Offline phase: precomputes `count` blinding factors r^{N^level} so
  /// that subsequent Encrypt calls at that level are a cheap plaintext
  /// embedding plus one modular multiplication. This is the classic
  /// Paillier offline/online split; the mobile-user cost of PPGNN's
  /// indicator encryption drops by ~an order of magnitude when the pool
  /// is warm (see bench_micro).
  Status PrecomputeBlinding(size_t count, Rng& rng, int level = 1) const;

  /// Blinding factors currently pooled for `level`.
  size_t PooledBlindingCount(int level) const;

 private:
  BigInt Modulus(int level) const;  // N^{level+1}
  Result<BigInt> MakeBlinding(int level, Rng& rng) const;

  PublicKey pk_;
  mutable std::atomic<uint64_t> op_count_{0};
  // pools_[level] holds ready-made r^{N^level} mod N^{level+1} values.
  // NOT thread-safe; only the homomorphic operations (Add, ScalarMul,
  // DotProduct) may be called concurrently.
  mutable std::vector<std::vector<BigInt>> pools_;
};

/// Decryption context bound to a key pair.
///
/// By default decryption runs the exponentiation c^lambda separately
/// modulo p^{s+1} and q^{s+1} and recombines by CRT — about twice as fast
/// as working modulo N^{s+1} directly (half-width modular multiplies).
/// Pass use_crt = false to force the direct path (kept for differential
/// testing).
class Decryptor {
 public:
  Decryptor(PublicKey pk, SecretKey sk, bool use_crt = true);

  /// Recovers the plaintext in Z_{N^level}.
  Result<BigInt> Decrypt(const Ciphertext& c) const;

  /// Decrypts a level-2 ciphertext whose plaintext is itself a level-1
  /// ciphertext (the PPGNN-OPT layered construction), then decrypts that
  /// inner ciphertext, returning the innermost plaintext in Z_N.
  Result<BigInt> DecryptLayered(const Ciphertext& outer) const;

 private:
  /// c^lambda mod N^{s+1}, via CRT when enabled.
  Result<BigInt> PowLambda(const BigInt& c, int s) const;

  PublicKey pk_;
  SecretKey sk_;
  BigInt lambda_inv_n_;  // lambda^{-1} mod N (level-1 fast path)
  bool use_crt_;
};

namespace internal {
/// Recovers x from (1+N)^x mod N^{s+1} (Damgård-Jurik's recursive
/// extraction). Exposed for testing.
Result<BigInt> ExtractDjLog(const BigInt& a, const BigInt& n, int s);
}  // namespace internal

}  // namespace ppgnn

#endif  // PPGNN_CRYPTO_PAILLIER_H_
