// Serialization of Paillier key material.
//
// Wire/disk format (little-endian framing via ByteWriter):
//   PublicKey: u32 key_bits, length-prefixed big-endian N
//   KeyPair:   PublicKey, then length-prefixed lambda, p, q
//
// Deserialization validates the algebra (N = p*q, lambda = lcm(p-1,q-1),
// full key width), so a corrupted or mismatched key file fails loudly
// instead of producing garbage ciphertexts.

#ifndef PPGNN_CRYPTO_KEY_IO_H_
#define PPGNN_CRYPTO_KEY_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/paillier.h"

namespace ppgnn {

std::vector<uint8_t> SerializePublicKey(const PublicKey& pk);
[[nodiscard]] Result<PublicKey> DeserializePublicKey(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> SerializeKeyPair(const KeyPair& keys);
[[nodiscard]] Result<KeyPair> DeserializeKeyPair(const std::vector<uint8_t>& bytes);

/// Writes/reads the KeyPair format to a file. The file holds the SECRET
/// key; callers own its protection.
[[nodiscard]] Status SaveKeyPair(const std::string& path, const KeyPair& keys);
[[nodiscard]] Result<KeyPair> LoadKeyPair(const std::string& path);

}  // namespace ppgnn

#endif  // PPGNN_CRYPTO_KEY_IO_H_
