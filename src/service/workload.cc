#include "service/workload.h"

#include <optional>

#include "common/failpoint.h"
#include "core/candidate.h"
#include "core/dummy.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "core/wire.h"
#include "crypto/poi_codec.h"

namespace ppgnn {

Result<ServiceRequest> BuildServiceRequest(
    Variant variant, const ProtocolParams& params,
    const std::vector<Point>& real_locations, const KeyPair& keys, Rng& rng,
    const RequestWireOptions& wire, const Encryptor* encryptor) {
  PPGNN_RETURN_IF_ERROR(params.Validate());
  if (encryptor != nullptr && !(encryptor->public_key().n == keys.pub.n))
    return Status::InvalidArgument(
        "encryptor does not wrap the request key pair");
  if (real_locations.size() != static_cast<size_t>(params.n))
    return Status::InvalidArgument("real_locations.size() != n");

  // Plan (Algorithm 1): solved partition for PPGNN/OPT, the flat
  // delta-sized single segment for Naive.
  PartitionPlan plan;
  int set_size = 0;
  if (variant == Variant::kNaive) {
    if (params.n == 1) {
      return Status::InvalidArgument(
          "the Naive variant is defined for group queries (n > 1)");
    }
    plan.alpha = 1;
    plan.n_bar = {params.n};
    plan.d_bar = {params.delta};
    plan.delta_prime = static_cast<uint64_t>(params.delta);
    set_size = params.delta;
  } else {
    PPGNN_ASSIGN_OR_RETURN(
        plan, SolvePartition(params.n, params.d, params.EffectiveDelta()));
    set_size = params.d;
  }

  // Segment chosen with probability d_bar[i] / d (Eqn 11), then one
  // position per subgroup inside it.
  int seg = 1;
  int64_t pick = rng.NextInRange(1, set_size);
  int64_t acc = 0;
  for (int i = 1; i <= plan.beta(); ++i) {
    acc += plan.d_bar[i - 1];
    if (pick <= acc) {
      seg = i;
      break;
    }
  }
  std::vector<int> x(plan.alpha);
  std::vector<int> pos(plan.alpha);
  for (int j = 0; j < plan.alpha; ++j) {
    x[j] = static_cast<int>(rng.NextInRange(1, plan.d_bar[seg - 1]));
    pos[j] = plan.SegmentOffset(seg) - 1 + x[j];
  }
  const uint64_t qi = QueryIndex(plan, seg, x);

  QueryMessage query;
  query.k = params.k;
  query.theta0 = params.theta0;
  query.aggregate = params.aggregate;
  query.plan = plan;
  query.pk = keys.pub;
  query.deadline_ms = wire.deadline_ms;
  query.idempotency_key = wire.idempotency_key;
  std::optional<Encryptor> own_enc;
  const Encryptor& enc =
      encryptor != nullptr ? *encryptor : own_enc.emplace(keys.pub);
  if (variant == Variant::kPpgnnOpt) {
    query.is_opt = true;
    PoiCodec codec(params.key_bits);
    const uint64_t omega =
        ChooseOmega(plan.delta_prime,
                    codec.IntsNeeded(static_cast<size_t>(params.k)));
    PPGNN_ASSIGN_OR_RETURN(
        query.opt_indicator,
        EncryptOptIndicator(enc, qi, plan.delta_prime, omega, rng));
  } else {
    PPGNN_ASSIGN_OR_RETURN(query.indicator,
                           EncryptIndicator(enc, qi, plan.delta_prime, rng));
  }

  ServiceRequest request;
  PPGNN_ASSIGN_OR_RETURN(request.query, query.Encode());

  std::vector<int> subgroup = SubgroupOfUser(plan);
  const DummyGenerator& dummies = params.dummy_generator != nullptr
                                      ? *params.dummy_generator
                                      : UniformDummies();
  request.uploads.reserve(static_cast<size_t>(params.n));
  for (int u = 0; u < params.n; ++u) {
    LocationSetMessage msg;
    msg.user_id = static_cast<uint32_t>(u);
    msg.locations.resize(static_cast<size_t>(set_size));
    if (FailpointDrop("user.upload")) {
      // Dropout degradation: the coordinator never received this user's
      // set, so it substitutes a synthetic one around a random anchor
      // (the dropped user's location is unknown to it). Same set size,
      // same encoded bytes per slot — wire shape is unchanged.
      const Point anchor{rng.NextDouble(), rng.NextDouble()};
      for (Point& p : msg.locations) {
        p = dummies.Generate(anchor, rng);
      }
      request.degraded_users++;
    } else {
      for (Point& p : msg.locations) {
        p = dummies.Generate(real_locations[u], rng);
      }
      msg.locations[pos[subgroup[u]] - 1] = real_locations[u];
    }
    request.uploads.push_back(msg.Encode());
  }
  return request;
}

Result<ServedReply> ParseServedReply(const std::vector<uint8_t>& frame_bytes,
                                     const KeyPair& keys,
                                     const Decryptor& dec, bool layered) {
  PPGNN_ASSIGN_OR_RETURN(ResponseFrame frame,
                         ResponseFrame::Decode(frame_bytes));
  ServedReply reply;
  if (frame.is_error) {
    reply.ok = false;
    reply.error = std::move(frame.error);
    return reply;
  }
  PPGNN_ASSIGN_OR_RETURN(AnswerMessage answer,
                         AnswerMessage::Decode(frame.answer, keys.pub));
  std::vector<BigInt> plain;
  plain.reserve(answer.ciphertexts.size());
  for (const Ciphertext& ct : answer.ciphertexts) {
    if (layered) {
      PPGNN_ASSIGN_OR_RETURN(BigInt value, dec.DecryptLayered(ct));
      plain.push_back(std::move(value));
    } else {
      PPGNN_ASSIGN_OR_RETURN(BigInt value, dec.Decrypt(ct));
      plain.push_back(std::move(value));
    }
  }
  PoiCodec codec(keys.pub.key_bits);
  PPGNN_ASSIGN_OR_RETURN(reply.pois, codec.Decode(plain));
  reply.ok = true;
  return reply;
}

}  // namespace ppgnn
