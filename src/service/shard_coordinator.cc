#include "service/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "core/candidate.h"
#include "core/sanitize.h"
#include "core/selection.h"
#include "core/wire.h"
#include "crypto/poi_codec.h"
#include "geo/aggregate.h"

namespace ppgnn {
namespace {

/// splitmix64 — derives the per-shard idempotency key from the parent
/// request's key so every retry/hedge of the same fan-out leg coalesces
/// at the shard, while different shards (and different parents) never
/// collide in practice.
uint64_t MixKey(uint64_t key, uint64_t shard) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ShardReply {
  bool responded = false;
  /// The set's ladder had to work (failover, hedge, or extra legs) but
  /// the shard still answered exactly.
  bool recovered = false;
  ShardAnswerMessage answer;
};

}  // namespace

std::vector<std::vector<Poi>> PartitionPoisForShards(std::vector<Poi> pois,
                                                     int shards) {
  const size_t s = static_cast<size_t>(std::max(shards, 1));
  std::sort(pois.begin(), pois.end(), [](const Poi& a, const Poi& b) {
    if (a.location.x != b.location.x) return a.location.x < b.location.x;
    if (a.location.y != b.location.y) return a.location.y < b.location.y;
    return a.id < b.id;
  });
  std::vector<std::vector<Poi>> slices(s);
  const size_t total = pois.size();
  size_t begin = 0;
  for (size_t j = 0; j < s; ++j) {
    // Slice sizes differ by at most one: ceil for the first total % s.
    const size_t end = begin + total / s + (j < total % s ? 1 : 0);
    slices[j].assign(pois.begin() + static_cast<ptrdiff_t>(begin),
                     pois.begin() + static_cast<ptrdiff_t>(end));
    begin = end;
  }
  return slices;
}

ShardedLspService::ShardedLspService(std::vector<Poi> pois,
                                     ShardClusterConfig config)
    : config_(std::move(config)) {
  std::vector<std::vector<Poi>> slices =
      PartitionPoisForShards(std::move(pois), config_.shards);
  sets_.reserve(slices.size());
  shard_mbrs_.reserve(slices.size());
  shard_sizes_.reserve(slices.size());
  for (size_t j = 0; j < slices.size(); ++j) {
    Rect mbr = Rect::Empty();
    for (const Poi& poi : slices[j]) mbr.ExpandToInclude(poi.location);
    shard_mbrs_.push_back(mbr);
    shard_sizes_.push_back(slices[j].size());
    ReplicaSetConfig set_config;
    set_config.replicas = std::max(config_.replicas, 1);
    set_config.service = config_.shard;
    set_config.link_policy = config_.link_policy;
    set_config.health = config_.health;
    set_config.hedge = config_.hedge;
    set_config.hedge_delay_seconds = config_.hedge_delay_seconds;
    set_config.link_factory = config_.link_factory;
    set_config.probe_timeout_seconds = config_.probe_timeout_seconds;
    sets_.push_back(std::make_unique<ReplicaSet>(
        static_cast<int>(j), std::move(slices[j]), std::move(set_config)));
  }
  if (config_.background_prober &&
      config_.health.probe_interval_seconds > 0.0) {
    prober_ = std::thread([this] { ProberLoop(); });
  }
  front_ = std::make_unique<LspService>(
      LspService::Handler([this](const ServiceRequest& request,
                                 const LspService::HandlerContext& ctx) {
        return HandleQuery(request, ctx);
      }),
      config_.front);
}

ShardedLspService::~ShardedLspService() { Shutdown(); }

void ShardedLspService::ProberLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      config_.health.probe_interval_seconds));
  std::unique_lock<std::mutex> lock(prober_mu_);
  for (;;) {
    if (prober_cv_.wait_for(lock, interval, [this] { return prober_stop_; }))
      return;
    lock.unlock();
    for (auto& set : sets_) set->ProbeOnce();
    lock.lock();
  }
}

bool ShardedLspService::Submit(ServiceRequest request,
                               LspService::Callback done) {
  return front_->Submit(std::move(request), std::move(done));
}

std::vector<uint8_t> ShardedLspService::Call(ServiceRequest request) {
  return front_->Call(std::move(request));
}

ServiceStats ShardedLspService::Stats() const {
  ServiceStats stats = front_->Stats();
  stats.degraded_shards = degraded_shards_.load(std::memory_order_relaxed);
  stats.exact_despite_failures =
      exact_despite_failures_.load(std::memory_order_relaxed);
  stats.replica_failovers = replica_failovers_.load(std::memory_order_relaxed);
  stats.replica_hedge_wins =
      replica_hedge_wins_.load(std::memory_order_relaxed);
  for (size_t j = 0; j < sets_.size(); ++j) {
    const ReplicaSetStats set_stats = sets_[j]->Stats();
    for (size_t r = 0; r < set_stats.replicas.size(); ++r) {
      const ReplicaSetStats::Replica& in = set_stats.replicas[r];
      ServiceStats::ReplicaRow row;
      row.shard = static_cast<int>(j);
      row.replica = static_cast<int>(r);
      row.health = static_cast<int>(in.health);
      row.served = in.served;
      row.failed_over = in.failed_over;
      row.hedge_won = in.hedge_won;
      row.transitions = in.transitions;
      stats.health_transitions += in.transitions;
      stats.replicas.push_back(row);
    }
  }
  return stats;
}

void ShardedLspService::Shutdown() {
  if (prober_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(prober_mu_);
      prober_stop_ = true;
    }
    prober_cv_.notify_all();
    prober_.join();
  }
  if (front_ != nullptr) front_->Shutdown();
  for (auto& set : sets_) set->Shutdown();
}

Result<std::vector<uint8_t>> ShardedLspService::HandleQuery(
    const ServiceRequest& request, const LspService::HandlerContext& ctx) {
  QueryInstrumentation local_info;
  QueryInstrumentation* info = ctx.info != nullptr ? ctx.info : &local_info;
  PPGNN_ASSIGN_OR_RETURN(QueryMessage query,
                         QueryMessage::Decode(request.query));
  info->delta_prime = query.plan.delta_prime;
  std::vector<LocationSet> sets(request.uploads.size());
  for (const auto& bytes : request.uploads) {
    PPGNN_ASSIGN_OR_RETURN(LocationSetMessage msg,
                           LocationSetMessage::Decode(bytes));
    if (msg.user_id >= sets.size())
      return Status::ProtocolError("upload from unknown user id");
    sets[msg.user_id] = std::move(msg.locations);
  }
  PPGNN_ASSIGN_OR_RETURN(
      std::vector<std::vector<Point>> candidates,
      GenerateCandidateQueries(query.plan, sets, ctx.cancel));

  const size_t shard_count = sets_.size();
  // Route: a shard holding >= k POIs bounds the global k-th cost by its
  // aggregate max-distance; a shard whose aggregate min-distance exceeds
  // the tightest such bound holds only strictly-worse POIs and is pruned
  // without affecting the merged answer (even under cost ties).
  std::vector<ShardQueryMessage> shard_queries(shard_count);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const std::vector<Point>& candidate = candidates[i];
    double bound = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < shard_count; ++j) {
      if (shard_sizes_[j] < static_cast<size_t>(query.k)) continue;
      bound = std::min(bound, AggregateMaxDistance(query.aggregate,
                                                   shard_mbrs_[j], candidate));
    }
    for (size_t j = 0; j < shard_count; ++j) {
      if (shard_sizes_[j] == 0) continue;
      if (AggregateMinDistance(query.aggregate, shard_mbrs_[j], candidate) >
          bound) {
        continue;
      }
      ShardQueryMessage::Candidate routed;
      routed.index = i;
      routed.locations = candidate;
      shard_queries[j].candidates.push_back(std::move(routed));
    }
  }

  // Remaining budget for the fan-out, propagated on every shard leg both
  // as the link's client-side budget and in the wire-v2 trailer.
  double remaining_seconds = 0.0;
  uint64_t remaining_ms = 0;
  if (ctx.deadline != LspService::Clock::time_point::max()) {
    remaining_seconds = std::chrono::duration<double>(
                            ctx.deadline - LspService::Clock::now())
                            .count();
    if (remaining_seconds <= 0.0) {
      return Status::DeadlineExceeded("shard cluster: budget exhausted");
    }
    remaining_ms = std::max<uint64_t>(
        1, static_cast<uint64_t>(remaining_seconds * 1000.0));
  }
  const uint64_t parent_key = request.idempotency_key != 0
                                  ? request.idempotency_key
                                  : query.idempotency_key;

  std::vector<ShardReply> replies(shard_count);
  std::vector<std::thread> scatter;
  size_t routed_shards = 0;
  for (size_t j = 0; j < shard_count; ++j) {
    if (shard_queries[j].candidates.empty()) continue;
    ++routed_shards;
    ShardQueryMessage& sq = shard_queries[j];
    sq.k = query.k;
    sq.aggregate = query.aggregate;
    sq.deadline_ms = remaining_ms;
    sq.idempotency_key = parent_key != 0 ? MixKey(parent_key, j) : 0;
    scatter.emplace_back([this, j, &sq, &replies, remaining_seconds]() {
      // The set-wide failpoint models losing the whole slice (every
      // replica at once) — the PR 7 dead-link scenario, and the only
      // way to reach the degraded-merge tier when R > 1.
      const std::string point = "shard.link." + std::to_string(j);
      if (!FailpointCheck(point.c_str()).ok()) return;
      Result<std::vector<uint8_t>> encoded = sq.Encode();
      if (!encoded.ok()) return;
      ServiceRequest sr;
      sr.query = std::move(encoded).value();
      sr.deadline_seconds = remaining_seconds;
      sr.idempotency_key = sq.idempotency_key;
      ReplicaCallOutcome outcome = sets_[j]->Call(sr, remaining_seconds);
      if (outcome.failed_over)
        replica_failovers_.fetch_add(1, std::memory_order_relaxed);
      if (outcome.hedge_won)
        replica_hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      if (!outcome.answered) return;
      Result<ResponseFrame> frame = ResponseFrame::Decode(outcome.frame);
      if (!frame.ok() || frame.value().is_error) return;
      Result<ShardAnswerMessage> answer =
          ShardAnswerMessage::Decode(frame.value().answer);
      if (!answer.ok()) return;
      replies[j].answer = std::move(answer).value();
      replies[j].responded = true;
      replies[j].recovered =
          outcome.failed_over || outcome.hedge_won || outcome.legs > 1;
    });
  }
  for (std::thread& t : scatter) t.join();

  size_t responded = 0;
  bool recovered = false;
  for (const ShardReply& reply : replies) {
    responded += reply.responded ? 1 : 0;
    recovered = recovered || reply.recovered;
  }
  if (routed_shards > 0 && responded == 0) {
    return Status::Internal("shard cluster: all routed shards unavailable");
  }
  if (responded < routed_shards) {
    // Last ladder tier: an entire replica set was unreachable, so this
    // merge is missing its slice.
    degraded_shards_.fetch_add(1, std::memory_order_relaxed);
  } else if (recovered) {
    // The ladder worked somewhere (failover, hedge, or extra legs) and
    // the merge still covers every routed shard: exact, despite failures.
    exact_despite_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  // Merge: concatenate per-candidate shard lists, order by (cost, poi id)
  // — the exact total order the single-node MBM emits — and truncate to k.
  std::vector<std::vector<RankedPoi>> merged(candidates.size());
  for (const ShardReply& reply : replies) {
    if (!reply.responded) continue;
    for (const ShardAnswerMessage::CandidateResult& result :
         reply.answer.candidates) {
      if (result.index >= merged.size())
        return Status::ProtocolError("shard answer for unknown candidate");
      for (const ShardAnswerMessage::Ranked& ranked : result.results) {
        merged[result.index].push_back(
            RankedPoi{Poi{ranked.poi_id, ranked.location}, ranked.cost});
      }
    }
  }
  for (std::vector<RankedPoi>& list : merged) {
    std::sort(list.begin(), list.end(),
              [](const RankedPoi& a, const RankedPoi& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.poi.id < b.poi.id;
              });
    if (list.size() > static_cast<size_t>(query.k)) {
      list.resize(static_cast<size_t>(query.k));
    }
  }

  // From here the pipeline is the single-node tail of Algorithm 2 over
  // the merged answers: sanitize (same per-candidate seed), pack, select.
  const bool effective_sanitize =
      config_.front.sanitize && request.uploads.size() > 1;
  AnswerSanitizer* sanitizer_ptr = nullptr;
  Result<AnswerSanitizer> sanitizer =
      Status::FailedPrecondition("sanitizer unused");
  if (effective_sanitize) {
    sanitizer = AnswerSanitizer::Create(query.theta0, config_.front.test_config);
    PPGNN_RETURN_IF_ERROR(sanitizer.status());
    sanitizer_ptr = &sanitizer.value();
  }

  Encryptor enc(query.pk);
  PoiCodec codec(query.pk.key_bits);
  const size_t m = codec.IntsNeeded(static_cast<size_t>(query.k));
  AnswerMatrix matrix;
  matrix.columns.resize(candidates.size());
  SanitizeStats sanitize_stats;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (ctx.cancel != nullptr &&
        ctx.cancel->load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded("shard cluster: merge abandoned");
    }
    std::vector<RankedPoi> answer = std::move(merged[i]);
    if (sanitizer_ptr != nullptr) {
      Rng candidate_rng(LspSanitizeSeed(candidates[i], query.k));
      answer = sanitizer_ptr->Sanitize(answer, candidates[i], query.aggregate,
                                       candidate_rng, &sanitize_stats,
                                       nullptr);
    }
    std::vector<Point> points;
    points.reserve(answer.size());
    for (const RankedPoi& rp : answer) points.push_back(rp.poi.location);
    PPGNN_ASSIGN_OR_RETURN(matrix.columns[i], codec.Encode(points, m));
  }
  info->sanitize_samples += sanitize_stats.samples_drawn;
  info->sanitize_tests += sanitize_stats.tests_run;

  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_acquire)) {
    return Status::DeadlineExceeded("shard cluster: abandoned before selection");
  }
  PPGNN_RETURN_IF_ERROR(FailpointCheck("lsp.select"));
  AnswerMessage out;
  if (query.is_opt) {
    PPGNN_ASSIGN_OR_RETURN(
        out.ciphertexts,
        PrivateSelectTwoPhase(enc, matrix, query.opt_indicator,
                              config_.front.lsp_threads, nullptr, ctx.cancel));
  } else {
    PPGNN_ASSIGN_OR_RETURN(
        out.ciphertexts,
        PrivateSelect(enc, matrix, query.indicator, config_.front.lsp_threads,
                      nullptr, ctx.cancel));
  }
  return out.Encode(query.pk);
}

}  // namespace ppgnn
