// Per-query execution-cost prediction for admission control.
//
// Admission has to decide "can this query finish inside its remaining
// deadline?" *before* any crypto runs, so the prediction is computed from
// public wire metadata only (the QueryWireHeader fields: delta', k,
// key_bits, the indicator shape) — never from `// ppgnn: secret` data.
//
// The model is an analytic seed calibrated against the numbers recorded
// in EXPERIMENTS.md (BM_DotProduct multi-exponentiation timings and the
// bench_service_throughput capacity runs), multiplied by an online
// correction: an EWMA of observed/predicted ratios, kept per cost bucket
// (log2 delta', key-size class, indicator kind) so a server that is
// faster or slower than the calibration machine converges onto its own
// truth within a few dozen queries — without the analytic shape (the
// delta' x m x key-cost scaling) ever being re-learned from scratch.
//
// Thread-safe; never reads a clock (observed durations are measured by
// the caller and passed in), so the determinism lint stays happy.

#ifndef PPGNN_SERVICE_COST_MODEL_H_
#define PPGNN_SERVICE_COST_MODEL_H_

#include <cstdint>
#include <mutex>

#include "core/wire.h"

namespace ppgnn {

/// The public wire facts a prediction is derived from. Constructible from
/// a QueryWireHeader (the admission path) or filled by hand (tests).
struct CostFeatures {
  uint64_t delta_prime = 0;  ///< candidate count
  int k = 0;                 ///< answer size (drives m via PoiCodec)
  int key_bits = 0;          ///< Paillier modulus bits
  bool is_opt = false;       ///< two-phase (PPGNN-OPT) indicator
  uint64_t omega = 0;        ///< OPT block count (0 for plain)

  static CostFeatures FromHeader(const QueryWireHeader& h);
};

/// Which implementation a Paillier encryption (or rerandomization) takes;
/// the per-ciphertext cost differs by orders of magnitude between them.
/// See BM_Encrypt_* in bench_micro.cc and EXPERIMENTS.md for the measured
/// curves behind AnalyticEncryptSeconds.
enum class EncryptPath {
  kNaive,      ///< fresh square-and-multiply blinding (seed behaviour)
  kFixedBase,  ///< shared Lim-Lee comb over the cached blinding base
  kCrt,        ///< fixed-base mod p^{s+1}/q^{s+1} + CRT (secret-key holder)
  kPooled,     ///< blinding factor popped from the offline pool
};

/// Analytic + EWMA-corrected execute-time predictor.
class CostModel {
 public:
  CostModel() = default;

  /// Predicted execute-stage wall seconds for one query at the service's
  /// configured thread count. Pure function of the features and the
  /// current EWMA state; clamped to a small positive floor.
  double PredictSeconds(const CostFeatures& f) const;

  /// Analytic prior alone (no EWMA correction). Exposed for tests and for
  /// the benchmark's model-error report.
  static double AnalyticSeconds(const CostFeatures& f);

  /// Measured per-ciphertext cost of one Paillier encryption at `level`
  /// (1 or 2) over a `key_bits` modulus via `path`. Constants come from
  /// the BM_Encrypt_* microbenches; exponentiation paths scale
  /// cubically in the modulus size (linear exponent width x quadratic
  /// multiply), the pooled path quadratically (two modular multiplies).
  /// Used to budget coordinator-side request building (ppgnn_cli --serve
  /// reports it) and to seed EWMA priors before the first observation.
  static double AnalyticEncryptSeconds(int key_bits, int level,
                                       EncryptPath path);

  /// Pre-seeds the EWMA bucket matching `f` as if `expected_seconds` had
  /// been observed once, without counting it in observations(). Later
  /// real observations take over at the normal EWMA rate. No-op for
  /// non-positive values or if the bucket already has data.
  void SeedPrior(const CostFeatures& f, double expected_seconds);

  /// Feeds back one completed query's measured execute seconds. Updates
  /// the matching bucket's EWMA of observed/analytic and a global
  /// fallback used by buckets that have no observations yet.
  void Observe(const CostFeatures& f, double execute_seconds);

  /// Number of Observe() calls so far (stats surface).
  uint64_t observations() const;

 private:
  // EWMA smoothing factor: ~12 observations to move 90% of the way to a
  // changed steady state — fast enough to track a thermal throttle, slow
  // enough that one outlier query cannot halve the admission rate.
  static constexpr double kAlpha = 0.2;
  static constexpr int kDeltaBuckets = 24;  // log2(delta') 0..23
  static constexpr int kKeyClasses = 4;     // <=512, 1024, 2048, >2048
  static constexpr int kKinds = 2;          // plain / OPT

  static int BucketIndex(const CostFeatures& f);

  mutable std::mutex mu_;
  // ppgnn: guarded_by(bucket_ratio_, mu_)
  double bucket_ratio_[kDeltaBuckets * kKeyClasses * kKinds] = {};
  // ppgnn: guarded_by(bucket_count_, mu_)
  uint64_t bucket_count_[kDeltaBuckets * kKeyClasses * kKinds] = {};
  // ppgnn: guarded_by(global_ratio_, mu_)
  double global_ratio_ = 1.0;
  // ppgnn: guarded_by(observations_, mu_)
  uint64_t observations_ = 0;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_COST_MODEL_H_
