// Client-side request construction for driving an LspService.
//
// Reproduces the coordinator side of Algorithm 1 (partition plan, segment
// and position draws, encrypted indicator, per-user location sets) and
// packages the result as a ServiceRequest, so closed-loop load generators
// (ppgnn_cli --serve, bench_service_throughput, lsp_service_test) can
// issue genuine protocol traffic without duplicating that logic.

#ifndef PPGNN_SERVICE_WORKLOAD_H_
#define PPGNN_SERVICE_WORKLOAD_H_

#include <vector>

#include "core/params.h"
#include "core/protocol.h"
#include "crypto/paillier.h"
#include "service/lsp_service.h"

namespace ppgnn {

/// Optional wire-version-2 fields stamped into the encoded QueryMessage
/// (zero = absent, producing byte-identical version-1 frames). Setting
/// them here — rather than on the ServiceRequest — exercises the real
/// end-to-end path: encoded into the query trailer, peeked by admission,
/// honored by the server.
struct RequestWireOptions {
  uint64_t deadline_ms = 0;
  uint64_t idempotency_key = 0;
};

/// Builds one well-formed group query + uploads under `keys` for the
/// given real locations (size params.n). Keys are caller-provided so a
/// load generator can reuse one pair across requests instead of paying
/// per-request key generation. `encryptor`, when non-null, must wrap
/// keys.pub and is used for the indicator ciphertexts instead of a
/// per-request Encryptor — pass a long-lived pooled instance (kept warm
/// by a BlindingRefiller) so request building pays the pooled online
/// cost instead of a fresh blinding exponentiation per ciphertext.
[[nodiscard]] Result<ServiceRequest> BuildServiceRequest(
    Variant variant, const ProtocolParams& params,
    const std::vector<Point>& real_locations, const KeyPair& keys, Rng& rng,
    const RequestWireOptions& wire = {}, const Encryptor* encryptor = nullptr);

/// What a client got back from the service.
struct ServedReply {
  bool ok = false;             ///< answer frame vs error frame
  std::vector<Point> pois;     ///< decrypted answer when ok
  ErrorMessage error;          ///< structured error when !ok
};

/// Decodes a ResponseFrame and, for answer frames, decrypts and decodes
/// the POI list. `layered` selects DecryptLayered (PPGNN-OPT replies).
/// Errors only on transport-level garbage; a structured service error is
/// a successful parse with ok = false.
[[nodiscard]] Result<ServedReply> ParseServedReply(const std::vector<uint8_t>& frame_bytes,
                                     const KeyPair& keys,
                                     const Decryptor& dec, bool layered);

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_WORKLOAD_H_
