// Idempotent reply coalescing for the LSP service.
//
// A hedged or retried duplicate carries the same client-chosen
// idempotency key as its original. Instead of re-running the crypto
// pipeline — doubling server load exactly when the server is slow —
// the duplicate either *joins* the in-flight original (its callback is
// fired with a copy of the original's frame when it completes) or
// *replays* the cached frame of an already-completed request.
//
// Semantics, chosen so client-visible retry behavior stays honest:
//   * Only answers are cached for replay. An error completion is
//     delivered to any joiners (they were racing the same doomed
//     execution) and the entry is dropped, so a later retry with the
//     same key runs fresh rather than replaying a stale failure.
//   * The cached frame is the pre-transport one: corruption injected on
//     one delivery leg must not poison the cache.
//   * Completed entries are evicted by TTL and by capacity (FIFO);
//     in-flight entries are never evicted.
//
// Thread-safe. Callbacks are never invoked under the internal lock —
// mutating calls return the waiters due and the caller delivers them.

#ifndef PPGNN_SERVICE_REPLY_CACHE_H_
#define PPGNN_SERVICE_REPLY_CACHE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ppgnn {

class ReplyCache {
 public:
  using Waiter = std::function<void(std::vector<uint8_t>)>;

  enum class Admission {
    kPrimary,   ///< first sighting: caller must execute and later Complete
    kJoined,    ///< duplicate of an in-flight key: waiter was enqueued
    kReplayed,  ///< duplicate of a completed key: frame returned now
  };

  struct Options {
    size_t capacity = 1024;     ///< completed entries kept for replay
    double ttl_seconds = 30.0;  ///< completed-entry lifetime
  };

  struct AdmitResult {
    Admission admission = Admission::kPrimary;
    std::vector<uint8_t> frame;  ///< set iff kReplayed
  };

  explicit ReplyCache(const Options& options);

  /// Routes one request. kPrimary leaves `waiter` with the caller (the
  /// primary replies through its normal path); kJoined keeps it until the
  /// primary's Complete/Abort.
  AdmitResult AdmitOrAttach(uint64_t key, Waiter waiter);

  /// Finishes the in-flight entry for `key`. Returns the joined waiters;
  /// the caller invokes each with its own copy of `frame`. When
  /// `cache_for_replay` is true (answers) the frame is kept for later
  /// kReplayed hits; otherwise (errors) the entry is dropped entirely.
  [[nodiscard]] std::vector<Waiter> Complete(uint64_t key,
                                             const std::vector<uint8_t>& frame,
                                             bool cache_for_replay);

  /// Drops an in-flight entry whose primary never executed (e.g. it lost
  /// the queue-capacity race after registration). Returns any waiters
  /// that joined in the meantime so the caller can error them out.
  [[nodiscard]] std::vector<Waiter> Abort(uint64_t key);

  size_t CompletedEntries() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    bool completed = false;
    std::vector<uint8_t> frame;       // valid when completed
    std::vector<Waiter> waiters;      // valid while in flight
    Clock::time_point completed_at{};
  };

  /// Drops expired / over-capacity completed entries. Requires mu_ held.
  void EvictLocked(Clock::time_point now);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::deque<uint64_t> completed_order_;  // FIFO eviction of completed keys
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_REPLY_CACHE_H_
