// Idempotent reply coalescing for the LSP service.
//
// A hedged or retried duplicate carries the same client-chosen
// idempotency key as its original. Instead of re-running the crypto
// pipeline — doubling server load exactly when the server is slow —
// the duplicate either *joins* the in-flight original (its callback is
// fired with a copy of the original's frame when it completes) or
// *replays* the cached frame of an already-completed request.
//
// Semantics, chosen so client-visible retry behavior stays honest:
//   * Only answers are cached for replay. An error completion is
//     delivered to any joiners (they were racing the same doomed
//     execution) and the entry is dropped, so a later retry with the
//     same key runs fresh rather than replaying a stale failure.
//   * The cached frame is the pre-transport one: corruption injected on
//     one delivery leg must not poison the cache.
//   * Completed entries are evicted by TTL and by capacity (FIFO).
//   * An in-flight entry lives until its primary Completes/Aborts it —
//     or until its deadline (plus a grace window) passes, at which point
//     it is presumed abandoned (worker cancelled at the deadline, shard
//     link died mid-fan-out) and purged, so the key does not replay as
//     an "in-flight join" to every future retry forever. Each in-flight
//     incarnation carries a generation token; a stale primary that
//     resurfaces after its entry was purged and re-admitted cannot
//     complete (or abort) the successor's entry.
//
// Thread-safe. Callbacks are never invoked under the internal lock —
// mutating calls return the waiters due and the caller delivers them.

#ifndef PPGNN_SERVICE_REPLY_CACHE_H_
#define PPGNN_SERVICE_REPLY_CACHE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ppgnn {

class ReplyCache {
 public:
  using Waiter = std::function<void(std::vector<uint8_t>)>;
  using Clock = std::chrono::steady_clock;

  enum class Admission {
    kPrimary,   ///< first sighting: caller must execute and later Complete
    kJoined,    ///< duplicate of an in-flight key: waiter was enqueued
    kReplayed,  ///< duplicate of a completed key: frame returned now
  };

  struct Options {
    size_t capacity = 1024;     ///< completed entries kept for replay
    double ttl_seconds = 30.0;  ///< completed-entry lifetime
    /// How long past its deadline an in-flight entry is still presumed
    /// alive (covers a worker that is just finishing up as the monitor
    /// cancels it). Beyond deadline + grace the entry counts as
    /// abandoned and is purged on the next admission that sees it.
    double in_flight_grace_seconds = 1.0;
  };

  struct AdmitResult {
    Admission admission = Admission::kPrimary;
    std::vector<uint8_t> frame;  ///< set iff kReplayed
    /// In-flight incarnation token, set iff kPrimary. The primary must
    /// pass it back to Complete/Abort; after a purge-and-readmit the key
    /// maps to a newer generation and the stale primary's calls no-op.
    uint64_t generation = 0;
    /// Waiters of *dead* in-flight entries purged during this admission
    /// (the successor's own key, or expired strangers swept in passing).
    /// The caller owes each a deadline-exceeded reply.
    std::vector<Waiter> expired_waiters;
  };

  explicit ReplyCache(const Options& options);

  /// Routes one request. kPrimary leaves `waiter` with the caller (the
  /// primary replies through its normal path); kJoined keeps it until the
  /// primary's Complete/Abort. `deadline` bounds the in-flight lifetime:
  /// past deadline + grace the entry is purgeable. The default (no
  /// deadline) keeps the entry alive until Complete/Abort, as before.
  AdmitResult AdmitOrAttach(
      uint64_t key, Waiter waiter,
      Clock::time_point deadline = Clock::time_point::max());

  /// Finishes the in-flight entry for `key`, provided `generation` still
  /// matches (a mismatch means the entry was purged as abandoned and the
  /// key re-admitted — the dead execution's frame must not reach the
  /// successor's waiters). Returns the joined waiters; the caller invokes
  /// each with its own copy of `frame`. When `cache_for_replay` is true
  /// (answers) the frame is kept for later kReplayed hits; otherwise
  /// (errors) the entry is dropped entirely.
  [[nodiscard]] std::vector<Waiter> Complete(uint64_t key, uint64_t generation,
                                             const std::vector<uint8_t>& frame,
                                             bool cache_for_replay);

  /// Drops an in-flight entry whose primary never executed (e.g. it lost
  /// the queue-capacity race after registration). Generation-checked like
  /// Complete. Returns any waiters that joined in the meantime so the
  /// caller can error them out.
  [[nodiscard]] std::vector<Waiter> Abort(uint64_t key, uint64_t generation);

  size_t CompletedEntries() const;
  size_t InFlightEntries() const;

 private:
  struct Entry {
    bool completed = false;
    std::vector<uint8_t> frame;       // valid when completed
    std::vector<Waiter> waiters;      // valid while in flight
    Clock::time_point completed_at{};
    Clock::time_point deadline = Clock::time_point::max();
    uint64_t generation = 0;
  };

  // ppgnn: requires(mu_)
  bool InFlightExpiredLocked(const Entry& entry, Clock::time_point now) const;

  /// Drops expired / over-capacity completed entries; when
  /// `expired_waiters` is non-null, also sweeps dead in-flight entries
  /// from the front of the admission-order queue, appending their
  /// waiters. Requires mu_ held.
  // ppgnn: requires(mu_)
  void EvictLocked(Clock::time_point now,
                   std::vector<Waiter>* expired_waiters);

  const Options options_;
  mutable std::mutex mu_;
  // ppgnn: guarded_by(entries_, mu_)
  std::unordered_map<uint64_t, Entry> entries_;
  // ppgnn: guarded_by(completed_order_, mu_)
  std::deque<uint64_t> completed_order_;  // FIFO eviction of completed keys
  // In-flight keys in admission order, tagged with the generation they
  // were admitted under so a purged-and-readmitted key is not swept by
  // its predecessor's queue position.
  // ppgnn: guarded_by(in_flight_order_, mu_)
  std::deque<std::pair<uint64_t, uint64_t>> in_flight_order_;
  // ppgnn: guarded_by(next_generation_, mu_)
  uint64_t next_generation_ = 1;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_REPLY_CACHE_H_
