// Adaptive concurrency limiting for the LSP service.
//
// A fixed worker-pool size is the wrong in-flight bound: the same pool
// that keeps 512-bit queries at a healthy p99 drives 2048-bit queries
// into multi-second queues, and vice versa. AimdLimiter replaces the
// static cap with the classic TCP control loop — additive increase while
// the execute-stage p99 sits under target, multiplicative decrease the
// moment a window's p99 blows through it — so the effective concurrency
// converges onto whatever the current workload mix can actually sustain.
//
// Decisions are made on completed-work latency windows, not on a clock,
// so the limiter is deterministic given the sequence of observed
// durations (the determinism lint bans ambient time here anyway).

#ifndef PPGNN_SERVICE_ADMISSION_H_
#define PPGNN_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ppgnn {

class AimdLimiter {
 public:
  struct Options {
    double target_p99_seconds = 0.5;  ///< execute-stage latency target
    int min_concurrency = 1;
    int max_concurrency = 64;
    int initial_concurrency = 4;
    int window = 32;  ///< completions per adjustment decision
    double decrease_factor = 0.7;
  };

  explicit AimdLimiter(const Options& options);

  /// Current admission bound on concurrently executing queries. Lock-free;
  /// workers read this before dequeuing work.
  int limit() const { return limit_.load(std::memory_order_acquire); }

  /// Feeds one completed execution's wall seconds. Every `window`
  /// completions the window's p99 is compared against the target and the
  /// limit adjusted: over target -> limit *= decrease_factor (floored at
  /// min), otherwise -> limit += 1 (capped at max).
  void OnComplete(double execute_seconds);

  // ppgnn: stat_counter(increases_, decreases_)
  uint64_t increases() const { return increases_.load(std::memory_order_relaxed); }
  uint64_t decreases() const { return decreases_.load(std::memory_order_relaxed); }

 private:
  Options options_;
  /// Admission decisions branch on this, so it is never relaxed:
  /// acquire/release keeps the window state that justified a new limit
  /// visible to the workers that act on it.
  std::atomic<int> limit_;
  std::atomic<uint64_t> increases_{0};
  std::atomic<uint64_t> decreases_{0};
  std::mutex mu_;
  // ppgnn: guarded_by(window_, mu_)
  std::vector<double> window_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_ADMISSION_H_
