// ResilientClient: the coordinator-side survival kit for a flaky LSP.
//
// LspService gave the server structured errors, deadlines, and admission
// control; this is the client that can actually live with them. One
// Call() owns a total deadline budget and, inside it:
//
//   * Retries: transient failures (kOverloaded, kDeadlineExceeded, and
//     transport garbage — a reply that fails frame decode) are retried
//     with capped exponential backoff plus seeded jitter, as long as the
//     budget has room. When an overloaded reply carries a retry_after_ms
//     hint, the hint replaces the exponential schedule (the server knows
//     its backlog better than our guess), still capped against the
//     remaining budget. Terminal failures (kMalformed, kInternal) are
//     returned immediately: resending a malformed query cannot help.
//   * Hedging (optional): if the primary attempt is silent past a delay
//     derived from the client's own observed p99 (or a configured one),
//     a second identical request is submitted and the first decisive
//     reply wins. Every attempt and hedge of one Call() carries the same
//     client-generated idempotency key, so the server coalesces
//     duplicates instead of re-running the crypto pipeline.
//   * Circuit breaker (optional): after `breaker_threshold` consecutive
//     decisive failures (terminal or structured-overloaded replies) the
//     breaker opens and attempts fast-fail locally with a synthesized
//     kOverloaded frame — no load added to a struggling server. After
//     the cooldown one half-open probe attempt is let through; its
//     outcome closes or re-opens the breaker.
//   * Budget: every attempt carries the *remaining* budget as its
//     per-request deadline, so the server stops working for us the
//     moment our caller would no longer accept the answer.
//
// The client never invents answers: Call() returns either a decodable
// answer frame or a decodable structured error frame (synthesizing one
// locally only when the final reply was transport garbage or the
// breaker fast-failed).

#ifndef PPGNN_SERVICE_RESILIENT_CLIENT_H_
#define PPGNN_SERVICE_RESILIENT_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/latency.h"
#include "service/link.h"
#include "service/lsp_service.h"

namespace ppgnn {

struct RetryPolicy {
  /// Attempts per Call(), counting the first (>= 1). Hedges do not count.
  int max_attempts = 4;
  /// Total wall-clock budget per Call(); 0 = unlimited (attempts-bound).
  double total_budget_seconds = 0.0;
  /// Backoff before attempt i+1 is
  /// min(initial * multiplier^i, max) * (1 ± jitter).
  double initial_backoff_seconds = 0.005;
  double max_backoff_seconds = 0.25;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.2;
  /// Enables the hedged second request.
  bool hedge = false;
  /// Fixed hedge delay; 0 = derive from this client's observed p99.
  double hedge_delay_seconds = 0.0;
  /// Bounds for the derived delay (too-small hedges stampede the queue;
  /// the fallback covers the cold start before any p99 exists).
  double min_hedge_delay_seconds = 0.001;
  double fallback_hedge_delay_seconds = 0.05;
  /// Stamp every attempt/hedge of a Call() with one generated nonzero
  /// idempotency key (server-side dedup). Off = duplicates race as
  /// independent executions (useful for tests that want a real race).
  bool tag_idempotency = true;
  /// Obey the server's retry_after_ms backpressure hint when present.
  bool honor_retry_after = true;
  /// Consecutive decisive failures that open the circuit breaker;
  /// 0 = breaker disabled.
  int breaker_threshold = 0;
  /// How long an open breaker fast-fails before letting a probe through.
  double breaker_cooldown_seconds = 0.1;
  /// Seed for jitter and idempotency keys. Fixed by default so chaos
  /// schedules replay.
  uint64_t seed = 0xc0ffee;
};

/// What one Call() did, for tests and stats.
struct ClientCallOutcome {
  std::vector<uint8_t> frame;  ///< the winning ResponseFrame bytes
  bool answered = false;       ///< frame decodes to an answer (not error)
  /// Set when !answered: the structured error the caller would decode.
  ErrorMessage error;
  int attempts = 0;  ///< requests submitted, excluding hedges
  int hedges = 0;    ///< hedged duplicates submitted
  bool hedge_won = false;
  double elapsed_seconds = 0.0;
};

struct ClientStats {
  uint64_t calls = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t answers = 0;
  uint64_t terminal_errors = 0;
  uint64_t budget_exhausted = 0;
  uint64_t transport_garbage = 0;  ///< replies that failed frame decode
  uint64_t retry_after_honored = 0;  ///< backoffs driven by a server hint
  uint64_t breaker_opens = 0;
  uint64_t breaker_fast_fails = 0;  ///< attempts answered locally while open

  std::string ToString() const;
};

/// Thread-safe: concurrent Call()s share the stats, the breaker, and the
/// hedge-delay histogram. An abandoned (budget-expired) attempt's late
/// reply still records into this client, so shut the service down before
/// destroying the client.
class ResilientClient {
 public:
  /// The downstream may be an in-process LspService or any other
  /// ServiceLink (e.g. a TcpLink to a remote replica); the ladder is
  /// transport-agnostic.
  ResilientClient(ServiceLink& service, RetryPolicy policy);

  /// Runs one request to completion under the policy. Blocking.
  ClientCallOutcome Call(ServiceRequest request);

  ClientStats Stats() const;

  /// True for errors worth retrying: the server said "not now"
  /// (overloaded / deadline), as opposed to "never" (malformed or an
  /// internal failure that a resend would only repeat).
  static bool IsRetryable(WireError code);

 private:
  using Clock = std::chrono::steady_clock;

  double HedgeDelaySeconds() const;
  double BackoffSeconds(int completed_attempts);
  uint64_t NextIdempotencyKey();
  /// Breaker gate for one attempt. Returns true to proceed (`*is_probe`
  /// set when this attempt is the half-open probe); false = fast-fail.
  bool BreakerAdmit(bool* is_probe);
  void BreakerOnOutcome(bool success, bool was_probe);
  /// Clears an unresolved probe (round ended without a decisive reply)
  /// so the breaker can probe again instead of fast-failing forever.
  void BreakerReleaseProbe();

  ServiceLink& service_;
  const RetryPolicy policy_;

  mutable std::mutex mu_;
  // ppgnn: guarded_by(rng_, mu_)
  Rng rng_;
  // ppgnn: guarded_by(stats_, mu_)
  ClientStats stats_;
  // ppgnn: guarded_by(breaker_consecutive_failures_, mu_)
  int breaker_consecutive_failures_ = 0;
  // ppgnn: guarded_by(breaker_open_, mu_)
  bool breaker_open_ = false;
  // ppgnn: guarded_by(breaker_probe_in_flight_, mu_)
  bool breaker_probe_in_flight_ = false;
  // ppgnn: guarded_by(breaker_open_until_, mu_)
  Clock::time_point breaker_open_until_{};
  LatencyHistogram attempt_latency_;  ///< per-attempt submit -> reply
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_RESILIENT_CLIENT_H_
