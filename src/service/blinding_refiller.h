// Background driver for the offline half of the Paillier offline/online
// split: a dedicated thread that keeps an Encryptor's blinding pools
// topped up so request threads encrypt at pooled cost (one multiply)
// instead of paying the online exponentiation.
//
// The Encryptor's pool is mutex-guarded and RefillBlindingPool runs its
// exponentiations outside that lock, so the refiller coexists with any
// number of concurrent Encrypt callers (the TSan tier exercises this
// against the LspService worker pool). Randomness comes from one seeded
// ppgnn::Rng owned by the refiller — the pool's *contents* are
// deterministic given the seed, which keeps chaos/replay runs
// reproducible; only the interleaving of who consumes which pooled
// factor is scheduling-dependent.
//
// Used by `ppgnn_cli --serve --blinding-pool N` for the load-generator
// clients' shared Encryptor; see DESIGN.md section 12.

#ifndef PPGNN_SERVICE_BLINDING_REFILLER_H_
#define PPGNN_SERVICE_BLINDING_REFILLER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crypto/paillier.h"

namespace ppgnn {

struct BlindingRefillerOptions {
  /// Ciphertext levels to keep warm.
  std::vector<int> levels = {1, 2};
  /// Refill a level when its pool drops below this...
  size_t low_watermark = 32;
  /// ...back up to this.
  size_t target = 128;
  /// Seed for the refiller's private Rng (blinding randomness).
  uint64_t seed = 0xb11d5eed;
  /// How long the thread sleeps between pool checks.
  double poll_interval_seconds = 0.002;
  /// Tests: construct without starting the thread (drive TopUpOnce
  /// manually).
  bool start_thread = true;
};

class BlindingRefiller {
 public:
  /// Starts the refill thread (unless options.start_thread is false).
  /// The encryptor is shared: the refiller holds a reference for its
  /// lifetime.
  explicit BlindingRefiller(std::shared_ptr<const Encryptor> encryptor,
                            BlindingRefillerOptions options = {});
  ~BlindingRefiller();

  BlindingRefiller(const BlindingRefiller&) = delete;
  BlindingRefiller& operator=(const BlindingRefiller&) = delete;

  /// One synchronous refill pass over all configured levels: tops up
  /// every level below the low watermark to the target. Safe to call
  /// concurrently with the background thread (serialized internally).
  /// Returns the first refill error, if any.
  Status TopUpOnce();

  /// Stops and joins the background thread. Idempotent; the destructor
  /// calls it.
  void Stop();

  struct Stats {
    uint64_t passes = 0;    ///< TopUpOnce invocations (thread or manual)
    uint64_t refilled = 0;  ///< blinding factors produced
    uint64_t errors = 0;    ///< failed refill attempts
  };
  Stats stats() const;

 private:
  void Loop();

  std::shared_ptr<const Encryptor> encryptor_;
  BlindingRefillerOptions options_;

  // Serializes refill passes (the thread and manual TopUpOnce callers);
  // also guards rng_.
  std::mutex work_mu_;
  // ppgnn: guarded_by(rng_, work_mu_)
  Rng rng_;

  // ppgnn: stat_counter(passes_, refilled_, errors_)
  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> refilled_{0};
  std::atomic<uint64_t> errors_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  // ppgnn: guarded_by(stop_, mu_)
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_BLINDING_REFILLER_H_
