#include "service/admission.h"

#include <algorithm>
#include <cmath>

namespace ppgnn {

AimdLimiter::AimdLimiter(const Options& options) : options_(options) {
  options_.min_concurrency = std::max(options_.min_concurrency, 1);
  options_.max_concurrency =
      std::max(options_.max_concurrency, options_.min_concurrency);
  options_.window = std::max(options_.window, 1);
  options_.decrease_factor = std::clamp(options_.decrease_factor, 0.1, 0.99);
  limit_.store(std::clamp(options_.initial_concurrency,
                          options_.min_concurrency, options_.max_concurrency),
               std::memory_order_release);
  // ppgnn-lint: allow(guarded-by): constructor has exclusive access
  window_.reserve(static_cast<size_t>(options_.window));
}

void AimdLimiter::OnComplete(double execute_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  window_.push_back(execute_seconds);
  if (window_.size() < static_cast<size_t>(options_.window)) return;

  // p99 of the window via nth_element — the window is small (tens of
  // entries) and already ours to scramble.
  const size_t idx = (window_.size() * 99) / 100;
  const size_t nth = std::min(idx, window_.size() - 1);
  std::nth_element(window_.begin(), window_.begin() + static_cast<long>(nth),
                   window_.end());
  const double p99 = window_[nth];
  window_.clear();

  const int cur = limit_.load(std::memory_order_acquire);
  if (p99 > options_.target_p99_seconds) {
    const int next = std::max(
        options_.min_concurrency,
        static_cast<int>(std::floor(cur * options_.decrease_factor)));
    if (next < cur) {
      limit_.store(next, std::memory_order_release);
      decreases_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (cur < options_.max_concurrency) {
    limit_.store(cur + 1, std::memory_order_release);
    increases_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ppgnn
