#include "service/health.h"

#include <algorithm>

namespace ppgnn {

const char* ReplicaHealthToString(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kProbing:
      return "probing";
    case ReplicaHealth::kDown:
      return "down";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(int replicas, HealthConfig config)
    : replica_count_(static_cast<size_t>(std::max(replicas, 1))),
      config_(std::move(config)),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      states_(replica_count_),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      rng_(config_.cooldown_jitter_seed) {}

HealthMonitor::Clock::time_point HealthMonitor::Now() const {
  return config_.clock ? config_.clock() : Clock::now();
}

ReplicaHealth HealthMonitor::state(int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[static_cast<size_t>(replica)].health;
}

double HealthMonitor::ewma_latency_seconds(int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[static_cast<size_t>(replica)].ewma_latency_seconds;
}

double HealthMonitor::last_cooldown_seconds(int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[static_cast<size_t>(replica)].cooldown_seconds;
}

uint64_t HealthMonitor::transitions(int replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[static_cast<size_t>(replica)].transitions;
}

uint64_t HealthMonitor::total_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const ReplicaState& state : states_) total += state.transitions;
  return total;
}

void HealthMonitor::set_on_transition(std::function<void(Transition)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_transition_ = std::move(fn);
}

void HealthMonitor::TransitionLocked(int replica, ReplicaHealth to) {
  ReplicaState& state = states_[static_cast<size_t>(replica)];
  if (state.health == to) return;
  const Transition transition{replica, state.health, to};
  state.health = to;
  state.transitions++;
  if (to == ReplicaHealth::kDown) {
    state.down_since = Now();
    // Draw this down-spell's half-open window. The draw happens here —
    // not in TryAdmitProbe — so racing admit attempts all see one fixed
    // window, and a fixed (seed, transition order) replays it exactly.
    double window = config_.down_cooldown_seconds;
    if (config_.cooldown_jitter_fraction > 0.0) {
      window *= 1.0 + config_.cooldown_jitter_fraction *
                          (2.0 * rng_.NextDouble() - 1.0);
    }
    state.cooldown_seconds = window;
  }
  if (on_transition_) on_transition_(transition);
}

void HealthMonitor::ReportSuccess(int replica, double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = states_[static_cast<size_t>(replica)];
  state.consecutive_failures = 0;
  state.consecutive_successes++;
  if (latency_seconds >= 0.0) {
    state.ewma_latency_seconds =
        state.has_latency
            ? config_.ewma_alpha * latency_seconds +
                  (1.0 - config_.ewma_alpha) * state.ewma_latency_seconds
            : latency_seconds;
    state.has_latency = true;
  }
  switch (state.health) {
    case ReplicaHealth::kHealthy:
      // A healthy replica whose smoothed latency has drifted past the
      // threshold is demoted (still routable) before it fails outright.
      if (config_.latency_suspect_seconds > 0.0 &&
          state.ewma_latency_seconds > config_.latency_suspect_seconds) {
        state.consecutive_successes = 0;
        TransitionLocked(replica, ReplicaHealth::kSuspect);
      }
      break;
    case ReplicaHealth::kSuspect:
      if (state.consecutive_successes >= config_.recover_after) {
        TransitionLocked(replica, ReplicaHealth::kHealthy);
      }
      break;
    case ReplicaHealth::kProbing:
      // Half-open probe succeeded: re-admit as suspect — the replica
      // still owes recover_after further successes to be healthy.
      state.consecutive_successes = 1;
      TransitionLocked(replica, ReplicaHealth::kSuspect);
      break;
    case ReplicaHealth::kDown:
      // A stale success from a leg abandoned before the demotion; the
      // streak reset above is enough — never resurrect without a probe.
      break;
  }
}

void HealthMonitor::ReportFailure(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = states_[static_cast<size_t>(replica)];
  state.consecutive_successes = 0;
  state.consecutive_failures++;
  switch (state.health) {
    case ReplicaHealth::kHealthy:
      if (state.consecutive_failures >= config_.down_after) {
        TransitionLocked(replica, ReplicaHealth::kDown);
      } else if (state.consecutive_failures >= config_.suspect_after) {
        TransitionLocked(replica, ReplicaHealth::kSuspect);
      }
      break;
    case ReplicaHealth::kSuspect:
      if (state.consecutive_failures >= config_.down_after) {
        TransitionLocked(replica, ReplicaHealth::kDown);
      }
      break;
    case ReplicaHealth::kProbing:
      // Half-open probe failed: back to down with the cooldown re-armed
      // (TransitionLocked re-stamps down_since).
      TransitionLocked(replica, ReplicaHealth::kDown);
      break;
    case ReplicaHealth::kDown:
      break;
  }
}

bool HealthMonitor::TryAdmitProbe(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = states_[static_cast<size_t>(replica)];
  if (state.health != ReplicaHealth::kDown) return false;
  const auto cooldown = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(state.cooldown_seconds));
  if (Now() - state.down_since < cooldown) return false;
  TransitionLocked(replica, ReplicaHealth::kProbing);
  return true;
}

std::vector<int> HealthMonitor::PreferenceOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> order;
  order.reserve(replica_count_);
  for (size_t r = 0; r < replica_count_; ++r) {
    if (states_[r].health == ReplicaHealth::kHealthy ||
        states_[r].health == ReplicaHealth::kSuspect) {
      order.push_back(static_cast<int>(r));
    }
  }
  return order;
}

}  // namespace ppgnn
